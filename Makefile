GO ?= go

.PHONY: all build test bench vet check figs cluster fuzz cover trace-demo clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

trace-demo:
	mkdir -p results
	$(GO) run ./cmd/hicsim -config configs/fig3_iommu_on_12cores.json \
		-trace-spans -trace-out results/trace_demo.json -metrics-out results/trace_demo.prom
	@echo "open results/trace_demo.json in https://ui.perfetto.dev"

bench:
	$(GO) test -bench=. -benchmem ./...

figs:
	$(GO) run ./cmd/hicfigs -outdir results

cluster:
	$(GO) run ./cmd/hiccluster -hosts 200

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzSeqWindow -fuzztime 30s ./internal/transport/
	$(GO) test -fuzz FuzzHistogram -fuzztime 30s ./internal/metrics/

cover:
	$(GO) test -short -cover ./internal/...

clean:
	rm -rf results
