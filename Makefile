GO ?= go

.PHONY: all build test bench bench-json bench-fleet bench-compare bench-warm bench-serve bench-cold vet check check-tests figs cluster fuzz cover trace-demo clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# check is the CI gate (.github/workflows/ci.yml runs exactly this):
# the test gate (check-tests) plus the bench-regression gates
# (bench-compare, bench-warm, bench-serve, and bench-cold).
check: check-tests bench-compare bench-warm bench-serve bench-cold

# check-tests: vet, the race-enabled test suite, a focused race pass
# over the worker pool and singleflight layers (their concurrency tests
# are the dedup/arena safety gate) and over the observatory (its
# collector takes concurrent Note/MetricsInto reads during fleet runs),
# an explicit non-race pass over the zero-alloc gates
# (TestEngineSteadyStateZeroAllocs, TestPacketPathZeroAllocs,
# TestObservatoryDisabledZeroAlloc, TestServeTraceDisabledZeroAlloc) so
# the allocation-free hot-path, disabled-observatory, and
# disabled-query-trace properties are enforced by name under the plain
# runtime, and a 1x smoke pass over the engine benchmarks so a compile
# break in the hot-path benches fails CI.
check-tests:
	$(GO) vet ./...
	$(GO) test -race -timeout 20m ./...
	$(GO) test -race -count=2 ./internal/runner/ ./internal/runcache/ ./internal/observatory/
	$(GO) test -run 'ZeroAllocs' -count=1 ./internal/sim/ ./internal/pkt/
	$(GO) test -run 'TestObservatoryDisabledZeroAlloc' -count=1 ./internal/observatory/
	$(GO) test -run 'TestServeTraceDisabledZeroAlloc' -count=1 ./internal/serve/
	$(GO) test -run=NONE -bench=BenchmarkEngine -benchtime=1x ./internal/sim/

# bench-compare is the bench-regression gate: a small smoke bench (400
# fleet hosts instead of 10k — the compare tool skips rate sections at
# mismatched scale) gated against the committed BENCH_hotpath.json.
# Allocation counts on the zero-alloc hot paths are exact-class (any
# increase fails); timing metrics get a loose 75% tolerance because CI
# machines are noisy — the gate exists to catch order-of-magnitude
# regressions and alloc leaks, not 10% drift. An audit-over-tolerance
# count in the new report fails at any tolerance.
bench-compare:
	mkdir -p results
	$(GO) run ./cmd/hicbench -out results/bench_smoke.json -fleet-hosts 400 -fleet-baseline-hosts 16 -no-warm -no-cold
	$(GO) run ./cmd/hicbench -compare-tol 0.75 -compare BENCH_hotpath.json results/bench_smoke.json

# bench-warm is the cross-run warm-start gate: a cold-then-warm fleet
# pair at smoke scale (rates are skipped against the committed 10k
# baseline — host counts differ) whose hard gates are scale-free: any
# warm-audited point over tolerance fails unconditionally, and the
# warm-resumed point's allocation profile is near-exact-class (0.1%
# noise floor, see cmd/hicbench/compare.go).
bench-warm:
	mkdir -p results
	$(GO) run ./cmd/hicbench -out results/bench_warm.json -fleet-hosts 400 -warm-only
	$(GO) run ./cmd/hicbench -compare-tol 0.75 -compare BENCH_hotpath.json results/bench_warm.json

# bench-serve is the serving-layer gate: a coordinator plus two
# in-process workers run a 400-host catalog query cold, warm, and then
# traced (end-to-end query tracing on), and the section is compared
# against the committed baseline. Three gates are tolerance-free at any
# scale: the merged aggregate hash — including the traced pass's — must
# equal the single-process run's (neither sharding nor tracing may
# change bytes), the warm query must re-calibrate nothing (worker
# residency), and the coordinator's federated per-worker hic_worker_*
# counters must sum to the merged queries' counters (fed_sum_match).
# Throughput, scaling, and trace_overhead (traced wall over warm wall)
# gate with the loose noise tolerance like every rate metric.
bench-serve:
	mkdir -p results
	$(GO) run ./cmd/hicbench -out results/bench_serve.json -serve-only -serve-hosts 400
	$(GO) run ./cmd/hicbench -compare-tol 0.75 -compare BENCH_hotpath.json results/bench_serve.json

# bench-cold is the cold-path acceleration gate: the never-seen auto
# fleet at smoke scale with knee search and calibration transfer off
# then on (rates skip against the committed 10k baseline — host counts
# differ), plus the sharded determinism check. Two gates are
# tolerance-free at any scale: no audited point in the accelerated pass
# may exceed tolerance (the accelerations must not buy speed with
# error), and the 1-worker and 2-worker coordinator runs must
# hash-match the in-process run (located knees and borrowed
# calibrations may not depend on shard order).
bench-cold:
	mkdir -p results
	$(GO) run ./cmd/hicbench -out results/bench_cold.json -cold-only -cold-hosts 500
	$(GO) run ./cmd/hicbench -compare-tol 0.75 -compare BENCH_hotpath.json results/bench_cold.json

trace-demo:
	mkdir -p results
	$(GO) run ./cmd/hicsim -config configs/fig3_iommu_on_12cores.json \
		-trace-spans -trace-out results/trace_demo.json -metrics-out results/trace_demo.prom
	@echo "open results/trace_demo.json in https://ui.perfetto.dev"

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the hot-path comparison harness (current engine vs the
# preserved pre-rewrite engine, pooled vs heap packet path, the Figure 6
# scenario end to end, the fleet execution bench, the multi-fidelity
# section: fluid vs DES per-point cost plus the -fidelity=auto fleet
# against the pure-DES fleet, the warm-start section: the same
# auto fleet cold then warm against one persistent calibration and
# checkpoint store, and the serve section: one catalog query sharded
# across a coordinator and two workers, cold and warm) and writes
# BENCH_hotpath.json.
bench-json:
	$(GO) run ./cmd/hicbench -out BENCH_hotpath.json

# bench-fleet is the fleet-execution smoke: a 10k-host Figure 1 fleet on
# the pooled/deduplicated path against the goroutine-per-host baseline,
# skipping the engine microbenchmarks.
bench-fleet:
	$(GO) run ./cmd/hicbench -fleet-only -fleet-hosts 10000

figs:
	$(GO) run ./cmd/hicfigs -outdir results

cluster:
	$(GO) run ./cmd/hiccluster -hosts 200

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzSeqWindow -fuzztime 30s ./internal/transport/
	$(GO) test -fuzz FuzzHistogram -fuzztime 30s ./internal/metrics/

cover:
	$(GO) test -short -cover ./internal/...

clean:
	rm -rf results
