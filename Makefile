GO ?= go

.PHONY: all build test bench bench-json vet check figs cluster fuzz cover trace-demo clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# check runs vet, the race-enabled test suite (which includes the
# zero-allocs gates: TestEngineSteadyStateZeroAllocs and
# TestPacketPathZeroAllocs), and a 1x smoke pass over the engine
# benchmarks so a compile break in the hot-path benches fails CI.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run=NONE -bench=BenchmarkEngine -benchtime=1x ./internal/sim/

trace-demo:
	mkdir -p results
	$(GO) run ./cmd/hicsim -config configs/fig3_iommu_on_12cores.json \
		-trace-spans -trace-out results/trace_demo.json -metrics-out results/trace_demo.prom
	@echo "open results/trace_demo.json in https://ui.perfetto.dev"

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the hot-path comparison harness (current engine vs the
# preserved pre-rewrite engine, pooled vs heap packet path, and the
# Figure 6 scenario end to end) and writes BENCH_hotpath.json.
bench-json:
	$(GO) run ./cmd/hicbench -out BENCH_hotpath.json

figs:
	$(GO) run ./cmd/hicfigs -outdir results

cluster:
	$(GO) run ./cmd/hiccluster -hosts 200

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzSeqWindow -fuzztime 30s ./internal/transport/
	$(GO) test -fuzz FuzzHistogram -fuzztime 30s ./internal/metrics/

cover:
	$(GO) test -short -cover ./internal/...

clean:
	rm -rf results
