GO ?= go

.PHONY: all build test bench vet figs cluster fuzz cover clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

figs:
	$(GO) run ./cmd/hicfigs -outdir results

cluster:
	$(GO) run ./cmd/hiccluster -hosts 200

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzSeqWindow -fuzztime 30s ./internal/transport/
	$(GO) test -fuzz FuzzHistogram -fuzztime 30s ./internal/metrics/

cover:
	$(GO) test -short -cover ./internal/...

clean:
	rm -rf results
