// Command hicsweep runs a declarative parameter sweep from a JSON spec.
//
// Example spec (sweep the fig3 and fig6 axes jointly):
//
//	{
//	  "base": {"Seed": 1, "Threads": 12, "Senders": 40,
//	           "RxRegionBytes": 12582912, "IOMMU": true,
//	           "Hugepages": true, "CC": "swift"},
//	  "axes": [
//	    {"param": "threads", "values": [8, 12, 16]},
//	    {"param": "antagonists", "values": [0, 8, 15]}
//	  ]
//	}
//
//	hicsweep -spec sweep.json
//	hicsweep -spec sweep.json -csv > grid.csv
//	hicsweep -params           # list sweepable parameters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hic/internal/core"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
	"hic/internal/sweep"
)

func main() {
	specPath := flag.String("spec", "", "JSON sweep specification")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	listParams := flag.Bool("params", false, "list sweepable parameter names and exit")
	measureMS := flag.Int("measure-ms", 0, "override measurement window (ms)")
	warmupMS := flag.Int("warmup-ms", 0, "override warmup window (ms)")
	telemetryOut := flag.String("telemetry-out", "", "run each point with span telemetry and write one JSONL summary line per grid point to this file")
	spanRate := flag.Float64("span-rate", 0.01, "span sampling rate per grid point (with -telemetry-out)")
	incidentsOut := flag.String("incidents-out", "", "run each point with the sim-time observatory and write one JSONL incident-report line per grid point to this file (forces full DES)")
	observeEvery := flag.Int("observe-every-us", 100, "observatory sampling interval in sim µs (with -incidents-out)")
	useCache := flag.Bool("cache", false, "memoize per-point results in the content-addressed run cache (ignored with -telemetry-out)")
	cacheDir := flag.String("cache-dir", runcache.DefaultDir, "run-cache directory (with -cache)")
	cacheURL := flag.String("cache-url", "", "share a hicserve coordinator's run cache over HTTP instead of -cache-dir (implies -cache)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "prune the run cache and warm store to this size at startup, oldest entries first (0 = unbounded)")
	verbose := flag.Bool("v", false, "print detailed run-cache counters on stderr (with -cache)")
	fid := fidelity.RegisterFlags(flag.CommandLine, fidelity.ModeDES)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *listParams {
		fmt.Println(strings.Join(sweep.KnownParams(), "\n"))
		return
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "usage: hicsweep -spec <file.json> [-csv]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
		os.Exit(1)
	}
	var spec sweep.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		fmt.Fprintf(os.Stderr, "hicsweep: parsing %s: %v\n", *specPath, err)
		os.Exit(1)
	}
	if *measureMS > 0 {
		spec.Base.Measure = sim.Duration(*measureMS) * sim.Millisecond
	}
	if *warmupMS > 0 {
		spec.Base.Warmup = sim.Duration(*warmupMS) * sim.Millisecond
	}

	if *telemetryOut != "" && *incidentsOut != "" {
		fmt.Fprintln(os.Stderr, "hicsweep: -telemetry-out and -incidents-out are mutually exclusive (each instruments every point its own way)")
		os.Exit(2)
	}

	var store *runcache.Store
	if *telemetryOut == "" && *incidentsOut == "" {
		if *cacheURL != "" {
			store = runcache.OpenRemote(*cacheURL)
		} else if *useCache {
			if store, err = runcache.Open(*cacheDir); err != nil {
				fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
				os.Exit(1)
			}
		}
	}

	router, err := fid.Router(store, nil, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
		os.Exit(1)
	}
	var warmStore *runcache.Store
	if router != nil {
		warmStore = router.WarmStore()
	}
	if *cacheMaxMB > 0 {
		budget := int64(*cacheMaxMB) << 20
		for _, s := range []*runcache.Store{store, warmStore} {
			if s == nil {
				continue
			}
			if removed, freed, perr := s.Prune(budget); perr != nil {
				fmt.Fprintf(os.Stderr, "hicsweep: pruning %s: %v\n", s.Dir(), perr)
			} else if removed > 0 && *verbose {
				fmt.Fprintf(os.Stderr, "pruned %d entries (%.1f MB) from %s\n",
					removed, float64(freed)/(1<<20), s.Dir())
			}
		}
	}

	if srv, err := obsFlags.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
		os.Exit(1)
	} else if srv != nil {
		defer srv.Close()
		srv.AddSource(runner.Shared())
		if store != nil {
			srv.AddSource(store)
		}
		if router != nil {
			srv.AddSource(router)
		}
		if warmStore != nil {
			srv.AddSource(warmStore)
		}
	}

	var rows []sweep.Row
	if *incidentsOut != "" {
		// Observatory sweeps always simulate in full: episodes are a
		// per-run byproduct neither the fluid solver nor the run cache
		// produces.
		if router != nil {
			fmt.Fprintln(os.Stderr, "hicsweep: observatory always simulates; fidelity routing disabled for this run")
			router = nil
		}
		ocfg := observatory.DefaultConfig()
		ocfg.SampleEvery = sim.Duration(*observeEvery) * sim.Microsecond
		rows, err = sweep.RunObserved(spec, ocfg)
	} else if *telemetryOut != "" {
		// Telemetry sweeps always simulate: spans are a per-run byproduct
		// the result cache does not store. The router still decides which
		// points the fluid solver would serve — those carry no spans and
		// are skipped (and counted) by the JSONL exporter instead of being
		// written as empty records.
		rows, err = sweep.RunDetailedVia(spec, routerExec(router), *spanRate)
	} else if router != nil {
		rows, err = sweep.RunCachedVia(spec, router, store)
	} else {
		rows, err = sweep.RunCached(spec, store)
	}
	if router != nil {
		defer func() {
			c := router.Counters()
			fmt.Fprintf(os.Stderr, "fidelity: %d fluid, %d DES (%d early-stopped), %d anchors, %d reused",
				c.FluidRouted, c.DESRouted, c.EarlyStopped, c.AnchorRuns, c.AnchorReused)
			if c.Audited > 0 {
				fmt.Fprintf(os.Stderr, "; audited %d max-err %.4f (%d over tol)",
					c.Audited, c.AuditMaxErr, c.AuditOverTol)
			}
			fmt.Fprintln(os.Stderr)
			if c.AnchorLoaded+c.AnchorPersisted+c.WarmStarted+c.WarmCheckpoints > 0 {
				fmt.Fprintf(os.Stderr, "warm start: %d anchors loaded, %d persisted, %d warm-started, %d checkpoints",
					c.AnchorLoaded, c.AnchorPersisted, c.WarmStarted, c.WarmCheckpoints)
				if c.WarmAudited > 0 {
					fmt.Fprintf(os.Stderr, "; warm-audited %d max-err %.4f (%d over tol)",
						c.WarmAudited, c.WarmAuditMaxErr, c.WarmAuditOverTol)
				}
				fmt.Fprintln(os.Stderr)
			}
		}()
	}
	if store != nil {
		defer func() {
			fmt.Fprintf(os.Stderr, "run cache: %s\n", store.Summary())
			if *verbose {
				st := store.Stats()
				lookups := st.Hits + st.Misses + st.Collapses
				fmt.Fprintf(os.Stderr, "run cache: %d lookups (%d hits, %d misses, %d singleflight collapses); %d simulations avoided\n",
					lookups, st.Hits, st.Misses, st.Collapses, st.Hits+st.Collapses)
			}
		}()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
		os.Exit(1)
	}
	if *incidentsOut != "" {
		jsonl, err := sweep.IncidentsJSONL(spec, rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*incidentsOut, []byte(jsonl), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
			os.Exit(1)
		}
		episodes := 0
		for _, r := range rows {
			if r.Incidents != nil {
				episodes += len(r.Incidents.Episodes)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d points, %d episodes)\n", *incidentsOut, len(rows), episodes)
	}
	if *telemetryOut != "" {
		jsonl, err := sweep.TelemetryJSONL(spec, rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*telemetryOut, []byte(jsonl), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hicsweep: %v\n", err)
			os.Exit(1)
		}
		skipped := 0
		for _, r := range rows {
			if r.TelemetrySkippedFluid {
				skipped++
			}
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "wrote %s (%d points, %d fluid-routed points skipped)\n",
				*telemetryOut, len(rows)-skipped, skipped)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", *telemetryOut, len(rows))
		}
	}
	if *csv {
		fmt.Print(sweep.CSV(spec, rows))
	} else {
		fmt.Print(sweep.Table(spec, rows))
	}
}

// routerExec lowers a possibly-nil *fidelity.Router to a core.Executor
// without boxing a typed nil into the interface.
func routerExec(r *fidelity.Router) core.Executor {
	if r == nil {
		return nil
	}
	return r
}
