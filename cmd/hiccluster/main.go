// Command hiccluster regenerates Figure 1: the fleet-wide scatter of
// access-link utilization versus host drop rate across many simulated
// hosts with fleet-distribution workload mixes.
//
//	hiccluster -hosts 200
//	hiccluster -hosts 300 -csv > fig1.csv
//	hiccluster -hosts 100000 -csv -v > fig1.csv   # streaming, bounded RSS
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
)

// openOut opens an output path for the observatory exports; "-" means
// stdout. The returned flush both flushes the buffer and closes the
// file.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		w := bufio.NewWriter(os.Stdout)
		return w, w.Flush, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return w, func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

func main() {
	hosts := flag.Int("hosts", 200, "simulated hosts in the fleet")
	windows := flag.Int("windows", 1, "measurement bins per host (10-minute-bin analogue)")
	seed := flag.Uint64("seed", 1, "fleet seed")
	measureMS := flag.Int("measure-ms", 12, "per-host measurement window (ms)")
	warmupMS := flag.Int("warmup-ms", 0, "override per-host warmup window (ms)")
	csv := flag.Bool("csv", false, "emit per-host CSV instead of the scatter (streams: RSS stays bounded at any fleet size)")
	useCache := flag.Bool("cache", false, "memoize per-host results in the content-addressed run cache (single-window fleets only)")
	cacheDir := flag.String("cache-dir", runcache.DefaultDir, "run-cache directory (with -cache)")
	cacheURL := flag.String("cache-url", "", "share a hicserve coordinator's run cache over HTTP instead of -cache-dir (implies -cache)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "prune the run cache and warm store to this size at startup, oldest entries first (0 = unbounded)")
	noDedup := flag.Bool("no-dedup", false, "disable singleflight dedup of byte-identical hosts (never changes results; for benchmarking)")
	progress := flag.Bool("progress", true, "report progress, rate, and ETA on stderr")
	verbose := flag.Bool("v", false, "print cache and dedup statistics on stderr")
	incidentsOut := flag.String("incidents-out", "", "attach the sim-time observatory and append per-host congestion episodes as JSONL here ('-' = stdout; forces full DES)")
	timelinesOut := flag.String("timelines-out", "", "with the observatory attached, also export each host's retained signal timeline as JSONL here")
	observeEvery := flag.Int("observe-every-us", 100, "observatory sampling interval in sim µs")
	fid := fidelity.RegisterFlags(flag.CommandLine, fidelity.ModeDES)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	cfg := cluster.DefaultConfig()
	cfg.Hosts = *hosts
	cfg.WindowsPerHost = *windows
	cfg.Seed = *seed
	cfg.Measure = sim.Duration(*measureMS) * sim.Millisecond
	if *warmupMS > 0 {
		cfg.Warmup = sim.Duration(*warmupMS) * sim.Millisecond
	}
	cfg.NoDedup = *noDedup
	cfg.Log = os.Stderr

	var store *runcache.Store
	if *cacheURL != "" {
		store = runcache.OpenRemote(*cacheURL)
		cfg.Cache = store
	} else if *useCache {
		var err error
		if store, err = runcache.Open(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
			os.Exit(1)
		}
		cfg.Cache = store
	}
	router, err := fid.Router(store, cluster.SeedPool(cfg), nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
		os.Exit(1)
	}
	if router != nil {
		cfg.Exec = router
	}
	var warmStore *runcache.Store
	if router != nil {
		warmStore = router.WarmStore()
	}
	if *cacheMaxMB > 0 {
		budget := int64(*cacheMaxMB) << 20
		for _, s := range []*runcache.Store{store, warmStore} {
			if s == nil {
				continue
			}
			if removed, freed, perr := s.Prune(budget); perr != nil {
				fmt.Fprintf(os.Stderr, "hiccluster: pruning %s: %v\n", s.Dir(), perr)
			} else if removed > 0 && *verbose {
				fmt.Fprintf(os.Stderr, "pruned %d entries (%.1f MB) from %s\n",
					removed, float64(freed)/(1<<20), s.Dir())
			}
		}
	}

	var collector *observatory.Collector
	var flushers []func() error
	if *incidentsOut != "" || *timelinesOut != "" {
		ocfg := observatory.DefaultConfig()
		ocfg.SampleEvery = sim.Duration(*observeEvery) * sim.Microsecond
		collector = observatory.NewCollector(ocfg)
		var incEnc *json.Encoder
		if *incidentsOut != "" {
			w, flush, err := openOut(*incidentsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
				os.Exit(1)
			}
			incEnc = json.NewEncoder(w)
			flushers = append(flushers, flush)
		}
		var tlw io.Writer
		if *timelinesOut != "" {
			w, flush, err := openOut(*timelinesOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
				os.Exit(1)
			}
			tlw = w
			flushers = append(flushers, flush)
		}
		collector.OnReport(func(hostIdx int, cell string, rep *observatory.HostReport) error {
			if incEnc != nil {
				for i := range rep.Episodes {
					if err := incEnc.Encode(&rep.Episodes[i]); err != nil {
						return err
					}
				}
			}
			if tlw != nil {
				return rep.WriteTimeline(tlw, hostIdx)
			}
			return nil
		})
		cfg.Observatory = collector
	}

	if srv, err := obsFlags.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
		os.Exit(1)
	} else if srv != nil {
		defer srv.Close()
		srv.AddSource(runner.Shared())
		if store != nil {
			srv.AddSource(store)
		}
		if router != nil {
			srv.AddSource(router)
		}
		if warmStore != nil {
			srv.AddSource(warmStore)
		}
		if collector != nil {
			srv.AddSource(collector)
		}
	}
	if *progress {
		cfg.Progress = runner.NewProgress(os.Stderr, "fleet", "hosts", cfg.Hosts, time.Second)
		pool := runner.Shared()
		cfg.Progress.SetNote(func() string {
			ps := pool.Stats()
			note := fmt.Sprintf("slots %db/%di", ps.Busy, ps.Idle+ps.Draining)
			if router != nil {
				// Live anchor accounting: cold-start cost (and what
				// transfer/warm start saved) visible mid-run.
				c := router.Counters()
				note += fmt.Sprintf("; anchors %d run/%d loaded/%d transferred",
					c.AnchorRuns, c.AnchorLoaded, c.AnchorTransferred)
			}
			if store != nil {
				note += "; cache " + store.Summary()
			}
			if collector != nil {
				note += "; " + collector.Note()
			}
			return note
		})
	}

	var stats cluster.Stats
	if *csv {
		// Streaming path: every point is written as it arrives, so memory
		// stays bounded by the worker count regardless of fleet size.
		out := bufio.NewWriter(os.Stdout)
		fmt.Fprint(out, cluster.CSVHeader())
		stats, err = cluster.RunStream(cfg, func(p cluster.Point) error {
			_, werr := fmt.Fprint(out, cluster.CSVRow(p))
			return werr
		})
		cfg.Progress.Finish()
		if ferr := out.Flush(); err == nil {
			err = ferr
		}
	} else {
		var points []cluster.Point
		stats, err = cluster.RunStream(cfg, func(p cluster.Point) error {
			points = append(points, p)
			return nil
		})
		cfg.Progress.Finish()
		if err == nil {
			fmt.Print(cluster.Scatter(points, 72, 20))
			fmt.Printf("\nhosts=%d  mean utilization=%.2f  dropping=%d  dropping-below-60%%-util=%d\n",
				stats.Hosts, stats.MeanUtilization, stats.DroppingHosts, stats.LowUtilDropping)
			fmt.Printf("utilization–drop correlation (Pearson): %.2f\n", stats.Pearson)
			fmt.Printf("drop rate: mean=%.4f p50=%.4f p99=%.4f max=%.4f\n",
				stats.MeanDropRate, stats.DropRateP50, stats.DropRateP99, stats.MaxDropRate)
			fmt.Println("\npaper claims: correlation positive; drops present even at low utilization.")
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
		os.Exit(1)
	}
	for _, flush := range flushers {
		if ferr := flush(); ferr != nil {
			fmt.Fprintf(os.Stderr, "hiccluster: %v\n", ferr)
			os.Exit(1)
		}
	}
	if collector != nil {
		collector.WriteReport(os.Stderr, *verbose)
	}

	if *verbose {
		// Simulated counts every DES execution including calibration
		// anchors; hosts served by the fluid model appear only in
		// FluidRouted. Reconstruct the host count for the summary line.
		total := stats.Simulated - stats.AnchorRuns + stats.FluidRouted + stats.Collapsed
		fmt.Fprintf(os.Stderr, "fleet execution: %d single-window hosts, %d simulated, %d deduplicated",
			total, stats.Simulated, stats.Collapsed)
		if total > 0 {
			fmt.Fprintf(os.Stderr, " (%.1f%% saved)", 100*float64(stats.Collapsed)/float64(total))
		}
		fmt.Fprintln(os.Stderr)
		if stats.CacheSkipped > 0 {
			fmt.Fprintf(os.Stderr, "fleet execution: %d multi-window hosts bypassed the run cache\n", stats.CacheSkipped)
		}
		if router != nil {
			fmt.Fprintf(os.Stderr, "fidelity: %d fluid-routed, %d early-stopped, %d anchor runs",
				stats.FluidRouted, stats.EarlyStopped, stats.AnchorRuns)
			if stats.AnchorTransferred+stats.AnchorRefined > 0 {
				fmt.Fprintf(os.Stderr, ", %d transferred, %d refined",
					stats.AnchorTransferred, stats.AnchorRefined)
			}
			if stats.Audited > 0 {
				fmt.Fprintf(os.Stderr, "; audited %d max-err %.4f (%d over tol %.3f)",
					stats.Audited, stats.AuditMaxErr, stats.AuditOverTol, router.Tol())
			}
			fmt.Fprintln(os.Stderr)
			if stats.KneeProbes+stats.KneeBypassed > 0 {
				fmt.Fprintf(os.Stderr, "knee search: %d probes, %d knee-band hosts fluid-routed past the located knee\n",
					stats.KneeProbes, stats.KneeBypassed)
			}
			if stats.AnchorLoaded+stats.AnchorPersisted+stats.WarmStarted+stats.WarmCheckpoints > 0 {
				fmt.Fprintf(os.Stderr, "warm start: %d anchors loaded, %d persisted, %d hosts warm-started, %d checkpoints captured",
					stats.AnchorLoaded, stats.AnchorPersisted, stats.WarmStarted, stats.WarmCheckpoints)
				if stats.WarmAudited > 0 {
					fmt.Fprintf(os.Stderr, "; warm-audited %d max-err %.4f (%d over tol %.3f)",
						stats.WarmAudited, stats.WarmAuditMaxErr, stats.WarmAuditOverTol, router.Tol())
				}
				fmt.Fprintln(os.Stderr)
			}
		}
		if store != nil {
			fmt.Fprintf(os.Stderr, "run cache: %s\n", store.Summary())
		}
		ps := runner.Shared().Stats()
		fmt.Fprintf(os.Stderr, "worker pool: %d slots (%d busy, %d idle, %d draining), %d tasks started, %d done\n",
			ps.Workers, ps.Busy, ps.Idle, ps.Draining, ps.TasksStarted, ps.TasksDone)
	}
}
