// Command hiccluster regenerates Figure 1: the fleet-wide scatter of
// access-link utilization versus host drop rate across many simulated
// hosts with randomized workload mixes.
//
//	hiccluster -hosts 200
//	hiccluster -hosts 300 -csv > fig1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"hic/internal/cluster"
	"hic/internal/runcache"
	"hic/internal/sim"
)

func main() {
	hosts := flag.Int("hosts", 200, "simulated hosts in the fleet")
	windows := flag.Int("windows", 1, "measurement bins per host (10-minute-bin analogue)")
	seed := flag.Uint64("seed", 1, "fleet seed")
	measureMS := flag.Int("measure-ms", 12, "per-host measurement window (ms)")
	csv := flag.Bool("csv", false, "emit per-host CSV instead of the scatter")
	useCache := flag.Bool("cache", false, "memoize per-host results in the content-addressed run cache (single-window fleets only)")
	cacheDir := flag.String("cache-dir", runcache.DefaultDir, "run-cache directory (with -cache)")
	flag.Parse()

	cfg := cluster.DefaultConfig()
	cfg.Hosts = *hosts
	cfg.WindowsPerHost = *windows
	cfg.Seed = *seed
	cfg.Measure = sim.Duration(*measureMS) * sim.Millisecond
	if *useCache {
		store, err := runcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
			os.Exit(1)
		}
		cfg.Cache = store
		defer func() { fmt.Fprintf(os.Stderr, "run cache: %s\n", store.Summary()) }()
	}

	points, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hiccluster: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(cluster.CSV(points))
		return
	}
	fmt.Print(cluster.Scatter(points, 72, 20))
	s := cluster.Summarize(points)
	fmt.Printf("\nhosts=%d  mean utilization=%.2f  dropping=%d  dropping-below-60%%-util=%d\n",
		s.Hosts, s.MeanUtilization, s.DroppingHosts, s.LowUtilDropping)
	fmt.Printf("utilization–drop correlation (Pearson): %.2f\n", s.Pearson)
	fmt.Println("\npaper claims: correlation positive; drops present even at low utilization.")
}
