package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/runcache"
	"hic/internal/serve"
)

// serveBench is the serving-layer section: the same catalog query run
// three ways — single-process (the golden reference), cold through a
// coordinator sharding across two in-process workers, and again warm
// against the workers' resident routers and the coordinator's shared
// cache. Two contracts gate it:
//
//   - hash_match: every merged aggregate hash equals the
//     single-process hash (byte-identity across sharding and
//     residency) — a mismatch fails -compare unconditionally;
//   - warm_anchor_runs/warm_simulated: the warm query re-calibrates
//     and re-simulates nothing (residency) — a nonzero anchor count
//     fails -compare unconditionally.
//
// scaling_ratio (cold sharded hosts/sec over single-process) and
// warm_speedup are noisy-class: on a single-core runner the sharded
// cold pass only shows protocol overhead (ratio ≈ 1); with real cores
// per worker it shows the fan-out win.
type serveBench struct {
	Hosts        int     `json:"hosts"`
	FidelityMode string  `json:"fidelity_mode,omitempty"`
	Warm         string  `json:"warm,omitempty"`
	Tol          float64 `json:"tol"`

	SingleHash        string  `json:"single_hash"`
	SingleWallSeconds float64 `json:"single_wall_seconds"`
	SingleHostsPerSec float64 `json:"single_hosts_per_sec"`

	ColdHash        string  `json:"cold_hash"`
	ColdWallSeconds float64 `json:"cold_wall_seconds"`
	ColdHostsPerSec float64 `json:"cold_hosts_per_sec"`

	WarmHash        string  `json:"warm_hash"`
	WarmWallSeconds float64 `json:"warm_wall_seconds"`
	WarmHostsPerSec float64 `json:"warm_hosts_per_sec"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	WarmAnchorRuns  uint64  `json:"warm_anchor_runs"`
	WarmSimulated   uint64  `json:"warm_simulated"`

	HashMatch    bool    `json:"hash_match"`
	ScalingRatio float64 `json:"scaling_ratio"`
	Workers      int     `json:"workers"`
	Ranges       int     `json:"ranges"`
	Reassigned   uint64  `json:"reassigned"`
	Duplicates   uint64  `json:"duplicates"`
	MergeSkew    float64 `json:"merge_skew"`
}

// runServe measures the serving layer end to end in one process:
// coordinator, two workers, and the client all here, talking over real
// loopback HTTP exactly as the hicserve binary wires them.
func runServe(hosts int, tol float64) (serveBench, error) {
	sb := serveBench{Hosts: hosts, FidelityMode: "auto", Warm: "off", Tol: tol}
	spec := serve.QueryRequest{
		Hosts:     hosts,
		Seed:      1,
		WarmupMS:  2,
		MeasureMS: 3,
		Fidelity:  "auto",
		Tol:       tol,
		EarlyStop: true,
		// Fixed shard granularity so the range count (and therefore the
		// lease protocol traffic) is machine-independent.
		RangeHosts: (hosts + 15) / 16,
	}

	// Single-process reference: the identical scenario and router config
	// a worker builds (see serve.(*Worker).routerFor), private cache.
	singleDir, err := os.MkdirTemp("", "hicbench-serve-single-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(singleDir)
	sstore, err := runcache.Open(singleDir)
	if err != nil {
		return sb, err
	}
	scfg := spec.ClusterConfig()
	scfg.Cache = sstore
	router, err := fidelity.New(fidelity.Config{
		Mode:        fidelity.ModeAuto,
		Tol:         tol,
		EarlyStop:   true,
		AnchorSeeds: cluster.SeedPool(scfg),
		Cache:       sstore,
		// Workers enable knee search and transfer unless the spec
		// disables them (serve.Worker routerFor); the reference must
		// route identically or the hash gate is comparing strategies.
		KneeSearch: true,
		Transfer:   true,
	})
	if err != nil {
		return sb, err
	}
	scfg.Exec = router
	hasher := cluster.NewPointHasher()
	start := time.Now()
	if _, err := cluster.RunStream(scfg, func(p cluster.Point) error {
		hasher.Add(p)
		return nil
	}); err != nil {
		return sb, err
	}
	sb.SingleWallSeconds = time.Since(start).Seconds()
	sb.SingleHash = hasher.Sum()
	sb.SingleHostsPerSec = float64(hosts) / sb.SingleWallSeconds

	// Coordinator with a fresh store, two in-process workers over real
	// loopback HTTP.
	coordDir, err := os.MkdirTemp("", "hicbench-serve-coord-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(coordDir)
	cstore, err := runcache.Open(coordDir)
	if err != nil {
		return sb, err
	}
	srv, err := serve.NewServer(serve.Options{Store: cstore, LeaseTimeout: 2 * time.Minute})
	if err != nil {
		return sb, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return sb, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const nWorkers = 2
	for i := 0; i < nWorkers; i++ {
		w := serve.NewWorker(base, serve.WorkerOptions{Name: fmt.Sprintf("bench%d", i)})
		go w.Run(ctx) //nolint:errcheck // ends with ctx
	}
	sb.Workers = nWorkers

	client := serve.NewClient(base, nil)
	cold, err := client.Query(ctx, spec, nil)
	if err != nil {
		return sb, fmt.Errorf("cold query: %w", err)
	}
	warm, err := client.Query(ctx, spec, nil)
	if err != nil {
		return sb, fmt.Errorf("warm query: %w", err)
	}

	sb.ColdHash = cold.AggregateHash
	sb.ColdWallSeconds = cold.ElapsedMS / 1e3
	sb.ColdHostsPerSec = cold.HostsPerSec
	sb.WarmHash = warm.AggregateHash
	sb.WarmWallSeconds = warm.ElapsedMS / 1e3
	sb.WarmHostsPerSec = warm.HostsPerSec
	if sb.ColdHostsPerSec > 0 {
		sb.WarmSpeedup = sb.WarmHostsPerSec / sb.ColdHostsPerSec
	}
	sb.WarmAnchorRuns = warm.Stats.AnchorRuns
	sb.WarmSimulated = warm.Stats.Simulated
	sb.HashMatch = cold.AggregateHash == sb.SingleHash && warm.AggregateHash == sb.SingleHash
	if sb.SingleHostsPerSec > 0 {
		sb.ScalingRatio = sb.ColdHostsPerSec / sb.SingleHostsPerSec
	}
	sb.Ranges = cold.Ranges
	sb.Reassigned = cold.Reassigned + warm.Reassigned
	sb.Duplicates = cold.Duplicates + warm.Duplicates
	sb.MergeSkew = cold.MergeSkew
	if warm.MergeSkew > sb.MergeSkew {
		sb.MergeSkew = warm.MergeSkew
	}
	if !sb.HashMatch {
		fmt.Fprintf(os.Stderr, "hicbench: WARNING: serve hash mismatch: single %s cold %s warm %s\n",
			sb.SingleHash, sb.ColdHash, sb.WarmHash)
	}
	return sb, nil
}
