package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/serve"
)

// serveBench is the serving-layer section: the same catalog query run
// three ways — single-process (the golden reference), cold through a
// coordinator sharding across two in-process workers, and again warm
// against the workers' resident routers and the coordinator's shared
// cache. Two contracts gate it:
//
//   - hash_match: every merged aggregate hash equals the
//     single-process hash (byte-identity across sharding and
//     residency) — a mismatch fails -compare unconditionally;
//   - warm_anchor_runs/warm_simulated: the warm query re-calibrates
//     and re-simulates nothing (residency) — a nonzero anchor count
//     fails -compare unconditionally;
//   - fed_sum_match: the coordinator's federated per-worker
//     hic_worker_* counters sum to the merged queries' counters — a
//     mismatch means attribution lost or double-counted completions
//     and fails -compare unconditionally.
//
// scaling_ratio (cold sharded hosts/sec over single-process) and
// warm_speedup are noisy-class: on a single-core runner the sharded
// cold pass only shows protocol overhead (ratio ≈ 1); with real cores
// per worker it shows the fan-out win. A third pass re-runs the warm
// query with end-to-end tracing on: its hash folds into hash_match
// (tracing must not perturb bytes), trace_overhead (traced wall over
// warm wall) is the noisy-class cost of the instrumented wire path,
// and the phase_*_ms fields record where the traced query's wall went
// (queue wait, prefetch barrier, range execution, merge) from the
// coordinator's spans.
type serveBench struct {
	Hosts        int     `json:"hosts"`
	FidelityMode string  `json:"fidelity_mode,omitempty"`
	Warm         string  `json:"warm,omitempty"`
	Tol          float64 `json:"tol"`

	SingleHash        string  `json:"single_hash"`
	SingleWallSeconds float64 `json:"single_wall_seconds"`
	SingleHostsPerSec float64 `json:"single_hosts_per_sec"`

	ColdHash        string  `json:"cold_hash"`
	ColdWallSeconds float64 `json:"cold_wall_seconds"`
	ColdHostsPerSec float64 `json:"cold_hosts_per_sec"`

	WarmHash        string  `json:"warm_hash"`
	WarmWallSeconds float64 `json:"warm_wall_seconds"`
	WarmHostsPerSec float64 `json:"warm_hosts_per_sec"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	WarmAnchorRuns  uint64  `json:"warm_anchor_runs"`
	WarmSimulated   uint64  `json:"warm_simulated"`

	TracedHash        string  `json:"traced_hash,omitempty"`
	TracedWallSeconds float64 `json:"traced_wall_seconds,omitempty"`
	TraceSpans        int     `json:"trace_spans,omitempty"`
	TraceOverhead     float64 `json:"trace_overhead,omitempty"`
	PhaseQueueMS      float64 `json:"phase_queue_ms,omitempty"`
	PhasePrefetchMS   float64 `json:"phase_prefetch_ms,omitempty"`
	PhaseExecuteMS    float64 `json:"phase_execute_ms,omitempty"`
	PhaseMergeMS      float64 `json:"phase_merge_ms,omitempty"`
	FedSumMatch       bool    `json:"fed_sum_match"`

	HashMatch    bool    `json:"hash_match"`
	ScalingRatio float64 `json:"scaling_ratio"`
	Workers      int     `json:"workers"`
	Ranges       int     `json:"ranges"`
	Reassigned   uint64  `json:"reassigned"`
	Duplicates   uint64  `json:"duplicates"`
	MergeSkew    float64 `json:"merge_skew"`
}

// runServe measures the serving layer end to end in one process:
// coordinator, two workers, and the client all here, talking over real
// loopback HTTP exactly as the hicserve binary wires them.
func runServe(hosts int, tol float64) (serveBench, error) {
	sb := serveBench{Hosts: hosts, FidelityMode: "auto", Warm: "off", Tol: tol}
	spec := serve.QueryRequest{
		Hosts:     hosts,
		Seed:      1,
		WarmupMS:  2,
		MeasureMS: 3,
		Fidelity:  "auto",
		Tol:       tol,
		EarlyStop: true,
		// Fixed shard granularity so the range count (and therefore the
		// lease protocol traffic) is machine-independent.
		RangeHosts: (hosts + 15) / 16,
	}

	// Single-process reference: the identical scenario and router config
	// a worker builds (see serve.(*Worker).routerFor), private cache.
	singleDir, err := os.MkdirTemp("", "hicbench-serve-single-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(singleDir)
	sstore, err := runcache.Open(singleDir)
	if err != nil {
		return sb, err
	}
	scfg := spec.ClusterConfig()
	scfg.Cache = sstore
	router, err := fidelity.New(fidelity.Config{
		Mode:        fidelity.ModeAuto,
		Tol:         tol,
		EarlyStop:   true,
		AnchorSeeds: cluster.SeedPool(scfg),
		Cache:       sstore,
		// Workers enable knee search and transfer unless the spec
		// disables them (serve.Worker routerFor); the reference must
		// route identically or the hash gate is comparing strategies.
		KneeSearch: true,
		Transfer:   true,
	})
	if err != nil {
		return sb, err
	}
	scfg.Exec = router
	hasher := cluster.NewPointHasher()
	start := time.Now()
	if _, err := cluster.RunStream(scfg, func(p cluster.Point) error {
		hasher.Add(p)
		return nil
	}); err != nil {
		return sb, err
	}
	sb.SingleWallSeconds = time.Since(start).Seconds()
	sb.SingleHash = hasher.Sum()
	sb.SingleHostsPerSec = float64(hosts) / sb.SingleWallSeconds

	// Coordinator with a fresh store, two in-process workers over real
	// loopback HTTP.
	coordDir, err := os.MkdirTemp("", "hicbench-serve-coord-")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(coordDir)
	cstore, err := runcache.Open(coordDir)
	if err != nil {
		return sb, err
	}
	// The coordinator carries its obs control plane so the federated
	// per-worker counters are scrapeable from /metrics on the same mux,
	// exactly as hicserve wires it.
	obsSrv := obs.NewServer(obs.Options{Warn: os.Stderr})
	defer obsSrv.Close()
	srv, err := serve.NewServer(serve.Options{Store: cstore, LeaseTimeout: 2 * time.Minute, Obs: obsSrv})
	if err != nil {
		return sb, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return sb, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const nWorkers = 2
	for i := 0; i < nWorkers; i++ {
		w := serve.NewWorker(base, serve.WorkerOptions{Name: fmt.Sprintf("bench%d", i)})
		go w.Run(ctx) //nolint:errcheck // ends with ctx
	}
	sb.Workers = nWorkers

	client := serve.NewClient(base, nil)
	cold, err := client.Query(ctx, spec, nil)
	if err != nil {
		return sb, fmt.Errorf("cold query: %w", err)
	}
	warm, err := client.Query(ctx, spec, nil)
	if err != nil {
		return sb, fmt.Errorf("warm query: %w", err)
	}

	// Third pass: the warm query again with end-to-end tracing on, so
	// the overhead comparison is warm-vs-warm (same resident routers,
	// same cache state) and isolates the instrumented wire path.
	tspec := spec
	tspec.Trace = true
	traced, err := client.Query(ctx, tspec, nil)
	if err != nil {
		return sb, fmt.Errorf("traced query: %w", err)
	}

	sb.ColdHash = cold.AggregateHash
	sb.ColdWallSeconds = cold.ElapsedMS / 1e3
	sb.ColdHostsPerSec = cold.HostsPerSec
	sb.WarmHash = warm.AggregateHash
	sb.WarmWallSeconds = warm.ElapsedMS / 1e3
	sb.WarmHostsPerSec = warm.HostsPerSec
	if sb.ColdHostsPerSec > 0 {
		sb.WarmSpeedup = sb.WarmHostsPerSec / sb.ColdHostsPerSec
	}
	sb.WarmAnchorRuns = warm.Stats.AnchorRuns
	sb.WarmSimulated = warm.Stats.Simulated
	sb.TracedHash = traced.AggregateHash
	sb.TracedWallSeconds = traced.ElapsedMS / 1e3
	sb.TraceSpans = len(traced.Trace)
	if sb.WarmWallSeconds > 0 {
		sb.TraceOverhead = sb.TracedWallSeconds / sb.WarmWallSeconds
	}
	if p := traced.Phases; p != nil {
		sb.PhaseQueueMS = p.QueueMS
		sb.PhasePrefetchMS = p.PrefetchMS
		sb.PhaseExecuteMS = p.ExecuteMS
		sb.PhaseMergeMS = p.MergeMS
	}
	sb.HashMatch = cold.AggregateHash == sb.SingleHash &&
		warm.AggregateHash == sb.SingleHash &&
		traced.AggregateHash == sb.SingleHash
	if sb.SingleHostsPerSec > 0 {
		sb.ScalingRatio = sb.ColdHostsPerSec / sb.SingleHostsPerSec
	}
	sb.Ranges = cold.Ranges
	sb.Reassigned = cold.Reassigned + warm.Reassigned + traced.Reassigned
	sb.Duplicates = cold.Duplicates + warm.Duplicates + traced.Duplicates
	sb.MergeSkew = cold.MergeSkew
	if warm.MergeSkew > sb.MergeSkew {
		sb.MergeSkew = warm.MergeSkew
	}
	if !sb.HashMatch {
		fmt.Fprintf(os.Stderr, "hicbench: WARNING: serve hash mismatch: single %s cold %s warm %s traced %s\n",
			sb.SingleHash, sb.ColdHash, sb.WarmHash, sb.TracedHash)
	}

	// Federation contract: the per-worker counters the coordinator
	// serves on /metrics sum to the merged queries' counters (both fold
	// the same accepted partials, so any drift is lost or
	// double-counted attribution).
	merged := []struct {
		name string
		want float64
	}{
		{"hic_worker_hosts_done_total", float64(cold.Stats.Hosts + warm.Stats.Hosts + traced.Stats.Hosts)},
		{"hic_worker_simulated_total", float64(cold.Stats.Simulated + warm.Stats.Simulated + traced.Stats.Simulated)},
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return sb, fmt.Errorf("scraping coordinator metrics: %w", err)
	}
	doc, err := obs.ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		return sb, fmt.Errorf("parsing coordinator metrics: %w", err)
	}
	sb.FedSumMatch = true
	for _, m := range merged {
		var sum float64
		for _, s := range doc.Find(m.name) {
			sum += s.Value
		}
		if sum != m.want {
			sb.FedSumMatch = false
			fmt.Fprintf(os.Stderr, "hicbench: WARNING: federated sum(%s) = %g, want %g\n",
				m.name, sum, m.want)
		}
	}
	return sb, nil
}
