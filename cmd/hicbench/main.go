// Command hicbench measures the simulator's hot path and writes the
// results as JSON, comparing the current engine against the preserved
// pre-rewrite implementation (internal/sim/legacy).
//
//	hicbench                       # print BENCH_hotpath.json content
//	hicbench -out BENCH_hotpath.json
//
// Four sections:
//   - engine: schedule→fire and heap-churn microbenchmarks on both
//     engines, with events/sec and the measured speedup ratio;
//   - packet_path: one full pooled packet lifetime vs heap allocation;
//   - fig6_scenario: the paper's Figure 6 memory-antagonist point run
//     end to end, reporting wall-clock and simulated events/sec (the
//     whole-simulator number the microbenchmarks feed into);
//   - fleet: a Figure 1 fleet on the pooled worker runner with
//     singleflight dedup versus the pre-pool goroutine-per-host
//     baseline, reporting hosts/sec, dedup rate, and peak memory;
//   - fidelity: the multi-fidelity execution layer — per-point cost of
//     the fluid solver vs full DES, and the same fleet re-run with
//     -fidelity=auto routing (calibrated fluid + early stopping +
//     audit), reporting hosts/sec, the routing counters, and the
//     speedup over the pure-DES fleet section above;
//   - warm_start: the cross-run warm start — the auto-routed fleet run
//     cold then warm against one persistent store (anchors reloaded,
//     DES points resumed from checkpoints), plus one warm-resumed
//     point's allocation profile for the regression gate;
//   - serve: the long-lived serving layer — one catalog query run
//     single-process, then cold and warm through a coordinator sharding
//     ranges across two in-process workers over loopback HTTP, gating
//     merged-aggregate byte-identity (hash_match) and worker residency
//     (the warm query calibrates and simulates nothing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hic/internal/cluster"
	"hic/internal/core"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/pkt"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
	"hic/internal/sim/legacy"
)

// benchResult is one benchmark's headline numbers.
type benchResult struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func toResult(r testing.BenchmarkResult, perOpEvents float64) benchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out := benchResult{
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if perOpEvents > 0 && ns > 0 {
		out.EventsPerSec = perOpEvents * 1e9 / ns
	}
	return out
}

const churnDepth = 256

// engineWorkload drives a fig6-like event mix against either engine:
// self-rescheduling events (DMA completion chains) at churn depth, plus
// a cancelled timer per fire (the retransmit timer armed and disarmed
// on every delivered packet).
func newEngineWorkload(b *testing.B) {
	e := sim.NewEngine(1)
	target := uint64(b.N) + churnDepth
	var pendingTimer sim.EventID
	var tick func()
	timerFn := func() {}
	tick = func() {
		if e.Processed() >= target {
			e.Stop()
			return
		}
		pendingTimer.Cancel()
		pendingTimer = e.After(sim.Duration(5000), timerFn)
		e.After(sim.Duration(1+e.RNG().Intn(997)), tick)
	}
	for i := 0; i < churnDepth; i++ {
		e.After(sim.Duration(1+e.RNG().Intn(997)), tick)
	}
	b.ResetTimer()
	e.Run(math.MaxInt64 - 1)
}

func legacyEngineWorkload(b *testing.B) {
	e := legacy.NewEngine()
	rng := sim.NewRNG(1)
	target := uint64(b.N) + churnDepth
	var pendingTimer legacy.EventID
	var tick func()
	timerFn := func() {}
	tick = func() {
		if e.Processed() >= target {
			e.Stop()
			return
		}
		pendingTimer.Cancel()
		pendingTimer = e.After(sim.Duration(5000), timerFn)
		e.After(sim.Duration(1+rng.Intn(997)), tick)
	}
	for i := 0; i < churnDepth; i++ {
		e.After(sim.Duration(1+rng.Intn(997)), tick)
	}
	b.ResetTimer()
	e.Run(math.MaxInt64 - 1)
}

func packetPathWorkload(b *testing.B) {
	pl := pkt.NewPool()
	p := pl.Data(0, 1, 0, 0, 4096)
	a := pl.Ack(0, p)
	pl.Release(p)
	pl.Release(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pl.Data(uint64(i), 1, 0, uint64(i), 4096)
		a := pl.Ack(uint64(i), p)
		pl.Release(p)
		pl.Release(a)
	}
}

// fig6Scenario runs the Figure 6 memory-antagonist point end to end and
// reports whole-simulator throughput in events per second.
type fig6Scenario struct {
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	AppGbps      float64 `json:"app_throughput_gbps"`
}

func runFig6() (fig6Scenario, error) {
	p := core.DefaultParams(12)
	p.AntagonistCores = 8
	p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	tb, err := p.Build()
	if err != nil {
		return fig6Scenario{}, err
	}
	start := time.Now()
	res := tb.Run(p.Warmup, p.Measure)
	wall := time.Since(start).Seconds()
	ev := tb.Engine.Processed()
	return fig6Scenario{
		WallSeconds:  wall,
		Events:       ev,
		EventsPerSec: float64(ev) / wall,
		AppGbps:      res.AppThroughputGbps,
	}, nil
}

// observatoryBench measures what attaching the sim-time observatory
// costs: the fig6 scenario with the sampler off (the fig6 section's
// own run) versus on, in whole-simulator events/sec.
type observatoryBench struct {
	SamplerOffWallSeconds  float64 `json:"sampler_off_wall_seconds"`
	SamplerOnWallSeconds   float64 `json:"sampler_on_wall_seconds"`
	SamplerOffEventsPerSec float64 `json:"sampler_off_events_per_sec"`
	SamplerOnEventsPerSec  float64 `json:"sampler_on_events_per_sec"`
	OverheadPct            float64 `json:"overhead_pct"`
	Episodes               int     `json:"episodes"`
	Samples                uint64  `json:"samples"`
}

// runObservatory reruns the fig6 point with the observatory sampling at
// the default cadence and compares against the sampler-off run.
func runObservatory(off fig6Scenario) (observatoryBench, error) {
	p := core.DefaultParams(12)
	p.AntagonistCores = 8
	p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	tb, err := p.Build()
	if err != nil {
		return observatoryBench{}, err
	}
	mon := observatory.Attach(tb, observatory.DefaultConfig())
	start := time.Now()
	tb.Run(p.Warmup, p.Measure)
	wall := time.Since(start).Seconds()
	hr := mon.Report()
	ob := observatoryBench{
		SamplerOffWallSeconds:  off.WallSeconds,
		SamplerOnWallSeconds:   wall,
		SamplerOffEventsPerSec: off.EventsPerSec,
		SamplerOnEventsPerSec:  float64(tb.Engine.Processed()) / wall,
		Episodes:               len(hr.Episodes),
		Samples:                hr.Samples,
	}
	if off.WallSeconds > 0 {
		ob.OverheadPct = (wall/off.WallSeconds - 1) * 100
	}
	return ob, nil
}

// fleetBench compares the pooled, deduplicated fleet path against the
// pre-pool execution model (one goroutine and one fresh engine per
// host, no dedup). The baseline runs fewer hosts — its per-host cost is
// host-count-independent, so hosts/sec extrapolates — and BaselineHosts
// records how many were actually run. Peak memory is HeapInuse+
// StackInuse sampled during the run (not VmHWM, which never shrinks).
type fleetBench struct {
	Hosts int `json:"hosts"`
	// FidelityMode and Warm record how this fleet executed ("des"/"off"
	// here) so -compare can refuse to gate rates across modes: a DES
	// fleet and an auto-routed or warm-started fleet measure different
	// work even at the same host count.
	FidelityMode         string  `json:"fidelity_mode,omitempty"`
	Warm                 string  `json:"warm,omitempty"`
	WallSeconds          float64 `json:"wall_seconds"`
	HostsPerSec          float64 `json:"hosts_per_sec"`
	Simulated            uint64  `json:"simulated"`
	Deduplicated         uint64  `json:"deduplicated"`
	DedupRate            float64 `json:"dedup_rate"`
	PeakMemBytes         uint64  `json:"peak_mem_bytes"`
	BaselineHosts        int     `json:"baseline_hosts"`
	BaselineWallSeconds  float64 `json:"baseline_wall_seconds"`
	BaselineHostsPerSec  float64 `json:"baseline_hosts_per_sec"`
	BaselinePeakMemBytes uint64  `json:"baseline_peak_mem_bytes"`
	SpeedupRatio         float64 `json:"speedup_ratio"`
}

// memPeak samples the Go heap while a workload runs and keeps the max.
type memPeak struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startMemPeak() *memPeak {
	runtime.GC()
	m := &memPeak{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		var ms runtime.MemStats
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if v := ms.HeapInuse + ms.StackInuse; v > m.peak {
				m.peak = v
			}
			select {
			case <-m.stop:
				return
			case <-t.C:
			}
		}
	}()
	return m
}

func (m *memPeak) Stop() uint64 {
	close(m.stop)
	<-m.done
	return m.peak
}

func fleetConfig(hosts int) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = hosts
	// Shortened windows (the defaults are 8 ms + 12 ms): the bench
	// compares execution models, not physics, and the dedup rate is
	// window-independent. The measure still spans several burst
	// periods (1-2 ms in the catalog) so duty-cycled workloads behave
	// like they do at full length.
	cfg.Warmup, cfg.Measure = 4*sim.Millisecond, 8*sim.Millisecond
	return cfg
}

func runFleet(hosts, baselineHosts int) (fleetBench, error) {
	// Pooled path: shared worker pool, arena reuse, singleflight dedup.
	cfg := fleetConfig(hosts)
	cfg.Progress = runner.NewProgress(os.Stderr, "fleet bench", "hosts", hosts, 5*time.Second)
	mp := startMemPeak()
	start := time.Now()
	st, err := cluster.RunStream(cfg, nil)
	wall := time.Since(start).Seconds()
	peak := mp.Stop()
	cfg.Progress.Finish()
	if err != nil {
		return fleetBench{}, err
	}
	fb := fleetBench{
		Hosts:        hosts,
		FidelityMode: "des",
		Warm:         "off",
		WallSeconds:  wall,
		HostsPerSec:  float64(hosts) / wall,
		Simulated:    st.Simulated,
		Deduplicated: st.Collapsed,
		PeakMemBytes: peak,
	}
	if total := st.Simulated + st.Collapsed; total > 0 {
		fb.DedupRate = float64(st.Collapsed) / float64(total)
	}

	// Baseline: the pre-pool model — one goroutine per host, a fresh
	// engine each, every host simulated.
	bcfg := fleetConfig(baselineHosts)
	mp = startMemPeak()
	start = time.Now()
	var wg sync.WaitGroup
	errs := make([]error, baselineHosts)
	for i := 0; i < baselineHosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _ := cluster.HostScenario(bcfg, i)
			_, errs[i] = core.Run(p)
		}(i)
	}
	wg.Wait()
	fb.BaselineWallSeconds = time.Since(start).Seconds()
	fb.BaselinePeakMemBytes = mp.Stop()
	for _, err := range errs {
		if err != nil {
			return fleetBench{}, err
		}
	}
	fb.BaselineHosts = baselineHosts
	fb.BaselineHostsPerSec = float64(baselineHosts) / fb.BaselineWallSeconds
	if fb.BaselineHostsPerSec > 0 {
		fb.SpeedupRatio = fb.HostsPerSec / fb.BaselineHostsPerSec
	}
	return fb, nil
}

// fidelityBench is the multi-fidelity section: what one point costs
// under the fluid solver vs full DES, and what the fleet gains from
// -fidelity=auto routing over the pure-DES fleet section.
type fidelityBench struct {
	// FluidPointNs is one fluid solve of the Figure 6 point;
	// DESPointMs is the same point under full DES (the fig6 scenario
	// wall-clock), so PointSpeedup is the raw per-point model ratio.
	FluidPointNs float64 `json:"fluid_point_ns"`
	DESPointMs   float64 `json:"des_point_ms"`
	PointSpeedup float64 `json:"point_speedup"`

	// The auto-routed fleet (same size and windows as the fleet
	// section): routing tolerance, execution accounting, and audit
	// outcome. SpeedupVsDES compares hosts/sec against the pure-DES
	// fleet section measured in the same process. FidelityMode/Warm
	// ("auto"/"off") mark the execution mode for the -compare gate.
	FidelityMode string  `json:"fidelity_mode,omitempty"`
	Warm         string  `json:"warm,omitempty"`
	Tol          float64 `json:"tol"`
	AuditRate    float64 `json:"audit_rate"`
	Hosts        int     `json:"hosts"`
	WallSeconds  float64 `json:"wall_seconds"`
	HostsPerSec  float64 `json:"hosts_per_sec"`
	Simulated    uint64  `json:"simulated"`
	Deduplicated uint64  `json:"deduplicated"`
	FluidRouted  uint64  `json:"fluid_routed"`
	EarlyStopped uint64  `json:"early_stopped"`
	AnchorRuns   uint64  `json:"anchor_runs"`
	Audited      uint64  `json:"audited"`
	AuditOverTol uint64  `json:"audit_over_tol"`
	AuditMaxErr  float64 `json:"audit_max_err"`
	PeakMemBytes uint64  `json:"peak_mem_bytes"`
	SpeedupVsDES float64 `json:"speedup_vs_des"`
}

// runFleetFidelity re-runs the fleet with ModeAuto routing (calibrated
// fluid fast path, steady-state early stopping, deterministic audits)
// and compares against desHostsPerSec from the pure-DES fleet section.
func runFleetFidelity(hosts int, tol, auditRate, desHostsPerSec float64) (fidelityBench, error) {
	p := core.DefaultParams(12)
	p.AntagonistCores = 8
	p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	fb := fidelityBench{FidelityMode: "auto", Warm: "off", Tol: tol, AuditRate: auditRate, Hosts: hosts}
	fluidRes := toResult(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunFluid(p); err != nil {
				b.Fatal(err)
			}
		}
	}), 0)
	fb.FluidPointNs = fluidRes.NsPerOp

	des, err := runFig6()
	if err != nil {
		return fidelityBench{}, err
	}
	fb.DESPointMs = des.WallSeconds * 1e3
	if fb.FluidPointNs > 0 {
		fb.PointSpeedup = des.WallSeconds * 1e9 / fb.FluidPointNs
	}

	cfg := fleetConfig(hosts)
	router, err := fidelity.New(fidelity.Config{
		Mode:        fidelity.ModeAuto,
		Tol:         tol,
		AuditRate:   auditRate,
		EarlyStop:   true,
		AnchorSeeds: cluster.SeedPool(cfg),
	})
	if err != nil {
		return fidelityBench{}, err
	}
	cfg.Exec = router
	cfg.Progress = runner.NewProgress(os.Stderr, "fleet auto", "hosts", hosts, 5*time.Second)
	mp := startMemPeak()
	start := time.Now()
	st, err := cluster.RunStream(cfg, nil)
	fb.WallSeconds = time.Since(start).Seconds()
	fb.PeakMemBytes = mp.Stop()
	cfg.Progress.Finish()
	if err != nil {
		return fidelityBench{}, err
	}
	fb.HostsPerSec = float64(hosts) / fb.WallSeconds
	fb.Simulated = st.Simulated
	fb.Deduplicated = st.Collapsed
	fb.FluidRouted = st.FluidRouted
	fb.EarlyStopped = st.EarlyStopped
	fb.AnchorRuns = st.AnchorRuns
	fb.Audited = st.Audited
	fb.AuditOverTol = st.AuditOverTol
	fb.AuditMaxErr = st.AuditMaxErr
	if desHostsPerSec > 0 {
		fb.SpeedupVsDES = fb.HostsPerSec / desHostsPerSec
	}
	if fb.AuditOverTol > 0 {
		fmt.Fprintf(os.Stderr, "hicbench: WARNING: %d/%d audited points exceeded tol %.3f (max err %.4f)\n",
			fb.AuditOverTol, fb.Audited, tol, fb.AuditMaxErr)
	}
	return fb, nil
}

// warmStartBench measures the cross-run warm start: the same
// auto-routed fleet run twice against one persistent warm store. The
// cold pass calibrates from scratch and donates checkpoints; the warm
// pass uses a fresh router over the same store, so anchors load from
// disk and DES-routed points warm-start from the nearest checkpointed
// donor. WarmSpeedup is the warm pass's hosts/sec over the cold
// pass's — the "second invocation" win a user sees with -warm=full.
//
// WarmPoint is one fixed warm-started DES point measured under
// testing.Benchmark. Its allocation counts are the exact-class metric
// for the -compare gate: fleet-level totals flap with dedup
// scheduling, a single deterministic warm resume does not.
type warmStartBench struct {
	Hosts         int     `json:"hosts"`
	FidelityMode  string  `json:"fidelity_mode,omitempty"`
	Warm          string  `json:"warm,omitempty"`
	Tol           float64 `json:"tol"`
	AuditRate     float64 `json:"audit_rate"`
	WarmAuditRate float64 `json:"warm_audit_rate"`

	ColdWallSeconds float64 `json:"cold_wall_seconds"`
	ColdHostsPerSec float64 `json:"cold_hosts_per_sec"`
	WarmWallSeconds float64 `json:"warm_wall_seconds"`
	WarmHostsPerSec float64 `json:"warm_hosts_per_sec"`
	WarmSpeedup     float64 `json:"warm_speedup"`

	// Cold-pass persistence: anchor DES runs paid once, calibration
	// blobs and checkpoints written for the warm pass to consume.
	ColdAnchorRuns  uint64 `json:"cold_anchor_runs"`
	AnchorPersisted uint64 `json:"anchor_persisted"`
	Checkpoints     uint64 `json:"checkpoints"`

	// Warm-pass consumption and the warm-start accuracy audit.
	WarmAnchorRuns   uint64  `json:"warm_anchor_runs"`
	AnchorLoaded     uint64  `json:"anchor_loaded"`
	WarmStarted      uint64  `json:"warm_started"`
	WarmAudited      uint64  `json:"warm_audited"`
	WarmAuditOverTol uint64  `json:"warm_audit_over_tol"`
	WarmAuditMaxErr  float64 `json:"warm_audit_max_err"`

	WarmPoint    benchResult `json:"warm_point"`
	PeakMemBytes uint64      `json:"peak_mem_bytes"`
}

// runWarmStart runs the cold-then-warm fleet pair against a throwaway
// warm store, then benchmarks a single warm-started point.
func runWarmStart(hosts int, tol, auditRate, warmAuditRate float64) (warmStartBench, error) {
	wb := warmStartBench{
		Hosts: hosts, FidelityMode: "auto", Warm: "full",
		Tol: tol, AuditRate: auditRate, WarmAuditRate: warmAuditRate,
	}
	warmDir, err := os.MkdirTemp("", "hicbench-warm-")
	if err != nil {
		return wb, err
	}
	defer os.RemoveAll(warmDir)

	// Each pass opens its own store and router: checkpoints captured
	// in-process are never donors, so a fresh router per pass is what
	// makes the second pass a faithful "second invocation".
	runOnce := func(label string) (fidelity.Counters, float64, error) {
		store, err := runcache.Open(warmDir)
		if err != nil {
			return fidelity.Counters{}, 0, err
		}
		cfg := fleetConfig(hosts)
		router, err := fidelity.New(fidelity.Config{
			Mode:          fidelity.ModeAuto,
			Tol:           tol,
			AuditRate:     auditRate,
			EarlyStop:     true,
			AnchorSeeds:   cluster.SeedPool(cfg),
			Warm:          fidelity.WarmFull,
			WarmStore:     store,
			WarmAuditRate: warmAuditRate,
		})
		if err != nil {
			return fidelity.Counters{}, 0, err
		}
		cfg.Exec = router
		cfg.Progress = runner.NewProgress(os.Stderr, label, "hosts", hosts, 5*time.Second)
		start := time.Now()
		_, err = cluster.RunStream(cfg, nil)
		wall := time.Since(start).Seconds()
		cfg.Progress.Finish()
		if err != nil {
			return fidelity.Counters{}, 0, err
		}
		return router.Counters(), wall, nil
	}

	mp := startMemPeak()
	coldC, coldWall, err := runOnce("fleet cold")
	if err != nil {
		mp.Stop()
		return wb, err
	}
	warmC, warmWall, err := runOnce("fleet warm")
	wb.PeakMemBytes = mp.Stop()
	if err != nil {
		return wb, err
	}
	wb.ColdWallSeconds = coldWall
	wb.ColdHostsPerSec = float64(hosts) / coldWall
	wb.WarmWallSeconds = warmWall
	wb.WarmHostsPerSec = float64(hosts) / warmWall
	if wb.ColdHostsPerSec > 0 {
		wb.WarmSpeedup = wb.WarmHostsPerSec / wb.ColdHostsPerSec
	}
	wb.ColdAnchorRuns = coldC.AnchorRuns
	wb.AnchorPersisted = coldC.AnchorPersisted
	wb.Checkpoints = coldC.WarmCheckpoints
	wb.WarmAnchorRuns = warmC.AnchorRuns
	wb.AnchorLoaded = warmC.AnchorLoaded
	wb.WarmStarted = warmC.WarmStarted
	wb.WarmAudited = warmC.WarmAudited
	wb.WarmAuditOverTol = warmC.WarmAuditOverTol
	wb.WarmAuditMaxErr = warmC.WarmAuditMaxErr
	if wb.WarmAuditOverTol > 0 {
		fmt.Fprintf(os.Stderr, "hicbench: WARNING: %d/%d warm-audited points exceeded tol %.3f (max err %.4f)\n",
			wb.WarmAuditOverTol, wb.WarmAudited, tol, wb.WarmAuditMaxErr)
	}

	// Warm-point microbenchmark: one checkpoint donation plus the
	// sibling seed's warm resume (build, prime, guard window, measure),
	// timed at the core layer so every iteration really re-simulates —
	// the router's singleflight retains completed results, which would
	// turn a repeated planned run into a map lookup.
	p := core.DefaultParams(4)
	p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond
	_, snap, err := core.RunAndSnapshotOn(p, nil)
	if err != nil {
		return wb, err
	}
	p2 := p
	p2.Seed = 42
	guard := core.DefaultWarmGuard(p2)
	if _, err := core.RunWarmOn(p2, snap, guard, nil); err != nil { // pool warm-up outside the timed loop
		return wb, err
	}
	wb.WarmPoint = toResult(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunWarmOn(p2, snap, guard, nil); err != nil {
				b.Fatal(err)
			}
		}
	}), 0)
	return wb, nil
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Engine    struct {
		New          benchResult `json:"new"`
		Legacy       benchResult `json:"legacy"`
		SpeedupRatio float64     `json:"speedup_ratio"`
	} `json:"engine"`
	PacketPath struct {
		Pooled benchResult `json:"pooled"`
		Heap   benchResult `json:"heap"`
	} `json:"packet_path"`
	// Fig6 runs with the free lists on (the default); Fig6NoPools runs
	// the same scenario with event and packet recycling disabled, the
	// whole-figure before/after for the allocation-free hot path.
	Fig6        fig6Scenario `json:"fig6_scenario"`
	Fig6NoPools fig6Scenario `json:"fig6_scenario_no_pools"`
	// Observatory is the sim-time observatory's overhead on the fig6
	// scenario: sampler on vs off.
	Observatory observatoryBench `json:"observatory"`
	Fleet       fleetBench       `json:"fleet"`
	Fidelity    fidelityBench    `json:"fidelity"`
	// ColdPath is the cold-path acceleration pair: the never-seen
	// auto-routed fleet with knee search and calibration transfer off
	// (the pre-acceleration baseline) then on, plus the sharded
	// determinism check (1-worker and 2-worker coordinator runs must
	// hash-match the in-process run).
	ColdPath coldPathBench `json:"cold_path"`
	// WarmStart is the cross-run warm-start pair: the auto-routed fleet
	// cold (calibrating, donating checkpoints) then warm (fresh router,
	// same persistent store) plus one warm-resumed point's exact-class
	// allocation profile.
	WarmStart warmStartBench `json:"warm_start"`
	// Serve is the serving layer: a coordinator sharding one catalog
	// query across two workers, gated on byte-identity with the
	// single-process run and on warm-query residency.
	Serve serveBench `json:"serve"`
}

var heapSink *pkt.Packet

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	fleetHosts := flag.Int("fleet-hosts", 10000, "fleet-bench size on the pooled path (0 skips the fleet bench)")
	fleetBaseline := flag.Int("fleet-baseline-hosts", 256, "hosts for the goroutine-per-host baseline (hosts/sec extrapolates)")
	fleetOnly := flag.Bool("fleet-only", false, "run only the fleet bench, skipping the engine and packet microbenchmarks")
	// 0.10 is the bench's routing tolerance (the CLIs default to a more
	// conservative 0.05): the routing gate only admits points bounded
	// under 0.7×tol = 7%, and the audit verifies the observed error
	// stays under tol on every sampled point.
	fidelityTol := flag.Float64("fidelity-tol", 0.10, "auto-routing tolerance for the fidelity fleet bench")
	auditRate := flag.Float64("audit-rate", 0.05, "fraction of fluid-routed hosts shadow-run under DES in the fidelity fleet bench")
	noFidelity := flag.Bool("no-fidelity", false, "skip the fidelity (auto-routed fleet) section")
	coldHosts := flag.Int("cold-hosts", 10000, "fleet size for the cold_path (knee search + calibration transfer) section (0 skips it)")
	noCold := flag.Bool("no-cold", false, "skip the cold_path (cold-path acceleration) section")
	coldOnly := flag.Bool("cold-only", false, "run only the cold_path section, skipping everything else")
	warmAuditRate := flag.Float64("warm-audit-rate", 0.05, "fraction of warm-startable points re-run cold under DES in the warm-start fleet bench")
	noWarm := flag.Bool("no-warm", false, "skip the warm_start (cold-then-warm fleet) section")
	warmOnly := flag.Bool("warm-only", false, "run only the warm_start section, skipping everything else")
	serveHosts := flag.Int("serve-hosts", 400, "catalog-query size for the serve (coordinator + 2 workers) section (0 skips it)")
	noServe := flag.Bool("no-serve", false, "skip the serve (sharded coordinator) section")
	serveOnly := flag.Bool("serve-only", false, "run only the serve section, skipping everything else")
	compareOld := flag.String("compare", "", "regression gate: compare this baseline JSON against the new JSON given as the positional argument, exit non-zero on regression (no benches run)")
	compareTol := flag.Float64("compare-tol", 0.25, "allowed relative degradation for noisy (timing/rate) metrics with -compare; allocation counts are exact-class and tolerate nothing")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *compareOld != "" {
		newPath := flag.Arg(0)
		if newPath == "" {
			fmt.Fprintln(os.Stderr, "usage: hicbench -compare <old.json> <new.json>")
			os.Exit(2)
		}
		os.Exit(runCompare(*compareOld, newPath, *compareTol))
	}

	var orun *obs.Run // nil-safe
	if srv, err := obsFlags.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		os.Exit(1)
	} else if srv != nil {
		defer srv.Close()
		srv.AddSource(runner.Shared())
		orun = srv.StartRun("bench", 9, "engine", "packet_path", "fig6", "observatory", "fleet", "fidelity", "cold_path", "warm_start", "serve")
		defer orun.Finish()
	}

	var rep report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH

	if !*fleetOnly && !*warmOnly && !*serveOnly && !*coldOnly {
		// Each workload processes ~1 event per op (the churn fires one event
		// and schedules one replacement plus a timer arm/cancel pair).
		orun.SetPhase("engine")
		rep.Engine.New = toResult(testing.Benchmark(newEngineWorkload), 1)
		rep.Engine.Legacy = toResult(testing.Benchmark(legacyEngineWorkload), 1)
		if rep.Engine.New.NsPerOp > 0 {
			rep.Engine.SpeedupRatio = rep.Engine.Legacy.NsPerOp / rep.Engine.New.NsPerOp
		}
		orun.Advance(1)

		orun.SetPhase("packet_path")
		rep.PacketPath.Pooled = toResult(testing.Benchmark(packetPathWorkload), 0)
		rep.PacketPath.Heap = toResult(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pkt.NewData(uint64(i), 1, 0, uint64(i), 4096)
				a := pkt.NewAck(uint64(i), p)
				heapSink = p
				heapSink = a
			}
		}), 0)
		orun.Advance(1)

		orun.SetPhase("fig6")
		fig6, err := runFig6()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: fig6 scenario: %v\n", err)
			os.Exit(1)
		}
		rep.Fig6 = fig6

		sim.SetEventPooling(false)
		pkt.SetPooling(false)
		noPools, err := runFig6()
		sim.SetEventPooling(true)
		pkt.SetPooling(true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: fig6 scenario (no pools): %v\n", err)
			os.Exit(1)
		}
		rep.Fig6NoPools = noPools
		orun.Advance(1)

		orun.SetPhase("observatory")
		ob, err := runObservatory(fig6)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: observatory bench: %v\n", err)
			os.Exit(1)
		}
		rep.Observatory = ob
		orun.Advance(1)
	}

	if *fleetHosts > 0 && !*warmOnly && !*serveOnly && !*coldOnly {
		orun.SetPhase("fleet")
		fleet, err := runFleet(*fleetHosts, *fleetBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: fleet bench: %v\n", err)
			os.Exit(1)
		}
		rep.Fleet = fleet
		orun.Advance(1)

		if !*noFidelity {
			orun.SetPhase("fidelity")
			fid, err := runFleetFidelity(*fleetHosts, *fidelityTol, *auditRate, fleet.HostsPerSec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hicbench: fidelity bench: %v\n", err)
				os.Exit(1)
			}
			rep.Fidelity = fid
			orun.Advance(1)
		}
	}

	if *coldHosts > 0 && !*noCold && !*fleetOnly && !*warmOnly && !*serveOnly {
		orun.SetPhase("cold_path")
		// Reuse the fidelity section's pass as the baseline when it ran
		// the identical configuration at the same scale.
		var fid *fidelityBench
		if rep.Fidelity.Hosts > 0 {
			fid = &rep.Fidelity
		}
		cold, err := runColdPath(*coldHosts, *fidelityTol, *auditRate, fid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: cold-path bench: %v\n", err)
			os.Exit(1)
		}
		rep.ColdPath = cold
		orun.Advance(1)
	}

	if *fleetHosts > 0 && !*noWarm && !*serveOnly && !*coldOnly {
		orun.SetPhase("warm_start")
		warm, err := runWarmStart(*fleetHosts, *fidelityTol, *auditRate, *warmAuditRate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: warm-start bench: %v\n", err)
			os.Exit(1)
		}
		rep.WarmStart = warm
		orun.Advance(1)
	}

	if *serveHosts > 0 && !*noServe && !*fleetOnly && !*warmOnly && !*coldOnly {
		orun.SetPhase("serve")
		sb, err := runServe(*serveHosts, *fidelityTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicbench: serve bench: %v\n", err)
			os.Exit(1)
		}
		rep.Serve = sb
		orun.Advance(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (engine speedup %.2fx, fig6 %.1fM events/s, fleet %.1f hosts/s %.2fx, auto %.1f hosts/s %.2fx, cold %.1f hosts/s %.2fx, warm %.1f hosts/s %.2fx, serve scaling %.2fx warm %.2fx)\n",
		*out, rep.Engine.SpeedupRatio, rep.Fig6.EventsPerSec/1e6,
		rep.Fleet.HostsPerSec, rep.Fleet.SpeedupRatio,
		rep.Fidelity.HostsPerSec, rep.Fidelity.SpeedupVsDES,
		rep.ColdPath.ColdHostsPerSec, rep.ColdPath.Speedup,
		rep.WarmStart.WarmHostsPerSec, rep.WarmStart.WarmSpeedup,
		rep.Serve.ScalingRatio, rep.Serve.WarmSpeedup)
}
