// Command hicbench measures the simulator's hot path and writes the
// results as JSON, comparing the current engine against the preserved
// pre-rewrite implementation (internal/sim/legacy).
//
//	hicbench                       # print BENCH_hotpath.json content
//	hicbench -out BENCH_hotpath.json
//
// Three sections:
//   - engine: schedule→fire and heap-churn microbenchmarks on both
//     engines, with events/sec and the measured speedup ratio;
//   - packet_path: one full pooled packet lifetime vs heap allocation;
//   - fig6_scenario: the paper's Figure 6 memory-antagonist point run
//     end to end, reporting wall-clock and simulated events/sec (the
//     whole-simulator number the microbenchmarks feed into).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"hic/internal/core"
	"hic/internal/pkt"
	"hic/internal/sim"
	"hic/internal/sim/legacy"
)

// benchResult is one benchmark's headline numbers.
type benchResult struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func toResult(r testing.BenchmarkResult, perOpEvents float64) benchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out := benchResult{
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if perOpEvents > 0 && ns > 0 {
		out.EventsPerSec = perOpEvents * 1e9 / ns
	}
	return out
}

const churnDepth = 256

// engineWorkload drives a fig6-like event mix against either engine:
// self-rescheduling events (DMA completion chains) at churn depth, plus
// a cancelled timer per fire (the retransmit timer armed and disarmed
// on every delivered packet).
func newEngineWorkload(b *testing.B) {
	e := sim.NewEngine(1)
	target := uint64(b.N) + churnDepth
	var pendingTimer sim.EventID
	var tick func()
	timerFn := func() {}
	tick = func() {
		if e.Processed() >= target {
			e.Stop()
			return
		}
		pendingTimer.Cancel()
		pendingTimer = e.After(sim.Duration(5000), timerFn)
		e.After(sim.Duration(1+e.RNG().Intn(997)), tick)
	}
	for i := 0; i < churnDepth; i++ {
		e.After(sim.Duration(1+e.RNG().Intn(997)), tick)
	}
	b.ResetTimer()
	e.Run(math.MaxInt64 - 1)
}

func legacyEngineWorkload(b *testing.B) {
	e := legacy.NewEngine()
	rng := sim.NewRNG(1)
	target := uint64(b.N) + churnDepth
	var pendingTimer legacy.EventID
	var tick func()
	timerFn := func() {}
	tick = func() {
		if e.Processed() >= target {
			e.Stop()
			return
		}
		pendingTimer.Cancel()
		pendingTimer = e.After(sim.Duration(5000), timerFn)
		e.After(sim.Duration(1+rng.Intn(997)), tick)
	}
	for i := 0; i < churnDepth; i++ {
		e.After(sim.Duration(1+rng.Intn(997)), tick)
	}
	b.ResetTimer()
	e.Run(math.MaxInt64 - 1)
}

func packetPathWorkload(b *testing.B) {
	pl := pkt.NewPool()
	p := pl.Data(0, 1, 0, 0, 4096)
	a := pl.Ack(0, p)
	pl.Release(p)
	pl.Release(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pl.Data(uint64(i), 1, 0, uint64(i), 4096)
		a := pl.Ack(uint64(i), p)
		pl.Release(p)
		pl.Release(a)
	}
}

// fig6Scenario runs the Figure 6 memory-antagonist point end to end and
// reports whole-simulator throughput in events per second.
type fig6Scenario struct {
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	AppGbps      float64 `json:"app_throughput_gbps"`
}

func runFig6() (fig6Scenario, error) {
	p := core.DefaultParams(12)
	p.AntagonistCores = 8
	p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	tb, err := p.Build()
	if err != nil {
		return fig6Scenario{}, err
	}
	start := time.Now()
	res := tb.Run(p.Warmup, p.Measure)
	wall := time.Since(start).Seconds()
	ev := tb.Engine.Processed()
	return fig6Scenario{
		WallSeconds:  wall,
		Events:       ev,
		EventsPerSec: float64(ev) / wall,
		AppGbps:      res.AppThroughputGbps,
	}, nil
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Engine    struct {
		New          benchResult `json:"new"`
		Legacy       benchResult `json:"legacy"`
		SpeedupRatio float64     `json:"speedup_ratio"`
	} `json:"engine"`
	PacketPath struct {
		Pooled benchResult `json:"pooled"`
		Heap   benchResult `json:"heap"`
	} `json:"packet_path"`
	// Fig6 runs with the free lists on (the default); Fig6NoPools runs
	// the same scenario with event and packet recycling disabled, the
	// whole-figure before/after for the allocation-free hot path.
	Fig6        fig6Scenario `json:"fig6_scenario"`
	Fig6NoPools fig6Scenario `json:"fig6_scenario_no_pools"`
}

var heapSink *pkt.Packet

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	var rep report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH

	// Each workload processes ~1 event per op (the churn fires one event
	// and schedules one replacement plus a timer arm/cancel pair).
	rep.Engine.New = toResult(testing.Benchmark(newEngineWorkload), 1)
	rep.Engine.Legacy = toResult(testing.Benchmark(legacyEngineWorkload), 1)
	if rep.Engine.New.NsPerOp > 0 {
		rep.Engine.SpeedupRatio = rep.Engine.Legacy.NsPerOp / rep.Engine.New.NsPerOp
	}

	rep.PacketPath.Pooled = toResult(testing.Benchmark(packetPathWorkload), 0)
	rep.PacketPath.Heap = toResult(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pkt.NewData(uint64(i), 1, 0, uint64(i), 4096)
			a := pkt.NewAck(uint64(i), p)
			heapSink = p
			heapSink = a
		}
	}), 0)

	fig6, err := runFig6()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: fig6 scenario: %v\n", err)
		os.Exit(1)
	}
	rep.Fig6 = fig6

	sim.SetEventPooling(false)
	pkt.SetPooling(false)
	noPools, err := runFig6()
	sim.SetEventPooling(true)
	pkt.SetPooling(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: fig6 scenario (no pools): %v\n", err)
		os.Exit(1)
	}
	rep.Fig6NoPools = noPools

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (engine speedup %.2fx, fig6 %.1fM events/s)\n",
		*out, rep.Engine.SpeedupRatio, rep.Fig6.EventsPerSec/1e6)
}
