package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/serve"
)

// coldPathBench is the cold-path acceleration section: the same
// never-seen auto-routed fleet run twice in one process — once with the
// cold-path accelerations off (knee search and calibration transfer
// disabled: the pre-acceleration cold baseline) and once with them on —
// so Speedup is a pure strategy ratio, independent of the machine the
// bench happens to run on. Accuracy stays hard-gated: the accelerated
// pass audits at the same -audit-rate, and any audited point over
// tolerance fails -compare unconditionally.
//
// The sharded determinism check replays the accelerated query through a
// cold coordinator twice — one worker, then two workers racing prefetch
// leases and ranges — and both aggregate hashes must equal the
// in-process run's. That is the knee-search/transfer analogue of the
// serve section's hash gate: located knees and borrowed calibrations
// must be pure functions of the query, never of which worker touched a
// signature first.
type coldPathBench struct {
	Hosts        int     `json:"hosts"`
	FidelityMode string  `json:"fidelity_mode,omitempty"`
	Tol          float64 `json:"tol"`
	AuditRate    float64 `json:"audit_rate"`

	// Baseline: empty stores, knee search and transfer off.
	BaselineWallSeconds  float64 `json:"baseline_wall_seconds"`
	BaselineHostsPerSec  float64 `json:"baseline_hosts_per_sec"`
	BaselineSimulated    uint64  `json:"baseline_simulated"`
	BaselineAnchorRuns   uint64  `json:"baseline_anchor_runs"`
	BaselineAudited      uint64  `json:"baseline_audited"`
	BaselineAuditOverTol uint64  `json:"baseline_audit_over_tol"`
	BaselineAuditMaxErr  float64 `json:"baseline_audit_max_err"`

	// Accelerated: empty stores, knee search and transfer on (router
	// defaults, the same configuration the CLIs ship).
	ColdWallSeconds   float64 `json:"cold_wall_seconds"`
	ColdHostsPerSec   float64 `json:"cold_hosts_per_sec"`
	Simulated         uint64  `json:"simulated"`
	FluidRouted       uint64  `json:"fluid_routed"`
	AnchorRuns        uint64  `json:"anchor_runs"`
	AnchorTransferred uint64  `json:"anchor_transferred"`
	AnchorRefined     uint64  `json:"anchor_refined"`
	KneeProbes        uint64  `json:"knee_probes"`
	KneeBypassed      uint64  `json:"knee_bypassed"`
	Audited           uint64  `json:"audited"`
	AuditOverTol      uint64  `json:"audit_over_tol"`
	AuditMaxErr       float64 `json:"audit_max_err"`

	// Speedup is accelerated over baseline cold hosts/sec.
	Speedup float64 `json:"speedup"`

	// Sharded determinism: the accelerated query served cold by a
	// coordinator with one worker, then by a second coordinator with two
	// workers (prefetch leases split across both); each hash must equal
	// the in-process run's. A smaller fleet than the headline passes —
	// determinism does not get harder with size, wall-clock does.
	ShardHosts    int    `json:"shard_hosts"`
	InProcessHash string `json:"in_process_hash"`
	OneWorkerHash string `json:"one_worker_hash"`
	TwoWorkerHash string `json:"two_worker_hash"`
	HashMatch     bool   `json:"hash_match"`
	// Prefetched is the distinct-signature count the two-worker
	// coordinator dispensed as prefetch leases before its ranges.
	Prefetched int `json:"prefetched"`
}

// runColdFleet runs one cold auto-routed fleet pass with the given
// acceleration switches and fresh router state.
func runColdFleet(label string, hosts int, tol, auditRate float64, accel bool) (cluster.Stats, float64, error) {
	cfg := fleetConfig(hosts)
	router, err := fidelity.New(fidelity.Config{
		Mode:        fidelity.ModeAuto,
		Tol:         tol,
		AuditRate:   auditRate,
		EarlyStop:   true,
		AnchorSeeds: cluster.SeedPool(cfg),
		KneeSearch:  accel,
		Transfer:    accel,
	})
	if err != nil {
		return cluster.Stats{}, 0, err
	}
	cfg.Exec = router
	cfg.Progress = runner.NewProgress(os.Stderr, label, "hosts", hosts, 5*time.Second)
	start := time.Now()
	st, err := cluster.RunStream(cfg, nil)
	wall := time.Since(start).Seconds()
	cfg.Progress.Finish()
	return st, wall, err
}

// coldQuery serves the accelerated query cold through a fresh
// coordinator with n in-process workers and returns the result.
func coldQuery(spec serve.QueryRequest, n int) (*serve.QueryResult, error) {
	dir, err := os.MkdirTemp("", "hicbench-cold-shard-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := runcache.Open(dir)
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(serve.Options{Store: store, LeaseTimeout: 2 * time.Minute})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < n; i++ {
		w := serve.NewWorker(base, serve.WorkerOptions{Name: fmt.Sprintf("cold%d", i)})
		go w.Run(ctx) //nolint:errcheck // ends with ctx
	}
	return serve.NewClient(base, nil).Query(ctx, spec, nil)
}

// runColdPath measures the cold-path section. When the fidelity section
// already ran the identical baseline configuration at the same scale,
// its pass is reused instead of re-run (the baseline is knee search and
// transfer off, which is exactly what runFleetFidelity measures).
func runColdPath(hosts int, tol, auditRate float64, fid *fidelityBench) (coldPathBench, error) {
	cb := coldPathBench{Hosts: hosts, FidelityMode: "auto", Tol: tol, AuditRate: auditRate}

	if fid != nil && fid.Hosts == hosts && fid.Tol == tol && fid.AuditRate == auditRate {
		cb.BaselineWallSeconds = fid.WallSeconds
		cb.BaselineHostsPerSec = fid.HostsPerSec
		cb.BaselineSimulated = fid.Simulated
		cb.BaselineAnchorRuns = fid.AnchorRuns
		cb.BaselineAudited = fid.Audited
		cb.BaselineAuditOverTol = fid.AuditOverTol
		cb.BaselineAuditMaxErr = fid.AuditMaxErr
	} else {
		st, wall, err := runColdFleet("cold baseline", hosts, tol, auditRate, false)
		if err != nil {
			return cb, err
		}
		cb.BaselineWallSeconds = wall
		cb.BaselineHostsPerSec = float64(hosts) / wall
		cb.BaselineSimulated = st.Simulated
		cb.BaselineAnchorRuns = st.AnchorRuns
		cb.BaselineAudited = st.Audited
		cb.BaselineAuditOverTol = st.AuditOverTol
		cb.BaselineAuditMaxErr = st.AuditMaxErr
	}

	st, wall, err := runColdFleet("cold accel", hosts, tol, auditRate, true)
	if err != nil {
		return cb, err
	}
	cb.ColdWallSeconds = wall
	cb.ColdHostsPerSec = float64(hosts) / wall
	cb.Simulated = st.Simulated
	cb.FluidRouted = st.FluidRouted
	cb.AnchorRuns = st.AnchorRuns
	cb.AnchorTransferred = st.AnchorTransferred
	cb.AnchorRefined = st.AnchorRefined
	cb.KneeProbes = st.KneeProbes
	cb.KneeBypassed = st.KneeBypassed
	cb.Audited = st.Audited
	cb.AuditOverTol = st.AuditOverTol
	cb.AuditMaxErr = st.AuditMaxErr
	if cb.BaselineHostsPerSec > 0 {
		cb.Speedup = cb.ColdHostsPerSec / cb.BaselineHostsPerSec
	}
	if cb.AuditOverTol > 0 {
		fmt.Fprintf(os.Stderr, "hicbench: WARNING: cold path: %d/%d audited points exceeded tol %.3f (max err %.4f)\n",
			cb.AuditOverTol, cb.Audited, tol, cb.AuditMaxErr)
	}

	// Sharded determinism at a fifth of the headline fleet (floor 100
	// hosts — below that just reuse the full size).
	cb.ShardHosts = hosts / 5
	if cb.ShardHosts < 100 {
		cb.ShardHosts = hosts
	}
	base := cluster.DefaultConfig()
	spec := serve.QueryRequest{
		Hosts:      cb.ShardHosts,
		Seed:       base.Seed,
		WarmupMS:   4,
		MeasureMS:  8,
		Fidelity:   "auto",
		Tol:        tol,
		AuditRate:  auditRate,
		EarlyStop:  true,
		RangeHosts: (cb.ShardHosts + 15) / 16,
	}

	// In-process reference with the exact router a worker builds.
	dir, err := os.MkdirTemp("", "hicbench-cold-single-")
	if err != nil {
		return cb, err
	}
	defer os.RemoveAll(dir)
	store, err := runcache.Open(dir)
	if err != nil {
		return cb, err
	}
	scfg := spec.ClusterConfig()
	scfg.Cache = store
	router, err := fidelity.New(fidelity.Config{
		Mode:        fidelity.ModeAuto,
		Tol:         tol,
		AuditRate:   auditRate,
		EarlyStop:   true,
		AnchorSeeds: cluster.SeedPool(scfg),
		Cache:       store,
		KneeSearch:  true,
		Transfer:    true,
	})
	if err != nil {
		return cb, err
	}
	scfg.Exec = router
	hasher := cluster.NewPointHasher()
	if _, err := cluster.RunStream(scfg, func(p cluster.Point) error {
		hasher.Add(p)
		return nil
	}); err != nil {
		return cb, err
	}
	cb.InProcessHash = hasher.Sum()

	one, err := coldQuery(spec, 1)
	if err != nil {
		return cb, fmt.Errorf("one-worker cold query: %w", err)
	}
	two, err := coldQuery(spec, 2)
	if err != nil {
		return cb, fmt.Errorf("two-worker cold query: %w", err)
	}
	cb.OneWorkerHash = one.AggregateHash
	cb.TwoWorkerHash = two.AggregateHash
	cb.Prefetched = two.Prefetched
	cb.HashMatch = one.AggregateHash == cb.InProcessHash && two.AggregateHash == cb.InProcessHash
	if !cb.HashMatch {
		fmt.Fprintf(os.Stderr, "hicbench: WARNING: cold path hash mismatch: in-process %s one-worker %s two-worker %s\n",
			cb.InProcessHash, cb.OneWorkerHash, cb.TwoWorkerHash)
	}
	return cb, nil
}
