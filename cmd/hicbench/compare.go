package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The bench-regression gate: `hicbench -compare old.json new.json`
// re-reads two reports this tool wrote and classifies every comparable
// metric as OK, REGRESSED, or SKIPPED. Metrics come in two classes:
//
//   - exact: allocation counts on the allocation-free hot paths
//     (engine.new, packet_path.pooled). The committed baseline is zero
//     allocations; ANY increase fails, no tolerance — a single alloc
//     per op is the regression the zero-alloc work exists to prevent.
//   - noisy: wall-clock and rate metrics (ns/op, events/sec,
//     hosts/sec, peak memory). These move with machine load, so a
//     degradation only fails beyond the relative tolerance
//     (-compare-tol, default 0.25). Improvements never fail.
//
// Sections that did not run in either report (zero values), or whose
// configurations differ (fleet/fidelity host counts), are skipped with
// a note instead of producing false alarms — a smoke bench at 400
// hosts can be gated against the committed 10k-host baseline. An
// audit-over-tolerance count in the new report fails unconditionally:
// that is an accuracy violation, not noise.

// cmpResult accumulates one comparison run's outcome.
type cmpResult struct {
	fails []string
	notes []string
}

func (c *cmpResult) failf(format string, args ...any) {
	c.fails = append(c.fails, fmt.Sprintf(format, args...))
}

func (c *cmpResult) notef(format string, args ...any) {
	c.notes = append(c.notes, fmt.Sprintf(format, args...))
}

// skipNote distinguishes the three "section didn't run" cases so a
// metric newly added to this tool reads as "skipped (new)" against an
// older committed baseline rather than as a mysterious absence.
func (c *cmpResult) skipNote(name string, old, new float64) bool {
	switch {
	case old <= 0 && new > 0:
		c.notef("skip %s: skipped (new) — absent from baseline", name)
	case old > 0 && new <= 0:
		c.notef("skip %s: absent from new report", name)
	case old <= 0 && new <= 0:
		c.notef("skip %s: not present in either report", name)
	default:
		return false
	}
	return true
}

// lowerBetter checks a noisy metric where smaller is better (ns/op,
// bytes of peak memory). Zero on either side means the section didn't
// run — skip.
func (c *cmpResult) lowerBetter(name string, old, new float64, tol float64) {
	if c.skipNote(name, old, new) {
		return
	}
	if new > old*(1+tol) {
		c.failf("%s regressed: %.4g -> %.4g (+%.1f%%, tol %.0f%%)",
			name, old, new, 100*(new/old-1), 100*tol)
	}
}

// higherBetter checks a noisy metric where larger is better
// (events/sec, hosts/sec, speedup ratios).
func (c *cmpResult) higherBetter(name string, old, new float64, tol float64) {
	if c.skipNote(name, old, new) {
		return
	}
	if new < old*(1-tol) {
		c.failf("%s regressed: %.4g -> %.4g (-%.1f%%, tol %.0f%%)",
			name, old, new, 100*(1-new/old), 100*tol)
	}
}

// sameMode reports whether two sections ran under comparable execution
// modes. Reports written before the mode fields existed carry empty
// strings — those stay comparable (the host-count match already gates
// scale); only an explicit disagreement skips.
func (c *cmpResult) sameMode(section, oldMode, oldWarm, newMode, newWarm string) bool {
	if oldMode != "" && newMode != "" && oldMode != newMode {
		c.notef("skip %s: fidelity modes differ (%s vs %s)", section, oldMode, newMode)
		return false
	}
	if oldWarm != "" && newWarm != "" && oldWarm != newWarm {
		c.notef("skip %s: warm-start modes differ (%s vs %s)", section, oldWarm, newWarm)
		return false
	}
	return true
}

// exactMax checks an exact-class metric: the new value may never
// exceed the old. Used for allocs/bytes per op on the zero-alloc hot
// paths, where the baseline is 0 and any increase is a real leak.
func (c *cmpResult) exactMax(name string, old, new int64) {
	if new > old {
		c.failf("%s increased: %d -> %d (exact-class metric, no tolerance)", name, old, new)
	}
}

// nearExactMax gates an allocation metric whose per-op value is
// deterministic in steady state but carries parts-per-million noise
// from pool and map warm-up amortization (testing.Benchmark divides
// one-time growth by whatever N it settles on, and N depends on what
// ran earlier in the process). The 0.1% slack absorbs exactly that
// noise floor: a genuine leak on a path running hundreds of thousands
// of allocations per op adds whole percents and still fails hard.
func (c *cmpResult) nearExactMax(name string, old, new int64) {
	if new > old+old/1000 {
		c.failf("%s increased: %d -> %d (near-exact metric, 0.1%% noise floor)", name, old, new)
	}
}

// compareReports applies the full rule set.
func compareReports(oldRep, newRep report, tol float64) cmpResult {
	var c cmpResult

	// Engine hot path: timing is noisy, allocations are exact.
	c.lowerBetter("engine.new.ns_per_op", oldRep.Engine.New.NsPerOp, newRep.Engine.New.NsPerOp, tol)
	if oldRep.Engine.New.NsPerOp > 0 && newRep.Engine.New.NsPerOp > 0 {
		c.exactMax("engine.new.allocs_per_op", oldRep.Engine.New.AllocsPerOp, newRep.Engine.New.AllocsPerOp)
		c.exactMax("engine.new.bytes_per_op", oldRep.Engine.New.BytesPerOp, newRep.Engine.New.BytesPerOp)
	}

	c.lowerBetter("packet_path.pooled.ns_per_op", oldRep.PacketPath.Pooled.NsPerOp, newRep.PacketPath.Pooled.NsPerOp, tol)
	if oldRep.PacketPath.Pooled.NsPerOp > 0 && newRep.PacketPath.Pooled.NsPerOp > 0 {
		c.exactMax("packet_path.pooled.allocs_per_op", oldRep.PacketPath.Pooled.AllocsPerOp, newRep.PacketPath.Pooled.AllocsPerOp)
		c.exactMax("packet_path.pooled.bytes_per_op", oldRep.PacketPath.Pooled.BytesPerOp, newRep.PacketPath.Pooled.BytesPerOp)
	}

	// Whole-simulator throughput on the fig6 point.
	c.higherBetter("fig6_scenario.events_per_sec", oldRep.Fig6.EventsPerSec, newRep.Fig6.EventsPerSec, tol)

	// Observatory overhead: the sampler-on fig6 run must not slow down
	// beyond tolerance (a baseline predating the observatory section
	// reads as "skipped (new)").
	c.higherBetter("observatory.sampler_on_events_per_sec",
		oldRep.Observatory.SamplerOnEventsPerSec, newRep.Observatory.SamplerOnEventsPerSec, tol)

	// Fleet sections compare only at matching scale: hosts/sec is not
	// size-independent (dedup rate and cache behavior shift), so a smoke
	// bench at a different size gates only the sections above.
	if oldRep.Fleet.Hosts > 0 && newRep.Fleet.Hosts > 0 {
		if oldRep.Fleet.Hosts == newRep.Fleet.Hosts {
			if c.sameMode("fleet", oldRep.Fleet.FidelityMode, oldRep.Fleet.Warm,
				newRep.Fleet.FidelityMode, newRep.Fleet.Warm) {
				c.higherBetter("fleet.hosts_per_sec", oldRep.Fleet.HostsPerSec, newRep.Fleet.HostsPerSec, tol)
				c.lowerBetter("fleet.peak_mem_bytes", float64(oldRep.Fleet.PeakMemBytes), float64(newRep.Fleet.PeakMemBytes), tol)
			}
		} else {
			c.notef("skip fleet: host counts differ (%d vs %d)", oldRep.Fleet.Hosts, newRep.Fleet.Hosts)
		}
	} else {
		c.skipNote("fleet", float64(oldRep.Fleet.Hosts), float64(newRep.Fleet.Hosts))
	}

	if oldRep.Fidelity.Hosts > 0 && newRep.Fidelity.Hosts > 0 {
		if oldRep.Fidelity.Hosts == newRep.Fidelity.Hosts {
			if c.sameMode("fidelity rates", oldRep.Fidelity.FidelityMode, oldRep.Fidelity.Warm,
				newRep.Fidelity.FidelityMode, newRep.Fidelity.Warm) {
				c.higherBetter("fidelity.hosts_per_sec", oldRep.Fidelity.HostsPerSec, newRep.Fidelity.HostsPerSec, tol)
			}
		} else {
			c.notef("skip fidelity rates: host counts differ (%d vs %d)", oldRep.Fidelity.Hosts, newRep.Fidelity.Hosts)
		}
	} else {
		c.skipNote("fidelity rates", float64(oldRep.Fidelity.Hosts), float64(newRep.Fidelity.Hosts))
	}

	// Cold path: the accelerated cold rate and the acceleration ratio
	// are noisy-class at matching scale. The correctness contracts are
	// unconditional: an audited point over tolerance in the accelerated
	// pass is an accuracy violation (the accelerations must not buy
	// speed with error), and a sharded hash mismatch means a located
	// knee or a borrowed calibration depended on which worker touched a
	// signature first.
	if oldRep.ColdPath.Hosts > 0 && newRep.ColdPath.Hosts > 0 {
		if oldRep.ColdPath.Hosts == newRep.ColdPath.Hosts {
			if c.sameMode("cold_path rates", oldRep.ColdPath.FidelityMode, "",
				newRep.ColdPath.FidelityMode, "") {
				c.higherBetter("cold_path.cold_hosts_per_sec", oldRep.ColdPath.ColdHostsPerSec, newRep.ColdPath.ColdHostsPerSec, tol)
				c.higherBetter("cold_path.speedup", oldRep.ColdPath.Speedup, newRep.ColdPath.Speedup, tol)
			}
		} else {
			c.notef("skip cold_path rates: host counts differ (%d vs %d)",
				oldRep.ColdPath.Hosts, newRep.ColdPath.Hosts)
		}
	} else {
		c.skipNote("cold_path rates", float64(oldRep.ColdPath.Hosts), float64(newRep.ColdPath.Hosts))
	}
	if newRep.ColdPath.Hosts > 0 {
		if newRep.ColdPath.AuditOverTol > 0 {
			c.failf("cold_path.audit_over_tol = %d (max err %.4f, tol %.3f): accuracy violation, fails unconditionally",
				newRep.ColdPath.AuditOverTol, newRep.ColdPath.AuditMaxErr, newRep.ColdPath.Tol)
		}
		if !newRep.ColdPath.HashMatch {
			c.failf("cold_path.hash_match = false (in-process %s, one-worker %s, two-worker %s): knee/transfer state leaked shard order, fails unconditionally",
				newRep.ColdPath.InProcessHash, newRep.ColdPath.OneWorkerHash, newRep.ColdPath.TwoWorkerHash)
		}
	}

	// Warm start: the warm pass's throughput gates at matching scale
	// and mode; the warm-resumed point's allocation counts are
	// exact-class (any increase is a leak on the resume path, which is
	// the code a warm fleet runs thousands of times).
	if oldRep.WarmStart.Hosts > 0 && newRep.WarmStart.Hosts > 0 {
		if oldRep.WarmStart.Hosts == newRep.WarmStart.Hosts {
			if c.sameMode("warm_start", oldRep.WarmStart.FidelityMode, oldRep.WarmStart.Warm,
				newRep.WarmStart.FidelityMode, newRep.WarmStart.Warm) {
				c.higherBetter("warm_start.warm_hosts_per_sec",
					oldRep.WarmStart.WarmHostsPerSec, newRep.WarmStart.WarmHostsPerSec, tol)
				c.higherBetter("warm_start.warm_speedup",
					oldRep.WarmStart.WarmSpeedup, newRep.WarmStart.WarmSpeedup, tol)
			}
		} else {
			c.notef("skip warm_start rates: host counts differ (%d vs %d)",
				oldRep.WarmStart.Hosts, newRep.WarmStart.Hosts)
		}
	} else {
		c.skipNote("warm_start rates", float64(oldRep.WarmStart.Hosts), float64(newRep.WarmStart.Hosts))
	}
	if !c.skipNote("warm_start.warm_point", oldRep.WarmStart.WarmPoint.NsPerOp, newRep.WarmStart.WarmPoint.NsPerOp) {
		c.nearExactMax("warm_start.warm_point.allocs_per_op",
			oldRep.WarmStart.WarmPoint.AllocsPerOp, newRep.WarmStart.WarmPoint.AllocsPerOp)
		c.nearExactMax("warm_start.warm_point.bytes_per_op",
			oldRep.WarmStart.WarmPoint.BytesPerOp, newRep.WarmStart.WarmPoint.BytesPerOp)
	}

	// Serve: throughput and scaling are noisy-class at matching scale;
	// the correctness contracts below are unconditional.
	if oldRep.Serve.Hosts > 0 && newRep.Serve.Hosts > 0 {
		if oldRep.Serve.Hosts == newRep.Serve.Hosts {
			if c.sameMode("serve rates", oldRep.Serve.FidelityMode, oldRep.Serve.Warm,
				newRep.Serve.FidelityMode, newRep.Serve.Warm) {
				c.higherBetter("serve.cold_hosts_per_sec", oldRep.Serve.ColdHostsPerSec, newRep.Serve.ColdHostsPerSec, tol)
				c.higherBetter("serve.scaling_ratio", oldRep.Serve.ScalingRatio, newRep.Serve.ScalingRatio, tol)
				c.higherBetter("serve.warm_speedup", oldRep.Serve.WarmSpeedup, newRep.Serve.WarmSpeedup, tol)
				// Tracing cost is noisy-class: the traced warm query's
				// wall over the untraced warm query's (≈1.0 when the
				// instrumented wire path is cheap).
				c.lowerBetter("serve.trace_overhead", oldRep.Serve.TraceOverhead, newRep.Serve.TraceOverhead, tol)
			}
		} else {
			c.notef("skip serve rates: host counts differ (%d vs %d)",
				oldRep.Serve.Hosts, newRep.Serve.Hosts)
		}
	} else {
		c.skipNote("serve rates", float64(oldRep.Serve.Hosts), float64(newRep.Serve.Hosts))
	}
	// The serving layer's reason to exist: merged aggregates must be
	// byte-identical to a single-process run, and a second identical
	// query must re-use resident state instead of re-calibrating. Both
	// are correctness, not noise — they fail at any -compare-tol.
	if newRep.Serve.Hosts > 0 {
		if !newRep.Serve.HashMatch {
			c.failf("serve.hash_match = false (single %s, cold %s, warm %s, traced %s): sharded merge is not byte-identical, fails unconditionally",
				newRep.Serve.SingleHash, newRep.Serve.ColdHash, newRep.Serve.WarmHash, newRep.Serve.TracedHash)
		}
		if newRep.Serve.WarmAnchorRuns > 0 {
			c.failf("serve.warm_anchor_runs = %d: warm query re-calibrated (resident routers not reused), fails unconditionally",
				newRep.Serve.WarmAnchorRuns)
		}
		// The traced pass ran (trace_spans set) but the coordinator's
		// federated per-worker counters did not sum to the merged
		// queries' counters: attribution is lost or double-counted.
		// Correctness, not noise.
		if newRep.Serve.TraceSpans > 0 && !newRep.Serve.FedSumMatch {
			c.failf("serve.fed_sum_match = false: federated hic_worker_* counters do not sum to the merged queries' counters, fails unconditionally")
		}
	}

	// Accuracy is never noise: any audited point over tolerance in the
	// new report fails regardless of scale or -compare-tol. The warm
	// audit is the same contract for checkpoint-resumed points.
	if newRep.Fidelity.AuditOverTol > 0 {
		c.failf("fidelity.audit_over_tol = %d (max err %.4f, tol %.3f): accuracy violation, fails unconditionally",
			newRep.Fidelity.AuditOverTol, newRep.Fidelity.AuditMaxErr, newRep.Fidelity.Tol)
	}
	if newRep.WarmStart.WarmAuditOverTol > 0 {
		c.failf("warm_start.warm_audit_over_tol = %d (max err %.4f, tol %.3f): accuracy violation, fails unconditionally",
			newRep.WarmStart.WarmAuditOverTol, newRep.WarmStart.WarmAuditMaxErr, newRep.WarmStart.Tol)
	}

	return c
}

func readReport(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return report{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}

// runCompare is the -compare entry point; returns the process exit
// code (0 = no regressions).
func runCompare(oldPath, newPath string, tol float64) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		return 1
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicbench: %v\n", err)
		return 1
	}
	c := compareReports(oldRep, newRep, tol)
	for _, n := range c.notes {
		fmt.Fprintf(os.Stderr, "hicbench: compare: %s\n", n)
	}
	if len(c.fails) > 0 {
		for _, f := range c.fails {
			fmt.Fprintf(os.Stderr, "hicbench: compare: FAIL %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "hicbench: compare: %d regression(s) against %s\n", len(c.fails), oldPath)
		return 1
	}
	fmt.Fprintf(os.Stderr, "hicbench: compare: OK (%s vs %s, tol %.0f%%)\n", oldPath, newPath, 100*tol)
	return 0
}
