package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// baseline builds a fully populated report with healthy numbers.
func baseline() report {
	var r report
	r.Engine.New = benchResult{NsPerOp: 140, AllocsPerOp: 0, BytesPerOp: 0}
	r.PacketPath.Pooled = benchResult{NsPerOp: 24, AllocsPerOp: 0, BytesPerOp: 0}
	r.Fig6.EventsPerSec = 40e6
	r.Observatory.SamplerOnEventsPerSec = 38e6
	r.Fleet.Hosts = 10000
	r.Fleet.HostsPerSec = 90
	r.Fleet.PeakMemBytes = 200 << 20
	r.Fidelity.Hosts = 10000
	r.Fidelity.HostsPerSec = 95
	r.Serve = serveBench{
		Hosts:             400,
		SingleHash:        "aaaa",
		ColdHash:          "aaaa",
		WarmHash:          "aaaa",
		HashMatch:         true,
		SingleHostsPerSec: 17,
		ColdHostsPerSec:   16.8,
		WarmHostsPerSec:   6000,
		ScalingRatio:      0.99,
		WarmSpeedup:       350,
		Workers:           2,
		Ranges:            16,
	}
	return r
}

func TestCompareSelfIsClean(t *testing.T) {
	c := compareReports(baseline(), baseline(), 0.25)
	if len(c.fails) != 0 {
		t.Errorf("self-compare failed: %v", c.fails)
	}
}

func TestCompareNoiseTolerance(t *testing.T) {
	old := baseline()
	// Within tolerance: slower but under 25%.
	within := baseline()
	within.Engine.New.NsPerOp = 140 * 1.2
	within.Fig6.EventsPerSec = 40e6 * 0.8
	if c := compareReports(old, within, 0.25); len(c.fails) != 0 {
		t.Errorf("within-tolerance drift failed: %v", c.fails)
	}
	// Improvements never fail, however large.
	faster := baseline()
	faster.Engine.New.NsPerOp = 10
	faster.Fig6.EventsPerSec = 400e6
	faster.Fleet.HostsPerSec = 900
	if c := compareReports(old, faster, 0.25); len(c.fails) != 0 {
		t.Errorf("improvement failed: %v", c.fails)
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*report)
		mention string
	}{
		{"slower engine", func(r *report) { r.Engine.New.NsPerOp *= 2 }, "engine.new.ns_per_op"},
		{"slower packet path", func(r *report) { r.PacketPath.Pooled.NsPerOp *= 2 }, "packet_path.pooled.ns_per_op"},
		{"fig6 throughput drop", func(r *report) { r.Fig6.EventsPerSec /= 2 }, "fig6_scenario.events_per_sec"},
		{"observatory overhead growth", func(r *report) { r.Observatory.SamplerOnEventsPerSec /= 2 }, "observatory.sampler_on_events_per_sec"},
		{"fleet throughput drop", func(r *report) { r.Fleet.HostsPerSec /= 2 }, "fleet.hosts_per_sec"},
		{"fleet memory growth", func(r *report) { r.Fleet.PeakMemBytes *= 2 }, "fleet.peak_mem_bytes"},
		{"fidelity throughput drop", func(r *report) { r.Fidelity.HostsPerSec /= 2 }, "fidelity.hosts_per_sec"},
		{"serve cold throughput drop", func(r *report) { r.Serve.ColdHostsPerSec /= 2 }, "serve.cold_hosts_per_sec"},
		{"serve scaling collapse", func(r *report) { r.Serve.ScalingRatio /= 2 }, "serve.scaling_ratio"},
		{"serve warm speedup loss", func(r *report) { r.Serve.WarmSpeedup /= 2 }, "serve.warm_speedup"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			degraded := baseline()
			c.mutate(&degraded)
			res := compareReports(baseline(), degraded, 0.25)
			if len(res.fails) != 1 {
				t.Fatalf("fails = %v, want exactly one", res.fails)
			}
			if !strings.Contains(res.fails[0], c.mention) {
				t.Errorf("failure %q does not mention %s", res.fails[0], c.mention)
			}
		})
	}
}

func TestCompareAllocationsAreExact(t *testing.T) {
	// One allocation per op on a zero-alloc path fails at any tolerance.
	degraded := baseline()
	degraded.Engine.New.AllocsPerOp = 1
	degraded.Engine.New.BytesPerOp = 48
	res := compareReports(baseline(), degraded, 100.0)
	if len(res.fails) != 2 {
		t.Fatalf("fails = %v, want allocs and bytes", res.fails)
	}
	for _, f := range res.fails {
		if !strings.Contains(f, "exact-class") {
			t.Errorf("failure %q not marked exact-class", f)
		}
	}
}

func TestCompareAuditOverTolFailsUnconditionally(t *testing.T) {
	degraded := baseline()
	degraded.Fidelity.AuditOverTol = 3
	degraded.Fidelity.AuditMaxErr = 0.09
	degraded.Fidelity.Tol = 0.05
	res := compareReports(baseline(), degraded, 100.0)
	if len(res.fails) != 1 || !strings.Contains(res.fails[0], "audit_over_tol") {
		t.Errorf("fails = %v, want the accuracy violation", res.fails)
	}
}

// TestCompareServeContractsFailUnconditionally: the two serving-layer
// correctness contracts — merged-aggregate byte-identity and warm-query
// residency — fail at any tolerance and any scale.
func TestCompareServeContractsFailUnconditionally(t *testing.T) {
	hashBroken := baseline()
	hashBroken.Serve.Hosts = 37 // scale mismatch must not save it
	hashBroken.Serve.WarmHash = "bbbb"
	hashBroken.Serve.HashMatch = false
	res := compareReports(baseline(), hashBroken, 100.0)
	if len(res.fails) != 1 || !strings.Contains(res.fails[0], "serve.hash_match") {
		t.Errorf("fails = %v, want the hash-identity violation", res.fails)
	}

	notResident := baseline()
	notResident.Serve.WarmAnchorRuns = 12
	res = compareReports(baseline(), notResident, 100.0)
	if len(res.fails) != 1 || !strings.Contains(res.fails[0], "serve.warm_anchor_runs") {
		t.Errorf("fails = %v, want the residency violation", res.fails)
	}
}

func TestCompareSkipsMismatchedScales(t *testing.T) {
	// A 400-host smoke bench against the 10k-host baseline: fleet and
	// fidelity rate sections skip with a note instead of failing.
	smoke := baseline()
	smoke.Fleet.Hosts = 400
	smoke.Fleet.HostsPerSec = 2 // wildly different; must not matter
	smoke.Fidelity.Hosts = 400
	smoke.Fidelity.HostsPerSec = 3
	res := compareReports(baseline(), smoke, 0.25)
	if len(res.fails) != 0 {
		t.Errorf("mismatched-scale compare failed: %v", res.fails)
	}
	notes := strings.Join(res.notes, "\n")
	if !strings.Contains(notes, "host counts differ") {
		t.Errorf("notes = %v, want a host-count skip note", res.notes)
	}
}

func TestCompareSkipsAbsentSections(t *testing.T) {
	// -fleet-hosts 0 leaves whole sections zeroed; they skip, the
	// benches that did run still gate.
	partial := baseline()
	partial.Fleet = fleetBench{}
	partial.Fidelity = fidelityBench{}
	partial.Engine.New.NsPerOp *= 3
	res := compareReports(baseline(), partial, 0.25)
	if len(res.fails) != 1 || !strings.Contains(res.fails[0], "engine.new.ns_per_op") {
		t.Errorf("fails = %v, want only the engine regression", res.fails)
	}
}

// TestCompareMetricNewInReport: a metric absent from the baseline but
// present in the new report (a section this tool grew after the
// baseline was committed) skips as "skipped (new)" instead of failing
// or reading like a mysterious absence.
func TestCompareMetricNewInReport(t *testing.T) {
	old := baseline()
	old.Observatory = observatoryBench{} // baseline predates the section
	res := compareReports(old, baseline(), 0.25)
	if len(res.fails) != 0 {
		t.Errorf("new-metric compare failed: %v", res.fails)
	}
	notes := strings.Join(res.notes, "\n")
	if !strings.Contains(notes, "observatory.sampler_on_events_per_sec: skipped (new)") ||
		!strings.Contains(notes, "absent from baseline") {
		t.Errorf("notes = %v, want a skipped-(new) note for the observatory metric", res.notes)
	}

	// And the mirror case: present in baseline, absent from new.
	missing := baseline()
	missing.Observatory = observatoryBench{}
	res = compareReports(baseline(), missing, 0.25)
	if len(res.fails) != 0 {
		t.Errorf("absent-new compare failed: %v", res.fails)
	}
	if !strings.Contains(strings.Join(res.notes, "\n"), "absent from new report") {
		t.Errorf("notes = %v, want an absent-from-new note", res.notes)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r report) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", baseline())
	good := write("good.json", baseline())
	bad := baseline()
	bad.Engine.New.AllocsPerOp = 2
	badPath := write("bad.json", bad)

	if code := runCompare(old, good, 0.25); code != 0 {
		t.Errorf("self compare exit = %d, want 0", code)
	}
	if code := runCompare(old, badPath, 0.25); code == 0 {
		t.Error("degraded compare exit = 0, want nonzero")
	}
	if code := runCompare(filepath.Join(dir, "missing.json"), good, 0.25); code == 0 {
		t.Error("missing baseline exit = 0, want nonzero")
	}
}

// TestCommittedBaselineParses keeps the checked-in baseline loadable:
// the make-check gate does a real compare against it on every run.
func TestCommittedBaselineParses(t *testing.T) {
	rep, err := readReport(filepath.Join("..", "..", "BENCH_hotpath.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine.New.NsPerOp <= 0 || rep.Fleet.Hosts <= 0 {
		t.Errorf("baseline looks empty: engine %.1f ns, fleet %d hosts",
			rep.Engine.New.NsPerOp, rep.Fleet.Hosts)
	}
	if rep.Engine.New.AllocsPerOp != 0 || rep.PacketPath.Pooled.AllocsPerOp != 0 {
		t.Errorf("baseline hot paths not allocation-free: %d / %d allocs",
			rep.Engine.New.AllocsPerOp, rep.PacketPath.Pooled.AllocsPerOp)
	}
	if c := compareReports(rep, rep, 0.25); len(c.fails) != 0 {
		t.Errorf("baseline self-compare failed: %v", c.fails)
	}
}
