// Command hicserve is the long-lived simulation service. One binary,
// three roles:
//
// Coordinator (default) — listen for what-if queries, shard each
// fleet's host ranges across registered workers, merge partials in
// range order (byte-identical to a single-process run), and serve the
// shared run cache and warm store to workers over HTTP:
//
//	hicserve -addr :8091 -cache-dir results/cache -warm-dir results/warm
//	hicserve -addr :8091 -local-workers 2        # self-contained: coordinator + 2 in-process workers
//
// Worker — join a coordinator and execute range leases, keeping runner
// arenas and calibrated fidelity routers resident between leases:
//
//	hicserve -join http://coordinator:8091 -name rack7 -threads 8
//
// Client — post one query and print the merged result:
//
//	hicserve -query http://coordinator:8091 -hosts 400 -fidelity auto -tol 0.05
//	hicserve -query http://coordinator:8091 -hosts 400 -csv > fig1.csv
//
// The coordinator's obs control plane (-listen flags) shares the query
// API's mux, so /metrics, /progress, and /debug/pprof ride on the same
// port as /api/v1/query unless -listen names a different one.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/serve"
	"hic/internal/trace"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hicserve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	// Role selectors.
	join := flag.String("join", "", "run as a shard worker joined to this coordinator URL")
	query := flag.String("query", "", "post one query to this coordinator URL and print the result")

	// Coordinator flags.
	addr := flag.String("addr", ":8091", "coordinator listen address")
	cacheDir := flag.String("cache-dir", runcache.DefaultDir, "run-cache directory the coordinator owns and serves to workers")
	warmDir := flag.String("warm-dir", fidelity.DefaultWarmDir, "warm-start store directory served to workers ('' = no warm store)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "prune the run cache and warm store to this size at startup, oldest entries first (0 = unbounded)")
	leaseTimeout := flag.Duration("lease-timeout", 30*time.Second, "how long a worker may hold a range lease before it is re-dispensed")
	staleAfter := flag.Duration("stale-after", 0, "mark a worker stale (and WARN if it holds a lease) after this long without contact (0 = half the lease timeout)")
	localWorkers := flag.Int("local-workers", 0, "also spawn this many in-process workers dialing the coordinator's own loopback")

	// Worker flags (also size -local-workers pools).
	name := flag.String("name", "", "worker name (labels logs and results)")
	threads := flag.Int("threads", 0, "worker runner-pool threads (0 = GOMAXPROCS; local workers split this evenly)")
	poll := flag.Duration("poll", 50*time.Millisecond, "worker idle polling cadence")

	// Query flags (client role).
	hosts := flag.Int("hosts", 200, "query: simulated hosts in the fleet")
	windows := flag.Int("windows", 1, "query: measurement bins per host")
	seed := flag.Uint64("seed", 1, "query: fleet seed")
	measureMS := flag.Float64("measure-ms", 0, "query: per-host measurement window in ms (0 = cluster default)")
	warmupMS := flag.Float64("warmup-ms", 0, "query: per-host warmup window in ms (0 = cluster default)")
	fidMode := flag.String("fidelity", "", "query: execution strategy: des, fluid, or auto ('' = plain DES)")
	tol := flag.Float64("tol", 0, "query: fidelity tolerance (0 = router default)")
	auditRate := flag.Float64("audit-rate", 0, "query: fraction of fluid-routed hosts re-run on DES as an audit")
	estop := flag.Bool("estop", false, "query: early-stop measurement windows once estimates converge")
	warm := flag.String("warm", "", "query: cross-run warm start: off, calib, or full ('' = off)")
	noCache := flag.Bool("no-cache", false, "query: bypass the shared run cache")
	noKnee := flag.Bool("no-knee-search", false, "query: disable adaptive knee localization (keep full knee bands DES-forced)")
	noTransfer := flag.Bool("no-transfer", false, "query: disable cross-signature calibration transfer")
	noPrefetch := flag.Bool("no-prefetch", false, "query: disable signature prefetch leases (workers calibrate lazily)")
	kneeRadius := flag.Int("knee-radius", 0, "query: forced-DES half-width around a located knee (0 = router default)")
	transferRadius := flag.Float64("transfer-radius", 0, "query: max signature distance calibration transfer borrows across (0 = router default)")
	rangeHosts := flag.Int("range-hosts", 0, "query: hosts per shard range (0 = auto)")
	csv := flag.Bool("csv", false, "query: stream per-host CSV to stdout instead of the result JSON")
	timeoutSec := flag.Float64("timeout-sec", 0, "query: fail the query after this many seconds (0 = none)")
	traceOut := flag.String("trace-out", "", "query: trace the query end to end and write a Chrome trace_event file here (load in Perfetto or chrome://tracing)")

	verbose := flag.Bool("v", false, "verbose diagnostics on stderr")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	switch {
	case *query != "":
		runQuery(*query, serve.QueryRequest{
			Hosts:          *hosts,
			WindowsPerHost: *windows,
			Seed:           *seed,
			WarmupMS:       *warmupMS,
			MeasureMS:      *measureMS,
			Fidelity:       *fidMode,
			Tol:            *tol,
			AuditRate:      *auditRate,
			EarlyStop:      *estop,
			Warm:           *warm,
			NoCache:        *noCache,
			NoKneeSearch:   *noKnee,
			NoTransfer:     *noTransfer,
			NoPrefetch:     *noPrefetch,
			KneeRadius:     *kneeRadius,
			TransferRadius: *transferRadius,
			RangeHosts:     *rangeHosts,
			TimeoutSec:     *timeoutSec,
			Points:         *csv,
			Trace:          *traceOut != "",
		}, *csv, *traceOut, *verbose)
	case *join != "":
		runWorker(*join, *name, *threads, *poll, obsFlags, *verbose)
	default:
		runCoordinator(*addr, *cacheDir, *warmDir, *cacheMaxMB, *leaseTimeout,
			*staleAfter, *localWorkers, *threads, *poll, obsFlags, *verbose)
	}
}

// signalCtx is cancelled on SIGINT/SIGTERM.
func signalCtx() context.Context {
	ctx, stop := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-ch
		stop()
	}()
	return ctx
}

func runCoordinator(addr, cacheDir, warmDir string, cacheMaxMB int,
	leaseTimeout, staleAfter time.Duration, localWorkers, threads int,
	poll time.Duration, obsFlags *obs.Flags, verbose bool) {

	store, err := runcache.Open(cacheDir)
	if err != nil {
		fatalf("%v", err)
	}
	var warmStore *runcache.Store
	if warmDir != "" {
		if warmStore, err = runcache.Open(warmDir); err != nil {
			fatalf("%v", err)
		}
	}
	if cacheMaxMB > 0 {
		budget := int64(cacheMaxMB) << 20
		for _, s := range []*runcache.Store{store, warmStore} {
			if s == nil {
				continue
			}
			if removed, freed, perr := s.Prune(budget); perr != nil {
				fmt.Fprintf(os.Stderr, "hicserve: pruning %s: %v\n", s.Dir(), perr)
			} else if removed > 0 && verbose {
				fmt.Fprintf(os.Stderr, "pruned %d entries (%.1f MB) from %s\n",
					removed, float64(freed)/(1<<20), s.Dir())
			}
		}
	}

	// The control plane shares the coordinator's mux (serve.Options.Obs →
	// obs.(*Server).Register); -listen on the same address would try to
	// bind the port twice, so fold it into the embedded plane instead.
	if obsFlags.Listen == addr {
		fmt.Fprintf(os.Stderr, "hicserve: -listen %s is the coordinator address; control plane shares its port\n", addr)
		obsFlags.Listen = ""
	}
	obsSrv, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fatalf("%v", err)
	}
	if obsSrv == nil {
		// Always embed a control plane: its endpoints cost nothing until
		// scraped and the query API advances /progress per merged range.
		obsSrv = obs.NewServer(obs.Options{Warn: os.Stderr})
		obs.Set(obsSrv)
	}
	defer obsSrv.Close()
	obsSrv.AddSource(store)
	if warmStore != nil {
		obsSrv.AddSource(warmStore)
	}

	var logw *os.File
	if verbose {
		logw = os.Stderr
	}
	srv, err := serve.NewServer(serve.Options{
		Store:        store,
		WarmStore:    warmStore,
		LeaseTimeout: leaseTimeout,
		StaleAfter:   staleAfter,
		Obs:          obsSrv,
		Log:          logw,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("listening on %s: %v", addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Close
	fmt.Fprintf(os.Stderr, "hicserve: coordinator on http://%s (query %s, cache %s)\n",
		ln.Addr(), serve.QueryPath, store.Dir())

	ctx := signalCtx()
	base := "http://" + coordinatorHostPort(ln.Addr().String())
	workerDone := make(chan error, localWorkers)
	for i := 0; i < localWorkers; i++ {
		w := serve.NewWorker(base, serve.WorkerOptions{
			Name:    fmt.Sprintf("local%d", i),
			Threads: splitThreads(threads, localWorkers, i),
			Poll:    poll,
			Log:     logw,
		})
		go func() { workerDone <- w.Run(ctx) }()
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "hicserve: shutting down")
	for i := 0; i < localWorkers; i++ {
		<-workerDone
	}
	httpSrv.Close()
}

// coordinatorHostPort rewrites a wildcard listen address into one a
// local worker can dial.
func coordinatorHostPort(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return bound
}

// splitThreads divides a -threads budget across n local workers so
// co-resident pools share the cores instead of oversubscribing them
// (0 stays 0: every pool sizes itself to GOMAXPROCS).
func splitThreads(total, n, i int) int {
	if total <= 0 || n <= 1 {
		return total
	}
	per := total / n
	if i < total%n {
		per++
	}
	if per < 1 {
		per = 1
	}
	return per
}

func runWorker(base, name string, threads int, poll time.Duration,
	obsFlags *obs.Flags, verbose bool) {

	var logw *os.File
	if verbose {
		logw = os.Stderr
	}
	w := serve.NewWorker(base, serve.WorkerOptions{
		Name:    name,
		Threads: threads,
		Poll:    poll,
		Log:     logw,
	})
	// A worker's own control plane (-listen) exposes its live
	// lease/idle state, runner pool, and cache-client counters under
	// hic_serve_worker_* — inspectable without a coordinator scrape.
	obsSrv, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fatalf("%v", err)
	}
	if obsSrv != nil {
		obsSrv.AddSource(w)
		defer obsSrv.Close()
	}
	fmt.Fprintf(os.Stderr, "hicserve: worker joining %s\n", base)
	if err := w.Run(signalCtx()); err != nil && err != context.Canceled {
		fatalf("worker: %v", err)
	}
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "hicserve: worker %s done: %d leases, %d hosts, %d resident routers\n",
		w.ID(), st.Leases, st.Hosts, st.Routers)
}

func runQuery(base string, q serve.QueryRequest, csv bool, traceOut string, verbose bool) {
	out := bufio.NewWriter(os.Stdout)
	if csv {
		fmt.Fprint(out, cluster.CSVHeader())
	}
	c := serve.NewClient(base, nil)
	res, err := c.Query(signalCtx(), q, func(e serve.QueryEvent) error {
		switch e.Kind {
		case serve.KindPoint:
			if csv && e.Point != nil {
				_, werr := fmt.Fprint(out, cluster.CSVRow(*e.Point))
				return werr
			}
		case serve.KindRange:
			if verbose && e.Range != nil {
				fmt.Fprintf(os.Stderr, "range %d [%d, %d) by %s: %d/%d\n",
					e.Range.RangeID, e.Range.Lo, e.Range.Hi, e.Range.Worker, e.Range.Done, e.Range.Total)
			}
		}
		return nil
	})
	if err != nil {
		fatalf("%v", err)
	}
	if csv {
		if err := out.Flush(); err != nil {
			fatalf("%v", err)
		}
	} else {
		writeResult(out, res)
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, res); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "hicserve: trace %s: %d spans -> %s\n",
			res.TraceID, len(res.Trace), traceOut)
		if p := res.Phases; p != nil {
			fmt.Fprintf(os.Stderr, "hicserve: phases: queue %.1f ms, prefetch %.1f ms, execute %.1f ms, merge %.1f ms\n",
				p.QueueMS, p.PrefetchMS, p.ExecuteMS, p.MergeMS)
		}
	}
	fmt.Fprintf(os.Stderr, "hicserve: %d points from %d ranges on %d workers in %.0f ms (%.0f hosts/s), hash %s\n",
		res.Points, res.Ranges, res.Workers, res.ElapsedMS, res.HostsPerSec, res.AggregateHash)
}

// writeTrace exports a traced query's spans as a Chrome trace_event
// file: one track per worker plus the coordinator's lifecycle track.
func writeTrace(path string, res *serve.QueryResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeWallSpans(f, "hicserve query "+res.TraceID,
		serve.WallSpans(res.Trace)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeResult(out *bufio.Writer, res *serve.QueryResult) {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatalf("%v", err)
	}
	if err := out.Flush(); err != nil {
		fatalf("%v", err)
	}
}
