// Command hicfigs regenerates the paper's figures (3–6) and the §4
// extension ablations as tables, CSV, and ASCII plots.
//
// Usage:
//
//	hicfigs                  # run every experiment
//	hicfigs -fig 3           # one experiment (3,4,5,6,target,buffer,ats,cxl,mba,subrtt,cc)
//	hicfigs -fig 6 -csv      # emit CSV instead of a table
//	hicfigs -quick           # shrunken sweeps for a fast smoke run
//	hicfigs -outdir results  # also write <outdir>/<id>.csv per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hic/internal/asciiplot"
	"hic/internal/core"
	"hic/internal/experiments"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "experiment id: all or a comma list of "+strings.Join(experiments.Order, ", "))
	quick := flag.Bool("quick", false, "shrunken sweeps and windows")
	csv := flag.Bool("csv", false, "print CSV instead of aligned tables")
	plot := flag.Bool("plot", true, "print ASCII plots under each table")
	seed := flag.Uint64("seed", 1, "base seed")
	replicates := flag.Int("replicates", 1, "runs per point with derived seeds (fig3 cells become mean±ci95)")
	measureMS := flag.Int("measure-ms", 0, "override measurement window (ms)")
	outdir := flag.String("outdir", "", "also write per-experiment CSV files here")
	useCache := flag.Bool("cache", false, "memoize per-point results in the content-addressed run cache")
	cacheDir := flag.String("cache-dir", runcache.DefaultDir, "run-cache directory (with -cache)")
	cacheURL := flag.String("cache-url", "", "share a hicserve coordinator's run cache over HTTP instead of -cache-dir (implies -cache)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "prune the run cache and warm store to this size at startup, oldest entries first (0 = unbounded)")
	incidents := flag.Bool("incidents", false, "run the fig6 antagonist point with the sim-time observatory and print its congestion episodes, then exit")
	fid := fidelity.RegisterFlags(flag.CommandLine, fidelity.ModeDES)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	opt := experiments.Options{
		Seed:       *seed,
		Quick:      *quick,
		Replicates: *replicates,
	}
	if *measureMS > 0 {
		opt.Measure = sim.Duration(*measureMS) * sim.Millisecond
	}
	if *incidents {
		if err := printFig6Incidents(os.Stdout, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "hicfigs: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cacheURL != "" {
		store := runcache.OpenRemote(*cacheURL)
		opt.Cache = store
		defer func() { fmt.Fprintf(os.Stderr, "run cache: %s\n", store.Summary()) }()
	} else if *useCache {
		store, err := runcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicfigs: %v\n", err)
			os.Exit(1)
		}
		opt.Cache = store
		defer func() { fmt.Fprintf(os.Stderr, "run cache: %s\n", store.Summary()) }()
	}
	// Default -fidelity=des keeps published figures exact; Router returns
	// nil in that case and the pre-fidelity path runs byte-identically.
	router, err := fid.Router(opt.Cache, nil, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicfigs: %v\n", err)
		os.Exit(1)
	}
	if router != nil {
		opt.Exec = router
		defer func() {
			c := router.Counters()
			fmt.Fprintf(os.Stderr, "fidelity: %d fluid, %d DES (%d early-stopped), %d anchors\n",
				c.FluidRouted, c.DESRouted, c.EarlyStopped, c.AnchorRuns)
			if c.AnchorLoaded+c.AnchorPersisted+c.WarmStarted+c.WarmCheckpoints > 0 {
				fmt.Fprintf(os.Stderr, "warm start: %d anchors loaded, %d persisted, %d warm-started, %d checkpoints; warm-audited %d max-err %.4f (%d over tol)\n",
					c.AnchorLoaded, c.AnchorPersisted, c.WarmStarted, c.WarmCheckpoints,
					c.WarmAudited, c.WarmAuditMaxErr, c.WarmAuditOverTol)
			}
		}()
	}
	var warmStore *runcache.Store
	if router != nil {
		warmStore = router.WarmStore()
	}
	if *cacheMaxMB > 0 {
		budget := int64(*cacheMaxMB) << 20
		for _, s := range []*runcache.Store{opt.Cache, warmStore} {
			if s == nil {
				continue
			}
			if removed, freed, perr := s.Prune(budget); perr != nil {
				fmt.Fprintf(os.Stderr, "hicfigs: pruning %s: %v\n", s.Dir(), perr)
			} else if removed > 0 {
				fmt.Fprintf(os.Stderr, "pruned %d entries (%.1f MB) from %s\n",
					removed, float64(freed)/(1<<20), s.Dir())
			}
		}
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.Order
	} else {
		for _, id := range strings.Split(*fig, ",") {
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "hicfigs: unknown experiment %q (known: %s)\n",
					id, strings.Join(experiments.Order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var orun *obs.Run // nil-safe
	if srv, err := obsFlags.Start(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hicfigs: %v\n", err)
		os.Exit(1)
	} else if srv != nil {
		defer srv.Close()
		srv.AddSource(runner.Shared())
		if opt.Cache != nil {
			srv.AddSource(opt.Cache)
		}
		if router != nil {
			srv.AddSource(router)
		}
		if warmStore != nil {
			srv.AddSource(warmStore)
		}
		// One registry run with one phase per experiment: /progress shows
		// which figure is executing even though the per-figure point count
		// is internal to each experiment.
		orun = srv.StartRun("figs", int64(len(ids)), ids...)
		defer orun.Finish()
	}

	for _, id := range ids {
		orun.SetPhase(id)
		t, err := experiments.Registry[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicfigs: experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSVString())
		} else {
			fmt.Println(t.Render())
			if *plot {
				if p := t.PlotString(); p != "" {
					fmt.Println(p)
				}
			}
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "hicfigs: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSVString()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hicfigs: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		orun.Advance(1)
	}
}

// printFig6Incidents runs the paper's Figure 6 memory-antagonist point
// with the sim-time observatory attached and prints the congestion
// episodes it detected — the incident-level view of the mechanism the
// figure averages over a whole window.
func printFig6Incidents(w io.Writer, seed uint64) error {
	p := core.DefaultParams(12)
	p.AntagonistCores = 8
	p.Seed = seed
	res, rep, err := core.RunObserved(p, observatory.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fig6 antagonist point (seed %d): %.2f Gbps, %.3f%% drops, %d samples, %d episodes, %s congested\n",
		seed, res.AppThroughputGbps, res.DropRatePct, rep.Samples, len(rep.Episodes), sim.Duration(rep.CongestedNs))
	if len(rep.Episodes) == 0 {
		return nil
	}
	rows := make([][]string, 0, len(rep.Episodes))
	for _, e := range rep.Episodes {
		blind := ""
		if e.CCBlind {
			blind = "yes"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", float64(e.Start)/1e6),
			fmt.Sprintf("%.3f", float64(e.Duration())/1e6),
			fmt.Sprintf("%.2f", e.PeakBufferFrac),
			fmt.Sprintf("%d", e.Drops),
			fmt.Sprintf("%s %.0f%%", e.Cause, e.CauseShare*100),
			blind,
		})
	}
	fmt.Fprint(w, asciiplot.FormatTable(
		[]string{"start_ms", "dur_ms", "peak_fill", "drops", "cause", "cc_blind"}, rows))
	return nil
}
