// Command hiccap decodes a packet capture written by hicsim -capture
// (the wire format) and prints either a per-packet listing or a summary.
//
//	hicsim -capture run.cap ...
//	hiccap -summary run.cap
//	hiccap run.cap | head
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hic/internal/wire"
)

func main() {
	summary := flag.Bool("summary", false, "print per-flow summary instead of a listing")
	limit := flag.Int("n", 0, "stop after N packets (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hiccap [-summary] [-n N] <capture-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hiccap: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	r := wire.NewReader(bufio.NewReader(f))
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	type flowStats struct {
		packets int
		bytes   uint64
	}
	flows := map[uint32]*flowStats{}
	total := 0

	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hiccap: record %d: %v\n", total, err)
			os.Exit(1)
		}
		total++
		if *summary {
			fs := flows[p.Flow]
			if fs == nil {
				fs = &flowStats{}
				flows[p.Flow] = fs
			}
			fs.packets++
			fs.bytes += uint64(p.PayloadBytes)
		} else {
			fmt.Fprintf(out, "%12d ns  %-7s flow=%#08x queue=%-3d seq=%-8d payload=%d\n",
				p.NICArrival, p.Kind, p.Flow, p.Queue, p.Seq, p.PayloadBytes)
		}
		if *limit > 0 && total >= *limit {
			break
		}
	}

	if *summary {
		ids := make([]uint32, 0, len(flows))
		for f := range flows {
			ids = append(ids, f)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(out, "%-12s %10s %14s\n", "flow", "packets", "payload_bytes")
		for _, id := range ids {
			fs := flows[id]
			fmt.Fprintf(out, "%#-12x %10d %14d\n", id, fs.packets, fs.bytes)
		}
		fmt.Fprintf(out, "\ntotal: %d packets, %d flows\n", total, len(flows))
	}
}
