// Command hiccap decodes a packet capture written by hicsim -capture
// (the wire format) and prints either a per-packet listing or a summary.
// It can also re-export the capture as a Chrome trace (one slice per
// packet's fabric flight, sender → NIC arrival) or as Prometheus metrics.
//
//	hicsim -capture run.cap ...
//	hiccap -summary run.cap
//	hiccap -trace-out run.json -metrics-out run.prom run.cap
//	hiccap run.cap | head
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hic/internal/metrics"
	"hic/internal/telemetry"
	"hic/internal/wire"
)

func main() {
	summary := flag.Bool("summary", false, "print per-flow summary instead of a listing")
	limit := flag.Int("n", 0, "stop after N packets (0 = all)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of per-packet fabric flights to this file")
	metricsOut := flag.String("metrics-out", "", "write capture-derived metrics in Prometheus text format to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hiccap [-summary] [-n N] <capture-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hiccap: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	r := wire.NewReader(bufio.NewReader(f))
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	type flowStats struct {
		packets int
		bytes   uint64
	}
	flows := map[uint32]*flowStats{}
	total := 0
	listing := !*summary && *traceOut == "" && *metricsOut == ""

	var capEvents []telemetry.CaptureEvent
	var reg *metrics.Registry
	var fabricDelay *metrics.Histogram
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		fabricDelay = reg.Histogram("capture.fabric.delay.ns")
	}

	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hiccap: record %d: %v\n", total, err)
			os.Exit(1)
		}
		total++
		if *summary {
			fs := flows[p.Flow]
			if fs == nil {
				fs = &flowStats{}
				flows[p.Flow] = fs
			}
			fs.packets++
			fs.bytes += uint64(p.PayloadBytes)
		}
		if *traceOut != "" {
			capEvents = append(capEvents, telemetry.CaptureEvent{
				Name:  p.Kind.String(),
				Queue: p.Queue,
				Start: p.SentAt,
				End:   p.NICArrival,
				Args: map[string]any{
					"flow":    float64(p.Flow),
					"seq":     float64(p.Seq),
					"payload": float64(p.PayloadBytes),
				},
			})
		}
		if reg != nil {
			reg.Counter("capture.packets." + p.Kind.String()).Inc()
			reg.Counter("capture.bytes." + p.Kind.String()).Add(uint64(p.WireBytes))
			fabricDelay.Observe(float64(p.NICArrival - p.SentAt))
		}
		if listing {
			fmt.Fprintf(out, "%12d ns  %-7s flow=%#08x queue=%-3d seq=%-8d payload=%d\n",
				p.NICArrival, p.Kind, p.Flow, p.Queue, p.Seq, p.PayloadBytes)
		}
		if *limit > 0 && total >= *limit {
			break
		}
	}

	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hiccap: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.WriteCaptureTrace(tf, "hic capture", capEvents); err != nil {
			fmt.Fprintf(os.Stderr, "hiccap: writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		tf.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d packets)\n", *traceOut, len(capEvents))
	}
	if reg != nil {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hiccap: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.WritePrometheus(mf, reg.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "hiccap: writing %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		mf.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}

	if *summary {
		ids := make([]uint32, 0, len(flows))
		for f := range flows {
			ids = append(ids, f)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(out, "%-12s %10s %14s\n", "flow", "packets", "payload_bytes")
		for _, id := range ids {
			fs := flows[id]
			fmt.Fprintf(out, "%#-12x %10d %14d\n", id, fs.packets, fs.bytes)
		}
		fmt.Fprintf(out, "\ntotal: %d packets, %d flows\n", total, len(flows))
	}
}
