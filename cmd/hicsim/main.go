// Command hicsim runs a single host-congestion scenario and prints its
// measurements plus (optionally) the full metric registry.
//
// Example — the paper's 12-core IOMMU-on point with 8 antagonist cores:
//
//	hicsim -threads 12 -antagonists 8 -v
//
// Scenarios can also be loaded from JSON files (see configs/):
//
//	hicsim -config configs/fig6_antagonised.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hic/internal/core"
	"hic/internal/sim"
	"hic/internal/telemetry"
	"hic/internal/trace"
)

func main() {
	threads := flag.Int("threads", 12, "receiver threads/cores")
	senders := flag.Int("senders", 40, "sender machines")
	regionMB := flag.Int("region-mb", 12, "per-thread Rx region (MB)")
	iommuOn := flag.Bool("iommu", true, "enable the IOMMU")
	hugepages := flag.Bool("hugepages", true, "use 2MB payload mappings")
	antagonists := flag.Int("antagonists", 0, "STREAM antagonist cores")
	cc := flag.String("cc", "swift", "congestion control: swift, dctcp, fixed")
	hostTargetUS := flag.Int("host-target-us", 0, "Swift host delay target override (µs)")
	bufferKB := flag.Int("nic-buffer-kb", 0, "NIC input buffer override (KB)")
	deviceTLB := flag.Int("device-tlb", 0, "ATS-style device TLB entries")
	subRTT := flag.Bool("subrtt", false, "enable sub-RTT host congestion signal")
	warmupMS := flag.Int("warmup-ms", 20, "warmup window (ms)")
	measureMS := flag.Int("measure-ms", 30, "measurement window (ms)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "dump the full metric registry")
	configPath := flag.String("config", "", "load the scenario from a JSON core.Params file (overrides scenario flags)")
	tracePath := flag.String("trace", "", "write a time-series CSV (wide form) to this file")
	capturePath := flag.String("capture", "", "write a packet capture (wire format) to this file")
	traceUS := flag.Int("trace-period-us", 100, "trace sampling period (µs)")
	traceSpans := flag.Bool("trace-spans", false, "enable per-DMA span tracing and drop attribution")
	spanRate := flag.Float64("span-rate", 0.01, "head-based span sampling rate in [0,1] (with -trace-spans)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON (Perfetto-loadable) of the sampled spans to this file (implies -trace-spans)")
	metricsOut := flag.String("metrics-out", "", "write the metric registry in Prometheus text exposition format to this file")
	flag.Parse()

	p := core.DefaultParams(*threads)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicsim: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &p); err != nil {
			fmt.Fprintf(os.Stderr, "hicsim: parsing %s: %v\n", *configPath, err)
			os.Exit(1)
		}
	}
	p.Seed = *seed
	if *configPath == "" {
		p.Senders = *senders
		p.RxRegionBytes = uint64(*regionMB) << 20
		p.IOMMU = *iommuOn
		p.Hugepages = *hugepages
		p.AntagonistCores = *antagonists
		p.CC = core.CC(*cc)
		p.SubRTTHostECN = *subRTT
		p.DeviceTLBEntries = *deviceTLB
		if *hostTargetUS > 0 {
			p.HostTarget = sim.Duration(*hostTargetUS) * sim.Microsecond
		}
		if *bufferKB > 0 {
			p.NICBufferBytes = *bufferKB << 10
		}
	}
	p.Warmup = sim.Duration(*warmupMS) * sim.Millisecond
	p.Measure = sim.Duration(*measureMS) * sim.Millisecond

	tb, err := p.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicsim: %v\n", err)
		os.Exit(1)
	}
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = tb.EnableTrace(sim.Duration(*traceUS) * sim.Microsecond)
	}
	var telem *telemetry.Run
	if *traceSpans || *traceOut != "" {
		telem = tb.EnableSpans(*spanRate)
	}
	var capFile *os.File
	if *capturePath != "" {
		var err error
		capFile, err = os.Create(*capturePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicsim: %v\n", err)
			os.Exit(1)
		}
		cw := tb.EnableCapture(capFile)
		defer func() {
			fmt.Fprintf(os.Stderr, "wrote %s (%d packets)\n", *capturePath, cw.Count())
			capFile.Close()
		}()
	}
	res := tb.Run(p.Warmup, p.Measure)
	if rec != nil {
		if err := os.WriteFile(*tracePath, []byte(rec.Wide()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hicsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", *tracePath, rec.Len())
	}

	fmt.Printf("scenario: threads=%d senders=%d region=%dMB iommu=%v hugepages=%v antagonists=%d cc=%s\n",
		p.Threads, p.Senders, p.RxRegionBytes>>20, p.IOMMU, p.Hugepages, p.AntagonistCores, p.CC)
	fmt.Printf("app throughput:        %7.2f Gbps (ceiling %.1f)\n",
		res.AppThroughputGbps, core.MaxAchievable.Gbps())
	fmt.Printf("drop rate:             %7.2f %%\n", res.DropRatePct)
	fmt.Printf("IOTLB misses/packet:   %7.2f\n", res.IOTLBMissesPerPacket)
	fmt.Printf("memory bandwidth:      %7.1f GB/s\n", res.MemoryBandwidthGBps)
	fmt.Printf("link utilization:      %7.1f %%\n", res.LinkUtilization*100)
	fmt.Printf("host delay p50/p99:    %v / %v\n", res.HostDelayP50, res.HostDelayP99)
	fmt.Printf("retransmits:           %d\n", res.Retransmits)
	fmt.Printf("completed 16KB reads:  %d\n", res.Reads)
	if telem != nil {
		tr, led := telem.Tracer, telem.Drops
		fmt.Printf("\n--- pipeline telemetry (%d/%d packets sampled at rate %g) ---\n",
			tr.Sampled(), tr.Arrived(), tr.Rate())
		fmt.Print(telemetry.BreakdownTable(tr.Spans()))
		if led.Total() > 0 {
			fmt.Println("\n--- drop attribution ---")
			fmt.Print(led.Table())
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hicsim: %v\n", err)
				os.Exit(1)
			}
			if err := telemetry.WriteChromeTrace(f, telem); err != nil {
				fmt.Fprintf(os.Stderr, "hicsim: writing %s: %v\n", *traceOut, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d drop events)\n",
				*traceOut, len(tr.Spans()), len(led.Events()))
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicsim: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.WritePrometheus(f, tb.Registry.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "hicsim: writing %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}
	if *verbose {
		fmt.Println("\n--- metric registry ---")
		fmt.Print(tb.Registry.Dump())
	}
}
