package fidelity

import (
	"reflect"
	"strings"
	"testing"

	"hic/internal/core"
	"hic/internal/host"
	"hic/internal/runcache"
	"hic/internal/sim"
)

func openStore(t *testing.T, dir string) *runcache.Store {
	t.Helper()
	s, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseWarmMode(t *testing.T) {
	for _, good := range []string{"off", "calib", "full"} {
		if _, err := ParseWarmMode(good); err != nil {
			t.Errorf("ParseWarmMode(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "on", "FULL", "ckpt"} {
		if _, err := ParseWarmMode(bad); err == nil {
			t.Errorf("ParseWarmMode(%q): want error", bad)
		}
	}
}

func TestNewWarmValidation(t *testing.T) {
	if _, err := New(Config{Warm: WarmFull}); err == nil {
		t.Error("Warm full without WarmStore accepted")
	}
	if _, err := New(Config{Warm: "hot"}); err == nil {
		t.Error("unknown warm mode accepted")
	}
	store := openStore(t, t.TempDir())
	if _, err := New(Config{Warm: WarmFull, WarmStore: store, WarmAuditRate: 1.5}); err == nil {
		t.Error("WarmAuditRate 1.5 accepted")
	}
	if _, err := New(Config{Warm: WarmFull, WarmStore: store, WarmAuditRate: 0.1}); err != nil {
		t.Errorf("valid warm config rejected: %v", err)
	}
}

// TestCalibPersistRoundTrip is the headline persistence property: a
// second router over the same warm store routes every point to the
// identical version and result — with zero anchor simulations, every
// anchor and noise tier served from disk.
func TestCalibPersistRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs DES anchors")
	}
	dir := t.TempDir()
	cfg := func(s *runcache.Store) Config {
		return Config{Mode: ModeAuto, Tol: 0.05, Warm: WarmCalib, WarmStore: s}
	}
	var grid []core.Params
	for _, ant := range []int{0, 2, 6, 10, 15} {
		p := core.DefaultParams(12)
		p.AntagonistCores = ant
		// A seed outside the anchor pool: no grid point coincides with a
		// calibration run, so routing depends only on the calibration
		// state — the thing whose persistence is under test.
		p.Seed = 7
		p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
		grid = append(grid, p)
	}

	r1 := mustRouter(t, cfg(openStore(t, dir)))
	type outcome struct {
		version string
		res     core.Results
	}
	cold := make([]outcome, len(grid))
	for i, p := range grid {
		version, run, err := r1.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run(nil)
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = outcome{version, res}
	}
	c1 := r1.Counters()
	if c1.AnchorRuns == 0 {
		t.Fatal("cold router ran no anchors; persistence is vacuous")
	}
	if c1.AnchorPersisted == 0 {
		t.Fatal("cold router persisted nothing")
	}

	r2 := mustRouter(t, cfg(openStore(t, dir)))
	for i, p := range grid {
		version, run, err := r2.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		if version != cold[i].version {
			t.Errorf("ant=%d: warm version %q != cold %q", p.AntagonistCores, version, cold[i].version)
		}
		res, err := run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, cold[i].res) {
			t.Errorf("ant=%d: warm result differs from cold", p.AntagonistCores)
		}
	}
	c2 := r2.Counters()
	if c2.AnchorRuns != 0 {
		t.Errorf("warm router ran %d anchors, want 0 (all persisted)", c2.AnchorRuns)
	}
	if c2.AnchorLoaded == 0 {
		t.Error("warm router loaded no persisted anchors")
	}
	if c2.AnchorLoaded != c1.AnchorPersisted {
		t.Errorf("loaded %d != persisted %d", c2.AnchorLoaded, c1.AnchorPersisted)
	}
}

// TestCalibSaltInvalidation pins invalidation-by-construction for the
// persistent store: calibration persisted under one salt is invisible
// to a router whose DES variant or anchor grid differs.
func TestCalibSaltInvalidation(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	r1 := mustRouter(t, Config{Mode: ModeAuto, Warm: WarmCalib, WarmStore: store})
	p := core.DefaultParams(12)
	sig := signature(p)

	// Hand-plant a calibration blob under r1's salt (no DES needed).
	pc := persistedCalib{Anchors: []persistedAnchor{{Ant: 0, Gain: 1, OK: true}}}
	v1 := r1.calibVersion()
	if err := store.PutBlob(runcache.Key(v1, sig), v1, sig, pc); err != nil {
		t.Fatal(err)
	}

	touch := func(r *Router) uint64 {
		s := r.sigFor(p)
		s.mu.Lock()
		r.loadSig(s, p)
		s.mu.Unlock()
		return r.Counters().AnchorLoaded
	}
	if n := touch(r1); n != 1 {
		t.Fatalf("same-salt router loaded %d anchors, want 1", n)
	}

	// A different anchor grid changes the salt: nothing loads.
	r2 := mustRouter(t, Config{Mode: ModeAuto, Warm: WarmCalib,
		WarmStore: openStore(t, dir), AnchorAnts: []int{0, 8, 15}})
	if r2.calibVersion() == v1 {
		t.Fatal("different AnchorAnts produced the same calibration salt")
	}
	if n := touch(r2); n != 0 {
		t.Fatalf("bumped-grid router loaded %d anchors, want 0", n)
	}

	// So does a different DES variant (early stopping re-salts anchors).
	r3 := mustRouter(t, Config{Mode: ModeAuto, Warm: WarmCalib,
		WarmStore: openStore(t, dir), EarlyStop: true})
	if r3.calibVersion() == v1 {
		t.Fatal("early-stopped router produced the pure-DES calibration salt")
	}
	if n := touch(r3); n != 0 {
		t.Fatalf("early-stopped router loaded %d anchors, want 0", n)
	}
}

// TestWarmStartRoundTripAndSalt exercises the checkpoint layer end to
// end: a cold run donates a checkpoint, a second process warm-starts a
// sibling point from it under a distinct salt, never in-process, and
// the warm audit returns the authoritative cold result.
func TestWarmStartRoundTripAndSalt(t *testing.T) {
	if testing.Short() {
		t.Skip("runs DES")
	}
	dir := t.TempDir()
	p := core.DefaultParams(4)
	p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond
	p2 := p
	p2.Seed = 42

	// Process 1: cold, captures a checkpoint.
	r1 := mustRouter(t, Config{Mode: ModeDES, Warm: WarmFull, WarmStore: openStore(t, dir)})
	v1, run1, err := r1.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != core.SimVersion {
		t.Fatalf("first-ever point planned %q, want cold %q", v1, core.SimVersion)
	}
	if _, err := run1(nil); err != nil {
		t.Fatal(err)
	}
	if c := r1.Counters(); c.WarmCheckpoints != 1 || c.WarmStarted != 0 {
		t.Fatalf("cold run counters = %+v, want 1 checkpoint, 0 warm starts", c)
	}
	// Checkpoints captured in-process must not serve as donors: the
	// sibling still plans cold in the same router.
	if v, _, err := r1.Plan(p2); err != nil || v != core.SimVersion {
		t.Fatalf("in-process checkpoint served as donor (version %q, err %v)", v, err)
	}

	// Process 2: warm-starts the sibling from the persisted donor.
	r2 := mustRouter(t, Config{Mode: ModeDES, Warm: WarmFull, WarmStore: openStore(t, dir)})
	v2, run2, err := r2.Plan(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v2, "+warm(") {
		t.Fatalf("sibling planned %q, want a +warm(...) salt", v2)
	}
	if v2 == core.SimVersion || strings.HasPrefix(v2, core.FluidVersion) {
		t.Fatalf("warm salt %q collides with a DES or fluid salt family", v2)
	}
	if runcache.Key(v2, p2.Canonical()) == p2.CacheKey() {
		t.Fatal("warm salt produced the pure-DES cache key")
	}
	warm, err := run2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := r2.Counters(); c.WarmStarted != 1 {
		t.Fatalf("counters = %+v, want 1 warm start", c)
	}
	des2, err := core.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if e := observedError(warm, des2); e > 0.1 {
		t.Errorf("warm-start error %.4f vs cold DES exceeds 0.1 (warm %.2f Gbps/%.3f%%, cold %.2f Gbps/%.3f%%)",
			e, warm.AppThroughputGbps, warm.DropRatePct, des2.AppThroughputGbps, des2.DropRatePct)
	}

	// Warm audit: exact cold result under the pure-DES salt, error
	// recorded.
	r3 := mustRouter(t, Config{Mode: ModeDES, Warm: WarmFull,
		WarmStore: openStore(t, dir), WarmAuditRate: 1})
	v3, run3, err := r3.Plan(p2)
	if err != nil {
		t.Fatal(err)
	}
	if v3 != core.SimVersion {
		t.Fatalf("warm audit planned %q, want authoritative %q", v3, core.SimVersion)
	}
	got, err := run3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, des2) {
		t.Fatal("warm audit did not return the authoritative cold result")
	}
	if c := r3.Counters(); c.WarmAudited != 1 {
		t.Fatalf("counters = %+v, want 1 warm audit", c)
	} else {
		t.Logf("warm audit observed error %.4f", c.WarmAuditMaxErr)
	}

	// A cached exact result always wins over a warm start.
	cache := openStore(t, t.TempDir())
	if err := cache.Put(p2.CacheKey(), core.SimVersion, p2.Canonical(), des2); err != nil {
		t.Fatal(err)
	}
	r4 := mustRouter(t, Config{Mode: ModeDES, Warm: WarmFull,
		WarmStore: openStore(t, dir), Cache: cache})
	if v, _, err := r4.Plan(p2); err != nil || v != core.SimVersion {
		t.Fatalf("warm start shadowed a cached exact result (version %q, err %v)", v, err)
	}
}

// TestWarmEligibilityExcludesBursty pins the duty-cycle exclusion: a
// bursty scenario's congestion state only trains during the on-fraction
// of each period, so a donor's end-of-run state outruns its own
// measured average — such points must neither donate checkpoints nor
// warm-start from one.
func TestWarmEligibilityExcludesBursty(t *testing.T) {
	p := core.DefaultParams(4)
	p.BurstDuty, p.BurstPeriod = 0.2, 2*sim.Millisecond
	if warmEligible(p) {
		t.Fatal("duty-cycled scenario reported warm-eligible")
	}
	steady := p
	steady.BurstDuty, steady.BurstPeriod = 0, 0
	if !warmEligible(steady) {
		t.Fatal("steady scenario reported warm-ineligible")
	}

	store := openStore(t, t.TempDir())
	r, err := New(Config{Mode: ModeDES, Warm: WarmFull, WarmStore: store})
	if err != nil {
		t.Fatal(err)
	}
	// A bursty point must never donate a checkpoint...
	r.recordCkpt(p, host.Snapshot{})
	if got := r.Counters().WarmCheckpoints; got != 0 {
		t.Fatalf("bursty point donated a checkpoint (WarmCheckpoints = %d)", got)
	}
	// ...and must never warm-start, even with a donor planted at its
	// exact coordinates.
	s := r.sigFor(p)
	s.mu.Lock()
	s.loaded = true
	s.ckpts = append(s.ckpts, persistedCkpt{Ant: p.AntagonistCores, Seed: p.Seed})
	s.mu.Unlock()
	if _, _, ok, perr := r.warmPlan(p, ""); perr != nil || ok {
		t.Fatalf("warmPlan on a bursty point: ok=%v err=%v", ok, perr)
	}
}
