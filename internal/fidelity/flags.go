package fidelity

import (
	"flag"
	"fmt"
	"io"

	"hic/internal/runcache"
)

// Flags bundles the standard command-line fidelity knobs so every
// driver (hicsweep, hiccluster, hicfigs) exposes the same interface.
type Flags struct {
	Mode      string
	Tol       float64
	AuditRate float64
	EarlyStop bool

	Warm          string
	WarmDir       string
	WarmURL       string
	WarmAuditRate float64

	KneeSearch     bool
	KneeRadius     int
	Transfer       bool
	TransferRadius float64
}

// DefaultWarmDir is where the persistent warm-start store lives unless
// -warm-dir overrides it — deliberately separate from the result
// cache's results/cache so pruning one never evicts the other.
const DefaultWarmDir = "results/warm"

// RegisterFlags installs the fidelity flags on fs with the given
// default mode ("des" keeps published-figure paths exact by default).
func RegisterFlags(fs *flag.FlagSet, defaultMode Mode) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Mode, "fidelity", string(defaultMode),
		"execution fidelity: des (exact simulation), fluid (uncalibrated analytic preview), auto (calibrated fluid where sound, DES elsewhere)")
	fs.Float64Var(&f.Tol, "fidelity-tol", 0.05,
		"auto-mode routing tolerance: max acceptable calibrated error (fraction)")
	fs.Float64Var(&f.AuditRate, "audit-rate", 0,
		"shadow-run DES on this fraction of fluid-routed points and record the observed error (auto mode)")
	fs.BoolVar(&f.EarlyStop, "early-stop", false,
		"terminate DES measurement windows once goodput and drop moments reach steady state (approximate)")
	fs.StringVar(&f.Warm, "warm", string(WarmOff),
		"cross-run warm start: off, calib (persist and reload calibration anchors), full (calib plus checkpointed DES warm starts)")
	fs.StringVar(&f.WarmDir, "warm-dir", DefaultWarmDir,
		"persistent warm-start store directory (calibration state and steady-state checkpoints)")
	fs.StringVar(&f.WarmURL, "warm-url", "",
		"share a hicserve coordinator's warm store over HTTP instead of -warm-dir (e.g. http://coordinator:8091)")
	fs.Float64Var(&f.WarmAuditRate, "warm-audit-rate", 0.05,
		"cold-re-run this fraction of warm-startable points and record the observed warm-start error")
	fs.BoolVar(&f.KneeSearch, "knee-search", true,
		"auto mode: bisect each signature's regime boundary and fluid-route knee-band points away from the located knee (widened, audited bound)")
	fs.IntVar(&f.KneeRadius, "knee-radius", 1,
		"half-width, in antagonist tiers, of the forced-DES neighborhood around a located knee")
	fs.BoolVar(&f.Transfer, "calib-transfer", true,
		"auto mode: let uncalibrated signatures borrow anchor calibration from the nearest calibrated neighbor (inflated, audited bound)")
	fs.Float64Var(&f.TransferRadius, "transfer-radius", 1.2,
		"max signature-space distance calibration transfer may borrow across")
	return f
}

// Router builds the configured router, or nil when the flags select the
// pure-DES legacy path (mode des, no early stop, warm start off) —
// callers should leave their executor unset in that case so results and
// cache keys stay byte-identical to the pre-fidelity binaries.
// anchorSeeds may be nil (defaults apply); fleet drivers pass their own
// seed pool. A warm mode other than off opens the warm store under
// WarmDir and forces a router even in pure-DES mode.
func (f *Flags) Router(cache *runcache.Store, anchorSeeds []uint64, log io.Writer) (*Router, error) {
	mode, err := ParseMode(f.Mode)
	if err != nil {
		return nil, err
	}
	warm, err := ParseWarmMode(f.Warm)
	if err != nil {
		return nil, err
	}
	if mode == ModeDES && !f.EarlyStop && warm == WarmOff {
		return nil, nil
	}
	var warmStore *runcache.Store
	if warm != WarmOff {
		if f.WarmURL != "" {
			warmStore = runcache.NewStore(runcache.NewHTTP(
				runcache.RemoteURL(f.WarmURL, runcache.RemoteWarmPath), nil))
		} else if warmStore, err = runcache.Open(f.WarmDir); err != nil {
			return nil, fmt.Errorf("fidelity: opening warm store: %w", err)
		}
	}
	return New(Config{
		Mode:           mode,
		Tol:            f.Tol,
		AuditRate:      f.AuditRate,
		EarlyStop:      f.EarlyStop,
		Cache:          cache,
		AnchorSeeds:    anchorSeeds,
		Log:            log,
		Warm:           warm,
		WarmStore:      warmStore,
		WarmAuditRate:  f.WarmAuditRate,
		KneeSearch:     f.KneeSearch,
		KneeRadius:     f.KneeRadius,
		Transfer:       f.Transfer,
		TransferRadius: f.TransferRadius,
	})
}
