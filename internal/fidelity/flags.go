package fidelity

import (
	"flag"
	"io"

	"hic/internal/runcache"
)

// Flags bundles the standard command-line fidelity knobs so every
// driver (hicsweep, hiccluster, hicfigs) exposes the same interface.
type Flags struct {
	Mode      string
	Tol       float64
	AuditRate float64
	EarlyStop bool
}

// RegisterFlags installs the fidelity flags on fs with the given
// default mode ("des" keeps published-figure paths exact by default).
func RegisterFlags(fs *flag.FlagSet, defaultMode Mode) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Mode, "fidelity", string(defaultMode),
		"execution fidelity: des (exact simulation), fluid (uncalibrated analytic preview), auto (calibrated fluid where sound, DES elsewhere)")
	fs.Float64Var(&f.Tol, "fidelity-tol", 0.05,
		"auto-mode routing tolerance: max acceptable calibrated error (fraction)")
	fs.Float64Var(&f.AuditRate, "audit-rate", 0,
		"shadow-run DES on this fraction of fluid-routed points and record the observed error (auto mode)")
	fs.BoolVar(&f.EarlyStop, "early-stop", false,
		"terminate DES measurement windows once goodput and drop moments reach steady state (approximate)")
	return f
}

// Router builds the configured router, or nil when the flags select the
// pure-DES legacy path (mode des, no early stop) — callers should leave
// their executor unset in that case so results and cache keys stay
// byte-identical to the pre-fidelity binaries. anchorSeeds may be nil
// (defaults apply); fleet drivers pass their own seed pool.
func (f *Flags) Router(cache *runcache.Store, anchorSeeds []uint64, log io.Writer) (*Router, error) {
	mode, err := ParseMode(f.Mode)
	if err != nil {
		return nil, err
	}
	if mode == ModeDES && !f.EarlyStop {
		return nil, nil
	}
	return New(Config{
		Mode:        mode,
		Tol:         f.Tol,
		AuditRate:   f.AuditRate,
		EarlyStop:   f.EarlyStop,
		Cache:       cache,
		AnchorSeeds: anchorSeeds,
		Log:         log,
	})
}
