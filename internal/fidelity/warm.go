package fidelity

import (
	"fmt"
	"strconv"

	"hic/internal/core"
	"hic/internal/host"
	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
)

// Steady-state checkpointing: the second layer of cross-run warm start.
// In WarmFull mode every cold DES-routed point donates its converged
// snapshot (host.Snapshot — CC windows, IOTLB working set, memory
// demand EWMA, engine RNG) to a per-signature checkpoint blob in the
// warm store. A later run of a DES-routed point in the same signature
// warm-starts from the nearest persisted donor: a fresh testbed is
// primed with the snapshot and replays only a short re-convergence
// guard window instead of the full warmup ramp.
//
// Correctness model, mirroring fluid routing:
//
//   - warm-started results are approximate, so they are cached under a
//     distinct "+warm(donor,guard)" salt that embeds the donor
//     coordinates and the guard window — a pure-DES lookup can never be
//     satisfied by one;
//   - donors are only ever taken from the set loaded from disk at the
//     signature's first touch, never from checkpoints captured in this
//     process — so the first (cold) run is fully exact and the second
//     (warm) run routes deterministically regardless of scheduling;
//   - a deterministic WarmAuditRate fraction of warm-startable points
//     re-runs cold DES instead: the exact result is returned (and
//     cached under the pure-DES salt), the warm run is executed as a
//     shadow, and the observed warm-vs-cold error feeds
//     WarmAudited/WarmAuditOverTol/WarmAuditMaxErr;
//   - when the surrounding sweep's result cache already holds the exact
//     DES entry for a point, the warm path steps aside and lets the
//     cache serve it — an approximation never shadows an exact result
//     that is already paid for.

// WarmMode selects cross-run warm-start behavior.
type WarmMode string

const (
	// WarmOff disables the warm store entirely; every code path is
	// byte-identical to the pre-warm-start tree.
	WarmOff WarmMode = "off"
	// WarmCalib persists and reloads per-signature calibration state
	// (anchors, noise tiers, calibration DES runs).
	WarmCalib WarmMode = "calib"
	// WarmFull is WarmCalib plus steady-state DES checkpointing.
	WarmFull WarmMode = "full"
)

// ParseWarmMode validates a -warm flag value.
func ParseWarmMode(s string) (WarmMode, error) {
	switch WarmMode(s) {
	case WarmOff, WarmCalib, WarmFull:
		return WarmMode(s), nil
	}
	return "", fmt.Errorf("fidelity: unknown warm mode %q (want off, calib, or full)", s)
}

// persistedCkpts is the per-signature checkpoint blob: every converged
// donor captured for the signature, in deterministic (ant, seed) order.
type persistedCkpts struct {
	Ckpts []persistedCkpt `json:"ckpts"`
}

type persistedCkpt struct {
	Ant  int           `json:"ant"`
	Seed uint64        `json:"seed"`
	Snap host.Snapshot `json:"snap"`
}

// warmFullOn reports whether checkpointed warm starts are active.
func (r *Router) warmFullOn() bool {
	return r.cfg.Warm == WarmFull && r.cfg.WarmStore != nil
}

// ckptVersion salts checkpoint blobs: snapshot content depends only on
// how the donor DES ran.
func (r *Router) ckptVersion() string {
	return "hic-ckpt-1|" + r.desVersion()
}

// warmGuard is the re-convergence window a warm start replays in place
// of the full warmup.
func (r *Router) warmGuard(p core.Params) sim.Duration {
	if r.cfg.WarmGuard > 0 {
		// An explicit guard still aligns to whole burst periods: a
		// sub-periodic guard on a duty-cycled scenario measures part
		// of the ungated first period and is wrong, not just short.
		return core.AlignWarmGuard(p, r.cfg.WarmGuard)
	}
	return core.DefaultWarmGuard(p)
}

// warmAudit deterministically samples warm-startable points for a cold
// re-run, hashing the canonical encoding under its own salt exactly
// like the fluid audit — the same fleet audits the same hosts in every
// process.
func (r *Router) warmAudit(canonical string) bool {
	if r.cfg.WarmAuditRate <= 0 {
		return false
	}
	key := runcache.Key("warm-audit-1", canonical)
	v, err := strconv.ParseUint(key[:15], 16, 64)
	if err != nil {
		return false
	}
	return float64(v)/float64(uint64(1)<<60) < r.cfg.WarmAuditRate
}

// nearestDonor picks the persisted checkpoint closest to p on the
// antagonist-tier axis (caller holds s.mu, loadSig done). Ties prefer
// the same seed, then the lower tier, then the lower seed — a total
// order, so every process picks the same donor and the warm salt is
// stable across runs.
func (r *Router) nearestDonor(s *sigCalib, p core.Params) (persistedCkpt, bool) {
	dist := func(c persistedCkpt) int {
		d := c.Ant - p.AntagonistCores
		if d < 0 {
			d = -d
		}
		return d
	}
	best := -1
	for i, c := range s.ckpts {
		if best < 0 {
			best = i
			continue
		}
		b := s.ckpts[best]
		switch {
		case dist(c) != dist(b):
			if dist(c) < dist(b) {
				best = i
			}
		case (c.Seed == p.Seed) != (b.Seed == p.Seed):
			if c.Seed == p.Seed {
				best = i
			}
		case c.Ant != b.Ant:
			if c.Ant < b.Ant {
				best = i
			}
		case c.Seed < b.Seed:
			best = i
		}
	}
	if best < 0 {
		return persistedCkpt{}, false
	}
	return s.ckpts[best], true
}

// recordCkpt captures a cold run's converged snapshot into the
// signature's checkpoint blob. Checkpoints captured here are persisted
// for *future* processes but never used as donors in this one (see the
// package comment on determinism). Duplicate coordinates are skipped —
// the first converged capture wins.
// warmEligible excludes duty-cycled scenarios from warm starting.
// Their congestion state only trains during the on-fraction of each
// burst period, so convergence is slow in proportion — slow enough that
// a donor's end-of-run state measurably outruns what the donor's own
// measurement window averaged. Resuming from it then reports the
// drifted state (observed: +20-40% throughput on bursty swift incast
// even when a scenario resumes from its own checkpoint), which no guard
// window short of the full warmup repairs. These points still early-
// stop and still benefit from persisted calibration; they just always
// ramp cold.
func warmEligible(p core.Params) bool {
	return p.BurstDuty == 0
}

func (r *Router) recordCkpt(p core.Params, snap host.Snapshot) {
	if !warmEligible(p) {
		// Never a donor either: nothing will resume from it, and the
		// blob would only bloat the per-signature checkpoint set.
		return
	}
	s := r.sigFor(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	r.loadSig(s, p)
	coord := anchorCoord{p.AntagonistCores, p.Seed}
	if s.ckptCoords[coord] {
		return
	}
	s.ckptCoords[coord] = true
	s.ckptNew = append(s.ckptNew, persistedCkpt{Ant: p.AntagonistCores, Seed: p.Seed, Snap: snap})

	all := persistedCkpts{Ckpts: make([]persistedCkpt, 0, len(s.ckpts)+len(s.ckptNew))}
	all.Ckpts = append(all.Ckpts, s.ckpts...)
	all.Ckpts = append(all.Ckpts, s.ckptNew...)
	sortCkpts(all.Ckpts)
	sig := signature(p)
	v := r.ckptVersion()
	if err := r.cfg.WarmStore.PutBlob(runcache.Key(v, sig), v, sig, all); err != nil {
		r.logf("fidelity: persisting checkpoint: %v", err)
		return
	}
	r.warmCheckpoints.Add(1)
}

func sortCkpts(cs []persistedCkpt) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && (cs[j].Ant < cs[j-1].Ant ||
			(cs[j].Ant == cs[j-1].Ant && cs[j].Seed < cs[j-1].Seed)); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// warmPlan attempts to warm-start a DES-routed point. ok=false means no
// usable donor (or warm start inactive): the caller runs cold and
// donates a checkpoint.
func (r *Router) warmPlan(p core.Params, why string) (version string, run func(*runner.Arena) (core.Results, error), ok bool, err error) {
	if !r.warmFullOn() || !warmEligible(p) {
		return "", nil, false, nil
	}
	s := r.sigFor(p)
	s.mu.Lock()
	r.loadSig(s, p)
	donor, found := r.nearestDonor(s, p)
	s.mu.Unlock()
	if !found {
		return "", nil, false, nil
	}
	canonical := p.Canonical()
	desV := r.desVersion()
	if r.cfg.Cache != nil && r.cfg.Cache.Contains(runcache.Key(desV, canonical), desV, canonical) {
		// The exact result is already on disk; never shadow it with an
		// approximation.
		return "", nil, false, nil
	}
	guard := r.warmGuard(p)

	if r.warmAudit(canonical) {
		// Warm audits run (and cache) authoritative cold DES under the
		// pure-DES salt; the warm start is executed as a shadow and only
		// compared.
		r.logf("fidelity: warm-audit %s ant=%d seed=%d (donor %d:%d)", sigLabel(p), p.AntagonistCores, p.Seed, donor.Ant, donor.Seed)
		r.emitRoute(p, "warm-audit", why)
		audit := func(a *runner.Arena) (core.Results, error) {
			des, err := r.runColdCaptured(p, a)
			if err != nil {
				return core.Results{}, err
			}
			warm, werr := core.RunWarmOn(p, donor.Snap, guard, a)
			if werr != nil {
				r.logf("fidelity: warm-audit shadow failed: %v", werr)
				return des, nil
			}
			e := observedError(warm, des)
			r.warmAudited.Add(1)
			r.warmAuditMaxErr.Max(e)
			over := e > r.tol
			if over {
				r.warmAuditOverTol.Add(1)
				r.logf("fidelity: WARM AUDIT OVER TOL %s ant=%d err=%.3f (warm %.2f Gbps/%.3f%% vs cold %.2f Gbps/%.3f%%)",
					sigLabel(p), p.AntagonistCores, e,
					warm.AppThroughputGbps, warm.DropRatePct, des.AppThroughputGbps, des.DropRatePct)
			}
			r.emit(obs.Event{
				Kind:    obs.KindAuditResult,
				Key:     sigLabel(p),
				Point:   p.AntagonistCores,
				Route:   "warm",
				Value:   e,
				Tol:     r.tol,
				OverTol: over,
			})
			return des, nil
		}
		return desV, r.funnel(desV, canonical, audit), true, nil
	}

	r.logf("fidelity: warm-start %s ant=%d seed=%d from donor %d:%d (guard %s)%s",
		sigLabel(p), p.AntagonistCores, p.Seed, donor.Ant, donor.Seed, guard, reason(why))
	r.emitRoute(p, "warm", why)
	version = fmt.Sprintf("%s+warm(d=%d:%d@%d,g=%s)", desV, donor.Ant, donor.Seed, int64(donor.Snap.Engine.Now), guard)
	warmRun := func(a *runner.Arena) (core.Results, error) {
		r.desRouted.Add(1)
		r.warmStarted.Add(1)
		r.emit(obs.Event{
			Kind:  obs.KindWarmStart,
			Key:   sigLabel(p),
			Point: p.AntagonistCores,
			Why:   fmt.Sprintf("donor %d:%d", donor.Ant, donor.Seed),
		})
		if r.estop != nil {
			res, _, stopped, err := core.RunWarmAdaptiveOn(p, donor.Snap, guard, a, r.estop.Rule)
			if stopped {
				r.estop.Stopped.Add(1)
			}
			return res, err
		}
		return core.RunWarmOn(p, donor.Snap, guard, a)
	}
	return version, r.funnelCounted(version, canonical, warmRun), true, nil
}

// runColdCaptured executes authoritative cold DES for p (early-stopped
// when configured), donating the converged snapshot, with the same
// counter accounting as a plain DES route.
func (r *Router) runColdCaptured(p core.Params, a *runner.Arena) (core.Results, error) {
	r.desRouted.Add(1)
	if r.estop != nil {
		res, snap, stopped, err := core.RunAdaptiveAndSnapshotOn(p, a, r.estop.Rule)
		if err != nil {
			return core.Results{}, err
		}
		if stopped {
			r.estop.Stopped.Add(1)
		}
		r.recordCkpt(p, snap)
		return res, nil
	}
	res, snap, err := core.RunAndSnapshotOn(p, a)
	if err != nil {
		return core.Results{}, err
	}
	r.recordCkpt(p, snap)
	return res, nil
}

// funnel wraps run in the router's singleflight when no result cache is
// configured (with one, the outer core.RunVia funnel already collapses
// through the store).
func (r *Router) funnel(version, canonical string, run func(*runner.Arena) (core.Results, error)) func(*runner.Arena) (core.Results, error) {
	if r.cfg.Cache != nil {
		return run
	}
	key := runcache.Key(version, canonical)
	return func(a *runner.Arena) (core.Results, error) {
		return r.flight.Do(key, func() (core.Results, error) { return run(a) })
	}
}

// funnelCounted is funnel for runs that do their own counting inside
// the closure — identical today, but kept separate so the counting
// contract at each call site is explicit.
func (r *Router) funnelCounted(version, canonical string, run func(*runner.Arena) (core.Results, error)) func(*runner.Arena) (core.Results, error) {
	return r.funnel(version, canonical, run)
}
