package fidelity

import (
	"reflect"
	"testing"

	"hic/internal/core"
	"hic/internal/sim"
)

func mustRouter(t testing.TB, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// coarseGrid is the fig3 thread sweep plus the fig6 antagonist sweep at
// short windows — the property-test domain. Points use a seed outside
// the router's AnchorSeeds: anchor-coincident points (anchor seed ×
// anchor antagonist) are served the calibration's own DES result, so
// the fluid path this grid exercises is only reachable off-anchor.
func coarseGrid() []core.Params {
	warmup, measure := 4*sim.Millisecond, 6*sim.Millisecond
	var ps []core.Params
	for _, th := range []int{2, 4, 8, 12, 16} {
		p := core.DefaultParams(th)
		p.Seed = 7
		p.Warmup, p.Measure = warmup, measure
		ps = append(ps, p)
	}
	for _, ant := range []int{0, 2, 4, 6, 8, 10, 12, 15} {
		p := core.DefaultParams(12)
		p.Seed = 7
		p.AntagonistCores = ant
		p.Warmup, p.Measure = warmup, measure
		ps = append(ps, p)
	}
	return ps
}

func TestParseMode(t *testing.T) {
	for _, good := range []string{"des", "fluid", "auto"} {
		if _, err := ParseMode(good); err != nil {
			t.Errorf("ParseMode(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "DES", "hybrid", "exact"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q): want error", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Tol: 1.5}); err == nil {
		t.Error("Tol 1.5 accepted")
	}
	if _, err := New(Config{AuditRate: -0.1}); err == nil {
		t.Error("AuditRate -0.1 accepted")
	}
	if _, err := New(Config{AnchorAnts: []int{3, 3}}); err == nil {
		t.Error("duplicate AnchorAnts accepted")
	}
	if _, err := New(Config{AnchorAnts: []int{-1, 4}}); err == nil {
		t.Error("negative AnchorAnts accepted")
	}
	r := mustRouter(t, Config{AnchorAnts: []int{10, 0, 6}})
	if got := r.cfg.AnchorAnts; !reflect.DeepEqual(got, []int{0, 6, 10}) {
		t.Errorf("AnchorAnts not sorted: %v", got)
	}
}

// TestModeDESMatchesPlainRun asserts the ModeDES router is transparent:
// same version salt and identical Results to the executor-free path.
func TestModeDESMatchesPlainRun(t *testing.T) {
	r := mustRouter(t, Config{Mode: ModeDES})
	p := core.DefaultParams(4)
	p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond

	version, _, err := r.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if version != core.SimVersion {
		t.Fatalf("ModeDES version = %q, want %q", version, core.SimVersion)
	}
	got, err := core.RunVia(r, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ModeDES result differs from core.Run:\n got %+v\nwant %+v", got, want)
	}
	c := r.Counters()
	if c.DESRouted != 1 || c.FluidRouted != 0 {
		t.Errorf("counters = %+v, want exactly one DES execution", c)
	}
}

// TestAutoWithinTolerance is the headline property: across the coarse
// fig3/fig6 grid, every point ModeAuto routes to calibrated fluid is
// within the configured tolerance of full DES.
func TestAutoWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("DES comparison grid is slow")
	}
	const tol = 0.05
	r := mustRouter(t, Config{Mode: ModeAuto, Tol: tol})
	fluidPts := 0
	for _, p := range coarseGrid() {
		version, run, err := r.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		des, err := core.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if version == core.SimVersion || r.estop != nil {
			continue // DES-routed: trivially exact
		}
		got, err := run(nil)
		if err != nil {
			t.Fatal(err)
		}
		fluidPts++
		if e := observedError(got, des); e > tol {
			t.Errorf("threads=%d ant=%d: fluid-routed error %.4f > tol %.3f (fluid %.2f Gbps/%.3f%%, DES %.2f Gbps/%.3f%%)",
				p.Threads, p.AntagonistCores, e, tol,
				got.AppThroughputGbps, got.DropRatePct, des.AppThroughputGbps, des.DropRatePct)
		} else {
			t.Logf("threads=%2d ant=%2d: fluid-routed, error %.4f (fluid %.2f, DES %.2f)",
				p.Threads, p.AntagonistCores, e, got.AppThroughputGbps, des.AppThroughputGbps)
		}
	}
	t.Logf("fluid-routed %d points; counters %+v", fluidPts, r.Counters())
	if fluidPts == 0 {
		t.Error("no point on the coarse grid was fluid-routed; routing is vacuous")
	}
}

// TestAuditDeterministicAndAuthoritative: with AuditRate 1 every
// would-be-fluid point runs DES, returns the DES result, and records the
// observed error.
func TestAuditDeterministicAndAuthoritative(t *testing.T) {
	if testing.Short() {
		t.Skip("runs DES")
	}
	r := mustRouter(t, Config{Mode: ModeAuto, Tol: 0.05, AuditRate: 1})
	p := core.DefaultParams(4)
	// Off-anchor seed: anchor-coincident points return the calibration's
	// DES result directly and never reach the audit path.
	p.Seed = 7
	p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond

	version, run, err := r.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if version != core.SimVersion {
		// The point may legitimately be DES-routed (knee/tolerance); the
		// audit path only exists for fluid-routed points.
		t.Skipf("point not fluid-routed (version %q); audit not reachable", version)
	}
	got, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("audited point did not return the authoritative DES result")
	}
	c := r.Counters()
	if c.Audited != 1 {
		t.Fatalf("Audited = %d, want 1", c.Audited)
	}
	if c.AuditMaxErr > r.Tol() {
		t.Errorf("observed audit error %.4f exceeds tolerance %.3f", c.AuditMaxErr, r.Tol())
	}
}

func TestAuditSamplingDeterministic(t *testing.T) {
	r := mustRouter(t, Config{Mode: ModeAuto, AuditRate: 0.3})
	hits := 0
	for i := 0; i < 200; i++ {
		p := core.DefaultParams(4)
		p.Seed = uint64(i + 1)
		canon := p.Canonical()
		a, b := r.audit(canon), r.audit(canon)
		if a != b {
			t.Fatal("audit sampling not deterministic")
		}
		if a {
			hits++
		}
	}
	if hits < 30 || hits > 90 {
		t.Errorf("audit rate 0.3 sampled %d/200; expected roughly 60", hits)
	}
}

func TestSignatureGroupsSeedsAndAnts(t *testing.T) {
	p := core.DefaultParams(8)
	q := p
	q.Seed = 99
	q.AntagonistCores = 7
	if signature(p) != signature(q) {
		t.Error("signature should ignore Seed and AntagonistCores")
	}
	q2 := p
	q2.Threads = 9
	if signature(p) == signature(q2) {
		t.Error("signature should distinguish Threads")
	}
}
