package fidelity

// Cross-signature calibration transfer: a signature with no calibration
// of its own borrows anchor gains and drop offsets from the nearest
// calibrated hub in SKU/workload space, with the error bound inflated
// by the signature-space distance — the observation (from the IOMMU
// interference and HPC congestion-characterization literature, see
// PAPERS.md) that contention onsets and gain curves move smoothly with
// configuration. When the inflated bound clears tolerance the spoke
// skips anchor DES entirely; otherwise it runs a reduced probe set and
// refines only the tiers where the measured transfer residual actually
// blocks fluid routing.
//
// Assignments come from a roster installed by SetRoster — the sweep's
// distinct signatures, known up front by catalog callers (cluster,
// serve) — never from "whichever signature happened to calibrate
// first": routing must be a pure function of (router config, roster,
// point), independent of query or shard order. Like the knee states,
// borrowed curves are memoized per donor and never persisted; the donor
// DES behind them persists as the donor's ordinary anchors.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hic/internal/core"
	"hic/internal/fluid"
	"hic/internal/runcache"
	"hic/internal/sim"
)

const (
	// transferAlpha converts signature-space distance into error-bound
	// inflation (absolute error fraction per unit distance). At the
	// default tolerance 0.10 with routeMargin 0.8, a pure transfer must
	// clear a 0.08 gate, so alpha 0.05 lets a near-identical workload
	// (dist ≲ 0.5) borrow outright while a full-radius spoke pays the
	// larger penalty and usually probes.
	transferAlpha = 0.05
	// defaultTransferRadius is the assignment cutoff when
	// Config.TransferRadius is zero. 1.2 keeps donors within the same
	// workload family (thread/sender/region ratios within ~2×): on the
	// fleet catalog the wider 2.5 radius admits cross-duty-cycle donors
	// whose 25%-audit error tail grazes the tolerance.
	defaultTransferRadius = 1.2
	// xferNoiseInflate widens the donor's smooth-regime (mid-tier)
	// seed-to-seed noise before it stands in for the spoke's own. Only
	// the mid tier transfers at all: high-tier noise is knee-position-
	// specific (observed spoke/donor ratios above 5× on the fleet
	// catalog), so every spoke measures its own top-tier noise pair.
	xferNoiseInflate = 1.75
)

func (r *Router) transferRadius() float64 {
	if r.cfg.TransferRadius > 0 {
		return r.cfg.TransferRadius
	}
	return defaultTransferRadius
}

// TransferEnabled reports whether this router participates in roster
// building (callers skip the signature scan otherwise).
func (r *Router) TransferEnabled() bool {
	return r.cfg.Transfer && r.cfg.Mode == ModeAuto
}

// SignatureKey exposes the calibration signature (Params with Seed and
// AntagonistCores cleared, canonically encoded) so sweep drivers can
// enumerate distinct signatures for SetRoster and prefetch leases.
func SignatureKey(p core.Params) string { return signature(p) }

// xferAssign is one roster entry: the donor hub a spoke signature
// borrows from.
type xferAssign struct {
	donorKey string
	donorRep core.Params
	dist     float64
}

type roster struct {
	key    string
	assign map[string]*xferAssign // spoke signature key → donor
}

// SetRoster installs the sweep's signature roster and computes the
// hub/spoke assignment. reps is one representative Params per point the
// sweep will execute (duplicates and extra Seed/AntagonistCores
// variation are fine — signatures are deduplicated). Clustering is
// greedy over the canonically-sorted signature list: the first
// signature of each neighborhood becomes a hub (calibrates its own
// grid), later signatures within TransferRadius of an existing hub
// become its spokes. Sorting first makes the assignment a pure function
// of the signature *set*, so every worker and every shard order builds
// the identical roster. Installing a roster with the same signature set
// is a no-op; a genuinely different set (a new query in a serving
// process) replaces the assignment, and memoized per-donor state keeps
// already-resident signatures consistent.
func (r *Router) SetRoster(reps []core.Params) {
	if !r.TransferEnabled() || len(reps) == 0 {
		return
	}
	byKey := make(map[string]core.Params, len(reps))
	keys := make([]string, 0, len(reps))
	for _, p := range reps {
		k := signature(p)
		if _, ok := byKey[k]; !ok {
			byKey[k] = p
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	radius := r.transferRadius()
	rosterKey := runcache.Key("hic-roster-1",
		fmt.Sprintf("r=%g|", radius)+strings.Join(keys, "\n"))

	r.mu.Lock()
	if r.roster != nil && r.roster.key == rosterKey {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	type hub struct {
		key     string
		rep     core.Params
		members []string // cluster members including the hub itself
	}
	var hubs []*hub
	for _, k := range keys {
		p := byKey[k]
		best, bestD := -1, math.Inf(1)
		for i, h := range hubs {
			if d := sigDistance(p, h.rep); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 && bestD <= radius {
			hubs[best].members = append(hubs[best].members, k)
		} else {
			hubs = append(hubs, &hub{key: k, rep: p, members: []string{k}})
		}
	}
	// The greedy pass makes whichever signature sorts first in each
	// neighborhood the hub — an arbitrary, often eccentric choice. Remake
	// each cluster around its medoid (minimum total distance to the other
	// members, first-in-sorted-order on ties): spokes end up closer to
	// their donor, so more of them clear the pure-transfer gate. Still a
	// pure function of the signature set.
	assign := make(map[string]*xferAssign)
	for _, h := range hubs {
		med, medSum := h.key, math.Inf(1)
		for _, cand := range h.members {
			sum := 0.0
			for _, m := range h.members {
				sum += sigDistance(byKey[cand], byKey[m])
			}
			if sum < medSum {
				med, medSum = cand, sum
			}
		}
		for _, m := range h.members {
			if m != med {
				assign[m] = &xferAssign{
					donorKey: med,
					donorRep: byKey[med],
					dist:     sigDistance(byKey[m], byKey[med]),
				}
			}
		}
	}

	r.mu.Lock()
	r.roster = &roster{key: rosterKey, assign: assign}
	r.mu.Unlock()
	r.logf("fidelity: roster %d signatures, %d hubs, %d spokes (radius %g)",
		len(keys), len(keys)-len(assign), len(assign), radius)
}

// assignFor returns the roster's donor assignment for p's signature
// (nil for hubs, unknown signatures, or when no roster is installed).
func (r *Router) assignFor(p core.Params) *xferAssign {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.roster == nil {
		return nil
	}
	return r.roster.assign[signature(p)]
}

// sigDistance is the SKU/workload-space metric the roster clusters by.
// Infinite unless the signatures agree on every structural mechanism
// knob (CC, IOMMU/hugepages, windows, ablation switches — everything
// Canonical encodes once the scaled axes below are cleared): transfer
// interpolates a gain curve, and a mechanism change moves the regime
// structure, not just the curve's level. The finite part sums
// log-ratios of the hardware-scale axes (threads, Rx region, senders)
// and the workload's offered-load/burst shape.
func sigDistance(a, b core.Params) float64 {
	sa, sb := a, b
	for _, p := range []*core.Params{&sa, &sb} {
		p.Seed = 0
		p.AntagonistCores = 0
		p.Threads = 0
		p.Senders = 0
		p.RxRegionBytes = 0
		p.OfferedGbps = 0
		p.BurstDuty = 0
		p.BurstPeriod = 0
	}
	if sa.Canonical() != sb.Canonical() {
		return math.Inf(1)
	}
	burstA, burstB := a.BurstDuty > 0, b.BurstDuty > 0
	if burstA != burstB {
		// Steady and bursty workloads saturate through different
		// mechanisms (sustained ρ vs NIC-buffer overflow at burst
		// onset); their gain curves don't transfer.
		return math.Inf(1)
	}
	d := logRatio(float64(a.Threads), float64(b.Threads)) +
		logRatio(float64(a.RxRegionBytes), float64(b.RxRegionBytes)) +
		0.5*logRatio(float64(a.Senders), float64(b.Senders))

	// Uncapped demand behaves like a ~line-rate offer for distance
	// purposes, but capped vs uncapped still differ qualitatively (the
	// drop-onset position moves), so the mismatch adds a fixed penalty.
	oa, ob := a.OfferedGbps, b.OfferedGbps
	if (oa == 0) != (ob == 0) {
		d += 0.25
	}
	if oa == 0 {
		oa = 100
	}
	if ob == 0 {
		ob = 100
	}
	d += logRatio(oa, ob)

	if burstA {
		d += 2 * math.Abs(a.BurstDuty-b.BurstDuty)
		pa, pb := a.BurstPeriod, b.BurstPeriod
		if pa == 0 {
			pa = defaultBurstPeriod
		}
		if pb == 0 {
			pb = defaultBurstPeriod
		}
		d += logRatio(float64(pa), float64(pb))
	}
	return d
}

// defaultBurstPeriod mirrors core's BurstPeriod default (2 ms).
const defaultBurstPeriod = 2 * sim.Millisecond

func logRatio(x, y float64) float64 {
	if x <= 0 || y <= 0 {
		if x == y {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(math.Log2(x / y))
}

// xferCurve is a borrowed (possibly partially refined) calibration
// curve: per grid tier, the gain/drop offset the spoke serves from,
// whether that tier is the spoke's own anchor (own[t]) or the donor's,
// the residual bound attributed to the tier, and the donor's noise
// measurements.
type xferCurve struct {
	failed bool // donor uncalibratable → spoke falls back to its own grid
	pure   bool // no spoke probes run: bound carries the full distance term
	ants   []int
	gain   []float64
	drop   []float64
	own    map[int]bool
	resid  []float64 // per tier: donor xval residual, probe residual, or 0 (own)
	noise  map[int]float64
	dist   float64
	label  string // cache salt for results served from this curve
}

// ensureXfer materializes (or returns the memoized) borrowed curve for
// p under assignment asn. Caller holds s.mu.
func (r *Router) ensureXfer(s *sigCalib, p core.Params, asn *xferAssign) (*xferCurve, error) {
	if c := s.xfers[asn.donorKey]; c != nil {
		return c, nil
	}
	c, err := r.buildXfer(s, p, asn)
	if err != nil {
		return nil, err
	}
	s.xfers[asn.donorKey] = c
	return c, nil
}

// buildXfer materializes the donor's full grid and decides pure
// transfer vs probed refinement. Lock ordering: the caller holds the
// spoke's s.mu and this takes the donor's d.mu — safe because donors
// are always hubs and hubs never borrow, so the reverse nesting cannot
// occur.
func (r *Router) buildXfer(s *sigCalib, p core.Params, asn *xferAssign) (*xferCurve, error) {
	ants := r.cfg.AnchorAnts
	d := r.sigFor(asn.donorRep)
	donorGain := make([]float64, len(ants))
	donorDrop := make([]float64, len(ants))
	donorDES := make([]core.Results, len(ants))
	noise := make(map[int]float64, 2)
	donorResid := 0.0
	fail := false
	func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		r.loadSig(d, asn.donorRep)
		pts := make([]*anchorPoint, len(ants))
		for i, a := range ants {
			ap, err := r.ensureAnchor(d, asn.donorRep, a)
			if err != nil || !ap.ok {
				fail = true
				return
			}
			pts[i] = ap
			donorGain[i], donorDrop[i], donorDES[i] = ap.gain, ap.dropOff, ap.des
		}
		// Only the smooth-regime mid-tier noise transfers (inflated).
		// High-tier seed noise is knee-position-specific: the donor's
		// knee can sit tiers away from the spoke's, and a quiet donor
		// measurement would let fluid routing pass exactly where the
		// spoke's own near-knee noise must block it.
		midT := r.noiseTier(ants[0])
		n, nerr := r.ensureNoise(d, asn.donorRep, midT)
		if nerr != nil {
			fail = true
			return
		}
		noise[midT] = xferNoiseInflate * n
		// Global interior cross-validation residual: the donor curve's
		// own interpolation error, before any transfer penalty.
		for i := 1; i < len(ants)-1; i++ {
			t := float64(ants[i]-ants[i-1]) / float64(ants[i+1]-ants[i-1])
			gHat := pts[i-1].gain + t*(pts[i+1].gain-pts[i-1].gain)
			dHat := pts[i-1].dropOff + t*(pts[i+1].dropOff-pts[i-1].dropOff)
			donorResid = math.Max(donorResid, math.Abs(gHat-pts[i].gain)/pts[i].gain)
			donorResid = math.Max(donorResid, math.Abs(dHat-pts[i].dropOff))
		}
	}()
	if fail {
		r.logf("fidelity: transfer %s: donor uncalibratable, using own grid", sigLabel(p))
		return &xferCurve{failed: true}, nil
	}

	// The spoke measures its own top-tier noise pair: two DES runs that
	// also give the borrowed curve an own top anchor, and the only
	// honest bound for serving points in the high-noise regime. Both
	// runs are ordinary grid anchors, so nothing is wasted if transfer
	// falls back to the own grid below.
	topT := ants[len(ants)-1]
	apTop, err := r.ensureAnchor(s, p, topT)
	if err != nil {
		return nil, err
	}
	if !apTop.ok {
		r.logf("fidelity: transfer %s: own top anchor untrustworthy, using own grid", sigLabel(p))
		return &xferCurve{failed: true}, nil
	}
	ownTop, err := r.ensureNoise(s, p, topT)
	if err != nil {
		return nil, err
	}
	noise[topT] = ownTop

	donorHash := runcache.Key("hic-xfer-donor-1", asn.donorKey)[:8]
	maxNoise, minNoise := 0.0, math.Inf(1)
	for _, n := range noise {
		maxNoise = math.Max(maxNoise, n)
		minNoise = math.Min(minNoise, n)
	}
	c := &xferCurve{
		ants:  ants,
		gain:  append([]float64(nil), donorGain...),
		drop:  append([]float64(nil), donorDrop...),
		own:   make(map[int]bool),
		resid: make([]float64, len(ants)),
		noise: noise,
		dist:  asn.dist,
	}
	iTop := len(ants) - 1
	c.own[topT] = true
	c.gain[iTop], c.drop[iTop] = apTop.gain, apTop.dropOff
	gate := routeMargin * r.tol

	// Pure transfer: if the donor's own residual plus the full distance
	// penalty clears the routing gate at the noisiest tier, the spoke
	// runs no DES beyond the mandatory top-tier noise pair.
	if math.Max(xvalMargin*donorResid, maxNoise)+errFloor+transferAlpha*asn.dist <= gate {
		c.pure = true
		for i := range c.resid {
			c.resid[i] = donorResid
		}
		c.label = r.ownCalVersion() + fmt.Sprintf("+xfer(d=%s,pure)", donorHash)
		r.anchorTransferred.Add(uint64(len(ants) - 1))
		r.anchorRefined.Add(1)
		r.logf("fidelity: transfer %s ← %s dist=%.2f pure (donor resid %.3f, own top noise %.3f)",
			sigLabel(p), donorHash, asn.dist, donorResid, ownTop)
		return c, nil
	}

	// Probed transfer pays a halved distance term (the probes measure
	// most of what the penalty guards against). If even a zero-residual
	// borrowed tier at the quieter noise tier would still be blocked by
	// that term, transfer cannot route anything this spoke's own grid
	// wouldn't — skip the probes and calibrate from the own grid, which
	// carries no distance penalty.
	if minNoise+errFloor+transferAlpha*asn.dist/2 > gate {
		r.logf("fidelity: transfer %s ← %s dist=%.2f too far to borrow, using own grid",
			sigLabel(p), donorHash, asn.dist)
		return &xferCurve{failed: true}, nil
	}

	// Probed transfer: run the spoke's own anchors at two interior
	// tiers, measure how far the donor curve is from the spoke's truth
	// there, and attribute each borrowed tier the nearest probe's
	// residual.
	probeTiers := []int{ants[1], ants[len(ants)-2]}
	probeResid := make(map[int]float64, len(probeTiers))
	for _, t := range probeTiers {
		ap, err := r.ensureAnchor(s, p, t)
		if err != nil {
			return nil, err
		}
		pt := p
		pt.Seed = r.cfg.AnchorSeeds[0]
		pt.AntagonistCores = t
		pred, err := core.RunFluid(pt)
		if err != nil {
			return nil, err
		}
		i := tierIndex(ants, t)
		borrowed := applyCalibration(pred, donorGain[i], donorDrop[i])
		probeResid[t] = observedError(borrowed, ap.des)
		c.own[t] = true
		c.gain[i], c.drop[i] = ap.gain, ap.dropOff
		if !ap.ok {
			r.logf("fidelity: transfer %s: own probe at ant=%d untrustworthy, using own grid", sigLabel(p), t)
			return &xferCurve{failed: true}, nil
		}
	}

	distTerm := transferAlpha * asn.dist / 2
	var refined []int
	transferred := 0
	for i, a := range ants {
		if c.own[a] {
			continue
		}
		// The nearest probe's residual measures the donor→spoke level
		// shift; the donor's own cross-validated residual still bounds
		// the between-anchor curvature of the borrowed curve. Both
		// apply, as does the noise at the tier the serving bound will
		// actually consult.
		resid := math.Max(probeResid[nearestTier(probeTiers, a)], donorResid)
		noiseA := c.noise[r.noiseTier(a)]
		if math.Max(xvalMargin*resid, noiseA)+errFloor+distTerm > gate {
			if noiseA+errFloor+distTerm > gate {
				// Seed noise alone blocks fluid routing at this tier;
				// an own anchor cannot unblock it, so keep the borrowed
				// value and let the bound route these points to DES.
				c.resid[i] = resid
				continue
			}
			// Borrowing this tier would block fluid routing anyway:
			// refine it with the spoke's own anchor.
			ap, err := r.ensureAnchor(s, p, a)
			if err != nil {
				return nil, err
			}
			if !ap.ok {
				return &xferCurve{failed: true}, nil
			}
			c.own[a] = true
			c.gain[i], c.drop[i] = ap.gain, ap.dropOff
			refined = append(refined, a)
			continue
		}
		c.resid[i] = resid
		transferred++
	}
	if transferred == 0 {
		// The measured residuals refined every tier: the curve is all
		// own data, so the own-grid path (no distance penalty, proper
		// cross-validated bounds) serves it better — and it reuses the
		// anchors just run, so the probes aren't wasted.
		r.logf("fidelity: transfer %s ← %s dist=%.2f refined everything, using own grid",
			sigLabel(p), donorHash, asn.dist)
		return &xferCurve{failed: true}, nil
	}
	ownTiers := make([]int, 0, len(c.own))
	for t := range c.own {
		ownTiers = append(ownTiers, t)
	}
	sort.Ints(ownTiers)
	c.label = r.ownCalVersion() + fmt.Sprintf("+xfer(d=%s,own=%v)", donorHash, ownTiers)
	r.anchorTransferred.Add(uint64(transferred))
	r.anchorRefined.Add(uint64(1 + len(probeTiers) + len(refined)))
	r.logf("fidelity: transfer %s ← %s dist=%.2f probed (%d borrowed, %d refined, probe resid %v)",
		sigLabel(p), donorHash, asn.dist, transferred, len(probeTiers)+len(refined), probeResid)
	return c, nil
}

// calibrateTransfer evaluates the borrowed curve at p. ok=false (with
// no error) means transfer is unusable for this signature (failed donor)
// and the caller should calibrate from the spoke's own grid.
func (r *Router) calibrateTransfer(s *sigCalib, p core.Params, pred fluid.Prediction, asn *xferAssign) (core.Results, float64, string, bool, error) {
	c, err := r.ensureXfer(s, p, asn)
	if err != nil {
		return core.Results{}, 0, "", false, err
	}
	if c.failed {
		return core.Results{}, 0, "", false, nil
	}
	x := p.AntagonistCores
	ants := c.ants
	// Bracketing tiers carry the residual attribution; an exact tier
	// pays only its own.
	lo := 0
	for i := 1; i < len(ants); i++ {
		if x <= ants[i] {
			lo = i - 1
			break
		}
	}
	hi := lo + 1
	if x == ants[lo] {
		hi = lo
	} else if x == ants[hi] {
		lo = hi
	}
	gain := interpF(ants, c.gain, x)
	drop := interpF(ants, c.drop, x)
	resid := math.Max(c.resid[lo], c.resid[hi])

	distTerm := transferAlpha * c.dist
	if !c.pure {
		distTerm /= 2
	}
	// Same structure as the own-grid bound (max of interpolation
	// residual and seed noise — they double-count otherwise) plus the
	// distance penalty, which is a genuinely independent error source.
	bound := math.Max(xvalMargin*resid, c.noise[r.noiseTier(x)]) + errFloor + distTerm
	return applyCalibration(pred, gain, drop), bound, c.label, true, nil
}

// coincidentEligible narrows anchorCoincident for transferring
// signatures: a spoke only ever runs its own DES at the curve's own
// (probe/refined) tiers under the primary seed, so only those points
// have a calibration run to coincide with — the rest route normally.
// Materializing the curve here is deliberate: eligibility must be
// structural (a function of signature + roster + config), not "has the
// spoke probed yet".
func (r *Router) coincidentEligible(p core.Params) (bool, error) {
	if !r.anchorCoincident(p) {
		return false, nil
	}
	asn := r.assignFor(p)
	if asn == nil {
		return true, nil
	}
	s := r.sigFor(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	r.loadSig(s, p)
	c, err := r.ensureXfer(s, p, asn)
	if err != nil {
		return false, err
	}
	if c.failed {
		return true, nil
	}
	return c.own[p.AntagonistCores] && p.Seed == r.cfg.AnchorSeeds[0], nil
}

func tierIndex(ants []int, t int) int {
	for i, a := range ants {
		if a == t {
			return i
		}
	}
	return -1
}

func nearestTier(tiers []int, x int) int {
	best, bestD := tiers[0], math.MaxInt
	for _, t := range tiers {
		if d := abs(t - x); d < bestD {
			best, bestD = t, d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// interpF evaluates a piecewise-linear curve at x.
func interpF(ants []int, vals []float64, x int) float64 {
	for i := 1; i < len(ants); i++ {
		if x <= ants[i] {
			t := float64(x-ants[i-1]) / float64(ants[i]-ants[i-1])
			return vals[i-1] + t*(vals[i]-vals[i-1])
		}
	}
	return vals[len(vals)-1]
}
