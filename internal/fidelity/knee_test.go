package fidelity

import (
	"testing"

	"hic/internal/core"
	"hic/internal/sim"
)

// kneeParams is a fluid-supported point for knee-search tests (seed
// outside the anchor seeds so nothing coincides by accident).
func kneeParams(ant int) core.Params {
	p := core.DefaultParams(12)
	p.Seed = 7
	p.AntagonistCores = ant
	p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond
	return p
}

// satAbove installs a synthetic regime response on r: tiers >= k probe
// saturated (drops above kneeSatDrop), lower tiers smooth. It returns a
// pointer to the recorded probe-tier sequence.
func satAbove(r *Router, k int) *[]int {
	probed := &[]int{}
	r.kneeProbeFn = func(pt core.Params) (core.Results, error) {
		*probed = append(*probed, pt.AntagonistCores)
		res := core.Results{AppThroughputGbps: 1e6} // never a throughput shortfall
		if pt.AntagonistCores >= k {
			res.DropRatePct = 10 * kneeSatDrop
		}
		return res, nil
	}
	return probed
}

// TestLocateKneeBisection checks the bisection finds the exact first
// saturated tier for every knee position inside the hull, within the
// O(log n) probe budget.
func TestLocateKneeBisection(t *testing.T) {
	for k := 1; k <= 15; k++ {
		r := mustRouter(t, Config{Mode: ModeAuto, KneeSearch: true})
		probed := satAbove(r, k)
		ks, err := r.kneeFor(kneeParams(3))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if ks.fallback || !ks.hasKnee || ks.k != k {
			t.Errorf("k=%d: got fallback=%t hasKnee=%t k=%d", k, ks.fallback, ks.hasKnee, ks.k)
		}
		// 2 endpoint probes + ceil(log2(15)) = 4 bisection probes.
		if len(*probed) > 6 {
			t.Errorf("k=%d: %d probes, want <= 6 (%v)", k, len(*probed), *probed)
		}
	}
}

// TestLocateKneeOutsideGrid: a hull that is single-regime — smooth
// throughout, or saturated from tier zero (the knee sits below the
// scanned grid) — locates no knee and must not fall back.
func TestLocateKneeOutsideGrid(t *testing.T) {
	for name, k := range map[string]int{"saturated everywhere": 0, "smooth everywhere": 99} {
		r := mustRouter(t, Config{Mode: ModeAuto, KneeSearch: true})
		probed := satAbove(r, k)
		ks, err := r.kneeFor(kneeParams(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ks.fallback || ks.hasKnee {
			t.Errorf("%s: got fallback=%t hasKnee=%t, want single-regime", name, ks.fallback, ks.hasKnee)
		}
		if len(*probed) != 2 {
			t.Errorf("%s: %d probes, want exactly the 2 hull endpoints (%v)", name, len(*probed), *probed)
		}
	}
}

// TestLocateKneeNonMonotone: saturation decreasing with antagonist
// pressure violates the bisection invariant; the search must abandon
// the signature (full knee band stays on DES) instead of reporting a
// bogus boundary.
func TestLocateKneeNonMonotone(t *testing.T) {
	r := mustRouter(t, Config{Mode: ModeAuto, KneeSearch: true})
	r.kneeProbeFn = func(pt core.Params) (core.Results, error) {
		res := core.Results{AppThroughputGbps: 1e6}
		if pt.AntagonistCores < 8 { // saturated low, smooth high
			res.DropRatePct = 10 * kneeSatDrop
		}
		return res, nil
	}
	ks, err := r.kneeFor(kneeParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !ks.fallback {
		t.Errorf("non-monotone response: got %+v, want fallback", ks)
	}
}

// TestKneeDeterministicAcrossArrivalOrder: the probe sequence and the
// located knee are pure functions of the router config and signature —
// whichever point of the signature arrives first (different tiers,
// different seeds, as across shard boundaries), every router locates
// the identical knee with the identical probes, and the bisection runs
// exactly once per signature.
func TestKneeDeterministicAcrossArrivalOrder(t *testing.T) {
	arrivals := [][]core.Params{
		{kneeParams(2), kneeParams(14), kneeParams(9)},
		{kneeParams(14), kneeParams(9), kneeParams(2)},
	}
	first := kneeParams(9)
	first.Seed = 11
	arrivals = append(arrivals, append([]core.Params{first}, arrivals[0]...))

	var wantProbes []int
	wantK := -1
	for i, order := range arrivals {
		r := mustRouter(t, Config{Mode: ModeAuto, KneeSearch: true})
		probed := satAbove(r, 10)
		for _, p := range order {
			ks, err := r.kneeFor(p)
			if err != nil {
				t.Fatal(err)
			}
			if !ks.hasKnee {
				t.Fatalf("order %d: no knee located", i)
			}
			if wantK < 0 {
				wantK, wantProbes = ks.k, append([]int(nil), *probed...)
			}
			if ks.k != wantK {
				t.Errorf("order %d: knee at %d, want %d", i, ks.k, wantK)
			}
		}
		if got := *probed; len(got) != len(wantProbes) {
			t.Errorf("order %d: probe sequence %v, want %v (bisection must run once, identically)", i, got, wantProbes)
		} else {
			for j := range got {
				if got[j] != wantProbes[j] {
					t.Errorf("order %d: probe sequence %v, want %v", i, got, wantProbes)
					break
				}
			}
		}
	}
}

// TestSetRosterOrderIndependent: the hub/spoke assignment calibration
// transfer clusters over must not depend on the order representatives
// are presented in — shard workers each derive the roster from their
// own scan and must agree.
func TestSetRosterOrderIndependent(t *testing.T) {
	mk := func(threads, senders int, offered float64) core.Params {
		p := core.DefaultParams(threads)
		p.Senders = senders
		p.OfferedGbps = offered
		p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond
		return p
	}
	reps := []core.Params{
		mk(4, 16, 0), mk(4, 24, 0), mk(8, 16, 0),
		mk(8, 16, 25), mk(16, 40, 0), mk(16, 40, 60),
	}
	assign := func(order []core.Params) map[string]string {
		r := mustRouter(t, Config{Mode: ModeAuto, Transfer: true})
		r.SetRoster(order)
		out := make(map[string]string)
		for _, p := range reps {
			donor := ""
			if asn := r.assignFor(p); asn != nil {
				donor = asn.donorKey
			}
			out[SignatureKey(p)] = donor
		}
		return out
	}
	forward := assign(reps)
	reversed := make([]core.Params, len(reps))
	for i, p := range reps {
		reversed[len(reps)-1-i] = p
	}
	backward := assign(reversed)
	for k, d := range forward {
		if backward[k] != d {
			t.Errorf("assignment for %s depends on roster order: %q vs %q", k, d, backward[k])
		}
	}
}
