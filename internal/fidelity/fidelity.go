// Package fidelity routes scenarios between the packet-level simulator
// (DES) and the analytical fluid solver (internal/fluid), calibrating
// the fluid model against DES anchors so that fluid is only used where
// its error is bounded and small.
//
// # Routing
//
// In ModeAuto each point is first solved by the fluid model (cheap,
// deterministic). The point runs under DES when any of the following
// holds, and under calibrated fluid otherwise:
//
//   - the scenario uses mechanisms outside the fluid model's domain
//     (fluid.ErrUnsupported: dynamic core scaling, victim workloads,
//     strict IOMMU, device TLB, ECN feedback, sender-host model);
//   - the operating point is near a regime knee, where discrete
//     dynamics dominate: the IOTLB working set within (0.98, 1.06)× of
//     its capacity (the Figure 3 overflow boundary), the memory-bus
//     load factor ρ within (0.99, 1.02) of saturation (the Figure 6
//     collapse), the service capacity within (0.99, 1.01)× of the CC
//     blind threshold, or offered demand within (0.998, 1.002)× of
//     capacity (the drop-onset boundary). The bands are deliberately
//     tight — outside them the per-signature calibration plus the
//     error-bound gate carry the accuracy burden;
//   - the calibrated error bound for the point exceeds routeMargin×Tol
//     (the margin keeps the observed audit error under Tol even when
//     the bound is a little optimistic).
//
// # Calibration
//
// Points are grouped by signature — their Params with Seed and
// AntagonistCores cleared — and each signature is calibrated by running
// full DES at a small grid of anchor antagonist tiers (AnchorAnts, at
// AnchorSeeds[0]). Anchors are ordinary DES runs content-addressed in
// the run cache, so they are computed once ever per cache directory and
// are shared with any DES-routed point at the same coordinates. The
// per-anchor throughput gain (DES/fluid) and drop-fraction offset
// (DES−fluid) are interpolated piecewise-linearly in the antagonist
// tier and applied to the fluid prediction. The error bound is the
// cross-validated interpolation residual (each interior anchor
// predicted from its neighbors) plus the measured seed-to-seed noise;
// a point whose tier coincides with an anchor pays only the noise term.
//
// # Audit
//
// With AuditRate > 0, a deterministic sample of the points that would
// have been fluid-routed runs full DES instead: the DES result is
// returned (and cached under the pure-DES key), and the observed
// fluid-vs-DES error — max(relative throughput error, absolute
// drop-fraction error) — is recorded in the Counters. Audit sampling
// hashes the scenario's cache key, so the same fleet audits the same
// hosts on every run.
//
// # Caching
//
// Every execution strategy salts the run-cache version differently
// (see internal/runcache): pure DES results use core.SimVersion,
// early-stopped DES results append the stopping rule, and calibrated
// fluid results append the calibration coordinates. Approximate results
// can therefore never satisfy a pure-DES lookup, and vice versa.
package fidelity

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hic/internal/core"
	"hic/internal/fluid"
	"hic/internal/host"
	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
)

// Mode selects the execution strategy.
type Mode string

const (
	// ModeDES runs every point under full packet-level simulation —
	// byte-identical results and cache keys to the pre-fidelity path
	// (unless EarlyStop is set).
	ModeDES Mode = "des"
	// ModeFluid runs every supported point under the *uncalibrated*
	// fluid solver — an instant, approximate preview. Unsupported
	// scenarios fall back to DES.
	ModeFluid Mode = "fluid"
	// ModeAuto routes per point: calibrated fluid far from every knee
	// and within tolerance, DES otherwise.
	ModeAuto Mode = "auto"
)

// ParseMode validates a -fidelity flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeDES, ModeFluid, ModeAuto:
		return Mode(s), nil
	}
	return "", fmt.Errorf("fidelity: unknown mode %q (want des, fluid, or auto)", s)
}

// Config parameterizes a Router.
type Config struct {
	// Mode is the routing strategy ("" = ModeDES).
	Mode Mode
	// Tol is ModeAuto's calibrated-error routing tolerance, as a
	// fraction (0 = 0.05): a point is fluid-routed only when its error
	// bound — max(relative throughput error, absolute drop-fraction
	// error) — is within Tol.
	Tol float64
	// AuditRate shadow-runs DES on this fraction of fluid-routed
	// points (deterministic sample; 0 = off). Audited points return
	// the DES result.
	AuditRate float64
	// EarlyStop terminates DES measurement windows at steady state
	// (host.Testbed.RunAdaptive) using StopRule (zero value =
	// host.DefaultStopRule()).
	EarlyStop bool
	StopRule  host.StopRule
	// Cache, when non-nil, memoizes anchor and audit DES runs (and is
	// normally the same store the surrounding sweep uses).
	Cache *runcache.Store
	// AnchorSeeds are the seeds calibration anchors run under; the
	// first is the primary, the second (if any) measures seed-to-seed
	// noise. Empty = {1, 2}. Fleet callers should pass seeds from
	// their own seed pool: every calibration run then coincides with a
	// real point and is served back to it exactly.
	AnchorSeeds []uint64
	// AnchorAnts is the antagonist-tier anchor grid (sorted, unique;
	// empty = {0, 4, 8, 12, 15} — denser toward the high tiers, where the
	// gain curve bends).
	AnchorAnts []int
	// Warm selects cross-run warm start ("" = WarmOff): WarmCalib
	// persists calibration state (anchors, noise tiers, calibration DES
	// runs) to WarmStore and reloads it on a signature's first touch in
	// a later process; WarmFull additionally checkpoints every cold
	// DES-routed run's converged state and warm-starts later DES points
	// from the nearest persisted donor (see warm.go).
	Warm WarmMode
	// WarmStore is the persistent warm-start store (a second
	// content-addressed runcache namespace, normally a separate
	// directory from Cache). Required when Warm != WarmOff.
	WarmStore *runcache.Store
	// WarmAuditRate cold-re-runs this deterministic fraction of
	// warm-startable points to bound warm-start error (0 = off; audited
	// points return the exact cold result).
	WarmAuditRate float64
	// WarmGuard overrides the re-convergence window a warm start
	// replays (0 = core.DefaultWarmGuard: warmup/4, floored at 1 ms).
	WarmGuard sim.Duration
	// KneeSearch enables per-signature knee localization in ModeAuto:
	// instead of forcing DES for every point inside a knee band, an
	// O(log n) bisection along the antagonist-tier axis locates the
	// actual regime boundary; band points outside a KneeRadius
	// neighborhood of the located knee are served from calibrated
	// fluid under a widened, probe-measured error bound (see knee.go).
	KneeSearch bool
	// KneeRadius is the half-width, in antagonist tiers, of the
	// forced-DES neighborhood around a located knee (0 = 1).
	KneeRadius int
	// Transfer enables cross-signature calibration transfer: a
	// signature with no calibration of its own borrows anchor gains
	// and drop offsets from the nearest calibrated hub in
	// SKU/workload space with an inflated error bound, skipping or
	// reducing its own anchor DES (see transfer.go). Inert until
	// SetRoster installs the sweep's signature roster.
	Transfer bool
	// TransferRadius caps the signature-space distance a spoke may
	// borrow across (0 = 2.5; sigDistance defines the metric).
	TransferRadius float64
	// Log, when non-nil, receives one-line routing diagnostics.
	Log io.Writer
	// Sink, when non-nil, receives structured routing and audit events;
	// nil falls back to the process-global obs sink (obs.Default), so
	// routers built before -listen wiring still report.
	Sink obs.Sink
}

// Counters is the execution accounting a Router accumulates. All
// counts are of executions actually performed: points served from the
// run cache or collapsed by singleflight are not re-counted.
type Counters struct {
	// FluidRouted counts points computed by the (calibrated) fluid
	// solver; DESRouted counts points simulated (including audits).
	FluidRouted uint64
	DESRouted   uint64
	// EarlyStopped counts DES runs the stopping rule terminated early.
	EarlyStopped uint64
	// KneeForced counts routing *decisions* (not executions) where a
	// fluid-capable point was forced to DES because its operating point
	// sat inside a knee band.
	KneeForced uint64
	// AnchorRuns counts calibration anchor simulations executed (cache
	// hits excluded); AnchorReused counts DES-routed points served
	// directly from a coinciding anchor's memoized result.
	AnchorRuns   uint64
	AnchorReused uint64
	// AnchorTransferred counts anchor tiers served by borrowing a
	// calibrated neighbor's gains instead of running DES;
	// AnchorRefined counts tiers a borrowing signature re-ran itself
	// because the measured transfer residual was too high.
	AnchorTransferred uint64
	AnchorRefined     uint64
	// KneeProbes counts bisection probe DES runs the knee search
	// requested at tiers not already materialized as anchors;
	// KneeBypassed counts fluid routings of knee-band points that the
	// located knee cleared (they would have been knee-forced to DES
	// without the search).
	KneeProbes   uint64
	KneeBypassed uint64
	// Audited counts fluid-vs-DES audit comparisons performed;
	// AuditMaxErr is the largest observed error and AuditOverTol how
	// many audited points exceeded Tol.
	Audited      uint64
	AuditOverTol uint64
	AuditMaxErr  float64
	// AnchorLoaded counts anchors and noise tiers served from the
	// persistent warm store instead of being simulated;
	// AnchorPersisted counts the ones this process computed and wrote
	// back.
	AnchorLoaded    uint64
	AnchorPersisted uint64
	// WarmCheckpoints counts converged snapshots captured and
	// persisted; WarmStarted counts DES points warm-started from a
	// persisted donor checkpoint.
	WarmCheckpoints uint64
	WarmStarted     uint64
	// WarmAudited counts warm-vs-cold audit comparisons performed;
	// WarmAuditMaxErr is the largest observed warm-start error and
	// WarmAuditOverTol how many audited warm starts exceeded Tol.
	WarmAudited      uint64
	WarmAuditOverTol uint64
	WarmAuditMaxErr  float64
}

// Router implements core.Executor. It is safe for concurrent use by
// the worker pool; one Router should be shared across a whole sweep or
// fleet so calibration is done once per signature.
type Router struct {
	cfg   Config
	tol   float64
	estop *core.EarlyStop
	// flight collapses a calibration anchor run and a DES-routed
	// execution of the same point into one simulation when no Cache is
	// configured (with a Cache, the store's own singleflight does this).
	// Calibration runs inside Plan, concurrently with other workers
	// executing plans, so the same coordinates are routinely in flight
	// on both paths at once.
	flight *runcache.Flight

	mu     sync.Mutex
	sigs   map[string]*sigCalib
	roster *roster

	// kneeProbeFn, when non-nil, substitutes for the DES probe runs the
	// knee search performs — a test seam for injecting synthetic regime
	// responses (non-monotone, knee-free) without simulating. Probe
	// residual measurement is skipped under the hook.
	kneeProbeFn func(core.Params) (core.Results, error)

	fluidRouted       atomic.Uint64
	desRouted         atomic.Uint64
	kneeForced        atomic.Uint64
	anchorRuns        atomic.Uint64
	anchorReused      atomic.Uint64
	anchorTransferred atomic.Uint64
	anchorRefined     atomic.Uint64
	kneeProbes        atomic.Uint64
	kneeBypassed      atomic.Uint64
	audited           atomic.Uint64
	auditOverTol      atomic.Uint64
	auditMaxErr       atomicFloatMax

	anchorLoaded     atomic.Uint64
	anchorPersisted  atomic.Uint64
	warmCheckpoints  atomic.Uint64
	warmStarted      atomic.Uint64
	warmAudited      atomic.Uint64
	warmAuditOverTol atomic.Uint64
	warmAuditMaxErr  atomicFloatMax
}

// New validates cfg and builds a Router.
func New(cfg Config) (*Router, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeDES
	}
	if _, err := ParseMode(string(cfg.Mode)); err != nil {
		return nil, err
	}
	if cfg.Tol < 0 || cfg.Tol >= 1 {
		return nil, fmt.Errorf("fidelity: Tol %v outside [0, 1)", cfg.Tol)
	}
	if cfg.AuditRate < 0 || cfg.AuditRate > 1 {
		return nil, fmt.Errorf("fidelity: AuditRate %v outside [0, 1]", cfg.AuditRate)
	}
	if cfg.Warm == "" {
		cfg.Warm = WarmOff
	}
	if _, err := ParseWarmMode(string(cfg.Warm)); err != nil {
		return nil, err
	}
	if cfg.Warm != WarmOff && cfg.WarmStore == nil {
		return nil, fmt.Errorf("fidelity: Warm %q requires a WarmStore", cfg.Warm)
	}
	if cfg.WarmAuditRate < 0 || cfg.WarmAuditRate > 1 {
		return nil, fmt.Errorf("fidelity: WarmAuditRate %v outside [0, 1]", cfg.WarmAuditRate)
	}
	if cfg.KneeRadius < 0 {
		return nil, fmt.Errorf("fidelity: KneeRadius %d negative", cfg.KneeRadius)
	}
	if cfg.TransferRadius < 0 {
		return nil, fmt.Errorf("fidelity: TransferRadius %v negative", cfg.TransferRadius)
	}
	if len(cfg.AnchorSeeds) == 0 {
		cfg.AnchorSeeds = []uint64{1, 2}
	}
	if len(cfg.AnchorAnts) == 0 {
		cfg.AnchorAnts = []int{0, 4, 8, 12, 15}
	}
	ants := append([]int(nil), cfg.AnchorAnts...)
	sort.Ints(ants)
	for i, a := range ants {
		if a < 0 || (i > 0 && a == ants[i-1]) {
			return nil, fmt.Errorf("fidelity: AnchorAnts must be unique and non-negative")
		}
	}
	cfg.AnchorAnts = ants
	// Memoizing: an anchor computed during calibration must still
	// satisfy a DES-routed execution of the same point that starts
	// after the anchor completed, not just concurrent ones.
	r := &Router{cfg: cfg, tol: cfg.Tol, sigs: make(map[string]*sigCalib),
		flight: runcache.NewFlight(true)}
	if r.tol == 0 {
		r.tol = 0.05
	}
	if cfg.EarlyStop {
		rule := cfg.StopRule
		if rule.Window == 0 && rule.RelTol == 0 {
			rule = host.DefaultStopRule()
		}
		r.estop = &core.EarlyStop{Rule: rule}
	}
	return r, nil
}

// Counters snapshots the accounting so far.
func (r *Router) Counters() Counters {
	c := Counters{
		FluidRouted:       r.fluidRouted.Load(),
		DESRouted:         r.desRouted.Load(),
		KneeForced:        r.kneeForced.Load(),
		AnchorRuns:        r.anchorRuns.Load(),
		AnchorReused:      r.anchorReused.Load(),
		AnchorTransferred: r.anchorTransferred.Load(),
		AnchorRefined:     r.anchorRefined.Load(),
		KneeProbes:        r.kneeProbes.Load(),
		KneeBypassed:      r.kneeBypassed.Load(),
		Audited:           r.audited.Load(),
		AuditOverTol:      r.auditOverTol.Load(),
		AuditMaxErr:       r.auditMaxErr.Load(),

		AnchorLoaded:     r.anchorLoaded.Load(),
		AnchorPersisted:  r.anchorPersisted.Load(),
		WarmCheckpoints:  r.warmCheckpoints.Load(),
		WarmStarted:      r.warmStarted.Load(),
		WarmAudited:      r.warmAudited.Load(),
		WarmAuditOverTol: r.warmAuditOverTol.Load(),
		WarmAuditMaxErr:  r.warmAuditMaxErr.Load(),
	}
	if r.estop != nil {
		c.EarlyStopped = r.estop.Stopped.Load()
	}
	return c
}

// Tol reports the effective routing/audit tolerance.
func (r *Router) Tol() float64 { return r.tol }

// MetricsInto implements the control plane's MetricSource interface:
// live routing counters under the hic_fidelity_ prefix.
func (r *Router) MetricsInto(emit func(name, typ string, v float64)) {
	c := r.Counters()
	emit("hic_fidelity_fluid_routed_total", "counter", float64(c.FluidRouted))
	emit("hic_fidelity_des_routed_total", "counter", float64(c.DESRouted))
	emit("hic_fidelity_early_stopped_total", "counter", float64(c.EarlyStopped))
	emit("hic_fidelity_knee_forced_total", "counter", float64(c.KneeForced))
	emit("hic_fidelity_anchor_runs_total", "counter", float64(c.AnchorRuns))
	emit("hic_fidelity_anchor_reused_total", "counter", float64(c.AnchorReused))
	emit("hic_fidelity_anchor_transferred_total", "counter", float64(c.AnchorTransferred))
	emit("hic_fidelity_anchor_refined_total", "counter", float64(c.AnchorRefined))
	emit("hic_fidelity_knee_probes_total", "counter", float64(c.KneeProbes))
	emit("hic_fidelity_knee_bypassed_total", "counter", float64(c.KneeBypassed))
	emit("hic_fidelity_audited_total", "counter", float64(c.Audited))
	emit("hic_fidelity_audit_over_tol_total", "counter", float64(c.AuditOverTol))
	emit("hic_fidelity_audit_max_err", "gauge", c.AuditMaxErr)
	emit("hic_fidelity_tol", "gauge", r.tol)
	emit("hic_fidelity_anchor_loaded_total", "counter", float64(c.AnchorLoaded))
	emit("hic_fidelity_anchor_persisted_total", "counter", float64(c.AnchorPersisted))
	emit("hic_fidelity_warm_checkpoints_total", "counter", float64(c.WarmCheckpoints))
	emit("hic_fidelity_warm_started_total", "counter", float64(c.WarmStarted))
	emit("hic_fidelity_warm_audited_total", "counter", float64(c.WarmAudited))
	emit("hic_fidelity_warm_audit_over_tol_total", "counter", float64(c.WarmAuditOverTol))
	emit("hic_fidelity_warm_audit_max_err", "gauge", c.WarmAuditMaxErr)
}

// WarmStore exposes the persistent warm-start store (nil when warm
// start is off) so CLIs can register it as a metrics source and prune
// it alongside the result cache.
func (r *Router) WarmStore() *runcache.Store { return r.cfg.WarmStore }

// emit delivers a structured event to the configured sink, falling
// back to the process-global one; no sink installed costs a nil check.
func (r *Router) emit(e obs.Event) {
	s := r.cfg.Sink
	if s == nil {
		s = obs.Default()
	}
	if s != nil {
		s.Emit(e)
	}
}

// emitRoute records one routing decision in the event log.
func (r *Router) emitRoute(p core.Params, route, why string) {
	s := r.cfg.Sink
	if s == nil {
		s = obs.Default()
	}
	if s == nil {
		return
	}
	s.Emit(obs.Event{
		Kind:  obs.KindFidelityRoute,
		Key:   sigLabel(p),
		Point: p.AntagonistCores,
		Route: route,
		Why:   why,
	})
}

// Plan implements core.Executor.
func (r *Router) Plan(p core.Params) (string, func(*runner.Arena) (core.Results, error), error) {
	switch r.cfg.Mode {
	case ModeFluid:
		pred, err := core.RunFluid(p)
		if err != nil {
			if isUnsupported(err) {
				return r.desPlan(p, "unsupported")
			}
			return "", nil, err
		}
		r.emitRoute(p, "fluid", "raw")
		return core.FluidVersion + "+raw", func(*runner.Arena) (core.Results, error) {
			r.fluidRouted.Add(1)
			return pred.Results, nil
		}, nil
	case ModeAuto:
		return r.autoPlan(p)
	default:
		return r.desPlan(p, "")
	}
}

// desPlan routes to DES, with early stopping when configured. The run
// executes under the router's singleflight so it can collapse with a
// calibration anchor at the same coordinates racing on another worker.
// Under WarmFull, a persisted donor checkpoint diverts the point to a
// warm start first; a point that runs cold donates its own converged
// snapshot for future processes.
func (r *Router) desPlan(p core.Params, why string) (string, func(*runner.Arena) (core.Results, error), error) {
	if version, run, ok, err := r.warmPlan(p, why); ok || err != nil {
		return version, run, err
	}
	r.logf("fidelity: DES %s ant=%d%s", sigLabel(p), p.AntagonistCores, reason(why))
	r.emitRoute(p, "des", why)
	version := core.SimVersion
	var run func(*runner.Arena) (core.Results, error)
	switch {
	case r.warmFullOn() && r.estop != nil:
		version = r.estop.Version()
		run = func(a *runner.Arena) (core.Results, error) {
			res, snap, stopped, err := core.RunAdaptiveAndSnapshotOn(p, a, r.estop.Rule)
			if err != nil {
				return core.Results{}, err
			}
			if stopped {
				r.estop.Stopped.Add(1)
				r.emit(obs.Event{Kind: obs.KindEarlyStop, Key: p.Canonical()})
			}
			r.recordCkpt(p, snap)
			return res, nil
		}
	case r.warmFullOn():
		run = func(a *runner.Arena) (core.Results, error) {
			res, snap, err := core.RunAndSnapshotOn(p, a)
			if err != nil {
				return core.Results{}, err
			}
			r.recordCkpt(p, snap)
			return res, nil
		}
	case r.estop != nil:
		var err error
		version, run, err = r.estop.Plan(p)
		if err != nil {
			return "", nil, err
		}
	default:
		run = func(a *runner.Arena) (core.Results, error) { return core.RunOn(p, a) }
	}
	if r.cfg.Cache != nil {
		// The outer funnel resolves through the cache (whose store has
		// its own singleflight on the same key), so no extra layer here.
		return version, func(a *runner.Arena) (core.Results, error) {
			r.desRouted.Add(1)
			return run(a)
		}, nil
	}
	key := runcache.Key(version, p.Canonical())
	return version, func(a *runner.Arena) (core.Results, error) {
		return r.flight.Do(key, func() (core.Results, error) {
			r.desRouted.Add(1)
			return run(a)
		})
	}, nil
}

// desPlanAuto is desPlan, except a point that coincides exactly with an
// already-materialized calibration anchor reuses the anchor's DES result
// (same Params, same seed, same execution plan — it IS that run)
// instead of re-simulating. The version salt matches how the anchor was
// executed: pure DES, or the early-stopped variant when EarlyStop is on.
func (r *Router) desPlanAuto(p core.Params, why string) (string, func(*runner.Arena) (core.Results, error), error) {
	if des, hit := r.memoizedAnchor(p); hit {
		r.logf("fidelity: anchor-reuse %s ant=%d%s", sigLabel(p), p.AntagonistCores, reason(why))
		r.emitRoute(p, "anchor-reuse", why)
		version := core.SimVersion
		if r.estop != nil {
			version = r.estop.Version()
		}
		return version, func(*runner.Arena) (core.Results, error) {
			r.anchorReused.Add(1)
			return des, nil
		}, nil
	}
	return r.desPlan(p, why)
}

// Knee bands: inside these the discrete dynamics DES captures dominate
// and the point is never fluid-routed, regardless of its calibrated
// error bound. They are deliberately tight — outside them the
// per-signature anchor calibration (whose grid spans the antagonist
// tier, the axis that sweeps ρ) plus the error-bound gate carry the
// accuracy burden, and the audit mode verifies it empirically.
const (
	tlbKneeLo, tlbKneeHi     = 0.98, 1.06   // working set / IOTLB capacity
	rhoKneeLo, rhoKneeHi     = 0.99, 1.02   // memory-bus load factor
	blindKneeLo, blindKneeHi = 0.99, 1.01   // capacity / CC blind threshold
	loadKneeLo, loadKneeHi   = 0.998, 1.002 // demand / capacity (drop onset)
)

// routeMargin gates routing at a fraction of the audit tolerance: the
// error bound is an estimate (cross-validated residual + measured seed
// noise), so fluid-routing only points bounded comfortably inside Tol
// keeps the *observed* audit error under Tol even when the bound is a
// little optimistic. 0.8 is set from audit evidence on the 10k-host
// fleet bench: worst observed audit error tracks the bound cutoff
// closely (0.069 observed at a 0.7 gate with tol 0.10), so a 20%
// margin still absorbs bound misestimation.
const routeMargin = 0.8

// nearKnee reports whether the fluid operating point sits in any knee
// band, with the band that matched (for logging).
func nearKnee(pred fluid.Prediction) (string, bool) {
	if pred.TLBEntries > 0 {
		if r := float64(pred.WorkingSet) / float64(pred.TLBEntries); r > tlbKneeLo && r < tlbKneeHi {
			return fmt.Sprintf("iotlb ws/cap=%.2f", r), true
		}
	}
	if pred.Rho > rhoKneeLo && pred.Rho < rhoKneeHi {
		return fmt.Sprintf("mem rho=%.2f", pred.Rho), true
	}
	if pred.CapacityGbps > 0 && pred.BlindGbps > 0 && pred.DemandGbps > loadKneeLo*pred.CapacityGbps {
		if r := pred.CapacityGbps / pred.BlindGbps; r > blindKneeLo && r < blindKneeHi {
			return fmt.Sprintf("blind cap/thresh=%.2f", r), true
		}
	}
	if pred.CapacityGbps > 0 {
		if r := pred.DemandGbps / pred.CapacityGbps; r > loadKneeLo && r < loadKneeHi {
			return fmt.Sprintf("drop-onset demand/cap=%.2f", r), true
		}
	}
	return "", false
}

func (r *Router) autoPlan(p core.Params) (string, func(*runner.Arena) (core.Results, error), error) {
	pred, err := core.RunFluid(p)
	if err != nil {
		if isUnsupported(err) {
			return r.desPlan(p, "unsupported")
		}
		return "", nil, err
	}
	// A point that coincides exactly with a calibration run (anchor or
	// noise measurement) is served that run's DES result outright: the
	// exact answer is (or is about to be) in hand, so fluid-routing it
	// would trade accuracy for nothing. Coincidence is structural —
	// anchor grid × anchor seeds, via anchorCoincident, narrowed by
	// coincidentEligible to the tiers a transferring signature actually
	// runs itself — not "is the memo populated yet", so the same point
	// routes the same way whether its signature's calibration already
	// happened (earlier in this run, or resident from a previous query
	// in a serving process) or is materialized right here.
	if elig, cerr := r.coincidentEligible(p); cerr != nil {
		return "", nil, fmt.Errorf("fidelity: calibrating %s: %w", sigLabel(p), cerr)
	} else if elig {
		des, cerr := r.ensureCoincidentDES(p)
		if cerr != nil {
			return "", nil, fmt.Errorf("fidelity: calibrating %s: %w", sigLabel(p), cerr)
		}
		r.logf("fidelity: anchor-reuse %s ant=%d", sigLabel(p), p.AntagonistCores)
		r.emitRoute(p, "anchor-reuse", "")
		version := core.SimVersion
		if r.estop != nil {
			version = r.estop.Version()
		}
		return version, func(*runner.Arena) (core.Results, error) {
			r.anchorReused.Add(1)
			return des, nil
		}, nil
	}
	if why, near := nearKnee(pred); near {
		if version, run, handled, kerr := r.kneePlan(p, pred, why); kerr != nil {
			return "", nil, kerr
		} else if handled {
			return version, run, nil
		}
		r.kneeForced.Add(1)
		return r.desPlanAuto(p, why)
	}
	adj, errBound, calV, ok, err := r.calibrate(p, pred)
	if err != nil {
		return "", nil, fmt.Errorf("fidelity: calibrating %s: %w", sigLabel(p), err)
	}
	if !ok {
		return r.desPlanAuto(p, "uncalibratable")
	}
	if errBound > routeMargin*r.tol {
		return r.desPlanAuto(p, fmt.Sprintf("errBound %.3f > %.2f*tol %.3f", errBound, routeMargin, r.tol))
	}
	return r.fluidPlan(p, adj, calV)
}

// fluidPlan serves a point that passed every routing gate from the
// calibrated fluid prediction adj, cache-salted with the calibration
// version calV — except for the deterministic audit sample, which runs
// (and caches) authoritative DES and only compares the prediction.
func (r *Router) fluidPlan(p core.Params, adj core.Results, calV string) (string, func(*runner.Arena) (core.Results, error), error) {
	canonical := p.Canonical()
	if r.audit(canonical) {
		// Audited points run (and cache) authoritative full-window DES
		// under the pure-DES key; the fluid prediction is only compared.
		r.emitRoute(p, "audit", "")
		return core.SimVersion, func(a *runner.Arena) (core.Results, error) {
			des, err := core.RunOn(p, a)
			if err != nil {
				return core.Results{}, err
			}
			e := observedError(adj, des)
			r.audited.Add(1)
			r.desRouted.Add(1)
			r.auditMaxErr.Max(e)
			over := e > r.tol
			if over {
				r.auditOverTol.Add(1)
				r.logf("fidelity: AUDIT OVER TOL %s ant=%d err=%.3f (fluid %.2f Gbps/%.3f%% vs DES %.2f Gbps/%.3f%%)",
					sigLabel(p), p.AntagonistCores, e,
					adj.AppThroughputGbps, adj.DropRatePct, des.AppThroughputGbps, des.DropRatePct)
			}
			// The control-plane sink raises an immediate warning for an
			// over-tolerance audit result — the operator does not wait for
			// the run-end summary to learn the fidelity budget is blown.
			r.emit(obs.Event{
				Kind:    obs.KindAuditResult,
				Key:     sigLabel(p),
				Point:   p.AntagonistCores,
				Value:   e,
				Tol:     r.tol,
				OverTol: over,
			})
			return des, nil
		}, nil
	}

	r.emitRoute(p, "fluid", "")
	return calV, func(*runner.Arena) (core.Results, error) {
		r.fluidRouted.Add(1)
		return adj, nil
	}, nil
}

// ownCalVersion is the cache salt for results calibrated from the
// signature's own anchor grid (transfer.go salts borrowed curves by
// donor and refined-tier set instead).
func (r *Router) ownCalVersion() string {
	return fmt.Sprintf("%s+cal(%v@%s)", core.FluidVersion, r.cfg.AnchorAnts, seedsLabel(r.cfg.AnchorSeeds))
}

// observedError is the audit metric: the larger of the relative
// throughput error (floored at 1 Gbps so idle hosts don't divide by
// zero) and the absolute drop-fraction error.
func observedError(fluidRes, des core.Results) float64 {
	tErr := math.Abs(fluidRes.AppThroughputGbps-des.AppThroughputGbps) /
		math.Max(des.AppThroughputGbps, 1)
	dErr := math.Abs(fluidRes.DropRatePct-des.DropRatePct) / 100
	return math.Max(tErr, dErr)
}

// audit deterministically samples by hashing the canonical encoding:
// the same scenario audits the same way in every process.
func (r *Router) audit(canonical string) bool {
	if r.cfg.AuditRate <= 0 {
		return false
	}
	key := runcache.Key("fidelity-audit-1", canonical)
	v, err := strconv.ParseUint(key[:15], 16, 64)
	if err != nil {
		return false
	}
	return float64(v)/float64(uint64(1)<<60) < r.cfg.AuditRate
}

func isUnsupported(err error) bool {
	_, ok := err.(fluid.ErrUnsupported)
	return ok
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, format+"\n", args...)
	}
}

func reason(why string) string {
	if why == "" {
		return ""
	}
	return " (" + why + ")"
}

func sigLabel(p core.Params) string {
	return fmt.Sprintf("cc=%s threads=%d senders=%d offered=%g duty=%g",
		p.CC, p.Threads, p.Senders, p.OfferedGbps, p.BurstDuty)
}

func seedsLabel(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatUint(s, 10)
	}
	return strings.Join(parts, ",")
}

// atomicFloatMax is a lock-free running maximum.
type atomicFloatMax struct{ bits atomic.Uint64 }

func (m *atomicFloatMax) Max(v float64) {
	for {
		old := m.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicFloatMax) Load() float64 { return math.Float64frombits(m.bits.Load()) }
