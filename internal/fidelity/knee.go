package fidelity

// Adaptive knee localization (the cold-path half of ROADMAP item 2's
// "importance sampling concentrated near the regime knees"): the knee
// bands in fidelity.go are deliberately wide — they must catch a regime
// boundary wherever it falls — so at fleet scale they force DES on many
// points that are actually on the smooth side of the knee. Per
// signature, an O(log n) bisection along the antagonist-tier axis (the
// axis that sweeps memory-bus pressure, and the one the anchor grid
// already spans) locates the first saturated tier. Band points outside
// a KneeRadius neighborhood of that boundary are served from the
// calibrated curve under a widened error bound that folds in the
// residual measured at the probe tiers themselves; the existing
// -audit-rate shadow runs keep the approximation hard-gated.
//
// Probes are ordinary calibration anchors (ensureAnchor at the primary
// anchor seed), so they are content-addressed in the run cache, shared
// across workers and with DES-routed points at the same coordinates,
// and persisted/reloaded through the warm store like any other anchor.
// The located knee itself is therefore never persisted: relocating it
// in a later process replays cache hits.

import (
	"fmt"
	"math"
	"strings"

	"hic/internal/core"
	"hic/internal/fluid"
	"hic/internal/runner"
)

const (
	// kneeInflate widens the calibrated error bound by the measured
	// probe residual before gating a knee-band point onto fluid: near a
	// boundary the interpolation is least trustworthy, so the bound
	// must reflect what the probes actually observed there.
	kneeInflate = 1.25
	// kneeSatDrop (absolute drop %) and kneeSatFrac (delivered
	// fraction of fluid demand) classify a probe's regime: sustained
	// drops or a throughput shortfall both mean the tier is past the
	// knee.
	kneeSatDrop = 0.2
	kneeSatFrac = 0.97
	// kneeMaxProbes caps a bisection defensively; ceil(log2(15 tiers))
	// is 4, so the cap only matters if the grid grows dramatically.
	kneeMaxProbes = 10
)

// kneeState is one located (or abandoned) regime boundary along the
// antagonist-tier axis within the anchor hull.
type kneeState struct {
	// fallback records a violated bisection invariant: the hull's low
	// end probed saturated while the high end did not (a non-monotone
	// response), so the full knee band stays on DES.
	fallback bool
	// hasKnee reports a boundary bracketed inside the hull; k is the
	// first saturated tier. When false (and not fallback) the hull is
	// single-regime: saturated throughout or smooth throughout.
	hasKnee bool
	k       int
	// resid is the largest calibrated-curve-vs-probe error observed at
	// off-grid probe tiers — the measured interpolation error near the
	// boundary, folded into the serving bound by kneePlan.
	resid float64
}

func (r *Router) kneeRadius() int {
	if r.cfg.KneeRadius > 0 {
		return r.cfg.KneeRadius
	}
	return 1
}

// inForced reports whether tier x falls in the forced-DES neighborhood
// [k-radius, k+radius-1] around the located boundary (the last smooth
// and first saturated tiers, at the default radius 1).
func (ks *kneeState) inForced(x, radius int) bool {
	return ks.hasKnee && x >= ks.k-radius && x <= ks.k+radius-1
}

// kneePlan decides whether a knee-band point can be served from the
// calibrated curve anyway. handled=false (without error) means the
// caller keeps the pre-search behavior: knee-forced DES. The IOTLB band
// is excluded — it gates on a working-set/capacity ratio that does not
// move with the antagonist tier, so there is no boundary to bisect
// along the calibration axis.
func (r *Router) kneePlan(p core.Params, pred fluid.Prediction, why string) (string, func(*runner.Arena) (core.Results, error), bool, error) {
	if !r.cfg.KneeSearch || strings.HasPrefix(why, "iotlb") {
		return "", nil, false, nil
	}
	adj, errBound, calV, ok, err := r.calibrate(p, pred)
	if err != nil {
		return "", nil, false, fmt.Errorf("fidelity: calibrating %s: %w", sigLabel(p), err)
	}
	if !ok {
		return "", nil, false, nil
	}
	ks, err := r.kneeFor(p)
	if err != nil {
		return "", nil, false, err
	}
	if ks.fallback || ks.inForced(p.AntagonistCores, r.kneeRadius()) {
		return "", nil, false, nil
	}
	widened := math.Max(errBound, kneeInflate*ks.resid)
	if widened > routeMargin*r.tol {
		return "", nil, false, nil
	}
	r.kneeBypassed.Add(1)
	r.logf("fidelity: knee-bypass %s ant=%d (%s; widened bound %.3f)",
		sigLabel(p), p.AntagonistCores, why, widened)
	version, run, perr := r.fluidPlan(p, adj, calV)
	return version, run, perr == nil, perr
}

// kneeFor returns the signature's located knee, running the bisection
// on first touch. States are keyed by the transfer-donor key because
// the probe residual is measured against the curve the signature
// actually serves from.
func (r *Router) kneeFor(p core.Params) (*kneeState, error) {
	key := ""
	if asn := r.assignFor(p); asn != nil {
		key = asn.donorKey
	}
	s := r.sigFor(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	r.loadSig(s, p)
	if ks := s.knees[key]; ks != nil {
		return ks, nil
	}
	ks, err := r.locateKnee(s, p)
	if err != nil {
		return nil, err
	}
	s.knees[key] = ks
	return ks, nil
}

// locateKnee brackets the saturation boundary between the hull's
// endpoint anchors and bisects integer tiers down to adjacency. The
// probe order is a pure function of the router config, so every shard
// (and every worker) locates the identical knee no matter which point
// of the signature arrives first.
func (r *Router) locateKnee(s *sigCalib, p core.Params) (*kneeState, error) {
	ants := r.cfg.AnchorAnts
	lo, hi := ants[0], ants[len(ants)-1]
	ks := &kneeState{}
	satLo, err := r.kneeProbe(s, p, lo, ks)
	if err != nil {
		return nil, err
	}
	satHi, err := r.kneeProbe(s, p, hi, ks)
	if err != nil {
		return nil, err
	}
	switch {
	case satLo && satHi:
		// Saturated across the whole hull: any boundary sits below the
		// grid, and the anchors span a single regime.
	case !satLo && !satHi:
		// Smooth across the whole hull.
	case satLo && !satHi:
		// Saturation decreasing with antagonist pressure violates the
		// bisection invariant — a non-monotone response. Keep the full
		// knee band on DES for this signature.
		ks.fallback = true
		r.logf("fidelity: knee-search %s non-monotone (sat at ant=%d, smooth at ant=%d); keeping full-band DES",
			sigLabel(p), lo, hi)
	default:
		for probes := 0; hi-lo > 1 && probes < kneeMaxProbes; probes++ {
			mid := (lo + hi) / 2
			sat, perr := r.kneeProbe(s, p, mid, ks)
			if perr != nil {
				return nil, perr
			}
			if sat {
				hi = mid
			} else {
				lo = mid
			}
		}
		ks.hasKnee, ks.k = true, hi
		r.logf("fidelity: knee-search %s located knee at ant=%d (probe resid %.3f)",
			sigLabel(p), ks.k, ks.resid)
	}
	return ks, nil
}

// kneeProbe classifies tier t's regime from a DES probe at the primary
// anchor seed (caller holds s.mu). Real probes run through ensureAnchor,
// so off-grid probe tiers become ordinary (persisted, cache-shared)
// anchors that interp never reads but memoizedAnchor and coincident DES
// points do; at off-grid tiers the probe also measures how well the
// serving curve reproduces the probe — the residual kneePlan folds into
// the widened bound.
func (r *Router) kneeProbe(s *sigCalib, p core.Params, t int, ks *kneeState) (bool, error) {
	pt := p
	pt.Seed = r.cfg.AnchorSeeds[0]
	pt.AntagonistCores = t
	pred, err := core.RunFluid(pt)
	if err != nil {
		return false, err
	}
	var des core.Results
	if r.kneeProbeFn != nil {
		r.kneeProbes.Add(1)
		if des, err = r.kneeProbeFn(pt); err != nil {
			return false, err
		}
	} else {
		fresh := s.anchors[t] == nil
		a, aerr := r.ensureAnchor(s, p, t)
		if aerr != nil {
			return false, aerr
		}
		if fresh {
			r.kneeProbes.Add(1)
		}
		des = a.des
		if !r.gridTier(t) {
			adj, _, _, cok, cerr := r.calibrateLocked(s, pt, pred)
			if cerr != nil {
				return false, cerr
			}
			if cok {
				ks.resid = math.Max(ks.resid, observedError(adj, des))
			}
		}
	}
	sat := des.DropRatePct > kneeSatDrop
	if pred.DemandGbps > minFluidGbps && des.AppThroughputGbps < kneeSatFrac*pred.DemandGbps {
		sat = true
	}
	return sat, nil
}

// Prefetch materializes everything p's signature needs to serve points
// without first-touch calibration stalls — the anchor grid (or borrowed
// transfer curve plus refinement probes), both noise tiers, and, when
// knee search is on and the signature has a tier-dependent knee band,
// the located knee — without executing any point. Serve coordinators
// dispense this per distinct signature as prefetch leases so N workers
// calibrate in parallel before range execution; everything it computes
// lands in the shared run cache and warm store, so the work is visible
// fleet-wide. No-op outside ModeAuto and for fluid-unsupported
// signatures (those route straight to DES).
func (r *Router) Prefetch(p core.Params) error {
	if r.cfg.Mode != ModeAuto {
		return nil
	}
	if _, err := core.RunFluid(p); err != nil {
		if isUnsupported(err) {
			return nil
		}
		return err
	}
	ants := r.cfg.AnchorAnts
	lo, hi := ants[0], ants[len(ants)-1]
	// Calibrate at one tier per noise regime (at or below the median
	// grid anchor, and above it) so the full grid and both noise tiers
	// materialize. Non-grid tiers are preferred: interpolation is what
	// forces full-grid materialization.
	mid := ants[len(ants)/2]
	targets := make([]int, 0, 2)
	for _, want := range []func(int) bool{
		func(x int) bool { return x <= mid },
		func(x int) bool { return x > mid },
	} {
		t := -1
		for x := lo; x <= hi; x++ {
			if !want(x) {
				continue
			}
			if t < 0 {
				t = x
			}
			if !r.gridTier(x) {
				t = x
				break
			}
		}
		if t >= 0 {
			targets = append(targets, t)
		}
	}
	for _, t := range targets {
		pt := p
		pt.AntagonistCores = t
		pred, err := core.RunFluid(pt)
		if err != nil {
			if isUnsupported(err) {
				continue
			}
			return err
		}
		if _, _, _, _, cerr := r.calibrate(pt, pred); cerr != nil {
			return cerr
		}
	}
	if !r.cfg.KneeSearch {
		return nil
	}
	// Scan the hull for a tier-dependent knee band; the first hit runs
	// the bisection (one located knee serves the whole signature).
	for x := lo; x <= hi; x++ {
		pt := p
		pt.AntagonistCores = x
		pred, err := core.RunFluid(pt)
		if err != nil {
			if isUnsupported(err) {
				return nil
			}
			return err
		}
		if why, near := nearKnee(pred); near && !strings.HasPrefix(why, "iotlb") {
			_, kerr := r.kneeFor(pt)
			return kerr
		}
	}
	return nil
}

// gridTier reports whether t is on the anchor grid.
func (r *Router) gridTier(t int) bool {
	for _, a := range r.cfg.AnchorAnts {
		if a == t {
			return true
		}
	}
	return false
}
