package fidelity

import (
	"fmt"
	"sort"

	"hic/internal/core"
	"hic/internal/runcache"
)

// Persistent calibration store: the cross-run half of calibration. A
// signature's anchors, noise tiers, and memoized calibration DES runs
// are written to the warm store (a second content-addressed runcache
// namespace) whenever calibration computes something new, and reloaded
// on a signature's first touch in a later process — so a repeat
// hiccluster/hicsweep invocation routes fluid immediately instead of
// re-running DES anchors.
//
// Salting follows the run cache's invalidation-by-construction rule:
// the blob version embeds the DES salt anchors ran under (pure
// core.SimVersion or the early-stopped variant), core.FluidVersion (the
// model the gains were measured against), and the anchor grid and
// seeds. Bumping any of those makes old persisted calibrations
// unaddressable; they are never validated at load time because they can
// never be found. The "hic-calib-" version family is disjoint from
// every result salt (all of which start with core.SimVersion), so a
// persisted calibration can never satisfy a result lookup or vice
// versa.

// desVersion is the salt this router's DES-routed results are cached
// under: pure DES, or the early-stopped variant when EarlyStop is on.
func (r *Router) desVersion() string {
	if r.estop != nil {
		return r.estop.Version()
	}
	return core.SimVersion
}

// calibVersion salts persisted calibration state by everything that
// could change its content.
func (r *Router) calibVersion() string {
	return fmt.Sprintf("hic-calib-1|%s|%s|anchors=%v@%s",
		r.desVersion(), core.FluidVersion, r.cfg.AnchorAnts, seedsLabel(r.cfg.AnchorSeeds))
}

// persistedCalib is the on-disk form of a sigCalib.
type persistedCalib struct {
	Anchors []persistedAnchor `json:"anchors"`
	Noise   []persistedNoise  `json:"noise"`
	Runs    []persistedRun    `json:"runs"`
}

type persistedAnchor struct {
	Ant     int          `json:"ant"`
	Gain    float64      `json:"gain"`
	DropOff float64      `json:"drop_off"`
	UtilOff float64      `json:"util_off"`
	OK      bool         `json:"ok"`
	Des     core.Results `json:"des"`
}

type persistedNoise struct {
	Ant int     `json:"ant"`
	Err float64 `json:"err"`
}

type persistedRun struct {
	Ant  int          `json:"ant"`
	Seed uint64       `json:"seed"`
	Des  core.Results `json:"des"`
}

// calibPersistOn reports whether calibration state round-trips through
// the warm store (both warm modes persist calibration; WarmFull adds
// checkpoints).
func (r *Router) calibPersistOn() bool {
	return r.cfg.WarmStore != nil && (r.cfg.Warm == WarmCalib || r.cfg.Warm == WarmFull)
}

// loadSig consults the warm store the first time a signature is touched
// (caller holds s.mu). Loaded anchors and noise tiers short-circuit
// ensureAnchor/ensureNoise exactly as if this process had computed
// them; loaded DES runs feed memoizedAnchor, so anchor-coinciding fleet
// points are served their exact cold results without simulating.
func (r *Router) loadSig(s *sigCalib, p core.Params) {
	if s.loaded {
		return
	}
	s.loaded = true
	sig := signature(p)
	if r.calibPersistOn() {
		var pc persistedCalib
		v := r.calibVersion()
		if r.cfg.WarmStore.GetBlob(runcache.Key(v, sig), v, sig, &pc) {
			n := 0
			for _, a := range pc.Anchors {
				if _, dup := s.anchors[a.Ant]; dup {
					continue
				}
				s.anchors[a.Ant] = &anchorPoint{gain: a.Gain, dropOff: a.DropOff, utilOff: a.UtilOff, des: a.Des, ok: a.OK}
				n++
			}
			for _, t := range pc.Noise {
				if _, dup := s.noise[t.Ant]; dup {
					continue
				}
				s.noise[t.Ant] = t.Err
				n++
			}
			for _, run := range pc.Runs {
				c := anchorCoord{run.Ant, run.Seed}
				if _, dup := s.des[c]; !dup {
					s.des[c] = run.Des
				}
			}
			if n > 0 {
				r.anchorLoaded.Add(uint64(n))
				r.logf("fidelity: loaded %d persisted anchors/noise tiers for %s", n, sigLabel(p))
			}
		}
	}
	if r.warmFullOn() {
		var pk persistedCkpts
		v := r.ckptVersion()
		if r.cfg.WarmStore.GetBlob(runcache.Key(v, sig), v, sig, &pk) {
			s.ckpts = pk.Ckpts
			for _, c := range pk.Ckpts {
				s.ckptCoords[anchorCoord{c.Ant, c.Seed}] = true
			}
			r.logf("fidelity: loaded %d persisted checkpoints for %s", len(pk.Ckpts), sigLabel(p))
		}
	}
}

// saveCalib writes the signature's full calibration state back to the
// warm store (caller holds s.mu). newItems is how many anchors/noise
// tiers this call added, for the AnchorPersisted counter. Failures are
// logged and swallowed: the store is an accelerator, never an error
// source.
func (r *Router) saveCalib(s *sigCalib, p core.Params, newItems int) {
	if !r.calibPersistOn() || newItems == 0 {
		return
	}
	pc := persistedCalib{}
	for ant, a := range s.anchors {
		pc.Anchors = append(pc.Anchors, persistedAnchor{
			Ant: ant, Gain: a.gain, DropOff: a.dropOff, UtilOff: a.utilOff, OK: a.ok, Des: a.des,
		})
	}
	for ant, e := range s.noise {
		pc.Noise = append(pc.Noise, persistedNoise{Ant: ant, Err: e})
	}
	for c, des := range s.des {
		pc.Runs = append(pc.Runs, persistedRun{Ant: c.ant, Seed: c.seed, Des: des})
	}
	// Map iteration order is random; sort so the file is deterministic
	// and diffs between runs are meaningful.
	sort.Slice(pc.Anchors, func(i, j int) bool { return pc.Anchors[i].Ant < pc.Anchors[j].Ant })
	sort.Slice(pc.Noise, func(i, j int) bool { return pc.Noise[i].Ant < pc.Noise[j].Ant })
	sort.Slice(pc.Runs, func(i, j int) bool {
		if pc.Runs[i].Ant != pc.Runs[j].Ant {
			return pc.Runs[i].Ant < pc.Runs[j].Ant
		}
		return pc.Runs[i].Seed < pc.Runs[j].Seed
	})
	sig := signature(p)
	v := r.calibVersion()
	if err := r.cfg.WarmStore.PutBlob(runcache.Key(v, sig), v, sig, pc); err != nil {
		r.logf("fidelity: persisting calibration: %v", err)
		return
	}
	r.anchorPersisted.Add(uint64(newItems))
}
