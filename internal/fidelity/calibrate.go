package fidelity

import (
	"math"
	"sync"

	"hic/internal/core"
	"hic/internal/fluid"
	"hic/internal/runcache"
)

// errFloor is the irreducible error-bound floor (model granularity,
// counter rounding); xvalMargin inflates the cross-validated residual
// to cover between-anchor curvature the validation can't see.
const (
	errFloor   = 0.005
	xvalMargin = 1.25
	// gainLo/gainHi bound trustworthy anchor gains loosely — the
	// cross-validated residual, not this cut, carries the accuracy
	// burden; the cut only rejects predictions so far off that the
	// gain ratio itself is numerically meaningless.
	gainLo, gainHi = 0.25, 4.0
	// minFluidGbps guards the gain ratio's denominator.
	minFluidGbps = 0.5
)

// sigCalib is the per-signature calibration state. anchors grows
// lazily: a point whose antagonist tier coincides with an anchor only
// materializes that one anchor, while interpolated points materialize
// the full grid (needed for cross-validation). noise is the per-tier
// seed-to-seed spread — measured at the queried tier (exact) or the
// nearest anchor above it (interpolated), so the bound reflects the
// regime the point actually sits in and never depends on query order.
// des memoizes every DES execution calibration performs, keyed by
// (tier, seed): anchor coordinates are drawn from the caller's seed
// pool, so these are real fleet/sweep points and any DES-routed point
// that coincides with one is served from here instead of re-simulated.
// loaded, ckpts, ckptNew, and ckptCoords belong to the persistent
// warm-start layer (persist.go/warm.go): loaded latches the one-time
// warm-store consultation; ckpts are donor checkpoints loaded from
// disk (the only ones warm starts draw from); ckptNew are checkpoints
// this process captured (persisted for future runs, never self-served);
// ckptCoords indexes both to dedupe captures.
type sigCalib struct {
	mu      sync.Mutex
	anchors map[int]*anchorPoint
	noise   map[int]float64
	des     map[anchorCoord]core.Results

	// xfers memoizes borrowed calibration curves by donor signature
	// key, knees memoizes located regime boundaries by the same key
	// ("" = own-grid calibration): both are deterministic functions of
	// (signature, donor, router config), so keying by donor keeps a
	// resident signature consistent when a later query's roster assigns
	// it a different donor. Neither is persisted — the DES runs behind
	// them are (as ordinary anchors), so rebuilding is cache-hits only.
	xfers map[string]*xferCurve
	knees map[string]*kneeState

	loaded     bool
	ckpts      []persistedCkpt
	ckptNew    []persistedCkpt
	ckptCoords map[anchorCoord]bool
}

// anchorCoord addresses one calibration DES run.
type anchorCoord struct {
	ant  int
	seed uint64
}

type anchorPoint struct {
	gain    float64 // DES / fluid throughput
	dropOff float64 // DES − fluid drop fraction
	utilOff float64 // DES − fluid link utilization
	des     core.Results
	ok      bool // gain within trust bounds
}

// signature groups points that share everything but Seed and
// AntagonistCores — the two axes calibration spans.
func signature(p core.Params) string {
	p.Seed = 0
	p.AntagonistCores = 0
	return p.Canonical()
}

func (r *Router) sigFor(p core.Params) *sigCalib {
	key := signature(p)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sigs[key]
	if s == nil {
		s = &sigCalib{
			anchors:    make(map[int]*anchorPoint),
			noise:      make(map[int]float64),
			des:        make(map[anchorCoord]core.Results),
			xfers:      make(map[string]*xferCurve),
			knees:      make(map[string]*kneeState),
			ckptCoords: make(map[anchorCoord]bool),
		}
		r.sigs[key] = s
	}
	return s
}

// runAnchor executes (or loads from the run cache) one DES anchor.
// Anchors run under the router's DES plan — pure full-window DES, or
// the early-stopped variant when EarlyStop is configured — so they are
// cached under the same salt as, and are interchangeable with, any
// DES-routed point at the same coordinates.
func (r *Router) runAnchor(ap core.Params) (core.Results, error) {
	version := core.SimVersion
	compute := func() (core.Results, error) {
		r.anchorRuns.Add(1)
		return core.Run(ap)
	}
	if r.estop != nil {
		version = r.estop.Version()
		rule := r.estop.Rule
		compute = func() (core.Results, error) {
			r.anchorRuns.Add(1)
			res, stopped, err := core.RunAdaptiveOn(ap, nil, rule)
			if stopped {
				r.estop.Stopped.Add(1)
			}
			return res, err
		}
	}
	canonical := ap.Canonical()
	if r.cfg.Cache != nil {
		return r.cfg.Cache.GetOrCompute(runcache.Key(version, canonical), version, canonical, compute)
	}
	return r.flight.Do(runcache.Key(version, canonical), compute)
}

// ensureAnchor materializes the anchor at tier ant (caller holds s.mu).
func (r *Router) ensureAnchor(s *sigCalib, p core.Params, ant int) (*anchorPoint, error) {
	if a := s.anchors[ant]; a != nil {
		return a, nil
	}
	ap := p
	ap.Seed = r.cfg.AnchorSeeds[0]
	ap.AntagonistCores = ant
	des, err := r.runAnchor(ap)
	if err != nil {
		return nil, err
	}
	pred, err := core.RunFluid(ap)
	if err != nil {
		// Unsupported never reaches calibration (routed earlier), so
		// any error here is a real failure.
		return nil, err
	}
	a := &anchorPoint{des: des}
	if pred.AppThroughputGbps >= minFluidGbps {
		a.gain = des.AppThroughputGbps / pred.AppThroughputGbps
		a.dropOff = (des.DropRatePct - pred.DropRatePct) / 100
		a.utilOff = des.LinkUtilization - pred.LinkUtilization
		a.ok = a.gain >= gainLo && a.gain <= gainHi
	}
	s.anchors[ant] = a
	s.des[anchorCoord{ant, ap.Seed}] = des
	r.saveCalib(s, p, 1)
	return a, nil
}

// ensureNoise measures the seed-to-seed spread of DES at the given
// anchor tier (caller holds s.mu): the error floor no calibration can
// beat, since fluid is seed-independent. The measurement run is
// memoized in s.des — when AnchorSeeds come from the caller's seed
// pool it IS a real catalog cell, so it substitutes for (rather than
// adds to) the sweep's own DES work. Noise grows with the antagonist
// tier, so it is memoized per tier, not per signature.
func (r *Router) ensureNoise(s *sigCalib, p core.Params, ant int) (float64, error) {
	if n, ok := s.noise[ant]; ok {
		return n, nil
	}
	if len(r.cfg.AnchorSeeds) < 2 {
		s.noise[ant] = errFloor
		return errFloor, nil
	}
	a, err := r.ensureAnchor(s, p, ant)
	if err != nil {
		return 0, err
	}
	ap := p
	ap.Seed = r.cfg.AnchorSeeds[1]
	ap.AntagonistCores = ant
	other, err := r.runAnchor(ap)
	if err != nil {
		return 0, err
	}
	s.des[anchorCoord{ant, ap.Seed}] = other
	n := observedError(a.des, other)
	s.noise[ant] = n
	r.saveCalib(s, p, 1)
	return n, nil
}

// noiseTier maps a queried antagonist tier onto one of at most two
// noise-measurement tiers — the grid's median anchor for queries at or
// below it, the top anchor above it. Seed noise grows with the tier,
// so the snapped tier's measurement upper-bounds the query's regime
// while capping calibration at two noise runs per signature instead of
// one per anchor.
func (r *Router) noiseTier(x int) int {
	ants := r.cfg.AnchorAnts
	mid := ants[len(ants)/2]
	if x <= mid {
		return mid
	}
	return ants[len(ants)-1]
}

// anchorCoincident reports whether p structurally coincides with a
// calibration DES run: an anchor (grid tier × primary seed) or a noise
// measurement (noise tier × secondary seed). The predicate depends
// only on the router's configuration and p — never on what has been
// calibrated so far — so the routing decision for a coincident point
// is the same on a cold pass, on a rerun against resident calibration
// (a serving daemon's second query), and for any shard boundary that
// changes which point of a signature arrives first.
func (r *Router) anchorCoincident(p core.Params) bool {
	inGrid := false
	for _, a := range r.cfg.AnchorAnts {
		if a == p.AntagonistCores {
			inGrid = true
			break
		}
	}
	if !inGrid {
		return false
	}
	if p.Seed == r.cfg.AnchorSeeds[0] {
		return true
	}
	// Noise runs exist only at the (at most two) noise tiers.
	return len(r.cfg.AnchorSeeds) >= 2 && p.Seed == r.cfg.AnchorSeeds[1] &&
		r.noiseTier(p.AntagonistCores) == p.AntagonistCores
}

// ensureCoincidentDES materializes (or reuses) the calibration DES run
// coinciding with p and returns its result. Only valid after
// anchorCoincident(p).
func (r *Router) ensureCoincidentDES(p core.Params) (core.Results, error) {
	s := r.sigFor(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	r.loadSig(s, p)
	coord := anchorCoord{p.AntagonistCores, p.Seed}
	if des, ok := s.des[coord]; ok {
		return des, nil
	}
	var err error
	if p.Seed == r.cfg.AnchorSeeds[0] {
		_, err = r.ensureAnchor(s, p, p.AntagonistCores)
	} else {
		_, err = r.ensureNoise(s, p, p.AntagonistCores)
	}
	if err != nil {
		return core.Results{}, err
	}
	return s.des[coord], nil
}

// memoizedAnchor returns the already-computed calibration DES result
// when p coincides with one exactly — an anchor (seed 0) or a noise run
// (seed 1) — letting knee- or tolerance-routed points reuse the
// calibration work instead of re-simulating. With AnchorSeeds drawn
// from the caller's seed pool this makes calibration nearly free at
// fleet scale: its DES runs substitute for the fleet's own.
//
// This check is opportunistic (memo presence depends on query order),
// so it is only used where reuse cannot change bytes: DES-routed
// points, whose fresh execution resolves through the same cache/flight
// key the anchor was stored under and therefore returns the identical
// result either way. Routing decisions use anchorCoincident instead.
func (r *Router) memoizedAnchor(p core.Params) (core.Results, bool) {
	seedMatch := false
	for _, s := range r.cfg.AnchorSeeds {
		if p.Seed == s {
			seedMatch = true
			break
		}
	}
	if !seedMatch {
		return core.Results{}, false
	}
	s := r.sigFor(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	r.loadSig(s, p)
	if des, ok := s.des[anchorCoord{p.AntagonistCores, p.Seed}]; ok {
		return des, true
	}
	return core.Results{}, false
}

// calibrate computes the calibrated prediction for p, its error bound,
// and the cache salt identifying the calibration that produced it.
// ok=false means the point cannot be calibrated (tier outside the
// anchor hull, untrustworthy gains, too few anchors to validate) and
// must run under DES.
func (r *Router) calibrate(p core.Params, pred fluid.Prediction) (adj core.Results, errBound float64, calV string, ok bool, err error) {
	s := r.sigFor(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	r.loadSig(s, p)
	return r.calibrateLocked(s, p, pred)
}

// calibrateLocked is calibrate with s.mu already held — the form the
// knee search uses to evaluate the serving curve at probe tiers. When
// the roster assigns this signature a transfer donor, the borrowed
// curve takes precedence; a failed transfer (uncalibratable donor)
// falls through to the signature's own anchor grid.
func (r *Router) calibrateLocked(s *sigCalib, p core.Params, pred fluid.Prediction) (adj core.Results, errBound float64, calV string, ok bool, err error) {
	x := p.AntagonistCores
	ants := r.cfg.AnchorAnts
	exact := false
	for _, a := range ants {
		if a == x {
			exact = true
			break
		}
	}
	if !exact && (x < ants[0] || x > ants[len(ants)-1]) {
		return core.Results{}, 0, "", false, nil
	}

	if asn := r.assignFor(p); asn != nil {
		adj, bound, v, xok, xerr := r.calibrateTransfer(s, p, pred, asn)
		if xerr != nil {
			return core.Results{}, 0, "", false, xerr
		}
		if xok {
			return adj, bound, v, true, nil
		}
	}

	var gain, dropOff float64
	if exact {
		a, aerr := r.ensureAnchor(s, p, x)
		if aerr != nil {
			return core.Results{}, 0, "", false, aerr
		}
		if !a.ok {
			return core.Results{}, 0, "", false, nil
		}
		noise, nerr := r.ensureNoise(s, p, r.noiseTier(x))
		if nerr != nil {
			return core.Results{}, 0, "", false, nerr
		}
		gain, dropOff = a.gain, a.dropOff
		errBound = noise + errFloor
	} else {
		if len(ants) < 3 {
			return core.Results{}, 0, "", false, nil
		}
		pts := make([]*anchorPoint, len(ants))
		for i, a := range ants {
			ap, aerr := r.ensureAnchor(s, p, a)
			if aerr != nil {
				return core.Results{}, 0, "", false, aerr
			}
			if !ap.ok {
				return core.Results{}, 0, "", false, nil
			}
			pts[i] = ap
		}
		noise, nerr := r.ensureNoise(s, p, r.noiseTier(x))
		if nerr != nil {
			return core.Results{}, 0, "", false, nerr
		}
		gain = interp(ants, pts, x, func(a *anchorPoint) float64 { return a.gain })
		dropOff = interp(ants, pts, x, func(a *anchorPoint) float64 { return a.dropOff })

		// Cross-validate: predict each interior anchor from its
		// neighbors; the residual bounds the interpolation error. The
		// bound is local — only the anchors bracketing x count — so a
		// kink in the gain curve at one end of the tier axis (a regime
		// boundary the signature crosses there) does not condemn the
		// smooth intervals at the other end.
		lo := 0
		for i := 1; i < len(ants); i++ {
			if x <= ants[i] {
				lo = i - 1
				break
			}
		}
		resid := 0.0
		for i := 1; i < len(ants)-1; i++ {
			if i != lo && i != lo+1 {
				continue
			}
			t := float64(ants[i]-ants[i-1]) / float64(ants[i+1]-ants[i-1])
			gHat := pts[i-1].gain + t*(pts[i+1].gain-pts[i-1].gain)
			dHat := pts[i-1].dropOff + t*(pts[i+1].dropOff-pts[i-1].dropOff)
			resid = math.Max(resid, math.Abs(gHat-pts[i].gain)/pts[i].gain)
			resid = math.Max(resid, math.Abs(dHat-pts[i].dropOff))
		}
		// The residual and the noise are not independent error sources:
		// the cross-validation residual is itself measured on noisy
		// anchors, so it already embeds one noise realization. Summing
		// them double-counts; the larger of the two bounds the error.
		errBound = math.Max(xvalMargin*resid, noise) + errFloor
	}

	return applyCalibration(pred, gain, dropOff), errBound, r.ownCalVersion(), true, nil
}

// interp evaluates the piecewise-linear anchor curve at x.
func interp(ants []int, pts []*anchorPoint, x int, f func(*anchorPoint) float64) float64 {
	for i := 1; i < len(ants); i++ {
		if x <= ants[i] {
			t := float64(x-ants[i-1]) / float64(ants[i]-ants[i-1])
			return f(pts[i-1]) + t*(f(pts[i])-f(pts[i-1]))
		}
	}
	return f(pts[len(pts)-1])
}

// applyCalibration maps the anchor-fit gain and drop offset onto the
// fluid prediction's Results.
func applyCalibration(pred fluid.Prediction, gain, dropOff float64) core.Results {
	res := pred.Results
	res.AppThroughputGbps *= gain
	res.Goodput = uint64(math.Round(float64(res.Goodput) * gain))
	res.Reads = uint64(math.Round(float64(res.Reads) * gain))

	fluidFrac := pred.DropRatePct / 100
	frac := math.Min(math.Max(fluidFrac+dropOff, 0), 1)
	res.DropRatePct = frac * 100
	arrivals := res.RxPackets + res.Drops
	if frac > 0 || fluidFrac > 0 {
		res.Drops = uint64(math.Round(float64(arrivals) * frac))
		res.RxPackets = arrivals - res.Drops
		res.Retransmits = res.Drops
	} else {
		// Not dropping: arrivals track the (gain-corrected) goodput.
		res.RxPackets = uint64(math.Round(float64(arrivals) * gain))
		res.LinkUtilization *= gain
	}
	return res
}
