package runner

import (
	"errors"
	"sync"
	"testing"
)

// TestSlotStatesObservableMidFlight holds every worker inside a task
// and reads the per-slot state words from the outside — the exact
// access pattern /metrics and `hiccluster -v` use while a fleet runs.
func TestSlotStatesObservableMidFlight(t *testing.T) {
	const workers = 3
	p := New(workers)

	entered := make(chan struct{}, workers)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Map(workers, func(i int, a *Arena) error { //nolint:errcheck
			entered <- struct{}{}
			<-release
			return nil
		})
	}()
	for i := 0; i < workers; i++ {
		<-entered
	}

	st := p.Stats()
	if st.Busy != workers || st.Idle != 0 {
		t.Errorf("mid-flight Stats = %+v, want %d busy, 0 idle", st, workers)
	}
	busy := 0
	for _, s := range p.SlotStates() {
		if s == SlotBusy {
			busy++
		}
	}
	if busy != workers {
		t.Errorf("SlotStates reports %d busy, want %d", busy, workers)
	}
	if st.QueueDepth != workers {
		t.Errorf("mid-flight QueueDepth = %d, want %d (tasks pending until executed)", st.QueueDepth, workers)
	}

	close(release)
	wg.Wait()

	st = p.Stats()
	if st.Busy != 0 || st.Draining != 0 || st.Idle != workers {
		t.Errorf("post-run Stats = %+v, want all %d idle", st, workers)
	}
	if st.QueueDepth != 0 {
		t.Errorf("post-run QueueDepth = %d, want 0", st.QueueDepth)
	}
	if st.TasksStarted != workers || st.TasksDone != workers {
		t.Errorf("task counters = %d started, %d done; want %d/%d",
			st.TasksStarted, st.TasksDone, workers, workers)
	}
}

// TestSlotCountersReconcileAfterAbort aborts a large Map early and
// checks the accounting invariants the control plane relies on: queue
// depth returns to zero, started == done, and every slot is idle.
func TestSlotCountersReconcileAfterAbort(t *testing.T) {
	p := New(4)
	before := p.Stats()
	boom := errors.New("boom")
	err := p.Map(10_000, func(i int, a *Arena) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want %v", err, boom)
	}
	st := p.Stats()
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth after abort = %d, want 0", st.QueueDepth)
	}
	started := st.TasksStarted - before.TasksStarted
	done := st.TasksDone - before.TasksDone
	if started != done {
		t.Errorf("started %d != done %d after abort", started, done)
	}
	if started == 10_000 {
		t.Error("abort executed every task; expected early termination")
	}
	if st.Busy != 0 || st.Draining != 0 {
		t.Errorf("slots not idle after abort: %+v", st)
	}
}

func TestSlotStateString(t *testing.T) {
	cases := map[SlotState]string{
		SlotIdle:      "idle",
		SlotBusy:      "busy",
		SlotDraining:  "draining",
		SlotState(99): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("SlotState(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestPoolMetricsInto(t *testing.T) {
	p := New(2)
	got := map[string]float64{}
	types := map[string]string{}
	p.MetricsInto(func(name, typ string, v float64) {
		got[name] = v
		types[name] = typ
	})
	want := map[string]float64{
		"hic_pool_workers":             2,
		"hic_pool_slots_busy":          0,
		"hic_pool_slots_idle":          2,
		"hic_pool_slots_draining":      0,
		"hic_pool_tasks_started_total": 0,
		"hic_pool_tasks_done_total":    0,
		"hic_pool_queue_depth":         0,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %g, want %g", name, got[name], v)
		}
	}
	for _, counter := range []string{"hic_pool_tasks_started_total", "hic_pool_tasks_done_total"} {
		if types[counter] != "counter" {
			t.Errorf("%s type = %q, want counter", counter, types[counter])
		}
	}
	if types["hic_pool_slots_busy"] != "gauge" {
		t.Errorf("hic_pool_slots_busy type = %q, want gauge", types["hic_pool_slots_busy"])
	}
}
