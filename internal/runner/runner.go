// Package runner is the fleet-scale execution layer: a shared, bounded
// worker pool whose workers own reusable simulation arenas. Every
// many-run entry point in the repository — core.RunMany and friends,
// sweep grids, cluster fleets, the figure harness — funnels its fan-out
// through this pool instead of spawning one goroutine per point.
//
// Two properties make 100k-host fleets tractable on a laptop:
//
//   - Arena reuse. Each worker slot owns an Arena holding a sim.Engine
//     (with its event free list), a pkt.Pool (packet free list), and a
//     metrics.Registry. Between runs the arena is reset, not
//     reallocated, so the steady-state cost of one more fleet host is
//     the simulation itself rather than setup and GC churn. Reset state
//     is proven invisible by the golden determinism tests: a run on a
//     dirty arena is bit-identical to a run on a fresh engine.
//
//   - Bounded, ordered dispatch. Tasks are handed to workers in index
//     order in small chunks pulled from a shared frontier (idle workers
//     steal the next chunk; a straggler never blocks dispatch). Because
//     in-flight indices stay within a few chunks of each other, the
//     in-order result collector used by the streaming aggregation paths
//     needs only an O(workers)-sized reorder window — contiguous
//     per-worker ranges (the textbook work-stealing split) were
//     rejected precisely because they make that window O(n/workers).
//
// The pool is deliberately free of simulation knowledge: tasks receive
// an *Arena and do with it what they like. internal/core owns the glue
// that turns an arena into a host.Testbed.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// Arena is the per-worker bundle of reusable simulation state. Fields
// are created lazily on first Acquire and then live for the pool's
// lifetime; the engine and registry are reset (not reallocated) by
// host.NewWith at the start of every run, and the packet pool's free
// list carries over as-is — recycled packets are fully zeroed on reuse.
//
// An Arena is owned by exactly one task at a time (the pool hands it
// out with the worker slot), so none of its state needs locking.
type Arena struct {
	worker int
	runs   uint64

	engine   *sim.Engine
	pool     *pkt.Pool
	registry *metrics.Registry
}

// Worker returns the index of the worker slot owning this arena.
func (a *Arena) Worker() int { return a.worker }

// Runs returns how many tasks have acquired this arena so far.
func (a *Arena) Runs() uint64 { return a.runs }

// Acquire returns the arena's engine, packet pool, and registry,
// creating them on first use, and counts the run. The caller (in
// practice host.NewWith via core.RunOn) is responsible for resetting
// the engine and registry to the run's seed; the packet pool needs no
// reset because its free list is self-cleaning.
//
// A nil arena is valid and returns nils, which host.NewWith turns into
// fresh per-run state — the pre-pool behavior.
func (a *Arena) Acquire() (*sim.Engine, *pkt.Pool, *metrics.Registry) {
	if a == nil {
		return nil, nil, nil
	}
	a.runs++
	if a.engine == nil {
		a.engine = sim.NewEngine(0)
		a.pool = pkt.NewPool()
		a.registry = metrics.NewRegistry()
	}
	return a.engine, a.pool, a.registry
}

// SlotState is the observable state of one worker slot, readable at
// any time without racing: each slot's state lives in its own atomic
// word, written by the owning worker and loaded by observers
// (/metrics scrapes, hiccluster -v).
type SlotState uint32

const (
	// SlotIdle: the slot sits in the pool's channel, no task holds it.
	SlotIdle SlotState = iota
	// SlotBusy: a worker holds the slot and is executing tasks.
	SlotBusy
	// SlotDraining: the worker observed an abort mid-chunk and is
	// returning the slot without running the chunk's remaining tasks.
	SlotDraining
)

func (s SlotState) String() string {
	switch s {
	case SlotIdle:
		return "idle"
	case SlotBusy:
		return "busy"
	case SlotDraining:
		return "draining"
	}
	return "unknown"
}

// Pool is a bounded pool of worker slots, each owning one Arena. The
// bound is global: concurrent Map calls share the same slots, so total
// in-flight simulations never exceed the worker count no matter how
// many sweeps run at once.
type Pool struct {
	workers int
	slots   chan *Arena

	// Per-slot state words plus pool-wide task counters, all atomic so
	// the control plane samples them while workers run.
	state   []atomic.Uint32
	started atomic.Uint64 // tasks whose fn began executing
	done    atomic.Uint64 // tasks whose fn returned (ok or error)
	pending atomic.Int64  // tasks submitted but not yet finished
}

// New returns a pool with the given number of worker slots; workers <= 0
// means GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		slots:   make(chan *Arena, workers),
		state:   make([]atomic.Uint32, workers),
	}
	for i := 0; i < workers; i++ {
		p.slots <- &Arena{worker: i}
	}
	return p
}

// Workers returns the pool's worker-slot count.
func (p *Pool) Workers() int { return p.workers }

// SlotStates returns a point-in-time copy of every slot's state. The
// copy is not a consistent cut across slots (each word is loaded
// independently), which is exactly what a live gauge wants.
func (p *Pool) SlotStates() []SlotState {
	out := make([]SlotState, len(p.state))
	for i := range p.state {
		out[i] = SlotState(p.state[i].Load())
	}
	return out
}

// Stats is a point-in-time summary of pool occupancy and throughput.
type Stats struct {
	Workers      int
	Busy         int
	Idle         int
	Draining     int
	TasksStarted uint64
	TasksDone    uint64
	// QueueDepth is submitted-but-unfinished tasks across all in-flight
	// Map calls (includes the ones currently executing).
	QueueDepth int64
}

// Stats samples the pool's counters and slot states.
func (p *Pool) Stats() Stats {
	st := Stats{
		Workers:      p.workers,
		TasksStarted: p.started.Load(),
		TasksDone:    p.done.Load(),
		QueueDepth:   p.pending.Load(),
	}
	for i := range p.state {
		switch SlotState(p.state[i].Load()) {
		case SlotBusy:
			st.Busy++
		case SlotDraining:
			st.Draining++
		default:
			st.Idle++
		}
	}
	return st
}

// MetricsInto implements the control plane's MetricSource interface
// structurally (no obs import): it emits live pool gauges and counters
// under the hic_pool_ prefix.
func (p *Pool) MetricsInto(emit func(name, typ string, v float64)) {
	st := p.Stats()
	emit("hic_pool_workers", "gauge", float64(st.Workers))
	emit("hic_pool_slots_busy", "gauge", float64(st.Busy))
	emit("hic_pool_slots_idle", "gauge", float64(st.Idle))
	emit("hic_pool_slots_draining", "gauge", float64(st.Draining))
	emit("hic_pool_tasks_started_total", "counter", float64(st.TasksStarted))
	emit("hic_pool_tasks_done_total", "counter", float64(st.TasksDone))
	emit("hic_pool_queue_depth", "gauge", float64(st.QueueDepth))
}

// arenas snapshots the pool's arenas for tests. Only valid on an idle
// pool — it briefly drains every slot.
func (p *Pool) arenas() []*Arena {
	as := make([]*Arena, 0, p.workers)
	for i := 0; i < p.workers; i++ {
		as = append(as, <-p.slots)
	}
	for _, a := range as {
		p.slots <- a
	}
	return as
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool (GOMAXPROCS workers), creating it
// on first use. All library entry points run on this pool by default so
// the worker bound and the arenas are shared across call sites.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(0) })
	return sharedPool
}

// chunkFor picks the dispatch chunk size: small enough that every worker
// gets work even on short task lists, large enough that the atomic
// frontier is not contended on fleet-sized ones.
func chunkFor(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > 64 {
		return 64
	}
	return c
}

// Map executes fn(i, arena) for i in [0, n) on the pool's workers.
// Tasks are dispatched in index order; results ordering is the caller's
// concern (write into your own slice at index i). The first error —
// lowest task index among the errors observed — aborts dispatch of
// not-yet-started chunks, and Map returns after every started task has
// finished, so fn never races with the caller after return.
func (p *Pool) Map(n int, fn func(i int, a *Arena) error) error {
	_, err := mapChunks(p, n, func(i int, a *Arena) (struct{}, error) {
		return struct{}{}, fn(i, a)
	}, nil)
	return err
}

// MapOrdered executes fn like Map and additionally delivers each task's
// value to emit in strict index order from a single goroutine (the
// collector), without retaining values beyond the reorder window. This
// is the streaming backbone: aggregation downstream of emit sees a
// deterministic order regardless of worker interleaving, and memory
// stays O(workers · chunk), independent of n. An emit error aborts the
// run like a task error; tasks past the failed index may or may not
// have executed, but emit is never called again.
func MapOrdered[T any](p *Pool, n int, fn func(i int, a *Arena) (T, error), emit func(i int, v T) error) error {
	_, err := mapChunks(p, n, fn, emit)
	return err
}

// taskError tags an error with the index of the task that produced it so
// concurrent failures resolve deterministically to the lowest index.
type taskError struct {
	idx int
	err error
}

// mapChunks is the shared executor behind Map and MapOrdered.
func mapChunks[T any](p *Pool, n int, fn func(i int, a *Arena) (T, error), emit func(i int, v T) error) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	chunk := chunkFor(n, p.workers)
	nchunks := (n + chunk - 1) / chunk

	// Queue-depth accounting: all n tasks become pending now; each
	// executed task decrements, and tasks skipped by an abort are
	// reconciled at exit.
	p.pending.Add(int64(n))
	var executed atomic.Int64
	defer func() { p.pending.Add(executed.Load() - int64(n)) }()

	var (
		frontier atomic.Int64 // next chunk index to dispatch
		aborted  atomic.Bool
		errMu    sync.Mutex
		firstErr *taskError
	)
	fail := func(idx int, err error) {
		errMu.Lock()
		if firstErr == nil || idx < firstErr.idx {
			firstErr = &taskError{idx: idx, err: err}
		}
		errMu.Unlock()
		aborted.Store(true)
	}

	// The collector receives whole chunks and re-orders them; buffered a
	// little so workers rarely block on delivery.
	type chunkResult struct {
		idx    int // chunk index
		values []T
	}
	var (
		results chan chunkResult
		collWG  sync.WaitGroup
	)
	if emit != nil {
		results = make(chan chunkResult, p.workers*2)
		collWG.Add(1)
		go func() {
			defer collWG.Done()
			pending := make(map[int][]T, p.workers*2)
			next := 0
			for cr := range results {
				pending[cr.idx] = cr.values
				for vs, ok := pending[next]; ok; vs, ok = pending[next] {
					delete(pending, next)
					if !aborted.Load() {
						for j, v := range vs {
							i := next*chunk + j
							if err := emit(i, v); err != nil {
								fail(i, err)
								break
							}
						}
					}
					next++
				}
			}
		}()
	}

	nworkers := p.workers
	if nchunks < nworkers {
		nworkers = nchunks
	}
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(frontier.Add(1)) - 1
				if c >= nchunks || aborted.Load() {
					return
				}
				lo, hi := c*chunk, (c+1)*chunk
				if hi > n {
					hi = n
				}
				// Hold a worker slot (and its arena) only while actually
				// simulating, so concurrent Map calls interleave fairly.
				a := <-p.slots
				p.state[a.worker].Store(uint32(SlotBusy))
				var values []T
				if emit != nil {
					values = make([]T, 0, hi-lo)
				}
				for i := lo; i < hi; i++ {
					// A failure elsewhere aborts mid-chunk too: surface the
					// wind-down as Draining and skip the rest of the chunk.
					if i > lo && aborted.Load() {
						p.state[a.worker].Store(uint32(SlotDraining))
						break
					}
					p.started.Add(1)
					v, err := fn(i, a)
					p.done.Add(1)
					p.pending.Add(-1)
					executed.Add(1)
					if err != nil {
						fail(i, err)
						break
					}
					if emit != nil {
						values = append(values, v)
					}
				}
				p.state[a.worker].Store(uint32(SlotIdle))
				p.slots <- a
				if emit != nil {
					results <- chunkResult{idx: c, values: values}
				}
			}
		}()
	}
	wg.Wait()
	if emit != nil {
		close(results)
		collWG.Wait()
	}
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return 0, firstErr.err
	}
	return nchunks, nil
}
