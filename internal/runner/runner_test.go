package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	p := New(4)
	const n = 1000
	var counts [n]atomic.Int32
	err := p.Map(n, func(i int, a *Arena) error {
		if a == nil {
			return errors.New("nil arena")
		}
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	p := New(2)
	for _, n := range []int{0, -3} {
		called := false
		if err := p.Map(n, func(int, *Arena) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
		if called {
			t.Fatalf("fn called for n=%d", n)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	p := New(4)
	wantErr := errors.New("boom")
	err := p.Map(500, func(i int, a *Arena) error {
		if i == 17 || i == 400 {
			return fmt.Errorf("i=%d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "i=17") {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

func TestMapOrderedEmitsInOrder(t *testing.T) {
	p := New(8)
	const n = 777
	var got []int
	err := MapOrdered(p, n, func(i int, a *Arena) (int, error) {
		if i%7 == 0 { // stagger completion order
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		}
		return i * 3, nil
	}, func(i, v int) error {
		if v != i*3 {
			return fmt.Errorf("index %d: value %d", i, v)
		}
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission out of order at %d: got index %d", i, v)
		}
	}
}

func TestMapOrderedEmptyInput(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, -1} {
		err := MapOrdered(p, n, func(i int, a *Arena) (int, error) {
			t.Errorf("task ran for n=%d", n)
			return 0, nil
		}, func(i, v int) error {
			t.Errorf("emit called for n=%d", n)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestMapOrderedMoreWorkersThanItems covers dispatch when worker
// capacity exceeds the item count: most workers exit without ever
// drawing a chunk, and every chunk holds a single item.
func TestMapOrderedMoreWorkersThanItems(t *testing.T) {
	p := New(16)
	const n = 3
	var got []int
	err := MapOrdered(p, n, func(i int, a *Arena) (int, error) {
		return i * 10, nil
	}, func(i, v int) error {
		if v != i*10 {
			return fmt.Errorf("index %d: value %d", i, v)
		}
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission out of order at %d: got index %d", i, v)
		}
	}
}

// TestMapOrderedPartialLastChunk picks n so the chunk size exceeds the
// final chunk's item count (1601 items, chunk 50 ⇒ last chunk of 1):
// the hi-clamp must not emit phantom indices or drop the tail.
func TestMapOrderedPartialLastChunk(t *testing.T) {
	p := New(4)
	const n = 1601
	if c := chunkFor(n, p.Workers()); n%c == 0 {
		t.Fatalf("chunk %d divides %d; pick an n that leaves a partial chunk", c, n)
	}
	var next int
	err := MapOrdered(p, n, func(i int, a *Arena) (int, error) {
		return i, nil
	}, func(i, v int) error {
		if i != next || v != i {
			return fmt.Errorf("emit(%d, %d), want emit(%d, %d)", i, v, next, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("emitted %d of %d", next, n)
	}
}

func TestMapOrderedSingleWorker(t *testing.T) {
	p := New(1)
	const n = 200
	var inFlight, maxInFlight atomic.Int32
	var next int
	err := MapOrdered(p, n, func(i int, a *Arena) (int, error) {
		if c := inFlight.Add(1); c > maxInFlight.Load() {
			maxInFlight.Store(c)
		}
		defer inFlight.Add(-1)
		return i * 2, nil
	}, func(i, v int) error {
		if i != next || v != i*2 {
			return fmt.Errorf("emit(%d, %d), want emit(%d, %d)", i, v, next, 2*next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("emitted %d of %d", next, n)
	}
	if m := maxInFlight.Load(); m > 1 {
		t.Fatalf("single-worker pool ran %d tasks concurrently", m)
	}
}

func TestMapOrderedEmitErrorAborts(t *testing.T) {
	p := New(4)
	wantErr := errors.New("sink full")
	var emitted atomic.Int32
	err := MapOrdered(p, 400, func(i int, a *Arena) (int, error) {
		return i, nil
	}, func(i, v int) error {
		if emitted.Add(1) == 10 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestMapOrderedTaskErrorSkipsEmission(t *testing.T) {
	p := New(4)
	wantErr := errors.New("task died")
	var mu sync.Mutex
	seen := map[int]bool{}
	err := MapOrdered(p, 100, func(i int, a *Arena) (int, error) {
		if i == 50 {
			return 0, wantErr
		}
		return i, nil
	}, func(i, v int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[50] {
		t.Fatal("failed index was emitted")
	}
	for i := 51; i < 100; i++ {
		if seen[i] {
			t.Fatalf("index %d emitted after an earlier index failed (ordered emission must stop)", i)
		}
	}
}

// TestArenaReusedAcrossRuns proves workers actually recycle their arenas:
// across many tasks on a small pool, the set of distinct engines seen
// equals the worker count, and arena run counts sum to the task count.
func TestArenaReusedAcrossRuns(t *testing.T) {
	const workers, n = 3, 200
	p := New(workers)
	var mu sync.Mutex
	engines := map[any]bool{}
	err := p.Map(n, func(i int, a *Arena) error {
		e, _, _ := a.Acquire()
		mu.Lock()
		engines[e] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) > workers {
		t.Fatalf("saw %d distinct engines with %d workers — arenas not reused", len(engines), workers)
	}
	var runs uint64
	for _, a := range p.arenas() {
		runs += a.Runs()
	}
	if runs != n {
		t.Fatalf("arena run counts sum to %d, want %d", runs, n)
	}
}

// TestConcurrentMapsShareSlots runs two Maps on one pool at once; both
// must finish and each index run exactly once per Map.
func TestConcurrentMapsShareSlots(t *testing.T) {
	p := New(2)
	const n = 300
	var wg sync.WaitGroup
	errs := make([]error, 2)
	counts := [2][n]atomic.Int32{}
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			errs[m] = p.Map(n, func(i int, a *Arena) error {
				counts[m][i].Add(1)
				return nil
			})
		}(m)
	}
	wg.Wait()
	for m := 0; m < 2; m++ {
		if errs[m] != nil {
			t.Fatalf("map %d: %v", m, errs[m])
		}
		for i := 0; i < n; i++ {
			if c := counts[m][i].Load(); c != 1 {
				t.Fatalf("map %d index %d ran %d times", m, i, c)
			}
		}
	}
}

func TestWorkersDefaults(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d", w)
	}
	if w := New(-5).Workers(); w < 1 {
		t.Fatalf("Workers() = %d", w)
	}
	if Shared() != Shared() {
		t.Fatal("Shared() not a singleton")
	}
}

func TestChunkFor(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{0, 4, 1},
		{1, 4, 1},
		{32, 4, 1},
		{1600, 4, 50},
		{1 << 20, 4, 64}, // clamped
	}
	for _, c := range cases {
		if got := chunkFor(c.n, c.workers); got != c.want {
			t.Errorf("chunkFor(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Add(1)
	p.SetNote(func() string { return "x" })
	p.Finish()
	if p.Done() != 0 {
		t.Fatal("nil progress Done() != 0")
	}
}

func TestProgressCountsAndFinishes(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "test", "items", 10, 10*time.Millisecond)
	p.SetNote(func() string { return "note-text" })
	p.Add(4)
	p.Add(6)
	if p.Done() != 10 {
		t.Fatalf("Done() = %d", p.Done())
	}
	p.Finish()
	p.Finish() // idempotent
	out := buf.String()
	if !strings.Contains(out, "test: 10/10") || !strings.Contains(out, "note-text") {
		t.Fatalf("final line missing counts or note:\n%s", out)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
