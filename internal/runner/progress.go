package runner

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress reports completion, rate, and ETA for a long fan-out on an
// io.Writer (conventionally stderr), one line per interval:
//
//	fleet: 12480/100000 (12.5%) 857.3 hosts/s ETA 1m42s dedup 91.2% cache 0 hits, 312 misses
//
// Workers call Add as tasks finish; an optional note callback appends
// live counters (dedup rate, cache stats). All methods are safe on a
// nil *Progress, so call sites need no conditionals when reporting is
// disabled.
type Progress struct {
	w        io.Writer
	label    string
	unit     string
	total    int64
	done     atomic.Int64
	start    time.Time
	interval time.Duration

	mu   sync.Mutex
	note func() string

	stop     chan struct{}
	finished sync.Once
	wg       sync.WaitGroup
}

// NewProgress starts a reporter for total units of work, printing to w
// every interval (0 means one second). Call Finish when done.
func NewProgress(w io.Writer, label, unit string, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{
		w:        w,
		label:    label,
		unit:     unit,
		total:    int64(total),
		start:    time.Now(),
		interval: interval,
		stop:     make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.print(false)
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// SetNote registers a callback whose return value is appended to every
// progress line — live cache or dedup counters, typically.
func (p *Progress) SetNote(fn func() string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.note = fn
	p.mu.Unlock()
}

// Add records n completed units.
func (p *Progress) Add(n int) {
	if p == nil {
		return
	}
	p.done.Add(int64(n))
}

// Done returns how many units have completed so far.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

func (p *Progress) print(final bool) {
	done := p.done.Load()
	elapsed := time.Since(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	line := fmt.Sprintf("%s: %d/%d (%.1f%%) %.1f %s/s",
		p.label, done, p.total, 100*float64(done)/float64(max64(p.total, 1)), rate, p.unit)
	if final {
		line += fmt.Sprintf(" in %s", time.Since(p.start).Round(time.Millisecond))
	} else if rate > 0 && done < p.total {
		eta := time.Duration(float64(p.total-done) / rate * float64(time.Second))
		line += fmt.Sprintf(" ETA %s", eta.Round(time.Second))
	}
	p.mu.Lock()
	note := p.note
	p.mu.Unlock()
	if note != nil {
		if s := note(); s != "" {
			line += " " + s
		}
	}
	fmt.Fprintln(p.w, line)
}

// Finish stops the ticker and prints one final line with the total wall
// time. Safe to call more than once and on a nil *Progress.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.finished.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.print(true)
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
