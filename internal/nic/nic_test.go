package nic

import (
	"testing"

	"hic/internal/iommu"
	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/pcie"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// testPlanner cycles payload addresses through a per-queue region and
// keeps descriptor/completion/ack rings on fixed pages.
type testPlanner struct {
	regionBytes uint64
	offset      []uint64
}

func newTestPlanner(queues int, regionBytes uint64) *testPlanner {
	return &testPlanner{regionBytes: regionBytes, offset: make([]uint64, queues)}
}

func (p *testPlanner) base(queue int) uint64 { return uint64(queue+1) << 32 }

func (p *testPlanner) PlanRx(queue, payloadBytes int) (uint64, uint64, uint64) {
	base := p.base(queue)
	addr := base + p.offset[queue]
	p.offset[queue] = (p.offset[queue] + uint64(payloadBytes)) % p.regionBytes
	return addr, base + p.regionBytes, base + p.regionBytes + 4096
}

func (p *testPlanner) PlanTx(queue, payloadBytes int) (uint64, uint64) {
	return p.base(queue) + p.regionBytes + 8192, p.base(queue) + p.regionBytes + 8192 + 256
}

type rig struct {
	engine    *sim.Engine
	reg       *metrics.Registry
	memory    *mem.Controller
	mmu       *iommu.IOMMU
	link      *pcie.Link
	nic       *NIC
	planner   *testPlanner
	delivered []*pkt.Packet
}

func newRig(t testing.TB, nicCfg Config, iommuCfg iommu.Config) *rig {
	t.Helper()
	r := &rig{engine: sim.NewEngine(1), reg: metrics.NewRegistry()}
	var err error
	r.memory, err = mem.New(r.engine, r.reg, mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.mmu, err = iommu.New(r.engine, r.memory, r.reg, iommuCfg)
	if err != nil {
		t.Fatal(err)
	}
	r.link, err = pcie.New(r.engine, r.reg, pcie.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.planner = newTestPlanner(nicCfg.Queues, 12<<20)
	if iommuCfg.Enabled {
		for q := 0; q < nicCfg.Queues; q++ {
			base := r.planner.base(q)
			if err := r.mmu.MapRegion(base, 12<<20, iommu.Page2M); err != nil {
				t.Fatal(err)
			}
			if err := r.mmu.MapRegion(base+12<<20, 3*4096, iommu.Page4K); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.nic, err = New(r.engine, r.reg, r.link, r.mmu, r.memory, r.planner, nicCfg,
		func(p *pkt.Packet) { r.delivered = append(r.delivered, p) })
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func dataPacket(id uint64, queue int) *pkt.Packet {
	return pkt.NewData(id, uint32(queue), queue, id, 4096)
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BufferBytes = 0 },
		func(c *Config) { c.Queues = 0 },
		func(c *Config) { c.RingSize = 0 },
		func(c *Config) { c.DescriptorBytes = 0 },
		func(c *Config) { c.CompletionBytes = 0 },
		func(c *Config) { c.DriverReplenish = 0 },
		func(c *Config) { c.HostECNThreshold = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(2)
		mutate(&cfg)
		e := sim.NewEngine(1)
		reg := metrics.NewRegistry()
		mc, _ := mem.New(e, reg, mem.DefaultConfig())
		mmu, _ := iommu.New(e, mc, reg, iommu.Config{Enabled: false})
		link, _ := pcie.New(e, reg, pcie.DefaultConfig())
		if _, err := New(e, reg, link, mmu, mc, newTestPlanner(2, 1<<20), cfg, func(*pkt.Packet) {}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	r := newRig(t, DefaultConfig(2), iommu.Config{Enabled: false})
	p := dataPacket(1, 0)
	r.nic.Receive(p)
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if len(r.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(r.delivered))
	}
	if p.EchoHostDelay <= 0 {
		t.Error("host delay not stamped")
	}
	if p.EchoHostDelay > 10*sim.Microsecond {
		t.Errorf("idle DMA host delay = %v, want a few µs at most", p.EchoHostDelay)
	}
	if r.nic.BufferUsed() != 0 {
		t.Errorf("buffer not drained: %d bytes", r.nic.BufferUsed())
	}
	st := r.nic.Stats()
	if st.RxPackets != 1 || st.Drops != 0 || st.RxPayloadBytes != 4096 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.BufferBytes = 10000 // fits two 4452B packets, not three
	r := newRig(t, cfg, iommu.Config{Enabled: false})
	for i := 0; i < 3; i++ {
		r.nic.Receive(dataPacket(uint64(i), 0))
	}
	st := r.nic.Stats()
	if st.Drops != 1 {
		t.Fatalf("drops = %d, want 1 (tail drop when full)", st.Drops)
	}
	if st.RxPackets != 2 {
		t.Errorf("accepted = %d, want 2", st.RxPackets)
	}
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if len(r.delivered) != 2 {
		t.Errorf("delivered %d, want 2", len(r.delivered))
	}
}

func TestCreditsConservedAcrossBurst(t *testing.T) {
	r := newRig(t, DefaultConfig(4), iommu.Config{Enabled: false})
	for i := 0; i < 200; i++ {
		r.nic.Receive(dataPacket(uint64(i), i%4))
	}
	r.engine.Run(r.engine.Now().Add(10 * sim.Millisecond))
	if len(r.delivered) != 200 {
		t.Fatalf("delivered %d/200", len(r.delivered))
	}
	if got := r.link.CreditsAvailable(); got != pcie.DefaultConfig().CreditBytes {
		t.Errorf("credits leaked: %d free of %d", got, pcie.DefaultConfig().CreditBytes)
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	r := newRig(t, DefaultConfig(2), iommu.Config{Enabled: false})
	for i := 0; i < 50; i++ {
		r.nic.Receive(dataPacket(uint64(i), i%2))
	}
	r.engine.Run(r.engine.Now().Add(10 * sim.Millisecond))
	for i, p := range r.delivered {
		if p.ID != uint64(i) {
			t.Fatalf("delivery order violated at %d: got packet %d", i, p.ID)
		}
	}
}

func TestIOMMUOnRecordsMisses(t *testing.T) {
	r := newRig(t, DefaultConfig(2), iommu.DefaultConfig())
	for i := 0; i < 100; i++ {
		r.nic.Receive(dataPacket(uint64(i), i%2))
	}
	r.engine.Run(r.engine.Now().Add(10 * sim.Millisecond))
	if len(r.delivered) != 100 {
		t.Fatalf("delivered %d/100", len(r.delivered))
	}
	st := r.mmu.Stats()
	if st.Translations == 0 {
		t.Fatal("no translations with IOMMU on")
	}
	// Three translations per Rx packet: descriptor, payload, completion.
	if st.Translations < 300 {
		t.Errorf("translations = %d, want ≥300 for 100 packets", st.Translations)
	}
}

func TestIOMMUOnSlowerThanOff(t *testing.T) {
	run := func(cfg iommu.Config) sim.Duration {
		r := newRig(t, DefaultConfig(2), cfg)
		// 200 packets ≈ 890 KB: fits the 1 MB input buffer.
		for i := 0; i < 200; i++ {
			r.nic.Receive(dataPacket(uint64(i), i%2))
		}
		r.engine.Run(r.engine.Now().Add(100 * sim.Millisecond))
		if len(r.delivered) != 200 {
			t.Fatalf("delivered %d/200", len(r.delivered))
		}
		last := r.delivered[len(r.delivered)-1]
		return last.Delivered.Duration()
	}
	off := run(iommu.Config{Enabled: false})
	// Tiny IOTLB forces a miss on nearly every translation.
	small := iommu.DefaultConfig()
	small.TLBEntries = 8
	small.TLBWays = 8
	on := run(small)
	if on <= off {
		t.Errorf("IOMMU-on drain %v not slower than off %v", on, off)
	}
}

func TestDescriptorStallAndReplenish(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.RingSize = 4
	cfg.DriverReplenish = 10 * sim.Millisecond // effectively never during test
	r := newRig(t, cfg, iommu.Config{Enabled: false})
	for i := 0; i < 8; i++ {
		r.nic.Receive(dataPacket(uint64(i), 0))
	}
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if len(r.delivered) != 4 {
		t.Fatalf("delivered %d, want 4 (ring exhausted)", len(r.delivered))
	}
	if r.nic.Stats().DescriptorStalls == 0 {
		t.Error("no descriptor stall recorded")
	}
	r.nic.ReplenishDescriptors(0, 4)
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if len(r.delivered) != 8 {
		t.Errorf("delivered %d after replenish, want 8", len(r.delivered))
	}
}

func TestDriverTickUnblocksStall(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.RingSize = 2
	cfg.DriverReplenish = 50 * sim.Microsecond
	r := newRig(t, cfg, iommu.Config{Enabled: false})
	for i := 0; i < 6; i++ {
		r.nic.Receive(dataPacket(uint64(i), 0))
	}
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if len(r.delivered) != 6 {
		t.Errorf("driver tick did not unblock: delivered %d/6", len(r.delivered))
	}
}

func TestHostECNMarking(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.HostECNThreshold = 5000
	r := newRig(t, cfg, iommu.Config{Enabled: false})
	// First packets fill past the threshold; later arrivals get marked.
	var pkts []*pkt.Packet
	for i := 0; i < 10; i++ {
		p := dataPacket(uint64(i), 0)
		pkts = append(pkts, p)
		r.nic.Receive(p)
	}
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if pkts[0].HostECN {
		t.Error("first packet marked with empty buffer")
	}
	marked := 0
	for _, p := range pkts {
		if p.HostECN {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no packets marked above host-ECN threshold")
	}
}

func TestTransmitAckPath(t *testing.T) {
	r := newRig(t, DefaultConfig(2), iommu.DefaultConfig())
	data := dataPacket(1, 0)
	data.NICArrival = r.engine.Now()
	ack := pkt.NewAck(2, data)
	var onWireAt sim.Time
	r.nic.Transmit(ack, func(p *pkt.Packet) { onWireAt = r.engine.Now() })
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if onWireAt == 0 {
		t.Fatal("ack never left the NIC")
	}
	if r.nic.Stats().TxPackets != 1 {
		t.Error("tx packet not counted")
	}
	// With TxTranslation the ACK buffer translation must appear in the
	// IOMMU stats.
	if r.mmu.Stats().Translations == 0 {
		t.Error("ack transmit did not translate")
	}
}

func TestTxTranslationDisabled(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.TxTranslation = false
	r := newRig(t, cfg, iommu.DefaultConfig())
	ack := pkt.NewAck(1, dataPacket(0, 0))
	r.nic.Transmit(ack, func(*pkt.Packet) {})
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	if r.mmu.Stats().Translations != 0 {
		t.Error("TX translated despite TxTranslation=false")
	}
}

func TestThroughputCeilingNearPCIeGoodput(t *testing.T) {
	// Saturate the NIC from time zero and measure the drain rate with
	// IOMMU off: it should sit near the PCIe goodput ceiling, well above
	// the 92 Gbps the workload needs.
	r := newRig(t, DefaultConfig(8), iommu.Config{Enabled: false})
	const n = 2000
	injected := 0
	var tick func()
	tick = func() {
		// Keep the buffer topped up without overflowing it.
		for injected < n && r.nic.BufferUsed() < 512<<10 {
			r.nic.Receive(dataPacket(uint64(injected), injected%8))
			injected++
		}
		if injected < n {
			r.engine.After(5*sim.Microsecond, tick)
		}
	}
	tick()
	r.engine.Run(r.engine.Now().Add(100 * sim.Millisecond))
	if len(r.delivered) != n {
		t.Fatalf("delivered %d/%d", len(r.delivered), n)
	}
	last := r.delivered[n-1].Delivered
	gbps := float64(n*4096*8) / float64(last)
	if gbps < 95 {
		t.Errorf("IOMMU-off NIC-to-memory rate = %.1f Gbps, want ≥95 (near PCIe goodput)", gbps)
	}
	if gbps > 115 {
		t.Errorf("NIC-to-memory rate = %.1f Gbps exceeds PCIe goodput", gbps)
	}
}

func BenchmarkNICPacketPath(b *testing.B) {
	r := newRig(b, DefaultConfig(8), iommu.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.nic.BufferUsed() < 512<<10 {
			r.nic.Receive(dataPacket(uint64(i), i%8))
		}
		if i%256 == 0 {
			r.engine.Run(r.engine.Now().Add(sim.Millisecond))
		}
	}
	r.engine.Run(r.engine.Now().Add(100 * sim.Millisecond))
}

func TestPerQueueBuffersIsolateOverflow(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.BufferBytes = 40000 // 10000 per queue when partitioned
	cfg.PerQueueBuffers = true
	r := newRig(t, cfg, iommu.Config{Enabled: false})
	// Flood queue 0 far past its slice; send two packets to queue 1.
	for i := 0; i < 20; i++ {
		r.nic.Receive(dataPacket(uint64(i), 0))
	}
	q1a := dataPacket(100, 1)
	q1b := dataPacket(101, 1)
	r.nic.Receive(q1a)
	r.nic.Receive(q1b)
	st := r.nic.Stats()
	if st.Drops == 0 {
		t.Fatal("queue 0 flood did not overflow its slice")
	}
	byFlow := r.nic.DropsByFlow()
	if byFlow[1] != 0 {
		t.Errorf("queue 1 lost %d packets despite partitioning", byFlow[1])
	}
	r.engine.Run(r.engine.Now().Add(10 * sim.Millisecond))
	// Both queue-1 packets delivered.
	delivered := 0
	for _, p := range r.delivered {
		if p.Queue == 1 {
			delivered++
		}
	}
	if delivered != 2 {
		t.Errorf("queue-1 deliveries = %d, want 2", delivered)
	}
}

func TestPerQueueRoundRobinSkipsStarvedQueue(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PerQueueBuffers = true
	cfg.RingSize = 4
	cfg.DriverReplenish = 10 * sim.Millisecond
	r := newRig(t, cfg, iommu.Config{Enabled: false})
	// Exhaust queue 0's descriptors, then feed queue 1: queue 1 must
	// proceed (no cross-queue head-of-line blocking).
	for i := 0; i < 8; i++ {
		r.nic.Receive(dataPacket(uint64(i), 0))
	}
	for i := 8; i < 12; i++ {
		r.nic.Receive(dataPacket(uint64(i), 1))
	}
	r.engine.Run(r.engine.Now().Add(sim.Millisecond))
	q1 := 0
	for _, p := range r.delivered {
		if p.Queue == 1 {
			q1++
		}
	}
	if q1 != 4 {
		t.Errorf("queue 1 delivered %d/4 behind a descriptor-starved queue 0", q1)
	}
}
