// Package nic models the receiver-side NIC of Figure 2 in the paper: a
// small SRAM input buffer that tail-drops when full, per-queue Rx
// descriptor rings replenished by the driver, and a DMA engine that moves
// each packet to host memory through the PCIe link (credit flow control),
// the IOMMU (address translation), and the memory controller.
//
// The input buffer is shared across all flows — exactly why the paper uses
// the drop rate as a proxy for isolation violations — and is drained in
// FIFO order. A packet leaves the buffer once its TLPs have been accepted
// by the root complex; the posted-write credits it holds are returned only
// when the memory write completes, so downstream latency (IOTLB walks,
// loaded DRAM) backpressures the buffer exactly as §2 step 6 describes.
package nic

import (
	"fmt"

	"hic/internal/iommu"
	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/pcie"
	"hic/internal/pkt"
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// Planner supplies DMA target addresses. The host wires this to the
// per-thread Rx memory regions registered with the IOMMU; the NIC itself
// is address-agnostic.
type Planner interface {
	// PlanRx returns the payload, descriptor-ring and completion-ring
	// addresses for the next received packet on the given queue.
	PlanRx(queue, payloadBytes int) (payload, descriptor, completion uint64)
	// PlanTx returns the TX descriptor-ring and buffer addresses for an
	// outgoing packet (ACKs).
	PlanTx(queue, payloadBytes int) (descriptor, buffer uint64)
}

// Config sizes the NIC. Defaults mirror the paper's testbed: ~1 MB of
// input buffer (the source of the ≈90 µs drain horizon at line rate).
type Config struct {
	// BufferBytes is the shared SRAM input buffer capacity.
	BufferBytes int
	// Queues is the number of Rx queues (one per receiver thread).
	Queues int
	// RingSize is the descriptor count per Rx queue.
	RingSize int
	// DescriptorBytes / CompletionBytes are the per-packet metadata DMA
	// sizes (one cache line each).
	DescriptorBytes int
	CompletionBytes int
	// DriverReplenish is the period of the driver's descriptor top-up.
	DriverReplenish sim.Duration
	// TxTranslation controls whether outgoing packets (ACKs) translate
	// their buffer address through the IOMMU — the paper's footnote 3
	// counts the ACK among the up-to-6 translations per packet.
	TxTranslation bool
	// HostECNThreshold, if positive, sets HostECN on packets admitted
	// while buffer occupancy exceeds this many bytes (§4 sub-RTT
	// congestion-signal extension). Zero disables it.
	HostECNThreshold int
	// PerQueueBuffers partitions the input buffer into Queues equal
	// slices with round-robin DMA service — a "rethinking host
	// architecture" ablation: partitioning trades buffering efficiency
	// for isolation (an overloaded queue can no longer drop other
	// queues' packets) and removes cross-queue head-of-line blocking.
	// The paper's shared-SRAM NIC is the false default.
	PerQueueBuffers bool
}

// DefaultConfig returns the testbed NIC configuration for the given
// number of queues.
func DefaultConfig(queues int) Config {
	return Config{
		BufferBytes:     1 << 20,
		Queues:          queues,
		RingSize:        256,
		DescriptorBytes: 64,
		CompletionBytes: 64,
		DriverReplenish: 50 * sim.Microsecond,
		TxTranslation:   true,
	}
}

func (c Config) validate() error {
	if c.BufferBytes <= 0 {
		return fmt.Errorf("nic: BufferBytes must be positive")
	}
	if c.Queues <= 0 {
		return fmt.Errorf("nic: Queues must be positive")
	}
	if c.RingSize <= 0 {
		return fmt.Errorf("nic: RingSize must be positive")
	}
	if c.DescriptorBytes <= 0 || c.CompletionBytes <= 0 {
		return fmt.Errorf("nic: descriptor/completion bytes must be positive")
	}
	if c.DriverReplenish <= 0 {
		return fmt.Errorf("nic: DriverReplenish must be positive")
	}
	if c.HostECNThreshold < 0 {
		return fmt.Errorf("nic: negative HostECNThreshold")
	}
	return nil
}

// NIC is the receiver-side NIC.
type NIC struct {
	engine  *sim.Engine
	link    *pcie.Link
	mmu     *iommu.IOMMU
	memory  *mem.Controller
	planner Planner
	cfg     Config
	deliver func(*pkt.Packet)

	// buffers[0] is the single shared FIFO; with PerQueueBuffers there
	// is one FIFO per queue, each owning BufferBytes/Queues of SRAM.
	buffers     [][]*pkt.Packet
	bufUsed     []int
	bufCap      int // capacity per buffer
	rrNext      int // round-robin cursor for partitioned service
	bufferUsed  int // total, across partitions
	dropsByFlow map[uint32]uint64
	tap         func(*pkt.Packet) // capture hook, sees every arrival
	tracer      *telemetry.Tracer // head-based span sampling (nil = off)
	ledger      *telemetry.DropLedger
	pool        *pkt.Pool // packet free list; tail drops release here
	pumping     bool
	stalled     bool // every serviceable buffer blocked on descriptors

	descriptors []int // available descriptors per queue

	txBusyUntil sim.Time

	rxPackets  *metrics.Counter
	rxBytes    *metrics.Counter
	rxPayload  *metrics.Counter
	drops      *metrics.Counter
	dropBytes  *metrics.Counter
	descStalls *metrics.Counter
	txPackets  *metrics.Counter
	bufferGa   *metrics.Gauge
	hostDelay  *metrics.Histogram // ns, NIC arrival → delivery
	dmaLatency *metrics.Histogram // ns, DMA start → credit release
	missesHist *metrics.Histogram // IOTLB misses per packet (Rx chain)
	// Per-stage DMA latency decomposition: the empirical version of the
	// paper's T_base + M·T_miss split.
	stageWait  *metrics.Histogram // ns, buffer head → credits granted
	stageLink  *metrics.Histogram // ns, link serialization (incl. queueing)
	stageXlate *metrics.Histogram // ns, address translations (walks)
	stageMem   *metrics.Histogram // ns, memory writes + descriptor read
	stageRC    *metrics.Histogram // ns, root-complex pipeline
}

// New constructs the NIC. deliver is invoked when a packet's DMA
// completes and it is visible to host software.
func New(engine *sim.Engine, reg *metrics.Registry, link *pcie.Link, mmu *iommu.IOMMU,
	memory *mem.Controller, planner Planner, cfg Config, deliver func(*pkt.Packet)) (*NIC, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if planner == nil || deliver == nil {
		return nil, fmt.Errorf("nic: planner and deliver are required")
	}
	n := &NIC{
		engine:      engine,
		link:        link,
		mmu:         mmu,
		memory:      memory,
		planner:     planner,
		cfg:         cfg,
		deliver:     deliver,
		descriptors: make([]int, cfg.Queues),
		dropsByFlow: make(map[uint32]uint64),
		rxPackets:   reg.Counter("nic.rx.packets"),
		rxBytes:     reg.Counter("nic.rx.bytes"),
		rxPayload:   reg.Counter("nic.rx.payload.bytes"),
		drops:       reg.Counter("nic.rx.drops"),
		dropBytes:   reg.Counter("nic.rx.drop.bytes"),
		descStalls:  reg.Counter("nic.rx.descriptor.stalls"),
		txPackets:   reg.Counter("nic.tx.packets"),
		bufferGa:    reg.Gauge("nic.buffer.bytes"),
		hostDelay:   reg.Histogram("nic.host.delay.ns"),
		dmaLatency:  reg.Histogram("nic.dma.latency.ns"),
		missesHist:  reg.Histogram("nic.iotlb.misses.per.packet"),
		stageWait:   reg.Histogram("nic.dma.stage.creditwait.ns"),
		stageLink:   reg.Histogram("nic.dma.stage.link.ns"),
		stageXlate:  reg.Histogram("nic.dma.stage.translate.ns"),
		stageMem:    reg.Histogram("nic.dma.stage.memory.ns"),
		stageRC:     reg.Histogram("nic.dma.stage.rootcomplex.ns"),
	}
	for q := range n.descriptors {
		n.descriptors[q] = cfg.RingSize
	}
	if cfg.PerQueueBuffers {
		n.buffers = make([][]*pkt.Packet, cfg.Queues)
		n.bufUsed = make([]int, cfg.Queues)
		n.bufCap = cfg.BufferBytes / cfg.Queues
	} else {
		n.buffers = make([][]*pkt.Packet, 1)
		n.bufUsed = make([]int, 1)
		n.bufCap = cfg.BufferBytes
	}
	engine.Every(cfg.DriverReplenish, n.driverTick)
	return n, nil
}

// driverTick is the periodic driver pass that tops descriptor rings up,
// modelling the "driver periodically replenishes these descriptors" step.
func (n *NIC) driverTick() {
	for q := range n.descriptors {
		n.descriptors[q] = n.cfg.RingSize
	}
	if n.stalled {
		n.stalled = false
		n.pump()
	}
}

// Receive accepts a packet from the access link. If the shared input
// buffer cannot hold it, the packet is tail-dropped — host congestion
// becoming packet loss.
func (n *NIC) Receive(p *pkt.Packet) {
	if p.Queue < 0 || p.Queue >= n.cfg.Queues {
		panic(fmt.Sprintf("nic: packet for queue %d with %d queues", p.Queue, n.cfg.Queues))
	}
	// Every packet that reaches the NIC gets its arrival stamp — drops
	// included — before the capture tap sees it.
	p.NICArrival = n.engine.Now()
	if n.tap != nil {
		n.tap(p)
	}
	b := 0
	if n.cfg.PerQueueBuffers {
		b = p.Queue
	}
	if n.bufUsed[b]+p.WireBytes > n.bufCap {
		n.drops.Inc()
		n.dropBytes.Add(uint64(p.WireBytes))
		n.dropsByFlow[p.Flow]++
		if n.ledger != nil {
			// Attribute the drop to its root cause using the pipeline
			// state active right now (§3's causal question).
			n.ledger.Record(p.NICArrival, p.Flow, p.Queue)
		}
		// A tail drop is where this packet dies; the NIC owns it here.
		n.pool.Release(p)
		return
	}
	if n.cfg.HostECNThreshold > 0 && n.bufferUsed >= n.cfg.HostECNThreshold {
		p.HostECN = true
	}
	n.buffers[b] = append(n.buffers[b], p)
	n.bufUsed[b] += p.WireBytes
	n.bufferUsed += p.WireBytes
	n.bufferGa.Set(int64(n.bufferUsed))
	n.rxPackets.Inc()
	n.rxBytes.Add(uint64(p.WireBytes))
	if n.tracer != nil {
		p.Span = n.tracer.MaybeStart(p.ID, p.Flow, p.Queue, p.Seq, p.NICArrival,
			telemetry.Attr{Key: "buffer_bytes", Value: float64(n.bufferUsed)},
			telemetry.Attr{Key: "wire_bytes", Value: float64(p.WireBytes)})
	}
	n.pump()
}

// selectBuffer picks the next buffer to service. The shared buffer is
// strict FIFO (and head-of-line blocks on a missing descriptor, as a
// single SRAM queue must); partitioned buffers are served round-robin
// and a descriptor-starved queue is skipped rather than blocking others.
func (n *NIC) selectBuffer() int {
	if !n.cfg.PerQueueBuffers {
		if len(n.buffers[0]) == 0 {
			return -1
		}
		if n.descriptors[n.buffers[0][0].Queue] == 0 {
			n.descStalls.Inc()
			n.stalled = true
			return -1
		}
		return 0
	}
	nonEmpty := false
	for i := 0; i < len(n.buffers); i++ {
		b := (n.rrNext + i) % len(n.buffers)
		if len(n.buffers[b]) == 0 {
			continue
		}
		nonEmpty = true
		if n.descriptors[n.buffers[b][0].Queue] == 0 {
			n.descStalls.Inc()
			continue
		}
		n.rrNext = (b + 1) % len(n.buffers)
		return b
	}
	if nonEmpty {
		n.stalled = true // every backlogged queue lacks descriptors
	}
	return -1
}

// pump starts the DMA for the next packet when a descriptor and PCIe
// credits are available. Only one packet is between "head of buffer" and
// "TLPs on the link" at a time; the link itself serializes transfers and
// the credit pool bounds how many writes are outstanding downstream.
func (n *NIC) pump() {
	if n.pumping || n.stalled {
		return
	}
	b := n.selectBuffer()
	if b < 0 {
		return
	}
	head := n.buffers[b][0]
	n.descriptors[head.Queue]--
	n.pumping = true
	wire := n.link.Config().WireBytes(head.PayloadBytes + n.cfg.CompletionBytes)
	pumpStart := n.engine.Now()
	if head.Span != nil {
		head.Span.Advance(telemetry.StageNICBuffer, pumpStart)
	}
	n.link.AcquireCredits(wire, func() {
		dmaStart := n.engine.Now()
		n.stageWait.Observe(float64(dmaStart.Sub(pumpStart)))
		if head.Span != nil {
			head.Span.Advance(telemetry.StageCreditWait, dmaStart,
				telemetry.Attr{Key: "credit_bytes", Value: float64(wire)},
				telemetry.Attr{Key: "credits_free", Value: float64(n.link.CreditsAvailable())})
		}
		n.link.Transmit(head.PayloadBytes, func() {
			n.stageLink.Observe(float64(n.engine.Now().Sub(dmaStart)))
			if head.Span != nil {
				head.Span.Advance(telemetry.StageLink, n.engine.Now())
			}
			// TLPs accepted by the root complex: the packet no longer
			// occupies NIC SRAM; continue the downstream write chain.
			n.buffers[b] = n.buffers[b][1:]
			n.bufUsed[b] -= head.WireBytes
			n.bufferUsed -= head.WireBytes
			n.bufferGa.Set(int64(n.bufferUsed))
			n.pumping = false
			n.rootComplexChain(head, wire, dmaStart)
			n.pump()
		})
	})
}

// rootComplexChain performs the per-packet work downstream of the link:
// descriptor fetch, payload write, completion write — each preceded by an
// IOMMU translation — plus the root complex's fixed pipeline latency.
// Credits are released only at the end (step 6 of the paper's datapath).
func (n *NIC) rootComplexChain(p *pkt.Packet, creditBytes int, dmaStart sim.Time) {
	payloadAddr, descAddr, complAddr := n.planner.PlanRx(p.Queue, p.PayloadBytes)
	misses := 0
	var xlateNs, memNs float64
	stageStart := n.engine.Now()
	span := p.Span

	finish := func() {
		n.stageXlate.Observe(xlateNs)
		n.stageMem.Observe(memNs)
		rcStart := n.engine.Now()
		n.engine.After(n.link.Config().RootComplexLatency, func() {
			n.stageRC.Observe(float64(n.engine.Now().Sub(rcStart)))
			n.link.ReleaseCredits(creditBytes)
			n.missesHist.Observe(float64(misses))
			n.dmaLatency.Observe(float64(n.engine.Now().Sub(dmaStart)))
			p.Delivered = n.engine.Now()
			p.EchoHostDelay = p.Delivered.Sub(p.NICArrival)
			if span != nil {
				span.Advance(telemetry.StageRootComplex, p.Delivered,
					telemetry.Attr{Key: "credit_hold_ns", Value: float64(p.Delivered.Sub(dmaStart))},
					telemetry.Attr{Key: "iotlb_misses", Value: float64(misses)})
			}
			n.rxPayload.Add(uint64(p.PayloadBytes))
			n.hostDelay.Observe(float64(p.EchoHostDelay))
			n.deliver(p)
		})
	}

	step := func(acc *float64) {
		now := n.engine.Now()
		*acc += float64(now.Sub(stageStart))
		stageStart = now
	}
	// xlate/memOp wrap one link in the translate → access chain, folding
	// the elapsed time into the per-stage histograms and — for sampled
	// packets — recording a span stage with its local annotations
	// (miss/walk counts for translations; the load factor and FIFO
	// backlog seen at issue time for memory accesses).
	xlate := func(r iommu.TranslationResult) {
		n.countFault(r)
		misses += r.Misses
		step(&xlateNs)
		if span != nil {
			span.Advance(telemetry.StageTranslate, n.engine.Now(),
				telemetry.Attr{Key: "misses", Value: float64(r.Misses)},
				telemetry.Attr{Key: "walk_reads", Value: float64(r.WalkAccesses)},
				telemetry.Attr{Key: "pages", Value: float64(r.Pages)})
		}
	}
	memOp := func(access func(int, func()), bytes int, cont func()) {
		var lf, qd float64
		if span != nil {
			lf = n.memory.LoadFactor()
			qd = float64(n.memory.QueueDelay())
		}
		access(bytes, func() {
			step(&memNs)
			if span != nil {
				span.Advance(telemetry.StageMemory, n.engine.Now(),
					telemetry.Attr{Key: "load_factor", Value: lf},
					telemetry.Attr{Key: "queue_wait_ns", Value: qd},
					telemetry.Attr{Key: "bytes", Value: float64(bytes)})
			}
			cont()
		})
	}

	n.mmu.Translate(descAddr, n.cfg.DescriptorBytes, func(r iommu.TranslationResult) {
		xlate(r)
		memOp(n.memory.Read, n.cfg.DescriptorBytes, func() {
			n.mmu.Translate(payloadAddr, p.PayloadBytes, func(r iommu.TranslationResult) {
				xlate(r)
				memOp(n.memory.Write, p.PayloadBytes, func() {
					n.mmu.Translate(complAddr, n.cfg.CompletionBytes, func(r iommu.TranslationResult) {
						xlate(r)
						memOp(n.memory.Write, n.cfg.CompletionBytes, finish)
					})
				})
			})
		})
	})
}

func (n *NIC) countFault(r iommu.TranslationResult) {
	if r.Fault != nil {
		// Loose-mode registration makes faults impossible in the
		// experiments; a fault here is a wiring bug, so fail loudly.
		panic(r.Fault)
	}
}

// Transmit sends an outgoing packet (ACKs in the receive-side workload).
// The TX path fetches the packet from host memory — translating through
// the IOMMU when TxTranslation is set, which is how ACK traffic competes
// for the same IOTLB — and serializes it on the TX side of the link.
// onWire is invoked when the packet has left the NIC.
func (n *NIC) Transmit(p *pkt.Packet, onWire func(*pkt.Packet)) {
	descAddr, addr := n.planner.PlanTx(p.Queue, p.WireBytes)
	afterFetch := func() {
		n.memory.Read(p.WireBytes, func() {
			// TX serialization on the NIC's egress (same raw rate).
			rate := n.link.Config().RawBandwidth()
			start := n.txBusyUntil
			if now := n.engine.Now(); start < now {
				start = now
			}
			finish := start.Add(rate.TransmitTime(p.WireBytes))
			n.txBusyUntil = finish
			n.engine.At(finish, func() {
				n.txPackets.Inc()
				onWire(p)
			})
		})
	}
	if n.cfg.TxTranslation {
		// TX fetches its descriptor and the packet buffer, each through
		// the IOMMU — the ACK-side translations of the paper's footnote 3.
		n.mmu.Translate(descAddr, n.cfg.DescriptorBytes, func(r iommu.TranslationResult) {
			n.countFault(r)
			n.mmu.Translate(addr, p.WireBytes, func(r iommu.TranslationResult) {
				n.countFault(r)
				afterFetch()
			})
		})
	} else {
		afterFetch()
	}
}

// ReplenishDescriptors returns count descriptors to a queue's ring; the
// receive path calls this as host software consumes packets.
func (n *NIC) ReplenishDescriptors(queue, count int) {
	if queue < 0 || queue >= n.cfg.Queues || count < 0 {
		panic("nic: bad descriptor replenish")
	}
	n.descriptors[queue] += count
	if n.descriptors[queue] > n.cfg.RingSize {
		n.descriptors[queue] = n.cfg.RingSize
	}
	if n.stalled {
		n.stalled = false
		n.pump()
	}
}

// SetPool installs the run's packet free list; the NIC releases packets
// it tail-drops (the only point in the Rx datapath where a packet dies
// inside the NIC — delivered packets are released downstream, after the
// application consumes them). Nil disables releasing.
func (n *NIC) SetPool(pool *pkt.Pool) { n.pool = pool }

// SetTap installs a capture hook invoked for every arriving packet
// (including ones that will be dropped), before admission. Pass nil to
// remove it.
func (n *NIC) SetTap(tap func(*pkt.Packet)) { n.tap = tap }

// SetTelemetry installs the span tracer (head-based sampling at
// admission) and the drop-attribution ledger (consulted on every
// tail-drop). Either may be nil to disable that half; install before
// traffic starts so sampling decisions stay aligned with packet order.
func (n *NIC) SetTelemetry(tr *telemetry.Tracer, led *telemetry.DropLedger) {
	n.tracer = tr
	n.ledger = led
}

// DropsByFlow returns a copy of the per-flow drop counts — the paper
// uses drop rate as a proxy for isolation violations precisely because
// the shared input buffer spreads drops across every flow.
func (n *NIC) DropsByFlow() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(n.dropsByFlow))
	for f, c := range n.dropsByFlow {
		out[f] = c
	}
	return out
}

// BufferUsed returns the current input-buffer occupancy in bytes.
func (n *NIC) BufferUsed() int { return n.bufferUsed }

// WarmState is the NIC's contribution to a steady-state checkpoint.
// Buffered packets are live pkt.Packet objects and cannot be fabricated
// into a fresh run, so occupancy is record-only — it documents how full
// the donor's buffer ran (useful for checkpoint provenance) and
// re-establishes itself within a few RTTs of the warm guard window. The
// round-robin service cursor is the one piece that is restored.
type WarmState struct {
	BufferBytes int `json:"buffer_bytes"`
	RRNext      int `json:"rr_next"`
}

// WarmState captures the NIC's datapath occupancy for a checkpoint.
func (n *NIC) WarmState() WarmState {
	return WarmState{BufferBytes: n.bufferUsed, RRNext: n.rrNext}
}

// Prime restores the restorable part of a donor WarmState (the
// round-robin cursor) before the warm-started run begins.
func (n *NIC) Prime(ws WarmState) {
	if len(n.buffers) > 0 && ws.RRNext >= 0 {
		n.rrNext = ws.RRNext % len(n.buffers)
	}
}

// Drops returns the cumulative tail-drop count — Stats().Drops without
// assembling the full snapshot, for callers (the observatory sampler)
// that poll it every few sim-microseconds.
func (n *NIC) Drops() uint64 { return n.drops.Value() }

// Stats is a snapshot of NIC activity.
type Stats struct {
	RxPackets        uint64
	RxBytes          uint64
	RxPayloadBytes   uint64
	Drops            uint64
	DropBytes        uint64
	DescriptorStalls uint64
	TxPackets        uint64
}

// Stats returns current counters.
func (n *NIC) Stats() Stats {
	return Stats{
		RxPackets:        n.rxPackets.Value(),
		RxBytes:          n.rxBytes.Value(),
		RxPayloadBytes:   n.rxPayload.Value(),
		Drops:            n.drops.Value(),
		DropBytes:        n.dropBytes.Value(),
		DescriptorStalls: n.descStalls.Value(),
		TxPackets:        n.txPackets.Value(),
	}
}
