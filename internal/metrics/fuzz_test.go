package metrics

import (
	"math"
	"testing"
)

// FuzzHistogram checks quantile sanity on arbitrary observations: the
// histogram must never panic, quantiles must be monotone, and bucket
// lower bounds must never exceed the recorded maximum.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		h := NewHistogram(16)
		for i := 0; i+1 < len(raw); i += 2 {
			v := float64(uint16(raw[i])<<8|uint16(raw[i+1])) * 37.5
			h.Observe(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("quantiles not monotone at %v", q)
			}
			prev = v
		}
		if h.Count() > 0 && h.Quantile(0.5) > h.Max() {
			t.Fatal("median above max")
		}
	})
}
