package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after Reset = %d", c.Value())
	}
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(10)
	g.Add(-12)
	if g.Value() != 3 {
		t.Errorf("Value = %d, want 3", g.Value())
	}
	if g.Max() != 15 {
		t.Errorf("Max = %d, want 15", g.Max())
	}
	g.Reset()
	if g.Value() != 3 {
		t.Errorf("Reset cleared current value: %d", g.Value())
	}
	if g.Max() != 3 {
		t.Errorf("Max after Reset = %d, want current value 3", g.Max())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(16)
	for _, v := range []float64{10, 20, 30, 40, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Errorf("Mean = %v, want 30", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Errorf("Min/Max = %v/%v, want 10/50", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(16)
	// 1..10000 uniformly.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := q * 10000
		// Log-linear with 16 sub-buckets: ≤ ~6.25% relative error,
		// plus one-bucket rank slack at the extremes.
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("Quantile(%v) = %v, want ~%v", q, got, want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(7)
	if h.Quantile(1) != 7 {
		t.Errorf("single-value histogram q1 = %v, want 7", h.Quantile(1))
	}
	if q0 := h.Quantile(0); q0 > 7 || q0 < 6 {
		t.Errorf("single-value histogram q0 = %v, want bucket lower bound near 7", q0)
	}
}

func TestHistogramNegativeAndNaNClamped(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 0 {
		t.Errorf("Max = %v, want 0 (clamped)", h.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(100)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear state")
	}
	h.Observe(5)
	if h.Count() != 1 || h.Min() != 5 {
		t.Error("histogram unusable after Reset")
	}
}

// Property: for any set of observations, bucketLow(bucketIndex(v)) <= v and
// the quantile function is monotone.
func TestHistogramProperties(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram(16)
		for _, r := range raw {
			h.Observe(float64(r % 1_000_000))
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	h := NewHistogram(16)
	for _, v := range []float64{0, 1, 1.5, 2, 3, 100, 1e6, 123456.78} {
		idx := h.bucketIndex(v)
		low := h.bucketLow(idx)
		if low > v {
			t.Errorf("bucketLow(%d)=%v exceeds value %v", idx, low, v)
		}
		if idx > 0 {
			next := h.bucketLow(idx + 1)
			if next <= v && idx != h.bucketIndex(next)-0 && next < v {
				t.Errorf("value %v should be below next bucket bound %v", v, next)
			}
		}
	}
}

func TestSeriesBinning(t *testing.T) {
	s := NewSeries(10)
	s.Observe(0, 1)
	s.Observe(9.99, 2)
	s.Observe(10, 4)
	s.Observe(35, 8)
	bins := s.Bins()
	want := []float64{3, 4, 0, 8}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v, want %v", bins, want)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if s.BinWidth() != 10 {
		t.Errorf("BinWidth = %v", s.BinWidth())
	}
}

func TestSeriesNegativeTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative time did not panic")
		}
	}()
	NewSeries(1).Observe(-1, 1)
}

func TestRegistryReuseAndDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("nic.rx.drops").Add(3)
	if r.Counter("nic.rx.drops").Value() != 3 {
		t.Error("Counter did not return the same instance")
	}
	r.Gauge("nic.buffer.bytes").Set(1024)
	r.Histogram("host.delay.us").Observe(95)
	dump := r.Dump()
	for _, want := range []string{"nic.rx.drops", "nic.buffer.bytes", "host.delay.us", "3", "1024"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
	// Dump must be sorted for stable diffing.
	lines := strings.Split(strings.TrimSpace(dump), "\n")
	var names []string
	for _, l := range lines {
		names = append(names, strings.Fields(l)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Dump lines not sorted: %v", names)
	}
}

func TestRegistryResetAll(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(5)
	r.Gauge("b").Set(7)
	r.Histogram("c").Observe(1)
	r.ResetAll()
	if r.Counter("a").Value() != 0 {
		t.Error("counter not reset")
	}
	if r.Gauge("b").Value() != 7 {
		t.Error("gauge current value should survive reset")
	}
	if r.Histogram("c").Count() != 0 {
		t.Error("histogram not reset")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100000) + 1)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(11)
	g := r.Gauge("g")
	g.Set(9)
	g.Set(4) // max stays 9
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	s := r.Snapshot()
	if s.Counters["c"] != 11 {
		t.Errorf("counter = %d, want 11", s.Counters["c"])
	}
	if gs := s.Gauges["g"]; gs.Value != 4 || gs.Max != 9 {
		t.Errorf("gauge = %+v, want value 4 max 9", gs)
	}
	hs := s.Histograms["h"]
	if hs.Count != 100 {
		t.Errorf("histogram count = %d, want 100", hs.Count)
	}
	if hs.Sum != 5050 {
		t.Errorf("histogram sum = %v, want 5050", hs.Sum)
	}
	if hs.Min != h.Min() || hs.Max != h.Max() || hs.P50 != h.Quantile(0.5) {
		t.Error("snapshot quantiles disagree with the live histogram")
	}

	// The snapshot is a copy: mutating the registry afterwards must not
	// change it.
	r.Counter("c").Add(100)
	if s.Counters["c"] != 11 {
		t.Error("snapshot counter changed after registry mutation")
	}
}
