// Package metrics provides the measurement primitives used across the
// simulator: counters, gauges, log-linear latency histograms with quantile
// estimation, time-binned series, and a registry that renders a plain-text
// dump. All types are plain (non-atomic) because each simulation runs on a
// single goroutine; experiment sweeps keep one registry per run.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count of events or bytes.
type Counter struct {
	v uint64
}

// Add increases the counter by n. The argument is unsigned because
// counters are monotonic by definition; a delta that would need to be
// negative always indicates a bug at the call site.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Reset zeroes the counter, used at the warmup/measurement boundary.
// Note the deliberate asymmetry with Gauge.Reset: a counter is a
// cumulative event count, so the measurement window starts it from zero,
// whereas a gauge is instantaneous state that must survive the boundary.
func (c *Counter) Reset() { c.v = 0 }

// Gauge is an instantaneous value (queue depth, credits available). It
// additionally tracks the maximum observed value since the last reset.
type Gauge struct {
	v   int64
	max int64
}

// Set assigns the gauge.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the gauge by delta, which may be negative.
func (g *Gauge) Add(delta int64) { g.Set(g.v + delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the maximum value observed since the last Reset.
func (g *Gauge) Max() int64 { return g.max }

// Reset clears the maximum tracker but preserves the current value —
// the counterpart of Counter.Reset's zeroing. A gauge models
// instantaneous physical state (buffer occupancy, credits in flight)
// that does not vanish when the measurement window opens; only the
// max-since-reset statistic is scoped to the window.
func (g *Gauge) Reset() { g.max = g.v }

// Histogram records a distribution of non-negative values with log-linear
// buckets: subBuckets linear buckets per power-of-two range, in the style
// of HdrHistogram. Relative quantile error is bounded by 1/subBuckets.
type Histogram struct {
	subBuckets int
	counts     []uint64
	count      uint64
	sum        float64
	min, max   float64
}

// NewHistogram returns a histogram with the given number of linear
// sub-buckets per octave (16 gives ≤6.25% relative error, plenty for
// microsecond-scale latency distributions).
func NewHistogram(subBuckets int) *Histogram {
	if subBuckets < 2 {
		subBuckets = 2
	}
	return &Histogram{
		subBuckets: subBuckets,
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}
}

// bucketIndex maps a value to its bucket. Values < 1 map to bucket 0.
func (h *Histogram) bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	exp := int(math.Floor(math.Log2(v)))
	base := math.Exp2(float64(exp))
	frac := (v - base) / base // [0, 1)
	sub := int(frac * float64(h.subBuckets))
	if sub >= h.subBuckets {
		sub = h.subBuckets - 1
	}
	return 1 + exp*h.subBuckets + sub
}

// bucketLow returns the lower bound of bucket i (inverse of bucketIndex).
func (h *Histogram) bucketLow(i int) float64 {
	if i == 0 {
		return 0
	}
	i--
	exp := i / h.subBuckets
	sub := i % h.subBuckets
	base := math.Exp2(float64(exp))
	return base * (1 + float64(sub)/float64(h.subBuckets))
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	idx := h.bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (q in [0,1]). The
// estimate is the lower bound of the bucket containing the q-th
// observation, so it never overstates by more than one bucket width.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			return h.bucketLow(i)
		}
	}
	return h.Max()
}

// Reset clears all state.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Summary renders count/mean/p50/p99/p999/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f p999=%.1f max=%.1f",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}

// Series is a time-binned sequence of sums: values observed at time t are
// accumulated into bin floor(t/binWidth). Used for the utilization and
// drop-rate time series behind Figure 1.
type Series struct {
	binWidth float64
	bins     []float64
}

// NewSeries returns a series with the given bin width (in the caller's
// time unit; the simulator uses seconds).
func NewSeries(binWidth float64) *Series {
	if binWidth <= 0 {
		panic("metrics: non-positive bin width")
	}
	return &Series{binWidth: binWidth}
}

// Observe adds v into the bin containing time t. Negative t panics.
func (s *Series) Observe(t, v float64) {
	if t < 0 {
		panic("metrics: negative series time")
	}
	idx := int(t / s.binWidth)
	for idx >= len(s.bins) {
		s.bins = append(s.bins, 0)
	}
	s.bins[idx] += v
}

// Bins returns a copy of the accumulated bins.
func (s *Series) Bins() []float64 {
	out := make([]float64, len(s.bins))
	copy(out, s.bins)
	return out
}

// BinWidth returns the configured bin width.
func (s *Series) BinWidth() float64 { return s.binWidth }

// Registry is a named collection of metrics belonging to one simulation
// run. Names are conventionally dotted paths like "nic.rx.drops".
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it (with
// 16 sub-buckets) if needed.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(16)
		r.histograms[name] = h
	}
	return h
}

// ResetAll resets every registered metric; called at the end of warmup so
// measurements cover only the steady state.
func (r *Registry) ResetAll() {
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// Zero returns every registered metric to its freshly created state,
// keeping the registered names and their allocated structures (histogram
// bucket arrays in particular) so a registry can be reused across
// simulation runs by the worker-pool arenas without per-run allocation.
// Unlike ResetAll — whose warmup-boundary semantics deliberately let a
// gauge's instantaneous value survive — Zero clears gauges completely:
// the next run's components must observe exactly what a fresh registry
// would give them.
func (r *Registry) Zero() {
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.v = 0
		g.max = 0
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// GaugeSnapshot is the typed view of one gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnapshot is the typed view of one histogram: count, moments
// and the standard quantile ladder.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a stable, typed view of a registry at one instant — the
// exporter-facing alternative to parsing Dump's rendered text.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric by value. The maps are fresh
// copies: mutating them does not touch the registry, and later metric
// updates do not leak into the snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for n, h := range r.histograms {
		s.Histograms[n] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.sum,
			Mean:  h.Mean(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.5),
			P90:   h.Quantile(0.9),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	return s
}

// Dump renders every metric sorted by name, one per line.
func (r *Registry) Dump() string {
	type entry struct{ name, kind string }
	var entries []entry
	for n := range r.counters {
		entries = append(entries, entry{n, "counter"})
	}
	for n := range r.gauges {
		entries = append(entries, entry{n, "gauge"})
	}
	for n := range r.histograms {
		entries = append(entries, entry{n, "hist"})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].kind < entries[j].kind
	})
	var b strings.Builder
	for _, e := range entries {
		switch e.kind {
		case "counter":
			fmt.Fprintf(&b, "%-40s %d\n", e.name, r.counters[e.name].Value())
		case "gauge":
			fmt.Fprintf(&b, "%-40s %d (max %d)\n", e.name, r.gauges[e.name].Value(), r.gauges[e.name].Max())
		case "hist":
			fmt.Fprintf(&b, "%-40s %s\n", e.name, r.histograms[e.name].Summary())
		}
	}
	return b.String()
}
