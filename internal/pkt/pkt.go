// Package pkt defines the wire packet representation shared by the fabric,
// NIC, and transport layers. Packets are plain structs passed by pointer
// through the single-threaded simulation; layers annotate them in place
// (arrival timestamps, host delay, ECN) the way real stacks annotate
// packet metadata.
package pkt

import (
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// Kind discriminates packet roles on the wire.
type Kind uint8

const (
	// Data carries RPC payload from a sender to the receiver.
	Data Kind = iota
	// Ack is the transport acknowledgement flowing back to a sender.
	Ack
	// Request is a small RPC request (e.g. a remote-read issue).
	Request
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Request:
		return "request"
	default:
		return "unknown"
	}
}

// Packet is one wire packet. WireBytes includes all protocol headers (the
// ~8% overhead that caps application throughput at ~92 Gbps on a 100 Gbps
// link with a 4 KB MTU); PayloadBytes is what the application sees.
type Packet struct {
	ID    uint64
	Flow  uint32 // connection identifier
	Queue int    // receiver thread / Rx queue owning this flow
	Kind  Kind
	Seq   uint64 // per-flow data sequence number
	ReqID uint64 // RPC identifier (remote read)

	PayloadBytes int
	WireBytes    int

	SentAt     sim.Time // leaves the sender
	NICArrival sim.Time // enqueued into the receiver NIC input buffer
	Delivered  sim.Time // handed to application threads

	ECN bool // marked by a congested fabric queue (DCTCP baseline)

	// Ack-only fields: receiver state echoed back to the sender's
	// congestion control.
	AckSeq        uint64
	AckedBytes    int
	EchoHostDelay sim.Duration // NIC-arrival → delivery, the Swift host-delay signal
	EchoFabric    sim.Duration // sender → NIC-arrival one-way delay
	EchoECN       bool
	// HostECN is the sub-RTT host congestion signal (§4 extension): set
	// by the NIC when its input buffer crosses a threshold.
	HostECN bool

	// Span is non-nil when this packet was head-sampled for telemetry at
	// NIC admission; pipeline stages annotate it in place like the other
	// packet metadata. It never crosses the wire (the capture format
	// ignores it).
	Span *telemetry.Span
}

// HeaderBytes is the protocol header overhead per data packet (Ethernet +
// IP + transport + RPC framing). 4096-byte payloads then yield ≈92 Gbps
// of application throughput on a 100 Gbps link, the paper's ceiling.
const HeaderBytes = 356

// AckWireBytes is the on-wire size of a bare acknowledgement.
const AckWireBytes = 84

// NewData returns a data packet with wire size derived from the payload.
func NewData(id uint64, flow uint32, queue int, seq uint64, payload int) *Packet {
	return &Packet{
		ID:           id,
		Flow:         flow,
		Queue:        queue,
		Kind:         Data,
		Seq:          seq,
		PayloadBytes: payload,
		WireBytes:    payload + HeaderBytes,
	}
}

// NewAck returns an acknowledgement for the given data packet.
func NewAck(id uint64, data *Packet) *Packet {
	return &Packet{
		ID:         id,
		Flow:       data.Flow,
		Queue:      data.Queue,
		Kind:       Ack,
		ReqID:      data.ReqID,
		AckSeq:     data.Seq,
		AckedBytes: data.PayloadBytes,
		WireBytes:  AckWireBytes,
		EchoECN:    data.ECN,
		HostECN:    data.HostECN,
	}
}
