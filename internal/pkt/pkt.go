// Package pkt defines the wire packet representation shared by the fabric,
// NIC, and transport layers. Packets are plain structs passed by pointer
// through the single-threaded simulation; layers annotate them in place
// (arrival timestamps, host delay, ECN) the way real stacks annotate
// packet metadata.
//
// Hot-path allocation is avoided with a per-run Pool: each testbed owns
// one free list, packets are drawn from it at send time and Released at
// the exact point they die (switch drop, NIC tail drop, delivery to the
// application, ack consumption). A run is single-threaded, so the pool
// needs no locking; concurrent runs each own their own pool. See
// docs/PERFORMANCE.md for the ownership rules.
package pkt

import (
	"fmt"
	"os"
	"sync/atomic"

	"hic/internal/sim"
	"hic/internal/telemetry"
)

// Kind discriminates packet roles on the wire.
type Kind uint8

const (
	// Data carries RPC payload from a sender to the receiver.
	Data Kind = iota
	// Ack is the transport acknowledgement flowing back to a sender.
	Ack
	// Request is a small RPC request (e.g. a remote-read issue).
	Request
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Request:
		return "request"
	default:
		return "unknown"
	}
}

// Packet is one wire packet. WireBytes includes all protocol headers (the
// ~8% overhead that caps application throughput at ~92 Gbps on a 100 Gbps
// link with a 4 KB MTU); PayloadBytes is what the application sees.
type Packet struct {
	ID    uint64
	Flow  uint32 // connection identifier
	Queue int    // receiver thread / Rx queue owning this flow
	Kind  Kind
	Seq   uint64 // per-flow data sequence number
	ReqID uint64 // RPC identifier (remote read)

	PayloadBytes int
	WireBytes    int

	SentAt     sim.Time // leaves the sender
	NICArrival sim.Time // enqueued into the receiver NIC input buffer
	Delivered  sim.Time // handed to application threads

	ECN bool // marked by a congested fabric queue (DCTCP baseline)

	// Ack-only fields: receiver state echoed back to the sender's
	// congestion control.
	AckSeq        uint64
	AckedBytes    int
	EchoHostDelay sim.Duration // NIC-arrival → delivery, the Swift host-delay signal
	EchoFabric    sim.Duration // sender → NIC-arrival one-way delay
	EchoECN       bool
	// HostECN is the sub-RTT host congestion signal (§4 extension): set
	// by the NIC when its input buffer crosses a threshold.
	HostECN bool

	// Span is non-nil when this packet was head-sampled for telemetry at
	// NIC admission; pipeline stages annotate it in place like the other
	// packet metadata. It never crosses the wire (the capture format
	// ignores it).
	Span *telemetry.Span

	// freed marks a packet sitting on a pool free list; Release panics on
	// a double release, the most common free-list ownership bug.
	freed bool
}

// HeaderBytes is the protocol header overhead per data packet (Ethernet +
// IP + transport + RPC framing). 4096-byte payloads then yield ≈92 Gbps
// of application throughput on a 100 Gbps link, the paper's ceiling.
const HeaderBytes = 356

// AckWireBytes is the on-wire size of a bare acknowledgement.
const AckWireBytes = 84

// NewData returns a data packet with wire size derived from the payload.
func NewData(id uint64, flow uint32, queue int, seq uint64, payload int) *Packet {
	return &Packet{
		ID:           id,
		Flow:         flow,
		Queue:        queue,
		Kind:         Data,
		Seq:          seq,
		PayloadBytes: payload,
		WireBytes:    payload + HeaderBytes,
	}
}

// NewAck returns an acknowledgement for the given data packet.
func NewAck(id uint64, data *Packet) *Packet {
	p := &Packet{}
	fillAck(p, id, data)
	return p
}

func fillAck(p *Packet, id uint64, data *Packet) {
	p.ID = id
	p.Flow = data.Flow
	p.Queue = data.Queue
	p.Kind = Ack
	p.ReqID = data.ReqID
	p.AckSeq = data.Seq
	p.AckedBytes = data.PayloadBytes
	p.WireBytes = AckWireBytes
	p.EchoECN = data.ECN
	p.HostECN = data.HostECN
}

// pooling and poison are process-wide debug knobs. pooling=false makes
// every Pool allocate fresh packets and drop releases on the floor (so
// determinism tests can prove pooled and unpooled runs are bit-identical);
// poison=true scrambles released packets so any use-after-release crashes
// loudly instead of silently corrupting a run. Poison can also be enabled
// with the HIC_PKT_POISON environment variable.
var (
	pooling atomic.Bool
	poison  atomic.Bool
)

func init() {
	pooling.Store(true)
	if os.Getenv("HIC_PKT_POISON") != "" {
		poison.Store(true)
	}
}

// SetPooling toggles packet recycling process-wide. Intended for tests
// and debugging only; returns the previous setting.
func SetPooling(enabled bool) bool { return pooling.Swap(enabled) }

// SetPoison toggles poisoning of released packets process-wide. Returns
// the previous setting.
func SetPoison(enabled bool) bool { return poison.Swap(enabled) }

// Pool is a per-run packet free list. A nil *Pool is valid: it allocates
// fresh packets and makes Release a no-op, so components work unchanged
// when no pool is wired (unit tests, standalone use).
//
// Ownership rule: exactly one component owns a packet at any time, and
// the owner at the point a packet leaves the simulation calls Release —
// the fabric for switch drops, the NIC for tail drops, the host glue for
// delivered data (after transport.Receiver.Deliver returns) and consumed
// acks (after transport.Conn.OnAck returns). Nothing may hold a packet
// pointer across its Release.
type Pool struct {
	free []*Packet

	allocs   uint64 // fresh heap allocations
	reuses   uint64 // packets served from the free list
	releases uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// get returns a zeroed packet, recycled when possible.
func (pl *Pool) get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if n := len(pl.free); n > 0 && pooling.Load() {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{} // full reset keeps pooled runs bit-identical to unpooled ones
		pl.reuses++
		return p
	}
	pl.allocs++
	return &Packet{}
}

// Data returns a data packet like NewData, drawn from the pool.
func (pl *Pool) Data(id uint64, flow uint32, queue int, seq uint64, payload int) *Packet {
	p := pl.get()
	p.ID = id
	p.Flow = flow
	p.Queue = queue
	p.Kind = Data
	p.Seq = seq
	p.PayloadBytes = payload
	p.WireBytes = payload + HeaderBytes
	return p
}

// Ack returns an acknowledgement for data like NewAck, drawn from the pool.
func (pl *Pool) Ack(id uint64, data *Packet) *Packet {
	p := pl.get()
	fillAck(p, id, data)
	return p
}

// Release returns a dead packet to the pool. It panics on a double
// release. With poisoning enabled the packet's fields are scrambled so a
// stale pointer dereferenced later fails fast (a negative queue or wire
// size trips the NIC and fabric invariants immediately).
func (pl *Pool) Release(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.freed {
		panic(fmt.Sprintf("pkt: double release of packet id=%d flow=%#x", p.ID, p.Flow))
	}
	pl.releases++
	p.Span = nil // never retain telemetry spans past packet death
	if poison.Load() {
		*p = Packet{
			ID:           ^uint64(0),
			Flow:         ^uint32(0),
			Queue:        -1,
			Kind:         Kind(0xff),
			PayloadBytes: -1,
			WireBytes:    -1,
		}
	}
	p.freed = true
	if pooling.Load() {
		pl.free = append(pl.free, p)
	}
}

// PoolStats reports pool activity, for benchmarks and leak hunting.
type PoolStats struct {
	Allocs   uint64 // fresh heap allocations
	Reuses   uint64 // served from the free list
	Releases uint64
	FreeLen  int // packets currently on the free list
}

// Stats returns current pool counters. Safe on a nil pool.
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return PoolStats{Allocs: pl.allocs, Reuses: pl.reuses, Releases: pl.releases, FreeLen: len(pl.free)}
}
