package pkt

import (
	"testing"
)

func TestPoolReusesReleasedPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Data(1, 2, 3, 4, 4096)
	p.ECN = true
	p.NICArrival = 42
	pl.Release(p)
	q := pl.Data(5, 6, 7, 8, 4096)
	if q != p {
		t.Fatalf("expected the released packet to be recycled")
	}
	// The recycled packet must be indistinguishable from a fresh one.
	if q.ECN || q.NICArrival != 0 || q.freed {
		t.Fatalf("recycled packet carries stale state: %+v", q)
	}
	if q.ID != 5 || q.Flow != 6 || q.Queue != 7 || q.Seq != 8 {
		t.Fatalf("recycled packet misfilled: %+v", q)
	}
	st := pl.Stats()
	if st.Allocs != 1 || st.Reuses != 1 || st.Releases != 1 {
		t.Fatalf("stats = %+v, want 1 alloc / 1 reuse / 1 release", st)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pl := NewPool()
	p := pl.Data(1, 1, 0, 0, 100)
	pl.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	pl.Release(p)
}

func TestNilPoolFallsBackToHeap(t *testing.T) {
	var pl *Pool
	p := pl.Data(1, 2, 3, 4, 4096)
	if p == nil || p.WireBytes != 4096+HeaderBytes {
		t.Fatalf("nil pool must still build packets: %+v", p)
	}
	a := pl.Ack(9, p)
	if a == nil || a.Kind != Ack || a.AckSeq != p.Seq {
		t.Fatalf("nil pool must still build acks: %+v", a)
	}
	pl.Release(p) // must not crash
	if st := pl.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v, want zero", st)
	}
}

func TestPoolingDisabledAllocatesFresh(t *testing.T) {
	prev := SetPooling(false)
	defer SetPooling(prev)
	pl := NewPool()
	p := pl.Data(1, 1, 0, 0, 100)
	pl.Release(p)
	q := pl.Data(2, 2, 0, 1, 100)
	if q == p {
		t.Fatal("pooling disabled must not recycle packets")
	}
	if st := pl.Stats(); st.FreeLen != 0 {
		t.Fatalf("free list populated with pooling off: %+v", st)
	}
}

func TestPoisonScramblesReleasedPackets(t *testing.T) {
	prevPoison := SetPoison(true)
	prevPool := SetPooling(false) // keep the poisoned carcass out of reuse
	defer func() {
		SetPoison(prevPoison)
		SetPooling(prevPool)
	}()
	pl := NewPool()
	p := pl.Data(1, 1, 3, 0, 4096)
	pl.Release(p)
	// A component dereferencing this stale pointer now sees impossible
	// values (negative queue and sizes) and trips its invariants.
	if p.Queue != -1 || p.WireBytes != -1 || p.PayloadBytes != -1 {
		t.Fatalf("released packet not poisoned: %+v", p)
	}
}

// BenchmarkPacketPath measures one full packet lifetime through the
// pool — data birth, ack birth, both deaths — which is the per-packet
// pool cost a testbed run pays. Steady state must be allocation-free.
func BenchmarkPacketPath(b *testing.B) {
	pl := NewPool()
	// Warm the free list with one lifetime.
	p := pl.Data(0, 1, 0, 0, 4096)
	a := pl.Ack(0, p)
	pl.Release(p)
	pl.Release(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pl.Data(uint64(i), 1, 0, uint64(i), 4096)
		a := pl.Ack(uint64(i), p)
		pl.Release(p)
		pl.Release(a)
	}
}

// BenchmarkPacketPathNoPool is the pre-rewrite baseline: fresh heap
// packets every time, garbage collector cleans up. The sink forces the
// packets to escape, as they do in the real simulator where they travel
// through the fabric/NIC/transport layers.
var benchSink *Packet

func BenchmarkPacketPathNoPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewData(uint64(i), 1, 0, uint64(i), 4096)
		a := NewAck(uint64(i), p)
		benchSink = p
		benchSink = a
	}
}

// TestPacketPathZeroAllocs gates the allocation-free property under
// `make check`.
func TestPacketPathZeroAllocs(t *testing.T) {
	pl := NewPool()
	p := pl.Data(0, 1, 0, 0, 4096)
	a := pl.Ack(0, p)
	pl.Release(p)
	pl.Release(a)
	if allocs := testing.AllocsPerRun(1000, func() {
		p := pl.Data(1, 1, 0, 1, 4096)
		a := pl.Ack(1, p)
		pl.Release(p)
		pl.Release(a)
	}); allocs != 0 {
		t.Errorf("packet lifetime allocates %.1f objects/op, want 0", allocs)
	}
}
