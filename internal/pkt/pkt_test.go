package pkt

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Data: "data", Ack: "ack", Request: "request", Kind(99): "unknown"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNewDataWireOverhead(t *testing.T) {
	p := NewData(1, 2, 3, 4, 4096)
	if p.WireBytes != 4096+HeaderBytes {
		t.Errorf("WireBytes = %d", p.WireBytes)
	}
	// The header overhead must reproduce the paper's ~92 Gbps ceiling on
	// a 100 Gbps link with 4 KB MTU.
	eff := float64(p.PayloadBytes) / float64(p.WireBytes) * 100
	if eff < 91 || eff > 93 {
		t.Errorf("max achievable throughput = %.1f Gbps, want ≈92", eff)
	}
	if p.Kind != Data || p.Flow != 2 || p.Queue != 3 || p.Seq != 4 {
		t.Errorf("fields = %+v", p)
	}
}

func TestNewAckEchoes(t *testing.T) {
	d := NewData(1, 2, 3, 4, 4096)
	d.ReqID = 77
	d.ECN = true
	d.HostECN = true
	a := NewAck(9, d)
	if a.Kind != Ack || a.Flow != d.Flow || a.Queue != d.Queue {
		t.Errorf("ack fields = %+v", a)
	}
	if a.AckSeq != d.Seq || a.AckedBytes != d.PayloadBytes || a.ReqID != 77 {
		t.Errorf("ack echo fields = %+v", a)
	}
	if !a.EchoECN || !a.HostECN {
		t.Error("ECN/HostECN not echoed")
	}
	if a.WireBytes != AckWireBytes {
		t.Errorf("ack wire bytes = %d", a.WireBytes)
	}
}
