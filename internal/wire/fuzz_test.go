package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode ensures arbitrary input never panics the decoder and that
// re-encoding a successfully decoded packet is an identity.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendEncode(nil, samplePacket()))
	corrupt := AppendEncode(nil, samplePacket())
	corrupt[3] = 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		out := AppendEncode(nil, p)
		if !bytes.Equal(out, data[:bodyLen]) {
			// Unknown flag bits decode losslessly into known fields but
			// re-encode canonically; only canonical inputs round-trip.
			if data[3]&^0x1f == 0 {
				t.Errorf("canonical input did not round trip")
			}
		}
	})
}

// FuzzReader ensures arbitrary streams never panic the framed reader.
func FuzzReader(f *testing.F) {
	var good bytes.Buffer
	w := NewWriter(&good)
	_ = w.WritePacket(samplePacket())
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
