// Package wire defines a binary serialization of the simulator's packets
// and a length-prefixed, checksummed capture-file format, in the spirit
// of pcap: experiments can tap the receiver NIC and write every arriving
// packet (with its simulated timestamp) to a file for external analysis,
// and tooling can decode the capture deterministically.
//
// Record layout (big-endian):
//
//	u32 length              // of the record body
//	body: u16 magic, u8 version, u8 kind+flags,
//	      u32 flow, u32 queue, u64 id, u64 seq, u64 reqID,
//	      u32 payloadBytes, u32 wireBytes,
//	      u64 sentAt, u64 nicArrival, u64 ackSeq,
//	      u64 echoHostDelayNs, u64 echoFabricNs, u32 ackedBytes
//	u32 crc32(body)         // IEEE
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"hic/internal/pkt"
	"hic/internal/sim"
)

const (
	magic      = 0x4843 // "HC"
	version    = 1
	bodyLen    = 2 + 1 + 1 + 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4
	flagECN    = 1 << 2
	flagHostE  = 1 << 3
	flagEchoE  = 1 << 4
	kindMask   = 0x3
	maxBodyLen = 1 << 16
)

// ErrCorrupt reports a checksum or framing failure.
var ErrCorrupt = errors.New("wire: corrupt record")

// AppendEncode appends the encoded body of p to dst and returns the
// extended slice (no framing; Writer adds length + CRC).
func AppendEncode(dst []byte, p *pkt.Packet) []byte {
	var b [bodyLen]byte
	binary.BigEndian.PutUint16(b[0:], magic)
	b[2] = version
	flags := byte(p.Kind) & kindMask
	if p.ECN {
		flags |= flagECN
	}
	if p.HostECN {
		flags |= flagHostE
	}
	if p.EchoECN {
		flags |= flagEchoE
	}
	b[3] = flags
	binary.BigEndian.PutUint32(b[4:], p.Flow)
	binary.BigEndian.PutUint32(b[8:], uint32(p.Queue))
	binary.BigEndian.PutUint64(b[12:], p.ID)
	binary.BigEndian.PutUint64(b[20:], p.Seq)
	binary.BigEndian.PutUint64(b[28:], p.ReqID)
	binary.BigEndian.PutUint32(b[36:], uint32(p.PayloadBytes))
	binary.BigEndian.PutUint32(b[40:], uint32(p.WireBytes))
	binary.BigEndian.PutUint64(b[44:], uint64(p.SentAt))
	binary.BigEndian.PutUint64(b[52:], uint64(p.NICArrival))
	binary.BigEndian.PutUint64(b[60:], p.AckSeq)
	binary.BigEndian.PutUint64(b[68:], uint64(p.EchoHostDelay))
	binary.BigEndian.PutUint64(b[76:], uint64(p.EchoFabric))
	binary.BigEndian.PutUint32(b[84:], uint32(p.AckedBytes))
	return append(dst, b[:]...)
}

// Decode parses one encoded body into a packet.
func Decode(b []byte) (*pkt.Packet, error) {
	if len(b) < bodyLen {
		return nil, fmt.Errorf("%w: body %d bytes, want %d", ErrCorrupt, len(b), bodyLen)
	}
	if binary.BigEndian.Uint16(b[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if b[2] != version {
		return nil, fmt.Errorf("wire: unsupported version %d", b[2])
	}
	flags := b[3]
	p := &pkt.Packet{
		Kind:          pkt.Kind(flags & kindMask),
		ECN:           flags&flagECN != 0,
		HostECN:       flags&flagHostE != 0,
		Flow:          binary.BigEndian.Uint32(b[4:]),
		Queue:         int(binary.BigEndian.Uint32(b[8:])),
		ID:            binary.BigEndian.Uint64(b[12:]),
		Seq:           binary.BigEndian.Uint64(b[20:]),
		ReqID:         binary.BigEndian.Uint64(b[28:]),
		PayloadBytes:  int(binary.BigEndian.Uint32(b[36:])),
		WireBytes:     int(binary.BigEndian.Uint32(b[40:])),
		SentAt:        sim.Time(binary.BigEndian.Uint64(b[44:])),
		NICArrival:    sim.Time(binary.BigEndian.Uint64(b[52:])),
		AckSeq:        binary.BigEndian.Uint64(b[60:]),
		EchoHostDelay: sim.Duration(binary.BigEndian.Uint64(b[68:])),
		EchoFabric:    sim.Duration(binary.BigEndian.Uint64(b[76:])),
		AckedBytes:    int(binary.BigEndian.Uint32(b[84:])),
	}
	p.EchoECN = flags&flagEchoE != 0
	return p, nil
}

// Writer streams framed, checksummed records to an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int
}

// NewWriter returns a capture writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WritePacket appends one record.
func (w *Writer) WritePacket(p *pkt.Packet) error {
	w.buf = w.buf[:0]
	w.buf = AppendEncode(w.buf, p)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(w.buf)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf))
	if _, err := w.w.Write(crc[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Reader decodes a capture stream.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a capture reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next packet, or io.EOF at a clean end of stream.
func (r *Reader) Next() (*pkt.Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxBodyLen {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("%w: truncated body: %v", ErrCorrupt, err)
	}
	var crcB [4]byte
	if _, err := io.ReadFull(r.r, crcB[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated checksum: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(r.buf) != binary.BigEndian.Uint32(crcB[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return Decode(r.buf)
}
