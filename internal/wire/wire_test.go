package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"hic/internal/pkt"
	"hic/internal/sim"
)

func samplePacket() *pkt.Packet {
	p := pkt.NewData(42, 0x70003, 3, 1234, 4096)
	p.ReqID = 308
	p.SentAt = sim.Time(5 * sim.Microsecond)
	p.NICArrival = sim.Time(11 * sim.Microsecond)
	p.ECN = true
	p.HostECN = true
	p.EchoHostDelay = 97 * sim.Microsecond
	p.EchoFabric = 6 * sim.Microsecond
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	body := AppendEncode(nil, p)
	if len(body) != bodyLen {
		t.Fatalf("encoded %d bytes, want %d", len(body), bodyLen)
	}
	got, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil decode err = %v", err)
	}
	body := AppendEncode(nil, samplePacket())
	body[0] ^= 0xff // break magic
	if _, err := Decode(body); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad-magic err = %v", err)
	}
	body = AppendEncode(nil, samplePacket())
	body[2] = 99 // future version
	if _, err := Decode(body); err == nil {
		t.Error("future version accepted")
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []*pkt.Packet
	for i := 0; i < 50; i++ {
		p := pkt.NewData(uint64(i), uint32(i%7), i%4, uint64(i*3), 4096)
		if i%5 == 0 {
			p = pkt.NewAck(uint64(1000+i), p)
		}
		want = append(want, p)
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 50 {
		t.Errorf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	for i := 0; ; i++ {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			if i != 50 {
				t.Fatalf("EOF after %d records, want 50", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if *p != *want[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, p, want[i])
		}
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(samplePacket()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a body byte: CRC must catch it.
	corrupted := append([]byte(nil), data...)
	corrupted[10] ^= 0x55
	if _, err := NewReader(bytes.NewReader(corrupted)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corruption err = %v", err)
	}
	// Truncate mid-body.
	if _, err := NewReader(bytes.NewReader(data[:10])).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation err = %v", err)
	}
	// Implausible length header.
	big := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := NewReader(bytes.NewReader(big)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized-length err = %v", err)
	}
}

// Property: any packet field combination survives the round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(id, seq, req uint64, flow uint32, queue uint16, payload uint16,
		kind uint8, ecn, hostECN bool, sent, arrival int64) bool {
		p := &pkt.Packet{
			ID: id, Seq: seq, ReqID: req, Flow: flow,
			Queue:        int(queue),
			Kind:         pkt.Kind(kind % 3),
			PayloadBytes: int(payload),
			WireBytes:    int(payload) + pkt.HeaderBytes,
			ECN:          ecn, HostECN: hostECN,
			SentAt:     sim.Time(sent & (1<<62 - 1)),
			NICArrival: sim.Time(arrival & (1<<62 - 1)),
		}
		got, err := Decode(AppendEncode(nil, p))
		if err != nil {
			return false
		}
		// Delivered and echo fields default to zero in this property.
		return got.ID == p.ID && got.Seq == p.Seq && got.ReqID == p.ReqID &&
			got.Flow == p.Flow && got.Queue == p.Queue && got.Kind == p.Kind &&
			got.PayloadBytes == p.PayloadBytes && got.WireBytes == p.WireBytes &&
			got.ECN == p.ECN && got.HostECN == p.HostECN &&
			got.SentAt == p.SentAt && got.NICArrival == p.NICArrival
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, bodyLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], p)
	}
}

func BenchmarkDecode(b *testing.B) {
	body := AppendEncode(nil, samplePacket())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(body); err != nil {
			b.Fatal(err)
		}
	}
}
