package runcache

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hic/internal/host"
)

// TestGetBumpsRecencyForPrune is the LRU-correctness guard: a cache hit
// must refresh the entry's mtime so -cache-max-mb pruning evicts cold
// entries instead of hot ones. Before the Backend refactor, Prune
// ordered by write-time mtime only, so the most-used entry could be the
// first one evicted.
func TestGetBumpsRecencyForPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	var entrySize int64
	for i := range keys {
		canon := string(rune('a' + i))
		keys[i] = Key("v1", canon)
		if err := s.Put(keys[i], "v1", canon, host.Results{AppThroughputGbps: float64(i)}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(filepath.Join(dir, keys[i]+".json"))
		if err != nil {
			t.Fatal(err)
		}
		entrySize = info.Size()
		// All written "long ago"; entry 0 is the oldest write.
		old := time.Now().Add(time.Duration(i-48) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, keys[i]+".json"), old, old); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh store (empty memory layer) reads entry 0 from disk: that
	// hit must make it the *most* recently used entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(keys[0], "v1", "a"); !ok {
		t.Fatal("disk entry not served")
	}

	// Budget for one entry: the two untouched entries must go, the hot
	// one must survive.
	removed, _, err := s2.Prune(entrySize + entrySize/2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("Prune removed %d entries, want 2", removed)
	}
	s3, _ := Open(dir)
	if _, ok := s3.Get(keys[0], "v1", "a"); !ok {
		t.Fatal("recently-read entry was evicted; prune is not LRU over access time")
	}
	for i := 1; i < 3; i++ {
		if s3.Contains(keys[i], "v1", string(rune('a'+i))) {
			t.Fatalf("cold entry %d survived the prune", i)
		}
	}
}

// TestBlobGetBumpsRecency mirrors the result-entry guard for the warm
// namespace: calibration blobs that keep being loaded must not be the
// first evicted from a bounded warm store.
func TestBlobGetBumpsRecency(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key("hic-calib-test", "sig")
	if err := s.PutBlob(key, "hic-calib-test", "sig", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	path := filepath.Join(dir, key+".json")
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if !s.GetBlob(key, "hic-calib-test", "sig", &out) {
		t.Fatal("blob not served")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(info.ModTime()) > time.Hour {
		t.Fatalf("blob hit did not bump mtime (still %v)", info.ModTime())
	}
}

// TestContainsDoesNotBumpRecency: Contains is a pure peek — the fidelity
// warm-start planner probes many keys it may never use, and those probes
// must not distort the LRU order real hits establish.
func TestContainsDoesNotBumpRecency(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key("v1", "a")
	if err := s.Put(key, "v1", "a", host.Results{}); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	path := filepath.Join(dir, key+".json")
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir)
	if !s2.Contains(key, "v1", "a") {
		t.Fatal("entry not found")
	}
	info, _ := os.Stat(path)
	if time.Since(info.ModTime()) < 24*time.Hour {
		t.Fatal("Contains bumped mtime; peeks must not count as use")
	}
}

// TestHTTPBackendRoundTrip drives a client Store through BackendHandler
// to a disk-backed server store: results and blobs written by one side
// must be served to the other byte-compatibly, remote hits must bump
// recency on the server's disk, and a second client must dedup against
// the first client's writes.
func TestHTTPBackendRoundTrip(t *testing.T) {
	serverDir := t.TempDir()
	serverStore, err := Open(serverDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(BackendHandler(serverStore.Backend()))
	defer srv.Close()

	client := NewStore(NewHTTP(srv.URL, nil))
	r := host.Results{AppThroughputGbps: 88.25, DropRatePct: 1.5}
	key := Key("v1", "canon")
	if _, ok := client.Get(key, "v1", "canon"); ok {
		t.Fatal("empty remote store returned a hit")
	}
	if err := client.Put(key, "v1", "canon", r); err != nil {
		t.Fatal(err)
	}
	// The server's disk now holds the entry; a *fresh* client (empty
	// memory layer) and the server's own store both serve it.
	client2 := NewStore(NewHTTP(srv.URL, nil))
	got, ok := client2.Get(key, "v1", "canon")
	if !ok || got != r {
		t.Fatalf("remote round trip lost data: ok=%v got=%+v", ok, got)
	}
	if got, ok := serverStore.Get(key, "v1", "canon"); !ok || got != r {
		t.Fatalf("server-side store does not see the client's write: ok=%v got=%+v", ok, got)
	}

	// Version isolation holds across the wire (fresh client: the memory
	// layer is keyed by content address, which in real use already embeds
	// the version).
	if _, ok := NewStore(NewHTTP(srv.URL, nil)).Get(key, "v2", "canon"); ok {
		t.Fatal("version-mismatched entry served remotely")
	}

	// Blobs share the transport.
	type calib struct{ Gain float64 }
	bkey := Key("hic-calib-test", "sig")
	if err := client.PutBlob(bkey, "hic-calib-test", "sig", calib{Gain: 1.5}); err != nil {
		t.Fatal(err)
	}
	var out calib
	if !client2.GetBlob(bkey, "hic-calib-test", "sig", &out) || out.Gain != 1.5 {
		t.Fatalf("remote blob round trip lost data: %+v", out)
	}

	// GetOrCompute across two clients: the second must be a remote hit,
	// not a recompute.
	computes := 0
	key2 := Key("v1", "shared")
	for _, c := range []*Store{client, client2} {
		if _, err := c.GetOrCompute(key2, "v1", "shared", func() (host.Results, error) {
			computes++
			return host.Results{AppThroughputGbps: 50}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times across two clients sharing a backend, want 1", computes)
	}

	// A remote GET bumps the server-side mtime (the coordinator's LRU
	// honors worker access order).
	old := time.Now().Add(-48 * time.Hour)
	path := filepath.Join(serverDir, key2+".json")
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	client3 := NewStore(NewHTTP(srv.URL, nil))
	if _, ok := client3.Get(key2, "v1", "shared"); !ok {
		t.Fatal("shared entry not served")
	}
	if info, _ := os.Stat(path); time.Since(info.ModTime()) > time.Hour {
		t.Fatal("remote hit did not bump server-side recency")
	}

	// Remote stores have no local entries: Prune and Len are no-ops,
	// never errors — the coordinator owns eviction.
	if n, err := client.Len(); err != nil || n != 0 {
		t.Fatalf("remote Len = %d (%v), want 0, nil", n, err)
	}
	if removed, _, err := client.Prune(1); err != nil || removed != 0 {
		t.Fatalf("remote Prune removed %d (%v), want 0, nil", removed, err)
	}
}

// TestBackendHandlerRejectsBadKeys pins the path-traversal guard: only
// 64-char lowercase hex keys reach the backend.
func TestBackendHandlerRejectsBadKeys(t *testing.T) {
	store, _ := Open(t.TempDir())
	srv := httptest.NewServer(BackendHandler(store.Backend()))
	defer srv.Close()
	for _, path := range []string{
		"/../../etc/passwd",
		"/short",
		"/" + Key("v", "c") + "X",
		"/ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789", // uppercase
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestHTTPBackendUnreachableDegradesToMiss: a dead coordinator must cost
// hit rate, not correctness — Load is a miss, and only Store errors.
func TestHTTPBackendUnreachableDegradesToMiss(t *testing.T) {
	dead := httptest.NewServer(nil)
	url := dead.URL
	dead.Close()
	s := NewStore(NewHTTP(url, nil))
	if _, ok := s.Get(Key("v1", "x"), "v1", "x"); ok {
		t.Fatal("unreachable backend produced a hit")
	}
	if err := s.Put(Key("v1", "x"), "v1", "x", host.Results{}); err == nil {
		t.Fatal("Put against an unreachable backend must error (results are never silently dropped)")
	}
	computed := false
	if _, err := s.GetOrCompute(Key("v1", "y"), "v1", "y", func() (host.Results, error) {
		computed = true
		return host.Results{}, nil
	}); err == nil || !computed {
		t.Fatalf("GetOrCompute err=%v computed=%v: compute must run, and the failed Put must surface", err, computed)
	}
	if be, ok := s.Backend().(*HTTPBackend); !ok || be.Errors() == 0 {
		t.Fatal("transport failures not counted")
	}
}

func TestRemoteURL(t *testing.T) {
	for _, tc := range []struct{ base, want string }{
		{"http://coord:8080", "http://coord:8080" + RemoteResultsPath},
		{"http://coord:8080/", "http://coord:8080" + RemoteResultsPath},
		{"http://coord:8080/custom/mount", "http://coord:8080/custom/mount"},
		{"http://coord:8080/custom/mount/", "http://coord:8080/custom/mount"},
	} {
		if got := RemoteURL(tc.base, RemoteResultsPath); got != tc.want {
			t.Errorf("RemoteURL(%q) = %q, want %q", tc.base, got, tc.want)
		}
	}
}
