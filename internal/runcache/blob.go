package runcache

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Blob namespace: a second content-addressed entry kind for warm state
// that is not a host.Results — persisted fidelity calibrations (anchors,
// noise tiers, gain/drop-offset corrections) and converged DES
// checkpoints. Blob entries share the store's backend and the Key
// scheme, but carry an arbitrary JSON payload and record their own
// version salt, so a blob can never satisfy a result lookup or vice
// versa: result lookups decode the `results` field, blob lookups the
// `blob` field, and the two kinds are salted with disjoint version
// strings (result salts start with core.SimVersion, blob salts with a
// "hic-calib-"/"hic-ckpt-" family prefix).
//
// Blobs have no in-memory write-through layer: callers (fidelity.Router)
// already keep their own per-signature in-memory state and touch the
// store once per signature per process.

// blobEntry is the stored format of the second namespace.
type blobEntry struct {
	Version   string          `json:"version"`
	Canonical string          `json:"canonical"`
	Blob      json.RawMessage `json:"blob"`
}

// GetBlob decodes the blob stored under key into out. Like Get, any
// missing, corrupt, or version/canonical-mismatched entry is a miss;
// corrupt entries are deleted and counted, and a hit bumps recency.
func (s *Store) GetBlob(key, version, canonical string, out any) bool {
	data, ok := s.be.Load(key)
	if !ok {
		s.misses.Add(1)
		return false
	}
	var e blobEntry
	if err := json.Unmarshal(data, &e); err != nil {
		s.dropCorrupt(key)
		return false
	}
	if e.Version != version || e.Canonical != canonical || e.Blob == nil {
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(e.Blob, out); err != nil {
		s.dropCorrupt(key)
		return false
	}
	s.be.Touch(key)
	s.hits.Add(1)
	return true
}

// PutBlob stores v (JSON-encoded) under key, atomically like Put.
func (s *Store) PutBlob(key, version, canonical string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runcache: encoding blob: %w", err)
	}
	data, err := json.MarshalIndent(blobEntry{Version: version, Canonical: canonical, Blob: raw}, "", " ")
	if err != nil {
		return fmt.Errorf("runcache: encoding blob entry: %w", err)
	}
	return s.be.Store(key, data)
}

// Prune deletes the least-recently-used entries (by backend mtime — Get
// and GetBlob bump it on every backend hit) until the store's total
// entry size is at most maxBytes. It returns how many entries were
// removed and how many bytes were freed. A persistent cache,
// calibration, or checkpoint directory shared across many runs is
// bounded by calling Prune at process start (-cache-max-mb). Backends
// that don't enumerate entries (remote stores) prune nothing: the
// machine that owns the bytes — the coordinator — owns the eviction
// policy.
func (s *Store) Prune(maxBytes int64) (removed int, freed int64, err error) {
	l, ok := s.be.(lister)
	if !ok {
		return 0, 0, nil
	}
	files, err := l.entries()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].key < files[j].key
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		s.be.Delete(f.key)
		delete(s.mem, f.key)
		total -= f.size
		freed += f.size
		removed++
	}
	return removed, freed, nil
}
