package runcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Blob namespace: a second content-addressed entry kind for warm state
// that is not a host.Results — persisted fidelity calibrations (anchors,
// noise tiers, gain/drop-offset corrections) and converged DES
// checkpoints. Blob entries share the store directory and the Key
// scheme, but carry an arbitrary JSON payload and record their own
// version salt, so a blob can never satisfy a result lookup or vice
// versa: result lookups decode the `results` field, blob lookups the
// `blob` field, and the two kinds are salted with disjoint version
// strings (result salts start with core.SimVersion, blob salts with a
// "hic-calib-"/"hic-ckpt-" family prefix).
//
// Blobs have no in-memory write-through layer: callers (fidelity.Router)
// already keep their own per-signature in-memory state and touch the
// store once per signature per process.

// blobEntry is the on-disk format of the second namespace.
type blobEntry struct {
	Version   string          `json:"version"`
	Canonical string          `json:"canonical"`
	Blob      json.RawMessage `json:"blob"`
}

// GetBlob decodes the blob stored under key into out. Like Get, any
// missing, corrupt, or version/canonical-mismatched entry is a miss;
// corrupt files are deleted and counted.
func (s *Store) GetBlob(key, version, canonical string, out any) bool {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var e blobEntry
	if err := json.Unmarshal(data, &e); err != nil {
		s.dropCorrupt(key)
		return false
	}
	if e.Version != version || e.Canonical != canonical || e.Blob == nil {
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(e.Blob, out); err != nil {
		s.dropCorrupt(key)
		return false
	}
	s.hits.Add(1)
	return true
}

// PutBlob stores v (JSON-encoded) under key, atomically like Put.
func (s *Store) PutBlob(key, version, canonical string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runcache: encoding blob: %w", err)
	}
	data, err := json.MarshalIndent(blobEntry{Version: version, Canonical: canonical, Blob: raw}, "", " ")
	if err != nil {
		return fmt.Errorf("runcache: encoding blob entry: %w", err)
	}
	return s.writeAtomic(key, data)
}

// writeAtomic writes data to the entry file for key via temp file +
// rename, shared by Put and PutBlob.
func (s *Store) writeAtomic(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Prune deletes the oldest entries (by modification time) until the
// store's total entry size is at most maxBytes. It returns how many
// entries were removed and how many bytes were freed. A persistent
// cache, calibration, or checkpoint directory shared across many runs
// is bounded by calling Prune at process start (-cache-max-mb); the
// mtime order makes it an LRU over write time, which tracks use well
// enough because hot entries are re-written only when recomputed.
func (s *Store) Prune(maxBytes int64) (removed int, freed int64, err error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, err
	}
	type fileInfo struct {
		name  string
		size  int64
		mtime int64
	}
	var files []fileInfo
	var total int64
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		files = append(files, fileInfo{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].name < files[j].name
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, f.name)); err != nil {
			continue
		}
		delete(s.mem, f.name[:len(f.name)-len(".json")])
		total -= f.size
		freed += f.size
		removed++
	}
	return removed, freed, nil
}
