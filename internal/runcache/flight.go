package runcache

import (
	"sync"
	"sync/atomic"

	"hic/internal/host"
	"hic/internal/obs"
)

// Flight collapses duplicate simulations of the same content-addressed
// key into one execution. Fleet distributions are discrete, so many
// hosts draw byte-identical core.Params; because every run is bit-
// deterministic for its Params, all of them can share one simulation's
// Results without changing any output.
//
// Two layers of collapsing:
//
//   - in-flight: concurrent Do calls for a key already being computed
//     park until the computation finishes and share its result;
//   - memo (optional): completed results are kept in-process so later
//     duplicates skip simulation entirely. Callers fronted by a Store
//     disable the memo — the store's write-through memory layer already
//     provides it — while store-less callers (plain RunMany, fleet runs
//     without -cache) enable it. Memo size is O(distinct keys), which
//     for fleet workloads is the archetype-catalog size, not the host
//     count.
//
// Errors are returned to every caller that waited on the computation but
// are never memoized: a later Do for the same key recomputes.
type Flight struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
	memo     map[string]host.Results
	collapse atomic.Uint64
}

type flightCall struct {
	done chan struct{}
	res  host.Results
	err  error
}

// NewFlight returns a Flight; memoize keeps completed results in-process
// (see the type comment for when to enable it).
func NewFlight(memoize bool) *Flight {
	f := &Flight{inflight: make(map[string]*flightCall)}
	if memoize {
		f.memo = make(map[string]host.Results)
	}
	return f
}

// Do returns the results for key, running compute at most once across
// concurrent and (with the memo enabled) repeated calls. Exactly one
// caller per key executes compute; the rest count as collapses.
func (f *Flight) Do(key string, compute func() (host.Results, error)) (host.Results, error) {
	f.mu.Lock()
	if f.memo != nil {
		if r, ok := f.memo[key]; ok {
			f.mu.Unlock()
			f.collapse.Add(1)
			emitCollapse(key, "memo")
			return r, nil
		}
	}
	if c, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		f.collapse.Add(1)
		emitCollapse(key, "inflight")
		<-c.done
		return c.res, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.inflight[key] = c
	f.mu.Unlock()

	c.res, c.err = compute()

	f.mu.Lock()
	delete(f.inflight, key)
	if c.err == nil && f.memo != nil {
		f.memo[key] = c.res
	}
	f.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// Collapses returns how many Do calls were served without running
// compute — the number of simulations dedup avoided.
func (f *Flight) Collapses() uint64 { return f.collapse.Load() }

// emitCollapse reports a dedup hit to the control plane when one is
// installed; the disabled path is one atomic load and a nil check.
func emitCollapse(key, why string) {
	if s := obs.Default(); s != nil {
		s.Emit(obs.Event{Kind: obs.KindCacheCollapse, Key: key, Why: why})
	}
}
