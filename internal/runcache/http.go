package runcache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// HTTP transport for the Backend interface: a hicserve coordinator
// mounts BackendHandler over its own disk-backed stores, and every
// worker (or any CLI pointed at it with -cache-url/-warm-url) opens the
// same namespaces through NewHTTP. Content addressing makes the
// protocol trivial and idempotent — an entry is immutable once written,
// concurrent PUTs of the same key carry identical bytes, and GET/PUT
// order never changes a result, only how much work was saved.

// Conventional mount points for the two namespaces a coordinator
// serves: content-addressed simulation results, and warm-start blobs
// (calibrations + checkpoints). RemoteURL resolves a user-supplied base
// URL against them.
const (
	RemoteResultsPath = "/api/v1/cache/results"
	RemoteWarmPath    = "/api/v1/cache/warm"
)

// RemoteURL resolves base against the conventional mount path for a
// namespace: a bare http://host:port gets path appended, while a base
// that already carries an explicit path (a non-standard mount) is used
// verbatim.
func RemoteURL(base, path string) string {
	u, err := url.Parse(base)
	if err != nil || u.Path == "" || u.Path == "/" {
		return strings.TrimSuffix(base, "/") + path
	}
	return strings.TrimSuffix(base, "/")
}

// HTTPBackend reaches a Backend served by BackendHandler on another
// process. Loads degrade to misses on any transport error (the cache
// accelerates, never fails a run); Stores return errors so a computed
// result is never silently dropped.
type HTTPBackend struct {
	base   string
	client *http.Client

	errs atomic.Uint64
}

// NewHTTP opens the backend at base (e.g. the result of
// RemoteURL("http://coord:8080", RemoteResultsPath)). client may be nil
// for a default with sane timeouts.
func NewHTTP(base string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPBackend{base: strings.TrimSuffix(base, "/"), client: client}
}

func (b *HTTPBackend) url(key string) string { return b.base + "/" + key }

func (b *HTTPBackend) Load(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	resp, err := b.client.Get(b.url(key))
	if err != nil {
		b.errs.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNotFound {
			b.errs.Add(1)
		}
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || int64(len(data)) > maxEntryBytes {
		b.errs.Add(1)
		return nil, false
	}
	return data, true
}

func (b *HTTPBackend) Store(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("runcache: invalid key %q", key)
	}
	req, err := http.NewRequest(http.MethodPut, b.url(key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		b.errs.Add(1)
		return fmt.Errorf("runcache: storing %s to %s: %w", key[:8], b.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		b.errs.Add(1)
		return fmt.Errorf("runcache: storing %s to %s: HTTP %d", key[:8], b.base, resp.StatusCode)
	}
	return nil
}

func (b *HTTPBackend) Delete(key string) {
	if !validKey(key) {
		return
	}
	req, err := http.NewRequest(http.MethodDelete, b.url(key), nil)
	if err != nil {
		return
	}
	if resp, err := b.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// Touch is a no-op: the serving side bumps recency on every GET it
// answers, which is exactly the access order its pruner should honor.
func (b *HTTPBackend) Touch(string) {}

func (b *HTTPBackend) Name() string { return b.base }

// Errors returns how many transport-level failures were absorbed
// (loads degraded to misses, failed stores/deletes).
func (b *HTTPBackend) Errors() uint64 { return b.errs.Load() }

// maxEntryBytes bounds one entry payload on the wire. Entries are a
// JSON envelope around host.Results or a warm blob; the largest real
// payloads (full testbed checkpoints) are tens of KB, so 16 MB is a
// generous ceiling that still stops an errant client or server from
// streaming unbounded data.
const maxEntryBytes int64 = 16 << 20

// validKey admits exactly the hex sha256 strings Key produces — on the
// server side this is also the path-traversal guard.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// BackendHandler serves a Backend over HTTP: GET /{key} returns the
// raw payload (and bumps recency), PUT /{key} stores it, DELETE /{key}
// removes it. Mount one per namespace (results, warm) — the Store
// above it already embeds version salts in keys and payloads, so the
// wire layer needs no further validation beyond key syntax.
func BackendHandler(be Backend) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/")
		if !validKey(key) {
			http.Error(w, "runcache: key must be 64 lowercase hex chars", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			data, ok := be.Load(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			be.Touch(key)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Length", fmt.Sprint(len(data)))
			if r.Method == http.MethodGet {
				w.Write(data)
			}
		case http.MethodPut:
			data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes+1))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if int64(len(data)) > maxEntryBytes {
				http.Error(w, "runcache: entry too large", http.StatusRequestEntityTooLarge)
				return
			}
			if err := be.Store(key, data); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			be.Delete(key)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
