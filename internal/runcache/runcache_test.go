package runcache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hic/internal/host"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := host.Results{AppThroughputGbps: 91.5, DropRatePct: 0.25}
	key := Key("v1", "canon")
	if _, ok := s.Get(key, "v1", "canon"); ok {
		t.Fatal("empty store returned a hit")
	}
	if err := s.Put(key, "v1", "canon", r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key, "v1", "canon")
	if !ok || got.AppThroughputGbps != r.AppThroughputGbps || got.DropRatePct != r.DropRatePct {
		t.Fatalf("round trip lost data: ok=%v got=%+v", ok, got)
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("counters = %d hits / %d misses, want 1/1", s.Hits(), s.Misses())
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d (%v), want 1", n, err)
	}

	// A fresh store over the same directory must serve the entry from
	// disk (no in-memory state).
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key, "v1", "canon"); !ok {
		t.Fatal("disk entry not served by a fresh store")
	}
}

func TestVersionMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "canon")
	if err := s.Put(key, "v1", "canon", host.Results{}); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(s.Dir())
	// Same file name, older version recorded inside: must not be served.
	if _, ok := s2.Get(key, "v2", "canon"); ok {
		t.Fatal("version-mismatched entry served")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "canon")
	if err := os.WriteFile(filepath.Join(s.Dir(), key+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key, "v1", "canon"); ok {
		t.Fatal("corrupt entry served")
	}
	if s.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses())
	}
}

func TestKeySensitivity(t *testing.T) {
	base := Key("v1", "a=1;")
	if Key("v2", "a=1;") == base {
		t.Fatal("version does not change the key")
	}
	if Key("v1", "a=2;") == base {
		t.Fatal("canonical does not change the key")
	}
	if Key("v1", "a=1;") != base {
		t.Fatal("key is not deterministic")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			canon := string(rune('a' + i%4))
			key := Key("v1", canon)
			r := host.Results{AppThroughputGbps: float64(i % 4)}
			if err := s.Put(key, "v1", canon, r); err != nil {
				t.Error(err)
			}
			if _, ok := s.Get(key, "v1", canon); !ok {
				t.Errorf("entry %q vanished", canon)
			}
		}(i)
	}
	wg.Wait()
	if n, err := s.Len(); err != nil || n != 4 {
		t.Fatalf("Len = %d (%v), want 4", n, err)
	}
}
