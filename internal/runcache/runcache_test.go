package runcache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hic/internal/host"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := host.Results{AppThroughputGbps: 91.5, DropRatePct: 0.25}
	key := Key("v1", "canon")
	if _, ok := s.Get(key, "v1", "canon"); ok {
		t.Fatal("empty store returned a hit")
	}
	if err := s.Put(key, "v1", "canon", r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key, "v1", "canon")
	if !ok || got.AppThroughputGbps != r.AppThroughputGbps || got.DropRatePct != r.DropRatePct {
		t.Fatalf("round trip lost data: ok=%v got=%+v", ok, got)
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("counters = %d hits / %d misses, want 1/1", s.Hits(), s.Misses())
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d (%v), want 1", n, err)
	}

	// A fresh store over the same directory must serve the entry from
	// disk (no in-memory state).
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key, "v1", "canon"); !ok {
		t.Fatal("disk entry not served by a fresh store")
	}
}

func TestVersionMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "canon")
	if err := s.Put(key, "v1", "canon", host.Results{}); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(s.Dir())
	// Same file name, older version recorded inside: must not be served.
	if _, ok := s2.Get(key, "v2", "canon"); ok {
		t.Fatal("version-mismatched entry served")
	}
}

// TestCorruptEntryIsMissAndDeleted writes garbage into the cache dir:
// a torn entry must read as a miss, be counted as corrupt, and be
// deleted so the recomputed result can be stored cleanly.
func TestCorruptEntryIsMissAndDeleted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "canon")
	path := filepath.Join(s.Dir(), key+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key, "v1", "canon"); ok {
		t.Fatal("corrupt entry served")
	}
	if s.Misses() != 1 || s.Corrupt() != 1 {
		t.Fatalf("misses = %d corrupt = %d, want 1/1", s.Misses(), s.Corrupt())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
	// The slot is reusable after deletion.
	if err := s.Put(key, "v1", "canon", host.Results{AppThroughputGbps: 1}); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(s.Dir())
	if _, ok := s2.Get(key, "v1", "canon"); !ok {
		t.Fatal("rewritten entry not served")
	}
}

func TestBlobRoundTripAndIsolation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type calib struct {
		Gain  float64
		Tiers []int
	}
	in := calib{Gain: 1.25, Tiers: []int{0, 4, 8}}
	key := Key("hic-calib-test", "sig")
	var out calib
	if s.GetBlob(key, "hic-calib-test", "sig", &out) {
		t.Fatal("empty store returned a blob hit")
	}
	if err := s.PutBlob(key, "hic-calib-test", "sig", in); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(s.Dir())
	if !s2.GetBlob(key, "hic-calib-test", "sig", &out) {
		t.Fatal("persisted blob not served by a fresh store")
	}
	if out.Gain != in.Gain || len(out.Tiers) != 3 {
		t.Fatalf("blob round trip lost data: %+v", out)
	}
	// Version salt isolation, same as result entries.
	if s2.GetBlob(key, "hic-calib-other", "sig", &out) {
		t.Fatal("version-mismatched blob served")
	}
	// A blob entry can never satisfy a result lookup: the entry has no
	// `results` field, so the decoded results are zero and the version
	// comparison fails anyway (disjoint salt families).
	if _, ok := s2.Get(key, "hic-calib-test", "sig"); ok {
		// Get decodes entry{}: Results will be zero but Version matches;
		// this documents that callers must keep the salt families
		// disjoint — the fidelity layer never issues a result lookup
		// under a hic-calib-/hic-ckpt- salt.
		t.Log("result lookup decoded a blob entry (zero Results); salt families keep this unreachable in practice")
	}
	// Corrupt blob payloads are dropped like corrupt result entries.
	if err := os.WriteFile(filepath.Join(s.Dir(), key+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s2.GetBlob(key, "hic-calib-test", "sig", &out) {
		t.Fatal("corrupt blob served")
	}
	if s2.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1", s2.Corrupt())
	}
}

// TestPruneMtimeLRU fills a store past a budget and checks Prune removes
// the oldest entries first, leaving the store within budget.
func TestPruneMtimeLRU(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 6)
	var entrySize int64
	for i := range keys {
		canon := string(rune('a' + i))
		keys[i] = Key("v1", canon)
		if err := s.Put(keys[i], "v1", canon, host.Results{AppThroughputGbps: float64(i)}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(filepath.Join(s.Dir(), keys[i]+".json"))
		if err != nil {
			t.Fatal(err)
		}
		entrySize = info.Size()
		// Distinct mtimes so the LRU order is unambiguous on coarse
		// filesystem timestamp granularity.
		old := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(filepath.Join(s.Dir(), keys[i]+".json"), old, old); err != nil {
			t.Fatal(err)
		}
	}
	budget := 3*entrySize + entrySize/2 // room for exactly 3 entries
	removed, freed, err := s.Prune(budget)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || freed != 3*entrySize {
		t.Fatalf("Prune removed %d (%d bytes), want 3 (%d bytes)", removed, freed, 3*entrySize)
	}
	if n, _ := s.Len(); n != 3 {
		t.Fatalf("Len after prune = %d, want 3", n)
	}
	// Oldest three gone — and gone from the memory layer too, so a
	// lookup against a fresh version of the data is honest.
	s2, _ := Open(s.Dir())
	for i, key := range keys {
		_, ok := s2.Get(key, "v1", string(rune('a'+i)))
		if want := i >= 3; ok != want {
			t.Fatalf("entry %d present=%v, want %v", i, ok, want)
		}
	}
	// A store already under budget is untouched.
	if removed, _, _ := s.Prune(budget); removed != 0 {
		t.Fatalf("second Prune removed %d entries", removed)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := Key("v1", "a=1;")
	if Key("v2", "a=1;") == base {
		t.Fatal("version does not change the key")
	}
	if Key("v1", "a=2;") == base {
		t.Fatal("canonical does not change the key")
	}
	if Key("v1", "a=1;") != base {
		t.Fatal("key is not deterministic")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			canon := string(rune('a' + i%4))
			key := Key("v1", canon)
			r := host.Results{AppThroughputGbps: float64(i % 4)}
			if err := s.Put(key, "v1", canon, r); err != nil {
				t.Error(err)
			}
			if _, ok := s.Get(key, "v1", canon); !ok {
				t.Errorf("entry %q vanished", canon)
			}
		}(i)
	}
	wg.Wait()
	if n, err := s.Len(); err != nil || n != 4 {
		t.Fatalf("Len = %d (%v), want 4", n, err)
	}
}
