package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Backend is the raw byte store a Store sits on top of: a flat
// content-addressed namespace of opaque entry payloads. The Store owns
// everything semantic — the entry/blob JSON envelopes, version and
// canonical verification, the write-through memory layer, singleflight,
// and hit/miss accounting — while the backend only moves bytes, so one
// Store implementation serves both a local directory (diskBackend) and
// a coordinator's cache API on another machine (HTTPBackend).
//
// Load treats every failure as absence: the cache is an accelerator and
// never an error source, so an unreachable backend degrades to a 0% hit
// rate, not a failed run. Store is the one fallible operation — losing
// a computed result silently would recompute it forever.
type Backend interface {
	// Load returns the raw entry payload for key, or false when the
	// backend has no (readable) entry.
	Load(key string) ([]byte, bool)
	// Store durably writes the payload for key. Writes must be atomic:
	// a concurrent Load observes either the old payload or the new one,
	// never a torn prefix.
	Store(key string, data []byte) error
	// Delete removes the entry, if present (corrupt-entry cleanup).
	Delete(key string)
	// Touch marks the entry recently used, best effort. Disk backends
	// bump the file mtime so size-budget pruning (Prune) evicts in
	// least-recently-*used* order rather than write order; backends with
	// no local eviction (HTTP — the coordinator prunes its own disk)
	// no-op.
	Touch(key string)
	// Name identifies the backend for logs and prune messages: the
	// directory path for disk, the base URL for HTTP.
	Name() string
}

// entryInfo describes one stored entry for pruning and enumeration.
type entryInfo struct {
	key   string
	size  int64
	mtime int64 // UnixNano
}

// lister is the optional enumeration side of a Backend. Disk implements
// it; remote backends do not (the machine that owns the bytes owns the
// eviction policy too), which makes Store.Prune and Store.Len no-ops
// there.
type lister interface {
	entries() ([]entryInfo, error)
}

// diskBackend stores each entry as <key>.json under one directory —
// the layout every release so far has used, so existing cache
// directories keep working unchanged.
type diskBackend struct {
	dir string
}

// NewDisk creates (if needed) and opens a directory-backed Backend.
func NewDisk(dir string) (Backend, error) {
	if dir == "" {
		dir = DefaultDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: creating %s: %w", dir, err)
	}
	return &diskBackend{dir: dir}, nil
}

func (d *diskBackend) path(key string) string { return filepath.Join(d.dir, key+".json") }

func (d *diskBackend) Load(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Store writes via temp file + rename so concurrent sweep goroutines
// and interrupted runs never leave a torn entry behind.
func (d *diskBackend) Store(key string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

func (d *diskBackend) Delete(key string) { os.Remove(d.path(key)) }

func (d *diskBackend) Touch(key string) {
	now := time.Now()
	os.Chtimes(d.path(key), now, now)
}

func (d *diskBackend) Name() string { return d.dir }

func (d *diskBackend) entries() ([]entryInfo, error) {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var out []entryInfo
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		out = append(out, entryInfo{
			key:   de.Name()[:len(de.Name())-len(".json")],
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
	}
	return out, nil
}
