// Package runcache memoizes simulation results on disk, keyed by a
// content address of the scenario parameters. Every paper figure is a
// grid of independent core.Params points; re-running a figure after
// touching one grid dimension should recompute only the changed points.
// The cache makes that incremental: a point whose canonical parameter
// encoding (plus a simulator-version salt) hashes to a stored entry is
// served from disk, byte-identical to a cold run because the simulator
// itself is bit-deterministic per seed.
//
// Entries are JSON files named <sha256>.json under the store directory
// (default results/cache/). Invalidation is by key construction: the
// canonical encoding includes every parameter field, and the version
// salt (core.SimVersion) is bumped whenever simulator behavior changes,
// so stale entries are simply never addressed again.
//
// The byte layer underneath a Store is pluggable (see Backend): the
// default is a local directory, and NewHTTP reaches the same namespace
// served by a hicserve coordinator, so content-addressed results,
// calibration blobs, and warm checkpoints dedup across machines — one
// worker's DES anchor warms every other worker's fluid routing.
//
// The execution fidelity participates in the version salt. Pure DES
// results are stored under core.SimVersion exactly as before; the
// fidelity layer (internal/fidelity) salts every approximate strategy
// differently — early-stopped DES appends the stopping rule
// (core.EarlyStop.Version), calibrated fluid appends the fluid model
// version plus the calibration anchor coordinates, and uncalibrated
// fluid appends "+raw". A fluid or early-stopped result can therefore
// never satisfy a pure-DES lookup, or vice versa, even in a shared
// cache directory; internal/core's TestFluidAndDESNeverShareCacheEntry
// pins this.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"hic/internal/host"
)

// DefaultDir is the conventional store location, relative to the
// invocation directory of the cmd/ tools.
const DefaultDir = "results/cache"

// Key content-addresses a canonical parameter encoding under a
// simulator-version salt. Same version + same canonical string ⇒ same
// key; anything else ⇒ a different, never-before-seen key.
func Key(version, canonical string) string {
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return hex.EncodeToString(h.Sum(nil))
}

// entry is the stored format. Canonical is stored alongside the results
// so a cache directory is auditable (and hash collisions detectable).
type entry struct {
	Version   string       `json:"version"`
	Canonical string       `json:"canonical"`
	Results   host.Results `json:"results"`
}

// Store is a Backend-backed result cache. It is safe for concurrent
// use by the parallel sweep runners.
type Store struct {
	be Backend

	mu  sync.Mutex
	mem map[string]host.Results // write-through in-memory layer

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64

	// flight collapses concurrent computations of one key into a single
	// simulation; its memo layer is disabled because mem above already
	// memoizes completed entries.
	flight *Flight
}

// Open creates (if needed) and opens a disk store rooted at dir.
func Open(dir string) (*Store, error) {
	be, err := NewDisk(dir)
	if err != nil {
		return nil, err
	}
	return NewStore(be), nil
}

// NewStore wraps a Backend in the full Store machinery (memory layer,
// singleflight, accounting).
func NewStore(be Backend) *Store {
	return &Store{be: be, mem: make(map[string]host.Results), flight: NewFlight(false)}
}

// OpenRemote opens the results namespace a hicserve coordinator serves
// at base (e.g. "http://coordinator:8091") — the -cache-url path every
// CLI shares. Remote stores never prune (the coordinator owns
// eviction) and degrade to misses when the coordinator is unreachable.
func OpenRemote(base string) *Store {
	return NewStore(NewHTTP(RemoteURL(base, RemoteResultsPath), nil))
}

// Backend exposes the byte layer, so a coordinator can serve its own
// store's backend over HTTP (see BackendHandler).
func (s *Store) Backend() Backend { return s.be }

// Dir returns the store's backing location — the root directory for
// disk stores, the base URL for remote ones.
func (s *Store) Dir() string { return s.be.Name() }

// Get returns the memoized results for key. A missing, unreadable, or
// version/canonical-mismatched entry is a miss — the cache is purely an
// accelerator and never an error source. A backend hit bumps the
// entry's recency (Backend.Touch) so size-budget pruning evicts cold
// entries instead of hot ones; hits served by the in-memory layer don't
// re-touch, which is harmless because the first hit of the process
// already did.
func (s *Store) Get(key, version, canonical string) (host.Results, bool) {
	s.mu.Lock()
	if r, ok := s.mem[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return r, true
	}
	s.mu.Unlock()

	data, ok := s.be.Load(key)
	if !ok {
		s.misses.Add(1)
		return host.Results{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		// Corrupt or truncated entry (interrupted write on a filesystem
		// without atomic rename, disk trouble, manual tampering): delete
		// it so the recomputed result can be stored cleanly, and count it
		// separately from ordinary misses so a rotting cache directory is
		// visible in -v output and on /metrics.
		s.dropCorrupt(key)
		return host.Results{}, false
	}
	if e.Version != version || e.Canonical != canonical {
		s.misses.Add(1)
		return host.Results{}, false
	}
	s.mu.Lock()
	s.mem[key] = e.Results
	s.mu.Unlock()
	s.be.Touch(key)
	s.hits.Add(1)
	return e.Results, true
}

// Contains reports whether a valid entry for key exists, without
// counting a hit or a miss — a pure peek for callers (the fidelity
// warm-start planner) that only need to know whether the exact result
// is already paid for, and must not skew the lookup accounting of the
// run that follows. It doesn't touch recency either.
func (s *Store) Contains(key, version, canonical string) bool {
	s.mu.Lock()
	if _, ok := s.mem[key]; ok {
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	data, ok := s.be.Load(key)
	if !ok {
		return false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return false
	}
	return e.Version == version && e.Canonical == canonical
}

// Put stores results under key. Disk writes are atomic (temp file +
// rename) so concurrent sweep goroutines and interrupted runs never
// leave a torn entry behind.
func (s *Store) Put(key, version, canonical string, r host.Results) error {
	s.mu.Lock()
	s.mem[key] = r
	s.mu.Unlock()

	data, err := json.MarshalIndent(entry{Version: version, Canonical: canonical, Results: r}, "", " ")
	if err != nil {
		return fmt.Errorf("runcache: encoding entry: %w", err)
	}
	return s.be.Store(key, data)
}

// GetOrCompute returns the results for key, computing and storing them
// at most once across concurrent callers: a lookup miss runs compute
// under the store's singleflight, so N workers hitting the same cold
// key cost one simulation, one Put, and N-1 collapses. Put failures are
// returned (a broken cache directory should not be silently recomputed
// forever); compute errors propagate to every collapsed caller.
func (s *Store) GetOrCompute(key, version, canonical string, compute func() (host.Results, error)) (host.Results, error) {
	return s.flight.Do(key, func() (host.Results, error) {
		if r, ok := s.Get(key, version, canonical); ok {
			return r, nil
		}
		r, err := compute()
		if err != nil {
			return host.Results{}, err
		}
		if err := s.Put(key, version, canonical, r); err != nil {
			return host.Results{}, err
		}
		return r, nil
	})
}

// dropCorrupt removes an undecodable entry and records the event. A
// corrupt entry counts as a miss too, so hit+miss totals still add up
// to lookups.
func (s *Store) dropCorrupt(key string) {
	s.be.Delete(key)
	s.corrupt.Add(1)
	s.misses.Add(1)
}

// Hits returns how many lookups were served from the cache.
func (s *Store) Hits() uint64 { return s.hits.Load() }

// Misses returns how many lookups fell through to a simulation run.
func (s *Store) Misses() uint64 { return s.misses.Load() }

// Corrupt returns how many undecodable entries were found and deleted.
func (s *Store) Corrupt() uint64 { return s.corrupt.Load() }

// Stats is the counter bundle the cmd/ tools print with -v.
type Stats struct {
	// Hits and Misses count store lookups (memory layer + backend).
	Hits, Misses uint64
	// Corrupt counts undecodable entries found during lookups; each was
	// deleted and also counted as a miss.
	Corrupt uint64
	// Collapses counts simulations avoided by in-process singleflight:
	// GetOrCompute calls that shared another caller's in-flight run.
	Collapses uint64
}

// Stats returns the store's lookup and singleflight counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.Hits(), Misses: s.Misses(), Corrupt: s.Corrupt(), Collapses: s.flight.Collapses()}
}

// MetricsInto implements the control plane's MetricSource interface:
// live cache counters under the hic_runcache_ prefix, sampled from the
// store's atomics on every /metrics scrape.
func (s *Store) MetricsInto(emit func(name, typ string, v float64)) {
	st := s.Stats()
	emit("hic_runcache_hits_total", "counter", float64(st.Hits))
	emit("hic_runcache_misses_total", "counter", float64(st.Misses))
	emit("hic_runcache_collapses_total", "counter", float64(st.Collapses))
	emit("hic_runcache_corrupt_total", "counter", float64(st.Corrupt))
}

// Summary renders the stats on one line for the cmd/ tools' logs.
func (s *Store) Summary() string {
	st := s.Stats()
	out := fmt.Sprintf("%d hits, %d misses", st.Hits, st.Misses)
	if st.Collapses > 0 {
		out += fmt.Sprintf(", %d singleflight collapses", st.Collapses)
	}
	if st.Corrupt > 0 {
		out += fmt.Sprintf(", %d corrupt entries dropped", st.Corrupt)
	}
	return out
}

// Len reports how many entries the store's backend currently holds.
// Backends that don't enumerate (remote stores — the coordinator owns
// the bytes) report zero.
func (s *Store) Len() (int, error) {
	l, ok := s.be.(lister)
	if !ok {
		return 0, nil
	}
	es, err := l.entries()
	if err != nil {
		return 0, err
	}
	return len(es), nil
}
