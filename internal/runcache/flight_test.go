package runcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hic/internal/host"
)

// waitCollapses parks until the flight (or store) reports want collapsed
// callers. Collapse counters increment before a caller parks on the
// in-flight wait, so reaching want means exactly one caller is computing
// and want callers are parked — the release below then provably
// exercises the collapse path, not a lucky interleaving.
func waitCollapses(t *testing.T, current func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for current() != want {
		if time.Now().After(deadline) {
			t.Fatalf("collapses stuck at %d, want %d", current(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	f := NewFlight(false)
	const callers = 16
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]host.Results, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := f.Do("k", func() (host.Results, error) {
				<-gate // hold every other caller in the in-flight wait
				computes.Add(1)
				return host.Results{RxPackets: 42}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	waitCollapses(t, f.Collapses, callers-1)
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, r := range results {
		if r.RxPackets != 42 {
			t.Fatalf("caller %d got %+v", i, r)
		}
	}
	if c := f.Collapses(); c != callers-1 {
		t.Fatalf("Collapses() = %d, want %d", c, callers-1)
	}
}

func TestFlightMemoization(t *testing.T) {
	var computes atomic.Int32
	compute := func() (host.Results, error) {
		computes.Add(1)
		return host.Results{Drops: 7}, nil
	}

	memo := NewFlight(true)
	for i := 0; i < 5; i++ {
		if _, err := memo.Do("k", compute); err != nil {
			t.Fatal(err)
		}
	}
	if computes.Load() != 1 {
		t.Fatalf("memoizing flight computed %d times, want 1", computes.Load())
	}
	if memo.Collapses() != 4 {
		t.Fatalf("Collapses() = %d, want 4", memo.Collapses())
	}

	computes.Store(0)
	plain := NewFlight(false)
	for i := 0; i < 5; i++ {
		if _, err := plain.Do("k", compute); err != nil {
			t.Fatal(err)
		}
	}
	if computes.Load() != 5 {
		t.Fatalf("non-memoizing flight computed %d times, want 5 (sequential calls never overlap)", computes.Load())
	}
}

func TestFlightErrorsNotMemoized(t *testing.T) {
	f := NewFlight(true)
	boom := errors.New("boom")
	calls := 0
	if _, err := f.Do("k", func() (host.Results, error) {
		calls++
		return host.Results{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	r, err := f.Do("k", func() (host.Results, error) {
		calls++
		return host.Results{Goodput: 9}, nil
	})
	if err != nil || r.Goodput != 9 {
		t.Fatalf("retry after error: r=%+v err=%v", r, err)
	}
	if calls != 2 {
		t.Fatalf("compute calls = %d, want 2 (error must not be memoized)", calls)
	}
}

// TestFlightConcurrentErrorsNotMemoized drives the error path under
// contention: every caller collapsed onto a failing computation receives
// its error, and the failure leaves no residue — a later concurrent wave
// on the same key computes exactly once and succeeds.
func TestFlightConcurrentErrorsNotMemoized(t *testing.T) {
	f := NewFlight(true)
	boom := errors.New("boom")
	const callers = 8

	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Do("k", func() (host.Results, error) {
				<-gate // park every other caller in the in-flight wait
				return host.Results{}, boom
			})
		}(i)
	}
	waitCollapses(t, f.Collapses, callers-1)
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("collapsed caller %d got err = %v, want the leader's error", i, err)
		}
	}

	// Second wave: the error must not have been memoized, and the retry
	// collapses onto a single fresh computation that everyone shares.
	var computes atomic.Int32
	gate2 := make(chan struct{})
	before := f.Collapses()
	results := make([]host.Results, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			results[i], err = f.Do("k", func() (host.Results, error) {
				<-gate2
				computes.Add(1)
				return host.Results{Goodput: 9}, nil
			})
			if err != nil {
				t.Errorf("retry caller %d: %v", i, err)
			}
		}(i)
	}
	waitCollapses(t, f.Collapses, before+callers-1)
	close(gate2)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("retry computed %d times, want 1 (error memoized or flight stuck)", got)
	}
	for i, r := range results {
		if r.Goodput != 9 {
			t.Fatalf("retry caller %d got %+v", i, r)
		}
	}
}

func TestFlightDistinctKeysDoNotCollapse(t *testing.T) {
	f := NewFlight(true)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := f.Do(k, func() (host.Results, error) {
			return host.Results{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Collapses() != 0 {
		t.Fatalf("Collapses() = %d across distinct keys, want 0", f.Collapses())
	}
}

// TestStoreGetOrComputeSingleflight drives the store-level entry point
// concurrently: one simulation, one miss, and N-1 collapses for a cold
// key; pure hits afterwards.
func TestStoreGetOrComputeSingleflight(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.GetOrCompute("key1", "v1", "canon1", func() (host.Results, error) {
				<-gate
				computes.Add(1)
				return host.Results{Reads: 5}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	waitCollapses(t, func() uint64 { return s.Stats().Collapses }, callers-1)
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times", computes.Load())
	}
	st := s.Stats()
	if st.Collapses != callers-1 {
		t.Fatalf("Collapses = %d, want %d", st.Collapses, callers-1)
	}
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}

	// A later call is a plain memory-layer hit, no new compute.
	if _, err := s.GetOrCompute("key1", "v1", "canon1", func() (host.Results, error) {
		t.Fatal("computed despite stored entry")
		return host.Results{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Hits != st.Hits+1 {
		t.Fatalf("Hits = %d, want %d", got.Hits, st.Hits+1)
	}
}

func TestSummaryMentionsCollapses(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Summary(); got != "0 hits, 0 misses" {
		t.Fatalf("Summary() = %q", got)
	}
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.GetOrCompute("k", "v", "c", func() (host.Results, error) {
				<-gate
				return host.Results{}, nil
			})
		}()
	}
	waitCollapses(t, func() uint64 { return s.Stats().Collapses }, 1)
	close(gate)
	wg.Wait()
	if got := s.Summary(); got != "0 hits, 1 misses, 1 singleflight collapses" {
		t.Fatalf("Summary() = %q", got)
	}
}
