// Package mem models the host memory subsystem of one NUMA node: a memory
// controller fed by DDR channels whose bandwidth is shared — first come,
// first served, blind to the source — between CPU cores and the NIC's DMA
// engine (via the PCIe root complex).
//
// The paper (§3.2) explains memory-bus-induced host congestion through the
// load–latency curve of this closed-loop system: as offered load approaches
// the achievable bandwidth, the service time of every request (including
// the PCIe writes that carry arriving packets, and the page-table walks the
// IOMMU performs) inflates steeply. We reproduce exactly that mechanism:
//
//   - CPU traffic (STREAM antagonists, receive-path copies) is fluid: each
//     source registers an offered byte rate, re-evaluated every epoch.
//   - IO traffic (DMA writes, IOMMU page-walk reads) is discrete: each
//     request occupies a FIFO virtual server whose rate is the bandwidth
//     left over after the CPU's grab, plus a per-access latency multiplied
//     by the current load factor.
//   - When total offered load exceeds capacity, CPUs acquire up to
//     CPUMaxShare of the bus (the imbalance the paper observes); the NIC
//     gets the remainder, unless an MBA-style reservation (§4(c)) guarantees
//     it a minimum share.
package mem

import (
	"fmt"
	"math"
	"sort"

	"hic/internal/metrics"
	"hic/internal/sim"
)

// Config describes one NUMA node's memory subsystem. The defaults mirror
// the paper's testbed: 6 DDR4-2400 channels = 115.2 GB/s theoretical,
// ~100 GB/s achievable, ~90 ns loaded-to-idle DRAM access.
type Config struct {
	// TheoreticalBW is the aggregate channel bandwidth (paper: 115.2 GB/s).
	TheoreticalBW sim.BitsPerSecond
	// Efficiency is the achievable fraction of TheoreticalBW once refresh,
	// turnarounds and bank conflicts are accounted for (~0.87).
	Efficiency float64
	// BaseLatency is the uncontended DRAM access latency.
	BaseLatency sim.Duration
	// MaxLoadFactor caps the latency multiplier at saturation.
	MaxLoadFactor float64
	// LoadCurveA scales the pre-saturation latency growth A·ρ⁸/(1−ρ):
	// DRAM controllers sustain high utilization with modest latency
	// growth until very near capacity, unlike an M/M/1 queue.
	LoadCurveA float64
	// LoadCurveB scales the post-saturation growth B·(ρ−1): overload
	// queues requests and every extra offered byte deepens the wait.
	LoadCurveB float64
	// CPUMaxShare is the largest fraction of achievable bandwidth the CPU
	// side can grab under contention (paper: CPUs out-compete the NIC).
	CPUMaxShare float64
	// IOReservedShare guarantees the IO side a minimum fraction of
	// achievable bandwidth (0 = off). This models the §4(c) MBA/MPAM-style
	// QoS extension and is used by the ext-mba experiment.
	IOReservedShare float64
	// Epoch is the re-evaluation period for fluid demand accounting.
	Epoch sim.Duration
}

// DefaultConfig returns the paper-testbed configuration.
func DefaultConfig() Config {
	return Config{
		TheoreticalBW: sim.GBpsRate(115.2),
		Efficiency:    0.87,
		BaseLatency:   90 * sim.Nanosecond,
		MaxLoadFactor: 3.5,
		LoadCurveA:    0.15,
		LoadCurveB:    3,
		CPUMaxShare:   0.82,
		Epoch:         5 * sim.Microsecond,
	}
}

func (c Config) validate() error {
	if c.TheoreticalBW <= 0 {
		return fmt.Errorf("mem: non-positive theoretical bandwidth")
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		return fmt.Errorf("mem: efficiency %v outside (0,1]", c.Efficiency)
	}
	if c.BaseLatency <= 0 {
		return fmt.Errorf("mem: non-positive base latency")
	}
	if c.CPUMaxShare <= 0 || c.CPUMaxShare > 1 {
		return fmt.Errorf("mem: CPUMaxShare %v outside (0,1]", c.CPUMaxShare)
	}
	if c.IOReservedShare < 0 || c.IOReservedShare >= 1 {
		return fmt.Errorf("mem: IOReservedShare %v outside [0,1)", c.IOReservedShare)
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("mem: non-positive epoch")
	}
	if c.MaxLoadFactor < 1 {
		return fmt.Errorf("mem: MaxLoadFactor %v < 1", c.MaxLoadFactor)
	}
	if c.LoadCurveA < 0 || c.LoadCurveB < 0 {
		return fmt.Errorf("mem: negative load-curve coefficient")
	}
	return nil
}

// Controller is the memory controller for one NUMA node.
type Controller struct {
	engine *sim.Engine
	cfg    Config

	// Fluid CPU-side demand, bytes/second per source.
	cpuDemand map[string]float64
	cpuTotal  float64 // sum of cpuDemand

	// Discrete IO-side virtual server.
	ioBusyUntil  sim.Time
	ioEpochBytes uint64  // IO bytes requested during the current epoch
	ioOffered    float64 // smoothed IO offered load, bytes/second

	// Derived allocation, recomputed every epoch or on demand change.
	cpuAchieved   float64 // bytes/second actually granted to CPU side
	ioServiceRate float64 // bytes/second available to the IO server
	loadFactor    float64 // latency multiplier from the load–latency curve

	// Measurement.
	cpuServedBytes float64 // integral of cpuAchieved over time
	lastAccount    sim.Time
	ioServed       *metrics.Counter
	ioRequests     *metrics.Counter
	ioQueue        *metrics.Gauge
	latencyHist    *metrics.Histogram // per-access latency, ns
}

// New constructs a controller and starts its accounting ticker.
func New(engine *sim.Engine, reg *metrics.Registry, cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		engine:      engine,
		cfg:         cfg,
		cpuDemand:   make(map[string]float64),
		loadFactor:  1,
		lastAccount: engine.Now(),
		ioServed:    reg.Counter("mem.io.bytes"),
		ioRequests:  reg.Counter("mem.io.requests"),
		ioQueue:     reg.Gauge("mem.io.queue"),
		latencyHist: reg.Histogram("mem.access.latency.ns"),
	}
	c.recompute()
	engine.Every(cfg.Epoch, c.epoch)
	return c, nil
}

// capacity returns the achievable bandwidth in bytes/second.
func (c *Controller) capacity() float64 {
	return c.cfg.TheoreticalBW.BytesPerSecond() * c.cfg.Efficiency
}

// SetCPUDemand registers (or updates) a fluid CPU-side demand source. A
// zero rate removes the source. Rates are offered load; the controller
// decides how much is achieved.
func (c *Controller) SetCPUDemand(source string, bytesPerSecond float64) {
	if bytesPerSecond < 0 {
		bytesPerSecond = 0
	}
	c.accountCPU()
	if bytesPerSecond == 0 {
		delete(c.cpuDemand, source)
	} else {
		c.cpuDemand[source] = bytesPerSecond
	}
	// Sum in sorted key order: float addition is not associative, and
	// Go map iteration order is random — summing in map order would make
	// runs non-reproducible in the last bits.
	keys := make([]string, 0, len(c.cpuDemand))
	for k := range c.cpuDemand {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.cpuTotal = 0
	for _, k := range keys {
		c.cpuTotal += c.cpuDemand[k]
	}
	c.recompute()
}

// accountCPU integrates achieved CPU bandwidth up to now.
func (c *Controller) accountCPU() {
	now := c.engine.Now()
	dt := now.Sub(c.lastAccount).Seconds()
	if dt > 0 {
		c.cpuServedBytes += c.cpuAchieved * dt
	}
	c.lastAccount = now
}

// epoch folds the IO bytes observed during the last epoch into the
// smoothed offered-load estimate and recomputes the allocation.
func (c *Controller) epoch() {
	c.accountCPU()
	inst := float64(c.ioEpochBytes) / c.cfg.Epoch.Seconds()
	c.ioEpochBytes = 0
	const alpha = 0.3 // EWMA smoothing for the IO offered-load estimate
	c.ioOffered = alpha*inst + (1-alpha)*c.ioOffered
	c.recompute()
}

// recompute derives the allocation and load factor from current demands.
//
// Allocation: the CPU side achieves its offered load up to
// capacity·min(CPUMaxShare, 1−IOReservedShare); the IO virtual server runs
// at whatever remains. This encodes the paper's observation that under
// contention the CPUs acquire the larger fraction of the bus.
//
// Load factor: a closed-loop load–latency curve 1/(1−ρ), with ρ computed
// from total offered load and capped so the multiplier never exceeds
// MaxLoadFactor. Every discrete access pays BaseLatency·loadFactor.
func (c *Controller) recompute() {
	cap := c.capacity()
	cpuLimit := cap * math.Min(c.cfg.CPUMaxShare, 1-c.cfg.IOReservedShare)
	c.cpuAchieved = math.Min(c.cpuTotal, cpuLimit)
	c.ioServiceRate = cap - c.cpuAchieved
	// FCFS never starves a requester completely: even with the CPUs
	// allowed the whole bus, interleaved IO requests win some slots.
	minIO := cap * 0.01
	if r := cap * c.cfg.IOReservedShare; r > minIO {
		minIO = r
	}
	if c.ioServiceRate < minIO {
		c.ioServiceRate = minIO
	}

	rho := (c.cpuTotal + c.ioOffered) / cap
	if rho < 0 {
		rho = 0
	}
	// With an MBA-style reservation, the IO side rides its own lane:
	// its latency follows the lane's utilization, not the (throttled)
	// CPU side's queue — that is the point of the QoS mechanism.
	if r := c.cfg.IOReservedShare; r > 0 {
		lane := c.ioOffered / (cap * r)
		if lane < rho {
			rho = lane
		}
	}
	// Closed-loop load–latency curve with a DRAM-like knee: latency is
	// near-flat until ~90% utilization, grows as A·ρ⁸/(1−ρ) approaching
	// saturation, and linearly in the overload depth beyond it, capped
	// at MaxLoadFactor.
	rhoC := math.Min(rho, 0.95)
	lf := 1 + c.cfg.LoadCurveA*math.Pow(rhoC, 8)/(1-rhoC)
	if rho > 1 {
		lf += c.cfg.LoadCurveB * (rho - 1)
	}
	if lf > c.cfg.MaxLoadFactor {
		lf = c.cfg.MaxLoadFactor
	}
	c.loadFactor = lf
}

// AccessLatency returns the current per-access DRAM latency (base latency
// scaled by the load factor). IOMMU page walks use this directly.
func (c *Controller) AccessLatency() sim.Duration {
	return sim.Duration(float64(c.cfg.BaseLatency) * c.loadFactor)
}

// LoadFactor returns the current latency multiplier (≥1).
func (c *Controller) LoadFactor() float64 { return c.loadFactor }

// IOOffered returns the smoothed IO offered-load estimate (bytes/s) —
// the memory controller's slow state, captured into steady-state
// checkpoints so a warm start begins at the donor's converged demand
// estimate instead of re-learning it over many EWMA epochs.
func (c *Controller) IOOffered() float64 { return c.ioOffered }

// PrimeIOOffered seeds the smoothed IO offered-load estimate from a
// donor run and recomputes the bandwidth allocation, so the first
// accesses of a warm-started run already pay converged contention
// latency. Negative values are ignored.
func (c *Controller) PrimeIOOffered(bytesPerSecond float64) {
	if bytesPerSecond < 0 {
		return
	}
	c.ioOffered = bytesPerSecond
	c.recompute()
}

// QueueDelay returns the current backlog of the IO virtual server: how
// long a request issued now would wait before its transfer begins. Spans
// annotate their memory stages with it, and drop attribution reads it as
// the instantaneous "DRAM queue wait" signal.
func (c *Controller) QueueDelay() sim.Duration {
	d := c.ioBusyUntil.Sub(c.engine.Now())
	if d < 0 {
		return 0
	}
	return d
}

// Utilization returns total offered load over achievable capacity. Values
// above 1 indicate overload.
func (c *Controller) Utilization() float64 {
	return (c.cpuTotal + c.ioOffered) / c.capacity()
}

// CPUOffered returns the current total fluid CPU demand in bytes/second.
func (c *Controller) CPUOffered() float64 { return c.cpuTotal }

// CPUAchieved returns the bandwidth currently granted to the CPU side.
func (c *Controller) CPUAchieved() float64 { return c.cpuAchieved }

// IOServiceRate returns the bandwidth currently available to IO requests.
func (c *Controller) IOServiceRate() float64 { return c.ioServiceRate }

// request serves one discrete IO access of n bytes through the FIFO
// virtual server and invokes done when it completes. The latency is
// queueing (server busy time) + transfer at the IO service rate + one
// loaded DRAM access.
func (c *Controller) request(n int, done func()) {
	if n < 0 {
		panic("mem: negative request size")
	}
	now := c.engine.Now()
	c.ioRequests.Inc()
	c.ioEpochBytes += uint64(n)

	rate := c.ioServiceRate
	if rate <= 0 {
		rate = 1 // fully starved: crawl rather than divide by zero
	}
	transfer := sim.Duration(float64(n) / rate * 1e9)
	access := c.AccessLatency()

	start := c.ioBusyUntil
	if start < now {
		start = now
	}
	// The server is occupied for the transfer only; the per-access DRAM
	// latency pipelines across banks and adds to completion time without
	// consuming bandwidth.
	c.ioBusyUntil = start.Add(transfer)
	finish := start.Add(transfer + access)
	c.ioQueue.Set(int64(finish.Sub(now)))

	total := finish.Sub(now)
	c.latencyHist.Observe(float64(total))
	c.ioServed.Add(uint64(n))
	c.engine.At(finish, done)
}

// Write performs a DMA-side memory write of n bytes (a PCIe posted write
// landing in DRAM), invoking done at completion.
func (c *Controller) Write(n int, done func()) { c.request(n, done) }

// Read performs an IO-side memory read of n bytes (page-table walk steps,
// descriptor fetches), invoking done at completion.
func (c *Controller) Read(n int, done func()) { c.request(n, done) }

// IOServedBytes returns the total bytes served to the IO side so far.
func (c *Controller) IOServedBytes() uint64 { return c.ioServed.Value() }

// CPUServedBytes returns the integral of achieved CPU bandwidth so far.
func (c *Controller) CPUServedBytes() float64 {
	c.accountCPU()
	return c.cpuServedBytes
}

// TotalBandwidthGBps returns the total achieved memory bandwidth since
// since (a sim.Time), in GB/s — the quantity Figure 6's top panels plot.
func (c *Controller) TotalBandwidthGBps(since sim.Time, sinceIOBytes uint64, sinceCPUBytes float64) float64 {
	dt := c.engine.Now().Sub(since).Seconds()
	if dt <= 0 {
		return 0
	}
	io := float64(c.ioServed.Value() - sinceIOBytes)
	cpu := c.CPUServedBytes() - sinceCPUBytes
	return (io + cpu) / dt / 1e9
}
