package mem

import (
	"testing"

	"hic/internal/metrics"
	"hic/internal/sim"
)

func newDRAM(t *testing.T, cfg DRAMConfig) (*sim.Engine, *DRAMSim) {
	t.Helper()
	e := sim.NewEngine(1)
	d, err := NewDRAMSim(e, metrics.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestDRAMConfigValidation(t *testing.T) {
	bad := []func(*DRAMConfig){
		func(c *DRAMConfig) { c.Channels = 0 },
		func(c *DRAMConfig) { c.BanksPerChannel = 0 },
		func(c *DRAMConfig) { c.LineBytes = 0 },
		func(c *DRAMConfig) { c.RowBytes = 32 },
		func(c *DRAMConfig) { c.TBurstNs = 0 },
		func(c *DRAMConfig) { c.TCAS = 0 },
		func(c *DRAMConfig) { c.QueueLimit = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultDRAMConfig()
		mutate(&cfg)
		if _, err := NewDRAMSim(sim.NewEngine(1), metrics.NewRegistry(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDRAMPeakBandwidthMatchesTestbed(t *testing.T) {
	// 6 channels of DDR4-2400 ≈ 115.2 GB/s theoretical.
	peak := DefaultDRAMConfig().PeakBandwidth().GBps()
	if peak < 113 || peak > 118 {
		t.Errorf("peak = %.1f GB/s, want ≈115", peak)
	}
}

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	e, d := newDRAM(t, DefaultDRAMConfig())
	var first, second, third sim.Time
	// Lines interleave across 6 channels, so "same row, same channel"
	// addresses stride by 6 lines.
	d.Access(0, func() { first = e.Now() })
	e.Run(e.Now().Add(sim.Microsecond))
	d.Access(6*64, func() { second = e.Now() }) // channel 0, row 0: row hit
	start2 := e.Now()
	e.Run(e.Now().Add(sim.Microsecond))
	// Different row, same channel and bank: precharge + activate.
	ch0, bank0, row0 := d.route(0)
	conflictAddr := uint64(3 * DefaultDRAMConfig().RowBytes * DefaultDRAMConfig().BanksPerChannel)
	ch, b, row := d.route(conflictAddr)
	if ch != ch0 || b != bank0 || row == row0 {
		t.Fatalf("conflict address maps to ch%d/bank%d/row%d, want ch%d/bank%d/row!=%d",
			ch, b, row, ch0, bank0, row0)
	}
	start3 := e.Now()
	d.Access(conflictAddr, func() { third = e.Now() })
	e.Run(e.Now().Add(sim.Microsecond))

	lat1 := first.Sub(0)
	lat2 := second.Sub(start2)
	lat3 := third.Sub(start3)
	if !(lat2 < lat1 && lat1 < lat3) {
		t.Errorf("latencies hit=%v activate=%v conflict=%v; want hit < activate < conflict",
			lat2, lat1, lat3)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMiss != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", st.RowHits, st.RowMiss)
	}
}

func TestChannelInterleaving(t *testing.T) {
	_, d := newDRAM(t, DefaultDRAMConfig())
	seen := map[int]bool{}
	for line := 0; line < 6; line++ {
		ch, _, _ := d.route(uint64(line * 64))
		seen[ch] = true
	}
	if len(seen) != 6 {
		t.Errorf("6 consecutive lines map to %d channels, want all 6", len(seen))
	}
}

func TestBankQueueBackpressure(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.QueueLimit = 4
	_, d := newDRAM(t, cfg)
	accepted := 0
	for i := 0; i < 10; i++ {
		// Same bank, same row: all queue behind one another.
		if d.Access(uint64(i*64*6), func() {}) { // stride keeps channel 0
			accepted++
		}
	}
	if accepted >= 10 {
		t.Error("queue limit never rejected")
	}
	if d.Stats().Rejected == 0 {
		t.Error("rejected counter not incremented")
	}
}

func TestDRAMSustainsNearPeak(t *testing.T) {
	// Offered 60% of peak with random addresses must be served without
	// queue collapse and with latency within a small multiple of the
	// uncontended access time.
	lat, st, err := MeasureLoadLatency(DefaultDRAMConfig(), 0.6, 2*sim.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Served == 0 {
		t.Fatal("nothing served")
	}
	if st.Rejected > st.Served/100 {
		t.Errorf("rejections at 60%% load: %d of %d", st.Rejected, st.Served)
	}
	if lat > 400*sim.Nanosecond {
		t.Errorf("mean latency %v at 60%% load, want well under 400ns", lat)
	}
}

// TestFluidCurveMatchesBankModel is the validation behind the fluid
// approximation: the bank-level model's load–latency curve must share
// the fluid curve's shape — flat at low load, knee near saturation.
func TestFluidCurveMatchesBankModel(t *testing.T) {
	if testing.Short() {
		t.Skip("bank-level sweep is slow")
	}
	cfg := DefaultDRAMConfig()
	var lats []sim.Duration
	loads := []float64{0.2, 0.5, 0.8, 0.95}
	for _, load := range loads {
		lat, _, err := MeasureLoadLatency(cfg, load, 2*sim.Millisecond, 1)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, lat)
	}
	// Monotone increasing.
	for i := 1; i < len(lats); i++ {
		if lats[i] < lats[i-1] {
			t.Errorf("latency not monotone: %v", lats)
		}
	}
	// Flat region: 20% → 50% grows by far less than 50% → 95%.
	lowGrowth := float64(lats[1] - lats[0])
	highGrowth := float64(lats[3] - lats[2])
	if highGrowth < 2*lowGrowth {
		t.Errorf("no knee: low growth %v, high growth %v (lats=%v)",
			sim.Duration(lowGrowth), sim.Duration(highGrowth), lats)
	}
	// The fluid curve's loaded/idle latency ratio at 95% load should be
	// within the same ballpark (a factor of ~3) as the bank model's.
	fluidRatio := 1 + DefaultConfig().LoadCurveA*0.737/(1-0.95) // A·0.95⁸/(1−0.95)
	bankRatio := float64(lats[3]) / float64(lats[0])
	if bankRatio < fluidRatio/3 || bankRatio > fluidRatio*3 {
		t.Errorf("bank-model ratio %.2f far from fluid ratio %.2f", bankRatio, fluidRatio)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	e := sim.NewEngine(1)
	d, err := NewDRAMSim(e, metrics.NewRegistry(), DefaultDRAMConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Access(rng.Uint64n(1<<24)*64, func() {})
		if i%512 == 0 {
			e.Run(e.Now().Add(sim.Millisecond))
		}
	}
	e.Drain()
}
