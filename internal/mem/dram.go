package mem

import (
	"fmt"
	"math"

	"hic/internal/metrics"
	"hic/internal/sim"
)

// This file implements a request-level DRAM model — channels, banks,
// row buffers, and an FR-FCFS-style scheduler — used to validate the
// fluid load–latency curve the packet path runs on. Simulating every
// 64-byte line of an 11.8 GB/s DMA stream would cost hundreds of
// millions of events per experiment point, so the Controller above uses
// the fluid approximation; DRAMSim here exists to show (in tests and
// benchmarks) that the approximation's shape — flat, knee, overload
// growth — matches a faithful bank-level simulation.

// DRAMConfig describes the bank-level model. Defaults approximate one
// DDR4-2400 NUMA node: 6 channels × 16 banks, ~19.2 GB/s per channel.
type DRAMConfig struct {
	// Channels and BanksPerChannel set the parallelism.
	Channels, BanksPerChannel int
	// LineBytes is the access granularity (one cache line).
	LineBytes int
	// TBurstNs is the data-bus occupancy per line transfer on a channel,
	// in (fractional) nanoseconds — 64 B at 19.2 GB/s is 3.33 ns, below
	// the integer clock granularity.
	TBurstNs float64
	// TCAS is the column access latency (row already open).
	TCAS sim.Duration
	// TRCD is the row activation latency (row closed).
	TRCD sim.Duration
	// TRP is the precharge latency (row conflict: close then open).
	TRP sim.Duration
	// RowBytes is the row-buffer span; accesses within the same row hit
	// the open row.
	RowBytes int
	// QueueLimit bounds the per-channel request queue (back-pressure).
	QueueLimit int
}

// DefaultDRAMConfig returns the DDR4-2400-like configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:        6,
		BanksPerChannel: 16,
		LineBytes:       64,
		// 64 B burst at 19.2 GB/s per channel = 3.33 ns of bus time.
		TBurstNs:   64.0 * 1e9 / 19.2e9,
		TCAS:       14 * sim.Nanosecond,
		TRCD:       14 * sim.Nanosecond,
		TRP:        14 * sim.Nanosecond,
		RowBytes:   8192,
		QueueLimit: 256,
	}
}

func (c DRAMConfig) validate() error {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 {
		return fmt.Errorf("dram: channels and banks must be positive")
	}
	if c.LineBytes <= 0 || c.RowBytes < c.LineBytes {
		return fmt.Errorf("dram: bad line/row sizes")
	}
	if c.TBurstNs <= 0 || c.TCAS <= 0 || c.TRCD <= 0 || c.TRP <= 0 {
		return fmt.Errorf("dram: timing parameters must be positive")
	}
	if c.QueueLimit <= 0 {
		return fmt.Errorf("dram: QueueLimit must be positive")
	}
	return nil
}

// PeakBandwidth returns the aggregate data-bus bandwidth.
func (c DRAMConfig) PeakBandwidth() sim.BitsPerSecond {
	perChannel := float64(c.LineBytes) * 8 * 1e9 / c.TBurstNs
	return sim.BitsPerSecond(perChannel * float64(c.Channels))
}

type dramRequest struct {
	addr uint64
	done func()
	at   sim.Time
}

type dramBank struct {
	openRow   int64 // -1 = closed
	readyAt   sim.Time
	queue     []dramRequest
	servicing bool
}

// DRAMSim is the bank-level simulator. Addresses interleave across
// channels at line granularity (as real controllers do) and map to banks
// by row.
type DRAMSim struct {
	engine *sim.Engine
	cfg    DRAMConfig
	banks  [][]*dramBank // [channel][bank]
	busNs  []float64     // per-channel data-bus availability, fractional ns

	served   *metrics.Counter
	rowHits  *metrics.Counter
	rowMiss  *metrics.Counter
	rejected *metrics.Counter
	latency  *metrics.Histogram
}

// NewDRAMSim constructs the bank-level model.
func NewDRAMSim(engine *sim.Engine, reg *metrics.Registry, cfg DRAMConfig) (*DRAMSim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DRAMSim{
		engine:   engine,
		cfg:      cfg,
		busNs:    make([]float64, cfg.Channels),
		served:   reg.Counter("dram.requests"),
		rowHits:  reg.Counter("dram.row.hits"),
		rowMiss:  reg.Counter("dram.row.misses"),
		rejected: reg.Counter("dram.rejected"),
		latency:  reg.Histogram("dram.latency.ns"),
	}
	d.banks = make([][]*dramBank, cfg.Channels)
	for ch := range d.banks {
		d.banks[ch] = make([]*dramBank, cfg.BanksPerChannel)
		for b := range d.banks[ch] {
			d.banks[ch][b] = &dramBank{openRow: -1}
		}
	}
	return d, nil
}

// route maps an address to (channel, bank, row).
func (d *DRAMSim) route(addr uint64) (ch, bank int, row int64) {
	line := addr / uint64(d.cfg.LineBytes)
	ch = int(line % uint64(d.cfg.Channels))
	rowGlobal := addr / uint64(d.cfg.RowBytes)
	bank = int(rowGlobal % uint64(d.cfg.BanksPerChannel))
	row = int64(rowGlobal / uint64(d.cfg.BanksPerChannel))
	return ch, bank, row
}

// Access requests one line at addr; done fires at completion. It reports
// false (and drops the request) if the bank queue is full — callers see
// back-pressure instead of unbounded queueing.
func (d *DRAMSim) Access(addr uint64, done func()) bool {
	ch, bankIdx, _ := d.route(addr)
	bank := d.banks[ch][bankIdx]
	if len(bank.queue) >= d.cfg.QueueLimit {
		d.rejected.Inc()
		return false
	}
	bank.queue = append(bank.queue, dramRequest{addr: addr, done: done, at: d.engine.Now()})
	d.service(ch, bankIdx)
	return true
}

// service runs one bank's queue, FCFS within the bank (bank-level
// parallelism gives the FR-FCFS flavour: independent banks progress
// concurrently while the shared channel bus serializes bursts).
func (d *DRAMSim) service(ch, bankIdx int) {
	bank := d.banks[ch][bankIdx]
	if bank.servicing || len(bank.queue) == 0 {
		return
	}
	bank.servicing = true
	req := bank.queue[0]
	bank.queue = bank.queue[1:]

	_, _, row := d.route(req.addr)
	now := d.engine.Now()
	start := bank.readyAt
	if start < now {
		start = now
	}

	var access sim.Duration
	switch {
	case bank.openRow == row:
		access = d.cfg.TCAS
		d.rowHits.Inc()
	case bank.openRow < 0:
		access = d.cfg.TRCD + d.cfg.TCAS
		d.rowMiss.Inc()
	default:
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		d.rowMiss.Inc()
	}
	bank.openRow = row

	// The data burst needs the channel bus after the bank access. Bus
	// occupancy accumulates in fractional nanoseconds so the 3.33 ns
	// burst time does not truncate away a sixth of the bandwidth.
	busStartNs := float64(start.Add(access))
	if d.busNs[ch] > busStartNs {
		busStartNs = d.busNs[ch]
	}
	finishNs := busStartNs + d.cfg.TBurstNs
	d.busNs[ch] = finishNs
	finish := sim.Time(finishNs + 0.5)
	bank.readyAt = finish

	d.engine.At(finish, func() {
		d.served.Inc()
		d.latency.Observe(float64(d.engine.Now().Sub(req.at)))
		bank.servicing = false
		req.done()
		d.service(ch, bankIdx)
	})
}

// Stats summarizes DRAM activity.
type DRAMStats struct {
	Served   uint64
	RowHits  uint64
	RowMiss  uint64
	Rejected uint64
	MeanNs   float64
	P99Ns    float64
}

// Stats returns current counters.
func (d *DRAMSim) Stats() DRAMStats {
	return DRAMStats{
		Served:   d.served.Value(),
		RowHits:  d.rowHits.Value(),
		RowMiss:  d.rowMiss.Value(),
		Rejected: d.rejected.Value(),
		MeanNs:   d.latency.Mean(),
		P99Ns:    d.latency.Quantile(0.99),
	}
}

// MeasureLoadLatency drives the bank-level model open-loop with Poisson
// arrivals at the given offered load (fraction of peak bandwidth) over
// random addresses in a working set, and returns the mean access latency.
// Tests use it to validate the fluid controller's load–latency curve.
func MeasureLoadLatency(cfg DRAMConfig, offered float64, duration sim.Duration, seed uint64) (sim.Duration, DRAMStats, error) {
	engine := sim.NewEngine(seed)
	d, err := NewDRAMSim(engine, metrics.NewRegistry(), cfg)
	if err != nil {
		return 0, DRAMStats{}, err
	}
	rate := offered * cfg.PeakBandwidth().BytesPerSecond() / float64(cfg.LineBytes)
	if rate <= 0 {
		return 0, DRAMStats{}, fmt.Errorf("dram: non-positive offered load")
	}
	// Interarrival times at high load are sub-nanosecond; accumulate
	// arrival times in floating point so truncation to the integer
	// clock cannot silently cap the offered rate.
	meanNs := 1e9 / rate
	rng := engine.RNG()
	const workingSet = 1 << 30 // 1 GiB of addresses: mostly row misses
	next := 0.0
	var arrive func()
	arrive = func() {
		now := engine.Now()
		for sim.Time(next) <= now {
			addr := rng.Uint64n(workingSet/64) * 64
			d.Access(addr, func() {})
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			next += -math.Log(u) * meanNs
		}
		engine.At(sim.Time(next), arrive)
	}
	engine.After(0, arrive)
	engine.Run(engine.Now().Add(duration))
	st := d.Stats()
	return sim.Duration(st.MeanNs), st, nil
}
