package mem

import (
	"testing"
	"testing/quick"

	"hic/internal/metrics"
	"hic/internal/sim"
)

func newTestController(t *testing.T, cfg Config) (*sim.Engine, *Controller) {
	t.Helper()
	e := sim.NewEngine(1)
	c, err := New(e, metrics.NewRegistry(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, c
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TheoreticalBW = 0 },
		func(c *Config) { c.Efficiency = 0 },
		func(c *Config) { c.Efficiency = 1.5 },
		func(c *Config) { c.BaseLatency = 0 },
		func(c *Config) { c.CPUMaxShare = 0 },
		func(c *Config) { c.CPUMaxShare = 1.2 },
		func(c *Config) { c.IOReservedShare = -0.1 },
		func(c *Config) { c.IOReservedShare = 1 },
		func(c *Config) { c.Epoch = 0 },
		func(c *Config) { c.MaxLoadFactor = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(sim.NewEngine(1), metrics.NewRegistry(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(sim.NewEngine(1), metrics.NewRegistry(), DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestUncontendedAccessLatencyNearBase(t *testing.T) {
	_, c := newTestController(t, DefaultConfig())
	lat := c.AccessLatency()
	base := DefaultConfig().BaseLatency
	if lat < base || lat > 2*base {
		t.Errorf("idle access latency = %v, want within [base, 2·base] of %v", lat, base)
	}
}

func TestLatencyInflatesWithLoad(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	idle := c.AccessLatency()
	// Offer 140 GB/s of CPU demand (overload for ~100 GB/s achievable).
	c.SetCPUDemand("stream", 140e9)
	e.Run(e.Now().Add(100 * sim.Microsecond))
	loaded := c.AccessLatency()
	if loaded < 3*idle {
		t.Errorf("loaded latency %v not ≫ idle %v", loaded, idle)
	}
	if lf := c.LoadFactor(); lf > DefaultConfig().MaxLoadFactor {
		t.Errorf("load factor %v exceeds cap", lf)
	}
}

func TestCPUGrabsLargerShareUnderContention(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	// CPU wants everything; IO side then runs at the leftover.
	c.SetCPUDemand("stream", 200e9)
	e.Run(e.Now().Add(50 * sim.Microsecond))
	capacity := DefaultConfig().TheoreticalBW.BytesPerSecond() * DefaultConfig().Efficiency
	if got := c.CPUAchieved(); got < 0.9*capacity*DefaultConfig().CPUMaxShare {
		t.Errorf("CPU achieved %v, want ≈ CPUMaxShare of capacity %v", got, capacity)
	}
	if c.CPUAchieved() <= c.IOServiceRate() {
		t.Errorf("CPU share %v should exceed IO share %v under contention (FCFS imbalance)",
			c.CPUAchieved(), c.IOServiceRate())
	}
	if c.IOServiceRate() <= 0 {
		t.Error("IO side fully starved; must retain leftover share")
	}
}

func TestMBAReservationProtectsIO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IOReservedShare = 0.2
	e, c := newTestController(t, cfg)
	c.SetCPUDemand("stream", 500e9)
	e.Run(e.Now().Add(50 * sim.Microsecond))
	capacity := cfg.TheoreticalBW.BytesPerSecond() * cfg.Efficiency
	if got := c.IOServiceRate(); got < 0.19*capacity {
		t.Errorf("reserved IO rate %v < 20%% of capacity %v", got, capacity)
	}
	if got := c.CPUAchieved(); got > 0.81*capacity {
		t.Errorf("CPU achieved %v should be capped at 1-reservation", got)
	}
}

func TestWriteCompletesAndCounts(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	var doneAt sim.Time
	c.Write(4096, func() { doneAt = e.Now() })
	e.Run(e.Now().Add(10 * sim.Microsecond))
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	// 4KB at ~100GB/s ≈ 41ns + ~90ns access ⇒ well under 1µs idle.
	if doneAt > sim.Time(sim.Microsecond) {
		t.Errorf("idle 4KB write took %v, want < 1µs", doneAt)
	}
	if c.IOServedBytes() != 4096 {
		t.Errorf("IOServedBytes = %d, want 4096", c.IOServedBytes())
	}
}

func TestFIFOQueueingDelaysBackToBackRequests(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	var first, second sim.Time
	c.Write(1<<20, func() { first = e.Now() }) // 1MB keeps the server busy ~10µs
	c.Write(4096, func() { second = e.Now() })
	e.Run(e.Now().Add(sim.Millisecond))
	if !(second > first) {
		t.Errorf("FIFO violated: second=%v first=%v", second, first)
	}
	if second < sim.Time(5*sim.Microsecond) {
		t.Errorf("second request finished at %v; should wait behind the 1MB write", second)
	}
}

func TestStarvedIOStillProgresses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUMaxShare = 1.0 // pathological: CPUs allowed to take everything
	e, c := newTestController(t, cfg)
	c.SetCPUDemand("stream", 1e12)
	done := false
	e.After(20*sim.Microsecond, func() { c.Write(64, func() { done = true }) })
	e.Run(e.Now().Add(sim.Second))
	if !done {
		t.Error("IO request never completed under full CPU grab")
	}
}

func TestSetCPUDemandRemoveRestoresLatency(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	c.SetCPUDemand("a", 50e9)
	c.SetCPUDemand("b", 45e9)
	if c.CPUOffered() != 95e9 {
		t.Errorf("CPUOffered = %v, want 95e9", c.CPUOffered())
	}
	e.Run(e.Now().Add(50 * sim.Microsecond))
	loaded := c.AccessLatency()
	c.SetCPUDemand("a", 0)
	c.SetCPUDemand("b", 0)
	if c.CPUOffered() != 0 {
		t.Errorf("CPUOffered after removal = %v", c.CPUOffered())
	}
	e.Run(e.Now().Add(200 * sim.Microsecond))
	if got := c.AccessLatency(); got >= loaded {
		t.Errorf("latency did not recover after demand removal: %v vs %v", got, loaded)
	}
}

func TestCPUServedBytesIntegration(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	c.SetCPUDemand("stream", 10e9) // uncontended: achieved = offered
	e.Run(e.Now().Add(sim.Millisecond))
	got := c.CPUServedBytes()
	want := 10e9 * 0.001
	if got < 0.99*want || got > 1.01*want {
		t.Errorf("CPUServedBytes = %v, want ≈ %v", got, want)
	}
}

func TestTotalBandwidthMeasurement(t *testing.T) {
	e, c := newTestController(t, DefaultConfig())
	c.SetCPUDemand("stream", 20e9)
	start := e.Now()
	io0, cpu0 := c.IOServedBytes(), c.CPUServedBytes()
	// Issue a steady 4KB write every µs ≈ 4.1 GB/s of IO.
	e.Every(sim.Microsecond, func() { c.Write(4096, func() {}) })
	e.Run(e.Now().Add(2 * sim.Millisecond))
	gbps := c.TotalBandwidthGBps(start, io0, cpu0)
	if gbps < 22 || gbps > 27 {
		t.Errorf("TotalBandwidthGBps = %v, want ≈ 24.1 (20 CPU + 4.1 IO)", gbps)
	}
}

func TestNegativeRequestPanics(t *testing.T) {
	_, c := newTestController(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative request size did not panic")
		}
	}()
	c.Write(-1, func() {})
}

// Property: the load factor is always within [1, MaxLoadFactor] and
// monotone in CPU demand.
func TestLoadFactorProperty(t *testing.T) {
	f := func(demands []uint32) bool {
		e := sim.NewEngine(1)
		c, err := New(e, metrics.NewRegistry(), DefaultConfig())
		if err != nil {
			return false
		}
		prevLF := 0.0
		prevDemand := -1.0
		monotone := true
		for _, d := range demands {
			demand := float64(uint64(d) * 50) // up to ~214 GB/s
			c.SetCPUDemand("x", demand)
			lf := c.LoadFactor()
			if lf < 1 || lf > DefaultConfig().MaxLoadFactor {
				return false
			}
			if prevDemand >= 0 && demand > prevDemand && lf < prevLF {
				monotone = false
			}
			prevLF, prevDemand = lf, demand
		}
		_ = monotone // monotonicity holds only between consecutive increases
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMemWrite(b *testing.B) {
	e := sim.NewEngine(1)
	c, err := New(e, metrics.NewRegistry(), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(4096, func() {})
		if i%1024 == 0 {
			e.Run(e.Now().Add(sim.Millisecond))
		}
	}
	// Bounded horizon: the controller's epoch ticker never stops, so
	// Drain() would loop forever.
	e.Run(e.Now().Add(100 * sim.Millisecond))
}
