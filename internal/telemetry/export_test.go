package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hic/internal/metrics"
	"hic/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRun builds a small fixed run: two spans (one finished, one cut
// off mid-pipeline) and two classified drops.
func goldenRun() *Run {
	tr := NewTracer(sim.NewRNG(7), 1)

	sp := tr.MaybeStart(0xabc, 0x10002, 2, 5, 1000,
		Attr{Key: "buffer_bytes", Value: 4096})
	sp.Advance(StageNICBuffer, 3000)
	sp.Advance(StageCreditWait, 3500, Attr{Key: "credits_free", Value: 8192})
	sp.Advance(StageLink, 3800)
	sp.Advance(StageTranslate, 4100, Attr{Key: "misses", Value: 1})
	sp.Advance(StageMemory, 4600, Attr{Key: "load_factor", Value: 1.1})
	sp.Advance(StageRootComplex, 5800, Attr{Key: "credit_hold_ns", Value: 2300})
	sp.Advance(StageCPUQueue, 6000, Attr{Key: "core", Value: 2})
	sp.Advance(StageCPUProcess, 8857)
	sp.Finish(8857)

	sp2 := tr.MaybeStart(0xdef, 0x20000, 0, 9, 2000)
	sp2.Advance(StageNICBuffer, 2500)
	sp2.Advance(StageCreditWait, 2600)
	// left unfinished: the run ended mid-pipeline

	ctxs := []DropContext{
		{MemLoadFactor: 1.8, MemQueueDelay: 700, BufferBytes: 1 << 20},
		{IOTLBMissRate: 0.6, BufferBytes: 1 << 20},
	}
	i := 0
	led := NewDropLedger(func() DropContext { c := ctxs[i]; i++; return c })
	led.Record(4200, 0x30001, 1)
	led.Record(7000, 0x30002, 2)

	return &Run{Tracer: tr, Drops: led}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenRun()); err != nil {
		t.Fatal(err)
	}

	// Always a structural check: the output must parse as JSON with the
	// trace_event envelope.
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("bad envelope: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden file (run with -update to regenerate)\ngot:\n%s", buf.String())
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, goldenRun()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, goldenRun()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same run differ")
	}
}

func TestStageBreakdown(t *testing.T) {
	run := goldenRun()
	stats := StageBreakdown(run.Tracer.Spans())
	if len(stats) == 0 {
		t.Fatal("no stage stats")
	}
	byName := map[string]StageStats{}
	var share float64
	for _, s := range stats {
		byName[s.Stage] = s
		share += s.SharePct
	}
	if share < 99.9 || share > 100.1 {
		t.Errorf("shares sum to %.2f%%, want 100%%", share)
	}
	// Two spans contribute nic_buffer; only the finished one reaches the CPU.
	if byName["nic_buffer"].Count != 2 {
		t.Errorf("nic_buffer count=%d, want 2", byName["nic_buffer"].Count)
	}
	if byName["cpu_process"].Count != 1 {
		t.Errorf("cpu_process count=%d, want 1", byName["cpu_process"].Count)
	}
	// Span 1's nic_buffer wait is 2000 ns; span 2's is 500 ns.
	if got := byName["nic_buffer"].MeanNs; got != 1250 {
		t.Errorf("nic_buffer mean=%v ns, want 1250", got)
	}

	tab := BreakdownTable(run.Tracer.Spans())
	for _, want := range []string{"stage", "nic_buffer", "share"} {
		if !strings.Contains(tab, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, tab)
		}
	}
	if got := BreakdownTable(nil); got != "no sampled spans\n" {
		t.Errorf("empty table = %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("nic.rx.drops").Add(42)
	reg.Gauge("nic.buffer.bytes").Set(1234)
	h := reg.Histogram("nic.host.delay.ns")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1000)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hic_nic_rx_drops counter",
		"hic_nic_rx_drops 42",
		"# TYPE hic_nic_buffer_bytes gauge",
		"hic_nic_buffer_bytes 1234",
		"# TYPE hic_nic_host_delay_ns summary",
		`hic_nic_host_delay_ns{quantile="0.5"}`,
		"hic_nic_host_delay_ns_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"nic.rx.drops":        "hic_nic_rx_drops",
		"pcie.credit.wait.ns": "hic_pcie_credit_wait_ns",
		"weird-name/x":        "hic_weird_name_x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q)=%q, want %q", in, got, want)
		}
	}
}

func TestRunSummary(t *testing.T) {
	run := goldenRun()
	s := run.Summary()
	if s.SampleRate != 1 || s.Arrived != 2 || s.Spans != 2 {
		t.Errorf("summary header = rate %v arrived %d spans %d", s.SampleRate, s.Arrived, s.Spans)
	}
	if s.Drops.Total != 2 || s.Drops.MemoryBus != 1 || s.Drops.IOTLBWalk != 1 {
		t.Errorf("drop summary = %+v", s.Drops)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("summary not JSON-encodable: %v", err)
	}
}

func TestWriteCaptureTrace(t *testing.T) {
	evs := []CaptureEvent{
		{Name: "data", Queue: 0, Start: 1000, End: 6000, Args: map[string]any{"seq": 1.0}},
		{Name: "data", Queue: 1, Start: 2000, End: 7500},
	}
	var buf bytes.Buffer
	if err := WriteCaptureTrace(&buf, "test capture", evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 1 process metadata + 2 thread metadata + 2 slices.
	if len(doc.TraceEvents) != 5 {
		t.Errorf("got %d events, want 5", len(doc.TraceEvents))
	}
}
