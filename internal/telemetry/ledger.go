// Drop attribution: every NIC tail-drop is classified by root cause
// using the pipeline state active at drop time — the causal question the
// paper's §3 asks ("the host dropped this packet *because* …").
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"hic/internal/sim"
)

// DropCause is the root-cause taxonomy for NIC input-buffer drops.
type DropCause uint8

const (
	// CauseOverload: the buffer overflowed while the downstream pipeline
	// was healthy — plain offered-load overload (arrival rate above the
	// achievable drain rate with no interconnect pathology).
	CauseOverload DropCause = iota
	// CauseIOTLBWalk: the drain rate was depressed by IOTLB-miss page
	// walks inflating per-DMA latency (§3.1's mechanism).
	CauseIOTLBWalk
	// CauseMemoryBus: the drain rate was depressed by memory-bus
	// contention inflating every DRAM access — DMA writes and page walks
	// alike (§3.2's mechanism, the antagonist figure).
	CauseMemoryBus

	numCauses
)

var causeNames = [numCauses]string{"overload", "iotlb-walk", "memory-bus"}

func (c DropCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// MarshalText renders the cause name, so JSON artifacts (observatory
// episode records, incident events) carry "memory-bus" rather than an
// opaque code.
func (c DropCause) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a cause name produced by MarshalText.
func (c *DropCause) UnmarshalText(b []byte) error {
	for i, n := range causeNames {
		if n == string(b) {
			*c = DropCause(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown drop cause %q", b)
}

// Causes lists all causes in classification-priority order (memory bus is
// checked first; see Classify).
func Causes() []DropCause { return []DropCause{CauseOverload, CauseIOTLBWalk, CauseMemoryBus} }

// DropContext is the pipeline state snapshot a drop is classified
// against. The host wires a provider that samples it at drop time.
type DropContext struct {
	// MemLoadFactor is the memory controller's current latency multiplier
	// (1 = uncontended; the antagonist drives it toward its cap).
	MemLoadFactor float64
	// IOTLBMissRate is the IOMMU's recent misses-per-translation EWMA
	// (1 = every translation walks; ~0 = working set fits the IOTLB).
	IOTLBMissRate float64
	// MemQueueDelay is the memory controller's current IO-FIFO backlog.
	MemQueueDelay sim.Duration
	// CreditStallAge is how long the oldest PCIe credit waiter has been
	// blocked (zero when credits are flowing).
	CreditStallAge sim.Duration
	// BufferBytes is the NIC input-buffer occupancy.
	BufferBytes int
}

// Classification thresholds. A load factor of 1.2 means every DRAM access
// (and hence every page walk and posted write) takes 20% longer than
// uncontended — well past measurement noise and squarely the §3.2 regime.
// A miss rate of 0.25 means at least one walk per 4 KB data packet on the
// Rx chain, the §3.1 thrashing regime.
const (
	// MemLoadThreshold is the load factor above which a drop is
	// attributed to memory-bus contention.
	MemLoadThreshold = 1.2
	// MissRateThreshold is the recent misses-per-translation above which
	// a (non-memory-bus) drop is attributed to IOTLB walks.
	MissRateThreshold = 0.25
)

// Classify attributes one drop. Memory-bus contention dominates when both
// pathologies are active: a loaded bus inflates the walks too, so the bus
// is the binding constraint (the paper's §3.2 reading of the antagonised
// runs).
func Classify(ctx DropContext) DropCause {
	if ctx.MemLoadFactor >= MemLoadThreshold {
		return CauseMemoryBus
	}
	if ctx.IOTLBMissRate >= MissRateThreshold {
		return CauseIOTLBWalk
	}
	return CauseOverload
}

// DropEvent is one recorded drop with its classification context.
type DropEvent struct {
	At    sim.Time
	Flow  uint32
	Queue int
	Cause DropCause
	Ctx   DropContext
}

// DefaultMaxDropEvents bounds the per-event record kept for trace export;
// counts are always exact.
const DefaultMaxDropEvents = 100_000

// DropLedger classifies and counts every NIC drop. Counts are exact;
// individual events are retained up to a cap for trace export.
type DropLedger struct {
	ctx func() DropContext

	counts  [numCauses]uint64
	byQueue map[int]*[numCauses]uint64

	events    []DropEvent
	maxEvents int
	truncated uint64
}

// NewDropLedger constructs a ledger over the given context provider
// (required: classification without context would be guesswork).
func NewDropLedger(ctx func() DropContext) *DropLedger {
	if ctx == nil {
		panic("telemetry: drop ledger requires a context provider")
	}
	return &DropLedger{
		ctx:       ctx,
		byQueue:   make(map[int]*[numCauses]uint64),
		maxEvents: DefaultMaxDropEvents,
	}
}

// SetMaxEvents overrides the retained-event cap (≤0 restores the default).
func (l *DropLedger) SetMaxEvents(n int) {
	if n <= 0 {
		n = DefaultMaxDropEvents
	}
	l.maxEvents = n
}

// Record classifies one drop at the current pipeline state and returns
// the cause.
func (l *DropLedger) Record(at sim.Time, flow uint32, queue int) DropCause {
	ctx := l.ctx()
	cause := Classify(ctx)
	l.counts[cause]++
	q := l.byQueue[queue]
	if q == nil {
		q = new([numCauses]uint64)
		l.byQueue[queue] = q
	}
	q[cause]++
	if len(l.events) < l.maxEvents {
		l.events = append(l.events, DropEvent{At: at, Flow: flow, Queue: queue, Cause: cause, Ctx: ctx})
	} else {
		l.truncated++
	}
	return cause
}

// Total returns the total drops recorded.
func (l *DropLedger) Total() uint64 {
	var t uint64
	for _, c := range l.counts {
		t += c
	}
	return t
}

// Count returns the drops attributed to one cause.
func (l *DropLedger) Count(c DropCause) uint64 { return l.counts[c] }

// Share returns the fraction of drops attributed to one cause (0 with no
// drops).
func (l *DropLedger) Share(c DropCause) float64 {
	t := l.Total()
	if t == 0 {
		return 0
	}
	return float64(l.counts[c]) / float64(t)
}

// Events returns the retained per-drop records in time order. The slice
// is owned by the ledger; callers must not mutate it.
func (l *DropLedger) Events() []DropEvent { return l.events }

// Truncated returns how many drops were counted but not retained as
// events because the cap was reached.
func (l *DropLedger) Truncated() uint64 { return l.truncated }

// Table renders the ledger as an aligned text table: one row per cause
// with total and per-queue counts, plus a totals row.
func (l *DropLedger) Table() string {
	var b strings.Builder
	total := l.Total()
	fmt.Fprintf(&b, "%-12s %12s %8s\n", "cause", "drops", "share")
	for _, c := range []DropCause{CauseMemoryBus, CauseIOTLBWalk, CauseOverload} {
		fmt.Fprintf(&b, "%-12s %12d %7.1f%%\n", c, l.counts[c], l.Share(c)*100)
	}
	fmt.Fprintf(&b, "%-12s %12d\n", "total", total)
	if len(l.byQueue) > 0 {
		queues := make([]int, 0, len(l.byQueue))
		for q := range l.byQueue {
			queues = append(queues, q)
		}
		sort.Ints(queues)
		fmt.Fprintf(&b, "\n%-8s %12s %12s %12s\n", "queue", "memory-bus", "iotlb-walk", "overload")
		for _, q := range queues {
			c := l.byQueue[q]
			fmt.Fprintf(&b, "%-8d %12d %12d %12d\n", q, c[CauseMemoryBus], c[CauseIOTLBWalk], c[CauseOverload])
		}
	}
	return b.String()
}
