// Package telemetry is the simulator's causal observability layer: a
// span-based tracing system threaded through the NIC → PCIe → IOMMU →
// memory-bus → CPU receive pipeline.
//
// Where internal/metrics reports steady-state aggregates and
// internal/trace reports flat time series, telemetry answers *why*
// questions about individual DMAs: a sampled packet carries a Span that
// records per-stage enter/exit timestamps plus stage-local annotations
// (NIC buffer depth at enqueue, PCIe credits held and hold duration,
// IOTLB hits/misses and walk latency, DRAM queue wait and memory load
// factor). Head-based sampling — the decision is made once, at NIC
// admission, from a deterministic RNG forked off the engine's stream —
// keeps full-fidelity runs fast while preserving bit-reproducibility.
//
// On top of spans the package provides a drop-attribution ledger that
// classifies every NIC drop by root cause (see ledger.go) and exporters
// for Chrome trace_event JSON, Prometheus text exposition, and a CLI
// latency-breakdown table (see export.go).
//
// The package is a leaf: it depends only on internal/sim and
// internal/metrics so every pipeline stage may import it.
package telemetry

import (
	"fmt"

	"hic/internal/sim"
)

// Stage identifies one segment of the per-DMA pipeline. Stages of a span
// are contiguous: each stage's enter time is the previous stage's exit,
// so stage durations always sum to the span's end − start.
type Stage uint8

const (
	// StageNICBuffer is NIC admission → head-of-buffer service start
	// (includes descriptor-stall waits).
	StageNICBuffer Stage = iota
	// StageCreditWait is service start → PCIe posted-write credits granted.
	StageCreditWait
	// StageLink is credits granted → last TLP accepted by the root complex.
	StageLink
	// StageTranslate is one IOMMU translation (descriptor, payload or
	// completion address); a span records up to three of these.
	StageTranslate
	// StageMemory is one memory-controller access (descriptor read,
	// payload write or completion write).
	StageMemory
	// StageRootComplex is the root complex's fixed pipeline, ending at
	// credit release — the point the NIC considers the DMA done.
	StageRootComplex
	// StageCPUQueue is DMA completion → a receiver core picking the
	// packet up.
	StageCPUQueue
	// StageCPUProcess is the core's per-packet software processing,
	// ending at application-visible delivery.
	StageCPUProcess

	numStages
)

var stageNames = [numStages]string{
	"nic_buffer",
	"pcie_credit_wait",
	"pcie_link",
	"iommu_translate",
	"memory",
	"root_complex",
	"cpu_queue",
	"cpu_process",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages lists every stage in pipeline order, for exporters and tables.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Attr is one stage-local annotation. Values are float64 so exporters
// stay uniform; durations are annotated in nanoseconds by convention
// (keys end in "_ns").
type Attr struct {
	Key   string
	Value float64
}

// StageRecord is one completed stage of a span.
type StageRecord struct {
	Stage Stage
	Enter sim.Time
	Exit  sim.Time
	Attrs []Attr
}

// Duration returns the stage's elapsed time.
func (r StageRecord) Duration() sim.Duration { return r.Exit.Sub(r.Enter) }

// Span is the telemetry record of one sampled DMA, from NIC admission to
// application-visible delivery. Spans are single-goroutine, like the
// simulation that populates them.
type Span struct {
	// ID is the packet ID; Flow/Queue/Seq locate it in the workload.
	ID    uint64
	Flow  uint32
	Queue int
	Seq   uint64

	Start sim.Time
	End   sim.Time // zero until Finish (a run ended mid-pipeline)

	Stages []StageRecord

	cursor sim.Time
}

// Advance closes the current stage at now: the record's enter time is the
// previous stage's exit (or the span start), which is what guarantees the
// stage-durations-sum-to-span invariant by construction. Advancing the
// same stage twice in a row extends the previous record instead of
// splitting it, so a zero-length annotation record (admission attrs) and
// the real wait it precedes count as one stage.
func (s *Span) Advance(st Stage, now sim.Time, attrs ...Attr) {
	if now < s.cursor {
		panic(fmt.Sprintf("telemetry: span %d stage %s moves backwards: %v before cursor %v",
			s.ID, st, now, s.cursor))
	}
	if n := len(s.Stages); n > 0 && s.Stages[n-1].Stage == st && s.Stages[n-1].Exit == s.cursor {
		s.Stages[n-1].Exit = now
		s.Stages[n-1].Attrs = append(s.Stages[n-1].Attrs, attrs...)
	} else {
		s.Stages = append(s.Stages, StageRecord{Stage: st, Enter: s.cursor, Exit: now, Attrs: attrs})
	}
	s.cursor = now
}

// Finish marks the span complete at now.
func (s *Span) Finish(now sim.Time) { s.End = now }

// Finished reports whether the span reached delivery.
func (s *Span) Finished() bool { return s.End != 0 }

// TotalDuration returns end − start for finished spans, and the covered
// prefix for unfinished ones.
func (s *Span) TotalDuration() sim.Duration {
	if s.End != 0 {
		return s.End.Sub(s.Start)
	}
	return s.cursor.Sub(s.Start)
}

// Tracer owns sampling decisions and the collected spans of one run.
type Tracer struct {
	rng      *sim.RNG
	rate     float64
	maxSpans int

	spans   []*Span
	arrived uint64 // packets offered to MaybeStart
	sampled uint64 // spans actually started
	capped  uint64 // sampling decisions lost to the MaxSpans cap
}

// DefaultMaxSpans bounds tracer memory: at the default 4 KB MTU a span
// costs a few hundred bytes, so a million spans stay near a few hundred MB
// even in pathological full-rate, full-sampling runs.
const DefaultMaxSpans = 1 << 20

// NewTracer returns a tracer sampling the given fraction of packets
// ([0,1], clamped). The RNG must be forked from the engine's stream so
// sampling is deterministic for a seed; passing nil disables sampling.
func NewTracer(rng *sim.RNG, rate float64) *Tracer {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Tracer{rng: rng, rate: rate, maxSpans: DefaultMaxSpans}
}

// SetMaxSpans overrides the span-count cap (≤0 restores the default).
func (t *Tracer) SetMaxSpans(n int) {
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.maxSpans = n
}

// Rate returns the configured sampling rate.
func (t *Tracer) Rate() float64 { return t.rate }

// MaybeStart makes the head-based sampling decision for one arriving
// packet and, when selected, starts and returns its span (nil otherwise).
// Exactly one RNG draw is consumed per call for rates in (0,1), keeping
// the decision stream independent of simulation state.
func (t *Tracer) MaybeStart(id uint64, flow uint32, queue int, seq uint64, at sim.Time, attrs ...Attr) *Span {
	t.arrived++
	if t.rng == nil || t.rate == 0 {
		return nil
	}
	if t.rate < 1 && t.rng.Float64() >= t.rate {
		return nil
	}
	if len(t.spans) >= t.maxSpans {
		t.capped++
		return nil
	}
	sp := &Span{ID: id, Flow: flow, Queue: queue, Seq: seq, Start: at, cursor: at}
	if len(attrs) > 0 {
		// Admission-time annotations (e.g. NIC buffer depth) ride on a
		// zero-length stage so they stay attached to the span's head.
		sp.Stages = append(sp.Stages, StageRecord{Stage: StageNICBuffer, Enter: at, Exit: at, Attrs: attrs})
	}
	t.spans = append(t.spans, sp)
	t.sampled++
	return sp
}

// Spans returns the collected spans in start order. The slice is owned by
// the tracer; callers must not mutate it.
func (t *Tracer) Spans() []*Span { return t.spans }

// Arrived returns how many packets were offered for sampling.
func (t *Tracer) Arrived() uint64 { return t.arrived }

// Sampled returns how many spans were started.
func (t *Tracer) Sampled() uint64 { return t.sampled }

// Capped returns how many positive sampling decisions were discarded
// because the span cap was reached. Non-zero means coverage silently
// stops partway through the run — exporters surface it.
func (t *Tracer) Capped() uint64 { return t.capped }

// Run bundles one simulation's telemetry artifacts: the span tracer and
// the drop-attribution ledger. host.Testbed.EnableSpans returns one.
type Run struct {
	Tracer *Tracer
	Drops  *DropLedger
}
