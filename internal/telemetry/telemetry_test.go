package telemetry

import (
	"strings"
	"testing"
	"testing/quick"

	"hic/internal/sim"
)

func TestSpanAdvanceContiguous(t *testing.T) {
	sp := &Span{ID: 1, Start: 100, cursor: 100}
	sp.Advance(StageNICBuffer, 250)
	sp.Advance(StageCreditWait, 400, Attr{Key: "credits_free", Value: 3})
	sp.Advance(StageLink, 400) // zero-length stage is legal
	sp.Advance(StageTranslate, 900)
	sp.Finish(900)

	if len(sp.Stages) != 4 {
		t.Fatalf("got %d stages, want 4", len(sp.Stages))
	}
	for i, st := range sp.Stages {
		if i == 0 {
			if st.Enter != sp.Start {
				t.Errorf("stage 0 enters at %v, want span start %v", st.Enter, sp.Start)
			}
			continue
		}
		if st.Enter != sp.Stages[i-1].Exit {
			t.Errorf("stage %d enters at %v, want previous exit %v", i, st.Enter, sp.Stages[i-1].Exit)
		}
	}
	var sum sim.Duration
	for _, st := range sp.Stages {
		sum += st.Duration()
	}
	if sum != sp.End.Sub(sp.Start) {
		t.Errorf("stage durations sum to %v, want %v", sum, sp.End.Sub(sp.Start))
	}
}

func TestSpanAdvanceMergesConsecutiveSameStage(t *testing.T) {
	// The admission-time annotation record (zero-length) and the real
	// buffer wait must collapse into one nic_buffer record.
	sp := &Span{ID: 1, Start: 100, cursor: 100,
		Stages: []StageRecord{{Stage: StageNICBuffer, Enter: 100, Exit: 100,
			Attrs: []Attr{{Key: "buffer_bytes", Value: 5000}}}}}
	sp.Advance(StageNICBuffer, 300)
	if len(sp.Stages) != 1 {
		t.Fatalf("got %d records, want 1 merged", len(sp.Stages))
	}
	st := sp.Stages[0]
	if st.Enter != 100 || st.Exit != 300 {
		t.Errorf("merged record covers [%v,%v], want [100,300]", st.Enter, st.Exit)
	}
	if len(st.Attrs) != 1 || st.Attrs[0].Key != "buffer_bytes" {
		t.Errorf("merged record lost admission attrs: %v", st.Attrs)
	}
}

func TestSpanAdvanceBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance moving backwards did not panic")
		}
	}()
	sp := &Span{ID: 1, Start: 100, cursor: 100}
	sp.Advance(StageNICBuffer, 50)
}

// Property: however a span is advanced, stage durations sum exactly to
// the covered interval — the invariant the exporters rely on.
func TestSpanStageSumProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		rng := sim.NewRNG(seed)
		sp := &Span{ID: seed, Start: 0, cursor: 0}
		now := sim.Time(0)
		n := int(steps%20) + 1
		for i := 0; i < n; i++ {
			now = now.Add(sim.Duration(rng.Uint64n(1000)))
			sp.Advance(Stage(rng.Intn(int(numStages))), now)
		}
		sp.Finish(now)
		var sum sim.Duration
		for _, st := range sp.Stages {
			sum += st.Duration()
		}
		return sum == sp.End.Sub(sp.Start)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTracerRateExtremes(t *testing.T) {
	tr := NewTracer(sim.NewRNG(1), 0)
	for i := 0; i < 100; i++ {
		if tr.MaybeStart(uint64(i), 0, 0, 0, sim.Time(i)) != nil {
			t.Fatal("rate 0 sampled a packet")
		}
	}
	if tr.Arrived() != 100 || tr.Sampled() != 0 {
		t.Errorf("arrived=%d sampled=%d, want 100/0", tr.Arrived(), tr.Sampled())
	}

	tr = NewTracer(sim.NewRNG(1), 1)
	for i := 0; i < 100; i++ {
		if tr.MaybeStart(uint64(i), 0, 0, 0, sim.Time(i)) == nil {
			t.Fatal("rate 1 skipped a packet")
		}
	}
	if tr.Sampled() != 100 {
		t.Errorf("sampled=%d, want 100", tr.Sampled())
	}
}

func TestTracerDeterministicForSeed(t *testing.T) {
	pick := func() []uint64 {
		tr := NewTracer(sim.NewRNG(42), 0.1)
		var ids []uint64
		for i := 0; i < 10000; i++ {
			if tr.MaybeStart(uint64(i), 0, 0, 0, sim.Time(i)) != nil {
				ids = append(ids, uint64(i))
			}
		}
		return ids
	}
	a, b := pick(), pick()
	if len(a) != len(b) {
		t.Fatalf("runs sampled %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	// ~10% of 10000 with plenty of slack.
	if len(a) < 800 || len(a) > 1200 {
		t.Errorf("rate 0.1 sampled %d of 10000", len(a))
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(sim.NewRNG(1), 1)
	tr.SetMaxSpans(10)
	for i := 0; i < 25; i++ {
		tr.MaybeStart(uint64(i), 0, 0, 0, sim.Time(i))
	}
	if len(tr.Spans()) != 10 {
		t.Errorf("kept %d spans, want 10", len(tr.Spans()))
	}
	if tr.Capped() != 15 {
		t.Errorf("capped=%d, want 15", tr.Capped())
	}
}

func TestClassifyPriority(t *testing.T) {
	cases := []struct {
		name string
		ctx  DropContext
		want DropCause
	}{
		{"healthy", DropContext{MemLoadFactor: 1.0}, CauseOverload},
		{"walks only", DropContext{MemLoadFactor: 1.0, IOTLBMissRate: 0.8}, CauseIOTLBWalk},
		{"bus only", DropContext{MemLoadFactor: 1.5}, CauseMemoryBus},
		{"both pathologies → bus wins", DropContext{MemLoadFactor: 1.5, IOTLBMissRate: 0.9}, CauseMemoryBus},
		{"at bus threshold", DropContext{MemLoadFactor: MemLoadThreshold}, CauseMemoryBus},
		{"at miss threshold", DropContext{IOTLBMissRate: MissRateThreshold}, CauseIOTLBWalk},
		{"just under both", DropContext{MemLoadFactor: 1.19, IOTLBMissRate: 0.24}, CauseOverload},
	}
	for _, c := range cases {
		if got := Classify(c.ctx); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDropLedger(t *testing.T) {
	ctx := DropContext{MemLoadFactor: 1.0}
	led := NewDropLedger(func() DropContext { return ctx })

	ctx.MemLoadFactor = 2.0
	led.Record(100, 7, 0)
	led.Record(200, 8, 1)
	ctx = DropContext{IOTLBMissRate: 0.5}
	led.Record(300, 7, 0)
	ctx = DropContext{}
	led.Record(400, 9, 2)

	if led.Total() != 4 {
		t.Fatalf("total=%d, want 4", led.Total())
	}
	if led.Count(CauseMemoryBus) != 2 || led.Count(CauseIOTLBWalk) != 1 || led.Count(CauseOverload) != 1 {
		t.Errorf("counts bus/walk/overload = %d/%d/%d, want 2/1/1",
			led.Count(CauseMemoryBus), led.Count(CauseIOTLBWalk), led.Count(CauseOverload))
	}
	if got := led.Share(CauseMemoryBus); got != 0.5 {
		t.Errorf("bus share=%v, want 0.5", got)
	}
	if len(led.Events()) != 4 {
		t.Errorf("retained %d events, want 4", len(led.Events()))
	}
	tab := led.Table()
	for _, want := range []string{"memory-bus", "iotlb-walk", "overload", "total"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestDropLedgerEventCap(t *testing.T) {
	led := NewDropLedger(func() DropContext { return DropContext{} })
	led.SetMaxEvents(5)
	for i := 0; i < 12; i++ {
		led.Record(sim.Time(i), 0, 0)
	}
	if led.Total() != 12 {
		t.Errorf("total=%d, want 12 (counts stay exact past the cap)", led.Total())
	}
	if len(led.Events()) != 5 || led.Truncated() != 7 {
		t.Errorf("events=%d truncated=%d, want 5/7", len(led.Events()), led.Truncated())
	}
}
