// Exporters: Chrome trace_event JSON (chrome://tracing / Perfetto),
// Prometheus text exposition of a metrics snapshot, and a per-stage
// latency-breakdown table for the CLI. All output is deterministic for a
// given input so telemetry artifacts are byte-reproducible per seed.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"

	"hic/internal/asciiplot"
	"hic/internal/metrics"
	"hic/internal/sim"
)

// chromeEvent is one trace_event record. Field order (and json.Marshal's
// sorted map keys for Args) keeps the output stable.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace renders the run's spans and drop events in Chrome
// trace_event JSON (the format chrome://tracing and Perfetto load).
//
// Each sampled DMA becomes a nestable async slice ("b"/"e", id = packet
// ID) whose nested child slices are the pipeline stages — async slices
// are the trace_event idiom for work that overlaps on one track, which
// in-flight DMAs do (several packets sit between buffer head and credit
// release at once). Stage annotations ride in args. Drops appear as
// thread-scoped instant events named by their attributed cause.
func WriteChromeTrace(w io.Writer, run *Run) error {
	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Cat: "__metadata",
		Args: map[string]any{"name": "hic receiver host"},
	})

	queues := map[int]bool{}
	if run.Tracer != nil {
		for _, sp := range run.Tracer.Spans() {
			queues[sp.Queue] = true
		}
	}
	if run.Drops != nil {
		for _, ev := range run.Drops.Events() {
			queues[ev.Queue] = true
		}
	}
	qsorted := make([]int, 0, len(queues))
	for q := range queues {
		qsorted = append(qsorted, q)
	}
	sort.Ints(qsorted)
	for _, q := range qsorted {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: q + 1, Cat: "__metadata",
			Args: map[string]any{"name": fmt.Sprintf("rx-queue-%d", q)},
		})
	}

	if run.Tracer != nil {
		for _, sp := range run.Tracer.Spans() {
			id := fmt.Sprintf("0x%x", sp.ID)
			end := sp.End
			if end == 0 {
				end = sp.cursor // unfinished span: close at its covered prefix
			}
			events = append(events, chromeEvent{
				Name: "dma", Cat: "dma", Ph: "b", Ts: usec(sp.Start),
				Pid: 1, Tid: sp.Queue + 1, ID: id,
				Args: map[string]any{
					"flow": float64(sp.Flow),
					"seq":  float64(sp.Seq),
				},
			})
			for _, st := range sp.Stages {
				if st.Enter == st.Exit && len(st.Attrs) == 0 {
					continue // zero-length spacer with nothing to say
				}
				args := make(map[string]any, len(st.Attrs))
				for _, a := range st.Attrs {
					args[a.Key] = a.Value
				}
				events = append(events,
					chromeEvent{Name: st.Stage.String(), Cat: "dma", Ph: "b",
						Ts: usec(st.Enter), Pid: 1, Tid: sp.Queue + 1, ID: id, Args: args},
					chromeEvent{Name: st.Stage.String(), Cat: "dma", Ph: "e",
						Ts: usec(st.Exit), Pid: 1, Tid: sp.Queue + 1, ID: id})
			}
			events = append(events, chromeEvent{
				Name: "dma", Cat: "dma", Ph: "e", Ts: usec(end),
				Pid: 1, Tid: sp.Queue + 1, ID: id,
			})
		}
	}

	if run.Drops != nil {
		for _, ev := range run.Drops.Events() {
			events = append(events, chromeEvent{
				Name: "drop:" + ev.Cause.String(), Cat: "drop", Ph: "i",
				Ts: usec(ev.At), Pid: 1, Tid: ev.Queue + 1, Scope: "t",
				Args: map[string]any{
					"flow":            float64(ev.Flow),
					"mem_load_factor": ev.Ctx.MemLoadFactor,
					"iotlb_miss_rate": ev.Ctx.IOTLBMissRate,
					"mem_queue_ns":    float64(ev.Ctx.MemQueueDelay),
					"credit_stall_ns": float64(ev.Ctx.CreditStallAge),
					"buffer_bytes":    float64(ev.Ctx.BufferBytes),
				},
			})
		}
	}

	return writeChromeEvents(w, events)
}

// writeChromeEvents emits the trace_event envelope, one event per line.
func writeChromeEvents(w io.Writer, events []chromeEvent) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// CaptureEvent is one complete (begin+duration) observation for
// WriteCaptureTrace — hiccap uses it to render a wire capture as a
// Chrome trace without access to live Span objects.
type CaptureEvent struct {
	// Name labels the slice (e.g. the packet kind).
	Name string
	// Queue selects the track; tracks are named "rx-queue-<q>".
	Queue int
	// Start and End bound the slice in simulation time.
	Start, End sim.Time
	// Args are optional annotations shown in the trace viewer.
	Args map[string]any
}

// WriteCaptureTrace renders capture-derived events as Chrome trace_event
// JSON: one complete ("X") slice per event on its queue's track. Events
// are emitted in input order; output is deterministic for a given input.
func WriteCaptureTrace(w io.Writer, name string, evs []CaptureEvent) error {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Cat: "__metadata",
		Args: map[string]any{"name": name},
	}}
	queues := map[int]bool{}
	for _, ev := range evs {
		queues[ev.Queue] = true
	}
	qsorted := make([]int, 0, len(queues))
	for q := range queues {
		qsorted = append(qsorted, q)
	}
	sort.Ints(qsorted)
	for _, q := range qsorted {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: q + 1, Cat: "__metadata",
			Args: map[string]any{"name": fmt.Sprintf("rx-queue-%d", q)},
		})
	}
	for _, ev := range evs {
		events = append(events, chromeEvent{
			Name: ev.Name, Cat: "wire", Ph: "X", Ts: usec(ev.Start),
			Dur: usec(ev.End) - usec(ev.Start), Pid: 1, Tid: ev.Queue + 1,
			Args: ev.Args,
		})
	}
	return writeChromeEvents(w, events)
}

var promUnsafe = regexp.MustCompile(`[^a-zA-Z0-9_]`)

// promName mangles a dotted metric name into the Prometheus charset with
// a namespace prefix: "nic.rx.drops" → "hic_nic_rx_drops".
func promName(name string) string {
	return "hic_" + promUnsafe.ReplaceAllString(name, "_")
}

// PromName exposes the exporter's name mangling so other renderers (the
// obs control plane's fleet rollup) emit the same series names.
func PromName(name string) string { return promName(name) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges directly,
// histograms as summaries with count/sum and fixed quantiles. Output is
// sorted by name.
func WritePrometheus(w io.Writer, snap metrics.Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		g := snap.Gauges[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n%s_max %d\n", p, p, g.Value, p, g.Max); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		h := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", p); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}, {"0.999", h.P999}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %g\n", p, q.q, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// StageStats summarizes one pipeline stage across a run's sampled spans.
type StageStats struct {
	Stage    string  `json:"stage"`
	Count    uint64  `json:"count"`
	MeanNs   float64 `json:"mean_ns"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
	MaxNs    float64 `json:"max_ns"`
	SharePct float64 `json:"share_pct"` // of total sampled pipeline time
}

// StageBreakdown aggregates stage durations across spans, in pipeline
// order. Quantiles are exact (computed over the sampled population).
func StageBreakdown(spans []*Span) []StageStats {
	durs := make([][]float64, numStages)
	var grand float64
	for _, sp := range spans {
		for _, st := range sp.Stages {
			d := float64(st.Duration())
			durs[st.Stage] = append(durs[st.Stage], d)
			grand += d
		}
	}
	var out []StageStats
	for s := Stage(0); s < numStages; s++ {
		ds := durs[s]
		if len(ds) == 0 {
			continue
		}
		sort.Float64s(ds)
		var sum float64
		for _, d := range ds {
			sum += d
		}
		share := 0.0
		if grand > 0 {
			share = sum / grand * 100
		}
		out = append(out, StageStats{
			Stage:    s.String(),
			Count:    uint64(len(ds)),
			MeanNs:   sum / float64(len(ds)),
			P50Ns:    quantile(ds, 0.5),
			P99Ns:    quantile(ds, 0.99),
			MaxNs:    ds[len(ds)-1],
			SharePct: share,
		})
	}
	return out
}

// quantile returns the q-quantile of sorted values by lower rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BreakdownTable renders the per-stage latency decomposition as an
// aligned text table — the CLI's answer to "where does a DMA's time go".
func BreakdownTable(spans []*Span) string {
	stats := StageBreakdown(spans)
	cols := []string{"stage", "count", "mean_us", "p50_us", "p99_us", "max_us", "share"}
	rows := make([][]string, 0, len(stats))
	for _, s := range stats {
		rows = append(rows, []string{
			s.Stage,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.3f", s.MeanNs/1e3),
			fmt.Sprintf("%.3f", s.P50Ns/1e3),
			fmt.Sprintf("%.3f", s.P99Ns/1e3),
			fmt.Sprintf("%.3f", s.MaxNs/1e3),
			fmt.Sprintf("%.1f%%", s.SharePct),
		})
	}
	if len(rows) == 0 {
		return "no sampled spans\n"
	}
	return asciiplot.FormatTable(cols, rows)
}

// DropSummary is the ledger's machine-readable rollup.
type DropSummary struct {
	Total     uint64 `json:"total"`
	MemoryBus uint64 `json:"memory_bus"`
	IOTLBWalk uint64 `json:"iotlb_walk"`
	Overload  uint64 `json:"overload"`
}

// Summary is one run's exportable telemetry rollup: everything a sweep
// needs to keep per grid point so runs stay post-hoc analyzable.
type Summary struct {
	SampleRate  float64      `json:"sample_rate"`
	Arrived     uint64       `json:"packets_arrived"`
	Spans       uint64       `json:"spans"`
	SpansCapped uint64       `json:"spans_capped,omitempty"`
	Stages      []StageStats `json:"stages"`
	Drops       DropSummary  `json:"drops"`
}

// Summary assembles the run's rollup.
func (r *Run) Summary() Summary {
	s := Summary{}
	if r.Tracer != nil {
		s.SampleRate = r.Tracer.Rate()
		s.Arrived = r.Tracer.Arrived()
		s.Spans = r.Tracer.Sampled()
		s.SpansCapped = r.Tracer.Capped()
		s.Stages = StageBreakdown(r.Tracer.Spans())
	}
	if r.Drops != nil {
		s.Drops = DropSummary{
			Total:     r.Drops.Total(),
			MemoryBus: r.Drops.Count(CauseMemoryBus),
			IOTLBWalk: r.Drops.Count(CauseIOTLBWalk),
			Overload:  r.Drops.Count(CauseOverload),
		}
	}
	return s
}
