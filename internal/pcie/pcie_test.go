package pcie

import (
	"testing"
	"testing/quick"

	"hic/internal/metrics"
	"hic/internal/sim"
)

func newLink(t testing.TB, cfg Config) (*sim.Engine, *Link) {
	t.Helper()
	e := sim.NewEngine(1)
	l, err := New(e, metrics.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, l
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Gen = 7 },
		func(c *Config) { c.Lanes = 3 },
		func(c *Config) { c.MaxPayload = 0 },
		func(c *Config) { c.TLPOverhead = -1 },
		func(c *Config) { c.LinkEfficiency = 0 },
		func(c *Config) { c.LinkEfficiency = 1.5 },
		func(c *Config) { c.CreditBytes = 0 },
		func(c *Config) { c.RootComplexLatency = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(sim.NewEngine(1), metrics.NewRegistry(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRawBandwidthMatchesPaper(t *testing.T) {
	// Paper: PCIe 3.0 x16 has a ~128 Gbps theoretical maximum.
	raw := DefaultConfig().RawBandwidth().Gbps()
	if raw < 124 || raw > 130 {
		t.Errorf("PCIe 3.0 x16 raw = %.1f Gbps, want ≈126", raw)
	}
}

func TestGoodputMatchesPaper(t *testing.T) {
	// Paper: achievable PCIe goodput is only ~110 Gbps after TLP and
	// link-layer overheads.
	good := DefaultConfig().Goodput().Gbps()
	if good < 107 || good > 113 {
		t.Errorf("goodput = %.1f Gbps, want ≈110", good)
	}
}

func TestWireBytesSegmentation(t *testing.T) {
	cfg := DefaultConfig()
	// 4096B at 256B MPS = 16 TLPs.
	want := 4096 + 16*cfg.TLPOverhead
	if got := cfg.WireBytes(4096); got != want {
		t.Errorf("WireBytes(4096) = %d, want %d", got, want)
	}
	// 1 byte still costs a full TLP header.
	if got := cfg.WireBytes(1); got != 1+cfg.TLPOverhead {
		t.Errorf("WireBytes(1) = %d", got)
	}
	if cfg.WireBytes(0) != 0 {
		t.Error("WireBytes(0) != 0")
	}
}

func TestTransmitSerializes(t *testing.T) {
	e, l := newLink(t, DefaultConfig())
	var t1, t2 sim.Time
	l.Transmit(4096, func() { t1 = e.Now() })
	l.Transmit(4096, func() { t2 = e.Now() })
	e.Run(e.Now().Add(sim.Millisecond))
	if t1 == 0 || t2 == 0 {
		t.Fatal("transmissions did not complete")
	}
	if t2 < 2*t1-1 {
		t.Errorf("second transmit at %v did not wait for the first at %v", t2, t1)
	}
	// Back-to-back 4KB DMAs at ~122 Gbps effective link rate with
	// overheads: each ≈ 297ns.
	if t1 < sim.Time(250) || t1 > sim.Time(350) {
		t.Errorf("4KB transmit time = %v ns, want ≈300ns", t1)
	}
}

func TestTransmitThroughputMatchesGoodput(t *testing.T) {
	e, l := newLink(t, DefaultConfig())
	const n = 1000
	var last sim.Time
	for i := 0; i < n; i++ {
		l.Transmit(4096, func() { last = e.Now() })
	}
	e.Run(e.Now().Add(sim.Second))
	gbps := float64(n*4096*8) / float64(last)
	want := DefaultConfig().Goodput().Gbps()
	if gbps < want-3 || gbps > want+3 {
		t.Errorf("sustained payload rate = %.1f Gbps, want ≈%.1f", gbps, want)
	}
}

func TestCreditsImmediateGrant(t *testing.T) {
	_, l := newLink(t, DefaultConfig())
	granted := false
	l.AcquireCredits(4096, func() { granted = true })
	if !granted {
		t.Fatal("grant with free credits should be immediate")
	}
	if l.InFlightBytes() != 4096 {
		t.Errorf("InFlightBytes = %d", l.InFlightBytes())
	}
	l.ReleaseCredits(4096)
	if l.CreditsAvailable() != DefaultConfig().CreditBytes {
		t.Errorf("credits not fully returned: %d", l.CreditsAvailable())
	}
}

func TestCreditsBlockAndFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CreditBytes = 8192
	e, l := newLink(t, cfg)
	var order []int
	l.AcquireCredits(8192, func() { order = append(order, 0) })
	l.AcquireCredits(4096, func() { order = append(order, 1) })
	l.AcquireCredits(8192, func() { order = append(order, 2) })
	l.AcquireCredits(1, func() { order = append(order, 3) })
	if len(order) != 1 || l.QueuedWaiters() != 3 {
		t.Fatalf("order=%v waiters=%d, want 1 grant and 3 waiters", order, l.QueuedWaiters())
	}
	// Release half: only waiter 1 (4096) fits, but FIFO means it gets
	// granted, then waiter 2 (8192) blocks the rest.
	e.After(0, func() { l.ReleaseCredits(4096) })
	e.Run(e.Now().Add(sim.Microsecond))
	if len(order) != 2 || order[1] != 1 {
		t.Fatalf("order=%v, want [0 1]", order)
	}
	l.ReleaseCredits(4096) // frees 4096: not enough for waiter 2's 8192
	if len(order) != 2 {
		t.Fatalf("waiter 2 granted with insufficient credits: %v", order)
	}
	l.ReleaseCredits(4096) // now 8192 free: waiter 2 granted, pool empty again
	if len(order) != 3 || order[2] != 2 {
		t.Fatalf("order=%v, want [0 1 2]", order)
	}
	l.ReleaseCredits(4096) // anything free lets the 1-byte waiter through
	if len(order) != 4 || order[3] != 3 {
		t.Errorf("FIFO violated: %v", order)
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	_, l := newLink(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	l.ReleaseCredits(1)
}

func TestAcquireLargerThanPoolPanics(t *testing.T) {
	_, l := newLink(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("oversized acquire did not panic")
		}
	}()
	l.AcquireCredits(DefaultConfig().CreditBytes+1, func() {})
}

// Property: any interleaving of acquire/release keeps the credit
// accounting consistent: free + inflight == pool, free never negative.
func TestCreditConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		cfg := DefaultConfig()
		cfg.CreditBytes = 16384
		e := sim.NewEngine(1)
		l, err := New(e, metrics.NewRegistry(), cfg)
		if err != nil {
			return false
		}
		held := 0
		grantedSizes := []int{}
		for _, op := range ops {
			n := 1 + int(op%32)*256 // 1..7937 bytes
			if op%2 == 0 {
				sz := n
				l.AcquireCredits(sz, func() {
					held += sz
					grantedSizes = append(grantedSizes, sz)
				})
			} else if len(grantedSizes) > 0 {
				sz := grantedSizes[0]
				grantedSizes = grantedSizes[1:]
				held -= sz
				l.ReleaseCredits(sz)
			}
			if l.CreditsAvailable() < 0 {
				return false
			}
			if l.CreditsAvailable()+l.InFlightBytes() != cfg.CreditBytes {
				return false
			}
			if l.InFlightBytes() != held {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGen4DoublesBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	g3 := cfg.Goodput()
	cfg.Gen = 4
	g4 := cfg.Goodput()
	ratio := float64(g4) / float64(g3)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("gen4/gen3 goodput ratio = %v, want ≈2", ratio)
	}
}

func BenchmarkTransmit(b *testing.B) {
	e := sim.NewEngine(1)
	l, err := New(e, metrics.NewRegistry(), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Transmit(4096, func() {})
		if i%1024 == 0 {
			e.Drain()
		}
	}
	e.Drain()
}
