// Package pcie models the PCIe interconnect between the NIC and the root
// complex: a serial link whose effective goodput reflects TLP segmentation
// and link-layer overheads (~110 Gbps for PCIe 3.0 x16, matching the
// paper's §3.1), and the credit-based flow control that gives the paper
// its Little's-law throughput bound — posted-write credits are held from
// transmission until the root complex completes the memory write, so any
// inflation of downstream latency (IOTLB walks, loaded DRAM) directly
// reduces the achievable NIC-to-memory rate.
package pcie

import (
	"fmt"

	"hic/internal/metrics"
	"hic/internal/sim"
)

// Config describes one PCIe attachment point.
type Config struct {
	// Gen is the PCIe generation (1–5); the paper's testbed uses 3.
	Gen int
	// Lanes is the link width (x16 on the testbed).
	Lanes int
	// MaxPayload is the maximum TLP payload in bytes (typically 256).
	MaxPayload int
	// TLPOverhead is the per-TLP framing + header cost in bytes.
	TLPOverhead int
	// LinkEfficiency absorbs DLLP/ack/flow-control update overheads.
	LinkEfficiency float64
	// CreditBytes is the posted-write credit pool: the maximum bytes of
	// write transactions in flight between NIC and root complex.
	CreditBytes int
	// RootComplexLatency is the fixed pipeline cost per write transaction
	// in the root complex (ordering, scheduling, credit return).
	RootComplexLatency sim.Duration
}

// DefaultConfig returns the paper-testbed link: PCIe 3.0 x16 with a credit
// pool of ~7 4 KB packets.
func DefaultConfig() Config {
	return Config{
		Gen:                3,
		Lanes:              16,
		MaxPayload:         256,
		TLPOverhead:        28,
		LinkEfficiency:     0.97,
		CreditBytes:        30 << 10,
		RootComplexLatency: 1200 * sim.Nanosecond,
	}
}

// perLaneGbps is the post-encoding data rate per lane per generation.
var perLaneGbps = map[int]float64{
	1: 2.0,    // 2.5 GT/s, 8b/10b
	2: 4.0,    // 5 GT/s, 8b/10b
	3: 7.877,  // 8 GT/s, 128b/130b
	4: 15.754, // 16 GT/s, 128b/130b
	5: 31.508, // 32 GT/s, 128b/130b
}

func (c Config) validate() error {
	if _, ok := perLaneGbps[c.Gen]; !ok {
		return fmt.Errorf("pcie: unsupported generation %d", c.Gen)
	}
	switch c.Lanes {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("pcie: invalid lane count %d", c.Lanes)
	}
	if c.MaxPayload <= 0 {
		return fmt.Errorf("pcie: MaxPayload must be positive")
	}
	if c.TLPOverhead < 0 {
		return fmt.Errorf("pcie: negative TLPOverhead")
	}
	if c.LinkEfficiency <= 0 || c.LinkEfficiency > 1 {
		return fmt.Errorf("pcie: LinkEfficiency %v outside (0,1]", c.LinkEfficiency)
	}
	if c.CreditBytes <= 0 {
		return fmt.Errorf("pcie: CreditBytes must be positive")
	}
	if c.RootComplexLatency < 0 {
		return fmt.Errorf("pcie: negative RootComplexLatency")
	}
	return nil
}

// RawBandwidth returns the post-encoding link rate.
func (c Config) RawBandwidth() sim.BitsPerSecond {
	return sim.Gbps(perLaneGbps[c.Gen] * float64(c.Lanes))
}

// WireBytes returns the on-link size of a DMA of n payload bytes after
// TLP segmentation.
func (c Config) WireBytes(n int) int {
	if n <= 0 {
		return 0
	}
	tlps := (n + c.MaxPayload - 1) / c.MaxPayload
	return n + tlps*c.TLPOverhead
}

// Goodput returns the achievable payload rate for large DMAs: raw
// bandwidth derated by TLP segmentation and link-layer efficiency. For
// the default config this lands near the paper's ~110 Gbps figure.
func (c Config) Goodput() sim.BitsPerSecond {
	payload := float64(c.MaxPayload)
	frac := payload / float64(c.MaxPayload+c.TLPOverhead)
	return sim.BitsPerSecond(float64(c.RawBandwidth()) * frac * c.LinkEfficiency)
}

// Link is one direction of a PCIe attachment (NIC → root complex for
// receive DMA). It serializes transmissions and manages the posted-write
// credit pool.
type Link struct {
	engine *sim.Engine
	cfg    Config

	busyUntil sim.Time

	creditsFree int
	waiters     []waiter

	txBytes    *metrics.Counter
	txTLPs     *metrics.Counter
	creditWait *metrics.Histogram
	inFlight   *metrics.Gauge
}

type waiter struct {
	n       int
	since   sim.Time
	granted func()
}

// New constructs a link.
func New(engine *sim.Engine, reg *metrics.Registry, cfg Config) (*Link, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Link{
		engine:      engine,
		cfg:         cfg,
		creditsFree: cfg.CreditBytes,
		txBytes:     reg.Counter("pcie.tx.bytes"),
		txTLPs:      reg.Counter("pcie.tx.tlps"),
		creditWait:  reg.Histogram("pcie.credit.wait.ns"),
		inFlight:    reg.Gauge("pcie.inflight.bytes"),
	}, nil
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Transmit serializes a DMA of n payload bytes onto the link and invokes
// done when its last TLP reaches the root complex. Transmissions are
// FIFO: the link is a single serial resource.
func (l *Link) Transmit(n int, done func()) {
	if n <= 0 {
		panic("pcie: non-positive transmit size")
	}
	wire := l.cfg.WireBytes(n)
	l.txBytes.Add(uint64(n))
	l.txTLPs.Add(uint64((n + l.cfg.MaxPayload - 1) / l.cfg.MaxPayload))

	rate := sim.BitsPerSecond(float64(l.cfg.RawBandwidth()) * l.cfg.LinkEfficiency)
	dur := rate.TransmitTime(wire)
	now := l.engine.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	finish := start.Add(dur)
	l.busyUntil = finish
	l.engine.At(finish, done)
}

// AcquireCredits blocks (logically) until n credit bytes are available,
// then invokes granted. Grants are strictly FIFO so a large transaction
// cannot be starved by a stream of small ones.
func (l *Link) AcquireCredits(n int, granted func()) {
	if n <= 0 || n > l.cfg.CreditBytes {
		panic(fmt.Sprintf("pcie: credit request %d outside (0,%d]", n, l.cfg.CreditBytes))
	}
	if len(l.waiters) == 0 && l.creditsFree >= n {
		l.grant(n, l.engine.Now(), granted)
		return
	}
	l.waiters = append(l.waiters, waiter{n: n, since: l.engine.Now(), granted: granted})
}

func (l *Link) grant(n int, since sim.Time, granted func()) {
	l.creditsFree -= n
	l.inFlight.Set(int64(l.cfg.CreditBytes - l.creditsFree))
	l.creditWait.Observe(float64(l.engine.Now().Sub(since)))
	granted()
}

// ReleaseCredits returns n credit bytes to the pool and unblocks waiting
// acquirers in order.
func (l *Link) ReleaseCredits(n int) {
	if n <= 0 {
		panic("pcie: non-positive credit release")
	}
	l.creditsFree += n
	if l.creditsFree > l.cfg.CreditBytes {
		panic(fmt.Sprintf("pcie: credit overflow: %d > %d (double release?)",
			l.creditsFree, l.cfg.CreditBytes))
	}
	l.inFlight.Set(int64(l.cfg.CreditBytes - l.creditsFree))
	for len(l.waiters) > 0 && l.creditsFree >= l.waiters[0].n {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.grant(w.n, w.since, w.granted)
	}
}

// CreditsAvailable returns the free credit bytes.
func (l *Link) CreditsAvailable() int { return l.creditsFree }

// InFlightBytes returns the credit bytes currently held.
func (l *Link) InFlightBytes() int { return l.cfg.CreditBytes - l.creditsFree }

// CreditOccupancy returns the held fraction of the posted-write credit
// pool (0 = all free, 1 = exhausted). The observatory samples this as
// its normalized PCIe-backpressure severity.
func (l *Link) CreditOccupancy() float64 {
	return float64(l.cfg.CreditBytes-l.creditsFree) / float64(l.cfg.CreditBytes)
}

// QueuedWaiters returns how many acquirers are blocked on credits.
func (l *Link) QueuedWaiters() int { return len(l.waiters) }

// WarmState is the link's contribution to a steady-state checkpoint.
// Credits are held by in-flight DMA chains whose continuations are Go
// closures, so nothing here can be restored into a fresh run — the
// credit pool refills within microseconds once the warm-started
// datapath flows. The snapshot is record-only: it documents how deep
// the donor ran into the posted-write credit pool (checkpoint
// provenance, donor scoring).
type WarmState struct {
	InFlightBytes int `json:"in_flight_bytes"`
	QueuedWaiters int `json:"queued_waiters"`
}

// WarmState captures the link's credit occupancy for a checkpoint.
func (l *Link) WarmState() WarmState {
	return WarmState{InFlightBytes: l.InFlightBytes(), QueuedWaiters: l.QueuedWaiters()}
}

// OldestWaiterAge returns how long the head credit waiter has been
// blocked, or zero when credits are flowing. A sustained positive age is
// the Little's-law backpressure signal: downstream latency is holding
// posted-write credits and the NIC buffer can only drain at the
// credit-return rate. Drop attribution samples this.
func (l *Link) OldestWaiterAge() sim.Duration {
	if len(l.waiters) == 0 {
		return 0
	}
	return l.engine.Now().Sub(l.waiters[0].since)
}
