// Package experiments defines one runnable definition per figure of the
// paper's evaluation (Figures 3–6; Figure 1 lives in internal/cluster
// because it sweeps hosts, not parameters), plus the §4 "looking
// forward" extensions as ablations. Every definition sweeps scenarios
// through core.RunMany and renders a Table whose rows are the same
// series the paper plots.
package experiments

import (
	"fmt"
	"math"

	"hic/internal/asciiplot"
	"hic/internal/core"
	"hic/internal/runcache"
	"hic/internal/sim"
	"hic/internal/stats"
)

// Options control sweep fidelity.
type Options struct {
	// Seed is the base seed; each point derives its own.
	Seed uint64
	// Warmup and Measure override the per-point windows (0 = default:
	// 20 ms + 30 ms).
	Warmup, Measure sim.Duration
	// Quick shrinks sweeps and windows for tests and smoke runs.
	Quick bool
	// Replicates > 1 runs every point that many times with derived
	// seeds; numeric cells in Fig3/Fig6 then read "mean±ci95".
	Replicates int
	// Cache, when non-nil, memoizes every point through the
	// content-addressed run cache: repeated figure runs replay stored
	// results instead of re-simulating (hicfigs -cache).
	Cache *runcache.Store
	// Exec, when non-nil, routes grid points through an execution
	// strategy (see core.Executor and internal/fidelity). Published
	// figures use nil — pure DES — so their numbers stay exact;
	// Replicates always run pure DES regardless, because replication
	// measures seed noise and the fluid solver is seed-independent.
	Exec core.Executor
}

// replicated runs p Replicates times and returns all results.
func (o Options) replicated(p core.Params) ([]core.Results, error) {
	n := o.Replicates
	if n < 1 {
		n = 1
	}
	return core.RunReplicatedCached(p, n, o.Cache)
}

// runMany sweeps the points through the options' cache (nil ⇒ plain
// core.RunMany). Every figure definition funnels its grid through here.
func (o Options) runMany(ps []core.Params) ([]core.Results, error) {
	if o.Exec != nil {
		return core.RunManyVia(o.Exec, ps, o.Cache)
	}
	return core.RunManyCached(ps, o.Cache)
}

// pull extracts one field across replicated results.
func pull(rs []core.Results, f func(core.Results) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}

func (o Options) params(threads int) core.Params {
	p := core.DefaultParams(threads)
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	if o.Warmup > 0 {
		p.Warmup = o.Warmup
	}
	if o.Measure > 0 {
		p.Measure = o.Measure
	}
	if o.Quick {
		p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	}
	return p
}

func (o Options) pick(full, quick []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string

	xlabels []string
	plots   []asciiplot.Series
}

// Render returns the aligned-text table.
func (t *Table) Render() string {
	return fmt.Sprintf("== %s: %s ==\n%s", t.ID, t.Title,
		asciiplot.FormatTable(t.Columns, t.Rows))
}

// CSVString returns the table as CSV.
func (t *Table) CSVString() string { return asciiplot.CSV(t.Columns, t.Rows) }

// PlotString returns an ASCII plot of the table's headline series.
func (t *Table) PlotString() string {
	if len(t.plots) == 0 {
		return ""
	}
	return asciiplot.LinePlot(t.Title, t.xlabels, t.plots, 12)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Fig3 reproduces Figure 3: application throughput, drop rate and IOTLB
// misses per packet versus receiver cores, with the IOMMU on and off,
// plus the paper's Little's-law model evaluated at the measured miss
// rates (credit-limited regime, threads ≥ 10).
func Fig3(o Options) (*Table, error) {
	threads := o.pick([]int{2, 4, 6, 8, 10, 12, 14, 16}, []int{2, 8, 12})
	t := &Table{
		ID:    "fig3",
		Title: "Throughput / drops / IOTLB misses vs receiver cores (IOMMU on vs off)",
		Columns: []string{"cores", "on_gbps", "off_gbps", "modeled_gbps", "max_gbps",
			"on_drop_pct", "off_drop_pct", "on_misses_per_pkt", "on_hostdelay_p50_us"},
	}
	var onSeries, offSeries, modelSeries []float64
	for _, th := range threads {
		onP := o.params(th)
		offP := onP
		offP.IOMMU = false
		ons, err := o.replicated(onP)
		if err != nil {
			return nil, err
		}
		offs, err := o.replicated(offP)
		if err != nil {
			return nil, err
		}
		tput := func(r core.Results) float64 { return r.AppThroughputGbps }
		misses := stats.Summarize(pull(ons, func(r core.Results) float64 { return r.IOTLBMissesPerPacket }))
		modeled := ""
		mval := 0.0
		if th >= 10 {
			b, err := core.ModeledThroughput(onP, misses.Mean)
			if err != nil {
				return nil, err
			}
			mval = b.Gbps()
			modeled = f1(mval)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(th),
			stats.MeanCI(pull(ons, tput), 1),
			stats.MeanCI(pull(offs, tput), 1),
			modeled, f1(core.MaxAchievable.Gbps()),
			stats.MeanCI(pull(ons, func(r core.Results) float64 { return r.DropRatePct }), 2),
			stats.MeanCI(pull(offs, func(r core.Results) float64 { return r.DropRatePct }), 2),
			stats.MeanCI(pull(ons, func(r core.Results) float64 { return r.IOTLBMissesPerPacket }), 2),
			f1(float64(ons[0].HostDelayP50) / 1000),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(th))
		onSeries = append(onSeries, stats.Summarize(pull(ons, tput)).Mean)
		offSeries = append(offSeries, stats.Summarize(pull(offs, tput)).Mean)
		if modeled != "" {
			modelSeries = append(modelSeries, mval)
		} else {
			modelSeries = append(modelSeries, math.NaN())
		}
	}
	t.plots = []asciiplot.Series{
		{Name: "IOMMU ON", Values: onSeries},
		{Name: "IOMMU OFF", Values: offSeries},
		{Name: "modeled", Values: modelSeries},
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the hugepage ablation. Disabling 2 MB
// mappings multiplies the registered-page count by 512 and makes each
// 4 KB-MTU packet span two pages.
func Fig4(o Options) (*Table, error) {
	threads := o.pick([]int{2, 4, 6, 8, 10, 12, 14, 16}, []int{2, 8, 12})
	var ps []core.Params
	for _, th := range threads {
		huge := o.params(th)
		small := huge
		small.Hugepages = false
		ps = append(ps, huge, small)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig4",
		Title: "Hugepages enabled vs disabled (IOMMU on)",
		Columns: []string{"cores", "huge_gbps", "4k_gbps", "huge_drop_pct", "4k_drop_pct",
			"huge_misses_per_pkt", "4k_misses_per_pkt"},
	}
	var hs, ss []float64
	for i, th := range threads {
		huge, small := rs[2*i], rs[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(th), f1(huge.AppThroughputGbps), f1(small.AppThroughputGbps),
			f2(huge.DropRatePct), f2(small.DropRatePct),
			f2(huge.IOTLBMissesPerPacket), f2(small.IOTLBMissesPerPacket),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(th))
		hs = append(hs, huge.AppThroughputGbps)
		ss = append(ss, small.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{
		{Name: "hugepages", Values: hs},
		{Name: "4K pages", Values: ss},
	}
	return t, nil
}

// Fig5 reproduces Figure 5: Rx memory region size sweep at 12 receiver
// cores — provisioning for larger BDPs enlarges the IOTLB working set.
func Fig5(o Options) (*Table, error) {
	sizesMB := o.pick([]int{4, 8, 12, 16}, []int{4, 16})
	const threads = 12
	var ps []core.Params
	for _, mb := range sizesMB {
		on := o.params(threads)
		on.RxRegionBytes = uint64(mb) << 20
		off := on
		off.IOMMU = false
		ps = append(ps, on, off)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig5",
		Title: "Throughput vs Rx memory region size (12 cores)",
		Columns: []string{"region_mb", "on_gbps", "off_gbps", "on_drop_pct", "off_drop_pct",
			"on_misses_per_pkt"},
	}
	var on, off []float64
	for i, mb := range sizesMB {
		ron, roff := rs[2*i], rs[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(mb), f1(ron.AppThroughputGbps), f1(roff.AppThroughputGbps),
			f2(ron.DropRatePct), f2(roff.DropRatePct), f2(ron.IOTLBMissesPerPacket),
		})
		t.xlabels = append(t.xlabels, fmt.Sprintf("%dMB", mb))
		on = append(on, ron.AppThroughputGbps)
		off = append(off, roff.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{
		{Name: "IOMMU ON", Values: on},
		{Name: "IOMMU OFF", Values: off},
	}
	return t, nil
}

// Fig6 reproduces Figure 6: memory-bus antagonism at 12 receiver cores,
// with the IOMMU off (left panel) and on (center panel), reporting
// throughput, total achieved memory bandwidth and drop rates.
func Fig6(o Options) (*Table, error) {
	cores := o.pick([]int{0, 1, 2, 4, 6, 8, 10, 12, 14, 15}, []int{0, 8, 15})
	const threads = 12
	var ps []core.Params
	for _, ac := range cores {
		on := o.params(threads)
		on.AntagonistCores = ac
		off := on
		off.IOMMU = false
		ps = append(ps, on, off)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig6",
		Title: "Memory antagonism: throughput / memory bandwidth / drops (12 cores)",
		Columns: []string{"antag_cores", "on_gbps", "off_gbps", "on_membw_gbps", "off_membw_gbps",
			"on_drop_pct", "off_drop_pct"},
	}
	var on, off []float64
	for i, ac := range cores {
		ron, roff := rs[2*i], rs[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ac), f1(ron.AppThroughputGbps), f1(roff.AppThroughputGbps),
			f1(ron.MemoryBandwidthGBps), f1(roff.MemoryBandwidthGBps),
			f2(ron.DropRatePct), f2(roff.DropRatePct),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(ac))
		on = append(on, ron.AppThroughputGbps)
		off = append(off, roff.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{
		{Name: "IOMMU ON", Values: on},
		{Name: "IOMMU OFF", Values: off},
	}
	return t, nil
}
