package experiments

import "testing"

func TestExtStrictModeWorse(t *testing.T) {
	tab, err := ExtStrictMode(quick)
	if err != nil {
		t.Fatal(err)
	}
	// At 12 cores, strict mode must be no faster than loose and must
	// show at least the same miss rate (every DMA cold-misses).
	last := len(tab.Rows) - 1
	loose, _ := cell(t, tab, last, "loose_gbps")
	strict, _ := cell(t, tab, last, "strict_gbps")
	if strict > loose {
		t.Errorf("strict mode (%v) beat loose mode (%v)", strict, loose)
	}
	ml, _ := cell(t, tab, last, "loose_misses_per_pkt")
	ms, _ := cell(t, tab, last, "strict_misses_per_pkt")
	if ms <= ml {
		t.Errorf("strict misses (%v) not above loose (%v)", ms, ml)
	}
}

func TestExtTailLatencyGrowsWithAntagonism(t *testing.T) {
	tab, err := ExtTailLatency(quick)
	if err != nil {
		t.Fatal(err)
	}
	p99idle, _ := cell(t, tab, 0, "read_p99_us")
	p99noisy, _ := cell(t, tab, len(tab.Rows)-1, "read_p99_us")
	if p99noisy <= p99idle {
		t.Errorf("read p99 did not inflate under antagonism: %v -> %v µs", p99idle, p99noisy)
	}
	// The paper's claim: hundreds of microseconds of tail latency.
	if p99noisy < 100 {
		t.Errorf("antagonized read p99 = %v µs, want ≥100 (paper: hundreds of µs)", p99noisy)
	}
}

func TestExtIsolationVictimSuffers(t *testing.T) {
	tab, err := ExtIsolation(quick)
	if err != nil {
		t.Fatal(err)
	}
	alone, _ := cell(t, tab, 0, "drop_pct")
	shared, _ := cell(t, tab, 1, "drop_pct")
	if alone > 0.01 {
		t.Errorf("victim alone drops %v%%, want ≈0", alone)
	}
	if shared <= alone {
		t.Errorf("congested scenario drop %v%% not above victim-alone %v%%", shared, alone)
	}
}

func TestExtSawtoothProducesSeries(t *testing.T) {
	tab, err := ExtSawtooth(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("sawtooth rows = %d", len(tab.Rows))
	}
	// Throughput must be nonzero in every bin and vary over time
	// (the sawtooth), at least a little.
	min, max := 1e18, 0.0
	for i := range tab.Rows {
		g, _ := cell(t, tab, i, "gbps")
		if g <= 0 {
			t.Fatalf("bin %d throughput %v", i, g)
		}
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if max == min {
		t.Error("throughput perfectly flat; expected oscillation")
	}
	if tab.PlotString() == "" {
		t.Error("missing plot")
	}
}
