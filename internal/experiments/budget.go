package experiments

import (
	"hic/internal/core"
)

// ExtBudget decomposes the per-DMA latency into its stages — credit
// wait, link serialization, address translation, memory writes, root
// complex — across the paper's regimes. It is the empirical form of the
// §3.1 model: T_base is the translation-free sum, and the translation
// stage grows with M·T_miss as the IOTLB working set outgrows the cache
// (or the memory stage grows under antagonism, §3.2).
func ExtBudget(o Options) (*Table, error) {
	type scenario struct {
		name  string
		mut   func(*core.Params)
		quick bool // include in quick mode
	}
	scs := []scenario{
		{"8 cores (IOTLB fits)", func(p *core.Params) { p.Threads = 8 }, true},
		{"16 cores (IOTLB thrash)", func(p *core.Params) { p.Threads = 16 }, true},
		{"16 cores, 4K pages", func(p *core.Params) { p.Threads = 16; p.Hugepages = false }, false},
		{"12 cores, 12 antagonists", func(p *core.Params) { p.Threads = 12; p.AntagonistCores = 12 }, false},
	}
	if o.Quick {
		scs = scs[:2]
	}
	t := &Table{
		ID:    "ext-budget",
		Title: "Per-DMA latency budget by stage (mean ns)",
		Columns: []string{"scenario", "credit_wait", "link", "translate",
			"memory", "root_complex", "total", "gbps"},
	}
	for _, sc := range scs {
		p := o.params(12)
		sc.mut(&p)
		tb, err := p.Build()
		if err != nil {
			return nil, err
		}
		res := tb.Run(p.Warmup, p.Measure)
		mean := func(name string) float64 {
			return tb.Registry.Histogram(name).Mean()
		}
		wait := mean("nic.dma.stage.creditwait.ns")
		link := mean("nic.dma.stage.link.ns")
		xlate := mean("nic.dma.stage.translate.ns")
		memw := mean("nic.dma.stage.memory.ns")
		rc := mean("nic.dma.stage.rootcomplex.ns")
		t.Rows = append(t.Rows, []string{
			sc.name, f1(wait), f1(link), f1(xlate), f1(memw), f1(rc),
			f1(wait + link + xlate + memw + rc),
			f1(res.AppThroughputGbps),
		})
	}
	return t, nil
}
