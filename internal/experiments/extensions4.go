package experiments

import (
	"hic/internal/core"
)

// ExtSenderSide makes footnote 1 runnable: the sender-side TX path has
// NIC→CPU backpressure, so contending the *senders'* memory buses delays
// packets but never drops them — while the same contention at the
// *receiver* collapses throughput and (in the blind zone) drops packets.
// Host congestion is a receive-side phenomenon.
func ExtSenderSide(o Options) (*Table, error) {
	type scenario struct {
		name string
		mut  func(*core.Params)
	}
	scs := []scenario{
		{"baseline (no host model contended)", func(p *core.Params) {
			p.SenderHostModel = true
		}},
		{"senders' memory contended", func(p *core.Params) {
			p.SenderHostModel = true
			p.SenderAntagonistCores = 12
		}},
		{"receiver's memory contended", func(p *core.Params) {
			p.SenderHostModel = true
			p.AntagonistCores = 12
		}},
	}
	if o.Quick {
		scs = scs[:2]
	}
	const threads = 8 // CPU-headroom regime: differences are interconnect-only
	var ps []core.Params
	for _, sc := range scs {
		p := o.params(threads)
		p.Senders = 16 // keep the per-sender host count manageable
		sc.mut(&p)
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-sender",
		Title:   "Sender-side vs receiver-side memory contention (footnote 1)",
		Columns: []string{"scenario", "gbps", "drop_pct", "retransmits"},
	}
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f1(float64(r.Retransmits)),
		})
	}
	return t, nil
}
