package experiments

import (
	"fmt"

	"hic/internal/asciiplot"
	"hic/internal/core"
)

// ExtSoftwareVsInterconnect contrasts the two congestion modes §4
// distinguishes. Host software congestion (fewer processing cores than
// the load needs) is solved by dynamic core scaling — the remedy the
// paper credits to state-of-the-art stacks. Host interconnect congestion
// is not: with the IOMMU bottleneck, the registered working set already
// exceeds the IOTLB, and no amount of compute helps.
func ExtSoftwareVsInterconnect(o Options) (*Table, error) {
	type scenario struct {
		name    string
		threads int
		mut     func(*core.Params)
	}
	scs := []scenario{
		{"software-bound: 4 of 12 cores", 12, func(p *core.Params) {
			p.CPUCores = 12
			p.InitialActiveCores = 4
		}},
		{"software-bound + dynamic scaling", 12, func(p *core.Params) {
			p.CPUCores = 12
			p.InitialActiveCores = 4
			p.DynamicCoreScaling = true
		}},
		{"interconnect-bound: 12 threads", 12, func(p *core.Params) {}},
		{"interconnect-bound: 16 threads (more cores!)", 16, func(p *core.Params) {}},
	}
	if o.Quick {
		scs = scs[:2]
	}
	var ps []core.Params
	for _, sc := range scs {
		p := o.params(sc.threads)
		sc.mut(&p)
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-software",
		Title:   "Host software congestion vs host interconnect congestion (§4)",
		Columns: []string{"scenario", "gbps", "drop_pct", "hostdelay_p50_us", "misses_per_pkt"},
	}
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f1(float64(r.HostDelayP50) / 1000), f2(r.IOTLBMissesPerPacket),
		})
	}
	return t, nil
}

// ExtNUMAPlacement demonstrates §4's coordinated-allocation response:
// instead of throttling the network when the memory bus saturates,
// schedule the memory-hungry application onto the NUMA node the NIC is
// *not* attached to.
func ExtNUMAPlacement(o Options) (*Table, error) {
	type scenario struct {
		name   string
		antag  int
		remote bool
	}
	scs := []scenario{
		{"no antagonist", 0, false},
		{"12 antagonists, NIC-local node", 12, false},
		{"12 antagonists, far node", 12, true},
	}
	if o.Quick {
		scs = scs[1:]
	}
	const threads = 12
	var ps []core.Params
	for _, sc := range scs {
		p := o.params(threads)
		p.AntagonistCores = sc.antag
		p.AntagonistRemoteNUMA = sc.remote
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-numa",
		Title:   "Antagonist NUMA placement (§4 coordinated allocation)",
		Columns: []string{"scenario", "gbps", "drop_pct", "local_membw_gbps"},
	}
	var tput []float64
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct), f1(r.MemoryBandwidthGBps),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(i))
		tput = append(tput, r.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{{Name: "Gbps", Values: tput}}
	return t, nil
}

// ExtFairness reports Jain's index over per-connection goodput with and
// without host congestion: the shared NIC buffer spreads drops across
// flows, degrading fairness exactly as the paper's isolation-violation
// framing predicts.
func ExtFairness(o Options) (*Table, error) {
	type scenario struct {
		name    string
		threads int
	}
	scs := []scenario{
		{"CPU-bound (8 threads, no blind-zone drops)", 8},
		{"interconnect-bound (12 threads, blind zone)", 12},
	}
	var ps []core.Params
	for _, sc := range scs {
		ps = append(ps, o.params(sc.threads))
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-fairness",
		Title:   "Per-connection fairness under host congestion",
		Columns: []string{"scenario", "gbps", "drop_pct", "jain_index"},
	}
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct),
			fmt.Sprintf("%.3f", r.FairnessIndex),
		})
	}
	return t, nil
}
