package experiments

import (
	"fmt"

	"hic/internal/asciiplot"
	"hic/internal/core"
)

// ExtDDIO explores footnote 2: with direct cache access (DDIO) the
// receive-path copy mostly hits the LLC (the calibrated default re-reads
// 28% of payload from DRAM, matching the paper's measured 3.3 GB/s);
// without it, every copy fetches the full payload from DRAM, adding
// ≈11.5 GB/s of CPU-side demand at full rate and pulling the Figure-6
// collapse earlier. An idealized DDIO (5% re-read) buys headroom.
func ExtDDIO(o Options) (*Table, error) {
	type variant struct {
		name string
		frac float64
	}
	variants := []variant{
		{"ddio_ideal", 0.05},
		{"ddio_measured", 0.28},
		{"ddio_off", 1.0},
	}
	antag := o.pick([]int{0, 6, 8, 10}, []int{0, 8})
	const threads = 12
	t := &Table{
		ID:    "ext-ddio",
		Title: "Direct cache access (DDIO) and the memory-bus collapse (12 cores)",
		Columns: []string{"antag_cores", "ideal_gbps", "measured_gbps", "off_gbps",
			"off_membw_gbps"},
	}
	series := make(map[string][]float64)
	for _, ac := range antag {
		var ps []core.Params
		for _, v := range variants {
			p := o.params(threads)
			p.AntagonistCores = ac
			p.CopyReadFraction = v.frac
			ps = append(ps, p)
		}
		rs, err := o.runMany(ps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ac),
			f1(rs[0].AppThroughputGbps), f1(rs[1].AppThroughputGbps),
			f1(rs[2].AppThroughputGbps), f1(rs[2].MemoryBandwidthGBps),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(ac))
		for i, v := range variants {
			series[v.name] = append(series[v.name], rs[i].AppThroughputGbps)
		}
	}
	for _, v := range variants {
		t.plots = append(t.plots, asciiplot.Series{Name: v.name, Values: series[v.name]})
	}
	return t, nil
}
