package experiments

import (
	"fmt"

	"hic/internal/asciiplot"
	"hic/internal/core"
	"hic/internal/sim"
)

// ExtStrictMode compares the paper's loose-mode registration (fixed
// upfront mappings, no runtime invalidations) against the strict per-DMA
// map/unmap mode §3.1 dismisses as "known to cause even worse IOTLB
// misses" — every DMA pays a mapping update and always cold-misses.
func ExtStrictMode(o Options) (*Table, error) {
	threads := o.pick([]int{4, 8, 12, 16}, []int{4, 12})
	var ps []core.Params
	for _, th := range threads {
		loose := o.params(th)
		strict := loose
		strict.StrictIOMMU = true
		ps = append(ps, loose, strict)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-strict",
		Title: "Loose vs strict IOMMU mapping mode",
		Columns: []string{"cores", "loose_gbps", "strict_gbps", "loose_drop_pct",
			"strict_drop_pct", "loose_misses_per_pkt", "strict_misses_per_pkt"},
	}
	var loose, strict []float64
	for i, th := range threads {
		rl, rsx := rs[2*i], rs[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(th), f1(rl.AppThroughputGbps), f1(rsx.AppThroughputGbps),
			f2(rl.DropRatePct), f2(rsx.DropRatePct),
			f2(rl.IOTLBMissesPerPacket), f2(rsx.IOTLBMissesPerPacket),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(th))
		loose = append(loose, rl.AppThroughputGbps)
		strict = append(strict, rsx.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{
		{Name: "loose", Values: loose},
		{Name: "strict", Values: strict},
	}
	return t, nil
}

// ExtTailLatency measures application-level 16 KB read latency under
// growing memory antagonism: the introduction's claim that host
// congestion causes "hundreds of microseconds of tail latency".
func ExtTailLatency(o Options) (*Table, error) {
	cores := o.pick([]int{0, 4, 8, 12, 15}, []int{0, 12})
	const threads = 12
	var ps []core.Params
	for _, ac := range cores {
		p := o.params(threads)
		p.AntagonistCores = ac
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-tail",
		Title: "16KB read latency under memory antagonism (12 cores, IOMMU on)",
		Columns: []string{"antag_cores", "gbps", "read_p50_us", "read_p99_us",
			"read_p999_us", "hostdelay_p99_us"},
	}
	var p99 []float64
	for i, ac := range cores {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ac), f1(r.AppThroughputGbps),
			f1(float64(r.ReadLatencyP50) / 1000),
			f1(float64(r.ReadLatencyP99) / 1000),
			f1(float64(r.ReadLatencyP999) / 1000),
			f1(float64(r.HostDelayP99) / 1000),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(ac))
		p99 = append(p99, float64(r.ReadLatencyP99)/1000)
	}
	t.plots = []asciiplot.Series{{Name: "read p99 (µs)", Values: p99}}
	return t, nil
}

// ExtIsolation demonstrates the isolation violation the paper uses drop
// rate as a proxy for: a well-behaved, lightly loaded victim sharing the
// NIC input buffer with saturating aggressors suffers drops it would
// never see alone. The victim is modelled as an app-limited host
// scenario; the aggressor pressure comes from running the same victim
// load with the interconnect congested (blind zone) versus idle.
func ExtIsolation(o Options) (*Table, error) {
	type scenario struct {
		name    string
		threads int
		offered float64
	}
	scs := []scenario{
		{"victim alone (8 cores, 20 Gbps)", 8, 20},
		{"victim+aggressors (12 cores, saturating)", 12, 0},
	}
	var ps []core.Params
	for _, sc := range scs {
		p := o.params(sc.threads)
		p.OfferedGbps = sc.offered
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-isolation",
		Title:   "Shared NIC buffer: drops as an isolation violation",
		Columns: []string{"scenario", "gbps", "drop_pct", "hostdelay_p99_us", "read_p99_us"},
	}
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f1(float64(r.HostDelayP99) / 1000),
			f1(float64(r.ReadLatencyP99) / 1000),
		})
	}
	return t, nil
}

// ExtSawtooth samples throughput over time at the paper's 12-core
// IOMMU-on operating point, exposing the classic congestion-control
// sawtooth §3.1 describes (rate reduction → delay drops → rate grows →
// drops again).
func ExtSawtooth(o Options) (*Table, error) {
	p := o.params(12)
	tb, err := p.Build()
	if err != nil {
		return nil, err
	}
	bins := 24
	if o.Quick {
		bins = 8
	}
	binW := 2 * sim.Millisecond

	tb.Start()
	tb.Engine.Run(tb.Engine.Now().Add(p.Warmup))
	t := &Table{
		ID:      "ext-sawtooth",
		Title:   "Goodput and NIC buffer over time (12 cores, IOMMU on)",
		Columns: []string{"t_ms", "gbps", "nic_buffer_kb", "drops_in_bin"},
	}
	var series []float64
	prevGoodput := tb.Receiver.GoodputBytes()
	prevDrops := tb.NIC.Stats().Drops
	start := tb.Engine.Now()
	for i := 0; i < bins; i++ {
		tb.Engine.Run(tb.Engine.Now().Add(binW))
		goodput := tb.Receiver.GoodputBytes()
		drops := tb.NIC.Stats().Drops
		gbps := float64(goodput-prevGoodput) * 8 / binW.Seconds() / 1e9
		elapsed := tb.Engine.Now().Sub(start)
		t.Rows = append(t.Rows, []string{
			f1(elapsed.Seconds() * 1000), f1(gbps),
			fmt.Sprint(tb.NIC.BufferUsed() >> 10),
			fmt.Sprint(drops - prevDrops),
		})
		t.xlabels = append(t.xlabels, f1(elapsed.Seconds()*1000))
		series = append(series, gbps)
		prevGoodput, prevDrops = goodput, drops
	}
	t.plots = []asciiplot.Series{{Name: "Gbps", Values: series}}
	return t, nil
}
