package experiments

import (
	"testing"

	"hic/internal/core"
	"hic/internal/sim"
)

func TestExtSoftwareScalingRecovers(t *testing.T) {
	tab, err := ExtSoftwareVsInterconnect(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Software-bound with 4 of 12 cores ≈ 4×11.5; with dynamic scaling
	// the controller must recover most of the ceiling.
	bound, _ := cell(t, tab, 0, "gbps")
	scaled, _ := cell(t, tab, 1, "gbps")
	if bound > 55 {
		t.Errorf("4-core software bound = %v Gbps, want ≈46", bound)
	}
	if scaled < bound+15 {
		t.Errorf("dynamic scaling did not recover: %v -> %v", bound, scaled)
	}
}

func TestExtNUMARemotePlacementRecovers(t *testing.T) {
	tab, err := ExtNUMAPlacement(quick)
	if err != nil {
		t.Fatal(err)
	}
	local, _ := cell(t, tab, 0, "gbps")
	remote, _ := cell(t, tab, 1, "gbps")
	if remote <= local {
		t.Errorf("far-node placement (%v) not better than NIC-local (%v)", remote, local)
	}
}

func TestExtFairnessDegradesUnderCongestion(t *testing.T) {
	tab, err := ExtFairness(quick)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := cell(t, tab, 0, "jain_index")
	congested, _ := cell(t, tab, 1, "jain_index")
	if clean < 0.9 {
		t.Errorf("uncongested fairness = %v, want near 1", clean)
	}
	if congested > clean {
		t.Errorf("congestion improved fairness? %v -> %v", clean, congested)
	}
}

func TestDynamicScalingEndToEnd(t *testing.T) {
	// Direct check of the controller: start at 2 of 12 cores under a
	// saturating load; active cores must grow.
	p := core.DefaultParams(12)
	p.Warmup, p.Measure = 2*sim.Millisecond, 6*sim.Millisecond
	p.CPUCores = 12
	p.InitialActiveCores = 2
	p.DynamicCoreScaling = true
	tb, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(p.Warmup, p.Measure)
	if got := tb.CPU.ActiveCores(); got <= 2 {
		t.Errorf("active cores = %d after saturating load, want > 2", got)
	}
}

func TestRemoteNUMALeavesLocalBusIdle(t *testing.T) {
	p := core.DefaultParams(4)
	p.Senders = 8
	p.Warmup, p.Measure = 2*sim.Millisecond, 4*sim.Millisecond
	p.AntagonistCores = 12
	p.AntagonistRemoteNUMA = true
	tb, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(p.Warmup, p.Measure)
	if tb.RemoteMemory == nil {
		t.Fatal("remote NUMA controller not created")
	}
	if tb.Memory.CPUOffered() > 2e9 {
		t.Errorf("NIC-local bus sees %v B/s of antagonist demand, want ≈copy traffic only",
			tb.Memory.CPUOffered())
	}
	if tb.RemoteMemory.CPUOffered() < 50e9 {
		t.Errorf("far node sees %v B/s, want the full antagonist demand", tb.RemoteMemory.CPUOffered())
	}
}

func TestExtSenderSideAsymmetry(t *testing.T) {
	o := quick
	o.Quick = false // need all three scenarios; shrink windows instead
	o.Warmup, o.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	tab, err := ExtSenderSide(o)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := cell(t, tab, 0, "gbps")
	senderSide, _ := cell(t, tab, 1, "gbps")
	receiverSide, _ := cell(t, tab, 2, "gbps")
	// Sender-side contention: mild (backpressure, no loss). Receiver-
	// side: collapse.
	if senderSide < 0.8*base {
		t.Errorf("sender-side contention collapsed throughput: %v -> %v", base, senderSide)
	}
	if receiverSide >= senderSide {
		t.Errorf("receiver-side contention (%v) not worse than sender-side (%v)",
			receiverSide, senderSide)
	}
	sDrop, _ := cell(t, tab, 1, "drop_pct")
	if sDrop > 0.2 {
		t.Errorf("sender-side contention caused %v%% drops; backpressure should prevent loss", sDrop)
	}
}

func TestExtPartitionProtectsVictim(t *testing.T) {
	o := quick
	o.Warmup, o.Measure = 6*sim.Millisecond, 8*sim.Millisecond
	tab, err := ExtPartition(o)
	if err != nil {
		t.Fatal(err)
	}
	sharedVic, _ := cell(t, tab, 0, "victim_drop_pct")
	partVic, _ := cell(t, tab, 1, "victim_drop_pct")
	if sharedVic <= 0 {
		t.Skip("no blind-zone drops at quick fidelity; nothing to compare")
	}
	if partVic >= sharedVic {
		t.Errorf("partitioning did not protect the victim: %v -> %v", sharedVic, partVic)
	}
}

func TestExtBudgetDecomposition(t *testing.T) {
	tab, err := ExtBudget(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 8 cores: translations nearly free (IOTLB fits). 16 cores: the
	// translate stage must dominate the growth.
	x8, _ := cell(t, tab, 0, "translate")
	x16, _ := cell(t, tab, 1, "translate")
	if x8 > 100 {
		t.Errorf("8-core translate stage = %v ns, want ≈ hit latency", x8)
	}
	if x16 < 5*x8+100 {
		t.Errorf("16-core translate stage %v not ≫ 8-core %v", x16, x8)
	}
	t8, _ := cell(t, tab, 0, "total")
	t16, _ := cell(t, tab, 1, "total")
	if t16 <= t8 {
		t.Errorf("total per-DMA latency did not grow: %v -> %v", t8, t16)
	}
}

func TestExtDDIOCopyTrafficMatters(t *testing.T) {
	tab, err := ExtDDIO(quick)
	if err != nil {
		t.Fatal(err)
	}
	// In the transition region (8 antagonists) the DDIO-off host must be
	// slower than the ideal one: its copies add DRAM demand.
	last := len(tab.Rows) - 1
	ideal, _ := cell(t, tab, last, "ideal_gbps")
	off, _ := cell(t, tab, last, "off_gbps")
	if off >= ideal {
		t.Errorf("DDIO off (%v) not slower than ideal (%v) under antagonism", off, ideal)
	}
}

func TestExtOnsetFixedWindowsOverflow(t *testing.T) {
	o := quick
	o.Warmup, o.Measure = 6*sim.Millisecond, 8*sim.Millisecond
	tab, err := ExtOnset(o)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: row 0 = steady Swift at a 25µs target (no drops);
	// row 1 = bursty fixed-window TCP-like (footnote 5 overflow).
	steady, _ := cell(t, tab, 0, "drop_pct")
	fixed, _ := cell(t, tab, 1, "drop_pct")
	if steady > 0.5 {
		t.Errorf("steady Swift at a low target drops %v%%, want ≈0", steady)
	}
	if fixed < 1 {
		t.Errorf("fixed-window burst onsets drop %v%%, want substantial overflow", fixed)
	}
}
