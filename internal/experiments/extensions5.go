package experiments

import (
	"fmt"
)

// ExtPartition compares the paper's shared NIC SRAM against per-queue
// buffer partitioning under an asymmetric workload: eleven queues of
// saturating aggressors push the host into the congestion-control blind
// zone while the twelfth queue hosts a well-behaved, app-limited victim.
// With the shared buffer the aggressors' overflow drops the victim's
// packets too (the isolation violation the paper's drop-rate proxy
// captures); partitioned, the victim's own slice never fills.
func ExtPartition(o Options) (*Table, error) {
	type scenario struct {
		name      string
		partition bool
	}
	scs := []scenario{
		{"shared buffer (paper's NIC)", false},
		{"per-queue buffers", true},
	}
	const threads = 12
	t := &Table{
		ID:    "ext-partition",
		Title: "Shared vs partitioned NIC buffer: aggressors and a victim tenant",
		Columns: []string{"scenario", "gbps", "aggressor_drop_pct",
			"victim_drop_pct", "victim_gbps"},
	}
	for _, sc := range scs {
		p := o.params(threads)
		p.VictimConnGbps = 0.02 // 40 victim connections ≈ 0.8 Gbps total
		p.PerQueueNICBuffers = sc.partition
		tb, err := p.Build()
		if err != nil {
			return nil, err
		}
		res := tb.Run(p.Warmup, p.Measure)

		// Decompose drops and goodput into aggressors and the victim.
		dropsByFlow := tb.NIC.DropsByFlow()
		goodByFlow := tb.Receiver.GoodputByFlow()
		victimQ := threads - 1
		var aggDrops, vicDrops, aggPkts, vicPkts, vicBytes uint64
		for _, c := range tb.Conns {
			flow := c.Flow()
			q := int(flow & 0xffff)
			drops := dropsByFlow[flow]
			pkts := goodByFlow[flow] / 4096
			if q == victimQ {
				vicDrops += drops
				vicPkts += pkts
				vicBytes += goodByFlow[flow]
			} else {
				aggDrops += drops
				aggPkts += pkts
			}
		}
		pct := func(drops, delivered uint64) float64 {
			if drops+delivered == 0 {
				return 0
			}
			return float64(drops) / float64(drops+delivered) * 100
		}
		vicGbps := float64(vicBytes) * 8 / (p.Warmup + p.Measure).Seconds() / 1e9
		t.Rows = append(t.Rows, []string{
			sc.name, f1(res.AppThroughputGbps),
			f2(pct(aggDrops, aggPkts)), f2(pct(vicDrops, vicPkts)),
			fmt.Sprintf("%.2f", vicGbps),
		})
	}
	return t, nil
}
