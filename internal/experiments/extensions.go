package experiments

import (
	"fmt"

	"hic/internal/asciiplot"
	"hic/internal/core"
	"hic/internal/model"
	"hic/internal/sim"
)

// ExtTargetDelay sweeps Swift's host-delay target — the paper's §3.1
// discussion: a lower target alone cannot prevent drops because in-flight
// bytes exceed the NIC buffer before any RTT-scale reaction.
func ExtTargetDelay(o Options) (*Table, error) {
	targets := o.pick([]int{25, 50, 75, 100, 150, 200}, []int{25, 100})
	const threads = 12
	var ps []core.Params
	for _, us := range targets {
		p := o.params(threads)
		p.HostTarget = sim.Duration(us) * sim.Microsecond
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-target",
		Title: "Swift host-delay target ablation (12 cores, IOMMU on)",
		Columns: []string{"target_us", "gbps", "drop_pct", "hostdelay_p50_us",
			"hostdelay_p99_us", "blind_threshold_gbps"},
	}
	var tput, drop []float64
	for i, us := range targets {
		r := rs[i]
		blind := model.CCBlindThreshold(1<<20, sim.Duration(us)*sim.Microsecond, 4096.0/4452.0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(us), f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f1(float64(r.HostDelayP50) / 1000), f1(float64(r.HostDelayP99) / 1000),
			f1(blind.Gbps()),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(us))
		tput = append(tput, r.AppThroughputGbps)
		drop = append(drop, r.DropRatePct)
	}
	t.plots = []asciiplot.Series{
		{Name: "Gbps", Values: tput},
		{Name: "drop%", Values: drop},
	}
	return t, nil
}

// ExtNICBuffer sweeps the NIC input buffer: larger buffers move the CC
// blind threshold (buffer/target) below the operating point, letting
// Swift see host congestion before drops.
func ExtNICBuffer(o Options) (*Table, error) {
	sizesKB := o.pick([]int{256, 512, 1024, 2048, 4096}, []int{512, 2048})
	const threads = 12
	var ps []core.Params
	for _, kb := range sizesKB {
		p := o.params(threads)
		p.NICBufferBytes = kb << 10
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-buffer",
		Title: "NIC input-buffer size ablation (12 cores, IOMMU on)",
		Columns: []string{"buffer_kb", "gbps", "drop_pct", "hostdelay_p99_us",
			"blind_threshold_gbps"},
	}
	var drop []float64
	for i, kb := range sizesKB {
		r := rs[i]
		blind := model.CCBlindThreshold(kb<<10, 100*sim.Microsecond, 4096.0/4452.0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(kb), f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f1(float64(r.HostDelayP99) / 1000), f1(blind.Gbps()),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(kb))
		drop = append(drop, r.DropRatePct)
	}
	t.plots = []asciiplot.Series{{Name: "drop%", Values: drop}}
	return t, nil
}

// ExtATS sweeps an ATS-style device TLB (§4(a)): translations cached on
// the NIC relieve the 128-entry IOTLB.
func ExtATS(o Options) (*Table, error) {
	entries := o.pick([]int{0, 128, 256, 512, 1024}, []int{0, 512})
	const threads = 16
	var ps []core.Params
	for _, n := range entries {
		p := o.params(threads)
		p.DeviceTLBEntries = n
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-ats",
		Title:   "ATS-style device TLB (16 cores, IOMMU on)",
		Columns: []string{"device_tlb", "gbps", "drop_pct", "misses_per_pkt"},
	}
	var tput []float64
	for i, n := range entries {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f2(r.IOTLBMissesPerPacket),
		})
		t.xlabels = append(t.xlabels, fmt.Sprint(n))
		tput = append(tput, r.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{{Name: "Gbps", Values: tput}}
	return t, nil
}

// ExtCXL scales the root-complex pipeline latency down, as a CXL-like
// interconnect might (§4(b)): shorter credit hold times raise the
// Little's-law bound.
func ExtCXL(o Options) (*Table, error) {
	scales := []float64{1.0, 0.75, 0.5, 0.25}
	if o.Quick {
		scales = []float64{1.0, 0.5}
	}
	const threads = 16
	var ps []core.Params
	for _, s := range scales {
		p := o.params(threads)
		p.LinkLatencyScale = s
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-cxl",
		Title:   "CXL-like link latency scaling (16 cores, IOMMU on)",
		Columns: []string{"latency_scale", "gbps", "drop_pct"},
	}
	var tput []float64
	for i, s := range scales {
		r := rs[i]
		t.Rows = append(t.Rows, []string{f2(s), f1(r.AppThroughputGbps), f2(r.DropRatePct)})
		t.xlabels = append(t.xlabels, f2(s))
		tput = append(tput, r.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{{Name: "Gbps", Values: tput}}
	return t, nil
}

// ExtMBA sweeps an MBA/MPAM-style memory-bandwidth reservation for the
// NIC (§4(c)) under heavy antagonism.
func ExtMBA(o Options) (*Table, error) {
	shares := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30}
	if o.Quick {
		shares = []float64{0, 0.2}
	}
	const threads, antag = 12, 12
	var ps []core.Params
	for _, s := range shares {
		p := o.params(threads)
		p.AntagonistCores = antag
		p.MemoryIOReservedShare = s
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-mba",
		Title:   "MBA-style NIC bandwidth reservation (12 cores, 12 antagonists)",
		Columns: []string{"io_reserved", "gbps", "drop_pct", "membw_gbps"},
	}
	var tput []float64
	for i, s := range shares {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			f2(s), f1(r.AppThroughputGbps), f2(r.DropRatePct), f1(r.MemoryBandwidthGBps),
		})
		t.xlabels = append(t.xlabels, f2(s))
		tput = append(tput, r.AppThroughputGbps)
	}
	t.plots = []asciiplot.Series{{Name: "Gbps", Values: tput}}
	return t, nil
}

// ExtSubRTT compares standard Swift against the §4 sub-RTT host
// congestion signal (NIC-originated marks with immediate reaction) in the
// blind zone where delay targets cannot fire.
func ExtSubRTT(o Options) (*Table, error) {
	type scenario struct {
		name   string
		antag  int
		subRTT bool
	}
	scs := []scenario{
		{"swift", 0, false},
		{"swift+subrtt", 0, true},
		{"swift antag=8", 8, false},
		{"swift+subrtt antag=8", 8, true},
	}
	if o.Quick {
		scs = scs[:2]
	}
	const threads = 12
	var ps []core.Params
	for _, sc := range scs {
		p := o.params(threads)
		p.AntagonistCores = sc.antag
		p.SubRTTHostECN = sc.subRTT
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-subrtt",
		Title:   "Sub-RTT host congestion signal (12 cores, IOMMU on)",
		Columns: []string{"scenario", "gbps", "drop_pct", "hostdelay_p99_us"},
	}
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct),
			f1(float64(r.HostDelayP99) / 1000),
		})
	}
	return t, nil
}

// ExtCCCompare runs Swift against the TCP-like baselines under host
// congestion (§4: "similar reasoning also applies for TCP-like
// protocols").
func ExtCCCompare(o Options) (*Table, error) {
	type scenario struct {
		name string
		cc   core.CC
	}
	scs := []scenario{
		{"swift (delay-based, host target)", core.CCSwift},
		{"dctcp (switch ECN)", core.CCDCTCP},
		{"loss-only (TCP-Reno-like)", core.CCDCTCP},
		{"fixed window (no feedback)", core.CCFixed},
	}
	if o.Quick {
		scs = scs[:2]
	}
	const threads = 12
	var ps []core.Params
	for i, sc := range scs {
		p := o.params(threads)
		p.CC = sc.cc
		if i == 1 {
			// DCTCP proper: switch marks above ~70 KB of port queue.
			p.FabricECNThresholdBytes = 70 << 10
		}
		// i == 2: DCTCP machinery with no marks configured anywhere —
		// additive increase + loss halving, i.e. a Reno-like TCP that
		// can only learn about host congestion from drops.
		if sc.cc == core.CCFixed {
			p.FixedCwnd = 1
		}
		ps = append(ps, p)
	}
	rs, err := o.runMany(ps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-cc",
		Title:   "Congestion control under host congestion (12 cores, IOMMU on)",
		Columns: []string{"protocol", "gbps", "drop_pct", "retransmits", "hostdelay_p99_us"},
	}
	for i, sc := range scs {
		r := rs[i]
		t.Rows = append(t.Rows, []string{
			sc.name, f1(r.AppThroughputGbps), f2(r.DropRatePct),
			fmt.Sprint(r.Retransmits), f1(float64(r.HostDelayP99) / 1000),
		})
	}
	return t, nil
}

// Registry maps experiment IDs to their definitions.
var Registry = map[string]func(Options) (*Table, error){
	"3":         Fig3,
	"4":         Fig4,
	"5":         Fig5,
	"6":         Fig6,
	"target":    ExtTargetDelay,
	"buffer":    ExtNICBuffer,
	"ats":       ExtATS,
	"cxl":       ExtCXL,
	"mba":       ExtMBA,
	"subrtt":    ExtSubRTT,
	"cc":        ExtCCCompare,
	"strict":    ExtStrictMode,
	"tail":      ExtTailLatency,
	"isolation": ExtIsolation,
	"sawtooth":  ExtSawtooth,
	"software":  ExtSoftwareVsInterconnect,
	"numa":      ExtNUMAPlacement,
	"fairness":  ExtFairness,
	"sender":    ExtSenderSide,
	"partition": ExtPartition,
	"budget":    ExtBudget,
	"ddio":      ExtDDIO,
	"onset":     ExtOnset,
}

// Order is the canonical presentation order of Registry entries.
var Order = []string{"3", "4", "5", "6", "target", "buffer", "ats", "cxl", "mba",
	"subrtt", "cc", "strict", "tail", "isolation", "sawtooth", "software", "numa", "fairness",
	"sender", "partition", "budget", "ddio", "onset"}

// All runs every experiment in Order.
func All(o Options) ([]*Table, error) {
	var tables []*Table
	for _, id := range Order {
		t, err := Registry[id](o)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
