package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true, Seed: 1}

// cell parses a table cell as float; empty cells return ok=false.
func cell(t *testing.T, tab *Table, row int, col string) (float64, bool) {
	t.Helper()
	ci := -1
	for i, c := range tab.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("%s: no column %q in %v", tab.ID, col, tab.Columns)
	}
	s := tab.Rows[row][ci]
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell %q not numeric: %v", tab.ID, s, err)
	}
	return v, true
}

func TestFig3QuickShape(t *testing.T) {
	tab, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// CPU-bound at 2 cores: ON == OFF, both far below the ceiling.
	on2, _ := cell(t, tab, 0, "on_gbps")
	off2, _ := cell(t, tab, 0, "off_gbps")
	if on2 < 15 || on2 > 30 || off2 < 15 || off2 > 30 {
		t.Errorf("2-core throughputs = %v/%v, want ≈23", on2, off2)
	}
	// Interconnect-bound at 12 cores: ON below OFF, misses nonzero.
	on12, _ := cell(t, tab, 2, "on_gbps")
	off12, _ := cell(t, tab, 2, "off_gbps")
	m12, _ := cell(t, tab, 2, "on_misses_per_pkt")
	if on12 >= off12 {
		t.Errorf("12-core: ON %v not below OFF %v", on12, off12)
	}
	if m12 <= 0 {
		t.Error("12-core: no IOTLB misses")
	}
	// The modeled column only appears for cores ≥ 10.
	if _, ok := cell(t, tab, 0, "modeled_gbps"); ok {
		t.Error("modeled value present in the CPU-bound regime")
	}
	if mv, ok := cell(t, tab, 2, "modeled_gbps"); !ok || mv < 60 || mv > 95 {
		t.Errorf("modeled at 12 cores = %v (ok=%v)", mv, ok)
	}
	if !strings.Contains(tab.Render(), "fig3") {
		t.Error("Render missing experiment id")
	}
	if tab.PlotString() == "" {
		t.Error("missing plot")
	}
}

func TestFig4QuickShape(t *testing.T) {
	tab, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	huge, _ := cell(t, tab, last, "huge_gbps")
	small, _ := cell(t, tab, last, "4k_gbps")
	if small >= huge {
		t.Errorf("4K pages (%v) not slower than hugepages (%v) at 12 cores", small, huge)
	}
	mh, _ := cell(t, tab, last, "huge_misses_per_pkt")
	ms, _ := cell(t, tab, last, "4k_misses_per_pkt")
	if ms <= mh {
		t.Errorf("4K misses (%v) not above hugepage misses (%v)", ms, mh)
	}
	// 4K pages already miss at 2 cores (3072 pages ≫ 128 entries).
	ms2, _ := cell(t, tab, 0, "4k_misses_per_pkt")
	if ms2 <= 0.5 {
		t.Errorf("2-core 4K misses = %v, want substantial", ms2)
	}
}

func TestFig5QuickShape(t *testing.T) {
	tab, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Larger regions mean more IOTLB pressure: misses grow 4MB → 16MB.
	m4, _ := cell(t, tab, 0, "on_misses_per_pkt")
	m16, _ := cell(t, tab, len(tab.Rows)-1, "on_misses_per_pkt")
	if m16 <= m4 {
		t.Errorf("misses did not grow with region size: %v -> %v", m4, m16)
	}
	g4, _ := cell(t, tab, 0, "on_gbps")
	g16, _ := cell(t, tab, len(tab.Rows)-1, "on_gbps")
	if g16 >= g4 {
		t.Errorf("throughput did not degrade with region size: %v -> %v", g4, g16)
	}
}

func TestFig6QuickShape(t *testing.T) {
	tab, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Memory bandwidth grows with antagonist cores; NIC throughput falls.
	bw0, _ := cell(t, tab, 0, "off_membw_gbps")
	bwN, _ := cell(t, tab, len(tab.Rows)-1, "off_membw_gbps")
	if bwN <= bw0 {
		t.Errorf("memory bandwidth did not grow: %v -> %v", bw0, bwN)
	}
	g0, _ := cell(t, tab, 0, "off_gbps")
	gN, _ := cell(t, tab, len(tab.Rows)-1, "off_gbps")
	if gN >= g0-5 {
		t.Errorf("no throughput collapse under antagonism: %v -> %v", g0, gN)
	}
	// The IOMMU-off case must also degrade (the paper's key point: this
	// happens with no IOMMU contention at all).
	on0, _ := cell(t, tab, 0, "on_gbps")
	onN, _ := cell(t, tab, len(tab.Rows)-1, "on_gbps")
	if onN >= on0 {
		t.Errorf("IOMMU-on case did not degrade: %v -> %v", on0, onN)
	}
}

func TestExtensionsRunQuick(t *testing.T) {
	for _, id := range []string{"target", "buffer", "ats", "cxl", "mba", "subrtt", "cc"} {
		tab, err := Registry[id](quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if tab.CSVString() == "" {
			t.Errorf("%s: empty CSV", id)
		}
	}
}

func TestExtATSRecoversThroughput(t *testing.T) {
	tab, err := ExtATS(quick)
	if err != nil {
		t.Fatal(err)
	}
	// A large device TLB should recover throughput vs none.
	none, _ := cell(t, tab, 0, "gbps")
	big, _ := cell(t, tab, len(tab.Rows)-1, "gbps")
	if big <= none {
		t.Errorf("device TLB did not help: %v -> %v", none, big)
	}
	mNone, _ := cell(t, tab, 0, "misses_per_pkt")
	mBig, _ := cell(t, tab, len(tab.Rows)-1, "misses_per_pkt")
	if mBig >= mNone {
		t.Errorf("device TLB did not cut misses: %v -> %v", mNone, mBig)
	}
}

func TestExtMBAProtectsNIC(t *testing.T) {
	tab, err := ExtMBA(quick)
	if err != nil {
		t.Fatal(err)
	}
	none, _ := cell(t, tab, 0, "gbps")
	reserved, _ := cell(t, tab, len(tab.Rows)-1, "gbps")
	if reserved <= none {
		t.Errorf("bandwidth reservation did not help under antagonism: %v -> %v", none, reserved)
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Errorf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Errorf("missing registry entry %q", id)
		}
	}
}
