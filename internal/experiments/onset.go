package experiments

import (
	"fmt"

	"hic/internal/core"
	"hic/internal/sim"
)

// ExtOnset examines footnote 5: can a lower host-delay target substitute
// for fixing host congestion? Three answers emerge. For steady load, yes
// at a small throughput cost (rows 1–2). For bursty load the low target
// over-reacts — every onset restarts from a slashed window and
// throughput collapses (rows 3–4). And with TCP-like fixed windows (the
// footnote's premise: each sender holding BDP-scale windows), the
// synchronized onset lands the fleet's in-flight inside one RTT and
// overflows the 1 MB buffer no matter the target (row 5) — Swift's
// sub-1-cwnd pacing is what protects rows 3–4 from the same fate.
func ExtOnset(o Options) (*Table, error) {
	type scenario struct {
		name   string
		burst  bool
		fixed  float64 // > 0: TCP-like fixed window per connection
		target sim.Duration
	}
	// The bursty scenarios run against 12 antagonist cores: the NIC
	// drains at ≈55 Gbps, so each synchronized onset wave (the fleet's
	// in-flight arriving at line rate) lands ≈1 MB into the buffer
	// faster than any ack can come back.
	scs := []scenario{
		{"steady, 100µs target", false, 0, 100 * sim.Microsecond},
		{"steady, 25µs target", false, 0, 25 * sim.Microsecond},
		{"bursty+antag, 100µs target", true, 0, 100 * sim.Microsecond},
		{"bursty+antag, 25µs target", true, 0, 25 * sim.Microsecond},
		{"bursty+antag, fixed BDP windows (footnote 5)", true, 8, 0},
	}
	if o.Quick {
		scs = []scenario{scs[1], scs[4]}
	}
	const threads = 12
	t := &Table{
		ID:    "ext-onset",
		Title: "Footnote 5: burst onsets, windows, and the delay target (12 cores)",
		Columns: []string{"scenario", "gbps", "drop_pct", "hostdelay_p99_us",
			"retransmits"},
	}
	for _, sc := range scs {
		p := o.params(threads)
		if sc.target > 0 {
			p.HostTarget = sc.target
		}
		if sc.fixed > 0 {
			p.CC = core.CCFixed
			p.FixedCwnd = sc.fixed
		}
		if sc.burst {
			p.BurstDuty = 0.25
			p.BurstPeriod = sim.Millisecond
			p.AntagonistCores = 12
		}
		res, err := core.Run(p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			sc.name, f1(res.AppThroughputGbps), f2(res.DropRatePct),
			f1(float64(res.HostDelayP99) / 1000), fmt.Sprint(res.Retransmits),
		})
	}
	return t, nil
}
