package model

import (
	"math"
	"testing"
	"testing/quick"

	"hic/internal/sim"
)

func TestThroughputBoundMatchesPaperExample(t *testing.T) {
	// ~7 packets of credit, 2 µs per DMA with no misses ⇒ ~115 Gbps;
	// add 2 misses × 500 ns ⇒ 3 µs ⇒ ~76 Gbps. The crossover from
	// above-line-rate to below-92 is the §3.1 story.
	noMiss := ThroughputBound(30<<10, 4636, 4096, 2*sim.Microsecond, 0, 500*sim.Nanosecond)
	if g := noMiss.Gbps(); g < 100 || g > 120 {
		t.Errorf("no-miss bound = %.1f Gbps, want ~108", g)
	}
	missy := ThroughputBound(30<<10, 4636, 4096, 2*sim.Microsecond, 2, 500*sim.Nanosecond)
	if g := missy.Gbps(); g < 65 || g > 80 {
		t.Errorf("2-miss bound = %.1f Gbps, want ~72", g)
	}
	if missy >= noMiss {
		t.Error("misses must reduce the bound")
	}
}

func TestThroughputBoundEdgeCases(t *testing.T) {
	if ThroughputBound(0, 1, 1, 1, 0, 0) != 0 {
		t.Error("zero credits should bound to 0")
	}
	if !math.IsInf(float64(ThroughputBound(1, 1, 1, 0, 0, 0)), 1) {
		t.Error("zero latency should be unbounded")
	}
}

func TestCCBlindThresholdMatchesPaper(t *testing.T) {
	// Paper: 1 MB buffer, 100 µs target, ~92% payload fraction ⇒
	// ~81 Gbps application throughput.
	got := CCBlindThreshold(1<<20, 100*sim.Microsecond, 4096.0/4452.0)
	if g := got.Gbps(); g < 75 || g > 82 {
		t.Errorf("blind threshold = %.1f Gbps, want ≈77-81", g)
	}
	if CCBlindThreshold(0, sim.Microsecond, 1) != 0 {
		t.Error("zero buffer should threshold at 0")
	}
}

func TestBufferDrainHorizonMatchesPaper(t *testing.T) {
	// Paper: 1 MB NIC buffer at 88.8 Gbps drains in < 90 µs.
	d := EffectiveRxDelayBudget(1<<20, sim.Gbps(88.8))
	if d < 90*sim.Microsecond || d > 96*sim.Microsecond {
		t.Errorf("drain horizon = %v, want ≈94µs (1MB at 88.8Gbps)", d)
	}
}

func TestBDP(t *testing.T) {
	// 100 Gbps × 20 µs = 250 KB.
	if got := BDP(sim.Gbps(100), 20*sim.Microsecond); got != 250000 {
		t.Errorf("BDP = %d, want 250000", got)
	}
}

func TestMaxAchievableThroughput(t *testing.T) {
	got := MaxAchievableThroughput(sim.Gbps(100), 4096, 356)
	if g := got.Gbps(); g < 91.5 || g > 92.5 {
		t.Errorf("ceiling = %.1f Gbps, want ≈92", g)
	}
	if MaxAchievableThroughput(sim.Gbps(100), 0, 1) != 0 {
		t.Error("zero payload should yield 0")
	}
}

func TestCPUBoundThroughput(t *testing.T) {
	if got := CPUBoundThroughput(8, sim.Gbps(11.5)); got.Gbps() != 92 {
		t.Errorf("8 cores × 11.5 = %v", got.Gbps())
	}
	if CPUBoundThroughput(-1, sim.Gbps(1)) != 0 {
		t.Error("negative cores should yield 0")
	}
}

func TestLoadLatencyShape(t *testing.T) {
	base := 90 * sim.Nanosecond
	idle := LoadLatency(base, 0, 0.15, 3, 4.5)
	mid := LoadLatency(base, 0.8, 0.15, 3, 4.5)
	sat := LoadLatency(base, 1.0, 0.15, 3, 4.5)
	over := LoadLatency(base, 1.5, 0.15, 3, 4.5)
	if idle != base {
		t.Errorf("idle latency = %v, want base", idle)
	}
	if mid > 2*base {
		t.Errorf("80%% load latency = %v; the DRAM knee should stay shallow", mid)
	}
	if !(sat > mid && over > sat) {
		t.Errorf("curve not increasing: %v %v %v", mid, sat, over)
	}
	if over > sim.Duration(4.5*float64(base)) {
		t.Errorf("latency cap violated: %v", over)
	}
}

func TestLRUMissRate(t *testing.T) {
	if LRUMissRate(128, 100) != 0 {
		t.Error("working set within capacity should not miss")
	}
	if got := LRUMissRate(128, 256); got != 0.5 {
		t.Errorf("2x working set miss rate = %v, want 0.5", got)
	}
	if LRUMissRate(0, 10) != 1 {
		t.Error("zero capacity should always miss")
	}
}

func TestIOTLBWorkingSetKnee(t *testing.T) {
	// 12 MB hugepage region (6 entries) + 10 control pages = 16/thread:
	// 8 threads fit a 128-entry IOTLB exactly; 9 do not.
	at8 := IOTLBWorkingSet(8, 12<<20, 2<<20, 10)
	at9 := IOTLBWorkingSet(9, 12<<20, 2<<20, 10)
	if at8 > 128 {
		t.Errorf("8-thread working set %d should fit 128 entries", at8)
	}
	if at9 <= 128 {
		t.Errorf("9-thread working set %d should exceed 128 entries", at9)
	}
	// 4 KB pages: 512× more payload entries.
	if ws := IOTLBWorkingSet(1, 12<<20, 4096, 10); ws != 3072+10 {
		t.Errorf("4K-page working set = %d, want 3082", ws)
	}
}

// Property: the throughput bound is monotonically decreasing in misses
// and increasing in credits.
func TestThroughputBoundMonotonicity(t *testing.T) {
	f := func(credits uint16, misses uint8) bool {
		c := int(credits) + 4636
		m := float64(misses) / 16
		b1 := ThroughputBound(c, 4636, 4096, 2*sim.Microsecond, m, 400*sim.Nanosecond)
		b2 := ThroughputBound(c, 4636, 4096, 2*sim.Microsecond, m+0.5, 400*sim.Nanosecond)
		b3 := ThroughputBound(c+4636, 4636, 4096, 2*sim.Microsecond, m, 400*sim.Nanosecond)
		return b2 < b1 && b3 > b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
