// Package model implements the paper's analytical models in closed form:
// the Little's-law bound on NIC-to-CPU throughput under PCIe credit flow
// control (§3.1), the congestion-control blind-spot threshold implied by
// the NIC buffer drain horizon, bandwidth-delay-product provisioning, and
// the memory load–latency curve. The experiment harness plots these next
// to simulated results, as the paper plots its "Modeled App Throughput"
// line in Figure 3.
package model

import (
	"math"

	"hic/internal/sim"
)

// ThroughputBound returns the maximum NIC-to-CPU application throughput
// under credit-based flow control: with creditBytes of posted-write
// credit, each packet holding wireBytes of it for Tbase + M·Tmiss, at
// most creditBytes/wireBytes packets are in flight, so by Little's law
// the packet rate is bounded by inflight/(Tbase + M·Tmiss). The result
// is expressed in application payload bits per second.
func ThroughputBound(creditBytes, wireBytes, payloadBytes int, tbase sim.Duration, missesPerPacket float64, tmiss sim.Duration) sim.BitsPerSecond {
	if creditBytes <= 0 || wireBytes <= 0 || payloadBytes <= 0 {
		return 0
	}
	perPacket := float64(tbase) + missesPerPacket*float64(tmiss)
	if perPacket <= 0 {
		return sim.BitsPerSecond(math.Inf(1))
	}
	inflight := float64(creditBytes) / float64(wireBytes)
	pktPerSec := inflight / (perPacket / 1e9)
	return sim.BitsPerSecond(pktPerSec * float64(payloadBytes) * 8)
}

// CCBlindThreshold returns the application throughput above which a
// delay-target congestion-control protocol cannot see host congestion:
// when the NIC can drain its buffer faster than bufferBytes/target, the
// queueing delay stays below the target even with the buffer full, so
// the protocol never reacts (§3.1: 1 MB / 100 µs ⇒ ≈81 Gbps app
// throughput at the paper's header overhead).
func CCBlindThreshold(bufferBytes int, target sim.Duration, payloadFraction float64) sim.BitsPerSecond {
	if bufferBytes <= 0 || target <= 0 {
		return 0
	}
	wireRate := float64(bufferBytes) * 8 / target.Seconds()
	return sim.BitsPerSecond(wireRate * payloadFraction)
}

// BDP returns the bandwidth-delay product in bytes — the minimum
// per-receive-queue buffer provisioning §3.1's Figure 5 discussion works
// from.
func BDP(rate sim.BitsPerSecond, rtt sim.Duration) int {
	return int(rate.BytesPerSecond() * rtt.Seconds())
}

// MaxAchievableThroughput returns the application-payload ceiling of a
// link once per-packet protocol headers are paid (the paper's ~92 Gbps
// on a 100 Gbps link with 4 KB MTU).
func MaxAchievableThroughput(link sim.BitsPerSecond, payloadBytes, headerBytes int) sim.BitsPerSecond {
	if payloadBytes <= 0 || headerBytes < 0 {
		return 0
	}
	frac := float64(payloadBytes) / float64(payloadBytes+headerBytes)
	return sim.BitsPerSecond(float64(link) * frac)
}

// CPUBoundThroughput returns the application throughput of the software
// bottleneck: cores × per-core rate (the linear region of Figure 3).
func CPUBoundThroughput(cores int, perCore sim.BitsPerSecond) sim.BitsPerSecond {
	if cores < 0 {
		return 0
	}
	return sim.BitsPerSecond(float64(cores) * float64(perCore))
}

// LoadLatency evaluates the memory load–latency curve used by the
// simulator's controller: base · (1 + A·ρc⁸/(1−ρc) + B·max(0, ρ−1)),
// with ρc = min(ρ, 0.95) and the multiplier capped at maxFactor.
func LoadLatency(base sim.Duration, rho, a, b, maxFactor float64) sim.Duration {
	if rho < 0 {
		rho = 0
	}
	rhoC := math.Min(rho, 0.95)
	lf := 1 + a*math.Pow(rhoC, 8)/(1-rhoC)
	if rho > 1 {
		lf += b * (rho - 1)
	}
	if lf > maxFactor {
		lf = maxFactor
	}
	return sim.Duration(float64(base) * lf)
}

// LRUMissRate estimates the steady-state miss probability of a cache of
// capacity entries serving uniform random accesses over workingSet
// distinct entries (the independent-reference approximation: hit ratio ≈
// capacity/workingSet once the working set exceeds capacity).
func LRUMissRate(capacity, workingSet int) float64 {
	if capacity <= 0 {
		return 1
	}
	if workingSet <= capacity {
		return 0
	}
	return 1 - float64(capacity)/float64(workingSet)
}

// IOTLBWorkingSet returns the per-thread IOTLB entry footprint for a
// payload region of regionBytes mapped at pageBytes granularity plus
// controlPages 4 KB metadata pages, times threads — the quantity that
// crosses the 128-entry IOTLB just above 8 threads in Figure 3.
func IOTLBWorkingSet(threads int, regionBytes, pageBytes uint64, controlPages int) int {
	if pageBytes == 0 {
		return 0
	}
	perThread := int((regionBytes+pageBytes-1)/pageBytes) + controlPages
	return threads * perThread
}

// EffectiveRxDelayBudget returns the host delay the NIC buffer imposes
// at a given drain rate: bufferBytes/(drain wire rate). The paper's ~90µs
// at 88.8 Gbps with a 1 MB buffer.
func EffectiveRxDelayBudget(bufferBytes int, drainWire sim.BitsPerSecond) sim.Duration {
	if drainWire <= 0 {
		return sim.Duration(math.MaxInt64)
	}
	return sim.Duration(float64(bufferBytes) * 8 / float64(drainWire) * 1e9)
}
