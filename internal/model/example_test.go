package model_test

import (
	"fmt"

	"hic/internal/model"
	"hic/internal/sim"
)

// The paper's §3.1 model: PCIe credits allow C packets in flight, each
// held for T_base + M·T_miss, bounding NIC-to-CPU throughput by
// Little's law.
func ExampleThroughputBound() {
	noMiss := model.ThroughputBound(30<<10, 4636, 4096, 2*sim.Microsecond, 0, 500*sim.Nanosecond)
	twoMisses := model.ThroughputBound(30<<10, 4636, 4096, 2*sim.Microsecond, 2, 500*sim.Nanosecond)
	fmt.Printf("no misses:  %.0f Gbps\n", noMiss.Gbps())
	fmt.Printf("two misses: %.0f Gbps\n", twoMisses.Gbps())
	// Output:
	// no misses:  109 Gbps
	// two misses: 72 Gbps
}

// The congestion-control blind spot: a 1 MB NIC buffer drains in under
// Swift's 100 µs host target whenever application throughput exceeds
// ≈81 Gbps, so the protocol cannot see host congestion above that rate.
func ExampleCCBlindThreshold() {
	blind := model.CCBlindThreshold(1<<20, 100*sim.Microsecond, 4096.0/4452.0)
	fmt.Printf("%.0f Gbps\n", blind.Gbps())
	// Output:
	// 77 Gbps
}

// The Figure 3 knee: 12 MB hugepage-backed regions plus 10 metadata
// pages give each receiver thread a 16-entry IOTLB working set, which
// crosses the 128-entry IOTLB just above 8 threads.
func ExampleIOTLBWorkingSet() {
	for _, threads := range []int{8, 9, 16} {
		ws := model.IOTLBWorkingSet(threads, 12<<20, 2<<20, 10)
		fmt.Printf("%2d threads: %3d entries (miss rate ≈ %.2f)\n",
			threads, ws, model.LRUMissRate(128, ws))
	}
	// Output:
	//  8 threads: 128 entries (miss rate ≈ 0.00)
	//  9 threads: 144 entries (miss rate ≈ 0.11)
	// 16 threads: 256 entries (miss rate ≈ 0.50)
}
