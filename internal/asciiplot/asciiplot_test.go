package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"a", "long_header"}, [][]string{
		{"1", "2"},
		{"100", "20000"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	// All lines equal width (right-aligned columns).
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing rule line:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	out := CSV([]string{"x", "note"}, [][]string{
		{"1", `plain`},
		{"2", `has,comma`},
		{"3", `has"quote`},
	})
	want := "x,note\n1,plain\n2,\"has,comma\"\n3,\"has\"\"quote\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestLinePlotBasics(t *testing.T) {
	out := LinePlot("title", []string{"1", "2", "3"}, []Series{
		{Name: "up", Values: []float64{1, 2, 3}},
		{Name: "down", Values: []float64{3, 2, 1}},
	}, 6)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Errorf("missing legend:\n%s", out)
	}
	// The middle point overlaps between series (later series wins the
	// cell), so "up" shows at least its two non-overlapping points plus
	// the legend mark.
	if strings.Count(out, "*") < 2+1 {
		t.Errorf("missing data points:\n%s", out)
	}
}

func TestLinePlotHandlesNaNAndEmpty(t *testing.T) {
	out := LinePlot("gaps", []string{"a", "b"}, []Series{
		{Name: "s", Values: []float64{math.NaN(), 5}},
	}, 5)
	if !strings.Contains(out, "s") {
		t.Errorf("plot with NaN broke:\n%s", out)
	}
	empty := LinePlot("none", nil, nil, 5)
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty plot = %q", empty)
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	out := LinePlot("flat", []string{"a"}, []Series{{Name: "s", Values: []float64{7}}}, 5)
	if !strings.Contains(out, "7.0") {
		t.Errorf("constant series axis broken:\n%s", out)
	}
}
