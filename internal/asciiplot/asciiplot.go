// Package asciiplot renders experiment output for terminals: aligned
// tables, CSV, and ASCII line plots. It keeps the cmd/ tools free of any
// external plotting dependency — every figure the harness regenerates is
// printable.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// FormatTable renders rows under the given column headers, aligned.
func FormatTable(columns []string, rows [][]string) string {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len([]rune(c))
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(cell))
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the same data as comma-separated values. Cells containing
// commas or quotes are quoted.
func CSV(columns []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(columns)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one named line in a plot.
type Series struct {
	Name   string
	Values []float64
}

// LinePlot renders series against shared x labels as an ASCII chart of
// the given height. NaN values are skipped (gaps).
func LinePlot(title string, xlabels []string, series []Series, height int) string {
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if n == 0 || math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	marks := []byte("*o+x#@%&")
	grid := make([][]byte, height)
	colW := 6
	width := n * colW
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for xi, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			col := xi*colW + colW/2
			if row >= 0 && row < height && col < width {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, row := range grid {
		yval := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", yval, string(row))
	}
	b.WriteString("         +" + strings.Repeat("-", width) + "\n")
	b.WriteString("          ")
	for _, xl := range xlabels {
		if len(xl) > colW-1 {
			xl = xl[:colW-1]
		}
		b.WriteString(fmt.Sprintf("%-*s", colW, xl))
	}
	b.WriteByte('\n')
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	b.WriteString("          " + strings.Join(legend, "  ") + "\n")
	return b.String()
}
