package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded, mutex-guarded event buffer: the newest capacity
// events are retained, older ones are overwritten in place, and memory
// never grows past the capacity no matter how long the run. Sequence
// numbers are assigned at append, so consumers can detect the gap when
// events have been dropped.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	cap int
	seq uint64 // total events ever appended
}

// NewRing returns a ring retaining at most capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{buf: make([]Event, 0, capacity), cap: capacity}
}

// Append assigns the next sequence number to e, stores it (overwriting
// the oldest retained event once full), and returns the stamped event.
func (r *Ring) Append(e Event) Event {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int((r.seq-1)%uint64(r.cap))] = e
	}
	r.mu.Unlock()
	return e
}

// Total returns how many events were ever appended.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many appended events are no longer retained.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(len(r.buf))
}

// Snapshot copies the retained events in sequence order, oldest first.
func (r *Ring) Snapshot() []Event {
	return r.SnapshotSince(0)
}

// SnapshotSince copies the retained events with Seq > since, oldest
// first. Seq is monotonic, so the last returned event's Seq is a
// resumable cursor: a tailer that passes it back sees each event
// exactly once (minus any that fell off the ring between polls, which
// the gap between since and the first returned Seq reveals).
func (r *Ring) SnapshotSince(since uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.seq - uint64(len(r.buf)) // seq of the oldest retained, minus one
	skip := 0
	if since > oldest {
		skip = int(since - oldest)
		if skip > len(r.buf) {
			skip = len(r.buf)
		}
	}
	out := make([]Event, 0, len(r.buf)-skip)
	if len(r.buf) < r.cap {
		return append(out, r.buf[skip:]...)
	}
	start := int(r.seq % uint64(r.cap)) // oldest retained slot
	if n := len(r.buf) - start; skip < n {
		out = append(out, r.buf[start+skip:]...)
		return append(out, r.buf[:start]...)
	} else {
		return append(out, r.buf[skip-n:start]...)
	}
}

// WriteJSONL renders the retained events one JSON object per line,
// oldest first, capped at limit events (0 = all retained).
func (r *Ring) WriteJSONL(w io.Writer, limit int) error {
	return r.WriteJSONLSince(w, 0, limit)
}

// WriteJSONLSince is WriteJSONL restricted to events with Seq > since —
// the incremental-tailing form behind /events?since=N.
func (r *Ring) WriteJSONLSince(w io.Writer, since uint64, limit int) error {
	evs := r.SnapshotSince(since)
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
