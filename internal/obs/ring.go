package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded, mutex-guarded event buffer: the newest capacity
// events are retained, older ones are overwritten in place, and memory
// never grows past the capacity no matter how long the run. Sequence
// numbers are assigned at append, so consumers can detect the gap when
// events have been dropped.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	cap int
	seq uint64 // total events ever appended
}

// NewRing returns a ring retaining at most capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{buf: make([]Event, 0, capacity), cap: capacity}
}

// Append assigns the next sequence number to e, stores it (overwriting
// the oldest retained event once full), and returns the stamped event.
func (r *Ring) Append(e Event) Event {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int((r.seq-1)%uint64(r.cap))] = e
	}
	r.mu.Unlock()
	return e
}

// Total returns how many events were ever appended.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many appended events are no longer retained.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(len(r.buf))
}

// Snapshot copies the retained events in sequence order, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < r.cap {
		return append(out, r.buf...)
	}
	start := int(r.seq % uint64(r.cap)) // oldest retained slot
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// WriteJSONL renders the retained events one JSON object per line,
// oldest first, capped at limit events (0 = all retained).
func (r *Ring) WriteJSONL(w io.Writer, limit int) error {
	evs := r.Snapshot()
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
