package obs

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"hic/internal/metrics"
	"hic/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer pins the server clock so uptime, rates, and ETAs in the
// exposition are exact.
func newTestServer(clk *fakeClock, w io.Writer) *Server {
	if w == nil {
		w = io.Discard
	}
	s := NewServer(Options{Warn: w, EventCap: 64})
	s.now = clk.now
	s.start = clk.t
	return s
}

// fakeSource stands in for runner.Pool / runcache.Store / the fidelity
// router: a fixed set of live samples.
type fakeSource struct{}

func (fakeSource) MetricsInto(emit func(name, typ string, v float64)) {
	emit("hic_pool_workers", "gauge", 4)
	emit("hic_pool_slots_busy", "gauge", 3)
	emit("hic_pool_slots_idle", "gauge", 1)
	emit("hic_pool_tasks_done_total", "counter", 128)
}

// TestWriteMetricsGolden drives a deterministic server state through
// every exposition section — self counters, kind counts, run registry,
// live sources, fleet rollup — and compares against the golden file.
// The output must also survive the package's own 0.0.4 parser.
func TestWriteMetricsGolden(t *testing.T) {
	clk := newFakeClock()
	s := newTestServer(clk, nil)
	s.AddSource(fakeSource{})

	r := s.StartRun("fleet", 10)
	for i := 0; i < 4; i++ {
		s.Emit(Event{Kind: KindPointStart, Run: "fleet", Point: i})
		clk.advance(time.Second)
		r.Advance(1)
		s.Emit(Event{Kind: KindPointFinish, Run: "fleet", Point: i, DurMS: 1000})
	}
	s.Emit(Event{Kind: KindCacheCollapse, Key: "abcd", Why: "memo"})
	s.Emit(Event{Kind: KindFidelityRoute, Route: "fluid", Why: "below knee"})

	snap := metrics.Snapshot{
		Counters: map[string]uint64{"nic.rx.drops": 7, "host.events": 1000},
		Gauges:   map[string]metrics.GaugeSnapshot{"nic.rx.queue": {Value: 3, Max: 12}},
		Histograms: map[string]metrics.HistogramSnapshot{
			"pkt.latency": {Count: 500, Sum: 2.5},
		},
	}
	s.RunMetrics(snap)
	s.RunMetrics(snap) // counters sum, gauge max is idempotent

	clk.advance(time.Second) // 5s total uptime at scrape time
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}

	doc, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	checks := []struct {
		name string
		want float64
	}{
		{"hic_obs_uptime_seconds", 5},
		{"hic_obs_events_total", 11}, // run_start + 4×(point_start+point_finish) + collapse + route
		{"hic_obs_warnings_total", 0},
		{"hic_pool_workers", 4},
		{"hic_fleet_runs_total", 2},
		{"hic_fleet_nic_rx_drops_total", 14},
		{"hic_fleet_nic_rx_queue_max", 12},
		{"hic_fleet_pkt_latency_count", 1000},
		{"hic_fleet_pkt_latency_sum", 5},
	}
	for _, c := range checks {
		got, err := doc.Value(c.name)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}
	runs := doc.Find("hic_obs_run_done")
	if len(runs) != 1 || runs[0].Labels["run"] != "fleet" || runs[0].Value != 4 {
		t.Errorf("hic_obs_run_done = %+v", runs)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (re-run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s",
			golden, buf.String(), want)
	}
}

func TestEmitWarnsImmediately(t *testing.T) {
	clk := newFakeClock()
	var warnings bytes.Buffer
	s := newTestServer(clk, &warnings)

	s.Emit(Event{Kind: KindAuditResult, Key: "sig", Value: 0.01, Tol: 0.05})
	if warnings.Len() != 0 {
		t.Fatalf("within-tolerance audit warned: %q", warnings.String())
	}
	s.Emit(Event{Kind: KindAuditResult, Key: "sig", Value: 0.09, Tol: 0.05, OverTol: true})
	s.Emit(Event{Kind: KindWarning, Why: "profiler: disk full"})

	lines := strings.Split(strings.TrimSpace(warnings.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d warning lines, want 2:\n%s", len(lines), warnings.String())
	}
	if !strings.HasPrefix(lines[0], "obs: WARN {") || !strings.Contains(lines[0], `"over_tol":true`) {
		t.Errorf("audit warning line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "disk full") {
		t.Errorf("warning line = %q", lines[1])
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Value("hic_obs_warnings_total"); v != 2 {
		t.Errorf("hic_obs_warnings_total = %g, want 2", v)
	}
}

func TestStartRunBracketsEvents(t *testing.T) {
	clk := newFakeClock()
	s := newTestServer(clk, nil)
	r := s.StartRun("bench", 2, "a", "b")
	r.Advance(2)
	r.Finish()
	evs := s.ring.Snapshot()
	if len(evs) != 2 || evs[0].Kind != KindRunStart || evs[1].Kind != KindRunFinish {
		t.Fatalf("events = %+v, want run_start then run_finish", evs)
	}
	if evs[0].Run != "bench" || evs[1].Run != "bench" {
		t.Errorf("run labels = %q, %q", evs[0].Run, evs[1].Run)
	}
	if evs[0].WallNs == 0 {
		t.Error("WallNs not stamped")
	}
}

// TestMetricNameStabilityAcrossZero is the exposition-stability gate:
// the series names and types a registry exports must be identical
// before and after Registry.Zero(), because arena reuse Zeroes the same
// registry between simulations and dashboards key on stable names.
func TestMetricNameStabilityAcrossZero(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("nic.rx.drops").Add(9)
	reg.Counter("host.sched.preemptions").Add(2)
	reg.Gauge("nic.rx.queue").Set(5)
	reg.Histogram("pkt.latency").Observe(1.5)
	reg.Histogram("pkt.latency").Observe(2.5)

	export := func() (names []string, types map[string]string) {
		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		doc, err := ParseProm(&buf)
		if err != nil {
			t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
		}
		seen := map[string]bool{}
		for _, s := range doc.Samples {
			if !seen[s.Name] {
				seen[s.Name] = true
				names = append(names, s.Name)
			}
		}
		sort.Strings(names)
		return names, doc.Types
	}

	namesBefore, typesBefore := export()
	if len(namesBefore) == 0 {
		t.Fatal("no samples exported")
	}
	reg.Zero()
	namesAfter, typesAfter := export()

	if strings.Join(namesBefore, ",") != strings.Join(namesAfter, ",") {
		t.Errorf("series names changed across Zero():\nbefore %v\nafter  %v", namesBefore, namesAfter)
	}
	for name, typ := range typesBefore {
		if typesAfter[name] != typ {
			t.Errorf("TYPE of %s changed across Zero(): %s -> %s", name, typ, typesAfter[name])
		}
	}
	// And the zeroed values really are zero.
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Value("hic_nic_rx_drops"); v != 0 {
		t.Errorf("hic_nic_rx_drops = %g after Zero, want 0", v)
	}
}

// TestDisabledPathZeroAlloc is the control plane's half of the
// zero-alloc gate: with no sink installed, the instrumented layers'
// entire obs interaction — the global read, the nil check, and every
// nil-safe *Run method — performs zero allocations, so -listen-less
// runs stay on the allocation-free hot path.
func TestDisabledPathZeroAlloc(t *testing.T) {
	if Default() != nil {
		t.Fatal("sink installed at test start")
	}
	var r *Run
	if allocs := testing.AllocsPerRun(1000, func() {
		if s := Default(); s != nil {
			t.Fatal("sink appeared mid-test")
		}
		r.Advance(1)
		r.SetPhase("simulate")
		r.Finish()
		_ = r.Label()
	}); allocs != 0 {
		t.Errorf("disabled instrumentation path allocates %.1f per run, want 0", allocs)
	}
}

func TestGlobalSinkInstall(t *testing.T) {
	if Default() != nil {
		t.Fatal("sink installed at test start")
	}
	clk := newFakeClock()
	s := newTestServer(clk, nil)
	Set(s)
	defer Set(nil)
	if Default() != Sink(s) {
		t.Error("Default did not return the installed sink")
	}
	Set(nil)
	if Default() != nil {
		t.Error("Set(nil) did not uninstall")
	}
}

// TestRegisterSharesMuxWithoutPanic pins the serve-daemon contract: the
// control plane can be registered onto a mux that already serves its
// own API under some of the same patterns, the host's handlers win the
// conflicts, and everything else still works — no duplicate-pattern
// panic, one port.
func TestRegisterSharesMuxWithoutPanic(t *testing.T) {
	s := NewServer(Options{Warn: io.Discard})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "host root")
	})
	mux.HandleFunc("/api/v1/query", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "host api")
	})

	added := s.Register(mux)
	for _, p := range added {
		if p == "/" {
			t.Errorf("Register overrode the host's %q handler", p)
		}
	}
	found := map[string]bool{}
	for _, p := range added {
		found[p] = true
	}
	for _, want := range []string{"/metrics", "/progress", "/events", "/debug/pprof/"} {
		if !found[want] {
			t.Errorf("Register skipped %q on a mux that does not serve it", want)
		}
	}

	// Registering twice must be a no-op, not a panic.
	if again := s.Register(mux); len(again) != 0 {
		t.Errorf("second Register added %v", again)
	}

	get := func(path string) string {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Body.String()
	}
	if got := get("/"); got != "host root" {
		t.Errorf("GET / = %q, want the host handler", got)
	}
	if got := get("/api/v1/query"); got != "host api" {
		t.Errorf("GET /api/v1/query = %q, want the host handler", got)
	}
	if got := get("/metrics"); !strings.Contains(got, "hic_obs_uptime_seconds") {
		t.Errorf("GET /metrics not served by control plane:\n%s", got)
	}
	if got := get("/progress"); !strings.Contains(got, "\"runs\"") {
		t.Errorf("GET /progress not served by control plane:\n%s", got)
	}
}

// TestEventsSinceCursor drives /events with the ?since= cursor: a
// tailer passing back the last seq it saw reads each event exactly
// once.
func TestEventsSinceCursor(t *testing.T) {
	s := NewServer(Options{Warn: io.Discard, EventCap: 64})
	for i := 0; i < 6; i++ {
		s.Emit(Event{Kind: KindPointFinish, Point: i})
	}
	get := func(path string) []string {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		body := strings.TrimSpace(rec.Body.String())
		if body == "" {
			return nil
		}
		return strings.Split(body, "\n")
	}
	if lines := get("/events"); len(lines) != 6 {
		t.Fatalf("/events returned %d lines, want 6", len(lines))
	}
	tail := get("/events?since=4")
	if len(tail) != 2 {
		t.Fatalf("/events?since=4 returned %d lines, want 2:\n%s", len(tail), strings.Join(tail, "\n"))
	}
	if !strings.Contains(tail[0], `"seq":5`) || !strings.Contains(tail[1], `"seq":6`) {
		t.Errorf("tail lines = %v, want seqs 5 and 6", tail)
	}
	if lines := get("/events?since=6"); len(lines) != 0 {
		t.Errorf("/events?since=newest returned %d lines, want 0", len(lines))
	}
	// since composes with n: newest-2 of the after-cursor window.
	if lines := get("/events?since=2&n=2"); len(lines) != 2 || !strings.Contains(lines[0], `"seq":5`) {
		t.Errorf("/events?since=2&n=2 = %v, want seqs [5 6]", lines)
	}
}

// TestWorkerStaleWarnsImmediately pins the serve-layer staleness event
// into the immediate-WARN set alongside warnings and failed audits.
func TestWorkerStaleWarnsImmediately(t *testing.T) {
	var warn bytes.Buffer
	s := NewServer(Options{Warn: &warn, EventCap: 64})
	s.Emit(Event{Kind: KindWorkerStale, Run: "serve:q1", Key: "w2-b", Value: 3.5})
	if !strings.Contains(warn.String(), "obs: WARN") || !strings.Contains(warn.String(), "worker_stale") {
		t.Fatalf("worker_stale did not raise an immediate warning; warn output:\n%s", warn.String())
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hic_obs_warnings_total 1") {
		t.Errorf("warnings counter did not advance:\n%s", buf.String())
	}
}
