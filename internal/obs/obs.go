// Package obs is the live execution control plane: an embedded,
// opt-in HTTP server that long-running commands start with -listen,
// exposing what a multi-minute fleet run is doing while it runs.
//
// Four windows into a running executor:
//
//   - /metrics — Prometheus text exposition (format 0.0.4) unifying
//     the control plane's own counters, executor gauges sampled live
//     from registered MetricSources (worker-pool slot occupancy, run
//     cache hits/misses/collapses, fidelity routing decisions), and a
//     fleet-cumulative rollup of every completed simulation's
//     metrics.Registry snapshot;
//   - /debug/pprof/* — net/http/pprof, plus optional continuous
//     CPU+heap profile capture to disk on a ticker;
//   - /progress — a JSON run registry with per-phase completion,
//     Welford-smoothed points/sec, and ETA;
//   - /events — a ring-buffered structured event log (JSONL) of
//     executor lifecycle events with bounded memory.
//
// Instrumented layers (runner, runcache, fidelity, core, cluster,
// sweep) report through the nil-checked Sink interface: with no sink
// installed the entire path is a single atomic load and a nil check,
// so the default run stays allocation-free and bit-identical to an
// uninstrumented binary — the committed golden hashes and the
// zero-alloc gates prove it.
//
// Dependency direction: obs is a leaf package (stdlib + metrics +
// telemetry + stats only). Instrumented packages either import obs for
// the Sink (fidelity, cluster, sweep, core, runcache) or — where the
// import would cycle or is simply unnecessary — implement the
// structural MetricSource interface without importing anything
// (runner).
package obs

import (
	"sync/atomic"

	"hic/internal/metrics"
)

// Snapshot is the registry snapshot type the fleet rollup consumes —
// aliased so Sink implementations outside this package read naturally.
type Snapshot = metrics.Snapshot

// Event kinds recorded in the structured event log.
const (
	KindRunStart      = "run_start"
	KindRunFinish     = "run_finish"
	KindPointStart    = "point_start"
	KindPointFinish   = "point_finish"
	KindCacheCollapse = "cache_collapse"
	KindFidelityRoute = "fidelity_route"
	KindAuditResult   = "audit_result"
	KindEarlyStop     = "early_stop"
	KindWarning       = "warning"
	// KindWarmStart is a DES point warm-started from a persisted
	// steady-state checkpoint (internal/fidelity): Key is the
	// calibration-signature label, Point the antagonist tier, Why the
	// donor coordinates. Warm-start audit results reuse KindAuditResult
	// with Route "warm".
	KindWarmStart = "warm_start"
	// KindIncident is a sim-time congestion episode detected by the
	// observatory (internal/observatory): Point is the host index, Key
	// its catalog cell, Why the attributed cause, Value the peak NIC
	// buffer fill, and DurMS the episode's *sim-time* duration in
	// milliseconds (every other kind's DurMS is wall time).
	KindIncident = "incident"

	// Distributed-serve lifecycle kinds (internal/serve coordinator):
	// Run is the tracked query run ("serve:qN"), Key the worker id,
	// Point the lease's range id, and Route the lease kind ("range" or
	// "prefetch"). KindLeaseGrant marks a dispensed lease,
	// KindLeaseDone a completion folded (DurMS = lease hold time),
	// KindLeaseExpired a deadline passing and the lease requeued.
	KindLeaseGrant   = "lease_grant"
	KindLeaseDone    = "lease_done"
	KindLeaseExpired = "lease_expired"
	// KindWorkerStale is raised (as a structured WARN) when a worker
	// holding an active lease has not polled or reported for longer
	// than the coordinator's staleness threshold — early notice,
	// before the lease itself expires. Value is seconds since the
	// worker was last seen.
	KindWorkerStale = "worker_stale"
)

// Event is one executor lifecycle record. Fields are flat and typed so
// every event marshals to one stable JSONL line; unused fields are
// omitted. Seq and WallNs are assigned by the sink at Emit time.
type Event struct {
	// Seq is the ring-assigned sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// WallNs is the wall-clock emit time in Unix nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Run labels the owning run registry entry ("fleet", "sweep", ...).
	Run string `json:"run,omitempty"`
	// Point is the task index within the run (host index, grid index).
	// Omitted when zero — consumers should key on Kind, not presence.
	Point int `json:"point,omitempty"`
	// Key identifies the scenario (cache key or signature label).
	Key string `json:"key,omitempty"`
	// Route is the execution strategy chosen (des, fluid, audit, ...).
	Route string `json:"route,omitempty"`
	// Why is the human-readable reason for the decision.
	Why string `json:"why,omitempty"`
	// Value carries the event's scalar (audit observed error, ...).
	Value float64 `json:"value,omitempty"`
	// Tol is the tolerance Value was judged against (audit events).
	Tol float64 `json:"tol,omitempty"`
	// OverTol marks an audit result that exceeded Tol — the sink raises
	// a structured warning the moment such an event is emitted.
	OverTol bool `json:"over_tol,omitempty"`
	// DurMS is the event's duration in milliseconds (point_finish).
	DurMS float64 `json:"dur_ms,omitempty"`
}

// Sink receives executor instrumentation. *Server implements it; tests
// may substitute their own. Implementations must be safe for
// concurrent use — every worker emits into the same sink.
type Sink interface {
	// Emit records one lifecycle event.
	Emit(Event)
	// StartRun registers a unit-of-work group in the progress registry
	// and returns its handle. All *Run methods are nil-safe, so callers
	// holding a nil Sink can skip StartRun and still call Advance/
	// Finish unconditionally.
	StartRun(label string, total int64, phases ...string) *Run
	// RunMetrics folds one completed simulation's registry snapshot
	// into the fleet-cumulative /metrics rollup.
	RunMetrics(snap Snapshot)
}

// MetricSource is the structural interface /metrics samples live.
// It deliberately uses only builtin types so implementations
// (runner.Pool, runcache.Store, fidelity.Router) need not import obs.
// emit is called once per sample with a full Prometheus metric name
// (optionally carrying {labels}), its type (counter/gauge), and the
// current value; implementations must read only atomic or
// mutex-guarded state — /metrics is served while workers run.
type MetricSource interface {
	MetricsInto(emit func(name, typ string, v float64))
}

// The process-global sink, installed by Flags.Start (i.e. -listen) and
// read by every instrumented layer. Reading it costs one atomic load
// and a nil check — the entire overhead of the disabled path.

type sinkHolder struct{ s Sink }

var global atomic.Pointer[sinkHolder]

// Set installs s as the process-global sink (nil uninstalls).
func Set(s Sink) {
	if s == nil {
		global.Store(nil)
		return
	}
	global.Store(&sinkHolder{s: s})
}

// Default returns the process-global sink, or nil when none is
// installed. Callers must nil-check:
//
//	if s := obs.Default(); s != nil { s.Emit(...) }
func Default() Sink {
	h := global.Load()
	if h == nil {
		return nil
	}
	return h.s
}
