package obs

import (
	"strings"
	"testing"
)

func TestParsePromValid(t *testing.T) {
	doc, err := ParseProm(strings.NewReader(`
# HELP hic_x free-form help text, ignored
# TYPE hic_x counter
hic_x 42
# TYPE hic_pool_slots gauge
hic_pool_slots{state="busy"} 3
hic_pool_slots{state="idle"} 1
# TYPE hic_lat summary
hic_lat{quantile="0.5"} 1.5e-3
hic_lat{quantile="0.99"} 0.25
hic_lat_count 100
weird_label{msg="a\nb \"quoted\" \\ done",k2="v2"} -7 1700000000
`))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if v, err := doc.Value("hic_x"); err != nil || v != 42 {
		t.Errorf("hic_x = %v, %v; want 42", v, err)
	}
	if doc.Types["hic_x"] != "counter" || doc.Types["hic_pool_slots"] != "gauge" || doc.Types["hic_lat"] != "summary" {
		t.Errorf("types = %v", doc.Types)
	}
	slots := doc.Find("hic_pool_slots")
	if len(slots) != 2 || slots[0].Labels["state"] != "busy" || slots[0].Value != 3 {
		t.Errorf("hic_pool_slots = %+v", slots)
	}
	w := doc.Find("weird_label")
	if len(w) != 1 {
		t.Fatalf("weird_label = %+v", w)
	}
	if got := w[0].Labels["msg"]; got != "a\nb \"quoted\" \\ done" {
		t.Errorf("escaped label = %q", got)
	}
	if w[0].Labels["k2"] != "v2" || w[0].Value != -7 {
		t.Errorf("weird_label = %+v", w[0])
	}
}

func TestParsePromRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad metric name", "9leading_digit 1\n"},
		{"bad char in name", "has-dash 1\n"},
		{"missing value", "hic_x\n"},
		{"unparsable value", "hic_x notanumber\n"},
		{"unterminated labels", `hic_x{a="b" 1` + "\n"},
		{"unquoted label value", "hic_x{a=b} 1\n"},
		{"bad label name", `hic_x{0a="b"} 1` + "\n"},
		{"unterminated label value", `hic_x{a="b} 1` + "\n"},
		{"malformed TYPE", "# TYPE hic_x\n"},
		{"unknown TYPE", "# TYPE hic_x widget\n"},
		{"TYPE bad name", "# TYPE bad-name counter\n"},
		{"conflicting TYPE", "# TYPE hic_x counter\n# TYPE hic_x gauge\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseProm(strings.NewReader(c.in)); err == nil {
				t.Errorf("ParseProm accepted %q", c.in)
			}
		})
	}
}

func TestParsePromRepeatedConsistentType(t *testing.T) {
	// Re-declaring the SAME type is legal (the promWriter never does it,
	// but concatenated expositions may).
	if _, err := ParseProm(strings.NewReader("# TYPE hic_x counter\nhic_x 1\n# TYPE hic_x counter\nhic_x 2\n")); err != nil {
		t.Errorf("consistent TYPE re-declaration rejected: %v", err)
	}
}
