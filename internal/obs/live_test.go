// External tests: these exercise the served HTTP surface with the real
// instrumented sources (runner.Pool, runcache.Store), which import obs
// and therefore cannot appear in the in-package tests.
package obs_test

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/runner"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServedEndpoints(t *testing.T) {
	s, err := obs.Start("127.0.0.1:0", obs.Options{Warn: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	pool := runner.New(4)
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.AddSource(pool)
	s.AddSource(store)

	// Some live state: a tracked run mid-flight and a few events.
	r := s.StartRun("fleet", 100, "simulate", "aggregate")
	r.Advance(25)
	s.Emit(obs.Event{Kind: obs.KindCacheCollapse, Key: "k", Why: "memo"})

	t.Run("index", func(t *testing.T) {
		body, _ := get(t, base+"/")
		for _, want := range []string{"/metrics", "/progress", "/events", "/debug/pprof/"} {
			if !strings.Contains(body, want) {
				t.Errorf("index missing %q", want)
			}
		}
	})

	t.Run("metrics", func(t *testing.T) {
		body, ct := get(t, base+"/metrics")
		if !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("Content-Type = %q, want 0.0.4 exposition", ct)
		}
		doc, err := obs.ParseProm(strings.NewReader(body))
		if err != nil {
			t.Fatalf("/metrics does not parse: %v\n%s", err, body)
		}
		if v, err := doc.Value("hic_pool_workers"); err != nil || v != 4 {
			t.Errorf("hic_pool_workers = %v, %v; want 4", v, err)
		}
		// All slots idle: nothing is running through the pool right now.
		if v, err := doc.Value("hic_pool_slots_idle"); err != nil || v != 4 {
			t.Errorf("hic_pool_slots_idle = %v, %v; want 4", v, err)
		}
		for _, name := range []string{"hic_runcache_hits_total", "hic_runcache_misses_total", "hic_runcache_collapses_total"} {
			if _, err := doc.Value(name); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
		if len(doc.Find("hic_obs_run_done")) != 1 {
			t.Error("run registry absent from /metrics")
		}
	})

	t.Run("progress", func(t *testing.T) {
		body, ct := get(t, base+"/progress")
		if !strings.Contains(ct, "application/json") {
			t.Errorf("Content-Type = %q", ct)
		}
		var out struct {
			Runs      []obs.RunStatus `json:"runs"`
			Aggregate obs.RunStatus   `json:"aggregate"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("/progress not JSON: %v\n%s", err, body)
		}
		if len(out.Runs) != 1 || out.Runs[0].Run != "fleet" || out.Runs[0].Done != 25 {
			t.Errorf("runs = %+v", out.Runs)
		}
		if out.Runs[0].Phase != "simulate" {
			t.Errorf("phase = %q, want simulate", out.Runs[0].Phase)
		}
		if out.Aggregate.Run != "all" || out.Aggregate.Total != 100 {
			t.Errorf("aggregate = %+v", out.Aggregate)
		}
	})

	t.Run("events", func(t *testing.T) {
		body, _ := get(t, base+"/events?n=1")
		lines := strings.Split(strings.TrimSpace(body), "\n")
		if len(lines) != 1 {
			t.Fatalf("?n=1 returned %d lines", len(lines))
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
			t.Fatalf("event line not JSON: %v", err)
		}
		if e.Kind != obs.KindCacheCollapse {
			t.Errorf("newest event kind = %q, want cache_collapse", e.Kind)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body, _ := get(t, base+"/debug/pprof/")
		if !strings.Contains(body, "goroutine") {
			t.Error("pprof index missing goroutine profile")
		}
		// A short CPU profile proves the handler is wired, not just routed.
		resp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(b) == 0 {
			t.Errorf("profile: status %d, %d bytes", resp.StatusCode, len(b))
		}
	})
}

func TestProfilerWritesFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := obs.Start("127.0.0.1:0", obs.Options{
		Warn:            io.Discard,
		ProfileDir:      dir,
		ProfileInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cpu, heap int
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
		switch {
		case strings.HasPrefix(e.Name(), "cpu-"):
			cpu++
		case strings.HasPrefix(e.Name(), "heap-"):
			heap++
		}
	}
	if cpu == 0 || heap == 0 {
		t.Errorf("profiler wrote %d cpu + %d heap profiles, want at least one of each (%v)", cpu, heap, names)
	}
}

func TestFlagsNoListenIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := obs.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	srv, err := f.Start(io.Discard)
	if err != nil || srv != nil {
		t.Fatalf("Start without -listen = %v, %v; want nil, nil", srv, err)
	}
	if obs.Default() != nil {
		t.Error("global sink installed without -listen")
	}
}

func TestFlagsStartInstallsGlobalSink(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := obs.RegisterFlags(fs)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	var logw strings.Builder
	srv, err := f.Start(&logw)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("Start returned nil server with -listen set")
	}
	defer func() {
		srv.Close()
		obs.Set(nil)
	}()
	if obs.Default() == nil {
		t.Error("global sink not installed")
	}
	if !strings.Contains(logw.String(), "control plane listening on http://") {
		t.Errorf("startup log = %q", logw.String())
	}
}
