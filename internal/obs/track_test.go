package obs

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock shared by tracker tests so rates
// and ETAs are exact.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTrackerRateAndETA(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.now)
	r := tr.StartRun("fleet", 100)

	// Four points per second, sampled once per second for five seconds.
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		r.Advance(4)
	}
	sts := tr.Snapshot()
	if len(sts) != 1 {
		t.Fatalf("Snapshot length = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.Run != "fleet" || st.Total != 100 || st.Done != 20 {
		t.Fatalf("status = %+v", st)
	}
	// First Advance lands exactly at one rateSampleInterval multiple, so
	// every call produced a sample at exactly 4 points/sec.
	if st.RateSamples != 5 || math.Abs(st.PointsPerSec-4) > 1e-9 {
		t.Errorf("rate = %.3f over %d samples, want 4.000 over 5", st.PointsPerSec, st.RateSamples)
	}
	if st.RateStddev > 1e-9 {
		t.Errorf("stddev = %g, want 0 for a constant rate", st.RateStddev)
	}
	if want := 80.0 / 4.0; math.Abs(st.EtaSec-want) > 1e-9 {
		t.Errorf("ETA = %.3f, want %.3f", st.EtaSec, want)
	}
	if st.ElapsedSec != 5 {
		t.Errorf("elapsed = %g, want 5", st.ElapsedSec)
	}
	if st.Finished {
		t.Error("run reported finished before Finish")
	}
}

func TestTrackerBurstFoldsIntoOneSample(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.now)
	r := tr.StartRun("burst", 1000)

	// 10 Advance calls 10ms apart are below rateSampleInterval: they
	// must not each become a Welford observation.
	for i := 0; i < 10; i++ {
		clk.advance(10 * time.Millisecond)
		r.Advance(1)
	}
	clk.advance(300 * time.Millisecond)
	r.Advance(1)
	st := tr.Snapshot()[0]
	if st.RateSamples != 1 {
		t.Errorf("rate samples = %d, want 1 (burst folded)", st.RateSamples)
	}
	if st.Done != 11 {
		t.Errorf("done = %d, want 11", st.Done)
	}
}

func TestTrackerPhases(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.now)
	r := tr.StartRun("figs", 6, "fig3", "fig6")

	clk.advance(time.Second)
	r.Advance(2)
	r.SetPhase("fig6")
	clk.advance(time.Second)
	r.Advance(3)
	r.SetPhase("extra") // unknown phases are appended
	clk.advance(time.Second)
	r.Advance(1)

	st := tr.Snapshot()[0]
	if st.Phase != "extra" {
		t.Errorf("active phase = %q, want %q", st.Phase, "extra")
	}
	want := []PhaseStatus{
		{Name: "fig3", Done: 2},
		{Name: "fig6", Done: 3},
		{Name: "extra", Done: 1, Active: true},
	}
	if len(st.Phases) != len(want) {
		t.Fatalf("phases = %+v, want %+v", st.Phases, want)
	}
	for i := range want {
		if st.Phases[i] != want[i] {
			t.Errorf("phase[%d] = %+v, want %+v", i, st.Phases[i], want[i])
		}
	}
}

func TestTrackerFinishFreezesElapsed(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.now)
	r := tr.StartRun("done", 2)
	clk.advance(2 * time.Second)
	r.Advance(2)
	r.Finish()
	clk.advance(time.Hour) // wall time after Finish must not count
	st := tr.Snapshot()[0]
	if !st.Finished {
		t.Fatal("not finished")
	}
	if st.ElapsedSec != 2 {
		t.Errorf("elapsed = %g, want 2 (frozen at Finish)", st.ElapsedSec)
	}
	if st.EtaSec != 0 {
		t.Errorf("ETA = %g, want 0 after finish", st.EtaSec)
	}
	r.Finish() // idempotent
}

func TestTrackerLabelDedup(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.now)
	a := tr.StartRun("sweep", 1)
	b := tr.StartRun("sweep", 1)
	if a.Label() != "sweep" || b.Label() != "sweep-2" {
		t.Errorf("labels = %q, %q; want sweep, sweep-2", a.Label(), b.Label())
	}
	a.Finish()
	// A finished run releases its label.
	c := tr.StartRun("sweep", 1)
	if c.Label() != "sweep" {
		t.Errorf("label after finish = %q, want sweep", c.Label())
	}
}

func TestTrackerAggregate(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.now)
	a := tr.StartRun("fleet", 10)
	b := tr.StartRun("sweep", 10)
	clk.advance(time.Second)
	a.Advance(2) // 2/sec
	b.Advance(4) // 4/sec
	agg := tr.Aggregate()
	if agg.Run != "all" || agg.Total != 20 || agg.Done != 6 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.RateSamples != 2 || math.Abs(agg.PointsPerSec-3) > 1e-9 {
		t.Errorf("merged rate = %.3f over %d samples, want 3.000 over 2", agg.PointsPerSec, agg.RateSamples)
	}
	if agg.Finished {
		t.Error("aggregate finished with runs outstanding")
	}
	a.Finish()
	b.Finish()
	if agg := tr.Aggregate(); !agg.Finished {
		t.Error("aggregate not finished after all runs finished")
	}
}

func TestNilRunIsSafe(t *testing.T) {
	var r *Run
	r.Advance(1)
	r.SetPhase("x")
	r.Finish()
	if r.Label() != "" {
		t.Error("nil Label not empty")
	}
}
