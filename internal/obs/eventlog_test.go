package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEventLogPersistsPastRingWrap: the JSONL event log is the durable
// companion to the bounded /events ring — every emitted event must land
// in the file even after the ring has overwritten the oldest entries.
func TestEventLogPersistsPastRingWrap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(Options{EventCap: 16, EventLog: f})
	const n = 40
	for i := 0; i < n; i++ {
		s.Emit(Event{Kind: KindIncident, Run: "fleet", Point: i, Key: "cell", Why: "memory-bus"})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != n {
		t.Fatalf("event log holds %d lines, want %d (ring cap is 16 — the log must not truncate)", len(lines), n)
	}
	for i, l := range lines {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, l)
		}
		if e.Kind != KindIncident || e.Point != i {
			t.Fatalf("line %d = %+v, want incident point %d (order must be emit order)", i, e, i)
		}
		if e.Seq == 0 {
			t.Fatalf("line %d missing ring sequence number", i)
		}
	}
}

// errWriter fails after a fixed number of writes.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("disk full")
	}
	w.left--
	return len(p), nil
}

// TestEventLogWriteErrorDisables: a failing log writer disables the log
// with a warning instead of failing every subsequent Emit.
func TestEventLogWriteErrorDisables(t *testing.T) {
	var warn strings.Builder
	s := NewServer(Options{Warn: &warn, EventCap: 16, EventLog: &errWriter{left: 2}})
	for i := 0; i < 5; i++ {
		s.Emit(Event{Kind: KindIncident, Point: i})
	}
	if !strings.Contains(warn.String(), "event log write failed") {
		t.Errorf("no disable warning:\n%s", warn.String())
	}
	if n := strings.Count(warn.String(), "event log write failed"); n != 1 {
		t.Errorf("warning printed %d times, want once", n)
	}
	// The ring keeps working after the log is gone.
	if evs := s.ring.Snapshot(); len(evs) != 5 {
		t.Errorf("ring holds %d events, want 5", len(evs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlagsEventsOut: the -events-out flag path opens, appends, and
// closes the log through the standard Flags.Start entry point, without
// -listen.
func TestFlagsEventsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	f := &Flags{EventsOut: path}
	var logw strings.Builder
	srv, err := f.Start(&logw)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("Start returned no server with -events-out set")
	}
	defer Set(nil)
	srv.Emit(Event{Kind: KindIncident, Key: "k"})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"incident"`) {
		t.Errorf("log content: %s", data)
	}
	if !strings.Contains(logw.String(), "appending events to") {
		t.Errorf("start log missing note:\n%s", logw.String())
	}
}
