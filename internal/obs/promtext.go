package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Minimal parser for the Prometheus 0.0.4 text exposition format —
// enough to validate everything this package and the telemetry
// exporter emit. Tests parse golden /metrics output through this
// instead of string-matching, so formatting churn that remains valid
// exposition does not break them, while real violations (bad names,
// duplicate conflicting TYPE lines, unparsable values) do.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromDoc is a parsed exposition document.
type PromDoc struct {
	Samples []PromSample
	// Types maps base metric name to its declared TYPE.
	Types map[string]string
}

// Find returns the samples with the given base name.
func (d *PromDoc) Find(name string) []PromSample {
	var out []PromSample
	for _, s := range d.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the single sample with the given name and no labels,
// or an error if absent or ambiguous.
func (d *PromDoc) Value(name string) (float64, error) {
	var hits []PromSample
	for _, s := range d.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			hits = append(hits, s)
		}
	}
	if len(hits) != 1 {
		return 0, fmt.Errorf("promtext: %d samples named %q", len(hits), name)
	}
	return hits[0].Value, nil
}

// ParseProm parses a 0.0.4 text exposition document, validating metric
// names, label syntax, and TYPE consistency.
func ParseProm(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(doc, line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		doc.Samples = append(doc.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func parseComment(doc *PromDoc, line string, lineNo int) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[1] != "TYPE" {
		return nil // HELP or free comment: ignore
	}
	if len(fields) != 4 {
		return fmt.Errorf("promtext: line %d: malformed TYPE line", lineNo)
	}
	name, typ := fields[2], fields[3]
	if !validMetricName(name) {
		return fmt.Errorf("promtext: line %d: invalid metric name %q", lineNo, name)
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("promtext: line %d: unknown type %q", lineNo, typ)
	}
	if prev, ok := doc.Types[name]; ok && prev != typ {
		return fmt.Errorf("promtext: line %d: %s re-declared as %s (was %s)", lineNo, name, typ, prev)
	}
	doc.Types[name] = typ
	return nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{}
	// Name runs until '{', whitespace, or end.
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	val := strings.Fields(rest)
	if len(val) < 1 || len(val) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("expected value after metric name")
	}
	v, err := strconv.ParseFloat(val[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", val[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(body) {
		// label name
		j := i
		for j < len(body) && body[j] != '=' {
			j++
		}
		if j == len(body) {
			return nil, fmt.Errorf("label without value in %q", body)
		}
		name := strings.TrimSpace(body[i:j])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		// quoted value
		j++ // past '='
		if j >= len(body) || body[j] != '"' {
			return nil, fmt.Errorf("label value for %q not quoted", name)
		}
		j++
		var sb strings.Builder
		for j < len(body) && body[j] != '"' {
			if body[j] == '\\' && j+1 < len(body) {
				j++
				switch body[j] {
				case 'n':
					sb.WriteByte('\n')
				case '\\', '"':
					sb.WriteByte(body[j])
				default:
					sb.WriteByte('\\')
					sb.WriteByte(body[j])
				}
			} else {
				sb.WriteByte(body[j])
			}
			j++
		}
		if j >= len(body) {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		labels[name] = sb.String()
		j++ // past closing quote
		if j < len(body) && body[j] == ',' {
			j++
		}
		i = j
	}
	return labels, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
