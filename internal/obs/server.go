package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hic/internal/metrics"
	"hic/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Warn receives one-line structured warnings the moment they occur
	// (an audit exceeding tolerance, a profiler error). nil = stderr.
	Warn io.Writer
	// EventCap bounds the event ring (0 = 4096 events).
	EventCap int
	// ProfileDir, when set, enables continuous profile capture: one CPU
	// profile spanning each ProfileInterval plus a heap profile at each
	// boundary, written as numbered pprof files under the directory.
	ProfileDir string
	// ProfileInterval is the capture cadence (0 = 30s).
	ProfileInterval time.Duration
	// EventLog, when non-nil, receives every event as one JSON line at
	// Emit time — the durable companion to the bounded ring (the
	// -events-out flag). Writes are serialized by the server; the first
	// write error disables the log with a warning. If it also
	// implements io.Closer, Close closes it.
	EventLog io.Writer
}

// Server is the HTTP control plane and the canonical Sink. Construct
// with NewServer (handlers only, for embedding/tests) or Start (bind
// and serve).
type Server struct {
	opts  Options
	now   func() time.Time // test hook; time.Now in production
	start time.Time

	ring    *Ring
	tracker *Tracker
	agg     *fleetAgg

	mu       sync.Mutex
	sources  []MetricSource
	kinds    map[string]uint64
	warnings uint64
	eventLog io.Writer // nil after a write error or Close

	ln   net.Listener
	srv  *http.Server
	prof *profiler
}

// NewServer builds a server without binding a listener — Handler
// serves its endpoints; Start wraps this with a real listener.
func NewServer(o Options) *Server {
	if o.Warn == nil {
		o.Warn = os.Stderr
	}
	if o.EventCap <= 0 {
		o.EventCap = 4096
	}
	if o.ProfileInterval <= 0 {
		o.ProfileInterval = 30 * time.Second
	}
	s := &Server{
		opts:  o,
		now:   time.Now,
		ring:  NewRing(o.EventCap),
		kinds: make(map[string]uint64),
		agg:   newFleetAgg(),
	}
	s.start = s.now()
	s.eventLog = o.EventLog
	s.tracker = NewTracker(func() time.Time { return s.now() })
	return s
}

// Start binds addr (e.g. ":6060"), serves the control plane in the
// background, and starts continuous profile capture when configured.
func Start(addr string, o Options) (*Server, error) {
	s := NewServer(o)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	if o.ProfileDir != "" {
		s.prof = startProfiler(o.ProfileDir, s.opts.ProfileInterval, s.opts.Warn)
	}
	return s, nil
}

// Addr returns the bound listen address ("" when built by NewServer).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the profiler, the HTTP server, and the event log (when
// it is closable). The sink methods stay safe to call after Close
// (events land in the ring, unserved and unlogged).
func (s *Server) Close() error {
	if s.prof != nil {
		s.prof.stopAndWait()
	}
	s.mu.Lock()
	w := s.eventLog
	s.eventLog = nil
	s.mu.Unlock()
	var logErr error
	if c, ok := w.(io.Closer); ok {
		logErr = c.Close()
	}
	if s.srv != nil {
		if err := s.srv.Close(); err != nil {
			return err
		}
	}
	return logErr
}

// Tracker returns the run registry (the /progress source).
func (s *Server) Tracker() *Tracker { return s.tracker }

// AddSource registers a live metric source for /metrics; sources are
// sampled on every scrape in registration order.
func (s *Server) AddSource(src MetricSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// Emit implements Sink: stamp, ring-append, count by kind, and raise
// an immediate warning for audit-over-tolerance and warning events —
// the operator hears about a failing audit when it fails, not in the
// run-end summary.
func (s *Server) Emit(e Event) {
	if e.WallNs == 0 {
		e.WallNs = s.now().UnixNano()
	}
	e = s.ring.Append(e)
	warn := e.Kind == KindWarning || e.Kind == KindWorkerStale ||
		(e.Kind == KindAuditResult && e.OverTol)
	var logErr error
	s.mu.Lock()
	s.kinds[e.Kind]++
	if warn {
		s.warnings++
	}
	if s.eventLog != nil {
		if b, err := json.Marshal(e); err == nil {
			b = append(b, '\n')
			if _, werr := s.eventLog.Write(b); werr != nil {
				s.eventLog = nil
				logErr = werr
			}
		}
	}
	s.mu.Unlock()
	if logErr != nil {
		fmt.Fprintf(s.opts.Warn, "obs: event log write failed: %v (log disabled)\n", logErr)
	}
	if warn {
		if b, err := json.Marshal(e); err == nil {
			fmt.Fprintf(s.opts.Warn, "obs: WARN %s\n", b)
		}
	}
}

// StartRun implements Sink: register in the tracker and bracket the
// run with run_start/run_finish events.
func (s *Server) StartRun(label string, total int64, phases ...string) *Run {
	r := s.tracker.StartRun(label, total, phases...)
	s.Emit(Event{Kind: KindRunStart, Run: r.Label()})
	r.onFinish = func(r *Run) {
		s.Emit(Event{Kind: KindRunFinish, Run: r.Label()})
	}
	return r
}

// RunMetrics implements Sink: fold a completed simulation's registry
// snapshot into the fleet-cumulative rollup served by /metrics.
func (s *Server) RunMetrics(snap Snapshot) { s.agg.merge(snap) }

// Handler returns the control plane mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Register installs the control-plane endpoints on an existing mux,
// skipping any pattern the mux already serves — so a host process (the
// serve daemon) can hang its own API and the control plane off one
// server and port without http.ServeMux's duplicate-registration
// panic. The host's handlers win on conflict; the patterns actually
// registered are returned so callers can log what the control plane
// ended up owning.
func (s *Server) Register(mux *http.ServeMux) []string {
	endpoints := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"/", s.handleIndex},
		{"/metrics", s.handleMetrics},
		{"/progress", s.handleProgress},
		{"/events", s.handleEvents},
		{"/debug/pprof/", pprof.Index},
		{"/debug/pprof/cmdline", pprof.Cmdline},
		{"/debug/pprof/profile", pprof.Profile},
		{"/debug/pprof/symbol", pprof.Symbol},
		{"/debug/pprof/trace", pprof.Trace},
	}
	var added []string
	for _, e := range endpoints {
		if muxHasPattern(mux, e.pattern) {
			continue
		}
		mux.HandleFunc(e.pattern, e.h)
		added = append(added, e.pattern)
	}
	return added
}

// muxHasPattern reports whether mux already has a handler registered
// under exactly this pattern. ServeMux has no lookup API, so probe with
// a synthetic request for the pattern's path: Handler returns the
// pattern that would serve it, which equals ours only if ours (or an
// identical one) is registered — a shallower fallback like "/" comes
// back as its own pattern and does not mask deeper registrations.
func muxHasPattern(mux *http.ServeMux, pattern string) bool {
	_, got := mux.Handler(&http.Request{
		Method: http.MethodGet,
		Host:   "probe.invalid",
		URL:    &url.URL{Path: pattern},
	})
	return got == pattern
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "hic control plane\n\n"+
		"/metrics       Prometheus text exposition (live executor + fleet rollup)\n"+
		"/progress      JSON run registry: per-phase completion, points/sec, ETA\n"+
		"/events        structured event log (JSONL ring; ?n=N limits, ?since=SEQ tails)\n"+
		"/debug/pprof/  pprof profiles (profile, heap, goroutine, trace, ...)\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	out := struct {
		Runs      []RunStatus `json:"runs"`
		Aggregate RunStatus   `json:"aggregate"`
	}{Runs: s.tracker.Snapshot(), Aggregate: s.tracker.Aggregate()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client disconnects are not ours
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	// ?since=N tails incrementally: only events with seq > N, so a
	// poller that passes back the last seq it saw reads each event once
	// instead of re-reading the whole ring (or losing events past wrap).
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			since = n
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	s.ring.WriteJSONLSince(w, since, limit) //nolint:errcheck
}

// WriteMetrics renders the full exposition: control-plane self
// metrics, the run registry, every registered live source, and the
// fleet-cumulative registry rollup. Output is deterministic for a
// given state (sorted where the underlying order is a map's).
func (s *Server) WriteMetrics(w io.Writer) error {
	now := s.now()
	s.mu.Lock()
	sources := append([]MetricSource(nil), s.sources...)
	kinds := make([]string, 0, len(s.kinds))
	for k := range s.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	kindCounts := make([]uint64, len(kinds))
	for i, k := range kinds {
		kindCounts[i] = s.kinds[k]
	}
	warnings := s.warnings
	s.mu.Unlock()

	pw := &promWriter{w: w}
	pw.sample("hic_obs_uptime_seconds", "gauge", now.Sub(s.start).Seconds())
	pw.sample("hic_obs_events_total", "counter", float64(s.ring.Total()))
	pw.sample("hic_obs_events_dropped_total", "counter", float64(s.ring.Dropped()))
	pw.sample("hic_obs_warnings_total", "counter", float64(warnings))
	for i, k := range kinds {
		pw.sample(fmt.Sprintf("hic_obs_events_kind_total{kind=%q}", k), "counter", float64(kindCounts[i]))
	}

	for _, st := range s.tracker.Snapshot() {
		l := fmt.Sprintf("{run=%q}", st.Run)
		pw.sample("hic_obs_run_total"+l, "gauge", float64(st.Total))
		pw.sample("hic_obs_run_done"+l, "gauge", float64(st.Done))
		pw.sample("hic_obs_run_points_per_sec"+l, "gauge", st.PointsPerSec)
		pw.sample("hic_obs_run_eta_seconds"+l, "gauge", st.EtaSec)
		fin := 0.0
		if st.Finished {
			fin = 1
		}
		pw.sample("hic_obs_run_finished"+l, "gauge", fin)
	}

	for _, src := range sources {
		src.MetricsInto(pw.sample)
	}
	if err := pw.err; err != nil {
		return err
	}
	return s.agg.write(w)
}

// promWriter renders (name, type, value) samples as 0.0.4 text,
// emitting one TYPE line per base metric name (labels stripped) the
// first time it appears.
type promWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

func (p *promWriter) sample(name, typ string, v float64) {
	if p.err != nil {
		return
	}
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	if p.typed == nil {
		p.typed = make(map[string]bool)
	}
	if !p.typed[base] {
		p.typed[base] = true
		if _, err := fmt.Fprintf(p.w, "# TYPE %s %s\n", base, typ); err != nil {
			p.err = err
			return
		}
	}
	if _, err := fmt.Fprintf(p.w, "%s %g\n", name, v); err != nil {
		p.err = err
	}
}

// fleetAgg accumulates registry snapshots across completed
// simulations: counters sum, gauge maxima keep their max, histograms
// keep count and sum. Quantiles are not merged (they are not mergeable
// from snapshots); per-run quantiles remain available through the
// one-shot exporters.
type fleetAgg struct {
	mu       sync.Mutex
	runs     uint64
	counters map[string]uint64
	gaugeMax map[string]int64
	histCnt  map[string]uint64
	histSum  map[string]float64
}

func newFleetAgg() *fleetAgg {
	return &fleetAgg{
		counters: make(map[string]uint64),
		gaugeMax: make(map[string]int64),
		histCnt:  make(map[string]uint64),
		histSum:  make(map[string]float64),
	}
}

func (f *fleetAgg) merge(snap metrics.Snapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runs++
	for n, v := range snap.Counters {
		f.counters[n] += v
	}
	for n, g := range snap.Gauges {
		if g.Max > f.gaugeMax[n] {
			f.gaugeMax[n] = g.Max
		}
	}
	for n, h := range snap.Histograms {
		f.histCnt[n] += h.Count
		f.histSum[n] += h.Sum
	}
}

// write renders the rollup under the hic_fleet_ prefix, reusing the
// PR-1 exporter's name mangling so series names line up with the
// one-shot -metrics-out output.
func (f *fleetAgg) write(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	pw := &promWriter{w: w}
	pw.sample("hic_fleet_runs_total", "counter", float64(f.runs))
	for _, n := range sortedKeys(f.counters) {
		pw.sample(fleetName(n)+"_total", "counter", float64(f.counters[n]))
	}
	for _, n := range sortedKeys(f.gaugeMax) {
		pw.sample(fleetName(n)+"_max", "gauge", float64(f.gaugeMax[n]))
	}
	for _, n := range sortedKeys(f.histCnt) {
		fn := fleetName(n)
		pw.sample(fn+"_count", "counter", float64(f.histCnt[n]))
		pw.sample(fn+"_sum", "gauge", f.histSum[n])
	}
	return pw.err
}

// fleetName maps a registry metric name into the fleet-rollup
// namespace: "nic.rx.drops" → "hic_fleet_nic_rx_drops".
func fleetName(n string) string {
	return "hic_fleet_" + strings.TrimPrefix(telemetry.PromName(n), "hic_")
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
