package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		e := r.Append(Event{Kind: KindPointStart, Point: i})
		if e.Seq != uint64(i+1) {
			t.Fatalf("append %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if got := r.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("Snapshot length = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Point != i || e.Seq != uint64(i+1) {
			t.Errorf("Snapshot[%d] = point %d seq %d, want point %d seq %d", i, e.Point, e.Seq, i, i+1)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16)
	const n = 40 // 2.5 wraps
	for i := 0; i < n; i++ {
		r.Append(Event{Kind: KindPointFinish, Point: i})
	}
	if got := r.Total(); got != n {
		t.Errorf("Total = %d, want %d", got, n)
	}
	if got := r.Dropped(); got != n-16 {
		t.Errorf("Dropped = %d, want %d", got, n-16)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot length = %d, want 16", len(evs))
	}
	// Oldest retained first, strictly sequential, ending at the newest.
	for i, e := range evs {
		wantSeq := uint64(n - 16 + i + 1)
		if e.Seq != wantSeq {
			t.Fatalf("Snapshot[%d].Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Point != int(wantSeq-1) {
			t.Errorf("Snapshot[%d].Point = %d, want %d", i, e.Point, wantSeq-1)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 20; i++ {
		r.Append(Event{Point: i})
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Errorf("capacity-0 ring retained %d events, want 16 (clamped minimum)", got)
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 6; i++ {
		r.Append(Event{Kind: KindFidelityRoute, Point: i, Route: "des"})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 0); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines+1, err, sc.Text())
		}
		if e.Kind != KindFidelityRoute || e.Route != "des" {
			t.Errorf("line %d round-tripped as kind=%q route=%q", lines+1, e.Kind, e.Route)
		}
		lines++
	}
	if lines != 6 {
		t.Errorf("WriteJSONL wrote %d lines, want 6", lines)
	}

	// limit keeps the newest events.
	buf.Reset()
	if err := r.WriteJSONL(&buf, 2); err != nil {
		t.Fatalf("WriteJSONL(limit=2): %v", err)
	}
	sc = bufio.NewScanner(&buf)
	var got []uint64
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Seq)
	}
	if fmt.Sprint(got) != "[5 6]" {
		t.Errorf("limited WriteJSONL seqs = %v, want [5 6]", got)
	}
}

func TestRingConcurrentAppend(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Append(Event{Kind: KindPointFinish})
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != goroutines*per {
		t.Errorf("Total = %d, want %d", got, goroutines*per)
	}
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot not sequential at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func ringSeqs(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, e := range evs {
		out[i] = e.Seq
	}
	return out
}

func TestRingSnapshotSince(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Append(Event{Point: i})
	}
	// Strictly-after semantics: since=N returns seq N+1 onward.
	if got := ringSeqs(r.SnapshotSince(4)); fmt.Sprint(got) != "[5 6 7 8 9 10]" {
		t.Errorf("SnapshotSince(4) seqs = %v", got)
	}
	// since at the newest seq: nothing new.
	if got := r.SnapshotSince(10); len(got) != 0 {
		t.Errorf("SnapshotSince(10) = %v, want empty", got)
	}
	// since beyond the newest (a stale cursor from a restarted sink
	// would do this): still nothing, never a panic.
	if got := r.SnapshotSince(99); len(got) != 0 {
		t.Errorf("SnapshotSince(99) = %v, want empty", got)
	}
	// since=0 is the full snapshot.
	if got := len(r.SnapshotSince(0)); got != 10 {
		t.Errorf("SnapshotSince(0) length = %d, want 10", got)
	}
}

func TestRingSnapshotSinceAfterWrap(t *testing.T) {
	r := NewRing(16)
	const n = 40 // oldest retained seq is 25
	for i := 0; i < n; i++ {
		r.Append(Event{Point: i})
	}
	// Cursor older than the ring: the whole retained window comes back;
	// the gap between since and the first seq is the drop count.
	evs := r.SnapshotSince(5)
	if len(evs) != 16 || evs[0].Seq != 25 {
		t.Fatalf("SnapshotSince(5) = %d events starting at seq %d, want 16 from 25",
			len(evs), evs[0].Seq)
	}
	// Cursor inside the first chronological segment.
	if got := ringSeqs(r.SnapshotSince(30)); fmt.Sprint(got) != "[31 32 33 34 35 36 37 38 39 40]" {
		t.Errorf("SnapshotSince(30) seqs = %v", got)
	}
	// Cursor inside the wrapped tail segment.
	if got := ringSeqs(r.SnapshotSince(38)); fmt.Sprint(got) != "[39 40]" {
		t.Errorf("SnapshotSince(38) seqs = %v", got)
	}
	if got := r.SnapshotSince(40); len(got) != 0 {
		t.Errorf("SnapshotSince(newest) = %v, want empty", got)
	}
}

func TestRingWriteJSONLSince(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 8; i++ {
		r.Append(Event{Kind: KindPointFinish, Point: i})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONLSince(&buf, 6, 0); err != nil {
		t.Fatalf("WriteJSONLSince: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var got []uint64
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Seq)
	}
	if fmt.Sprint(got) != "[7 8]" {
		t.Errorf("WriteJSONLSince(6) seqs = %v, want [7 8]", got)
	}
}
