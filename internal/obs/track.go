package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hic/internal/stats"
)

// rateSampleInterval spaces the instantaneous-rate samples the ETA
// smoother consumes: Advance calls closer together than this fold into
// one sample, so a burst of fast points does not swamp the Welford
// moments with near-duplicate observations.
const rateSampleInterval = 250 * time.Millisecond

// Tracker is the run registry behind /progress: every long fan-out
// (fleet, sweep, bench section) registers a Run, advances it per
// completed point, and the tracker serves smoothed rate and ETA.
type Tracker struct {
	now func() time.Time

	mu   sync.Mutex
	runs []*Run
}

// NewTracker returns an empty registry. now is the clock (nil =
// time.Now); tests pin it for deterministic output.
func NewTracker(now func() time.Time) *Tracker {
	if now == nil {
		now = time.Now
	}
	return &Tracker{now: now}
}

// StartRun registers a run of total units under label (deduplicated
// with a numeric suffix if the label is already registered and still
// active). phases optionally name sequential sub-stages; Advance
// attributes completed units to the current phase.
func (t *Tracker) StartRun(label string, total int64, phases ...string) *Run {
	t.mu.Lock()
	defer t.mu.Unlock()
	base := label
	for n := 2; ; n++ {
		taken := false
		for _, r := range t.runs {
			if r.label == label && !r.isFinished() {
				taken = true
				break
			}
		}
		if !taken {
			break
		}
		label = fmt.Sprintf("%s-%d", base, n)
	}
	r := &Run{
		tr:     t,
		label:  label,
		total:  total,
		phases: phases,
		start:  t.now(),
	}
	r.phase.Store(-1)
	if len(phases) > 0 {
		r.phaseDone = make([]atomic.Int64, len(phases))
		r.phase.Store(0)
	}
	r.lastT = r.start
	t.runs = append(t.runs, r)
	return r
}

// Snapshot reports every registered run, registration order.
func (t *Tracker) Snapshot() []RunStatus {
	t.mu.Lock()
	runs := append([]*Run(nil), t.runs...)
	now := t.now()
	t.mu.Unlock()
	out := make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.status(now)
	}
	return out
}

// Aggregate folds every run into one totals row: summed units, and the
// rate moments of all runs merged (stats.Moments.Merge) so the
// fleet-wide points/sec and ETA survive runs starting and finishing.
func (t *Tracker) Aggregate() RunStatus {
	t.mu.Lock()
	runs := append([]*Run(nil), t.runs...)
	now := t.now()
	t.mu.Unlock()
	agg := RunStatus{Run: "all"}
	var merged stats.Moments
	var earliest time.Time
	allDone := len(runs) > 0
	for _, r := range runs {
		st := r.status(now)
		agg.Total += st.Total
		agg.Done += st.Done
		if earliest.IsZero() || r.start.Before(earliest) {
			earliest = r.start
		}
		r.mu.Lock()
		merged.Merge(r.rates)
		r.mu.Unlock()
		if !st.Finished {
			allDone = false
		}
	}
	if !earliest.IsZero() {
		agg.ElapsedSec = now.Sub(earliest).Seconds()
	}
	agg.RateSamples = merged.N()
	if merged.N() > 0 {
		agg.PointsPerSec = merged.Mean()
		agg.RateStddev = merged.Stddev()
	} else if agg.ElapsedSec > 0 {
		agg.PointsPerSec = float64(agg.Done) / agg.ElapsedSec
	}
	if rem := agg.Total - agg.Done; rem > 0 && agg.PointsPerSec > 0 {
		agg.EtaSec = float64(rem) / agg.PointsPerSec
	}
	agg.Finished = allDone
	return agg
}

// Run is one tracked unit-of-work group. The zero method set is
// nil-safe so instrumented code paths can hold a nil *Run when no sink
// is installed and still call Advance/SetPhase/Finish unconditionally.
type Run struct {
	tr     *Tracker
	label  string
	total  int64
	phases []string

	done      atomic.Int64
	phase     atomic.Int32 // index into phases; -1 = none
	phaseDone []atomic.Int64
	start     time.Time

	mu       sync.Mutex
	rates    stats.Moments // instantaneous points/sec samples (Welford)
	lastT    time.Time
	lastDone int64
	finished bool
	end      time.Time
	onFinish func(*Run)
}

// Label returns the (possibly deduplicated) registry label.
func (r *Run) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Advance records n completed units, attributed to the current phase,
// and folds an instantaneous-rate observation into the Welford moments
// when at least rateSampleInterval has passed since the last sample.
func (r *Run) Advance(n int64) {
	if r == nil {
		return
	}
	done := r.done.Add(n)
	now := r.tr.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if pi := r.phase.Load(); pi >= 0 && int(pi) < len(r.phaseDone) {
		r.phaseDone[pi].Add(n)
	}
	if dt := now.Sub(r.lastT); dt >= rateSampleInterval {
		r.rates.Add(float64(done-r.lastDone) / dt.Seconds())
		r.lastT, r.lastDone = now, done
	}
}

// SetPhase switches attribution to the named phase (matched against
// the phases given at StartRun; unknown names are appended).
func (r *Run) SetPhase(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range r.phases {
		if p == name {
			r.phase.Store(int32(i))
			return
		}
	}
	r.phases = append(r.phases, name)
	r.phaseDone = append(r.phaseDone, atomic.Int64{})
	r.phase.Store(int32(len(r.phases) - 1))
}

// Finish marks the run complete (idempotent).
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return
	}
	r.finished = true
	r.end = r.tr.now()
	cb := r.onFinish
	r.mu.Unlock()
	if cb != nil {
		cb(r)
	}
}

func (r *Run) isFinished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

// PhaseStatus is one phase's completion inside a RunStatus.
type PhaseStatus struct {
	Name   string `json:"name"`
	Done   int64  `json:"done"`
	Active bool   `json:"active,omitempty"`
}

// RunStatus is the /progress view of one run.
type RunStatus struct {
	Run    string        `json:"run"`
	Total  int64         `json:"total"`
	Done   int64         `json:"done"`
	Phase  string        `json:"phase,omitempty"`
	Phases []PhaseStatus `json:"phases,omitempty"`
	// ElapsedSec is wall time since StartRun (frozen at Finish).
	ElapsedSec float64 `json:"elapsed_sec"`
	// PointsPerSec is the Welford mean of the sampled instantaneous
	// rates (falling back to done/elapsed before the first sample);
	// RateStddev is the sample standard deviation and RateSamples the
	// sample count, so consumers can judge how settled the estimate is.
	PointsPerSec float64 `json:"points_per_sec"`
	RateStddev   float64 `json:"points_per_sec_stddev,omitempty"`
	RateSamples  int64   `json:"rate_samples"`
	// EtaSec is remaining/PointsPerSec; 0 when unknown or done.
	EtaSec   float64 `json:"eta_sec,omitempty"`
	Finished bool    `json:"finished,omitempty"`
}

func (r *Run) status(now time.Time) RunStatus {
	st := RunStatus{Run: r.label, Total: r.total, Done: r.done.Load()}
	r.mu.Lock()
	end := r.end
	st.Finished = r.finished
	st.RateSamples = r.rates.N()
	if st.RateSamples > 0 {
		st.PointsPerSec = r.rates.Mean()
		st.RateStddev = r.rates.Stddev()
	}
	if pi := r.phase.Load(); pi >= 0 && int(pi) < len(r.phases) {
		st.Phase = r.phases[pi]
		st.Phases = make([]PhaseStatus, len(r.phases))
		for i, p := range r.phases {
			st.Phases[i] = PhaseStatus{Name: p, Done: r.phaseDone[i].Load(), Active: int32(i) == pi && !r.finished}
		}
	}
	r.mu.Unlock()
	if st.Finished {
		st.ElapsedSec = end.Sub(r.start).Seconds()
	} else {
		st.ElapsedSec = now.Sub(r.start).Seconds()
	}
	if st.PointsPerSec == 0 && st.ElapsedSec > 0 {
		st.PointsPerSec = float64(st.Done) / st.ElapsedSec
	}
	if rem := st.Total - st.Done; rem > 0 && st.PointsPerSec > 0 && !st.Finished {
		st.EtaSec = float64(rem) / st.PointsPerSec
	}
	return st
}
