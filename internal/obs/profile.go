package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// profiler continuously captures profiles to disk: one CPU profile
// spanning each interval, plus a heap profile at each boundary. Files
// are numbered (cpu-000001.pprof, heap-000001.pprof, ...) so a crash
// mid-run leaves the whole history up to the last completed interval.
type profiler struct {
	dir      string
	interval time.Duration
	warn     io.Writer
	stop     chan struct{}
	done     chan struct{}
}

func startProfiler(dir string, interval time.Duration, warn io.Writer) *profiler {
	p := &profiler{
		dir:      dir,
		interval: interval,
		warn:     warn,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *profiler) loop() {
	defer close(p.done)
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		fmt.Fprintf(p.warn, "obs: profiler disabled: %v\n", err)
		return
	}
	for n := 1; ; n++ {
		if !p.captureInterval(n) {
			return
		}
	}
}

// captureInterval records one CPU profile spanning the interval and a
// heap profile at its end; returns false once stopped.
func (p *profiler) captureInterval(n int) bool {
	cpuPath := filepath.Join(p.dir, fmt.Sprintf("cpu-%06d.pprof", n))
	f, err := os.Create(cpuPath)
	if err != nil {
		fmt.Fprintf(p.warn, "obs: profiler disabled: %v\n", err)
		return false
	}
	cpuOK := true
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is active (e.g. a /debug/pprof/profile
		// scrape); skip this interval rather than fight over it.
		cpuOK = false
		f.Close()
		os.Remove(cpuPath)
	}
	alive := true
	select {
	case <-p.stop:
		alive = false
	case <-time.After(p.interval):
	}
	if cpuOK {
		pprof.StopCPUProfile()
		f.Close()
	}
	p.heapProfile(n)
	return alive
}

func (p *profiler) heapProfile(n int) {
	path := filepath.Join(p.dir, fmt.Sprintf("heap-%06d.pprof", n))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(p.warn, "obs: heap profile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(p.warn, "obs: heap profile: %v\n", err)
	}
}

func (p *profiler) stopAndWait() {
	close(p.stop)
	<-p.done
}
