package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Flags is the shared command-line surface for the control plane:
// every binary that can run long (hiccluster, hicsweep, hicfigs,
// hicbench) registers the same flags and calls Start once flags are
// parsed. When both -listen and -events-out are unset, Start is a
// no-op and the zero-overhead path stays in effect.
type Flags struct {
	Listen          string
	ProfileDir      string
	ProfileInterval time.Duration
	EventsOut       string
}

// RegisterFlags installs the control-plane flags on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Listen, "listen", "", "serve the observability control plane on this address (e.g. :6060); empty = disabled")
	fs.StringVar(&f.ProfileDir, "profile-dir", "", "capture continuous CPU+heap profiles into this directory (requires -listen)")
	fs.DurationVar(&f.ProfileInterval, "profile-interval", 30*time.Second, "cadence of continuous profile capture")
	fs.StringVar(&f.EventsOut, "events-out", "", "append every control-plane event as JSONL to this file (the durable companion to the /events ring; works with or without -listen)")
	return f
}

// Start launches the control plane when -listen or -events-out was
// given, installs it as the process-global sink, and logs what it is
// doing to logw. With only -events-out the server runs without a
// listener: events are appended to the file as they are emitted and no
// HTTP endpoints exist. It returns the server (nil when disabled) so
// main can Close it and register live metric sources.
func (f *Flags) Start(logw io.Writer) (*Server, error) {
	if f.Listen == "" && f.EventsOut == "" {
		return nil, nil
	}
	opts := Options{
		Warn:            logw,
		ProfileDir:      f.ProfileDir,
		ProfileInterval: f.ProfileInterval,
	}
	if f.EventsOut != "" {
		lf, err := os.OpenFile(f.EventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("obs: opening event log: %w", err)
		}
		opts.EventLog = lf
	}
	var s *Server
	if f.Listen != "" {
		var err error
		s, err = Start(f.Listen, opts)
		if err != nil {
			if c, ok := opts.EventLog.(io.Closer); ok {
				c.Close()
			}
			return nil, err
		}
	} else {
		s = NewServer(opts)
	}
	Set(s)
	if s.Addr() != "" {
		fmt.Fprintf(logw, "obs: control plane listening on http://%s (/metrics /progress /events /debug/pprof)\n", s.Addr())
	}
	if f.EventsOut != "" {
		fmt.Fprintf(logw, "obs: appending events to %s\n", f.EventsOut)
	}
	return s, nil
}
