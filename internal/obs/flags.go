package obs

import (
	"flag"
	"fmt"
	"io"
	"time"
)

// Flags is the shared command-line surface for the control plane:
// every binary that can run long (hiccluster, hicsweep, hicfigs,
// hicbench) registers the same three flags and calls Start once flags
// are parsed. When -listen is unset, Start is a no-op and the
// zero-overhead path stays in effect.
type Flags struct {
	Listen          string
	ProfileDir      string
	ProfileInterval time.Duration
}

// RegisterFlags installs the control-plane flags on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Listen, "listen", "", "serve the observability control plane on this address (e.g. :6060); empty = disabled")
	fs.StringVar(&f.ProfileDir, "profile-dir", "", "capture continuous CPU+heap profiles into this directory (requires -listen)")
	fs.DurationVar(&f.ProfileInterval, "profile-interval", 30*time.Second, "cadence of continuous profile capture")
	return f
}

// Start launches the control plane when -listen was given, installs it
// as the process-global sink, and logs the bound address to logw. It
// returns the server (nil when disabled) so main can Close it and
// register live metric sources.
func (f *Flags) Start(logw io.Writer) (*Server, error) {
	if f.Listen == "" {
		return nil, nil
	}
	s, err := Start(f.Listen, Options{
		Warn:            logw,
		ProfileDir:      f.ProfileDir,
		ProfileInterval: f.ProfileInterval,
	})
	if err != nil {
		return nil, err
	}
	Set(s)
	fmt.Fprintf(logw, "obs: control plane listening on http://%s (/metrics /progress /events /debug/pprof)\n", s.Addr())
	return s, nil
}
