// Package serve is the long-lived simulation service: a coordinator
// daemon that answers what-if queries (a fleet scenario in, streamed
// aggregates out) and dispenses the fleet's host-index ranges to
// registered shard workers, the way runner.MapOrdered dispenses chunks
// to pool workers — except the "pool" spans processes and machines.
//
// Everything that makes the second query cheaper than the first stays
// resident between requests: workers keep their runner arenas and
// calibrated fidelity routers; the coordinator keeps the
// content-addressed run cache and the warm-start store hot and serves
// both to workers over HTTP (runcache.HTTPBackend), so results,
// calibration blobs, and checkpoints dedup across machines.
//
// Determinism is the contract the sharding must not break: the
// simulator is bit-deterministic per Params, hosts are random-access,
// and cluster.RunRange makes a range run byte-identical to the
// corresponding slice of a full run. The coordinator therefore folds
// worker partials in range order — never in arrival order — so the
// merged aggregates (including the order-sensitive quantile reservoir
// and the golden point hash) are byte-identical to a single-process
// RunStream of the same query, no matter how many workers ran it or in
// what order they finished.
package serve

import (
	"fmt"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/sim"
	"hic/internal/stats"
)

// QueryRequest is a what-if query: a fleet scenario plus execution
// knobs. The zero value of every knob means "the default the CLIs use",
// so a minimal query is just {"hosts": N, "seed": S}.
type QueryRequest struct {
	// Hosts is the fleet size; required, positive.
	Hosts int `json:"hosts"`
	// WindowsPerHost matches cluster.Config (0 = 1).
	WindowsPerHost int `json:"windows_per_host,omitempty"`
	// Seed drives the fleet catalog draws.
	Seed uint64 `json:"seed"`
	// WarmupMS and MeasureMS are the per-host windows in simulated
	// milliseconds (0 = the cluster defaults).
	WarmupMS  float64 `json:"warmup_ms,omitempty"`
	MeasureMS float64 `json:"measure_ms,omitempty"`

	// Fidelity selects the execution strategy: "", "des", "fluid", or
	// "auto" (see fidelity.ParseMode). "" with EarlyStop false runs
	// plain DES with no router at all — the byte-golden path.
	Fidelity  string  `json:"fidelity,omitempty"`
	Tol       float64 `json:"tol,omitempty"`
	AuditRate float64 `json:"audit_rate,omitempty"`
	EarlyStop bool    `json:"early_stop,omitempty"`
	// Warm selects cross-run warm start ("", "off", "calib", "full");
	// non-off requires the coordinator to have a warm store configured.
	Warm string `json:"warm,omitempty"`
	// NoCache bypasses the shared run cache for this query.
	NoCache bool `json:"no_cache,omitempty"`

	// Cold-path accelerations (auto mode). All three are on by default,
	// matching the CLIs, so the knobs are spelled as disables to keep
	// the zero-value-is-default contract: NoKneeSearch keeps the full
	// knee bands DES-forced, NoTransfer calibrates every signature from
	// its own anchor grid, and NoPrefetch skips the coordinator's
	// signature prefetch leases (workers then calibrate lazily on first
	// touch inside range execution). KneeRadius and TransferRadius
	// override the router defaults when positive.
	NoKneeSearch   bool    `json:"no_knee_search,omitempty"`
	NoTransfer     bool    `json:"no_transfer,omitempty"`
	NoPrefetch     bool    `json:"no_prefetch,omitempty"`
	KneeRadius     int     `json:"knee_radius,omitempty"`
	TransferRadius float64 `json:"transfer_radius,omitempty"`

	// RangeHosts overrides the shard granularity (0 = auto: the fleet
	// split about eight ranges per registered worker, like the runner's
	// chunk frontier).
	RangeHosts int `json:"range_hosts,omitempty"`
	// Points streams every scatter point back on the query response
	// (the aggregates and hash are computed either way).
	Points bool `json:"points,omitempty"`
	// Trace records the query's end-to-end lifecycle: the coordinator
	// assigns a trace id, stamps every lease with it, collects spans
	// (queue wait, prefetch barrier, each range lease per worker,
	// merge) and returns them on the result for Chrome trace_event
	// export. Tracing never changes results — merged hashes are
	// byte-identical with it on or off — and is deliberately excluded
	// from FidelitySignature (it does not affect routing).
	Trace bool `json:"trace,omitempty"`
	// TimeoutSec aborts the query if the fleet has not merged in time
	// (0 = no deadline beyond the HTTP client's own).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// Validate checks the parts of a query the coordinator must reject
// before leasing work (worker-side config building catches the rest).
func (q QueryRequest) Validate() error {
	if q.Hosts <= 0 {
		return fmt.Errorf("serve: hosts must be positive, got %d", q.Hosts)
	}
	if q.Fidelity != "" {
		if _, err := fidelity.ParseMode(q.Fidelity); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if q.Warm != "" {
		if _, err := fidelity.ParseWarmMode(q.Warm); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if q.RangeHosts < 0 {
		return fmt.Errorf("serve: range_hosts must be non-negative")
	}
	return nil
}

// ClusterConfig lowers the scenario part of the query to a fleet
// config. Execution wiring (cache, router, pool) is the worker's.
func (q QueryRequest) ClusterConfig() cluster.Config {
	return cluster.Config{
		Hosts:          q.Hosts,
		WindowsPerHost: q.WindowsPerHost,
		Seed:           q.Seed,
		Warmup:         sim.Duration(q.WarmupMS * float64(sim.Millisecond)),
		Measure:        sim.Duration(q.MeasureMS * float64(sim.Millisecond)),
	}
}

// FidelitySignature names the resident router a worker must use for
// this query: every knob that changes routing or calibration is in the
// key, so two queries share a router (and its anchor calibrations)
// exactly when reusing it is sound. The fleet seed is included because
// anchor seeds derive from it (cluster.SeedPool).
func (q QueryRequest) FidelitySignature() string {
	return fmt.Sprintf("m=%s tol=%g audit=%g es=%t warm=%s seed=%d ks=%t kr=%d xfer=%t xr=%g",
		q.Fidelity, q.Tol, q.AuditRate, q.EarlyStop, q.Warm, q.Seed,
		!q.NoKneeSearch, q.KneeRadius, !q.NoTransfer, q.TransferRadius)
}

// Prefetchable reports whether the coordinator should dispense
// signature prefetch leases before this query's ranges: auto-mode
// fidelity (the only mode that calibrates) with prefetch not disabled.
func (q QueryRequest) Prefetchable() bool {
	return q.Fidelity == string(fidelity.ModeAuto) && !q.NoPrefetch
}

// NeedsRouter reports whether the query routes through a fidelity
// router at all; plain DES without early stopping runs bare.
func (q QueryRequest) NeedsRouter() bool {
	return (q.Fidelity != "" && q.Fidelity != string(fidelity.ModeDES)) ||
		q.EarlyStop || (q.Warm != "" && q.Warm != string(fidelity.WarmOff))
}

// LeasePrefetch marks a prefetch lease: instead of executing hosts
// [Lo, Hi), the worker calibrates the distinct fidelity signatures of
// the representative hosts in Reps (anchor grid or transfer curve, both
// noise tiers, located knee) so the shared run cache and warm store are
// hot before range execution starts. Everything a prefetch computes is
// content-addressed, so N workers prefetching disjoint rep chunks
// calibrate the fleet in parallel without duplicating DES.
const LeasePrefetch = "prefetch"

// Lease is one dispensed unit of work: hosts [Lo, Hi) of the job's
// fleet, or (Kind == LeasePrefetch) a chunk of signature representatives
// to calibrate ahead of the ranges. The full spec rides along so workers
// are stateless between leases — any worker can run any lease of any
// job.
type Lease struct {
	Job     string       `json:"job"`
	RangeID int          `json:"range_id"`
	Lo      int          `json:"lo"`
	Hi      int          `json:"hi"`
	Kind    string       `json:"kind,omitempty"`
	Reps    []int        `json:"reps,omitempty"`
	Spec    QueryRequest `json:"spec"`
	// Trace is the owning query's trace id ("" = untraced). A worker
	// holding a traced lease stamps its completion with the id and its
	// execution window so the coordinator can attribute the span.
	Trace string `json:"trace,omitempty"`
}

// RangePartial is a worker's product for one lease: the range's scatter
// points in emission order, its execution accounting, and the online
// moment accumulators (exact accumulator state — see stats.Moments
// JSON) the coordinator merges in range order as a cross-check against
// its own point-folded aggregates.
type RangePartial struct {
	Job     string          `json:"job"`
	RangeID int             `json:"range_id"`
	Worker  string          `json:"worker"`
	Lo      int             `json:"lo"`
	Hi      int             `json:"hi"`
	Points  []cluster.Point `json:"points"`
	Stats   cluster.Stats   `json:"stats"`
	Util    stats.Moments   `json:"util"`
	Drop    stats.Moments   `json:"drop"`
	// Prefetch marks this as a prefetch lease's completion: Stats carry
	// the calibration work (anchor runs, transfers, knee probes) and
	// Points stay empty. RangeID indexes the job's prefetch leases, a
	// separate id space from its ranges.
	Prefetch bool `json:"prefetch,omitempty"`
	// Err, when non-empty, reports the range failed; the coordinator
	// fails the whole query (simulation errors are never partial).
	Err string `json:"err,omitempty"`
	// Trace echoes the lease's trace id; ExecStartNs/ExecEndNs bound
	// the worker's execution window (Unix nanoseconds, the worker's
	// clock) so the coordinator can nest an "exec" span inside the
	// lease envelope it observed. All three are zero when untraced.
	Trace       string `json:"trace,omitempty"`
	ExecStartNs int64  `json:"exec_start_ns,omitempty"`
	ExecEndNs   int64  `json:"exec_end_ns,omitempty"`
	// Deltas, always attached by current workers, carry the lease's
	// worker-local execution-layer counter deltas (run-cache client
	// traffic, pool task throughput, execution wall) — the federated
	// half of the coordinator's per-worker hic_worker_* series; the
	// cluster.Stats counters federate from Stats directly.
	Deltas *WorkerDeltas `json:"deltas,omitempty"`
}

// WorkerDeltas is the worker-local counter movement across one lease:
// what this lease cost the worker beyond the cluster.Stats accounting.
// All fields are deltas (after minus before), so the coordinator can
// sum them per worker without double-counting across leases.
type WorkerDeltas struct {
	// CacheHits/CacheMisses/CacheCollapses are the shared results
	// cache's client-side movement (the HTTP-backed runcache store).
	CacheHits      uint64 `json:"cache_hits,omitempty"`
	CacheMisses    uint64 `json:"cache_misses,omitempty"`
	CacheCollapses uint64 `json:"cache_collapses,omitempty"`
	// PoolTasks is how many runner-pool tasks completed during the
	// lease.
	PoolTasks uint64 `json:"pool_tasks,omitempty"`
	// ExecMS is the lease's execution wall time on the worker.
	ExecMS float64 `json:"exec_ms,omitempty"`
}

// QueryResult is the merged answer: fleet aggregates byte-identical to
// a single-process run, plus the serving metadata operators care about.
type QueryResult struct {
	Stats cluster.Stats `json:"stats"`
	// AggregateHash fingerprints the merged scatter with the same
	// scheme as the committed fleet golden (cluster.PointHasher): equal
	// hash ⇔ byte-identical points in identical order.
	AggregateHash string `json:"aggregate_hash"`
	// Points is the scatter size (hosts × windows).
	Points int `json:"points"`
	// Ranges, Workers, Reassigned, Duplicates describe the sharding:
	// how many ranges the fleet split into, how many workers reported
	// at least one, how many leases expired and were re-dispensed, and
	// how many duplicate completions were rejected (first wins; a
	// nonzero count with correct results is the reassignment path
	// working, not a bug).
	Ranges     int    `json:"ranges"`
	Workers    int    `json:"workers"`
	Reassigned uint64 `json:"reassigned"`
	Duplicates uint64 `json:"duplicates"`
	// Prefetched is how many distinct fidelity signatures the
	// coordinator dispensed as prefetch leases before range execution
	// (0 = prefetch skipped or not applicable).
	Prefetched int `json:"prefetched,omitempty"`
	// MergeSkew is the largest absolute difference between the
	// point-folded aggregates (authoritative — these are what Stats
	// reports) and the range-order merge of the workers' moment
	// partials. Pairwise moment combination agrees with sequential
	// accumulation only to rounding, so a healthy query shows ~1e-16;
	// anything large means a partial was dropped or folded out of
	// order.
	MergeSkew float64 `json:"merge_skew"`
	// ElapsedMS and HostsPerSec are coordinator wall-clock measures of
	// this query.
	ElapsedMS   float64 `json:"elapsed_ms"`
	HostsPerSec float64 `json:"hosts_per_sec"`
	// TraceID, Trace, and Phases are present only on traced queries
	// (QueryRequest.Trace): the assigned trace id, the collected
	// lifecycle spans (coordinator lease envelopes + worker execution
	// windows, sorted by start time), and the wall-clock phase
	// breakdown derived from them. Feed Trace through serve.WallSpans
	// into trace.WriteChromeWallSpans for Perfetto.
	TraceID string      `json:"trace_id,omitempty"`
	Trace   []TraceSpan `json:"trace,omitempty"`
	Phases  *PhaseWall  `json:"phases,omitempty"`
}

// Wire kinds on the NDJSON query response stream.
const (
	// KindPoint lines carry one scatter point (only with Points: true).
	KindPoint = "point"
	// KindRange lines report one range folded into the merge.
	KindRange = "range"
	// KindResult is the final line of a successful query.
	KindResult = "result"
	// KindError is the final line of a failed query.
	KindError = "error"
)

// QueryEvent is one NDJSON line of the query response.
type QueryEvent struct {
	Kind   string         `json:"kind"`
	Point  *cluster.Point `json:"point,omitempty"`
	Range  *RangeDone     `json:"range,omitempty"`
	Result *QueryResult   `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// RangeDone is the progress payload of a KindRange line.
type RangeDone struct {
	RangeID int    `json:"range_id"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Worker  string `json:"worker"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
}

// HTTP mount points of the serve API (the cache mounts are
// runcache.RemoteResultsPath and runcache.RemoteWarmPath).
const (
	QueryPath    = "/api/v1/query"
	RegisterPath = "/api/v1/workers/register"
	NextPath     = "/api/v1/shard/next"
	DonePath     = "/api/v1/shard/done"
	StatusPath   = "/api/v1/status"
	WorkersPath  = "/api/v1/workers"
)

// WorkerInfo is one worker's entry in the fleet health registry
// (GET WorkersPath): liveness, the lease it holds, its lifetime lease
// accounting, and the federated counters the coordinator has folded
// from its completions (the same values /metrics exposes as
// hic_worker_* series).
type WorkerInfo struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// RegisteredAgoSec/LastSeenAgoSec age the worker's registration and
	// most recent contact (register, poll, or completion) in seconds.
	RegisteredAgoSec float64 `json:"registered_ago_sec"`
	LastSeenAgoSec   float64 `json:"last_seen_ago_sec"`
	// Stale means the worker has not been seen for longer than the
	// coordinator's staleness threshold (Options.StaleAfter). A stale
	// worker holding a lease has already been WARNed about on the obs
	// event stream.
	Stale bool `json:"stale,omitempty"`
	// BackoffMS is the worker's self-reported idle poll backoff at its
	// last poll (0 = actively working or polling at base cadence).
	BackoffMS float64 `json:"backoff_ms,omitempty"`
	// Active is the lease the worker currently holds (nil = idle).
	Active *ActiveLease `json:"active,omitempty"`
	// RangesDone/PrefetchesDone count accepted completions;
	// Expirations counts leases this worker held past their deadline
	// (requeued elsewhere); Duplicates counts its completions rejected
	// because a reassigned copy finished first.
	RangesDone     uint64 `json:"ranges_done"`
	PrefetchesDone uint64 `json:"prefetches_done"`
	Expirations    uint64 `json:"expirations,omitempty"`
	Duplicates     uint64 `json:"duplicates,omitempty"`
	// Counters is the federated per-worker accounting: cluster.Stats
	// counters plus worker-local deltas, summed over this worker's
	// accepted completions. Keys are the hic_worker_* series suffixes
	// ("simulated_total", "cache_hits_total", ...), so the registry
	// and /metrics agree by construction — fidelity anchor accounting
	// (anchor_runs_total, anchor_transferred_total, ...) included.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// ActiveLease describes the lease a worker holds right now.
type ActiveLease struct {
	Job     string  `json:"job"`
	RangeID int     `json:"range_id"`
	Kind    string  `json:"kind"` // "range" or "prefetch"
	Lo      int     `json:"lo"`
	Hi      int     `json:"hi"`
	HeldMS  float64 `json:"held_ms"`
}
