package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hic/internal/cluster"
	"hic/internal/fidelity"
	"hic/internal/runcache"
	"hic/internal/runner"
)

// Worker is one shard executor: it registers with a coordinator, polls
// for range leases, runs each through the existing cluster/fidelity
// stack on a private runner pool, and streams the partial back.
//
// Everything expensive stays resident across leases — the pool's
// arenas, the calibrated fidelity routers (keyed by query signature),
// and the HTTP-backed run-cache client — which is what makes the
// second identical query orders of magnitude cheaper than the first.
//
// A worker executes one lease at a time, by design: per-range fidelity
// accounting is a counter delta around the run, which is only exact
// when leases do not overlap on one router.
type WorkerOptions struct {
	// Name labels the worker in coordinator logs and results.
	Name string
	// Threads bounds the private runner pool (0 = GOMAXPROCS). On a
	// shared machine, give each worker cores/workers so co-resident
	// workers split the cores instead of oversubscribing them.
	Threads int
	// Poll is the base idle polling cadence (0 = 50ms). Consecutive
	// empty polls back off exponentially up to maxIdlePoll, and every
	// idle sleep is jittered ±25% so a fleet of workers started
	// together does not hit the coordinator in lockstep; the first poll
	// after any lease returns to the base cadence.
	Poll time.Duration
	// Client overrides the HTTP client (nil = 5-minute timeout, ample
	// for a slow range's /shard/done upload).
	Client *http.Client
	// Log receives one-line diagnostics (nil = silent).
	Log io.Writer
}

// Worker state. Construct with NewWorker; drive with Run.
type Worker struct {
	base string
	opts WorkerOptions
	hc   *http.Client
	pool *runner.Pool

	id    string
	cache *runcache.Store // shared results cache via the coordinator
	warm  *runcache.Store // shared warm store via the coordinator
	rng   *rand.Rand      // poll jitter; used only by the Run goroutine

	mu      sync.Mutex
	routers map[string]*fidelity.Router

	// leases/hosts are lifetime counters (Stats).
	leases, hosts uint64

	// Live state for the worker's own obs plane (MetricsInto), held in
	// atomics so a -listen /metrics scrape never contends with the Run
	// loop: executing is 1 while a lease runs, idleBackoffNs the
	// current idle poll backoff (0 when working), lastLeaseNs when the
	// most recent lease was acquired (Unix ns, 0 before the first).
	executing     atomic.Int64
	idleBackoffNs atomic.Int64
	lastLeaseNs   atomic.Int64

	// Test hooks. abandonAfter > 0 makes Run exit without reporting
	// right after acquiring that many leases — a worker dying
	// mid-range, from the coordinator's point of view. reportDelay
	// stalls completions to widen race windows.
	abandonAfter int
	reportDelay  time.Duration
}

// NewWorker builds a worker for the coordinator at base (e.g.
// "http://127.0.0.1:8080"). The shared run cache and warm store are
// reached through the coordinator's HTTP cache mounts.
func NewWorker(base string, o WorkerOptions) *Worker {
	if o.Poll <= 0 {
		o.Poll = 50 * time.Millisecond
	}
	hc := o.Client
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	// Jitter is de-synchronization, not reproducibility: seed from the
	// clock, salted by the name so same-instant siblings still diverge.
	h := fnv.New64a()
	h.Write([]byte(o.Name)) //nolint:errcheck // fnv never errors
	return &Worker{
		base:    base,
		opts:    o,
		hc:      hc,
		pool:    runner.New(o.Threads),
		cache:   runcache.NewStore(runcache.NewHTTP(runcache.RemoteURL(base, runcache.RemoteResultsPath), hc)),
		warm:    runcache.NewStore(runcache.NewHTTP(runcache.RemoteURL(base, runcache.RemoteWarmPath), hc)),
		routers: make(map[string]*fidelity.Router),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(h.Sum64()))),
	}
}

// maxIdlePoll caps the idle backoff: a worker that has been idle for a
// while still notices a new query within a second.
const maxIdlePoll = time.Second

// nextIdle doubles the idle backoff from base up to maxIdlePoll.
func nextIdle(cur, base time.Duration) time.Duration {
	if cur < base {
		return base
	}
	cur *= 2
	if cur > maxIdlePoll {
		cur = maxIdlePoll
	}
	return cur
}

// jitter spreads a sleep across [0.75d, 1.25d].
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d*3/4 + time.Duration(w.rng.Int63n(int64(d/2)+1))
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Log != nil {
		fmt.Fprintf(w.opts.Log, "worker %s: "+format+"\n", append([]any{w.id}, args...)...)
	}
}

// WorkerStats is a worker's lifetime accounting.
type WorkerStats struct {
	Leases  uint64
	Hosts   uint64
	Routers int
}

// Stats snapshots the worker's lifetime counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{Leases: w.leases, Hosts: w.hosts, Routers: len(w.routers)}
}

// ID returns the coordinator-assigned worker id ("" before Run
// registers). Safe to poll from another goroutine.
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// MetricsInto implements the control plane's MetricSource interface so
// a worker started with -listen is inspectable without a coordinator
// scrape: its own lease/idle state under hic_serve_worker_*, plus the
// private runner pool (hic_pool_*) and the shared-results cache
// client (hic_runcache_*). All reads are atomics or short mutex holds
// — /metrics is served while leases execute.
func (w *Worker) MetricsInto(emit func(name, typ string, v float64)) {
	st := w.Stats()
	emit("hic_serve_worker_leases_total", "counter", float64(st.Leases))
	emit("hic_serve_worker_hosts_total", "counter", float64(st.Hosts))
	emit("hic_serve_worker_routers", "gauge", float64(st.Routers))
	emit("hic_serve_worker_executing", "gauge", float64(w.executing.Load()))
	emit("hic_serve_worker_idle_backoff_ms", "gauge", float64(w.idleBackoffNs.Load())/1e6)
	if t := w.lastLeaseNs.Load(); t > 0 {
		emit("hic_serve_worker_since_last_lease_seconds", "gauge",
			time.Since(time.Unix(0, t)).Seconds())
	}
	w.pool.MetricsInto(emit)
	w.cache.MetricsInto(emit)
}

func (w *Worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := w.hc.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode == http.StatusNoContent {
		return errNoWork
	}
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 1<<10))
		return fmt.Errorf("%s: %s: %s", path, r.Status, bytes.TrimSpace(msg))
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

var errNoWork = fmt.Errorf("no work")

// Run registers and polls for leases until ctx is cancelled, executing
// each range and reporting its partial. Transient coordinator errors
// back off and retry; only ctx cancellation (or the abandon test hook)
// ends the loop.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	taken := 0
	idle := time.Duration(0)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease Lease
		// The poll reports the current idle backoff so the coordinator's
		// health registry shows how deep in backoff an idle worker sits.
		err := w.post(NextPath, map[string]any{
			"worker_id":  w.id,
			"backoff_ms": float64(idle.Nanoseconds()) / 1e6,
		}, &lease)
		switch {
		case err == errNoWork:
			idle = nextIdle(idle, w.opts.Poll)
			w.idleBackoffNs.Store(int64(idle))
			if !sleepCtx(ctx, w.jitter(idle)) {
				return ctx.Err()
			}
			continue
		case err != nil:
			w.logf("poll: %v", err)
			idle = nextIdle(idle, w.opts.Poll*4)
			w.idleBackoffNs.Store(int64(idle))
			if !sleepCtx(ctx, w.jitter(idle)) {
				return ctx.Err()
			}
			continue
		}
		idle = 0
		w.idleBackoffNs.Store(0)
		taken++
		if w.abandonAfter > 0 && taken > w.abandonAfter {
			// Simulated death: the lease is held, never executed, never
			// reported. The coordinator's lease timeout reassigns it.
			w.logf("abandoning lease %s/%d (test hook)", lease.Job, lease.RangeID)
			return nil
		}
		w.mu.Lock()
		w.leases++
		w.mu.Unlock()
		w.lastLeaseNs.Store(time.Now().UnixNano())
		w.executing.Store(1)
		// Bracket execution with the worker-local counter reads that
		// become the lease's federated deltas (and, when the lease is
		// traced, its execution window).
		cacheBefore, poolBefore := w.cache.Stats(), w.pool.Stats()
		execStart := time.Now()
		var partial RangePartial
		if lease.Kind == LeasePrefetch {
			partial = w.executePrefetch(lease)
		} else {
			partial = w.execute(lease)
		}
		execEnd := time.Now()
		w.executing.Store(0)
		cacheAfter, poolAfter := w.cache.Stats(), w.pool.Stats()
		partial.Deltas = &WorkerDeltas{
			CacheHits:      cacheAfter.Hits - cacheBefore.Hits,
			CacheMisses:    cacheAfter.Misses - cacheBefore.Misses,
			CacheCollapses: cacheAfter.Collapses - cacheBefore.Collapses,
			PoolTasks:      poolAfter.TasksDone - poolBefore.TasksDone,
			ExecMS:         float64(execEnd.Sub(execStart).Nanoseconds()) / 1e6,
		}
		if lease.Trace != "" {
			partial.Trace = lease.Trace
			partial.ExecStartNs = execStart.UnixNano()
			partial.ExecEndNs = execEnd.UnixNano()
		}
		if w.reportDelay > 0 {
			sleepCtx(ctx, w.reportDelay)
		}
		var ack struct {
			Accepted bool `json:"accepted"`
		}
		if err := w.post(DonePath, partial, &ack); err != nil {
			w.logf("report %s/%d: %v", lease.Job, lease.RangeID, err)
		} else if !ack.Accepted {
			// The range was reassigned and completed elsewhere first.
			// Correct and expected after a long stall; nothing to undo
			// because the coordinator counted the other completion.
			w.logf("lease %s/%d completed elsewhere (duplicate rejected)", lease.Job, lease.RangeID)
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	for {
		var resp struct {
			WorkerID string `json:"worker_id"`
		}
		err := w.post(RegisterPath, map[string]string{"name": w.opts.Name}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.mu.Unlock()
			return nil
		}
		w.logf("register: %v", err)
		if !sleepCtx(ctx, time.Second) {
			return ctx.Err()
		}
	}
}

// execute runs one leased range through the cluster stack and packages
// the partial. Errors become Err on the partial — the coordinator
// fails the query; a worker never dies from a bad spec.
func (w *Worker) execute(lease Lease) RangePartial {
	p := RangePartial{Job: lease.Job, RangeID: lease.RangeID, Worker: w.id, Lo: lease.Lo, Hi: lease.Hi}
	cfg := lease.Spec.ClusterConfig()
	cfg.Pool = w.pool
	cfg.Log = w.opts.Log
	if !lease.Spec.NoCache {
		cfg.Cache = w.cache
	}
	if lease.Spec.NeedsRouter() {
		router, err := w.routerFor(lease.Spec, cfg)
		if err != nil {
			p.Err = err.Error()
			return p
		}
		cfg.Exec = router
	}
	st, err := cluster.RunRange(cfg, lease.Lo, lease.Hi, func(pt cluster.Point) error {
		p.Points = append(p.Points, pt)
		p.Util.Add(pt.Utilization)
		p.Drop.Add(pt.DropRate)
		return nil
	})
	if err != nil {
		p.Err = err.Error()
		return p
	}
	p.Stats = st
	w.mu.Lock()
	w.hosts += uint64(lease.Hi - lease.Lo)
	w.mu.Unlock()
	return p
}

// executePrefetch calibrates one chunk of the fleet's distinct fidelity
// signatures ahead of range execution: anchor grid or borrowed transfer
// curve, both noise tiers, and the located knee, all landing in the
// shared run cache and warm store. The partial carries only the
// calibration accounting — no points. Errors are reported but the
// coordinator treats them as non-fatal (ranges calibrate lazily).
func (w *Worker) executePrefetch(lease Lease) RangePartial {
	p := RangePartial{Job: lease.Job, RangeID: lease.RangeID, Worker: w.id,
		Lo: lease.Lo, Hi: lease.Hi, Prefetch: true}
	cfg := lease.Spec.ClusterConfig()
	cfg.Pool = w.pool
	cfg.Log = w.opts.Log
	if !lease.Spec.NoCache {
		cfg.Cache = w.cache
	}
	if !lease.Spec.NeedsRouter() {
		return p
	}
	router, err := w.routerFor(lease.Spec, cfg)
	if err != nil {
		p.Err = err.Error()
		return p
	}
	cluster.InstallRoster(cfg, router)
	before := router.Counters()
	for _, rep := range lease.Reps {
		params, _ := cluster.HostScenario(cfg, rep)
		if perr := router.Prefetch(params); perr != nil {
			p.Err = perr.Error()
			break
		}
	}
	p.Stats = cluster.RouterDelta(before, router.Counters())
	w.logf("prefetch %s/%d: %d signatures, %d anchor runs (%d transferred, %d refined), %d knee probes",
		lease.Job, lease.RangeID, len(lease.Reps), p.Stats.AnchorRuns,
		p.Stats.AnchorTransferred, p.Stats.AnchorRefined, p.Stats.KneeProbes)
	return p
}

// routerFor returns the resident router for the query's fidelity
// signature, building and caching it on first use. Keeping routers
// resident is the warm-query fast path: the second identical query
// reuses the calibration (anchor runs already memoized), so its
// AnchorRuns report zero.
func (w *Worker) routerFor(spec QueryRequest, cfg cluster.Config) (*fidelity.Router, error) {
	sig := spec.FidelitySignature()
	w.mu.Lock()
	r, ok := w.routers[sig]
	w.mu.Unlock()
	if ok {
		return r, nil
	}
	fcfg := fidelity.Config{
		Tol:            spec.Tol,
		AuditRate:      spec.AuditRate,
		EarlyStop:      spec.EarlyStop,
		AnchorSeeds:    cluster.SeedPool(cfg),
		Log:            w.opts.Log,
		KneeSearch:     !spec.NoKneeSearch,
		KneeRadius:     spec.KneeRadius,
		Transfer:       !spec.NoTransfer,
		TransferRadius: spec.TransferRadius,
	}
	if spec.Fidelity != "" {
		mode, err := fidelity.ParseMode(spec.Fidelity)
		if err != nil {
			return nil, err
		}
		fcfg.Mode = mode
	}
	if !spec.NoCache {
		fcfg.Cache = w.cache
	}
	if spec.Warm != "" && spec.Warm != string(fidelity.WarmOff) {
		warm, err := fidelity.ParseWarmMode(spec.Warm)
		if err != nil {
			return nil, err
		}
		fcfg.Warm = warm
		fcfg.WarmStore = w.warm
	}
	r, err := fidelity.New(fcfg)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	// Lost race: keep the first router so calibration state is shared.
	if prior, ok := w.routers[sig]; ok {
		r = prior
	} else {
		w.routers[sig] = r
	}
	w.mu.Unlock()
	return r, nil
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
