package serve

import (
	"sync"
	"time"

	"hic/internal/trace"
)

// TraceSpan is one wall-clock slice of a traced query's lifecycle, as
// carried on the result: coordinator-observed lease envelopes plus
// worker-reported execution windows, each attributed to a track (the
// coordinator or one worker). It mirrors trace.WallSpan field-for-field
// so results convert losslessly for the Chrome exporter.
type TraceSpan struct {
	Name    string             `json:"name"`
	Track   string             `json:"track"`
	StartNs int64              `json:"start_ns"`
	EndNs   int64              `json:"end_ns"`
	Args    map[string]float64 `json:"args,omitempty"`
}

// WallSpans converts result spans to the exporter's type, in place of a
// shared struct (serve's wire types never leak internal/trace's).
func WallSpans(spans []TraceSpan) []trace.WallSpan {
	out := make([]trace.WallSpan, len(spans))
	for i, sp := range spans {
		out[i] = trace.WallSpan{Name: sp.Name, Track: sp.Track,
			StartNs: sp.StartNs, EndNs: sp.EndNs, Args: sp.Args}
	}
	return out
}

// PhaseWall is a traced query's wall-clock phase breakdown, derived
// from the spans: queue (arrival to first lease dispensed), prefetch
// (arrival to the prefetch barrier releasing), execute (first range
// lease dispensed to last range completion), merge (first fold to the
// result assembled). Phases overlap by construction — ranges merge
// while others still execute — so the parts exceed the elapsed wall.
type PhaseWall struct {
	QueueMS    float64 `json:"queue_ms"`
	PrefetchMS float64 `json:"prefetch_ms"`
	ExecuteMS  float64 `json:"execute_ms"`
	MergeMS    float64 `json:"merge_ms"`
}

// queryTrace collects one traced query's spans. A nil *queryTrace is
// the disabled state: every method no-ops without allocating or
// locking, so untraced queries pay a nil check per would-be span — the
// same zero-overhead discipline as the obs sink (pinned by
// TestServeTraceDisabledZeroAlloc in the Makefile's check-tests).
//
// Its own mutex (not the server's) serializes appends: lease
// completions record spans from handler goroutines while the query
// handler records merge progress.
type queryTrace struct {
	mu    sync.Mutex
	spans []TraceSpan

	// Phase endpoints, recorded as they happen (zero = never reached).
	arrival       time.Time
	firstGrant    time.Time
	barrierDone   time.Time
	firstRangeRun time.Time
	lastRangeDone time.Time
	firstFold     time.Time
}

func newQueryTrace(arrival time.Time) *queryTrace {
	return &queryTrace{arrival: arrival}
}

// span appends one slice. Safe on nil.
func (t *queryTrace) span(name, track string, start, end time.Time, args map[string]float64) {
	if t == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.mu.Lock()
	t.spans = append(t.spans, TraceSpan{Name: name, Track: track,
		StartNs: start.UnixNano(), EndNs: end.UnixNano(), Args: args})
	t.mu.Unlock()
}

// grant notes a lease dispensed at now. Safe on nil.
func (t *queryTrace) grant(kind string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.firstGrant.IsZero() {
		t.firstGrant = now
	}
	if kind != LeasePrefetch && t.firstRangeRun.IsZero() {
		t.firstRangeRun = now
	}
	t.mu.Unlock()
}

// rangeDone notes a range completion folded-ready at now. Safe on nil.
func (t *queryTrace) rangeDone(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if now.After(t.lastRangeDone) {
		t.lastRangeDone = now
	}
	t.mu.Unlock()
}

// barrier notes the prefetch barrier releasing at now. Safe on nil.
func (t *queryTrace) barrier(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.barrierDone.IsZero() {
		t.barrierDone = now
	}
	t.mu.Unlock()
}

// fold notes a partial folding into the merge at now. Safe on nil.
func (t *queryTrace) fold(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.firstFold.IsZero() {
		t.firstFold = now
	}
	t.mu.Unlock()
}

// finish closes the lifecycle spans and returns the sorted span list
// plus the phase breakdown. Called once, after the merge completes.
func (t *queryTrace) finish(now time.Time) ([]TraceSpan, *PhaseWall) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ph := &PhaseWall{}
	addSpan := func(name string, start, end time.Time) float64 {
		if start.IsZero() || end.IsZero() || end.Before(start) {
			return 0
		}
		t.spans = append(t.spans, TraceSpan{Name: name, Track: "coordinator",
			StartNs: start.UnixNano(), EndNs: end.UnixNano()})
		return float64(end.Sub(start).Nanoseconds()) / 1e6
	}
	ph.QueueMS = addSpan("queue", t.arrival, t.firstGrant)
	if !t.barrierDone.IsZero() {
		ph.PrefetchMS = addSpan("prefetch barrier", t.arrival, t.barrierDone)
	}
	ph.ExecuteMS = addSpan("execute", t.firstRangeRun, t.lastRangeDone)
	ph.MergeMS = addSpan("merge", t.firstFold, now)

	out := append([]TraceSpan(nil), t.spans...)
	sortTraceSpans(out)
	return out, ph
}

// sortTraceSpans orders spans by start, track, name — the stable order
// results carry (and the exporter preserves).
func sortTraceSpans(spans []TraceSpan) {
	ws := WallSpans(spans)
	trace.SortWallSpans(ws)
	for i, sp := range ws {
		spans[i] = TraceSpan{Name: sp.Name, Track: sp.Track,
			StartNs: sp.StartNs, EndNs: sp.EndNs, Args: sp.Args}
	}
}
