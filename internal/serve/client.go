package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client issues what-if queries against a coordinator.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at base. nil hc uses
// http.DefaultClient (queries stream indefinitely; rely on ctx, not a
// client timeout, to bound them).
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// Query posts q and consumes the NDJSON response. Every line is handed
// to onEvent (nil = discard progress and points); the final result is
// returned. A KindError line, a malformed stream, or a non-200 status
// becomes an error.
func (c *Client) Query(ctx context.Context, q QueryRequest, onEvent func(QueryEvent) error) (*QueryResult, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+QueryPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("serve: query: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e QueryEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("serve: bad response line: %w", err)
		}
		switch e.Kind {
		case KindResult:
			if e.Result == nil {
				return nil, fmt.Errorf("serve: result line without a result")
			}
			return e.Result, nil
		case KindError:
			return nil, fmt.Errorf("serve: query failed: %s", e.Error)
		}
		if onEvent != nil {
			if err := onEvent(e); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading response: %w", err)
	}
	return nil, fmt.Errorf("serve: response ended without a result (coordinator died mid-query?)")
}
