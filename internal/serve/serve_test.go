package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hic/internal/cluster"
	"hic/internal/host"
	"hic/internal/obs"
	"hic/internal/runcache"
)

// harness is a coordinator on a loopback listener plus its workers —
// the full wire path (lease protocol, HTTP cache mounts), nothing
// mocked.
type harness struct {
	t       *testing.T
	srv     *Server
	ts      *httptest.Server
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	workers []*Worker
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	if opts.Store == nil {
		store, err := runcache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = store
	}
	if opts.WarmStore == nil {
		warm, err := runcache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.WarmStore = warm
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, srv: srv, ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(h.close)
	return h
}

func (h *harness) close() {
	if h.cancel != nil {
		h.cancel()
	}
	h.wg.Wait()
	h.ts.Close()
}

// startWorkers launches n workers and waits until all are registered.
func (h *harness) startWorkers(n int, tweak func(i int, w *Worker)) {
	h.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	for i := 0; i < n; i++ {
		w := NewWorker(h.ts.URL, WorkerOptions{
			Name:    "tw",
			Threads: 2,
			Poll:    5 * time.Millisecond,
		})
		if tweak != nil {
			tweak(i, w)
		}
		h.workers = append(h.workers, w)
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			w.Run(ctx) //nolint:errcheck // ends on cancel
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, w := range h.workers {
		for w.ID() == "" {
			if time.Now().After(deadline) {
				h.t.Fatal("workers did not register")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func (h *harness) query(q QueryRequest) (*QueryResult, []cluster.Point) {
	h.t.Helper()
	var pts []cluster.Point
	res, err := NewClient(h.ts.URL, nil).Query(context.Background(), q,
		func(e QueryEvent) error {
			if e.Kind == KindPoint && e.Point != nil {
				pts = append(pts, *e.Point)
			}
			return nil
		})
	if err != nil {
		h.t.Fatal(err)
	}
	return res, pts
}

// quickQuery matches the cluster package's quickConfig so results can
// be cross-checked against a direct single-process run.
func quickQuery(hosts int) QueryRequest {
	return QueryRequest{
		Hosts:      hosts,
		Seed:       1,
		WarmupMS:   3,
		MeasureMS:  5,
		NoCache:    true, // byte-golden path: no cache, no router
		Points:     true,
		TimeoutSec: 120,
	}
}

// singleProcess runs the same scenario unsharded and returns the
// reference scatter.
func singleProcess(t *testing.T, q QueryRequest) ([]cluster.Point, cluster.Stats) {
	t.Helper()
	cfg := q.ClusterConfig()
	var pts []cluster.Point
	st, err := cluster.RunStream(cfg, func(p cluster.Point) error {
		pts = append(pts, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts, st
}

// TestShardedQueryMatchesSingleProcess is the core tentpole invariant:
// a query sharded across two workers over the wire merges to aggregates
// byte-identical to one in-process run — same point stream, same hash,
// same Stats scatter fields — regardless of which worker ran what.
func TestShardedQueryMatchesSingleProcess(t *testing.T) {
	h := newHarness(t, Options{LeaseTimeout: 30 * time.Second})
	h.startWorkers(2, nil)

	q := quickQuery(48)
	q.RangeHosts = 5 // 10 ranges: both workers participate
	res, streamed := h.query(q)

	ref, refStats := singleProcess(t, q)
	if got, want := res.AggregateHash, cluster.HashPoints(ref); got != want {
		t.Errorf("sharded hash %s != single-process %s", got, want)
	}
	if got, want := cluster.HashPoints(streamed), cluster.HashPoints(ref); got != want {
		t.Errorf("streamed points diverge from the single-process scatter")
	}
	if res.Points != len(ref) {
		t.Errorf("merged %d points, want %d", res.Points, len(ref))
	}
	// Scatter statistics (including the order-sensitive reservoir
	// quantiles) must match exactly; execution accounting differs by
	// construction (dedup is per-worker, not global).
	got, want := res.Stats, refStats
	got.Simulated, got.Collapsed = want.Simulated, want.Collapsed
	if got != want {
		t.Errorf("merged stats:\n%+v\nwant:\n%+v", got, want)
	}
	if res.MergeSkew > 1e-9 {
		t.Errorf("merge skew %g (the moment cross-check disagrees with the point fold)", res.MergeSkew)
	}
	if res.Ranges != 10 {
		t.Errorf("ranges = %d, want 10", res.Ranges)
	}
	if res.Workers != 2 {
		t.Errorf("workers = %d, want 2 (both should report ranges)", res.Workers)
	}
	if res.Reassigned != 0 || res.Duplicates != 0 {
		t.Errorf("healthy run reassigned %d / rejected %d", res.Reassigned, res.Duplicates)
	}
}

// TestWorkerFailureReassigns is the failure-path satellite: a worker
// that dies holding a lease must not lose the range or corrupt the
// merge. The coordinator reassigns after the lease times out and the
// merged aggregates still byte-match a healthy single-worker run, with
// no range double-counted.
func TestWorkerFailureReassigns(t *testing.T) {
	// The lease timeout must comfortably exceed one healthy range's
	// runtime (else slow-but-alive workers get spuriously reassigned),
	// so keep ranges tiny and windows short.
	h := newHarness(t, Options{LeaseTimeout: 5 * time.Second})
	h.startWorkers(2, func(i int, w *Worker) {
		if i == 0 {
			// Completes one range, then dies holding its second lease.
			w.abandonAfter = 1
		}
	})

	q := quickQuery(16)
	q.WarmupMS, q.MeasureMS = 1, 2
	q.RangeHosts = 2 // 8 ranges
	res, _ := h.query(q)

	ref, _ := singleProcess(t, q)
	if got, want := res.AggregateHash, cluster.HashPoints(ref); got != want {
		t.Errorf("post-failure hash %s != single-process %s", got, want)
	}
	if res.Points != len(ref) {
		t.Errorf("merged %d points, want %d (a double-counted or dropped range would change this)",
			res.Points, len(ref))
	}
	if res.Reassigned == 0 {
		t.Error("no lease was reassigned — the dead worker's range was never reclaimed")
	}
	// Duplicates are tolerated (a spuriously reassigned range completing
	// twice), but never double-counted: the point count and hash above
	// are the real invariant.
}

// TestDuplicateCompletionRejected pins first-completion-wins directly:
// replaying a /shard/done body must be rejected, not merged twice.
func TestDuplicateCompletionRejected(t *testing.T) {
	h := newHarness(t, Options{LeaseTimeout: time.Hour})
	h.startWorkers(1, nil)
	w := h.workers[0]

	// Drive the protocol by hand: one-job range, executed twice.
	q := quickQuery(4)
	q.RangeHosts = 4
	resCh := make(chan *QueryResult, 1)
	go func() {
		res, _ := h.query(q)
		resCh <- res
	}()

	// The real worker completes the single range; wait for the result.
	res := <-resCh
	if res.Duplicates != 0 {
		t.Fatalf("clean run rejected %d duplicates", res.Duplicates)
	}

	// Now replay a stale completion for a finished (deleted) job: the
	// coordinator must refuse it rather than resurrect state.
	stale := RangePartial{Job: "q1", RangeID: 0, Worker: w.ID(), Lo: 0, Hi: 4}
	body, _ := json.Marshal(stale)
	resp, err := http.Post(h.ts.URL+DonePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack struct {
		Accepted bool `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Error("stale completion for a finished job was accepted")
	}
}

// TestResidentStateMakesSecondQueryWarm is the serving point: the
// second identical query is served from resident routers and the
// shared cache — zero anchor runs, zero new simulations, identical
// aggregates.
func TestResidentStateMakesSecondQueryWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibrated fleet twice")
	}
	h := newHarness(t, Options{LeaseTimeout: 30 * time.Second})
	h.startWorkers(1, nil)

	q := QueryRequest{
		Hosts: 48, Seed: 1, WarmupMS: 2, MeasureMS: 4,
		Fidelity: "auto", Tol: 0.08, EarlyStop: true,
		RangeHosts: 12, TimeoutSec: 300,
	}
	cold, _ := h.query(q)
	if cold.Stats.AnchorRuns == 0 {
		t.Error("cold auto query calibrated nothing")
	}
	if cold.Prefetched == 0 {
		t.Error("cold auto query dispensed no prefetch leases (signature extraction broke)")
	}
	warm, _ := h.query(q)
	if warm.AggregateHash != cold.AggregateHash {
		t.Errorf("warm hash %s != cold %s (residency must not change results)",
			warm.AggregateHash, cold.AggregateHash)
	}
	if warm.Stats.AnchorRuns != 0 {
		t.Errorf("warm query ran %d anchors, want 0 (router must stay resident)", warm.Stats.AnchorRuns)
	}
	if warm.Stats.Simulated != 0 {
		t.Errorf("warm query simulated %d hosts, want 0 (cache + resident calibration)", warm.Stats.Simulated)
	}
	ws := h.workers[0].Stats()
	if ws.Routers != 1 {
		t.Errorf("worker holds %d routers, want 1 shared across both queries", ws.Routers)
	}
}

// TestQueryValidation: malformed queries are rejected up front, before
// any lease is cut.
func TestQueryValidation(t *testing.T) {
	h := newHarness(t, Options{})
	for _, bad := range []string{
		`{"hosts": 0}`,
		`{"hosts": -3}`,
		`{"hosts": 8, "fidelity": "psychic"}`,
		`{"hosts": 8, "warm": "lukewarm"}`,
		`{"hosts": 8, "range_hosts": -1}`,
		`{not json`,
	} {
		resp, err := http.Post(h.ts.URL+QueryPath, "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Unregistered workers cannot take leases.
	resp, err := http.Post(h.ts.URL+NextPath, "application/json", strings.NewReader(`{"worker_id":"ghost"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("ghost worker poll: status %d, want 403", resp.StatusCode)
	}
}

// TestCacheMountsServeSharedStores: the coordinator's cache mounts are
// live runcache HTTP backends — a worker-side store dedups through
// them, and warm blobs round-trip.
func TestCacheMountsServeSharedStores(t *testing.T) {
	h := newHarness(t, Options{})

	remote := runcache.NewStore(runcache.NewHTTP(
		runcache.RemoteURL(h.ts.URL, runcache.RemoteResultsPath), nil))
	key := strings.Repeat("ab", 32)
	computes := 0
	compute := func() (host.Results, error) {
		computes++
		return host.Results{LinkUtilization: 0.5}, nil
	}
	if _, err := remote.GetOrCompute(key, "v", "canon", compute); err != nil {
		t.Fatal(err)
	}
	// A second client (fresh mem layer) dedups through the mount.
	remote2 := runcache.NewStore(runcache.NewHTTP(
		runcache.RemoteURL(h.ts.URL, runcache.RemoteResultsPath), nil))
	if _, err := remote2.GetOrCompute(key, "v", "canon", compute); err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Errorf("computed %d times through the results mount, want 1", computes)
	}
	// The entry landed in the coordinator's disk store.
	if !h.srv.opts.Store.Contains(key, "v", "canon") {
		t.Error("results mount did not persist to the coordinator store")
	}

	warm := runcache.NewStore(runcache.NewHTTP(
		runcache.RemoteURL(h.ts.URL, runcache.RemoteWarmPath), nil))
	bkey := strings.Repeat("cd", 32)
	type ckpt struct{ Blob string }
	if err := warm.PutBlob(bkey, "v", "canon", ckpt{Blob: "checkpoint"}); err != nil {
		t.Fatal(err)
	}
	var got ckpt
	if ok := warm.GetBlob(bkey, "v", "canon", &got); !ok || got.Blob != "checkpoint" {
		t.Errorf("warm blob round trip = %+v, %v", got, ok)
	}
}

// TestObsSharesCoordinatorMux: with a control plane configured, one
// mux serves both the query API and /metrics (the single-port
// satellite), and a query registers as a tracked run.
func TestObsSharesCoordinatorMux(t *testing.T) {
	osrv := obs.NewServer(obs.Options{})
	h := newHarness(t, Options{Obs: osrv, LeaseTimeout: 30 * time.Second})
	h.startWorkers(1, nil)

	q := quickQuery(8)
	q.Points = false
	h.query(q)

	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if !strings.Contains(buf.String(), "hic_obs_uptime_seconds") {
		t.Error("/metrics not served from the coordinator mux")
	}
	if !strings.Contains(buf.String(), `run="serve:`) {
		t.Errorf("query did not register as a tracked run:\n%.400s", buf.String())
	}

	var st struct {
		Workers  int    `json:"workers"`
		Queries  uint64 `json:"queries"`
		RangesOK uint64 `json:"ranges_completed"`
	}
	sresp, err := http.Get(h.ts.URL + StatusPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 || st.Queries != 1 || st.RangesOK == 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestSplitRanges pins the shard granularity rules.
func TestSplitRanges(t *testing.T) {
	rs := splitRanges(100, 0, 2)
	if len(rs) != 17 { // 100/(2*8)=6 per range
		t.Errorf("auto split gave %d ranges", len(rs))
	}
	covered := 0
	prev := 0
	for _, r := range rs {
		if r.lo != prev {
			t.Fatalf("gap or overlap at %d", r.lo)
		}
		covered += r.hi - r.lo
		prev = r.hi
	}
	if covered != 100 {
		t.Errorf("ranges cover %d hosts, want 100", covered)
	}
	if n := len(splitRanges(10, 4, 1)); n != 3 {
		t.Errorf("explicit split gave %d ranges, want 3", n)
	}
	if n := len(splitRanges(3, 0, 16)); n != 3 {
		t.Errorf("tiny fleet split gave %d ranges, want 3 single-host ranges", n)
	}
}
