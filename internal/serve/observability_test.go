package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hic/internal/cluster"
	"hic/internal/obs"
	"hic/internal/trace"
)

// TestTracedQueryByteIdenticalWithSpans is the tracing tentpole's
// contract: a traced query returns the full lifecycle as spans — queue
// and merge on the coordinator track, one track per worker carrying
// its lease envelopes and execution windows — while the merged hash
// stays byte-identical to the untraced and single-process runs.
func TestTracedQueryByteIdenticalWithSpans(t *testing.T) {
	h := newHarness(t, Options{LeaseTimeout: 30 * time.Second})
	h.startWorkers(2, nil)

	q := quickQuery(24)
	q.Points = false
	q.RangeHosts = 3 // 8 ranges: both workers participate
	plain, _ := h.query(q)

	q.Trace = true
	traced, _ := h.query(q)

	ref, _ := singleProcess(t, q)
	if traced.AggregateHash != plain.AggregateHash || traced.AggregateHash != cluster.HashPoints(ref) {
		t.Errorf("tracing changed bytes: traced %s, untraced %s, single-process %s",
			traced.AggregateHash, plain.AggregateHash, cluster.HashPoints(ref))
	}
	if plain.TraceID != "" || len(plain.Trace) != 0 || plain.Phases != nil {
		t.Errorf("untraced result carries trace payload: id=%q spans=%d", plain.TraceID, len(plain.Trace))
	}
	if traced.TraceID == "" {
		t.Fatal("traced result has no trace id")
	}

	// Every lifecycle stage is present, attributed to the right track.
	tracks := map[string]bool{}
	names := map[string]int{}
	workerRangeSpans, execSpans := 0, 0
	for _, sp := range traced.Trace {
		tracks[sp.Track] = true
		names[sp.Name]++
		if sp.EndNs < sp.StartNs {
			t.Errorf("span %q ends before it starts", sp.Name)
		}
		if strings.HasPrefix(sp.Track, "worker ") {
			if strings.HasPrefix(sp.Name, "range ") {
				workerRangeSpans++
				if sp.Args["points"] <= 0 {
					t.Errorf("range span %q has no points arg: %v", sp.Name, sp.Args)
				}
			}
			if sp.Name == "exec" {
				execSpans++
			}
		}
	}
	if names["queue"] != 1 || names["merge"] != 1 || names["execute"] != 1 {
		t.Errorf("coordinator lifecycle spans missing: %v", names)
	}
	if !tracks["coordinator"] {
		t.Errorf("no coordinator track in %v", tracks)
	}
	// One track per worker that reported a range.
	if got := len(tracks) - 1; got != traced.Workers {
		t.Errorf("%d worker tracks, want %d (tracks %v)", got, traced.Workers, tracks)
	}
	if workerRangeSpans != traced.Ranges {
		t.Errorf("%d range spans, want %d", workerRangeSpans, traced.Ranges)
	}
	if execSpans != traced.Ranges {
		t.Errorf("%d exec spans, want %d (every lease reports its execution window)", execSpans, traced.Ranges)
	}

	// Phase breakdown is populated and plausible.
	if traced.Phases == nil {
		t.Fatal("traced result has no phase breakdown")
	}
	if traced.Phases.ExecuteMS <= 0 || traced.Phases.MergeMS <= 0 {
		t.Errorf("phases = %+v, want positive execute/merge", traced.Phases)
	}
	if traced.Phases.PrefetchMS != 0 {
		t.Errorf("plain-DES query reports a prefetch phase: %+v", traced.Phases)
	}

	// The spans export as a loadable Chrome trace with one named thread
	// per track.
	var buf bytes.Buffer
	if err := trace.WriteChromeWallSpans(&buf, "query "+traced.TraceID, WallSpans(traced.Trace)); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threadNames[ev.Args["name"].(string)] = true
		}
	}
	for track := range tracks {
		if !threadNames[track] {
			t.Errorf("track %q has no thread_name metadata in the export", track)
		}
	}
}

// TestWorkerFailureVisibility is the lease-expiry observability
// satellite: a worker dying mid-range must surface on every plane —
// lease_expired (and an early worker_stale WARN) on the obs event
// stream, a stale registry entry with the expiry attributed — while
// the merged hash stays byte-identical.
func TestWorkerFailureVisibility(t *testing.T) {
	osrv := obs.NewServer(obs.Options{Warn: io.Discard})
	h := newHarness(t, Options{Obs: osrv, LeaseTimeout: 5 * time.Second})
	h.startWorkers(2, func(i int, w *Worker) {
		if i == 0 {
			// Completes one range, then dies holding its second lease.
			w.abandonAfter = 1
		}
	})
	dead := h.workers[0]

	q := quickQuery(16)
	q.WarmupMS, q.MeasureMS = 1, 2
	q.RangeHosts = 2 // 8 ranges
	res, _ := h.query(q)

	ref, _ := singleProcess(t, q)
	if got, want := res.AggregateHash, cluster.HashPoints(ref); got != want {
		t.Errorf("post-failure hash %s != single-process %s", got, want)
	}
	if res.Reassigned == 0 {
		t.Fatal("no lease was reassigned — the test did not exercise expiry")
	}

	// The event stream shows the lifecycle: grants, completions, the
	// stale WARN, and the expiry — stale strictly before expiry (early
	// notice is the point).
	resp, err := http.Get(h.ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var staleSeq, expireSeq uint64
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		kinds[e.Kind]++
		switch e.Kind {
		case obs.KindWorkerStale:
			if e.Key != dead.ID() {
				t.Errorf("worker_stale names %q, want the dead worker %q", e.Key, dead.ID())
			}
			if staleSeq == 0 {
				staleSeq = e.Seq
			}
		case obs.KindLeaseExpired:
			if e.Key != dead.ID() {
				t.Errorf("lease_expired names %q, want the dead worker %q", e.Key, dead.ID())
			}
			if expireSeq == 0 {
				expireSeq = e.Seq
			}
		}
	}
	if kinds[obs.KindLeaseGrant] == 0 || kinds[obs.KindLeaseDone] == 0 {
		t.Errorf("lease lifecycle events missing: %v", kinds)
	}
	if expireSeq == 0 {
		t.Fatalf("no lease_expired event emitted; kinds: %v", kinds)
	}
	if staleSeq == 0 {
		t.Fatalf("no worker_stale WARN emitted; kinds: %v", kinds)
	}
	if staleSeq >= expireSeq {
		t.Errorf("worker_stale (seq %d) did not precede lease_expired (seq %d)", staleSeq, expireSeq)
	}

	// The registry shows the dead worker stale with the expiry
	// attributed, and the survivor fresh.
	var reg struct {
		Workers       []WorkerInfo `json:"workers"`
		StaleAfterSec float64      `json:"stale_after_sec"`
	}
	wresp, err := http.Get(h.ts.URL + WorkersPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if err := json.NewDecoder(wresp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Workers) != 2 {
		t.Fatalf("registry has %d workers, want 2", len(reg.Workers))
	}
	for _, info := range reg.Workers {
		if info.ID == dead.ID() {
			if !info.Stale {
				t.Errorf("dead worker not stale: %+v", info)
			}
			if info.Expirations == 0 {
				t.Errorf("dead worker has no expirations attributed: %+v", info)
			}
		} else if info.Stale {
			t.Errorf("surviving worker marked stale: %+v", info)
		}
	}
}

// TestFederatedMetricsSumToMergedCounters is the federation tentpole's
// contract plus the golden exposition gate: the coordinator's /metrics
// exposes per-worker hic_worker_* series (validated through
// obs.ParseProm) whose per-counter sums equal the merged query's
// counters, with label-free hic_workers_* fleet rollups agreeing.
func TestFederatedMetricsSumToMergedCounters(t *testing.T) {
	osrv := obs.NewServer(obs.Options{Warn: io.Discard})
	h := newHarness(t, Options{Obs: osrv, LeaseTimeout: 30 * time.Second})
	h.startWorkers(2, nil)

	q := quickQuery(24)
	q.Points = false
	q.NoCache = false // exercise the cache so collapse/hit deltas flow
	q.RangeHosts = 3  // 8 ranges
	res, _ := h.query(q)

	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("coordinator exposition does not parse: %v", err)
	}

	sumOf := func(name string) float64 {
		var sum float64
		for _, s := range doc.Find(name) {
			if s.Labels["worker"] == "" {
				t.Errorf("%s sample missing worker label: %+v", name, s)
			}
			sum += s.Value
		}
		return sum
	}
	// Per-worker series sum to the merged query's counters.
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"hic_worker_hosts_done_total", float64(res.Stats.Hosts)},
		{"hic_worker_simulated_total", float64(res.Stats.Simulated)},
		{"hic_worker_collapsed_total", float64(res.Stats.Collapsed)},
	} {
		if got := sumOf(tc.name); got != tc.want {
			t.Errorf("sum(%s) = %g, want %g (the merged query's counter)", tc.name, got, tc.want)
		}
	}
	if got := sumOf("hic_worker_ranges_done_total"); got != float64(res.Ranges) {
		t.Errorf("sum(hic_worker_ranges_done_total) = %g, want %d", got, res.Ranges)
	}

	// Fleet rollups are the label-free sums of the labeled series.
	for _, name := range []string{"simulated_total", "hosts_done_total"} {
		rolled, err := doc.Value("hic_workers_" + name)
		if err != nil {
			t.Errorf("fleet rollup hic_workers_%s: %v", name, err)
			continue
		}
		if got := sumOf("hic_worker_" + name); rolled != got {
			t.Errorf("hic_workers_%s = %g, want the per-worker sum %g", name, rolled, got)
		}
	}

	// Golden exposition: the federated name set is present and typed.
	for _, name := range []string{
		"hic_worker_last_seen_seconds", "hic_worker_stale", "hic_worker_backoff_ms",
		"hic_worker_active_lease", "hic_worker_ranges_done_total",
		"hic_worker_prefetches_done_total", "hic_worker_expirations_total",
		"hic_worker_duplicates_total", "hic_worker_hosts_done_total",
		"hic_worker_simulated_total", "hic_worker_exec_ms_total",
		"hic_worker_pool_tasks_total",
		"hic_workers_registered", "hic_workers_stale", "hic_workers_active_leases",
		"hic_workers_ranges_done_total", "hic_workers_simulated_total",
	} {
		if len(doc.Find(name)) == 0 {
			t.Errorf("exposition is missing %s", name)
		}
		if doc.Types[name] == "" {
			t.Errorf("%s has no TYPE line", name)
		}
	}

	// The registry endpoint agrees with the exposition by construction:
	// same counters map, same fold.
	var reg struct {
		Workers []WorkerInfo `json:"workers"`
	}
	wresp, err := http.Get(h.ts.URL + WorkersPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if err := json.NewDecoder(wresp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	var regSum float64
	for _, info := range reg.Workers {
		if info.Stale {
			t.Errorf("healthy worker marked stale: %+v", info)
		}
		regSum += info.Counters["simulated_total"]
	}
	if regSum != float64(res.Stats.Simulated) {
		t.Errorf("registry simulated sum %g != merged %d", regSum, res.Stats.Simulated)
	}
}

// TestWorkerMetricSource pins the worker's own -listen plane surface:
// lease counters, idle/backoff state, and the resident pool and cache
// series, all through a live scrape.
func TestWorkerMetricSource(t *testing.T) {
	h := newHarness(t, Options{LeaseTimeout: 30 * time.Second})
	h.startWorkers(1, nil)

	q := quickQuery(8)
	q.Points = false
	q.RangeHosts = 4
	h.query(q)

	// Let the worker hit at least one empty poll so backoff is live.
	time.Sleep(30 * time.Millisecond)

	osrv := obs.NewServer(obs.Options{Warn: io.Discard})
	osrv.AddSource(h.workers[0])
	var buf bytes.Buffer
	if err := osrv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := obs.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("worker exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, err := doc.Value("hic_serve_worker_leases_total"); err != nil || v < 2 {
		t.Errorf("hic_serve_worker_leases_total = %g (%v), want >= 2", v, err)
	}
	if v, err := doc.Value("hic_serve_worker_hosts_total"); err != nil || v != 8 {
		t.Errorf("hic_serve_worker_hosts_total = %g (%v), want 8", v, err)
	}
	if v, err := doc.Value("hic_serve_worker_executing"); err != nil || v != 0 {
		t.Errorf("hic_serve_worker_executing = %g (%v), want 0 (idle)", v, err)
	}
	if v, err := doc.Value("hic_serve_worker_idle_backoff_ms"); err != nil || v <= 0 {
		t.Errorf("hic_serve_worker_idle_backoff_ms = %g (%v), want > 0 after empty polls", v, err)
	}
	for _, name := range []string{"hic_pool_workers", "hic_runcache_hits_total",
		"hic_serve_worker_since_last_lease_seconds", "hic_serve_worker_routers"} {
		if len(doc.Find(name)) == 0 {
			t.Errorf("worker exposition is missing %s\n%s", name, buf.String())
		}
	}
}

// TestServeTraceDisabledZeroAlloc pins the zero-overhead-when-disabled
// discipline for query tracing: on an untraced query every trace hook
// is a method on a nil *queryTrace, and none of them may allocate.
// Run by name in the Makefile's check-tests under the plain runtime.
func TestServeTraceDisabledZeroAlloc(t *testing.T) {
	var qt *queryTrace
	t0 := time.Now()
	t1 := t0.Add(time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		qt.grant("range", t0)
		qt.span("range 0 [0,8)", "worker w1", t0, t1, nil)
		qt.rangeDone(t1)
		qt.barrier(t1)
		qt.fold(t1)
		if spans, phases := qt.finish(t1); spans != nil || phases != nil {
			t.Fatal("nil trace produced output")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled trace path allocates %.1f per query lifecycle, want 0", allocs)
	}
}
