package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"hic/internal/cluster"
	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/stats"
)

// Options configures a coordinator.
type Options struct {
	// Store is the shared results cache. Required: the coordinator owns
	// the bytes (and the LRU eviction policy) and serves them to
	// workers at runcache.RemoteResultsPath.
	Store *runcache.Store
	// WarmStore, when non-nil, is the persistent warm-start store,
	// served to workers at runcache.RemoteWarmPath. Queries with
	// warm != off require it.
	WarmStore *runcache.Store
	// LeaseTimeout is how long a worker may sit on a range before the
	// coordinator re-dispenses it (0 = 30s). Completions from the
	// original holder after reassignment are rejected as duplicates —
	// first completion wins, so no range is ever double-counted.
	LeaseTimeout time.Duration
	// Obs, when non-nil, is the control plane sharing the coordinator's
	// mux: queries register as tracked runs (range completions advance
	// /progress), its endpoints are co-registered by Handler via
	// obs.(*Server).Register (host handlers winning conflicts), the
	// coordinator registers itself as a metric source (the federated
	// hic_worker_* series), and lease lifecycle events
	// (grant/done/expired, worker staleness WARNs) land on its event
	// stream.
	Obs *obs.Server
	// StaleAfter is how long a worker may go unseen before the registry
	// marks it stale — and, if it holds a lease, before the coordinator
	// WARNs (0 = LeaseTimeout/2, one reclaim cycle of early notice).
	StaleAfter time.Duration
	// Log receives one-line diagnostics (nil = silent).
	Log io.Writer
}

// Server is the coordinator: it owns the job queue, the lease protocol,
// the shared cache stores, and the range-ordered merge.
type Server struct {
	opts Options

	mu       sync.Mutex
	nextID   uint64
	workers  map[string]*workerState
	jobs     map[string]*job
	queries  uint64
	rangesOK uint64
}

// NewServer validates options and builds a coordinator. With an obs
// control plane configured, the coordinator registers itself as a
// metric source so one /metrics scrape shows the whole fleet's
// federated hic_worker_* series.
func NewServer(o Options) (*Server, error) {
	if o.Store == nil {
		return nil, fmt.Errorf("serve: Options.Store is required")
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	s := &Server{
		opts:    o,
		workers: make(map[string]*workerState),
		jobs:    make(map[string]*job),
	}
	if o.Obs != nil {
		o.Obs.AddSource(s)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "serve: "+format+"\n", args...)
	}
}

// Handler returns the coordinator mux: query API, lease protocol,
// status, both cache mounts, and (when configured) the obs control
// plane on the same mux — one server, one port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(QueryPath, s.handleQuery)
	mux.HandleFunc(RegisterPath, s.handleRegister)
	mux.HandleFunc(NextPath, s.handleNext)
	mux.HandleFunc(DonePath, s.handleDone)
	mux.HandleFunc(StatusPath, s.handleStatus)
	mux.HandleFunc(WorkersPath, s.handleWorkers)
	mux.Handle(runcache.RemoteResultsPath+"/",
		http.StripPrefix(runcache.RemoteResultsPath, runcache.BackendHandler(s.opts.Store.Backend())))
	if s.opts.WarmStore != nil {
		mux.Handle(runcache.RemoteWarmPath+"/",
			http.StripPrefix(runcache.RemoteWarmPath, runcache.BackendHandler(s.opts.WarmStore.Backend())))
	}
	if s.opts.Obs != nil {
		s.opts.Obs.Register(mux)
	}
	return mux
}

// shardRange is one dispensable unit of a job's fleet.
type shardRange struct {
	lo, hi   int
	worker   string // current lease holder ("" = pending)
	granted  time.Time
	deadline time.Time
	done     *RangePartial
}

// job is one in-flight query's sharding state. All fields are guarded
// by the owning Server's mu; signal has capacity 1 and is poked (never
// closed) whenever state the query handler waits on changes.
type job struct {
	id         string
	spec       QueryRequest
	ranges     []shardRange
	pending    []int // range ids not leased and not done, FIFO
	reassigned uint64
	duplicates uint64
	failed     string
	signal     chan struct{}

	// Prefetch phase: reps are the fleet's signature-representative host
	// indices, prefetch the leases chunking them ([lo, hi) index into
	// reps), prefetchPending the undispensed lease ids, and
	// prefetchLeft the not-yet-completed count — the soft barrier: this
	// job's ranges are not dispensed until it reaches zero (expired
	// prefetch leases are reclaimed like range leases, so a dead worker
	// delays the barrier by one lease timeout, never wedges it).
	// prefetchStats accumulates completed prefetch leases' calibration
	// accounting for the final merge.
	reps            []int
	prefetch        []shardRange
	prefetchPending []int
	prefetchLeft    int
	prefetchStats   cluster.Stats

	// trace collects the query's lifecycle spans (nil = untraced; every
	// queryTrace method no-ops on nil, so the disabled path costs a nil
	// check).
	trace *queryTrace
}

func (j *job) poke() {
	select {
	case j.signal <- struct{}{}:
	default:
	}
}

// reclaimExpired requeues every leased, unfinished range or prefetch
// lease whose deadline passed, attributes each expiry to the worker
// that held it, and returns the lease_expired events describing them
// (emit after unlocking). Called under the server lock from both the
// lease path (a polling worker picks the range right back up) and the
// query handler's ticker (so an expiry is detected even with no worker
// polling).
func (s *Server) reclaimExpired(j *job, now time.Time) []obs.Event {
	var evs []obs.Event
	expire := func(r *shardRange, id int, kind string) {
		if ws := s.workers[r.worker]; ws != nil {
			ws.expirations++
			if a := ws.active; a != nil && a.job == j.id && a.rangeID == id && a.kind == kind {
				ws.active = nil
			}
		}
		if s.opts.Obs != nil {
			evs = append(evs, obs.Event{
				Kind: obs.KindLeaseExpired, Run: "serve:" + j.id,
				Point: id, Key: r.worker, Route: kind,
				Why:   "lease deadline passed; requeued for reassignment",
				DurMS: float64(now.Sub(r.granted).Nanoseconds()) / 1e6,
			})
		}
		r.worker = ""
		j.reassigned++
	}
	for id := range j.ranges {
		r := &j.ranges[id]
		if r.done == nil && r.worker != "" && now.After(r.deadline) {
			expire(r, id, "range")
			j.pending = append(j.pending, id)
		}
	}
	for id := range j.prefetch {
		r := &j.prefetch[id]
		if r.done == nil && r.worker != "" && now.After(r.deadline) {
			expire(r, id, LeasePrefetch)
			j.prefetchPending = append(j.prefetchPending, id)
		}
	}
	return evs
}

// splitPrefetch chunks the signature representatives into about two
// prefetch leases per worker — wide enough to amortize lease round
// trips, narrow enough that every worker calibrates in parallel.
func splitPrefetch(reps, workers int) []shardRange {
	if reps == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	chunk := reps / (workers * 2)
	if chunk < 1 {
		chunk = 1
	}
	ranges := make([]shardRange, 0, (reps+chunk-1)/chunk)
	for lo := 0; lo < reps; lo += chunk {
		hi := lo + chunk
		if hi > reps {
			hi = reps
		}
		ranges = append(ranges, shardRange{lo: lo, hi: hi})
	}
	return ranges
}

// splitRanges carves [0, hosts) into contiguous ranges of rangeHosts
// (0 = about eight per worker, mirroring runner's chunk frontier).
func splitRanges(hosts, rangeHosts, workers int) []shardRange {
	if rangeHosts <= 0 {
		if workers < 1 {
			workers = 1
		}
		rangeHosts = hosts / (workers * 8)
		if rangeHosts < 1 {
			rangeHosts = 1
		}
	}
	ranges := make([]shardRange, 0, (hosts+rangeHosts-1)/rangeHosts)
	for lo := 0; lo < hosts; lo += rangeHosts {
		hi := lo + rangeHosts
		if hi > hosts {
			hi = hosts
		}
		ranges = append(ranges, shardRange{lo: lo, hi: hi})
	}
	return ranges
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("w%d", s.nextID)
	if req.Name != "" {
		id = fmt.Sprintf("w%d-%s", s.nextID, req.Name)
	}
	s.workers[id] = &workerState{id: id, name: req.Name, registered: now, lastSeen: now}
	s.mu.Unlock()
	s.logf("worker %s registered", id)
	writeJSON(w, map[string]string{"worker_id": id})
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		WorkerID string `json:"worker_id"`
		// BackoffMS is the worker's current idle poll backoff, for the
		// health registry (0 = working or polling at base cadence).
		BackoffMS float64 `json:"backoff_ms,omitempty"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	var evs []obs.Event
	defer func() { s.emitEvents(evs) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, ok := s.workers[req.WorkerID]
	if !ok {
		http.Error(w, "unknown worker (register first)", http.StatusForbidden)
		return
	}
	ws.seen(now)
	ws.backoffMS = req.BackoffMS
	// grant records the lease on the registry and the trace, and queues
	// its lease_grant event.
	grant := func(j *job, rg *shardRange, rid int, kind string) {
		rg.worker = req.WorkerID
		rg.granted = now
		rg.deadline = now.Add(s.opts.LeaseTimeout)
		ws.active = &heldLease{job: j.id, rangeID: rid, kind: kind,
			lo: rg.lo, hi: rg.hi, since: now}
		ws.backoffMS = 0
		j.trace.grant(kind, now)
		if s.opts.Obs != nil {
			evs = append(evs, obs.Event{Kind: obs.KindLeaseGrant, Run: "serve:" + j.id,
				Point: rid, Key: req.WorkerID, Route: kind})
		}
	}
	// Oldest job first so queries complete in arrival order.
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		if j.failed != "" {
			continue
		}
		evs = append(evs, s.reclaimExpired(j, now)...)
		// Prefetch leases first; ranges of this job wait behind the
		// prefetch barrier so range execution starts against a hot cache
		// instead of racing the calibration it depends on. (Other jobs'
		// ranges still dispense — the barrier is per job.)
		if len(j.prefetchPending) > 0 {
			rid := j.prefetchPending[0]
			j.prefetchPending = j.prefetchPending[1:]
			rg := &j.prefetch[rid]
			grant(j, rg, rid, LeasePrefetch)
			writeJSON(w, Lease{Job: j.id, RangeID: rid, Kind: LeasePrefetch,
				Lo: rg.lo, Hi: rg.hi, Reps: j.reps[rg.lo:rg.hi], Spec: j.spec,
				Trace: j.traceID()})
			return
		}
		if j.prefetchLeft > 0 || len(j.pending) == 0 {
			continue
		}
		rid := j.pending[0]
		j.pending = j.pending[1:]
		rg := &j.ranges[rid]
		grant(j, rg, rid, "range")
		writeJSON(w, Lease{Job: j.id, RangeID: rid, Lo: rg.lo, Hi: rg.hi, Spec: j.spec,
			Trace: j.traceID()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// traceID returns the job id as the wire trace id when the query is
// traced, "" otherwise (the id doubles as the workers' enable flag).
func (j *job) traceID() string {
	if j.trace == nil {
		return ""
	}
	return j.id
}

// maxPartialBytes bounds one range completion's body. Points are ~100
// bytes each; 64 MiB covers a ~500k-point range with headroom.
const maxPartialBytes = 64 << 20

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var p RangePartial
	if err := json.NewDecoder(io.LimitReader(r.Body, maxPartialBytes)).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	accepted := false
	now := time.Now()
	var evs []obs.Event
	defer func() { s.emitEvents(evs) }()
	// completionEvent queues the lease_done event for an accepted
	// completion; duplicate marks the reassignment race's losing side.
	completionEvent := func(j *job, rg *shardRange, kind string) {
		if s.opts.Obs == nil {
			return
		}
		evs = append(evs, obs.Event{Kind: obs.KindLeaseDone, Run: "serve:" + j.id,
			Point: p.RangeID, Key: p.Worker, Route: kind,
			DurMS: float64(now.Sub(rg.granted).Nanoseconds()) / 1e6})
	}
	duplicate := func(j *job) {
		j.duplicates++
		if ws := s.workers[p.Worker]; ws != nil {
			ws.seen(now)
			ws.duplicates++
		}
	}
	s.mu.Lock()
	j := s.jobs[p.Job]
	if j != nil && p.Prefetch {
		if p.RangeID >= 0 && p.RangeID < len(j.prefetch) {
			rg := &j.prefetch[p.RangeID]
			switch {
			case rg.done != nil:
				duplicate(j)
			default:
				// Prefetch failures are non-fatal: range execution
				// calibrates lazily on first touch, so the query loses
				// parallelism, not correctness.
				if p.Err != "" {
					s.logf("query %s: prefetch lease %d on %s failed (non-fatal): %s",
						j.id, p.RangeID, p.Worker, p.Err)
				}
				pc := p
				rg.done = &pc
				rg.worker = p.Worker
				sumStats(&j.prefetchStats, p.Stats)
				j.prefetchLeft--
				s.foldCompletion(&p, now)
				s.recordLeaseSpans(j, rg, &p, now)
				if j.prefetchLeft == 0 {
					j.trace.barrier(now)
				}
				completionEvent(j, rg, LeasePrefetch)
				accepted = true
			}
		}
		s.mu.Unlock()
		writeJSON(w, map[string]bool{"accepted": accepted})
		return
	}
	if j != nil && p.RangeID >= 0 && p.RangeID < len(j.ranges) {
		rg := &j.ranges[p.RangeID]
		switch {
		case rg.done != nil:
			// First completion won; this is the reassignment race's
			// losing side. Reject so no range is double-counted.
			duplicate(j)
		case p.Err != "":
			if j.failed == "" {
				j.failed = fmt.Sprintf("range [%d, %d) on %s: %s", p.Lo, p.Hi, p.Worker, p.Err)
			}
			if ws := s.workers[p.Worker]; ws != nil {
				ws.seen(now)
			}
			accepted = true
			j.poke()
		default:
			pc := p
			rg.done = &pc
			rg.worker = p.Worker
			s.foldCompletion(&p, now)
			s.recordLeaseSpans(j, rg, &p, now)
			j.trace.rangeDone(now)
			completionEvent(j, rg, "range")
			accepted = true
			s.rangesOK++
			j.poke()
		}
	}
	s.mu.Unlock()
	writeJSON(w, map[string]bool{"accepted": accepted})
}

// recordLeaseSpans adds the lease's spans to a traced query: the
// coordinator-observed envelope (grant to completion) on the worker's
// track, with the worker-reported execution window nested inside it
// (clamped to the envelope — worker clocks are not the coordinator's;
// on one box or NTP-disciplined hosts the clamp is a no-op). Called
// under the server lock; no-ops when the query is untraced.
func (s *Server) recordLeaseSpans(j *job, rg *shardRange, p *RangePartial, now time.Time) {
	if j.trace == nil {
		return
	}
	track := "worker " + p.Worker
	name := fmt.Sprintf("range %d [%d,%d)", p.RangeID, p.Lo, p.Hi)
	args := map[string]float64{"points": float64(len(p.Points))}
	if p.Prefetch {
		name = fmt.Sprintf("prefetch %d", p.RangeID)
		args = map[string]float64{"signatures": float64(p.Hi - p.Lo)}
	}
	for _, c := range p.Stats.CounterSamples() {
		switch c.Name {
		case "simulated_total", "collapsed_total", "fluid_routed_total",
			"anchor_runs_total", "anchor_transferred_total", "knee_probes_total":
			if c.Value != 0 {
				args[c.Name] = c.Value
			}
		}
	}
	j.trace.span(name, track, rg.granted, now, args)
	if p.ExecStartNs > 0 && p.ExecEndNs >= p.ExecStartNs {
		start, end := time.Unix(0, p.ExecStartNs), time.Unix(0, p.ExecEndNs)
		if start.Before(rg.granted) {
			start = rg.granted
		}
		if end.After(now) {
			end = now
		}
		j.trace.span("exec", track, start, end, nil)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	type jobStatus struct {
		Job     string `json:"job"`
		Ranges  int    `json:"ranges"`
		Done    int    `json:"done"`
		Pending int    `json:"pending"`
	}
	out := struct {
		Workers  int         `json:"workers"`
		Queries  uint64      `json:"queries"`
		RangesOK uint64      `json:"ranges_completed"`
		Jobs     []jobStatus `json:"jobs"`
		Cache    struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		} `json:"cache"`
	}{Workers: len(s.workers), Queries: s.queries, RangesOK: s.rangesOK}
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		done := 0
		for i := range j.ranges {
			if j.ranges[i].done != nil {
				done++
			}
		}
		out.Jobs = append(out.Jobs, jobStatus{Job: id, Ranges: len(j.ranges), Done: done, Pending: len(j.pending)})
	}
	s.mu.Unlock()
	cs := s.opts.Store.Stats()
	out.Cache.Entries, _ = s.opts.Store.Len()
	out.Cache.Hits, out.Cache.Misses = cs.Hits, cs.Misses
	writeJSON(w, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := q.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Warm != "" && q.Warm != "off" && s.opts.WarmStore == nil {
		http.Error(w, "serve: query wants warm start but the coordinator has no warm store", http.StatusBadRequest)
		return
	}

	start := time.Now()
	s.mu.Lock()
	s.queries++
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("q%d", s.nextID),
		spec:   q,
		ranges: splitRanges(q.Hosts, q.RangeHosts, len(s.workers)),
		signal: make(chan struct{}, 1),
	}
	if q.Trace {
		j.trace = newQueryTrace(start)
	}
	for i := range j.ranges {
		j.pending = append(j.pending, i)
	}
	if q.Prefetchable() {
		// Param generation only (no simulation): one representative host
		// per distinct fidelity signature, chunked into prefetch leases.
		j.reps = cluster.SignatureReps(q.ClusterConfig())
		j.prefetch = splitPrefetch(len(j.reps), len(s.workers))
		for i := range j.prefetch {
			j.prefetchPending = append(j.prefetchPending, i)
		}
		j.prefetchLeft = len(j.prefetch)
	}
	s.jobs[j.id] = j
	nworkers := len(s.workers)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
	}()
	s.logf("query %s: %d hosts in %d ranges across %d workers (%d signatures in %d prefetch leases)",
		j.id, q.Hosts, len(j.ranges), nworkers, len(j.reps), len(j.prefetch))

	var orun *obs.Run
	if s.opts.Obs != nil {
		orun = s.opts.Obs.StartRun("serve:"+j.id, int64(len(j.ranges)))
		defer orun.Finish()
	}

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(e QueryEvent) error {
		if err := enc.Encode(e); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// The merge. Points fold in range order through the same aggregator
	// a single-process RunStream uses (cluster.Summarize's path), so
	// the quantile reservoir sees the identical insertion order and the
	// result is byte-identical to an unsharded run. The workers' moment
	// partials merge alongside, also in range order, as a cross-check.
	hasher := cluster.NewPointHasher()
	var folded []cluster.Point
	var utilMerged, dropMerged stats.Moments
	var sum cluster.Stats
	next, doneRanges, workersSeen := 0, 0, map[string]bool{}

	ticker := time.NewTicker(s.opts.LeaseTimeout / 4)
	defer ticker.Stop()
	var deadline <-chan time.Time
	if q.TimeoutSec > 0 {
		t := time.NewTimer(time.Duration(q.TimeoutSec * float64(time.Second)))
		defer t.Stop()
		deadline = t.C
	}
	fail := func(msg string) {
		s.logf("query %s failed: %s", j.id, msg)
		writeLine(QueryEvent{Kind: KindError, Error: msg}) //nolint:errcheck // already failing
	}

	for next < len(j.ranges) {
		select {
		case <-j.signal:
		case <-ticker.C:
			// Liveness with no polling workers: expire leases so the
			// next poll reassigns, notice worker-reported failures, and
			// WARN about stale workers before their leases expire.
			now := time.Now()
			s.mu.Lock()
			evs := s.reclaimExpired(j, now)
			evs = append(evs, s.checkStale(now)...)
			s.mu.Unlock()
			s.emitEvents(evs)
		case <-deadline:
			fail(fmt.Sprintf("query timed out after %gs with %d/%d ranges merged",
				q.TimeoutSec, doneRanges, len(j.ranges)))
			return
		case <-r.Context().Done():
			s.logf("query %s: client went away", j.id)
			return
		}

		// Collect the contiguous completed prefix under the lock, fold
		// and stream outside it.
		var ready []*RangePartial
		s.mu.Lock()
		failed := j.failed
		for next+len(ready) < len(j.ranges) {
			p := j.ranges[next+len(ready)].done
			if p == nil {
				break
			}
			ready = append(ready, p)
		}
		s.mu.Unlock()
		if failed != "" {
			fail(failed)
			return
		}
		if len(ready) > 0 {
			j.trace.fold(time.Now())
		}
		for _, p := range ready {
			for _, pt := range p.Points {
				hasher.Add(pt)
				folded = append(folded, pt)
				if q.Points {
					pt := pt
					if err := writeLine(QueryEvent{Kind: KindPoint, Point: &pt}); err != nil {
						return
					}
				}
			}
			utilMerged.Merge(p.Util)
			dropMerged.Merge(p.Drop)
			sumStats(&sum, p.Stats)
			workersSeen[p.Worker] = true
			next++
			doneRanges++
			orun.Advance(1)
			if err := writeLine(QueryEvent{Kind: KindRange, Range: &RangeDone{
				RangeID: next - 1, Lo: p.Lo, Hi: p.Hi, Worker: p.Worker,
				Done: doneRanges, Total: len(j.ranges),
			}}); err != nil {
				return
			}
		}
	}

	res := s.finishQuery(j, q, folded, hasher, utilMerged, dropMerged, sum, workersSeen, start)
	writeLine(QueryEvent{Kind: KindResult, Result: &res}) //nolint:errcheck // terminal line
	s.logf("query %s: merged %d points, hash %s, %.0f hosts/s",
		j.id, res.Points, res.AggregateHash, res.HostsPerSec)
}

// finishQuery assembles the merged result: scatter statistics from the
// point fold (authoritative), execution counters summed from partials,
// and the moment-merge cross-check.
func (s *Server) finishQuery(j *job, q QueryRequest, folded []cluster.Point,
	hasher *cluster.PointHasher, utilMerged, dropMerged stats.Moments,
	sum cluster.Stats, workersSeen map[string]bool, start time.Time) QueryResult {

	// Calibration performed under prefetch leases is part of the query's
	// execution accounting even though no range contains it.
	s.mu.Lock()
	sumStats(&sum, j.prefetchStats)
	prefetched := len(j.reps)
	s.mu.Unlock()

	merged := cluster.Summarize(folded)
	// Execution accounting lives only in the partials.
	merged.Simulated, merged.Collapsed, merged.CacheSkipped = sum.Simulated, sum.Collapsed, sum.CacheSkipped
	merged.FluidRouted, merged.EarlyStopped, merged.AnchorRuns = sum.FluidRouted, sum.EarlyStopped, sum.AnchorRuns
	merged.Audited, merged.AuditOverTol, merged.AuditMaxErr = sum.Audited, sum.AuditOverTol, sum.AuditMaxErr
	merged.AnchorTransferred, merged.AnchorRefined = sum.AnchorTransferred, sum.AnchorRefined
	merged.KneeProbes, merged.KneeBypassed = sum.KneeProbes, sum.KneeBypassed
	merged.AnchorLoaded, merged.AnchorPersisted = sum.AnchorLoaded, sum.AnchorPersisted
	merged.WarmStarted, merged.WarmCheckpoints = sum.WarmStarted, sum.WarmCheckpoints
	merged.WarmAudited, merged.WarmAuditOverTol, merged.WarmAuditMaxErr = sum.WarmAudited, sum.WarmAuditOverTol, sum.WarmAuditMaxErr

	skew := math.Max(
		math.Max(math.Abs(utilMerged.Mean()-merged.MeanUtilization),
			math.Abs(dropMerged.Mean()-merged.MeanDropRate)),
		math.Abs(float64(utilMerged.N())-float64(merged.Hosts)))

	elapsed := time.Since(start)
	s.mu.Lock()
	res := QueryResult{
		Stats:         merged,
		AggregateHash: hasher.Sum(),
		Points:        hasher.Count(),
		Ranges:        len(j.ranges),
		Workers:       len(workersSeen),
		Reassigned:    j.reassigned,
		Duplicates:    j.duplicates,
		Prefetched:    prefetched,
		MergeSkew:     skew,
		ElapsedMS:     float64(elapsed.Nanoseconds()) / 1e6,
	}
	s.mu.Unlock()
	if elapsed > 0 {
		res.HostsPerSec = float64(q.Hosts) / elapsed.Seconds()
	}
	if j.trace != nil {
		res.TraceID = j.id
		res.Trace, res.Phases = j.trace.finish(time.Now())
	}
	return res
}

// sumStats adds the execution counters of one partial into the running
// total (scatter statistics are recomputed from the folded points, not
// summed — range-local quantiles do not merge).
func sumStats(dst *cluster.Stats, p cluster.Stats) {
	dst.Simulated += p.Simulated
	dst.Collapsed += p.Collapsed
	dst.CacheSkipped += p.CacheSkipped
	dst.FluidRouted += p.FluidRouted
	dst.EarlyStopped += p.EarlyStopped
	dst.AnchorRuns += p.AnchorRuns
	dst.Audited += p.Audited
	dst.AuditOverTol += p.AuditOverTol
	dst.AuditMaxErr = math.Max(dst.AuditMaxErr, p.AuditMaxErr)
	dst.AnchorTransferred += p.AnchorTransferred
	dst.AnchorRefined += p.AnchorRefined
	dst.KneeProbes += p.KneeProbes
	dst.KneeBypassed += p.KneeBypassed
	dst.AnchorLoaded += p.AnchorLoaded
	dst.AnchorPersisted += p.AnchorPersisted
	dst.WarmStarted += p.WarmStarted
	dst.WarmCheckpoints += p.WarmCheckpoints
	dst.WarmAudited += p.WarmAudited
	dst.WarmAuditOverTol += p.WarmAuditOverTol
	dst.WarmAuditMaxErr = math.Max(dst.WarmAuditMaxErr, p.WarmAuditMaxErr)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client disconnects are not ours
}
