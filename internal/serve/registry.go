package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"hic/internal/obs"
)

// workerState is the coordinator's view of one registered worker: the
// fleet health registry entry behind WorkersPath, the staleness
// detector's input, and the accumulator the federated hic_worker_*
// series are served from. All fields are guarded by the owning
// Server's mu.
type workerState struct {
	id         string
	name       string
	registered time.Time
	lastSeen   time.Time
	// backoffMS is the worker's self-reported idle poll backoff at its
	// most recent poll.
	backoffMS float64
	// staleWarned suppresses repeat worker_stale warnings until the
	// worker is seen again.
	staleWarned bool
	// active is the lease the worker holds (nil = idle).
	active *heldLease

	ranges      uint64
	prefetches  uint64
	expirations uint64
	duplicates  uint64
	// counters federates the worker's accepted completions:
	// cluster.Stats counter samples plus worker-local deltas, keyed by
	// hic_worker_* series suffix.
	counters map[string]float64
}

// heldLease identifies the lease a worker currently holds.
type heldLease struct {
	job     string
	rangeID int
	kind    string // "range" or LeasePrefetch
	lo, hi  int
	since   time.Time
}

// seen marks contact from the worker (register, poll, or completion)
// and re-arms its staleness warning. Called under the server lock.
func (ws *workerState) seen(now time.Time) {
	ws.lastSeen = now
	ws.staleWarned = false
}

// leaseKindLabel names a lease kind for events and registry entries.
func leaseKindLabel(kind string) string {
	if kind == LeasePrefetch {
		return LeasePrefetch
	}
	return "range"
}

// staleAfter is the staleness threshold: a worker not seen for this
// long is stale, and stale-with-a-lease raises a WARN. Half the lease
// timeout by default, so the operator hears about a dying worker one
// reclaim cycle before its lease expires and the work reruns.
func (s *Server) staleAfter() time.Duration {
	if s.opts.StaleAfter > 0 {
		return s.opts.StaleAfter
	}
	return s.opts.LeaseTimeout / 2
}

// foldCompletion attributes an accepted completion to its worker:
// liveness, lease accounting, and the federated counter fold. Called
// under the server lock.
func (s *Server) foldCompletion(p *RangePartial, now time.Time) {
	ws := s.workers[p.Worker]
	if ws == nil {
		return
	}
	ws.seen(now)
	if a := ws.active; a != nil && a.job == p.Job && a.rangeID == p.RangeID &&
		(a.kind == LeasePrefetch) == p.Prefetch {
		ws.active = nil
	}
	if p.Prefetch {
		ws.prefetches++
	} else {
		ws.ranges++
	}
	if ws.counters == nil {
		ws.counters = make(map[string]float64)
	}
	for _, c := range p.Stats.CounterSamples() {
		if c.Value != 0 {
			ws.counters[c.Name] += c.Value
		}
	}
	if d := p.Deltas; d != nil {
		ws.counters["cache_hits_total"] += float64(d.CacheHits)
		ws.counters["cache_misses_total"] += float64(d.CacheMisses)
		ws.counters["cache_collapses_total"] += float64(d.CacheCollapses)
		ws.counters["pool_tasks_total"] += float64(d.PoolTasks)
		ws.counters["exec_ms_total"] += d.ExecMS
	}
}

// checkStale scans for workers holding a lease without recent contact
// and returns one worker_stale event per newly-stale worker (the obs
// sink raises each as an immediate WARN). Called under the server lock
// from the query handler's reclaim ticker — staleness is detected
// while queries are in flight, which is exactly when leases exist.
func (s *Server) checkStale(now time.Time) []obs.Event {
	if s.opts.Obs == nil {
		return nil
	}
	var evs []obs.Event
	threshold := s.staleAfter()
	for _, ws := range s.workers {
		a := ws.active
		if a == nil || ws.staleWarned || now.Sub(ws.lastSeen) <= threshold {
			continue
		}
		ws.staleWarned = true
		unseen := now.Sub(ws.lastSeen)
		expiresIn := s.opts.LeaseTimeout - now.Sub(a.since)
		evs = append(evs, obs.Event{
			Kind: obs.KindWorkerStale, Run: "serve:" + a.job,
			Point: a.rangeID, Key: ws.id, Route: leaseKindLabel(a.kind),
			Value: unseen.Seconds(),
			Why: fmt.Sprintf("worker unseen for %.1fs while holding %s %d of %s (lease expires in %.1fs)",
				unseen.Seconds(), leaseKindLabel(a.kind), a.rangeID, a.job, expiresIn.Seconds()),
		})
	}
	return evs
}

// emitEvents forwards coordinator lifecycle events to the obs sink.
// Always called outside the server lock (the sink has its own).
func (s *Server) emitEvents(evs []obs.Event) {
	if s.opts.Obs == nil {
		return
	}
	for _, e := range evs {
		s.opts.Obs.Emit(e)
	}
}

// workerInfos snapshots the registry, sorted by worker id.
func (s *Server) workerInfos(now time.Time) []WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	threshold := s.staleAfter()
	out := make([]WorkerInfo, 0, len(s.workers))
	for _, ws := range s.workers {
		info := WorkerInfo{
			ID:               ws.id,
			Name:             ws.name,
			RegisteredAgoSec: now.Sub(ws.registered).Seconds(),
			LastSeenAgoSec:   now.Sub(ws.lastSeen).Seconds(),
			Stale:            now.Sub(ws.lastSeen) > threshold,
			BackoffMS:        ws.backoffMS,
			RangesDone:       ws.ranges,
			PrefetchesDone:   ws.prefetches,
			Expirations:      ws.expirations,
			Duplicates:       ws.duplicates,
		}
		if a := ws.active; a != nil {
			info.Active = &ActiveLease{Job: a.job, RangeID: a.rangeID,
				Kind: leaseKindLabel(a.kind), Lo: a.lo, Hi: a.hi,
				HeldMS: float64(now.Sub(a.since).Nanoseconds()) / 1e6}
		}
		if len(ws.counters) > 0 {
			info.Counters = make(map[string]float64, len(ws.counters))
			for k, v := range ws.counters {
				info.Counters[k] = v
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleWorkers serves the fleet health registry.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	out := struct {
		Workers       []WorkerInfo `json:"workers"`
		StaleAfterSec float64      `json:"stale_after_sec"`
	}{Workers: s.workerInfos(time.Now()), StaleAfterSec: s.staleAfter().Seconds()}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client disconnects are not ours
}

// MetricsInto implements the control plane's MetricSource interface:
// the federated per-worker series (hic_worker_*, labeled by worker id)
// plus the fleet rollups (hic_workers_*, the label-free sums), sampled
// from the registry on every /metrics scrape. Per-worker counters sum
// to the merged queries' counters by construction — both sides fold
// the same accepted partials.
func (s *Server) MetricsInto(emit func(name, typ string, v float64)) {
	infos := s.workerInfos(time.Now())

	var staleCount, activeCount float64
	fleet := make(map[string]float64)
	fleetLease := map[string]float64{}
	for _, info := range infos {
		l := fmt.Sprintf("{worker=%q}", info.ID)
		emit("hic_worker_last_seen_seconds"+l, "gauge", info.LastSeenAgoSec)
		stale := 0.0
		if info.Stale {
			stale, staleCount = 1, staleCount+1
		}
		emit("hic_worker_stale"+l, "gauge", stale)
		emit("hic_worker_backoff_ms"+l, "gauge", info.BackoffMS)
		held := 0.0
		if info.Active != nil {
			held, activeCount = 1, activeCount+1
		}
		emit("hic_worker_active_lease"+l, "gauge", held)
		emit("hic_worker_ranges_done_total"+l, "counter", float64(info.RangesDone))
		emit("hic_worker_prefetches_done_total"+l, "counter", float64(info.PrefetchesDone))
		emit("hic_worker_expirations_total"+l, "counter", float64(info.Expirations))
		emit("hic_worker_duplicates_total"+l, "counter", float64(info.Duplicates))
		fleetLease["ranges_done_total"] += float64(info.RangesDone)
		fleetLease["prefetches_done_total"] += float64(info.PrefetchesDone)
		fleetLease["expirations_total"] += float64(info.Expirations)
		fleetLease["duplicates_total"] += float64(info.Duplicates)
		for _, name := range sortedCounterKeys(info.Counters) {
			emit("hic_worker_"+name+l, "counter", info.Counters[name])
			fleet[name] += info.Counters[name]
		}
	}

	emit("hic_workers_registered", "gauge", float64(len(infos)))
	emit("hic_workers_stale", "gauge", staleCount)
	emit("hic_workers_active_leases", "gauge", activeCount)
	for _, name := range []string{"ranges_done_total", "prefetches_done_total", "expirations_total", "duplicates_total"} {
		emit("hic_workers_"+name, "counter", fleetLease[name])
	}
	for _, name := range sortedCounterKeys(fleet) {
		emit("hic_workers_"+name, "counter", fleet[name])
	}
}

func sortedCounterKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
