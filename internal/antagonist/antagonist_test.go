package antagonist

import (
	"testing"

	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/sim"
)

func newStream(t *testing.T) (*sim.Engine, *mem.Controller, *Stream) {
	t.Helper()
	e := sim.NewEngine(1)
	mc, err := mem.New(e, metrics.NewRegistry(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, mc, s
}

func TestConfigValidation(t *testing.T) {
	mcEngine := sim.NewEngine(1)
	mc, _ := mem.New(mcEngine, metrics.NewRegistry(), mem.DefaultConfig())
	if _, err := New(mc, Config{PerCoreBandwidth: 0, ReadFraction: 0.5}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(mc, Config{PerCoreBandwidth: 1e9, ReadFraction: 1.5}); err == nil {
		t.Error("bad read fraction accepted")
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil memory controller accepted")
	}
}

func TestDemandScalesWithCores(t *testing.T) {
	_, mc, s := newStream(t)
	s.SetCores(4)
	if s.Cores() != 4 {
		t.Errorf("Cores = %d", s.Cores())
	}
	want := 4 * DefaultConfig().PerCoreBandwidth
	if got := mc.CPUOffered(); got != want {
		t.Errorf("offered = %v, want %v", got, want)
	}
	if s.OfferedBandwidth() != want {
		t.Errorf("OfferedBandwidth = %v", s.OfferedBandwidth())
	}
	s.SetCores(0)
	if mc.CPUOffered() != 0 {
		t.Error("demand not cleared at zero cores")
	}
}

func TestAchievedBandwidthSaturates(t *testing.T) {
	e, mc, s := newStream(t)
	// Few cores: linear. Many cores: capped near the STREAM ceiling.
	s.SetCores(2)
	e.Run(e.Now().Add(50 * sim.Microsecond))
	low := mc.CPUAchieved()
	s.SetCores(15)
	e.Run(e.Now().Add(50 * sim.Microsecond))
	high := mc.CPUAchieved()
	if low != 2*DefaultConfig().PerCoreBandwidth {
		t.Errorf("2-core achieved %v, want linear %v", low, 2*DefaultConfig().PerCoreBandwidth)
	}
	// Paper: STREAM saturates around ~90 GB/s per NUMA node.
	if high < 80e9 || high > 95e9 {
		t.Errorf("15-core achieved %v, want ≈90 GB/s (saturated)", high)
	}
	if high >= s.OfferedBandwidth() {
		t.Error("15 cores should be demand-capped (sublinear scaling)")
	}
}

func TestNegativeCoresPanics(t *testing.T) {
	_, _, s := newStream(t)
	defer func() {
		if recover() == nil {
			t.Error("negative cores did not panic")
		}
	}()
	s.SetCores(-1)
}
