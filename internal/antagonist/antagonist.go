// Package antagonist models the STREAM benchmark instances the paper uses
// to contend the memory bus (§3.2): one instance per physical core, each
// offering a fixed read+write byte rate to the memory controller. The
// controller, not this package, decides how much of that demand is
// achieved once the bus saturates — reproducing the sublinear scaling the
// paper observes beyond ~6 cores.
package antagonist

import (
	"fmt"

	"hic/internal/mem"
)

// Config describes the STREAM-like antagonist.
type Config struct {
	// PerCoreBandwidth is the offered memory traffic per core in
	// bytes/second. Skylake-era STREAM sustains ~9.5 GB/s per core
	// once several instances run (saturating the node around 10 cores).
	PerCoreBandwidth float64
	// ReadFraction splits the traffic into reads vs writes; the paper's
	// machine does ~65 GB/s reads and ~25 GB/s writes at saturation.
	ReadFraction float64
}

// DefaultConfig returns the calibrated Skylake-like antagonist.
func DefaultConfig() Config {
	return Config{
		PerCoreBandwidth: 9.5e9,
		ReadFraction:     0.72,
	}
}

func (c Config) validate() error {
	if c.PerCoreBandwidth <= 0 {
		return fmt.Errorf("antagonist: PerCoreBandwidth must be positive")
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("antagonist: ReadFraction outside [0,1]")
	}
	return nil
}

// Stream is a set of antagonist cores contending the memory bus.
type Stream struct {
	memory *mem.Controller
	cfg    Config
	cores  int
}

// New constructs an antagonist with zero active cores.
func New(memory *mem.Controller, cfg Config) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if memory == nil {
		return nil, fmt.Errorf("antagonist: memory controller is required")
	}
	return &Stream{memory: memory, cfg: cfg}, nil
}

// SetCores activates n antagonist cores (0 disables the antagonist).
func (s *Stream) SetCores(n int) {
	if n < 0 {
		panic("antagonist: negative core count")
	}
	s.cores = n
	total := float64(n) * s.cfg.PerCoreBandwidth
	s.memory.SetCPUDemand("antagonist.read", total*s.cfg.ReadFraction)
	s.memory.SetCPUDemand("antagonist.write", total*(1-s.cfg.ReadFraction))
}

// Cores returns the active core count.
func (s *Stream) Cores() int { return s.cores }

// OfferedBandwidth returns the total offered traffic in bytes/second.
func (s *Stream) OfferedBandwidth() float64 {
	return float64(s.cores) * s.cfg.PerCoreBandwidth
}
