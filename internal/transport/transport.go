// Package transport implements the reliable transport running between the
// sender machines and the receiver host: per-connection congestion-
// controlled data streams (the paper's 16 KB remote reads segmented into
// 4 KB-MTU packets), per-packet acknowledgements carrying the delay
// signals congestion control consumes, and timeout-based loss recovery.
//
// Congestion control is pluggable through the CongestionControl
// interface; the swift and dctcp subpackages provide the paper's
// protocol and the TCP-like baseline respectively.
package transport

import (
	"fmt"
	"sort"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// AckInfo is the signal set delivered to congestion control on every ACK.
type AckInfo struct {
	// Now is the ACK arrival time at the sender.
	Now sim.Time
	// RTT is the full send→ack round trip.
	RTT sim.Duration
	// FabricDelay is the forward one-way fabric component.
	FabricDelay sim.Duration
	// HostDelay is the receiver-host component (NIC arrival → delivery),
	// the signal Swift's host target compares against.
	HostDelay sim.Duration
	// ECN is the fabric congestion mark (DCTCP baseline).
	ECN bool
	// HostECN is the sub-RTT host congestion mark (§4 extension).
	HostECN bool
	// AckedBytes is the payload acknowledged.
	AckedBytes int
}

// CongestionControl is the per-connection congestion controller.
type CongestionControl interface {
	// OnAck processes one acknowledgement.
	OnAck(info AckInfo)
	// OnLoss reports a timeout-detected loss.
	OnLoss(now sim.Time)
	// Cwnd returns the congestion window in packets (may be fractional;
	// values below 1 mean the connection paces slower than 1 packet/RTT).
	Cwnd() float64
	// Name identifies the protocol in reports.
	Name() string
}

// Config describes a connection.
type Config struct {
	// MTU is the data payload per packet (paper: 4 KB).
	MTU int
	// ReadSize is the RPC read size (paper: 16 KB) — an accounting
	// granularity: ReadSize/MTU packets complete one read.
	ReadSize int
	// RTOMin is the minimum retransmission timeout.
	RTOMin sim.Duration
	// RTOSRTTFactor scales smoothed RTT into the timeout.
	RTOSRTTFactor float64
	// RetxScan is the period of the retransmission scan.
	RetxScan sim.Duration
	// MaxInflightPackets caps the window regardless of cwnd (descriptor
	// and buffer provisioning at the receiver).
	MaxInflightPackets int
	// AppRateLimit caps the connection's offered load in bits/second
	// (0 = unlimited). Application-limited senders are how a host can
	// run well below its access-link rate — and still drop packets when
	// the host interconnect capacity falls below even that (Figure 1's
	// low-utilization drops).
	AppRateLimit sim.BitsPerSecond
}

// DefaultConfig returns the paper-workload connection configuration.
func DefaultConfig() Config {
	return Config{
		MTU:                4096,
		ReadSize:           16 << 10,
		RTOMin:             200 * sim.Microsecond,
		RTOSRTTFactor:      3,
		RetxScan:           50 * sim.Microsecond,
		MaxInflightPackets: 256,
	}
}

func (c Config) validate() error {
	if c.MTU <= 0 {
		return fmt.Errorf("transport: MTU must be positive")
	}
	if c.ReadSize < c.MTU {
		return fmt.Errorf("transport: ReadSize %d < MTU %d", c.ReadSize, c.MTU)
	}
	if c.RTOMin <= 0 || c.RetxScan <= 0 {
		return fmt.Errorf("transport: RTOMin and RetxScan must be positive")
	}
	if c.RTOSRTTFactor < 1 {
		return fmt.Errorf("transport: RTOSRTTFactor %v < 1", c.RTOSRTTFactor)
	}
	if c.MaxInflightPackets <= 0 {
		return fmt.Errorf("transport: MaxInflightPackets must be positive")
	}
	if c.AppRateLimit < 0 {
		return fmt.Errorf("transport: negative AppRateLimit")
	}
	return nil
}

type sentInfo struct {
	at        sim.Time
	payload   int
	retx      int
	laterAcks int // acks for higher sequences seen since (re)send
}

// fastRetxDupAcks is the dup-ack threshold for fast retransmit: once this
// many later packets are acknowledged while a sequence is outstanding,
// the packet is declared lost without waiting for the RTO.
const fastRetxDupAcks = 3

// Conn is the sender side of one connection (one sender machine ↔ one
// receiver thread). It models an infinite stream of 16 KB remote reads:
// the sender always has payload available and the congestion controller
// alone sets the rate.
type Conn struct {
	engine *sim.Engine
	cfg    Config
	cc     CongestionControl
	flow   uint32
	sender int
	queue  int
	emit   func(sender int, p *pkt.Packet)

	nextSeq  uint64
	nextID   uint64
	inflight map[uint64]*sentInfo
	srtt     sim.Duration
	pool     *pkt.Pool // packet free list; data packets are drawn here

	// Per-read (RPC) completion tracking for tail-latency measurement.
	readStart map[uint64]sim.Time
	readAcked map[uint64]int

	paceUntil sim.Time // earliest next send when cwnd < 1
	appUntil  sim.Time // earliest next send under the app rate limit
	inactive  bool     // application idle (burst off-phase)

	sent      *metrics.Counter
	ackedB    *metrics.Counter
	retx      *metrics.Counter
	losses    *metrics.Counter
	rttHist   *metrics.Histogram
	hostDHist *metrics.Histogram
	readHist  *metrics.Histogram // ns, 16KB read issue → fully acked
}

// NewConn creates a connection. emit injects a packet into the fabric on
// behalf of this connection's sender machine.
func NewConn(engine *sim.Engine, reg *metrics.Registry, cfg Config, cc CongestionControl,
	flow uint32, sender, queue int, emit func(sender int, p *pkt.Packet)) (*Conn, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cc == nil || emit == nil {
		return nil, fmt.Errorf("transport: cc and emit are required")
	}
	c := &Conn{
		engine:    engine,
		cfg:       cfg,
		cc:        cc,
		flow:      flow,
		sender:    sender,
		queue:     queue,
		emit:      emit,
		inflight:  make(map[uint64]*sentInfo),
		readStart: make(map[uint64]sim.Time),
		readAcked: make(map[uint64]int),
		srtt:      20 * sim.Microsecond, // prior until measured
		sent:      reg.Counter("transport.sent.packets"),
		ackedB:    reg.Counter("transport.acked.bytes"),
		retx:      reg.Counter("transport.retx.packets"),
		losses:    reg.Counter("transport.losses"),
		rttHist:   reg.Histogram("transport.rtt.ns"),
		hostDHist: reg.Histogram("transport.host.delay.ns"),
		readHist:  reg.Histogram("transport.read.latency.ns"),
	}
	engine.Every(cfg.RetxScan, c.scanRetransmits)
	return c, nil
}

// SetPool installs the run's packet free list: new data packets
// (including retransmissions) are drawn from it instead of the heap. The
// connection never releases — ownership of an emitted packet passes to
// the fabric and onward to whichever component sees it die.
func (c *Conn) SetPool(pool *pkt.Pool) { c.pool = pool }

// Start begins transmission.
func (c *Conn) Start() { c.trySend() }

// CC exposes the connection's congestion controller.
func (c *Conn) CC() CongestionControl { return c.cc }

// Flow returns the connection's flow identifier.
func (c *Conn) Flow() uint32 { return c.flow }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Duration { return c.srtt }

// InflightPackets returns the current outstanding packet count.
func (c *Conn) InflightPackets() int { return len(c.inflight) }

// WarmState is a connection's serializable congestion state — the part
// of steady state that takes many RTTs to re-learn on a cold start and
// therefore dominates the ramp a warm-started simulation skips.
type WarmState struct {
	Cwnd float64      `json:"cwnd"`
	SRTT sim.Duration `json:"srtt"`
}

// CwndPrimer is implemented by congestion controllers whose window can
// be seeded from a converged donor run (Swift, DCTCP). Fixed-window
// controllers deliberately do not implement it: their window is part of
// the scenario, not learned state.
type CwndPrimer interface {
	SetCwnd(cwnd float64)
}

// WarmState captures the connection's congestion state for a steady-
// state checkpoint.
func (c *Conn) WarmState() WarmState {
	return WarmState{Cwnd: c.cc.Cwnd(), SRTT: c.srtt}
}

// Prime seeds the connection with donor congestion state. Call before
// Start: the first transmissions then pace at the donor's converged
// window and RTT estimate instead of the configured initial window. The
// controller's own clamps stay authoritative, and non-positive donor
// values are ignored.
func (c *Conn) Prime(ws WarmState) {
	if ws.SRTT > 0 {
		c.srtt = ws.SRTT
	}
	if ws.Cwnd > 0 {
		if p, ok := c.cc.(CwndPrimer); ok {
			p.SetCwnd(ws.Cwnd)
		}
	}
}

// SetActive pauses (false) or resumes (true) the application. While
// inactive the connection sends nothing new; in-flight packets drain
// normally. Bursty workloads toggle this — and because the congestion
// window survives the idle phase, reactivation slams the receiver at the
// old rate, the burst behaviour behind Figure 1's low-utilization drops.
func (c *Conn) SetActive(active bool) {
	if c.inactive == !active {
		return
	}
	c.inactive = !active
	if active {
		c.trySend()
	}
}

// trySend transmits as long as the congestion window allows. For cwnd<1
// it paces: one packet every srtt/cwnd.
func (c *Conn) trySend() {
	if c.inactive {
		return
	}
	for {
		cwnd := c.cc.Cwnd()
		limit := int(cwnd)
		if limit > c.cfg.MaxInflightPackets {
			limit = c.cfg.MaxInflightPackets
		}
		now := c.engine.Now()
		if c.cfg.AppRateLimit > 0 && now < c.appUntil {
			c.engine.At(c.appUntil, c.trySend)
			return
		}
		if cwnd < 1 {
			if len(c.inflight) > 0 {
				return // sub-1 window: at most one packet outstanding
			}
			if now < c.paceUntil {
				c.engine.At(c.paceUntil, c.trySend)
				return
			}
			// ±15% deterministic jitter desynchronizes the hundreds of
			// sub-1-cwnd flows sharing the access link; without it their
			// sawtooths can resonate and underutilize the link.
			interval := c.engine.RNG().Jitter(sim.Duration(float64(c.srtt)/cwnd), 0.15)
			c.paceUntil = now.Add(interval)
			c.sendOne()
			return
		}
		if len(c.inflight) >= limit {
			return
		}
		c.sendOne()
	}
}

func (c *Conn) sendOne() {
	if c.cfg.AppRateLimit > 0 {
		c.appUntil = c.engine.Now().Add(c.cfg.AppRateLimit.TransmitTime(c.cfg.MTU))
	}
	seq := c.nextSeq
	c.nextSeq++
	p := c.pool.Data(c.nextID, c.flow, c.queue, seq, c.cfg.MTU)
	c.nextID++
	p.ReqID = seq / uint64(c.cfg.ReadSize/c.cfg.MTU)
	if _, started := c.readStart[p.ReqID]; !started {
		// First packet of a 16 KB read: the RPC clock starts here
		// (retransmissions do not reset it).
		c.readStart[p.ReqID] = c.engine.Now()
	}
	c.inflight[seq] = &sentInfo{at: c.engine.Now(), payload: c.cfg.MTU}
	c.sent.Inc()
	c.emit(c.sender, p)
}

// completeReadPacket advances RPC accounting for an acked sequence and
// records the read's completion latency when its last packet arrives.
func (c *Conn) completeReadPacket(seq uint64) {
	per := c.cfg.ReadSize / c.cfg.MTU
	req := seq / uint64(per)
	c.readAcked[req]++
	if c.readAcked[req] < per {
		return
	}
	if start, ok := c.readStart[req]; ok {
		c.readHist.Observe(float64(c.engine.Now().Sub(start)))
	}
	delete(c.readStart, req)
	delete(c.readAcked, req)
}

// OnAck processes an acknowledgement arriving from the fabric.
func (c *Conn) OnAck(a *pkt.Packet) {
	info, ok := c.inflight[a.AckSeq]
	if !ok {
		return // duplicate ack for an already-retired packet
	}
	delete(c.inflight, a.AckSeq)
	c.completeReadPacket(a.AckSeq)
	now := c.engine.Now()
	rtt := now.Sub(info.at)
	if info.retx == 0 {
		// Karn's rule: only un-retransmitted samples update the RTT.
		if c.srtt == 0 {
			c.srtt = rtt
		} else {
			c.srtt = c.srtt/8*7 + rtt/8
		}
		c.rttHist.Observe(float64(rtt))
		c.hostDHist.Observe(float64(a.EchoHostDelay))
	}
	c.fastRetransmit(a.AckSeq)
	c.ackedB.Add(uint64(a.AckedBytes))
	c.cc.OnAck(AckInfo{
		Now:         now,
		RTT:         rtt,
		FabricDelay: a.EchoFabric,
		HostDelay:   a.EchoHostDelay,
		ECN:         a.EchoECN,
		HostECN:     a.HostECN,
		AckedBytes:  a.AckedBytes,
	})
	c.trySend()
}

// fastRetransmit counts later-sequence acknowledgements against each
// still-outstanding earlier sequence; at the dup-ack threshold the packet
// is resent immediately and the loss reported to congestion control.
// Loss episodes then end within ~1 RTT instead of a full RTO.
func (c *Conn) fastRetransmit(ackedSeq uint64) {
	lost := false
	for _, seq := range c.sortedInflight() {
		if seq >= ackedSeq {
			continue
		}
		info := c.inflight[seq]
		info.laterAcks++
		if info.laterAcks < fastRetxDupAcks {
			continue
		}
		lost = true
		info.at = c.engine.Now()
		info.retx++
		info.laterAcks = 0
		c.retx.Inc()
		p := c.pool.Data(c.nextID, c.flow, c.queue, seq, info.payload)
		c.nextID++
		p.ReqID = seq / uint64(c.cfg.ReadSize/c.cfg.MTU)
		c.emit(c.sender, p)
	}
	if lost {
		c.losses.Inc()
		c.cc.OnLoss(c.engine.Now())
	}
}

// sortedInflight returns outstanding sequences in ascending order:
// iterating the map directly would retransmit in random order and break
// run reproducibility.
func (c *Conn) sortedInflight() []uint64 {
	seqs := make([]uint64, 0, len(c.inflight))
	for seq := range c.inflight {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// rto returns the current retransmission timeout.
func (c *Conn) rto() sim.Duration {
	rto := sim.Duration(float64(c.srtt) * c.cfg.RTOSRTTFactor)
	if rto < c.cfg.RTOMin {
		rto = c.cfg.RTOMin
	}
	return rto
}

// scanRetransmits resends packets whose timeout has expired and informs
// congestion control of the loss (once per scan; the controller applies
// its own per-RTT clamp).
func (c *Conn) scanRetransmits() {
	now := c.engine.Now()
	rto := c.rto()
	lost := false
	for _, seq := range c.sortedInflight() {
		info := c.inflight[seq]
		// Exponential backoff per retransmission: the smoothed RTT lags
		// badly when host queues balloon (Karn's rule excludes
		// retransmitted samples), and without backoff a too-short RTO
		// spirals into a spurious-retransmission storm.
		backoff := info.retx
		if backoff > 6 {
			backoff = 6
		}
		if now.Sub(info.at) < rto<<uint(backoff) {
			continue
		}
		lost = true
		// Karn's rule keeps retransmitted samples out of srtt, but when
		// every packet times out srtt would never learn the true RTT
		// and the too-short RTO would fire forever. A timeout is itself
		// a lower-bound RTT observation: pull srtt up to the elapsed
		// wait.
		if elapsed := now.Sub(info.at); elapsed > c.srtt {
			c.srtt = elapsed
		}
		info.at = now
		info.retx++
		info.laterAcks = 0
		c.retx.Inc()
		p := c.pool.Data(c.nextID, c.flow, c.queue, seq, info.payload)
		c.nextID++
		p.ReqID = seq / uint64(c.cfg.ReadSize/c.cfg.MTU)
		c.emit(c.sender, p)
	}
	if lost {
		c.losses.Inc()
		c.cc.OnLoss(now)
		c.trySend()
	}
}

// Stats is a snapshot of sender-side connection activity.
type Stats struct {
	SentPackets   uint64
	AckedBytes    uint64
	Retransmits   uint64
	LossEvents    uint64
	InflightCount int
}

// Stats returns current counters.
func (c *Conn) Stats() Stats {
	return Stats{
		SentPackets:   c.sent.Value(),
		AckedBytes:    c.ackedB.Value(),
		Retransmits:   c.retx.Value(),
		LossEvents:    c.losses.Value(),
		InflightCount: len(c.inflight),
	}
}
