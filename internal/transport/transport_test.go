package transport

import (
	"testing"
	"testing/quick"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// fixedCC is a local constant-window controller for transport tests.
type fixedCC struct {
	cwnd   float64
	acks   int
	losses int
}

func (f *fixedCC) OnAck(AckInfo)   { f.acks++ }
func (f *fixedCC) OnLoss(sim.Time) { f.losses++ }
func (f *fixedCC) Cwnd() float64   { return f.cwnd }
func (f *fixedCC) Name() string    { return "test-fixed" }

// wire is a loopback test fabric with configurable delay and loss.
type wire struct {
	engine   *sim.Engine
	delay    sim.Duration
	dropSeqs map[uint64]bool // data seqs to drop once
	sent     []*pkt.Packet
	recv     *Receiver
	conn     *Conn
}

func newWire(t *testing.T, cfg Config, cc CongestionControl) *wire {
	t.Helper()
	w := &wire{engine: sim.NewEngine(1), delay: 10 * sim.Microsecond, dropSeqs: map[uint64]bool{}}
	reg := metrics.NewRegistry()
	var err error
	w.recv, err = NewReceiver(w.engine, reg, cfg, func(ack *pkt.Packet) {
		w.engine.After(w.delay, func() { w.conn.OnAck(ack) })
	})
	if err != nil {
		t.Fatal(err)
	}
	w.conn, err = NewConn(w.engine, reg, cfg, cc, 1, 0, 0, func(sender int, p *pkt.Packet) {
		w.sent = append(w.sent, p)
		if w.dropSeqs[p.Seq] {
			delete(w.dropSeqs, p.Seq)
			return // lost on the wire
		}
		w.engine.After(w.delay, func() {
			p.NICArrival = w.engine.Now()
			p.Delivered = w.engine.Now()
			p.EchoHostDelay = 2 * sim.Microsecond
			p.EchoFabric = w.delay
			w.recv.Deliver(p)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MTU = 0 },
		func(c *Config) { c.ReadSize = 100 },
		func(c *Config) { c.RTOMin = 0 },
		func(c *Config) { c.RetxScan = 0 },
		func(c *Config) { c.RTOSRTTFactor = 0.5 },
		func(c *Config) { c.MaxInflightPackets = 0 },
		func(c *Config) { c.AppRateLimit = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		e := sim.NewEngine(1)
		if _, err := NewConn(e, metrics.NewRegistry(), cfg, &fixedCC{cwnd: 1}, 1, 0, 0,
			func(int, *pkt.Packet) {}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := NewReceiver(e, metrics.NewRegistry(), cfg, func(*pkt.Packet) {}); err == nil {
			t.Errorf("case %d: receiver accepted invalid config", i)
		}
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	cc := &fixedCC{cwnd: 4}
	w := newWire(t, DefaultConfig(), cc)
	w.conn.Start()
	if got := w.conn.InflightPackets(); got != 4 {
		t.Fatalf("inflight = %d, want cwnd=4", got)
	}
	w.engine.Run(w.engine.Now().Add(sim.Millisecond))
	// Steady state: acks release slots, new sends fill them.
	if got := w.conn.InflightPackets(); got != 4 {
		t.Errorf("steady inflight = %d, want 4", got)
	}
	if cc.acks == 0 {
		t.Error("no acks delivered to CC")
	}
}

func TestSubUnityPacing(t *testing.T) {
	cc := &fixedCC{cwnd: 0.5}
	w := newWire(t, DefaultConfig(), cc)
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(sim.Millisecond))
	// cwnd 0.5 with srtt converging to ~20µs: roughly one packet per
	// 2·srtt. In 1ms that is well under the back-to-back count.
	sent := len(w.sent)
	if sent == 0 {
		t.Fatal("no packets sent at sub-1 cwnd")
	}
	if sent > 40 {
		t.Errorf("sent %d packets at cwnd=0.5; pacing is not limiting", sent)
	}
	if w.conn.InflightPackets() > 1 {
		t.Errorf("inflight %d > 1 at sub-1 cwnd", w.conn.InflightPackets())
	}
}

func TestAppRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AppRateLimit = sim.Gbps(1) // ≈ 30.5 packets/ms at 4KB
	w := newWire(t, cfg, &fixedCC{cwnd: 64})
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(10 * sim.Millisecond))
	rate := float64(len(w.sent)*4096*8) / 0.010 / 1e9
	if rate > 1.1 || rate < 0.8 {
		t.Errorf("app-limited rate = %.2f Gbps, want ≈1", rate)
	}
}

func TestRetransmitOnTimeoutAndDedup(t *testing.T) {
	cc := &fixedCC{cwnd: 2}
	w := newWire(t, DefaultConfig(), cc)
	w.dropSeqs[1] = true
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(5 * sim.Millisecond))
	st := w.conn.Stats()
	if st.Retransmits == 0 {
		t.Fatal("lost packet never retransmitted")
	}
	if cc.losses == 0 {
		t.Error("loss not reported to CC")
	}
	// All distinct payloads delivered exactly once.
	if w.recv.DuplicatePackets() > st.Retransmits {
		t.Errorf("duplicates %d exceed retransmits %d", w.recv.DuplicatePackets(), st.Retransmits)
	}
	if w.recv.GoodputBytes() == 0 {
		t.Fatal("no goodput")
	}
	// Goodput counts distinct sequences only.
	distinct := uint64(len(w.sent)) - st.Retransmits
	if w.recv.GoodputBytes() > distinct*4096 {
		t.Errorf("goodput %d exceeds distinct payload %d", w.recv.GoodputBytes(), distinct*4096)
	}
}

func TestFastRetransmitBeatsRTO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTOMin = 50 * sim.Millisecond // RTO effectively disabled
	cc := &fixedCC{cwnd: 8}
	w := newWire(t, cfg, cc)
	w.dropSeqs[2] = true
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(2 * sim.Millisecond))
	if w.conn.Stats().Retransmits == 0 {
		t.Fatal("fast retransmit did not fire (RTO disabled)")
	}
	if cc.losses == 0 {
		t.Error("fast-retransmit loss not reported to CC")
	}
}

func TestKarnsRuleSkipsRetransmittedRTT(t *testing.T) {
	cfg := DefaultConfig()
	cc := &fixedCC{cwnd: 1}
	w := newWire(t, cfg, cc)
	w.dropSeqs[0] = true // first packet lost: its ack sample must not poison srtt
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(5 * sim.Millisecond))
	// srtt should reflect the ~22µs loop, not the ~RTO-long first sample.
	if w.conn.SRTT() > 100*sim.Microsecond {
		t.Errorf("srtt = %v, polluted by retransmitted sample", w.conn.SRTT())
	}
}

func TestReadAccounting(t *testing.T) {
	w := newWire(t, DefaultConfig(), &fixedCC{cwnd: 8})
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(2 * sim.Millisecond))
	reads := w.recv.CompletedReads()
	goodput := w.recv.GoodputBytes()
	if reads == 0 {
		t.Fatal("no reads completed")
	}
	per := uint64(DefaultConfig().ReadSize)
	if reads != goodput/per {
		t.Errorf("reads = %d, want goodput/16KB = %d", reads, goodput/per)
	}
}

func TestSetActivePausesAndResumes(t *testing.T) {
	w := newWire(t, DefaultConfig(), &fixedCC{cwnd: 4})
	w.conn.Start()
	w.engine.Run(w.engine.Now().Add(sim.Millisecond))
	w.conn.SetActive(false)
	w.engine.Run(w.engine.Now().Add(sim.Millisecond))
	atPause := len(w.sent)
	w.engine.Run(w.engine.Now().Add(2 * sim.Millisecond))
	if len(w.sent) > atPause {
		t.Errorf("sent %d packets while inactive", len(w.sent)-atPause)
	}
	w.conn.SetActive(true)
	w.engine.Run(w.engine.Now().Add(sim.Millisecond))
	if len(w.sent) == atPause {
		t.Error("no packets after reactivation")
	}
}

func TestReceiverRejectsNonData(t *testing.T) {
	e := sim.NewEngine(1)
	r, err := NewReceiver(e, metrics.NewRegistry(), DefaultConfig(), func(*pkt.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-data packet did not panic")
		}
	}()
	r.Deliver(&pkt.Packet{Kind: pkt.Ack})
}

// Property: the sequence window reports a duplicate exactly when a
// sequence repeats within the window span.
func TestSeqWindowProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		w := newSeqWindow()
		seen := map[uint64]bool{}
		for _, s := range seqs {
			seq := uint64(s)
			dup := w.observe(seq)
			if dup != seen[seq] {
				return false
			}
			seen[seq] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeqWindowAncientSequenceIsDuplicate(t *testing.T) {
	w := newSeqWindow()
	if w.observe(windowSpan * 3) {
		t.Fatal("fresh sequence flagged as duplicate")
	}
	if !w.observe(1) {
		t.Error("ancient sequence (outside the window) must be treated as duplicate")
	}
}

func TestSeqWindowClearsOnAdvance(t *testing.T) {
	w := newSeqWindow()
	w.observe(5)
	// Advance far enough that seq 5's slot is recycled.
	w.observe(5 + windowSpan)
	if !w.observe(5) {
		t.Error("recycled old sequence must read as duplicate (conservative)")
	}
	// The slot for (5 + windowSpan) itself must still be set.
	if !w.observe(5 + windowSpan) {
		t.Error("recent sequence lost")
	}
}

func BenchmarkConnSteadyState(b *testing.B) {
	e := sim.NewEngine(1)
	reg := metrics.NewRegistry()
	var conn *Conn
	recv, err := NewReceiver(e, reg, DefaultConfig(), func(ack *pkt.Packet) {
		e.After(5*sim.Microsecond, func() { conn.OnAck(ack) })
	})
	if err != nil {
		b.Fatal(err)
	}
	conn, err = NewConn(e, reg, DefaultConfig(), &fixedCC{cwnd: 16}, 1, 0, 0,
		func(sender int, p *pkt.Packet) {
			e.After(5*sim.Microsecond, func() {
				p.EchoHostDelay = sim.Microsecond
				recv.Deliver(p)
			})
		})
	if err != nil {
		b.Fatal(err)
	}
	conn.Start()
	b.ReportAllocs()
	b.ResetTimer()
	target := uint64(b.N)
	for recv.GoodputBytes()/4096 < target {
		e.Run(e.Now().Add(sim.Millisecond))
	}
}
