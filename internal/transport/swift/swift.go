// Package swift implements the Swift congestion-control protocol (Kumar
// et al., SIGCOMM 2020) as used by the paper's production stack: delay-
// based AIMD with separate targets for the fabric and the host components
// of the measured delay. The host target (100 µs in the paper) is the
// crux of §3.1's analysis — with a ~1 MB NIC buffer draining in under
// 90 µs at high rates, host congestion stays below the target and Swift
// simply does not react until throughput has already collapsed below
// ~81 Gbps.
package swift

import (
	"fmt"
	"math"

	"hic/internal/sim"
	"hic/internal/transport"
)

// Config holds Swift's parameters (defaults follow the paper's setup).
type Config struct {
	// FabricTarget is the target fabric delay.
	FabricTarget sim.Duration
	// HostTarget is the target host delay (paper: 100 µs).
	HostTarget sim.Duration
	// AI is the additive increase in packets per RTT.
	AI float64
	// Beta scales the multiplicative decrease with delay excess.
	Beta float64
	// MaxMDF caps a single multiplicative decrease.
	MaxMDF float64
	// MinCwnd / MaxCwnd clamp the window (packets; MinCwnd may be < 1,
	// enforced via pacing).
	MinCwnd, MaxCwnd float64
	// LossMDF is the decrease applied on a retransmission timeout.
	LossMDF float64
	// FSAlpha and FSMax implement Swift's flow scaling: the effective
	// fabric target grows by FSAlpha·(1/√cwnd − 1), clamped to FSMax,
	// so the many sub-1-cwnd flows of incast-like workloads tolerate a
	// proportionally deeper shared queue instead of oscillating into
	// underutilization.
	FSAlpha sim.Duration
	FSMax   sim.Duration
	// SubRTTHostECN enables the §4 extension: react immediately (not
	// once-per-RTT) to the NIC's host-ECN mark.
	SubRTTHostECN bool
}

// DefaultConfig returns the paper-testbed Swift parameters.
func DefaultConfig() Config {
	return Config{
		FabricTarget: 60 * sim.Microsecond,
		HostTarget:   100 * sim.Microsecond,
		AI:           0.1,
		FSAlpha:      0,
		FSMax:        0,
		Beta:         0.8,
		MaxMDF:       0.5,
		MinCwnd:      0.05,
		MaxCwnd:      256,
		LossMDF:      0.5,
	}
}

func (c Config) validate() error {
	if c.FabricTarget <= 0 || c.HostTarget <= 0 {
		return fmt.Errorf("swift: targets must be positive")
	}
	if c.AI <= 0 {
		return fmt.Errorf("swift: AI must be positive")
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("swift: Beta outside (0,1]")
	}
	if c.MaxMDF <= 0 || c.MaxMDF >= 1 {
		return fmt.Errorf("swift: MaxMDF outside (0,1)")
	}
	if c.LossMDF <= 0 || c.LossMDF >= 1 {
		return fmt.Errorf("swift: LossMDF outside (0,1)")
	}
	if c.MinCwnd <= 0 || c.MaxCwnd < c.MinCwnd {
		return fmt.Errorf("swift: bad cwnd clamps [%v, %v]", c.MinCwnd, c.MaxCwnd)
	}
	if c.FSAlpha < 0 || c.FSMax < 0 {
		return fmt.Errorf("swift: negative flow-scaling parameter")
	}
	return nil
}

// Swift is one connection's controller.
type Swift struct {
	cfg  Config
	cwnd float64

	lastDecrease sim.Time
	lastRTT      sim.Duration
}

// New returns a Swift controller starting from an initial window.
func New(cfg Config, initialCwnd float64) (*Swift, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Swift{cfg: cfg, cwnd: initialCwnd, lastDecrease: -1 << 62}
	s.clamp()
	return s, nil
}

// Name implements transport.CongestionControl.
func (s *Swift) Name() string { return "swift" }

// Cwnd implements transport.CongestionControl.
func (s *Swift) Cwnd() float64 { return s.cwnd }

// SetCwnd implements transport.CwndPrimer: it seeds the window from a
// converged donor run on warm start. The configured clamps still apply.
func (s *Swift) SetCwnd(cwnd float64) {
	s.cwnd = cwnd
	s.clamp()
}

func (s *Swift) clamp() {
	if s.cwnd < s.cfg.MinCwnd {
		s.cwnd = s.cfg.MinCwnd
	}
	if s.cwnd > s.cfg.MaxCwnd {
		s.cwnd = s.cfg.MaxCwnd
	}
}

// fabricTarget returns the flow-scaled fabric delay target.
func (s *Swift) fabricTarget() sim.Duration {
	t := s.cfg.FabricTarget
	if s.cwnd < 1 {
		extra := sim.Duration(float64(s.cfg.FSAlpha) * (1/math.Sqrt(s.cwnd) - 1))
		if extra > s.cfg.FSMax {
			extra = s.cfg.FSMax
		}
		t += extra
	}
	return t
}

// canDecrease enforces at most one multiplicative decrease per RTT.
func (s *Swift) canDecrease(now sim.Time) bool {
	return now.Sub(s.lastDecrease) >= s.lastRTT
}

// OnAck implements the Swift update rule: if either delay component is
// above its target, decrease proportionally to the excess (clamped, at
// most once per RTT); otherwise increase additively.
func (s *Swift) OnAck(info transport.AckInfo) {
	s.lastRTT = info.RTT

	// Sub-RTT host ECN (§4 extension): the NIC observed buffer pressure
	// less than one RTT ago. React faster than the per-RTT clamp allows
	// (up to four cuts per RTT) but with a proportionally smaller step,
	// so the early signal drains the buffer without collapsing the rate.
	if s.cfg.SubRTTHostECN && info.HostECN {
		if info.Now.Sub(s.lastDecrease) >= s.lastRTT/4 {
			s.cwnd *= 1 - s.cfg.MaxMDF/4
			s.lastDecrease = info.Now
			s.clamp()
		}
		return
	}

	hostExcess := info.HostDelay - s.cfg.HostTarget
	fabricExcess := info.FabricDelay - s.fabricTarget()
	excess := hostExcess
	delay := info.HostDelay
	if fabricExcess > hostExcess {
		excess = fabricExcess
		delay = info.FabricDelay
	}

	if excess > 0 && delay > 0 {
		if s.canDecrease(info.Now) {
			md := s.cfg.Beta * float64(excess) / float64(delay)
			if md > s.cfg.MaxMDF {
				md = s.cfg.MaxMDF
			}
			s.cwnd *= 1 - md
			s.lastDecrease = info.Now
		}
	} else if s.cwnd >= 1 {
		// ai/cwnd per ack sums to ai packets per RTT.
		s.cwnd += s.cfg.AI / s.cwnd
	} else {
		// Below one packet, acks arrive once per rtt/cwnd; growing the
		// window by a fraction of itself keeps the per-RTT probe small
		// (hundreds of sub-1 connections adding a full AI each would
		// burst the shared NIC buffer).
		s.cwnd += s.cfg.AI * s.cwnd
	}
	s.clamp()
}

// OnLoss halves the window (once per RTT).
func (s *Swift) OnLoss(now sim.Time) {
	if !s.canDecrease(now) {
		return
	}
	s.cwnd *= 1 - s.cfg.LossMDF
	s.lastDecrease = now
	s.clamp()
}

var _ transport.CongestionControl = (*Swift)(nil)
