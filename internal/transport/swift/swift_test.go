package swift

import (
	"testing"
	"testing/quick"

	"hic/internal/sim"
	"hic/internal/transport"
)

func ack(now sim.Time, host, fabric sim.Duration) transport.AckInfo {
	return transport.AckInfo{
		Now:         now,
		RTT:         fabric + host + 10*sim.Microsecond,
		FabricDelay: fabric,
		HostDelay:   host,
		AckedBytes:  4096,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.FabricTarget = 0 },
		func(c *Config) { c.HostTarget = 0 },
		func(c *Config) { c.AI = 0 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.Beta = 1.5 },
		func(c *Config) { c.MaxMDF = 0 },
		func(c *Config) { c.MaxMDF = 1 },
		func(c *Config) { c.LossMDF = 0 },
		func(c *Config) { c.MinCwnd = 0 },
		func(c *Config) { c.MaxCwnd = 0.001 },
		func(c *Config) { c.FSAlpha = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAdditiveIncreaseBelowTargets(t *testing.T) {
	s, err := New(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Cwnd()
	for i := 0; i < 10; i++ {
		s.OnAck(ack(sim.Time(i)*1000, 10*sim.Microsecond, 10*sim.Microsecond))
	}
	if s.Cwnd() <= before {
		t.Errorf("cwnd did not grow below targets: %v -> %v", before, s.Cwnd())
	}
	// ai/cwnd per ack: 10 acks at cwnd≈4 grow by ≈10·AI/4.
	want := before + 10*DefaultConfig().AI/before
	if s.Cwnd() > want*1.1 {
		t.Errorf("cwnd grew too fast: %v, want ≈%v", s.Cwnd(), want)
	}
}

func TestHostDelayAboveTargetDecreases(t *testing.T) {
	s, err := New(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Cwnd()
	s.OnAck(ack(1000, 200*sim.Microsecond, 10*sim.Microsecond))
	if s.Cwnd() >= before {
		t.Errorf("cwnd did not decrease on host delay violation: %v", s.Cwnd())
	}
	md := (before - s.Cwnd()) / before
	if md > DefaultConfig().MaxMDF+1e-9 {
		t.Errorf("single decrease %v exceeds MaxMDF", md)
	}
}

func TestDecreaseAtMostOncePerRTT(t *testing.T) {
	s, err := New(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Establish lastRTT with one over-target ack.
	s.OnAck(ack(sim.Time(sim.Millisecond), 200*sim.Microsecond, 10*sim.Microsecond))
	after1 := s.Cwnd()
	// A second violation within the same RTT must be ignored.
	s.OnAck(ack(sim.Time(sim.Millisecond)+1000, 300*sim.Microsecond, 10*sim.Microsecond))
	if s.Cwnd() != after1 {
		t.Errorf("second decrease within one RTT: %v -> %v", after1, s.Cwnd())
	}
	// After an RTT has elapsed it may decrease again.
	later := sim.Time(sim.Millisecond) + sim.Time(s.lastRTT) + 1000
	s.OnAck(ack(later, 300*sim.Microsecond, 10*sim.Microsecond))
	if s.Cwnd() >= after1 {
		t.Error("decrease did not resume after an RTT")
	}
}

func TestDecreaseProportionalToExcess(t *testing.T) {
	mk := func(host sim.Duration) float64 {
		s, err := New(DefaultConfig(), 8)
		if err != nil {
			t.Fatal(err)
		}
		s.OnAck(ack(1000, host, 10*sim.Microsecond))
		return 8 - s.Cwnd()
	}
	small := mk(110 * sim.Microsecond) // barely above the 100µs target
	large := mk(190 * sim.Microsecond)
	if small <= 0 || large <= small {
		t.Errorf("decrease not proportional to excess: small=%v large=%v", small, large)
	}
}

func TestFabricTargetAlsoTriggers(t *testing.T) {
	s, err := New(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Cwnd()
	s.OnAck(ack(1000, 10*sim.Microsecond, 300*sim.Microsecond))
	if s.Cwnd() >= before {
		t.Error("fabric delay violation ignored")
	}
}

func TestSubUnityGrowthIsRelative(t *testing.T) {
	s, err := New(DefaultConfig(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s.OnAck(ack(1000, 10*sim.Microsecond, 10*sim.Microsecond))
	want := 0.1 * (1 + DefaultConfig().AI)
	if got := s.Cwnd(); got < 0.1 || got > want+1e-9 {
		t.Errorf("sub-1 growth = %v, want ≤ %v (AI·cwnd per ack)", got, want)
	}
}

func TestOnLossHalvesOncePerRTT(t *testing.T) {
	s, err := New(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	s.OnAck(ack(1000, 10*sim.Microsecond, 10*sim.Microsecond)) // set lastRTT
	c0 := s.Cwnd()
	s.OnLoss(sim.Time(sim.Millisecond))
	c1 := s.Cwnd()
	if c1 >= c0 {
		t.Fatal("loss did not decrease cwnd")
	}
	s.OnLoss(sim.Time(sim.Millisecond) + 1)
	if s.Cwnd() != c1 {
		t.Error("second loss within an RTT decreased again")
	}
}

func TestClamps(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cwnd() != cfg.MaxCwnd {
		t.Errorf("initial cwnd not clamped to max: %v", s.Cwnd())
	}
	for i := 0; i < 200; i++ {
		s.OnAck(ack(sim.Time(i)*sim.Time(sim.Millisecond), sim.Second, sim.Second))
		s.OnLoss(sim.Time(i)*sim.Time(sim.Millisecond) + 500000)
	}
	if s.Cwnd() < cfg.MinCwnd {
		t.Errorf("cwnd %v below floor", s.Cwnd())
	}
}

func TestSubRTTHostECNReactsImmediately(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubRTTHostECN = true
	s, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := ack(1000, 10*sim.Microsecond, 10*sim.Microsecond)
	a.HostECN = true
	s.OnAck(a)
	c1 := s.Cwnd()
	if c1 >= 8 {
		t.Fatal("host ECN ignored")
	}
	// Host-ECN cuts are rate-limited to a quarter RTT, not a full one —
	// the sub-RTT property — with a proportionally smaller step.
	a.Now = 1001
	s.OnAck(a)
	if s.Cwnd() != c1 {
		t.Error("immediate second cut should wait RTT/4")
	}
	a.Now = a.Now.Add(s.lastRTT/4 + 1)
	s.OnAck(a)
	if s.Cwnd() >= c1 {
		t.Error("cut after RTT/4 suppressed")
	}
	// With the extension disabled the mark is ignored.
	s2, _ := New(DefaultConfig(), 8)
	a2 := ack(1000, 10*sim.Microsecond, 10*sim.Microsecond)
	a2.HostECN = true
	s2.OnAck(a2)
	if s2.Cwnd() < 8 {
		t.Error("host ECN acted on while disabled")
	}
}

func TestSawtoothEquilibrium(t *testing.T) {
	// Alternating over/under target acks produce the classic sawtooth:
	// cwnd must oscillate, not diverge or collapse.
	s, err := New(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1e18, 0.0
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		host := 60 * sim.Microsecond
		if i%3 == 0 {
			host = 140 * sim.Microsecond
		}
		now = now.Add(30 * sim.Microsecond)
		s.OnAck(ack(now, host, 10*sim.Microsecond))
		if c := s.Cwnd(); i > 500 {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
	}
	if hi/lo < 1.05 {
		t.Errorf("no sawtooth oscillation: lo=%v hi=%v", lo, hi)
	}
	if hi > 64 || lo < DefaultConfig().MinCwnd {
		t.Errorf("sawtooth diverged: lo=%v hi=%v", lo, hi)
	}
}

func TestName(t *testing.T) {
	s, _ := New(DefaultConfig(), 1)
	if s.Name() != "swift" {
		t.Errorf("Name = %q", s.Name())
	}
}

// Property: cwnd stays within [MinCwnd, MaxCwnd] for arbitrary ack
// sequences.
func TestCwndBoundsProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(events []uint32) bool {
		s, err := New(cfg, 4)
		if err != nil {
			return false
		}
		now := sim.Time(0)
		for _, ev := range events {
			now = now.Add(sim.Duration(ev%100) * sim.Microsecond)
			host := sim.Duration(ev%250) * sim.Microsecond
			if ev%7 == 0 {
				s.OnLoss(now)
			} else {
				s.OnAck(ack(now, host, sim.Duration(ev%80)*sim.Microsecond))
			}
			if s.Cwnd() < cfg.MinCwnd-1e-12 || s.Cwnd() > cfg.MaxCwnd+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
