// Package dctcp implements a DCTCP-style ECN-fraction congestion
// controller and a fixed-window controller. Both serve as the "TCP-like
// protocols" baselines of the paper's §4 discussion: they watch fabric
// signals (ECN marks at switches) or nothing at all, so host interconnect
// congestion is invisible to them until packets are already being
// dropped at the NIC.
package dctcp

import (
	"fmt"

	"hic/internal/sim"
	"hic/internal/transport"
)

// Config holds DCTCP parameters.
type Config struct {
	// G is the EWMA gain for the marked fraction estimate.
	G float64
	// AI is the additive increase in packets per RTT.
	AI float64
	// MinCwnd / MaxCwnd clamp the window.
	MinCwnd, MaxCwnd float64
	// ReactToHostECN additionally treats the NIC's host-ECN mark as an
	// ECN signal (§4 extension applied to a TCP-like protocol).
	ReactToHostECN bool
}

// DefaultConfig returns standard DCTCP parameters.
func DefaultConfig() Config {
	return Config{
		G:       1.0 / 16,
		AI:      1.0,
		MinCwnd: 0.05,
		MaxCwnd: 256,
	}
}

func (c Config) validate() error {
	if c.G <= 0 || c.G > 1 {
		return fmt.Errorf("dctcp: G outside (0,1]")
	}
	if c.AI <= 0 {
		return fmt.Errorf("dctcp: AI must be positive")
	}
	if c.MinCwnd <= 0 || c.MaxCwnd < c.MinCwnd {
		return fmt.Errorf("dctcp: bad cwnd clamps")
	}
	return nil
}

// DCTCP is one connection's controller.
type DCTCP struct {
	cfg   Config
	cwnd  float64
	alpha float64

	windowAcked  int
	windowMarked int
	windowEnd    sim.Time
	lastRTT      sim.Duration
	lastDecrease sim.Time
}

// New returns a DCTCP controller with the given initial window.
func New(cfg Config, initialCwnd float64) (*DCTCP, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DCTCP{cfg: cfg, cwnd: initialCwnd, lastDecrease: -1 << 62}
	d.clamp()
	return d, nil
}

// Name implements transport.CongestionControl.
func (d *DCTCP) Name() string { return "dctcp" }

// Cwnd implements transport.CongestionControl.
func (d *DCTCP) Cwnd() float64 { return d.cwnd }

// SetCwnd implements transport.CwndPrimer: it seeds the window from a
// converged donor run on warm start. The configured clamps still apply.
func (d *DCTCP) SetCwnd(cwnd float64) {
	d.cwnd = cwnd
	d.clamp()
}

// Alpha returns the current marked-fraction estimate.
func (d *DCTCP) Alpha() float64 { return d.alpha }

func (d *DCTCP) clamp() {
	if d.cwnd < d.cfg.MinCwnd {
		d.cwnd = d.cfg.MinCwnd
	}
	if d.cwnd > d.cfg.MaxCwnd {
		d.cwnd = d.cfg.MaxCwnd
	}
}

// OnAck implements the DCTCP update: per-RTT windows estimate the marked
// fraction α; each window ending with marks cuts cwnd by α/2, otherwise
// additive increase applies.
func (d *DCTCP) OnAck(info transport.AckInfo) {
	d.lastRTT = info.RTT
	d.windowAcked++
	marked := info.ECN || (d.cfg.ReactToHostECN && info.HostECN)
	if marked {
		d.windowMarked++
	}

	if info.Now >= d.windowEnd {
		f := 0.0
		if d.windowAcked > 0 {
			f = float64(d.windowMarked) / float64(d.windowAcked)
		}
		d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*f
		if d.windowMarked > 0 {
			d.cwnd *= 1 - d.alpha/2
		}
		d.windowAcked, d.windowMarked = 0, 0
		d.windowEnd = info.Now.Add(info.RTT)
	}
	if !marked {
		if d.cwnd >= 1 {
			d.cwnd += d.cfg.AI / d.cwnd
		} else {
			d.cwnd += d.cfg.AI
		}
	}
	d.clamp()
}

// OnLoss halves the window, at most once per RTT.
func (d *DCTCP) OnLoss(now sim.Time) {
	if now.Sub(d.lastDecrease) < d.lastRTT {
		return
	}
	d.cwnd /= 2
	d.lastDecrease = now
	d.clamp()
}

var _ transport.CongestionControl = (*DCTCP)(nil)

// Fixed is a congestion controller with a constant window — the
// no-feedback extreme of the baseline spectrum.
type Fixed struct {
	cwnd float64
}

// NewFixed returns a fixed-window controller.
func NewFixed(cwnd float64) *Fixed {
	if cwnd <= 0 {
		cwnd = 1
	}
	return &Fixed{cwnd: cwnd}
}

// Name implements transport.CongestionControl.
func (f *Fixed) Name() string { return "fixed" }

// Cwnd implements transport.CongestionControl.
func (f *Fixed) Cwnd() float64 { return f.cwnd }

// OnAck implements transport.CongestionControl (no reaction).
func (f *Fixed) OnAck(transport.AckInfo) {}

// OnLoss implements transport.CongestionControl (no reaction).
func (f *Fixed) OnLoss(sim.Time) {}

var _ transport.CongestionControl = (*Fixed)(nil)
