package dctcp

import (
	"testing"
	"testing/quick"

	"hic/internal/sim"
	"hic/internal/transport"
)

func ack(now sim.Time, ecn bool) transport.AckInfo {
	return transport.AckInfo{
		Now:        now,
		RTT:        30 * sim.Microsecond,
		ECN:        ecn,
		AckedBytes: 4096,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.G = 0 },
		func(c *Config) { c.G = 1.5 },
		func(c *Config) { c.AI = 0 },
		func(c *Config) { c.MinCwnd = 0 },
		func(c *Config) { c.MaxCwnd = 0.001 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGrowsWithoutMarks(t *testing.T) {
	d, err := New(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.OnAck(ack(sim.Time(i)*1000, false))
	}
	if d.Cwnd() <= 2 {
		t.Errorf("cwnd did not grow without marks: %v", d.Cwnd())
	}
	if d.Alpha() != 0 {
		t.Errorf("alpha = %v with no marks, want 0", d.Alpha())
	}
}

func TestAlphaTracksMarkedFraction(t *testing.T) {
	d, err := New(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	// Several RTT windows with all acks marked: alpha → 1.
	for i := 0; i < 2000; i++ {
		now = now.Add(5 * sim.Microsecond)
		d.OnAck(ack(now, true))
	}
	if d.Alpha() < 0.8 {
		t.Errorf("alpha = %v after sustained marking, want → 1", d.Alpha())
	}
	if d.Cwnd() > 1 {
		t.Errorf("cwnd = %v under sustained marking, want collapsed", d.Cwnd())
	}
}

func TestPartialMarkingPartialDecrease(t *testing.T) {
	d, err := New(DefaultConfig(), 32)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		now = now.Add(5 * sim.Microsecond)
		d.OnAck(ack(now, i%10 == 0)) // ~10% marked
	}
	// Alpha should settle near 0.1, not 1.
	if d.Alpha() < 0.02 || d.Alpha() > 0.3 {
		t.Errorf("alpha = %v with 10%% marking, want ≈0.1", d.Alpha())
	}
	if d.Cwnd() < 1 {
		t.Errorf("cwnd collapsed (%v) under light marking", d.Cwnd())
	}
}

func TestOnLossHalves(t *testing.T) {
	d, err := New(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	d.OnAck(ack(1000, false)) // set lastRTT
	d.OnLoss(sim.Time(sim.Millisecond))
	if d.Cwnd() > 4.3 {
		t.Errorf("loss did not halve: %v", d.Cwnd())
	}
	c := d.Cwnd()
	d.OnLoss(sim.Time(sim.Millisecond) + 1)
	if d.Cwnd() != c {
		t.Error("second loss within an RTT halved again")
	}
}

func TestReactToHostECN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReactToHostECN = true
	d, err := New(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now = now.Add(5 * sim.Microsecond)
		a := ack(now, false)
		a.HostECN = true
		d.OnAck(a)
	}
	if d.Cwnd() > 2 {
		t.Errorf("host-ECN marks ignored: cwnd=%v", d.Cwnd())
	}
	// Without the option the same marks are invisible.
	d2, _ := New(DefaultConfig(), 16)
	now = 0
	for i := 0; i < 100; i++ {
		now = now.Add(5 * sim.Microsecond)
		a := ack(now, false)
		a.HostECN = true
		d2.OnAck(a)
	}
	if d2.Cwnd() < 16 {
		t.Errorf("host ECN acted on while disabled: %v", d2.Cwnd())
	}
}

func TestFixedWindowNeverMoves(t *testing.T) {
	f := NewFixed(3)
	f.OnAck(ack(1000, true))
	f.OnLoss(2000)
	if f.Cwnd() != 3 {
		t.Errorf("fixed window moved: %v", f.Cwnd())
	}
	if f.Name() != "fixed" {
		t.Errorf("Name = %q", f.Name())
	}
	if NewFixed(-1).Cwnd() != 1 {
		t.Error("non-positive fixed window should default to 1")
	}
}

func TestName(t *testing.T) {
	d, _ := New(DefaultConfig(), 1)
	if d.Name() != "dctcp" {
		t.Errorf("Name = %q", d.Name())
	}
}

// Property: cwnd and alpha stay within bounds for arbitrary inputs.
func TestBoundsProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(events []uint32) bool {
		d, err := New(cfg, 8)
		if err != nil {
			return false
		}
		now := sim.Time(0)
		for _, ev := range events {
			now = now.Add(sim.Duration(ev%50) * sim.Microsecond)
			if ev%11 == 0 {
				d.OnLoss(now)
			} else {
				d.OnAck(ack(now, ev%3 == 0))
			}
			if d.Cwnd() < cfg.MinCwnd-1e-12 || d.Cwnd() > cfg.MaxCwnd+1e-12 {
				return false
			}
			if d.Alpha() < 0 || d.Alpha() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
