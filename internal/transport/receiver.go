package transport

import (
	"fmt"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// Receiver is the receiver-host transport endpoint: it consumes packets
// the CPU has finished processing, de-duplicates retransmissions, counts
// application goodput (completed 16 KB reads), and emits per-packet
// acknowledgements carrying the delay signals back to the senders.
type Receiver struct {
	engine  *sim.Engine
	cfg     Config
	sendAck func(*pkt.Packet)

	nextAckID uint64
	pool      *pkt.Pool // packet free list; acks are drawn here
	// seen de-duplicates (flow, seq) within a sliding window per flow.
	seen map[uint32]*seqWindow

	goodput    *metrics.Counter // distinct payload bytes delivered
	dupes      *metrics.Counter
	reads      *metrics.Counter // completed ReadSize units
	readsPer   map[uint32]uint64
	goodputPer map[uint32]uint64 // distinct payload bytes per flow
}

// seqWindow remembers recently seen sequence numbers of one flow.
type seqWindow struct {
	bits []uint64
	max  uint64
}

const windowSpan = 1 << 16 // sequence numbers tracked per flow

func newSeqWindow() *seqWindow {
	return &seqWindow{bits: make([]uint64, windowSpan/64)}
}

// observe marks seq as seen; it reports whether seq was already present.
// Sequence numbers older than the window are treated as duplicates (they
// can only be ancient retransmissions).
func (w *seqWindow) observe(seq uint64) bool {
	if seq > w.max {
		// Clear the slots between max and seq (they leave the window).
		for s := w.max + 1; s <= seq && s-w.max <= windowSpan; s++ {
			w.bits[(s/64)%uint64(len(w.bits))] &^= 1 << (s % 64)
		}
		w.max = seq
	} else if w.max-seq >= windowSpan {
		return true
	}
	idx := (seq / 64) % uint64(len(w.bits))
	mask := uint64(1) << (seq % 64)
	dup := w.bits[idx]&mask != 0
	w.bits[idx] |= mask
	return dup
}

// NewReceiver constructs the receiver endpoint. sendAck transmits an ACK
// through the receiver host's NIC TX path.
func NewReceiver(engine *sim.Engine, reg *metrics.Registry, cfg Config, sendAck func(*pkt.Packet)) (*Receiver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sendAck == nil {
		return nil, fmt.Errorf("transport: sendAck is required")
	}
	return &Receiver{
		engine:     engine,
		cfg:        cfg,
		sendAck:    sendAck,
		seen:       make(map[uint32]*seqWindow),
		readsPer:   make(map[uint32]uint64),
		goodputPer: make(map[uint32]uint64),
		goodput:    reg.Counter("app.goodput.bytes"),
		dupes:      reg.Counter("app.duplicate.packets"),
		reads:      reg.Counter("app.reads.completed"),
	}, nil
}

// SetPool installs the run's packet free list: acks are drawn from it
// instead of the heap. The receiver does not release the delivered data
// packet itself — Deliver's caller still owns it and releases it after
// Deliver returns (the receiver only reads it).
func (r *Receiver) SetPool(pool *pkt.Pool) { r.pool = pool }

// Deliver consumes one fully processed packet. It is wired as the CPU
// pool's completion callback.
func (r *Receiver) Deliver(p *pkt.Packet) {
	if p.Kind != pkt.Data {
		panic(fmt.Sprintf("transport: receiver got non-data packet %v", p.Kind))
	}
	w := r.seen[p.Flow]
	if w == nil {
		w = newSeqWindow()
		r.seen[p.Flow] = w
	}
	if w.observe(p.Seq) {
		r.dupes.Inc()
	} else {
		r.goodput.Add(uint64(p.PayloadBytes))
		r.goodputPer[p.Flow] += uint64(p.PayloadBytes)
		// A read completes every ReadSize/MTU distinct packets.
		r.readsPer[p.Flow]++
		if per := uint64(r.cfg.ReadSize / r.cfg.MTU); r.readsPer[p.Flow]%per == 0 {
			r.reads.Inc()
		}
	}
	ack := r.pool.Ack(r.nextAckID, p)
	r.nextAckID++
	ack.EchoFabric = p.EchoFabric
	ack.EchoHostDelay = p.EchoHostDelay
	r.sendAck(ack)
}

// GoodputByFlow returns a copy of per-flow distinct payload bytes,
// cumulative since the start of the run. Fairness analyses snapshot it
// around the measurement window.
func (r *Receiver) GoodputByFlow() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(r.goodputPer))
	for f, b := range r.goodputPer {
		out[f] = b
	}
	return out
}

// GoodputBytes returns distinct payload bytes delivered to applications.
func (r *Receiver) GoodputBytes() uint64 { return r.goodput.Value() }

// CompletedReads returns the number of completed ReadSize reads.
func (r *Receiver) CompletedReads() uint64 { return r.reads.Value() }

// DuplicatePackets returns de-duplicated retransmission deliveries.
func (r *Receiver) DuplicatePackets() uint64 { return r.dupes.Value() }
