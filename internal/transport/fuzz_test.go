package transport

import "testing"

// FuzzSeqWindow drives the duplicate-detection window with arbitrary
// sequence streams: it must never panic and must agree with an exact
// set within the window span.
func FuzzSeqWindow(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		w := newSeqWindow()
		seen := map[uint64]bool{}
		seq := uint64(0)
		for _, b := range raw {
			switch {
			case b < 128:
				seq += uint64(b)
			default:
				// Occasional large jumps exercise slot recycling.
				seq += uint64(b) << 9
			}
			dup := w.observe(seq)
			if seen[seq] && !dup {
				t.Fatalf("seq %d seen before but reported fresh", seq)
			}
			seen[seq] = true
		}
	})
}
