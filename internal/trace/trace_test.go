package trace

import (
	"strings"
	"testing"

	"hic/internal/sim"
)

func TestRecordAndSeries(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 100, 1.5)
	r.Record("b", 100, 2.5)
	r.Record("a", 200, 3.5)
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	a := r.Series("a")
	if len(a) != 2 || a[0].Value != 1.5 || a[1].At != 200 {
		t.Errorf("Series(a) = %v", a)
	}
	if len(r.Series("missing")) != 0 {
		t.Error("missing series should be empty")
	}
}

func TestOutOfOrderPanics(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 200, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order sample did not panic")
		}
	}()
	r.Record("a", 100, 2)
}

func TestCSVLongForm(t *testing.T) {
	r := NewRecorder()
	r.Record("b", sim.Time(sim.Microsecond), 2)
	r.Record("a", sim.Time(sim.Microsecond), 1)
	r.Record("a", sim.Time(2*sim.Microsecond), 3)
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	// Same timestamp: sorted by name.
	if !strings.HasPrefix(lines[1], "1.000,a,") || !strings.HasPrefix(lines[2], "1.000,b,") {
		t.Errorf("ordering wrong:\n%s", csv)
	}
	if !strings.HasPrefix(lines[3], "2.000,a,3") {
		t.Errorf("second sample wrong:\n%s", csv)
	}
}

func TestWideForm(t *testing.T) {
	r := NewRecorder()
	r.Record("x", sim.Time(sim.Microsecond), 1)
	r.Record("y", sim.Time(sim.Microsecond), 2)
	r.Record("x", sim.Time(2*sim.Microsecond), 3) // y missing here
	wide := r.Wide()
	lines := strings.Split(strings.TrimSpace(wide), "\n")
	if lines[0] != "time_us,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.000,1,2" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2.000,3," {
		t.Errorf("row 2 = %q (missing cell should be empty)", lines[2])
	}
}

func TestMergeDownsample(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Record("s", sim.Time(i), float64(i))
	}
	r.Record("tiny", sim.Time(1), 42)

	r.MergeDownsample(10)

	s := r.Series("s")
	if len(s) != 10 {
		t.Fatalf("got %d samples, want 10", len(s))
	}
	// Groups of 10: first group is values 0..9 (mean 4.5) stamped at the
	// group's last time.
	if s[0].At != sim.Time(9) || s[0].Value != 4.5 {
		t.Errorf("first merged sample = (%v, %v), want (9, 4.5)", s[0].At, s[0].Value)
	}
	if s[9].At != sim.Time(99) || s[9].Value != 94.5 {
		t.Errorf("last merged sample = (%v, %v), want (99, 94.5)", s[9].At, s[9].Value)
	}
	// Series at or under the cap are untouched.
	if tiny := r.Series("tiny"); len(tiny) != 1 || tiny[0].Value != 42 {
		t.Errorf("small series modified: %v", tiny)
	}
	// No-op cap.
	r.MergeDownsample(0)
	if len(r.Series("s")) != 10 {
		t.Error("maxSamples<=0 should be a no-op")
	}
}

func TestMergeDownsampleUnevenGroups(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 7; i++ {
		r.Record("s", sim.Time(i), 1)
	}
	r.MergeDownsample(3) // group size ceil(7/3)=3 → groups of 3,3,1
	s := r.Series("s")
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3", len(s))
	}
	if s[2].At != sim.Time(6) || s[2].Value != 1 {
		t.Errorf("tail group = (%v, %v), want (6, 1)", s[2].At, s[2].Value)
	}
}
