// Package trace records named time series from a running simulation —
// NIC buffer occupancy, aggregate congestion window, goodput per bin,
// memory load factor — and renders them as CSV for external plotting.
// It exists to make transient behaviour (the Swift sawtooth, burst
// onsets, antagonist arrival) observable, where the Results summary only
// reports steady-state aggregates.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"hic/internal/sim"
)

// Sample is one (time, value) observation.
type Sample struct {
	At    sim.Time
	Value float64
}

// Recorder accumulates named series. It is single-goroutine, like the
// simulation that feeds it.
type Recorder struct {
	series map[string][]Sample
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string][]Sample)}
}

// Record appends an observation to the named series. Times must be
// non-decreasing per series; out-of-order samples panic (they indicate a
// probe wired across simulations).
func (r *Recorder) Record(name string, at sim.Time, v float64) {
	s := r.series[name]
	if len(s) > 0 && at < s[len(s)-1].At {
		panic(fmt.Sprintf("trace: out-of-order sample for %q (%d samples): %v after %v",
			name, len(s), at, s[len(s)-1].At))
	}
	if s == nil {
		r.order = append(r.order, name)
	}
	r.series[name] = append(s, Sample{At: at, Value: v})
}

// Names returns the series names in first-recorded order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Series returns a copy of one series.
func (r *Recorder) Series(name string) []Sample {
	s := r.series[name]
	out := make([]Sample, len(s))
	copy(out, s)
	return out
}

// Len returns the total number of samples across all series.
func (r *Recorder) Len() int {
	n := 0
	for _, s := range r.series {
		n += len(s)
	}
	return n
}

// MergeDownsample caps every series at maxSamples points by merging
// fixed-size groups of consecutive samples: each group collapses to one
// sample at the group's last timestamp carrying the group's mean value.
// Long runs with fine probe periods stay plottable without losing the
// window averages. maxSamples ≤ 0 is a no-op; series at or under the cap
// are untouched.
func (r *Recorder) MergeDownsample(maxSamples int) {
	if maxSamples <= 0 {
		return
	}
	for name, s := range r.series {
		if len(s) <= maxSamples {
			continue
		}
		group := (len(s) + maxSamples - 1) / maxSamples
		out := make([]Sample, 0, (len(s)+group-1)/group)
		for i := 0; i < len(s); i += group {
			end := i + group
			if end > len(s) {
				end = len(s)
			}
			var sum float64
			for _, smp := range s[i:end] {
				sum += smp.Value
			}
			out = append(out, Sample{At: s[end-1].At, Value: sum / float64(end-i)})
		}
		r.series[name] = out
	}
}

// CSV renders all series in long form: time_us,series,value. Rows are
// ordered by time, then by series name, so output is deterministic.
func (r *Recorder) CSV() string {
	type row struct {
		at   sim.Time
		name string
		v    float64
	}
	var rows []row
	for name, s := range r.series {
		for _, smp := range s {
			rows = append(rows, row{smp.At, name, smp.Value})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].at != rows[j].at {
			return rows[i].at < rows[j].at
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	b.WriteString("time_us,series,value\n")
	for _, rw := range rows {
		fmt.Fprintf(&b, "%.3f,%s,%.6g\n", rw.at.Seconds()*1e6, rw.name, rw.v)
	}
	return b.String()
}

// Wide renders all series pivoted on shared sample times (suitable for
// probes driven by a single ticker): time_us,<name1>,<name2>,...
// Series missing a sample at some timestamp leave the cell empty.
func (r *Recorder) Wide() string {
	times := map[sim.Time]bool{}
	for _, s := range r.series {
		for _, smp := range s {
			times[smp.At] = true
		}
	}
	sorted := make([]sim.Time, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	idx := make(map[string]int, len(r.order))
	var b strings.Builder
	b.WriteString("time_us")
	for _, name := range r.order {
		b.WriteString("," + name)
	}
	b.WriteByte('\n')
	for _, t := range sorted {
		fmt.Fprintf(&b, "%.3f", t.Seconds()*1e6)
		for _, name := range r.order {
			s := r.series[name]
			i := idx[name]
			cell := ""
			if i < len(s) && s[i].At == t {
				cell = fmt.Sprintf("%.6g", s[i].Value)
				idx[name] = i + 1
			}
			b.WriteString("," + cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
