package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func wallFixture() []WallSpan {
	return []WallSpan{
		{Name: "queue", Track: "coordinator", StartNs: 1_000_000_000, EndNs: 1_000_500_000},
		{Name: "range 0 [0,8)", Track: "worker w1", StartNs: 1_000_500_000, EndNs: 1_002_000_000,
			Args: map[string]float64{"points": 8, "simulated": 8}},
		{Name: "range 1 [8,16)", Track: "worker w2", StartNs: 1_000_600_000, EndNs: 1_002_100_000},
		{Name: "merge", Track: "coordinator", StartNs: 1_002_000_000, EndNs: 1_002_200_000},
	}
}

type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeWallSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeWallSpans(&buf, "hicserve query q1", wallFixture()); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	// One process_name + one thread_name per distinct track, then one
	// "X" slice per span.
	tracks := map[string]int{} // track name -> tid
	var slices int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			if got := ev.Args["name"]; got != "hicserve query q1" {
				t.Errorf("process name = %v", got)
			}
		case ev.Ph == "M" && ev.Name == "thread_name":
			tracks[ev.Args["name"].(string)] = ev.Tid
		case ev.Ph == "X":
			slices++
			if ev.Ts < 0 || ev.Dur <= 0 {
				t.Errorf("slice %q: ts=%g dur=%g", ev.Name, ev.Ts, ev.Dur)
			}
		}
	}
	if slices != 4 {
		t.Errorf("slices = %d, want 4", slices)
	}
	// One track per distinct span Track, tids in first-appearance order.
	want := map[string]int{"coordinator": 1, "worker w1": 2, "worker w2": 3}
	for name, tid := range want {
		if tracks[name] != tid {
			t.Errorf("track %q tid = %d, want %d (tracks %v)", name, tracks[name], tid, tracks)
		}
	}

	// Timestamps are normalized: the earliest span starts at 0.
	minTs := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && (minTs < 0 || ev.Ts < minTs) {
			minTs = ev.Ts
		}
	}
	if minTs != 0 {
		t.Errorf("earliest slice ts = %g, want 0", minTs)
	}

	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := WriteChromeWallSpans(&again, "hicserve query q1", wallFixture()); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("output is not deterministic across identical inputs")
	}
}

func TestWriteChromeWallSpansRejectsBackwards(t *testing.T) {
	err := WriteChromeWallSpans(&bytes.Buffer{}, "p", []WallSpan{
		{Name: "bad", Track: "t", StartNs: 10, EndNs: 5},
	})
	if err == nil || !strings.Contains(err.Error(), "ends before it starts") {
		t.Fatalf("err = %v, want span-order error", err)
	}
}

func TestSortWallSpans(t *testing.T) {
	spans := []WallSpan{
		{Name: "b", Track: "t2", StartNs: 5},
		{Name: "a", Track: "t1", StartNs: 5},
		{Name: "c", Track: "t1", StartNs: 1},
	}
	SortWallSpans(spans)
	if spans[0].Name != "c" || spans[1].Name != "a" || spans[2].Name != "b" {
		t.Fatalf("order = %v", spans)
	}
}
