// Wall-clock span export: the distributed-serve counterpart to the
// sim-time series recorder. A sharded query's lifecycle (queue wait,
// prefetch barrier, per-worker range leases, merge) is a set of
// WallSpans collected by the coordinator; WriteChromeWallSpans renders
// them in Chrome trace_event JSON — the same format telemetry's
// sim-time exporter emits — so Perfetto shows the query as one process
// with one track per span track name (the coordinator plus each
// worker).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WallSpan is one wall-clock slice on a named track. Times are Unix
// nanoseconds; the writer normalizes them so the earliest span starts
// at ts=0 (absolute wall epochs overflow the float64 microseconds the
// trace_event format carries).
type WallSpan struct {
	// Name is the slice label ("queue", "range 3 [120,180)", ...).
	Name string `json:"name"`
	// Track groups spans onto one Perfetto track ("coordinator",
	// "worker w1-a", ...); tracks render in first-appearance order.
	Track string `json:"track"`
	// StartNs and EndNs bound the slice in Unix nanoseconds.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// Args annotate the slice (points merged, anchor runs, ...).
	Args map[string]float64 `json:"args,omitempty"`
}

// wallEvent is one trace_event record. A subset of telemetry's
// chromeEvent (this package stays a leaf: stdlib only), with the same
// field order so the two exporters' outputs read alike.
type wallEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since the trace origin
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeWallSpans renders wall-clock spans as Chrome trace_event
// JSON (the format chrome://tracing and Perfetto load): one process
// named process, one thread per distinct Track (tid assigned in
// first-appearance order, named via thread_name metadata), and each
// span a complete "X" slice. Timestamps are microseconds relative to
// the earliest span start, so traces are byte-stable across reruns of
// identical relative timing. Output is deterministic for a given span
// slice (json.Marshal sorts Args keys).
func WriteChromeWallSpans(w io.Writer, process string, spans []WallSpan) error {
	events := []wallEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Cat: "__metadata",
		Args: map[string]any{"name": process},
	}}

	tids := make(map[string]int)
	var origin int64
	for i, sp := range spans {
		if _, ok := tids[sp.Track]; !ok {
			tids[sp.Track] = len(tids) + 1
			events = append(events, wallEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[sp.Track], Cat: "__metadata",
				Args: map[string]any{"name": sp.Track},
			})
		}
		if i == 0 || sp.StartNs < origin {
			origin = sp.StartNs
		}
	}

	for _, sp := range spans {
		if sp.EndNs < sp.StartNs {
			return fmt.Errorf("trace: span %q on %q ends before it starts", sp.Name, sp.Track)
		}
		var args map[string]any
		if len(sp.Args) > 0 {
			args = make(map[string]any, len(sp.Args))
			for k, v := range sp.Args {
				args[k] = v
			}
		}
		events = append(events, wallEvent{
			Name: sp.Name, Cat: "serve", Ph: "X",
			Ts:  float64(sp.StartNs-origin) / 1e3,
			Dur: float64(sp.EndNs-sp.StartNs) / 1e3,
			Pid: 1, Tid: tids[sp.Track], Args: args,
		})
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// SortWallSpans orders spans by start time, then track, then name —
// the canonical order the serve coordinator emits, stable so equal
// traces render (and hash) identically.
func SortWallSpans(spans []WallSpan) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		if spans[i].Track != spans[j].Track {
			return spans[i].Track < spans[j].Track
		}
		return spans[i].Name < spans[j].Name
	})
}
