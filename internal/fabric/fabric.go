// Package fabric models the network between the sender machines and the
// receiver host: per-sender egress links, a switch whose output port
// feeds the receiver's access link, and the reverse path carrying ACKs.
//
// The switch port is provisioned with a deep buffer and optional ECN
// marking; in the paper's experiments the fabric is deliberately not the
// bottleneck — all interesting queueing and every drop happens at the
// host — and the defaults here preserve that property while still
// modelling serialization and propagation delay faithfully (they set the
// RTT that bounds how fast congestion control can react).
package fabric

import (
	"fmt"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// Config describes the fabric.
type Config struct {
	// SenderLinkRate is each sender machine's egress rate.
	SenderLinkRate sim.BitsPerSecond
	// AccessLinkRate is the receiver's access link (paper: 100 Gbps).
	AccessLinkRate sim.BitsPerSecond
	// PropagationDelay is the one-way propagation + switching latency.
	PropagationDelay sim.Duration
	// SwitchBufferBytes is the receiver-facing output-port buffer.
	SwitchBufferBytes int
	// ECNThresholdBytes marks packets that arrive to a deeper queue
	// (DCTCP-style). Zero disables marking.
	ECNThresholdBytes int
}

// DefaultConfig returns a datacenter-like fabric: 100 Gbps links, ~5 µs
// one-way delay (≈20 µs base RTT with host turnaround), deep buffers.
func DefaultConfig() Config {
	return Config{
		SenderLinkRate:    sim.Gbps(100),
		AccessLinkRate:    sim.Gbps(100),
		PropagationDelay:  5 * sim.Microsecond,
		SwitchBufferBytes: 8 << 20,
	}
}

func (c Config) validate() error {
	if c.SenderLinkRate <= 0 || c.AccessLinkRate <= 0 {
		return fmt.Errorf("fabric: link rates must be positive")
	}
	if c.PropagationDelay < 0 {
		return fmt.Errorf("fabric: negative propagation delay")
	}
	if c.SwitchBufferBytes <= 0 {
		return fmt.Errorf("fabric: SwitchBufferBytes must be positive")
	}
	if c.ECNThresholdBytes < 0 {
		return fmt.Errorf("fabric: negative ECN threshold")
	}
	return nil
}

// Network connects senders to one receiver host.
type Network struct {
	engine *sim.Engine
	cfg    Config

	toReceiver func(*pkt.Packet)
	toSender   func(sender int, p *pkt.Packet)
	pool       *pkt.Pool // packet free list; switch drops release here

	senderBusy []sim.Time // per-sender egress serialization
	portBusy   sim.Time   // receiver-facing switch port
	portQueue  int        // bytes queued at the switch port

	delivered   *metrics.Counter
	deliveredB  *metrics.Counter
	switchDrops *metrics.Counter
	ecnMarks    *metrics.Counter
	portGauge   *metrics.Gauge
	fabricDelay *metrics.Histogram // ns, sender egress → receiver NIC
}

// New constructs the fabric for the given number of senders. toReceiver
// delivers data packets into the receiver NIC; toSender delivers ACKs
// back to a sender's transport.
func New(engine *sim.Engine, reg *metrics.Registry, senders int, cfg Config,
	toReceiver func(*pkt.Packet), toSender func(sender int, p *pkt.Packet)) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if senders <= 0 {
		return nil, fmt.Errorf("fabric: need at least one sender")
	}
	if toReceiver == nil || toSender == nil {
		return nil, fmt.Errorf("fabric: delivery callbacks are required")
	}
	return &Network{
		engine:      engine,
		cfg:         cfg,
		toReceiver:  toReceiver,
		toSender:    toSender,
		senderBusy:  make([]sim.Time, senders),
		delivered:   reg.Counter("fabric.delivered.packets"),
		deliveredB:  reg.Counter("fabric.delivered.bytes"),
		switchDrops: reg.Counter("fabric.switch.drops"),
		ecnMarks:    reg.Counter("fabric.ecn.marks"),
		portGauge:   reg.Gauge("fabric.port.queue.bytes"),
		fabricDelay: reg.Histogram("fabric.delay.ns"),
	}, nil
}

// Senders returns the number of attached senders.
func (n *Network) Senders() int { return len(n.senderBusy) }

// SetPool installs the run's packet free list. A switch tail drop is a
// point where a packet dies, so the fabric releases it there. Nil
// disables releasing (packets are then garbage for the GC).
func (n *Network) SetPool(pool *pkt.Pool) { n.pool = pool }

// SendToReceiver carries a data packet from sender onto the fabric:
// sender egress serialization, propagation, then the receiver-facing
// switch port (queueing, optional ECN, tail drop), the access link, and
// finally delivery into the receiver NIC.
func (n *Network) SendToReceiver(sender int, p *pkt.Packet) {
	if sender < 0 || sender >= len(n.senderBusy) {
		panic(fmt.Sprintf("fabric: sender %d out of range", sender))
	}
	p.SentAt = n.engine.Now()

	// Sender egress serialization.
	start := n.senderBusy[sender]
	if now := n.engine.Now(); start < now {
		start = now
	}
	egressDone := start.Add(n.cfg.SenderLinkRate.TransmitTime(p.WireBytes))
	n.senderBusy[sender] = egressDone

	n.engine.At(egressDone.Add(n.cfg.PropagationDelay), func() {
		n.arriveAtPort(p)
	})
}

// arriveAtPort runs the receiver-facing switch output port.
func (n *Network) arriveAtPort(p *pkt.Packet) {
	if n.portQueue+p.WireBytes > n.cfg.SwitchBufferBytes {
		n.switchDrops.Inc()
		n.pool.Release(p)
		return
	}
	if n.cfg.ECNThresholdBytes > 0 && n.portQueue >= n.cfg.ECNThresholdBytes {
		p.ECN = true
		n.ecnMarks.Inc()
	}
	n.portQueue += p.WireBytes
	n.portGauge.Set(int64(n.portQueue))

	start := n.portBusy
	if now := n.engine.Now(); start < now {
		start = now
	}
	finish := start.Add(n.cfg.AccessLinkRate.TransmitTime(p.WireBytes))
	n.portBusy = finish
	n.engine.At(finish, func() {
		n.portQueue -= p.WireBytes
		n.portGauge.Set(int64(n.portQueue))
		n.delivered.Inc()
		n.deliveredB.Add(uint64(p.WireBytes))
		p.EchoFabric = n.engine.Now().Sub(p.SentAt)
		n.fabricDelay.Observe(float64(p.EchoFabric))
		n.toReceiver(p)
	})
}

// SendToSender carries an ACK from the receiver back to a sender. The
// reverse path is uncongested (ACKs are tiny); it contributes propagation
// delay plus ack serialization on the access link's reverse direction.
func (n *Network) SendToSender(sender int, p *pkt.Packet) {
	if sender < 0 || sender >= len(n.senderBusy) {
		panic(fmt.Sprintf("fabric: sender %d out of range", sender))
	}
	delay := n.cfg.PropagationDelay + n.cfg.AccessLinkRate.TransmitTime(p.WireBytes)
	n.engine.After(delay, func() { n.toSender(sender, p) })
}

// PortQueueBytes returns the current switch output-port occupancy.
func (n *Network) PortQueueBytes() int { return n.portQueue }

// SwitchDrops returns drops at the switch port (should stay zero in the
// paper's host-bottlenecked scenarios).
func (n *Network) SwitchDrops() uint64 { return n.switchDrops.Value() }
