package fabric

import (
	"testing"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

func newNet(t *testing.T, cfg Config, senders int) (*sim.Engine, *Network, *[]*pkt.Packet, *[]int) {
	t.Helper()
	e := sim.NewEngine(1)
	var rx []*pkt.Packet
	var acks []int
	n, err := New(e, metrics.NewRegistry(), senders, cfg,
		func(p *pkt.Packet) { rx = append(rx, p) },
		func(s int, p *pkt.Packet) { acks = append(acks, s) })
	if err != nil {
		t.Fatal(err)
	}
	return e, n, &rx, &acks
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SenderLinkRate = 0 },
		func(c *Config) { c.AccessLinkRate = 0 },
		func(c *Config) { c.PropagationDelay = -1 },
		func(c *Config) { c.SwitchBufferBytes = 0 },
		func(c *Config) { c.ECNThresholdBytes = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(sim.NewEngine(1), metrics.NewRegistry(), 1, cfg,
			func(*pkt.Packet) {}, func(int, *pkt.Packet) {}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(sim.NewEngine(1), metrics.NewRegistry(), 0, DefaultConfig(),
		func(*pkt.Packet) {}, func(int, *pkt.Packet) {}); err == nil {
		t.Error("zero senders accepted")
	}
}

func TestEndToEndDelay(t *testing.T) {
	e, n, rx, _ := newNet(t, DefaultConfig(), 2)
	p := pkt.NewData(1, 0, 0, 0, 4096)
	n.SendToReceiver(0, p)
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*rx) != 1 {
		t.Fatalf("delivered %d, want 1", len(*rx))
	}
	// One-way: 4452B serialization twice (~356ns each) + 5µs propagation.
	if p.EchoFabric < 5*sim.Microsecond || p.EchoFabric > 7*sim.Microsecond {
		t.Errorf("fabric delay = %v, want ≈5.7µs", p.EchoFabric)
	}
}

func TestAccessLinkCapsAggregateRate(t *testing.T) {
	e, n, rx, _ := newNet(t, DefaultConfig(), 10)
	// 10 senders × 100 Gbps egress into one 100 Gbps access link.
	const per = 100
	for s := 0; s < 10; s++ {
		for i := 0; i < per; i++ {
			n.SendToReceiver(s, pkt.NewData(uint64(s*per+i), uint32(s), 0, uint64(i), 4096))
		}
	}
	e.Run(e.Now().Add(100 * sim.Millisecond))
	if len(*rx) != 10*per {
		t.Fatalf("delivered %d/%d (switch drops=%d)", len(*rx), 10*per, n.SwitchDrops())
	}
	last := (*rx)[len(*rx)-1]
	wireBits := float64(10*per*last.WireBytes) * 8
	gbps := wireBits / float64(last.SentAt.Add(last.EchoFabric)) // ≈ total time
	if gbps > 101 {
		t.Errorf("aggregate rate %.1f Gbps exceeds access link", gbps)
	}
	if gbps < 90 {
		t.Errorf("aggregate rate %.1f Gbps far below a saturated access link", gbps)
	}
}

func TestSwitchTailDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwitchBufferBytes = 10000
	e, n, rx, _ := newNet(t, cfg, 4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 20; i++ {
			n.SendToReceiver(s, pkt.NewData(uint64(s*20+i), uint32(s), 0, uint64(i), 4096))
		}
	}
	e.Run(e.Now().Add(10 * sim.Millisecond))
	if n.SwitchDrops() == 0 {
		t.Error("overloaded shallow switch buffer did not drop")
	}
	if len(*rx)+int(n.SwitchDrops()) != 80 {
		t.Errorf("delivered %d + dropped %d != 80", len(*rx), n.SwitchDrops())
	}
}

func TestECNMarking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNThresholdBytes = 9000
	e, n, rx, _ := newNet(t, cfg, 4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 10; i++ {
			n.SendToReceiver(s, pkt.NewData(uint64(s*10+i), uint32(s), 0, uint64(i), 4096))
		}
	}
	e.Run(e.Now().Add(10 * sim.Millisecond))
	marked := 0
	for _, p := range *rx {
		if p.ECN {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no ECN marks despite queue exceeding threshold")
	}
	unmarked := len(*rx) - marked
	if unmarked == 0 {
		t.Error("every packet marked; first arrivals should see an empty queue")
	}
}

func TestAckPath(t *testing.T) {
	e, n, _, acks := newNet(t, DefaultConfig(), 3)
	data := pkt.NewData(1, 2, 0, 7, 4096)
	ack := pkt.NewAck(2, data)
	sent := e.Now()
	n.SendToSender(2, ack)
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*acks) != 1 || (*acks)[0] != 2 {
		t.Fatalf("acks = %v, want [2]", *acks)
	}
	elapsed := e.Now().Sub(sent)
	_ = elapsed // delivery time checked via engine horizon; presence is the contract
}

func TestOutOfRangeSenderPanics(t *testing.T) {
	_, n, _, _ := newNet(t, DefaultConfig(), 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range sender did not panic")
		}
	}()
	n.SendToReceiver(5, pkt.NewData(1, 0, 0, 0, 4096))
}
