package fluid_test

import (
	"testing"

	"hic/internal/core"
	"hic/internal/fluid"
	"hic/internal/sim"
)

// predictParams lowers core.Params the same way the router does and
// runs the fluid solver.
func predictParams(t testing.TB, p core.Params) fluid.Prediction {
	t.Helper()
	pred, err := core.RunFluid(p)
	if err != nil {
		t.Fatalf("RunFluid(%+v): %v", p, err)
	}
	return pred
}

// TestFluidVsDESDiagnostic prints fluid vs DES side by side over the
// fig3 thread sweep and fig6 antagonist sweep; run with -v. It asserts
// only sanity (finite, within the wire ceiling) — the calibrated
// tolerance property lives in internal/fidelity.
func TestFluidVsDESDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("DES comparison is slow")
	}
	warmup, measure := 4*sim.Millisecond, 6*sim.Millisecond
	var cases []core.Params
	for _, th := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
		p := core.DefaultParams(th)
		p.Warmup, p.Measure = warmup, measure
		cases = append(cases, p)
	}
	for _, ant := range []int{0, 2, 4, 8, 12, 15} {
		p := core.DefaultParams(12)
		p.AntagonistCores = ant
		p.Warmup, p.Measure = warmup, measure
		cases = append(cases, p)
	}
	for _, p := range cases {
		pred := predictParams(t, p)
		if pred.AppThroughputGbps <= 0 || pred.AppThroughputGbps > 92.2 {
			t.Errorf("threads=%d ant=%d: fluid throughput %.1f outside (0, 92.2]",
				p.Threads, p.AntagonistCores, pred.AppThroughputGbps)
		}
		if !pred.Converged {
			t.Errorf("threads=%d ant=%d: fixed point did not converge in %d iterations",
				p.Threads, p.AntagonistCores, pred.Iterations)
		}
		des, err := core.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("threads=%2d ant=%2d: fluid %6.2f Gbps drop %5.2f%% (rho %.2f ws %d cap %.1f blind %.1f)  DES %6.2f Gbps drop %5.2f%%",
			p.Threads, p.AntagonistCores,
			pred.AppThroughputGbps, pred.DropRatePct, pred.Rho, pred.WorkingSet,
			pred.CapacityGbps, pred.BlindGbps,
			des.AppThroughputGbps, des.DropRatePct)
	}
}
