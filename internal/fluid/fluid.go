// Package fluid is the analytical fast path of the multi-fidelity
// execution layer: a fixed-point solver that composes the paper's
// closed-form models — the PCIe credit Little's-law bound (§3.1), the
// IOTLB working-set/LRU miss approximation, the memory load–latency
// curve (§3.2), and the congestion-control blind-spot threshold — into
// a steady-state predictor for one full scenario, returning the same
// Results shape the packet-level simulator produces.
//
// The solver is deliberately a *smooth-regime* model: far from the
// regime knees (IOTLB overflow at the 128-entry boundary, memory-bus
// load factor ≈ 1, the CC blind threshold) host behavior is set by
// which closed-form bound binds, and the fixed point over
//
//	throughput T  →  memory load ρ(T)  →  loaded access latency
//	             →  credit-bound capacity(ρ)  →  T' = min(demand, capacity)
//
// converges in a handful of damped iterations. Near a knee the discrete
// dynamics (burst onsets, sawtooth window oscillation, LRU churn) that
// DES captures dominate, which is exactly when internal/fidelity routes
// the point to DES instead. Accuracy inside the smooth regime is
// further tightened by per-signature calibration against DES anchors
// (see internal/fidelity); Predict itself is uncalibrated physics.
//
// Predict is pure floating-point arithmetic: deterministic, seed-
// independent, and ~10⁶× cheaper than simulating the scenario.
package fluid

import (
	"fmt"
	"math"

	"hic/internal/host"
	"hic/internal/iommu"
	"hic/internal/model"
	"hic/internal/pkt"
	"hic/internal/sim"
	"hic/internal/transport/swift"
)

// Protocol names the congestion-control family for the drop model.
// (host.Config carries the CC only as an opaque factory.)
type Protocol string

const (
	Swift Protocol = "swift"
	DCTCP Protocol = "dctcp"
	Fixed Protocol = "fixed"
)

// Prediction is a fluid steady-state operating point: the DES-shaped
// Results plus the diagnostics the fidelity router uses for its
// regime-distance (knee) checks.
type Prediction struct {
	host.Results

	// Rho is the memory-bus load factor (offered/achievable) at the
	// fixed point; the ρ≈1 knee check reads this.
	Rho float64
	// WorkingSet is the IOTLB entry footprint; WorkingSet/TLBEntries≈1
	// is the Figure 3 knee.
	WorkingSet int
	// TLBEntries echoes the IOTLB capacity used for WorkingSet.
	TLBEntries int
	// CapacityGbps is the host's service capacity (app payload Gbps) at
	// the fixed point — the min over wire, PCIe, CPU, and credit bounds.
	CapacityGbps float64
	// DemandGbps is the offered arrival rate (app payload Gbps) the
	// capacity is compared against (on-phase rate for bursty loads).
	DemandGbps float64
	// BlindGbps is the CC blind-spot threshold for this buffer/target.
	BlindGbps float64
	// Blind reports whether the drop model took the blind-zone branch.
	Blind bool
	// Iterations and Converged describe the fixed-point loop.
	Iterations int
	Converged  bool
}

// ErrUnsupported marks scenarios whose behavior is set by mechanisms the
// fluid model does not represent; the router must run them under DES.
type ErrUnsupported struct{ Reason string }

func (e ErrUnsupported) Error() string { return "fluid: unsupported scenario: " + e.Reason }

// unsupported returns the first config knob that takes the scenario
// outside the fluid model's domain, or "".
func unsupported(cfg host.Config) string {
	switch {
	case cfg.DynamicCoreScaling || cfg.InitialActiveCores > 0:
		return "dynamic core scaling (queue-depth feedback loop)"
	case cfg.VictimConnGbps > 0:
		return "asymmetric victim/aggressor workload"
	case cfg.SenderHostModel:
		return "sender-side host model (TX backpressure)"
	case cfg.IOMMU.Enabled && cfg.IOMMU.Mode == iommu.StrictMode:
		return "strict IOMMU (per-DMA map/unmap + invalidations)"
	case cfg.IOMMU.DeviceTLBEntries > 0:
		return "device TLB (ATS) hit dynamics"
	case cfg.NIC.PerQueueBuffers:
		return "per-queue NIC buffer partitioning"
	case cfg.NIC.HostECNThreshold > 0:
		return "sub-RTT host ECN feedback"
	case cfg.Fabric.ECNThresholdBytes > 0:
		return "fabric ECN marking dynamics"
	}
	return ""
}

// Per-thread control-structure footprint in 4 KB pages (descriptor ring,
// completion ring, Tx descriptor ring, ACK buffers) — must match the
// layout constants in internal/host.
const controlPages = 10

// translationsPerPacket is the paper's footnote-3 count: 3 Rx-side
// (descriptor, payload, completion) + 2 Tx/ACK-side. Only the Rx three
// hold PCIe credits while resolving.
const (
	translationsPerPacket   = 5
	rxTranslationsPerPacket = 3
)

// memQueueAllowance mirrors the steady-state FIFO queueing allowance
// baked into core.ModeledThroughput's calibrated Tbase.
const memQueueAllowance = 150 * sim.Nanosecond

// refRho is the reference load factor the calibrated Tbase was fit at.
const refRho = 0.15

// Predict solves the scenario's steady state. cc selects the drop
// model; hostTarget is the delay-target CC's host budget (0 = Swift's
// default 100 µs; ignored for DCTCP/Fixed); measure scales the
// counters in the returned Results.
func Predict(cfg host.Config, cc Protocol, hostTarget sim.Duration, measure sim.Duration) (Prediction, error) {
	if reason := unsupported(cfg); reason != "" {
		return Prediction{}, ErrUnsupported{reason}
	}
	if measure <= 0 {
		return Prediction{}, fmt.Errorf("fluid: non-positive measure window")
	}
	switch cc {
	case Swift, DCTCP, Fixed:
	default:
		return Prediction{}, fmt.Errorf("fluid: unknown protocol %q", cc)
	}
	if hostTarget <= 0 {
		hostTarget = swift.DefaultConfig().HostTarget
	}

	mtu := cfg.Transport.MTU
	payloadFrac := float64(mtu) / float64(mtu+pkt.HeaderBytes)

	// --- Static capacity bounds (app-payload bits/s). ---
	wireCeil := float64(model.MaxAchievableThroughput(cfg.Fabric.AccessLinkRate, mtu, pkt.HeaderBytes))
	pcieWire := cfg.PCIe.WireBytes(mtu + cfg.NIC.CompletionBytes)
	pciePayload := float64(cfg.PCIe.Goodput()) * float64(mtu) / float64(cfg.PCIe.WireBytes(mtu))

	cores := cfg.ReceiverThreads
	if cfg.CPUCores > 0 && cfg.CPUCores < cores {
		cores = cfg.CPUCores
	}
	perPktNs := float64(cfg.CPU.PerPacketCost) + cfg.CPU.PerByteCostNs*float64(mtu)
	cpuCap := float64(cores) * float64(mtu) * 8 * 1e9 / perPktNs

	// --- IOTLB miss rate from the working-set approximation. ---
	var missRate float64
	ws, tlbEntries := 0, 0
	if cfg.IOMMU.Enabled {
		pageBytes := uint64(4096)
		if cfg.Hugepages {
			pageBytes = 2 << 20
		}
		ws = model.IOTLBWorkingSet(cfg.ReceiverThreads, cfg.RxRegionBytes, pageBytes, controlPages)
		tlbEntries = cfg.IOMMU.TLBEntries
		missRate = model.LRUMissRate(tlbEntries, ws)
	}
	missesPerPacket := translationsPerPacket * missRate
	rxMisses := rxTranslationsPerPacket * missRate

	// --- Memory-bus demand model. ---
	memCap := float64(cfg.Memory.TheoreticalBW.BytesPerSecond()) * cfg.Memory.Efficiency
	antagonistBW := 0.0
	if !cfg.AntagonistRemoteNUMA {
		antagonistBW = float64(cfg.AntagonistCores) * cfg.Antagonist.PerCoreBandwidth
	}
	cpuShareCap := cfg.Memory.CPUMaxShare
	if r := 1 - cfg.Memory.IOReservedShare; r < cpuShareCap {
		cpuShareCap = r
	}
	ioFloor := math.Max(0.01*memCap, cfg.Memory.IOReservedShare*memCap)
	// Bytes the IO side moves per delivered packet: payload DMA write,
	// descriptor read, completion write, plus page-walk reads on misses.
	ioBytesPerPkt := float64(mtu+cfg.NIC.DescriptorBytes+cfg.NIC.CompletionBytes) +
		missesPerPacket*float64(cfg.IOMMU.WalkEntryBytes)

	// memState evaluates the controller's bandwidth split at app
	// throughput T (bits/s): returns ρ, the loaded access latency, the
	// CPU-side achieved bytes/s, and the IO-side service rate bytes/s.
	memState := func(T float64) (rho float64, lat sim.Duration, cpuAchieved, ioService float64) {
		cpuDemand := antagonistBW + T/8*(cfg.CPU.CopyReadFraction+cfg.CPU.CopyWriteFraction)
		ioDemand := T / (8 * float64(mtu)) * ioBytesPerPkt
		rho = (cpuDemand + ioDemand) / memCap
		lat = model.LoadLatency(cfg.Memory.BaseLatency, rho,
			cfg.Memory.LoadCurveA, cfg.Memory.LoadCurveB, cfg.Memory.MaxLoadFactor)
		cpuAchieved = math.Min(cpuDemand, memCap*cpuShareCap)
		ioService = math.Max(memCap-cpuAchieved, ioFloor)
		return
	}

	transmit := sim.BitsPerSecond(float64(cfg.PCIe.RawBandwidth()) * cfg.PCIe.LinkEfficiency)
	// Idle-reference IO service rate: the excess payload transfer time
	// over this reference enters Tbase (the reference itself is part of
	// the calibrated queueing allowance).
	_, _, _, ioServiceIdle := memState(0)

	// capacity returns the binding service bound at load ρ implied by T.
	capacity := func(T float64) float64 {
		_, lat, _, ioService := memState(T)
		tbase := 2*transmit.TransmitTime(cfg.PCIe.WireBytes(mtu)) + 3*lat +
			memQueueAllowance + cfg.PCIe.RootComplexLatency
		if excess := float64(mtu)/ioService - float64(mtu)/ioServiceIdle; excess > 0 {
			tbase += sim.Duration(excess * 1e9)
		}
		tmiss := lat + cfg.IOMMU.WalkStepLatency
		bound := float64(model.ThroughputBound(cfg.PCIe.CreditBytes, pcieWire, mtu, tbase, rxMisses, tmiss))
		return math.Min(math.Min(bound, cpuCap), math.Min(wireCeil, pciePayload))
	}

	// --- Offered demand. ---
	demand := math.Inf(1)
	if cfg.Transport.AppRateLimit > 0 {
		demand = float64(cfg.Transport.AppRateLimit) * float64(cfg.Senders*cfg.ReceiverThreads)
	}
	duty := 1.0
	if cfg.BurstDuty > 0 {
		duty = cfg.BurstDuty
	}
	// Bursty senders offer their full rate during the on-phase only;
	// arrivals during that phase are what the host must absorb.
	onDemand := math.Min(demand, wireCeil)

	// --- Fixed point: T = min(onDemand, capacity(T)). capacity(T) is
	// non-increasing in T (more throughput ⇒ more memory load ⇒ longer
	// credit hold times), so f(T) = T − min(onDemand, capacity(T)) is
	// strictly increasing and the root is unique; bisection always
	// converges, including on the steep side of the load–latency curve
	// where damped iteration oscillates.
	p := Prediction{WorkingSet: ws, TLBEntries: tlbEntries}
	lo, hi := 0.0, math.Min(onDemand, capacity(0))
	T := hi
	if f := hi - math.Min(onDemand, capacity(hi)); f > 0 {
		const maxIter, relEps = 80, 1e-9
		for i := 0; i < maxIter; i++ {
			p.Iterations = i + 1
			T = (lo + hi) / 2
			if T-math.Min(onDemand, capacity(T)) > 0 {
				hi = T
			} else {
				lo = T
			}
			if hi-lo <= relEps*math.Max(hi, 1) {
				break
			}
		}
	}
	p.Converged = true
	cap_ := capacity(T)
	rho, lat, cpuAchieved, _ := memState(T)
	p.Rho = rho
	p.CapacityGbps = cap_ / 1e9
	p.DemandGbps = onDemand / 1e9

	// --- Drop model. ---
	blind := float64(model.CCBlindThreshold(cfg.NIC.BufferBytes, hostTarget, payloadFrac))
	p.BlindGbps = blind / 1e9
	arrival := onDemand // what the fabric delivers during the on-phase
	dropFrac := 0.0
	switch {
	case arrival <= cap_:
		// Underload: the host keeps up; no sustained drops.
	case cc == Swift && cap_ < blind:
		// The full-buffer drain delay exceeds the host target, so the
		// delay-target CC sees the congestion and backs off to the
		// service rate: residual drops only (sawtooth probing).
		arrival = cap_
	default:
		// Blind zone (or a CC that never reacts to host congestion):
		// arrivals keep coming at the offered rate and the excess drops
		// at the NIC buffer. Reactive protocols still see the *losses*
		// and cut their windows, so the sustained excess is a fraction
		// of the raw overshoot (sawtooth recovery); only a fixed window
		// keeps pushing the full excess.
		p.Blind = true
		lossFeedback := 0.35
		if cc == Fixed {
			lossFeedback = 1
		}
		dropFrac = lossFeedback * (arrival - cap_) / arrival
	}
	achieved := math.Min(arrival, cap_)

	// Burst-onset drops: even when the on-phase rate is serviceable the
	// onset burst can overflow the buffer if arrivals outrun service
	// before the CC window closes; with serviceable on-rates the shared
	// buffer absorbs the onset, so only the sustained excess (handled
	// above) contributes. The duty cycle then scales the averages.
	avgAchieved := achieved * duty
	avgArrival := arrival * duty

	// --- Assemble Results in the DES units. ---
	sec := measure.Seconds()
	res := host.Results{Duration: measure}
	res.AppThroughputGbps = avgAchieved / 1e9
	res.Goodput = uint64(math.Round(avgAchieved / 8 * sec))
	res.DropRatePct = dropFrac * 100
	res.LinkUtilization = avgArrival / payloadFrac / float64(cfg.Fabric.AccessLinkRate)
	res.IOTLBMissesPerPacket = missesPerPacket
	res.MemoryBandwidthGBps = (cpuAchieved + avgAchieved/(8*float64(mtu))*ioBytesPerPkt) / 1e9

	pktRate := avgArrival / (8 * float64(mtu))
	arrivedPkts := pktRate * sec
	res.Drops = uint64(math.Round(arrivedPkts * dropFrac))
	res.RxPackets = uint64(math.Round(arrivedPkts)) - res.Drops
	res.Retransmits = res.Drops
	res.Reads = res.Goodput / uint64(cfg.Transport.ReadSize)

	// Host delay: dropping ⇒ the buffer rides full and delay is its
	// drain time; capacity-bound but visible ⇒ the CC holds delay near
	// its target; underload ⇒ the base pipeline latency.
	drainWire := sim.BitsPerSecond(cap_ / payloadFrac)
	switch {
	case dropFrac > 0:
		full := model.EffectiveRxDelayBudget(cfg.NIC.BufferBytes, drainWire)
		res.HostDelayP50 = full * 4 / 5
		res.HostDelayP99 = full
		res.HostDelayMax = full
	case achieved >= cap_*0.98 && cc == Swift:
		res.HostDelayP50 = hostTarget * 4 / 5
		res.HostDelayP99 = hostTarget
		res.HostDelayMax = hostTarget * 6 / 5
	default:
		base := 2*transmit.TransmitTime(cfg.PCIe.WireBytes(mtu)) + 3*lat +
			memQueueAllowance + cfg.PCIe.RootComplexLatency
		res.HostDelayP50 = base
		res.HostDelayP99 = 3 * base
		res.HostDelayMax = 6 * base
	}

	// Read latency: per-connection serialization of one ReadSize RPC
	// plus the fabric round trip and the host delay.
	conns := float64(cfg.Senders * cfg.ReceiverThreads)
	if perConn := avgAchieved / conns; perConn > 0 {
		serialize := sim.Duration(float64(cfg.Transport.ReadSize) * 8 / perConn * 1e9)
		rtt := 2*cfg.Fabric.PropagationDelay + res.HostDelayP50
		res.ReadLatencyP50 = serialize + rtt
		res.ReadLatencyP99 = 2*serialize + rtt + res.HostDelayP99
		res.ReadLatencyP999 = 3*serialize + rtt + 2*res.HostDelayP99
	}
	res.FairnessIndex = 1

	p.Results = res
	return p, nil
}
