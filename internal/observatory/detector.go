package observatory

import (
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// numCauses mirrors the telemetry taxonomy size (overload, iotlb-walk,
// memory-bus); TestCauseDimensions keeps it in sync.
const numCauses = 3

// Episode is one contiguous congestion incident on a host: the
// hysteresis detector opened it when the NIC buffer crossed the on
// threshold (or drops appeared) and closed it when the buffer drained
// below the off threshold with no drops. Host and Cell are stamped by
// the fleet Collector; standalone detectors leave them zero.
type Episode struct {
	// Host is the fleet host index the episode belongs to.
	Host int `json:"host"`
	// Cell is the host's catalog cell label (SKU × workload ×
	// antagonist tier) when known.
	Cell string `json:"cell,omitempty"`
	// Start and End bound the episode in sim time.
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`
	// PeakBufferFrac is the worst NIC buffer fill observed (may exceed
	// 1 only by rounding; 1 means a full buffer — drops imminent).
	PeakBufferFrac float64 `json:"peak_buffer_frac"`
	// PeakBufferBytes is the worst absolute occupancy.
	PeakBufferBytes int `json:"peak_buffer_bytes"`
	// Drops counts NIC tail-drops during the episode.
	Drops uint64 `json:"drops"`
	// Cause is the dominant root cause: the telemetry taxonomy applied
	// to each sample's pipeline state, weighted by time. CauseShare is
	// the fraction of episode time attributed to that cause.
	Cause      telemetry.DropCause `json:"cause"`
	CauseShare float64             `json:"cause_share"`
	// CCBlind marks episodes whose peak occupancy drains in less than
	// the congestion-control reaction horizon (Swift's 90 µs): the
	// buffer overflows before any end-to-end signal can help — the
	// paper's §2 blind window.
	CCBlind bool `json:"cc_blind"`

	// causeNs is the per-cause time split the collector aggregates.
	causeNs [numCauses]sim.Duration
}

// Duration is the episode's sim-time length.
func (e Episode) Duration() sim.Duration { return e.End.Sub(e.Start) }

// CauseTime returns the episode time attributed to one cause.
func (e Episode) CauseTime(c telemetry.DropCause) sim.Duration {
	if int(c) >= numCauses {
		return 0
	}
	return e.causeNs[c]
}

// Detector is the streaming hysteresis state machine: Observe one
// Sample at a time, Finish at end of run, read Episodes. A host is
// congested while the buffer fill is at or above OnFraction (or any
// interval saw drops) and stays congested until the fill falls to
// OffFraction or below with a drop-free interval — the two-threshold
// band is what keeps a signal oscillating around one threshold from
// flapping into many micro-episodes. Episodes separated by less than
// MergeGap are merged, so a one-sample dip does not split an incident.
type Detector struct {
	cfg      Config
	lineRate sim.BitsPerSecond

	open     bool
	cur      Episode
	episodes []Episode

	congested sim.Duration
	drops     uint64
}

// NewDetector builds a detector with cfg's thresholds. lineRate sizes
// the CC-blind test (zero disables it).
func NewDetector(cfg Config, lineRate sim.BitsPerSecond) *Detector {
	return &Detector{cfg: cfg.withDefaults(), lineRate: lineRate}
}

// Observe folds one sample and reports whether the host is congested
// after it. Samples must arrive in time order.
func (d *Detector) Observe(s Sample) bool {
	d.drops += s.Drops
	if !d.open {
		if s.BufferFrac >= d.cfg.OnFraction || s.Drops > 0 {
			d.openEpisode(s.At)
			d.fold(s)
		}
		return d.open
	}
	d.fold(s)
	if s.BufferFrac <= d.cfg.OffFraction && s.Drops == 0 {
		d.closeEpisode(s.At)
	}
	return d.open
}

// openEpisode starts a new episode at t, or reopens the previous one
// when the gap since its end is within MergeGap.
func (d *Detector) openEpisode(t sim.Time) {
	d.open = true
	if n := len(d.episodes); n > 0 && t.Sub(d.episodes[n-1].End) <= d.cfg.MergeGap {
		d.cur = d.episodes[n-1]
		d.episodes = d.episodes[:n-1]
		// The merged span will be re-counted in full at close.
		d.congested -= d.cur.Duration()
		return
	}
	d.cur = Episode{Start: t, End: t}
}

// fold accumulates one in-episode sample: peak severity, drops, and
// one sampling interval of cause-attributed time.
func (d *Detector) fold(s Sample) {
	d.cur.End = s.At
	d.cur.Drops += s.Drops
	if s.BufferFrac > d.cur.PeakBufferFrac {
		d.cur.PeakBufferFrac = s.BufferFrac
	}
	if s.BufferBytes > d.cur.PeakBufferBytes {
		d.cur.PeakBufferBytes = s.BufferBytes
	}
	cause := telemetry.Classify(telemetry.DropContext{
		MemLoadFactor:  s.MemLoadFactor,
		IOTLBMissRate:  s.IOTLBMissRate,
		MemQueueDelay:  sim.Duration(s.MemQueueNs),
		CreditStallAge: sim.Duration(s.CreditStallNs),
		BufferBytes:    s.BufferBytes,
	})
	d.cur.causeNs[cause] += d.cfg.SampleEvery
}

func (d *Detector) closeEpisode(t sim.Time) {
	d.open = false
	d.cur.End = t
	d.cur.Cause = telemetry.CauseOverload
	var total sim.Duration
	for c, ns := range d.cur.causeNs {
		total += ns
		if ns > d.cur.causeNs[d.cur.Cause] {
			d.cur.Cause = telemetry.DropCause(c)
		}
	}
	if total > 0 {
		d.cur.CauseShare = float64(d.cur.causeNs[d.cur.Cause]) / float64(total)
	}
	if d.lineRate > 0 {
		d.cur.CCBlind = d.cur.PeakBufferBytes > 0 &&
			d.lineRate.TransmitTime(d.cur.PeakBufferBytes) < d.cfg.BlindHorizon
	}
	d.congested += d.cur.Duration()
	d.episodes = append(d.episodes, d.cur)
}

// Open reports whether an episode is in progress.
func (d *Detector) Open() bool { return d.open }

// Finish closes any open episode at t and returns all episodes in time
// order. Idempotent; the returned slice is owned by the detector.
func (d *Detector) Finish(t sim.Time) []Episode {
	if d.open {
		d.closeEpisode(t)
	}
	return d.episodes
}

// Episodes returns the closed episodes so far.
func (d *Detector) Episodes() []Episode { return d.episodes }

// CongestedTime is the total sim time spent inside closed episodes.
func (d *Detector) CongestedTime() sim.Duration { return d.congested }

// Drops is the total drop count observed across all samples.
func (d *Detector) Drops() uint64 { return d.drops }
