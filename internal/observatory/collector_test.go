package observatory_test

import (
	"strings"
	"sync"
	"testing"

	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/sim"
)

// fakeSink captures emitted events for inspection.
type fakeSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (f *fakeSink) Emit(e obs.Event) {
	f.mu.Lock()
	f.events = append(f.events, e)
	f.mu.Unlock()
}
func (f *fakeSink) StartRun(string, int64, ...string) *obs.Run { return nil }
func (f *fakeSink) RunMetrics(obs.Snapshot)                    {}

// congestedReport builds a report with one memory-bus episode through a
// real detector (Episode's cause split is detector-owned state).
func congestedReport(t *testing.T) *observatory.HostReport {
	t.Helper()
	d := observatory.NewDetector(observatory.Config{}, 100e9)
	for i := 1; i <= 5; i++ {
		d.Observe(observatory.Sample{At: at(i), BufferFrac: 0.9, BufferBytes: 900 << 10, Drops: 2, MemLoadFactor: 1.5})
	}
	eps := d.Finish(at(6))
	if len(eps) != 1 {
		t.Fatalf("fixture built %d episodes, want 1", len(eps))
	}
	return &observatory.HostReport{
		Samples:     6,
		Drops:       d.Drops(),
		CongestedNs: int64(d.CongestedTime()),
		Episodes:    eps,
	}
}

func TestCollectorRollupAndStamping(t *testing.T) {
	c := observatory.NewCollector(observatory.DefaultConfig())
	sink := &fakeSink{}
	c.SetSink(sink, "fleet")

	var cbHosts []int
	c.OnReport(func(hostIdx int, cell string, rep *observatory.HostReport) error {
		cbHosts = append(cbHosts, hostIdx)
		return nil
	})

	rep := congestedReport(t)
	if err := c.Record(3, "cellA", rep); err != nil {
		t.Fatal(err)
	}
	if err := c.Record(4, "cellB", &observatory.HostReport{Samples: 6}); err != nil {
		t.Fatal(err)
	}

	if rep.Episodes[0].Host != 3 || rep.Episodes[0].Cell != "cellA" {
		t.Errorf("episode not stamped: host=%d cell=%q", rep.Episodes[0].Host, rep.Episodes[0].Cell)
	}

	s := c.Summary()
	if s.Hosts != 2 || s.CongestedHosts != 1 || s.Episodes != 1 {
		t.Errorf("summary hosts=%d congested=%d episodes=%d, want 2/1/1", s.Hosts, s.CongestedHosts, s.Episodes)
	}
	if s.Drops != rep.Drops {
		t.Errorf("summary drops = %d, want %d", s.Drops, rep.Drops)
	}
	if len(s.Cells) != 2 || s.Cells[0].Cell != "cellA" {
		t.Errorf("cells = %+v, want cellA (most episodes) first", s.Cells)
	}
	if s.Cells[0].TopCause.String() != "memory-bus" || s.Cells[0].TopCauseShare != 1 {
		t.Errorf("cellA top cause = %s %.2f, want memory-bus 1.00", s.Cells[0].TopCause, s.Cells[0].TopCauseShare)
	}

	if len(sink.events) != 1 {
		t.Fatalf("sink got %d events, want 1", len(sink.events))
	}
	e := sink.events[0]
	if e.Kind != obs.KindIncident || e.Run != "fleet" || e.Point != 3 || e.Key != "cellA" || e.Why != "memory-bus" {
		t.Errorf("incident event = %+v", e)
	}

	if len(cbHosts) != 2 || cbHosts[0] != 3 || cbHosts[1] != 4 {
		t.Errorf("OnReport hosts = %v, want [3 4]", cbHosts)
	}

	if note := c.Note(); !strings.Contains(note, "incidents 1") || !strings.Contains(note, "1/2 hosts congested") {
		t.Errorf("note = %q", note)
	}
}

func TestCollectorMemo(t *testing.T) {
	c := observatory.NewCollector(observatory.Config{})
	if c.Lookup("k") != nil {
		t.Fatal("empty collector returned a memo")
	}
	rep := &observatory.HostReport{Samples: 1}
	c.Memo("k", rep)
	if c.Lookup("k") != rep {
		t.Fatal("memoized report not returned")
	}
}

func TestCollectorMetricsNames(t *testing.T) {
	c := observatory.NewCollector(observatory.Config{})
	if err := c.Record(0, "cell", congestedReport(t)); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	c.MetricsInto(func(name, typ string, v float64) { got[name] = v })
	for _, want := range []string{
		"hic_fleet_incident_hosts_total",
		"hic_fleet_incident_hosts_congested_total",
		"hic_fleet_incident_hosts_live_congested",
		"hic_fleet_incident_episodes_total",
		"hic_fleet_incident_cc_blind_total",
		"hic_fleet_incident_drops_total",
		`hic_fleet_incident_cause_seconds_total{cause="memory-bus"}`,
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("metric %s not emitted (got %v)", want, got)
		}
	}
	if got["hic_fleet_incident_episodes_total"] != 1 {
		t.Errorf("episodes_total = %g, want 1", got["hic_fleet_incident_episodes_total"])
	}
	if got[`hic_fleet_incident_cause_seconds_total{cause="memory-bus"}`] <= 0 {
		t.Error("memory-bus cause seconds not accumulated")
	}
}

func TestCollectorWriteReport(t *testing.T) {
	c := observatory.NewCollector(observatory.Config{BlindHorizon: 90 * sim.Microsecond})
	if err := c.Record(0, "sku12t-12mb/swift-s40/ant8", congestedReport(t)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.WriteReport(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sim-time congestion observatory: 1/1 hosts congested",
		"episode duration (sim ms)",
		"cc-blind episodes",
		"memory-bus",
		"top cells by episodes",
		"episode duration quantiles",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorOnReportError(t *testing.T) {
	c := observatory.NewCollector(observatory.Config{})
	c.OnReport(func(int, string, *observatory.HostReport) error {
		return errSentinel
	})
	err := c.Record(0, "cell", &observatory.HostReport{})
	if err == nil || !strings.Contains(err.Error(), "report callback") {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }
