// Package observatory is the sim-time congestion observatory: it
// watches the *simulated system* the way internal/obs watches the
// executor. Where obs reports wall-clock progress of a fleet run, the
// observatory reports what each simulated host experienced in sim time
// — when its NIC buffer filled, how long the episode lasted, and which
// interconnect mechanism caused it — reproducing the paper's §1 fleet
// monitoring (continuous per-host signals → congestion incidents →
// root-cause attribution → fleet-wide rollup).
//
// Three layers:
//
//   - Monitor — an engine-clocked sampler attached to one host.Testbed.
//     Every SampleEvery of sim time it snapshots the datapath signals
//     (NIC buffer fill and drops, PCIe credit occupancy and stall age,
//     IOTLB miss rate, memory load factor and queue delay, goodput)
//     into a bounded ring timeline.
//   - Detector — a streaming hysteresis state machine folding samples
//     into congestion Episodes with per-episode peak severity, drop
//     counts, telemetry-taxonomy root cause, and a CC-blind flag
//     (buffer drains faster than the transport can react).
//   - Collector — the fleet rollup: per-host reports stream in with
//     O(cells) memory into Moments/Reservoir aggregates and per-cell
//     cause mixes, out to a paper-style report, hic_fleet_incident_*
//     metrics, incident obs events, and JSONL exports.
//
// Sampling is passive: the timer callback only reads state and
// consumes no engine RNG, so enabling the observatory leaves Results
// bit-identical (the golden-hash tests prove it), and every disabled-
// path entry point is nil-receiver safe and allocation-free
// (TestObservatoryDisabledZeroAlloc).
package observatory

import (
	"encoding/json"
	"fmt"
	"io"

	"hic/internal/host"
	"hic/internal/sim"
)

// Config tunes the sampler and detector. The zero value means "use the
// defaults below".
type Config struct {
	// SampleEvery is the sim-time sampling interval (default 100 µs —
	// fine enough to catch sub-millisecond episodes, ~200 samples per
	// default fleet window).
	SampleEvery sim.Duration
	// RingCap bounds the retained timeline per host (default 1024
	// samples; older samples are overwritten).
	RingCap int
	// OnFraction is the NIC buffer fill at which an episode opens
	// (default 0.5). Any interval containing drops also opens one.
	OnFraction float64
	// OffFraction is the fill at or below which a drop-free interval
	// closes the episode (default 0.25). The on/off band is the
	// hysteresis that prevents flapping.
	OffFraction float64
	// MergeGap merges episodes separated by less than this much sim
	// time into one incident (default 200 µs).
	MergeGap sim.Duration
	// BlindHorizon is the congestion-control reaction horizon for the
	// CC-blind flag (default 90 µs, Swift's fabric+host target).
	BlindHorizon sim.Duration
}

// DefaultConfig returns the default observatory tuning.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 100 * sim.Microsecond
	}
	if c.RingCap <= 0 {
		c.RingCap = 1024
	}
	if c.RingCap < 16 {
		c.RingCap = 16
	}
	if c.OnFraction <= 0 {
		c.OnFraction = 0.5
	}
	if c.OffFraction <= 0 {
		c.OffFraction = 0.25
	}
	if c.MergeGap <= 0 {
		c.MergeGap = 200 * sim.Microsecond
	}
	if c.BlindHorizon <= 0 {
		c.BlindHorizon = 90 * sim.Microsecond
	}
	return c
}

// Sample is one timeline point: interval quantities (goodput, drops)
// cover the sampling interval ending at At; the rest are instantaneous
// readings.
type Sample struct {
	At              sim.Time `json:"t_ns"`
	GoodputGbps     float64  `json:"goodput_gbps"`
	BufferBytes     int      `json:"buffer_bytes"`
	BufferFrac      float64  `json:"buffer_frac"`
	Drops           uint64   `json:"drops"`
	CreditOccupancy float64  `json:"credit_occupancy"`
	CreditStallNs   int64    `json:"credit_stall_ns"`
	IOTLBMissRate   float64  `json:"iotlb_miss_rate"`
	MemLoadFactor   float64  `json:"mem_load_factor"`
	MemQueueNs      int64    `json:"mem_queue_ns"`
	// Congested is the detector's verdict after folding this sample.
	Congested bool `json:"congested,omitempty"`
}

// Monitor samples one testbed on the engine clock. Attach before
// Run; Report after. All methods are nil-receiver safe so callers can
// hold a nil *Monitor on the disabled path.
type Monitor struct {
	tb      *host.Testbed
	cfg     Config
	statics host.SignalStatics
	det     *Detector

	ring  []Sample
	total uint64

	samples   uint64
	drops     uint64
	prevGood  uint64
	prevDrops uint64
}

// Attach registers a sampling timer on the testbed's engine and
// returns the monitor. The callback is read-only and draws no engine
// randomness, so an attached monitor never perturbs the simulation.
func Attach(tb *host.Testbed, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		tb:      tb,
		cfg:     cfg,
		statics: tb.SignalStatics(),
		ring:    make([]Sample, 0, cfg.RingCap),
	}
	m.det = NewDetector(cfg, m.statics.LineRate)
	tb.Engine.Every(cfg.SampleEvery, m.sample)
	return m
}

func (m *Monitor) sample() {
	sig := m.tb.ReadSignals()
	// The window counters reset when a measurement window begins
	// (Registry.ResetAll); a cumulative reading below the previous one
	// means the baseline restarted at zero.
	if sig.GoodputBytes < m.prevGood {
		m.prevGood = 0
	}
	if sig.Drops < m.prevDrops {
		m.prevDrops = 0
	}
	s := Sample{
		At:              sig.At,
		GoodputGbps:     float64(sig.GoodputBytes-m.prevGood) * 8 / m.cfg.SampleEvery.Seconds() / 1e9,
		BufferBytes:     sig.BufferBytes,
		Drops:           sig.Drops - m.prevDrops,
		CreditOccupancy: sig.CreditOccupancy,
		CreditStallNs:   int64(sig.CreditStallAge),
		IOTLBMissRate:   sig.IOTLBMissRate,
		MemLoadFactor:   sig.MemLoadFactor,
		MemQueueNs:      int64(sig.MemQueueDelay),
	}
	m.prevGood, m.prevDrops = sig.GoodputBytes, sig.Drops
	if m.statics.NICBufferBytes > 0 {
		s.BufferFrac = float64(s.BufferBytes) / float64(m.statics.NICBufferBytes)
	}
	s.Congested = m.det.Observe(s)
	m.samples++
	m.drops += s.Drops
	if len(m.ring) < cap(m.ring) {
		m.ring = append(m.ring, s)
	} else {
		m.ring[int(m.total%uint64(cap(m.ring)))] = s
	}
	m.total++
}

// Timeline returns the retained samples oldest-first (a copy).
func (m *Monitor) Timeline() []Sample {
	if m == nil || len(m.ring) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(m.ring))
	if m.total > uint64(cap(m.ring)) {
		head := int(m.total % uint64(cap(m.ring)))
		out = append(out, m.ring[head:]...)
		out = append(out, m.ring[:head]...)
	} else {
		out = append(out, m.ring...)
	}
	return out
}

// HostReport is one host's observatory output: its episodes, summary
// counters, and the retained timeline.
type HostReport struct {
	// Samples is how many signal samples were taken.
	Samples uint64 `json:"samples"`
	// Drops is the total NIC drops observed across all samples.
	Drops uint64 `json:"drops"`
	// CongestedNs is total sim time inside episodes.
	CongestedNs int64 `json:"congested_ns"`
	// EndsCongested marks a run that finished mid-episode — the live
	// "currently congested" gauge counts these.
	EndsCongested bool `json:"ends_congested,omitempty"`
	// Episodes are the detected incidents in time order.
	Episodes []Episode `json:"episodes"`
	// Timeline is the retained sample ring (not marshaled; exported
	// separately via WriteTimeline).
	Timeline []Sample `json:"-"`
}

// Report closes any open episode at the current sim time and returns
// the host's report. Nil-safe: a nil monitor reports nil.
func (m *Monitor) Report() *HostReport {
	if m == nil {
		return nil
	}
	rep := &HostReport{
		Samples:       m.samples,
		Drops:         m.drops,
		EndsCongested: m.det.Open(),
	}
	rep.Episodes = m.det.Finish(m.tb.Engine.Now())
	rep.CongestedNs = int64(m.det.CongestedTime())
	rep.Timeline = m.Timeline()
	return rep
}

// timelineLine stamps a host index onto each exported sample so many
// hosts can share one JSONL stream.
type timelineLine struct {
	Host int `json:"host"`
	Sample
}

// WriteTimeline writes the retained timeline as JSONL, one sample per
// line stamped with the host index. Nil-safe.
func (r *HostReport) WriteTimeline(w io.Writer, hostIdx int) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range r.Timeline {
		if err := enc.Encode(timelineLine{Host: hostIdx, Sample: s}); err != nil {
			return fmt.Errorf("observatory: writing timeline: %w", err)
		}
	}
	return nil
}
