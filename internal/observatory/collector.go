package observatory

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"hic/internal/asciiplot"
	"hic/internal/obs"
	"hic/internal/stats"
	"hic/internal/telemetry"
)

// Collector is the fleet rollup: cluster/sweep workers memoize per-host
// reports into it and the ordered emit phase Records them, one host at
// a time, into bounded aggregates (Welford moments, fixed-capacity
// reservoirs, one bucket per catalog cell). Memory is O(cells), never
// O(hosts). Live counters are atomics so the progress line and /metrics
// can read them while workers run. All exported methods are
// nil-receiver safe: a nil *Collector is the disabled observatory.
type Collector struct {
	cfg Config

	// Live counters (read by Note and MetricsInto mid-run).
	hostsDone atomic.Uint64
	congHosts atomic.Uint64
	liveCong  atomic.Uint64
	episodes  atomic.Uint64

	mu       sync.Mutex
	memo     map[string]*HostReport
	durMS    stats.Moments
	durQ     *stats.Reservoir // episode durations, sim ms
	sevQ     *stats.Reservoir // episode peak buffer fill
	causeNs  [numCauses]int64
	blind    uint64
	drops    uint64
	cells    map[string]*cellAgg
	sink     obs.Sink
	runLabel string
	onReport func(hostIdx int, cell string, rep *HostReport) error
}

// cellAgg is one SKU×workload×antagonist bucket.
type cellAgg struct {
	hosts     int
	congested int
	episodes  int
	causeNs   [numCauses]int64
}

// NewCollector builds a collector whose SamplerConfig carries cfg to
// every attached monitor.
func NewCollector(cfg Config) *Collector {
	return &Collector{
		cfg:   cfg.withDefaults(),
		memo:  make(map[string]*HostReport),
		durQ:  stats.NewReservoir(4096, 0x5eed0003),
		sevQ:  stats.NewReservoir(4096, 0x5eed0004),
		cells: make(map[string]*cellAgg),
	}
}

// SamplerConfig returns the per-host sampling configuration.
func (c *Collector) SamplerConfig() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// SetSink routes one obs incident event per episode into s under the
// given run label. Call before the fleet run starts.
func (c *Collector) SetSink(s obs.Sink, runLabel string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sink, c.runLabel = s, runLabel
	c.mu.Unlock()
}

// OnReport registers a callback invoked once per host, in host order,
// after the report's episodes are stamped with host index and cell
// label. Deduplicated hosts share one report object; callbacks must
// not retain it across calls. A callback error aborts the fleet run.
func (c *Collector) OnReport(fn func(hostIdx int, cell string, rep *HostReport) error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onReport = fn
	c.mu.Unlock()
}

// Memo stores a host report under its scenario cache key so collapsed
// (deduplicated) hosts replay the same report — the simulation is
// deterministic per key, so the replay is exact.
func (c *Collector) Memo(key string, rep *HostReport) {
	if c == nil || rep == nil {
		return
	}
	c.mu.Lock()
	c.memo[key] = rep
	c.mu.Unlock()
}

// Lookup returns the memoized report for a scenario key (nil if none).
func (c *Collector) Lookup(key string) *HostReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memo[key]
}

// Record folds one host's report into the fleet aggregates, emits one
// obs incident event per episode, and invokes the OnReport callback.
// Called from the ordered emit phase, host order, one call at a time.
func (c *Collector) Record(hostIdx int, cell string, rep *HostReport) error {
	if c == nil || rep == nil {
		return nil
	}
	c.hostsDone.Add(1)
	if len(rep.Episodes) > 0 {
		c.congHosts.Add(1)
	}
	if rep.EndsCongested {
		c.liveCong.Add(1)
	}
	c.episodes.Add(uint64(len(rep.Episodes)))

	c.mu.Lock()
	ca := c.cells[cell]
	if ca == nil {
		ca = &cellAgg{}
		c.cells[cell] = ca
	}
	ca.hosts++
	if len(rep.Episodes) > 0 {
		ca.congested++
	}
	ca.episodes += len(rep.Episodes)
	c.drops += rep.Drops
	for i := range rep.Episodes {
		e := &rep.Episodes[i]
		e.Host, e.Cell = hostIdx, cell
		ms := float64(e.Duration()) / 1e6
		c.durMS.Add(ms)
		c.durQ.Add(ms)
		c.sevQ.Add(e.PeakBufferFrac)
		if e.CCBlind {
			c.blind++
		}
		for k := 0; k < numCauses; k++ {
			c.causeNs[k] += int64(e.causeNs[k])
			ca.causeNs[k] += int64(e.causeNs[k])
		}
	}
	sink, label := c.sink, c.runLabel
	onReport := c.onReport
	c.mu.Unlock()

	if sink != nil {
		for _, e := range rep.Episodes {
			sink.Emit(obs.Event{
				Kind:  obs.KindIncident,
				Run:   label,
				Point: e.Host,
				Key:   e.Cell,
				Why:   e.Cause.String(),
				Value: e.PeakBufferFrac,
				DurMS: float64(e.Duration()) / 1e6,
			})
		}
	}
	if onReport != nil {
		if err := onReport(hostIdx, cell, rep); err != nil {
			return fmt.Errorf("observatory: report callback: %w", err)
		}
	}
	return nil
}

// Note is the progress-line fragment: live incident count and
// congested-host gauges. Safe to call concurrently with Record.
func (c *Collector) Note() string {
	if c == nil {
		return ""
	}
	return fmt.Sprintf("incidents %d (%d/%d hosts congested, %d live)",
		c.episodes.Load(), c.congHosts.Load(), c.hostsDone.Load(), c.liveCong.Load())
}

// MetricsInto implements obs.MetricSource: the hic_fleet_incident_*
// series served live on /metrics.
func (c *Collector) MetricsInto(emit func(name, typ string, v float64)) {
	if c == nil {
		return
	}
	emit("hic_fleet_incident_hosts_total", "counter", float64(c.hostsDone.Load()))
	emit("hic_fleet_incident_hosts_congested_total", "counter", float64(c.congHosts.Load()))
	emit("hic_fleet_incident_hosts_live_congested", "gauge", float64(c.liveCong.Load()))
	emit("hic_fleet_incident_episodes_total", "counter", float64(c.episodes.Load()))
	c.mu.Lock()
	blind, drops, causeNs := c.blind, c.drops, c.causeNs
	c.mu.Unlock()
	emit("hic_fleet_incident_cc_blind_total", "counter", float64(blind))
	emit("hic_fleet_incident_drops_total", "counter", float64(drops))
	for _, cause := range telemetry.Causes() {
		emit(fmt.Sprintf("hic_fleet_incident_cause_seconds_total{cause=%q}", cause.String()),
			"counter", float64(causeNs[cause])/1e9)
	}
}

// CellSummary is one catalog cell's rollup row.
type CellSummary struct {
	Cell      string
	Hosts     int
	Congested int
	Episodes  int
	// TopCause is the cell's dominant cause by episode time;
	// TopCauseShare its fraction of the cell's episode time.
	TopCause      telemetry.DropCause
	TopCauseShare float64
}

// FleetSummary is the fleet-wide rollup Report renders.
type FleetSummary struct {
	Hosts          uint64
	CongestedHosts uint64
	LiveCongested  uint64
	Episodes       uint64
	Drops          uint64
	CCBlind        uint64

	DurMeanMS, DurP50MS, DurP90MS, DurP99MS, DurMaxMS float64
	SevP50, SevP99                                    float64

	// CauseShare is each cause's fraction of total episode time.
	CauseShare [numCauses]float64
	// Cells is every catalog cell, most episodes first.
	Cells []CellSummary
}

// Summary computes the current rollup.
func (c *Collector) Summary() FleetSummary {
	if c == nil {
		return FleetSummary{}
	}
	s := FleetSummary{
		Hosts:          c.hostsDone.Load(),
		CongestedHosts: c.congHosts.Load(),
		LiveCongested:  c.liveCong.Load(),
		Episodes:       c.episodes.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Drops, s.CCBlind = c.drops, c.blind
	if c.durMS.N() > 0 {
		s.DurMeanMS = c.durMS.Mean()
		s.DurMaxMS = c.durMS.Max()
		s.DurP50MS = c.durQ.Quantile(0.5)
		s.DurP90MS = c.durQ.Quantile(0.9)
		s.DurP99MS = c.durQ.Quantile(0.99)
		s.SevP50 = c.sevQ.Quantile(0.5)
		s.SevP99 = c.sevQ.Quantile(0.99)
	}
	var total int64
	for _, ns := range c.causeNs {
		total += ns
	}
	if total > 0 {
		for k := 0; k < numCauses; k++ {
			s.CauseShare[k] = float64(c.causeNs[k]) / float64(total)
		}
	}
	s.Cells = make([]CellSummary, 0, len(c.cells))
	for name, ca := range c.cells {
		cs := CellSummary{Cell: name, Hosts: ca.hosts, Congested: ca.congested, Episodes: ca.episodes}
		var cellTotal int64
		for k := 0; k < numCauses; k++ {
			cellTotal += ca.causeNs[k]
			if ca.causeNs[k] > ca.causeNs[cs.TopCause] {
				cs.TopCause = telemetry.DropCause(k)
			}
		}
		if cellTotal > 0 {
			cs.TopCauseShare = float64(ca.causeNs[cs.TopCause]) / float64(cellTotal)
		}
		s.Cells = append(s.Cells, cs)
	}
	sort.Slice(s.Cells, func(i, j int) bool {
		if s.Cells[i].Episodes != s.Cells[j].Episodes {
			return s.Cells[i].Episodes > s.Cells[j].Episodes
		}
		return s.Cells[i].Cell < s.Cells[j].Cell
	})
	return s
}

// topCellRows bounds the per-cell table in the text report.
const topCellRows = 10

// WriteReport renders the paper-style fleet congestion report (the
// Fig. 1 view: how much of the fleet is congested, for how long, and
// why). With plot set it appends an ASCII episode-duration quantile
// curve.
func (c *Collector) WriteReport(w io.Writer, plot bool) error {
	if c == nil {
		return nil
	}
	s := c.Summary()
	frac := 0.0
	if s.Hosts > 0 {
		frac = float64(s.CongestedHosts) / float64(s.Hosts) * 100
	}
	fmt.Fprintf(w, "sim-time congestion observatory: %d/%d hosts congested (%.1f%%), %d episodes, %d still congested at window end\n",
		s.CongestedHosts, s.Hosts, frac, s.Episodes, s.LiveCongested)
	if s.Episodes == 0 {
		return nil
	}
	fmt.Fprintf(w, "episode duration (sim ms): mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		s.DurMeanMS, s.DurP50MS, s.DurP90MS, s.DurP99MS, s.DurMaxMS)
	fmt.Fprintf(w, "episode peak buffer fill: p50=%.2f p99=%.2f; drops observed: %d\n",
		s.SevP50, s.SevP99, s.Drops)
	fmt.Fprintf(w, "cc-blind episodes (peak drains under %v): %d/%d (%.1f%%)\n",
		c.cfg.BlindHorizon, s.CCBlind, s.Episodes, float64(s.CCBlind)/float64(s.Episodes)*100)
	fmt.Fprintf(w, "cause mix (share of episode time): memory-bus %.1f%%, iotlb-walk %.1f%%, overload %.1f%%\n",
		s.CauseShare[telemetry.CauseMemoryBus]*100,
		s.CauseShare[telemetry.CauseIOTLBWalk]*100,
		s.CauseShare[telemetry.CauseOverload]*100)
	if len(s.Cells) > 0 {
		rows := make([][]string, 0, topCellRows)
		for i, cs := range s.Cells {
			if i >= topCellRows {
				fmt.Fprintf(w, "(+%d more cells)\n", len(s.Cells)-topCellRows)
				break
			}
			rows = append(rows, []string{
				cs.Cell,
				fmt.Sprintf("%d", cs.Hosts),
				fmt.Sprintf("%d", cs.Congested),
				fmt.Sprintf("%d", cs.Episodes),
				fmt.Sprintf("%s %.0f%%", cs.TopCause, cs.TopCauseShare*100),
			})
		}
		fmt.Fprintf(w, "top cells by episodes:\n%s",
			asciiplot.FormatTable([]string{"cell", "hosts", "congested", "episodes", "top cause"}, rows))
	}
	if plot {
		qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
		labels := make([]string, len(qs))
		vals := make([]float64, len(qs))
		c.mu.Lock()
		for i, q := range qs {
			labels[i] = fmt.Sprintf("p%.0f", q*100)
			vals[i] = c.durQ.Quantile(q)
		}
		c.mu.Unlock()
		fmt.Fprint(w, asciiplot.LinePlot("episode duration quantiles (sim ms)", labels,
			[]asciiplot.Series{{Name: "dur_ms", Values: vals}}, 8))
	}
	return nil
}
