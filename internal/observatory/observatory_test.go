package observatory_test

import (
	"reflect"
	"strings"
	"testing"

	"hic/internal/core"
	"hic/internal/observatory"
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// fig6Params is the paper's Figure 6 memory-antagonist point with short
// windows (the same scenario the core golden-hash tests pin).
func fig6Params(seed uint64) core.Params {
	p := core.DefaultParams(12)
	p.AntagonistCores = 8
	p.Seed = seed
	p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	return p
}

func TestMonitorRingWrap(t *testing.T) {
	p := core.DefaultParams(8)
	p.Warmup, p.Measure = 1*sim.Millisecond, 3*sim.Millisecond
	ocfg := observatory.Config{RingCap: 16}
	_, rep, err := core.RunObserved(p, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ms at the default 100 µs cadence is ~40 samples; the ring keeps
	// the newest 16 in time order.
	if rep.Samples <= 16 {
		t.Fatalf("only %d samples — the run never wrapped the 16-slot ring", rep.Samples)
	}
	if len(rep.Timeline) != 16 {
		t.Fatalf("timeline holds %d samples, want 16 (ring capacity)", len(rep.Timeline))
	}
	for i := 1; i < len(rep.Timeline); i++ {
		if !rep.Timeline[i-1].At.Before(rep.Timeline[i].At) {
			t.Fatalf("timeline not in time order at %d: %v then %v", i, rep.Timeline[i-1].At, rep.Timeline[i].At)
		}
	}
}

func TestObservedDeterministic(t *testing.T) {
	run := func() *observatory.HostReport {
		_, rep, err := core.RunObserved(fig6Params(1), observatory.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds produced different observatory reports:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFig6AttributionMatchesLedger cross-checks the observatory's
// sampled root-cause attribution against the drop ledger's ground
// truth on the Figure 6 memory-antagonist point: both must blame the
// memory bus for ≥90%.
func TestFig6AttributionMatchesLedger(t *testing.T) {
	p := fig6Params(1)

	_, run, err := core.RunInstrumented(p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if total := run.Drops.Total(); total == 0 {
		t.Fatal("fig6 point produced no drops — scenario no longer stresses the memory bus")
	}
	ledgerShare := run.Drops.Share(telemetry.CauseMemoryBus)
	if ledgerShare < 0.9 {
		t.Errorf("drop ledger memory-bus share = %.2f, want >= 0.9", ledgerShare)
	}

	_, rep, err := core.RunObserved(p, observatory.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Episodes) == 0 {
		t.Fatal("fig6 point produced no congestion episodes")
	}
	var mem, total sim.Duration
	for _, e := range rep.Episodes {
		mem += e.CauseTime(telemetry.CauseMemoryBus)
		for _, c := range telemetry.Causes() {
			total += e.CauseTime(c)
		}
	}
	if total == 0 {
		t.Fatal("episodes carry no attributed time")
	}
	if share := float64(mem) / float64(total); share < 0.9 {
		t.Errorf("observatory memory-bus share = %.2f, want >= 0.9 (ledger says %.2f)", share, ledgerShare)
	}
}

// TestObservatoryDisabledZeroAlloc gates the disabled path: every
// entry point a fleet run touches per host must be allocation-free on
// a nil receiver.
func TestObservatoryDisabledZeroAlloc(t *testing.T) {
	var m *observatory.Monitor
	var c *observatory.Collector
	allocs := testing.AllocsPerRun(100, func() {
		if m.Report() != nil {
			t.Fatal("nil monitor reported")
		}
		if m.Timeline() != nil {
			t.Fatal("nil monitor has a timeline")
		}
		if err := c.Record(0, "cell", nil); err != nil {
			t.Fatal(err)
		}
		if c.Note() != "" {
			t.Fatal("nil collector has a note")
		}
		if c.Lookup("key") != nil {
			t.Fatal("nil collector memoized")
		}
		c.Memo("key", nil)
		c.SetSink(nil, "")
		c.OnReport(nil)
		_ = c.SamplerConfig()
	})
	if allocs != 0 {
		t.Fatalf("disabled observatory allocates %.0f allocs/op, want 0", allocs)
	}
}

func TestDefaultConfigDefaults(t *testing.T) {
	cfg := observatory.DefaultConfig()
	if cfg.SampleEvery != 100*sim.Microsecond {
		t.Errorf("SampleEvery = %v, want 100µs", cfg.SampleEvery)
	}
	if cfg.OnFraction <= cfg.OffFraction {
		t.Errorf("hysteresis band inverted: on %g <= off %g", cfg.OnFraction, cfg.OffFraction)
	}
	if cfg.BlindHorizon != 90*sim.Microsecond {
		t.Errorf("BlindHorizon = %v, want 90µs (Swift)", cfg.BlindHorizon)
	}
}

func TestWriteTimeline(t *testing.T) {
	p := core.DefaultParams(8)
	p.Warmup, p.Measure = 1*sim.Millisecond, 2*sim.Millisecond
	_, rep, err := core.RunObserved(p, observatory.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteTimeline(&b, 7); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(rep.Timeline) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(rep.Timeline))
	}
	for _, l := range lines {
		if !strings.Contains(l, `"host":7`) {
			t.Fatalf("timeline line missing host stamp: %s", l)
		}
		if !strings.Contains(l, `"t_ns"`) {
			t.Fatalf("timeline line missing t_ns: %s", l)
		}
	}
}
