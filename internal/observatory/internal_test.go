package observatory

import (
	"testing"

	"hic/internal/telemetry"
)

// TestCauseDimensions keeps the local numCauses mirror in sync with the
// telemetry taxonomy (the constant is duplicated because telemetry does
// not export its size).
func TestCauseDimensions(t *testing.T) {
	if got := len(telemetry.Causes()); got != numCauses {
		t.Fatalf("telemetry taxonomy has %d causes, observatory compiled for %d — update numCauses", got, numCauses)
	}
	for _, c := range telemetry.Causes() {
		if int(c) >= numCauses {
			t.Fatalf("cause %s indexes %d, out of range for numCauses=%d", c, int(c), numCauses)
		}
	}
}
