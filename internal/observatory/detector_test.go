package observatory_test

import (
	"testing"

	"hic/internal/observatory"
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// feed runs a sequence of (bufferFrac, drops) samples through a fresh
// detector at 100 µs spacing starting at t=100 µs and finishes it one
// interval after the last sample.
func feed(cfg observatory.Config, lineRate sim.BitsPerSecond, samples []observatory.Sample) []observatory.Episode {
	d := observatory.NewDetector(cfg, lineRate)
	var last sim.Time
	for _, s := range samples {
		d.Observe(s)
		last = s.At
	}
	return d.Finish(last.Add(100 * sim.Microsecond))
}

// at builds the n-th 100 µs sample tick.
func at(n int) sim.Time { return sim.Time(0).Add(sim.Duration(n) * 100 * sim.Microsecond) }

func TestDetectorHysteresisNoFlap(t *testing.T) {
	// A signal oscillating between 0.30 and 0.55 crosses the on
	// threshold (0.5) repeatedly but never falls to the off threshold
	// (0.25): the hysteresis band must hold this as ONE episode.
	var samples []observatory.Sample
	for i := 1; i <= 20; i++ {
		frac := 0.55
		if i%2 == 0 {
			frac = 0.30
		}
		samples = append(samples, observatory.Sample{At: at(i), BufferFrac: frac, BufferBytes: int(frac * 1024)})
	}
	eps := feed(observatory.Config{MergeGap: sim.Microsecond}, 0, samples)
	if len(eps) != 1 {
		t.Fatalf("oscillation inside the hysteresis band produced %d episodes, want 1 (flapping)", len(eps))
	}
	// Never drained below the off threshold, so Finish closed it at the
	// final tick.
	if eps[0].Start != at(1) || eps[0].End != at(21) {
		t.Errorf("episode spans [%d, %d], want [%d, %d]", eps[0].Start, eps[0].End, at(1), at(21))
	}

	// A signal oscillating below the on threshold with no drops never
	// opens an episode at all.
	samples = samples[:0]
	for i := 1; i <= 20; i++ {
		frac := 0.40
		if i%2 == 0 {
			frac = 0.20
		}
		samples = append(samples, observatory.Sample{At: at(i), BufferFrac: frac})
	}
	if eps := feed(observatory.Config{}, 0, samples); len(eps) != 0 {
		t.Fatalf("sub-threshold oscillation produced %d episodes, want 0", len(eps))
	}
}

func TestDetectorDropsOpenEpisode(t *testing.T) {
	// Drops open an episode even with a near-empty buffer (the paper's
	// low-utilization drops: the buffer overflowed and drained between
	// samples).
	eps := feed(observatory.Config{}, 0, []observatory.Sample{
		{At: at(1), BufferFrac: 0.05, Drops: 3},
		{At: at(2), BufferFrac: 0.05},
	})
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1", len(eps))
	}
	if eps[0].Drops != 3 {
		t.Errorf("episode drops = %d, want 3", eps[0].Drops)
	}
}

func TestDetectorMergeAdjacent(t *testing.T) {
	// Two bursts one sample apart: with the default 200 µs MergeGap the
	// 100 µs dip between them reopens the same incident.
	burst := func() []observatory.Sample {
		return []observatory.Sample{
			{At: at(1), BufferFrac: 0.8},
			{At: at(2), BufferFrac: 0.8},
			{At: at(3), BufferFrac: 0.1}, // closes
			{At: at(4), BufferFrac: 0.8}, // reopens 100 µs later
			{At: at(5), BufferFrac: 0.1}, // closes
		}
	}
	eps := feed(observatory.Config{}, 0, burst())
	if len(eps) != 1 {
		t.Fatalf("default MergeGap: got %d episodes, want 1 (merged)", len(eps))
	}
	if eps[0].Start != at(1) || eps[0].End != at(5) {
		t.Errorf("merged episode spans [%d, %d], want [%d, %d]", eps[0].Start, eps[0].End, at(1), at(5))
	}

	// With a MergeGap shorter than the dip the bursts stay separate.
	eps = feed(observatory.Config{MergeGap: 50 * sim.Microsecond}, 0, burst())
	if len(eps) != 2 {
		t.Fatalf("MergeGap 50µs: got %d episodes, want 2", len(eps))
	}
}

func TestDetectorAttribution(t *testing.T) {
	cases := []struct {
		name string
		s    observatory.Sample
		want telemetry.DropCause
	}{
		{"memory-bus", observatory.Sample{MemLoadFactor: 1.5, IOTLBMissRate: 0.3}, telemetry.CauseMemoryBus},
		{"iotlb-walk", observatory.Sample{MemLoadFactor: 0.5, IOTLBMissRate: 0.4}, telemetry.CauseIOTLBWalk},
		{"overload", observatory.Sample{MemLoadFactor: 0.5, IOTLBMissRate: 0.01}, telemetry.CauseOverload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var samples []observatory.Sample
			for i := 1; i <= 5; i++ {
				s := tc.s
				s.At, s.BufferFrac = at(i), 0.9
				samples = append(samples, s)
			}
			last := tc.s
			last.At, last.BufferFrac = at(6), 0.1
			eps := feed(observatory.Config{}, 0, append(samples, last))
			if len(eps) != 1 {
				t.Fatalf("got %d episodes, want 1", len(eps))
			}
			if eps[0].Cause != tc.want {
				t.Errorf("cause = %s, want %s", eps[0].Cause, tc.want)
			}
			if eps[0].CauseShare != 1 {
				t.Errorf("cause share = %g, want 1 (uniform samples)", eps[0].CauseShare)
			}
			if got := eps[0].CauseTime(tc.want); got != 6*100*sim.Microsecond {
				t.Errorf("cause time = %v, want 600µs", got)
			}
		})
	}
}

func TestDetectorCCBlind(t *testing.T) {
	mb := 1 << 20
	run := func(rate sim.BitsPerSecond) observatory.Episode {
		eps := feed(observatory.Config{}, rate, []observatory.Sample{
			{At: at(1), BufferFrac: 0.9, BufferBytes: mb},
			{At: at(2), BufferFrac: 0.1},
		})
		if len(eps) != 1 {
			t.Fatalf("got %d episodes, want 1", len(eps))
		}
		return eps[0]
	}
	// 1 MB at 100 Gbps drains in ~84 µs — inside Swift's 90 µs reaction
	// horizon, so the transport never saw it coming.
	if e := run(100e9); !e.CCBlind {
		t.Errorf("1 MB peak at 100 Gbps (≈84µs drain) not flagged cc-blind")
	}
	// The same buffer at 10 Gbps takes ~840 µs: CC has time to react.
	if e := run(10e9); e.CCBlind {
		t.Errorf("1 MB peak at 10 Gbps (≈840µs drain) wrongly flagged cc-blind")
	}
}
