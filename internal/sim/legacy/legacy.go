// Package legacy preserves the original container/heap event engine as
// a benchmark baseline. It is the implementation internal/sim shipped
// with before the hot-path rewrite: a binary heap driven through the
// container/heap interface (one `any`-boxing allocation per push), a
// freshly allocated event struct per schedule, lazy cancellation (dead
// events linger in the heap until popped), and a new closure per ticker
// tick.
//
// Nothing in the simulator uses this package; it exists so
// cmd/hicbench and the engine benchmarks can report a measured
// before/after ratio for the same workload. Behavior is identical to
// internal/sim — events compare by (time, insertion sequence) — so both
// engines execute the same callback sequence for the same schedule.
package legacy

import (
	"container/heap"
	"fmt"

	"hic/internal/sim"
)

type event struct {
	at   sim.Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancel marks the event dead; it is skipped when it reaches the head
// of the queue (lazy reaping — the pre-rewrite semantics).
func (id EventID) Cancel() {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Pending reports whether the event is still scheduled and not cancelled.
func (id EventID) Pending() bool {
	return id.ev != nil && !id.ev.dead && id.ev.idx >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is the pre-rewrite discrete-event core.
type Engine struct {
	now       sim.Time
	seq       uint64
	queue     eventHeap
	stopped   bool
	processed uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled-but-unreaped ones — the miscounting the rewrite fixed).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at.
func (e *Engine) At(at sim.Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("legacy: scheduling into the past: now=%v at=%v", e.now, at))
	}
	if fn == nil {
		panic("legacy: scheduling nil func")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d from now.
func (e *Engine) After(d sim.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		e.processed++
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or
// simulated time passes end.
func (e *Engine) Run(end sim.Time) sim.Time {
	e.stopped = false
	for !e.stopped {
		var next *event
		for len(e.queue) > 0 {
			if e.queue[0].dead {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil {
			break
		}
		if next.at > end {
			e.now = end
			break
		}
		e.step()
	}
	if e.now < end && len(e.queue) == 0 {
		e.now = end
	}
	return e.now
}
