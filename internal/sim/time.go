// Package sim provides a deterministic discrete-event simulation engine
// used by every substrate in this repository: an int64-nanosecond clock, a
// binary-heap event queue with stable tie-breaking, and a seeded
// pseudo-random number generator.
//
// A single Engine is single-threaded by construction; independent engines
// may run concurrently on separate goroutines (the experiment sweeps do
// exactly that), which keeps every individual run bit-reproducible for a
// given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
// int64 nanoseconds cover ~292 years of simulated time, far beyond any
// experiment here, while avoiding floating-point drift in event ordering.
type Time int64

// Duration is a simulated time interval in nanoseconds. It intentionally
// mirrors time.Duration semantics so the two convert trivially.
type Duration = time.Duration

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  Duration = time.Nanosecond
	Microsecond Duration = time.Microsecond
	Millisecond Duration = time.Millisecond
	Second      Duration = time.Second
)

// Add returns the timestamp d after t. Negative results are clamped to
// zero: no component may schedule into the pre-simulation past.
func (t Time) Add(d Duration) Time {
	nt := t + Time(d)
	if nt < 0 {
		return 0
	}
	return nt
}

// Sub returns the interval from u to t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// Seconds returns t as floating-point seconds, for rate computations.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration returns t as an interval since time zero.
func (t Time) Duration() Duration { return Duration(t) }

func (t Time) String() string {
	return fmt.Sprintf("t=%s", Duration(t))
}

// BitsPerSecond expresses a data rate. It is a distinct type so that link
// speeds, goodputs and bandwidth budgets cannot be confused with byte
// counts in APIs.
type BitsPerSecond float64

// Gbps constructs a rate from gigabits per second.
func Gbps(v float64) BitsPerSecond { return BitsPerSecond(v * 1e9) }

// Gbps reports the rate in gigabits per second.
func (r BitsPerSecond) Gbps() float64 { return float64(r) / 1e9 }

// BytesPerSecond converts the bit rate to a byte rate.
func (r BitsPerSecond) BytesPerSecond() float64 { return float64(r) / 8 }

// GBps reports the rate in gigabytes per second (1e9 bytes).
func (r BitsPerSecond) GBps() float64 { return float64(r) / 8e9 }

// TransmitTime returns how long transmitting n bytes takes at rate r.
// A zero or negative rate yields an effectively infinite duration.
func (r BitsPerSecond) TransmitTime(n int) Duration {
	if r <= 0 {
		return Duration(1<<62 - 1)
	}
	ns := float64(n) * 8 * 1e9 / float64(r)
	return Duration(ns)
}

// GBpsRate constructs a rate from gigabytes per second (1e9 bytes).
func GBpsRate(v float64) BitsPerSecond { return BitsPerSecond(v * 8e9) }
