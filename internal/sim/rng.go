package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**, seeded via SplitMix64). The standard library's math/rand
// would work, but a local implementation guarantees the generated streams
// never change across Go releases, which keeps recorded experiment outputs
// stable.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero,
// produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state deterministically from seed.
func (r *RNG) Seed(seed uint64) {
	// SplitMix64 to expand the seed into four non-zero words.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson arrival processes. The result is at least 1ns so that
// back-to-back arrivals still advance time.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := Duration(-math.Log(u) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller, one value per call for determinism).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac],
// clamped to at least 1ns. frac outside [0,1] is clamped.
func (r *RNG) Jitter(d Duration, frac float64) Duration {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f := 1 + frac*(2*r.Float64()-1)
	j := Duration(float64(d) * f)
	if j < 1 {
		j = 1
	}
	return j
}

// Fork derives an independent generator whose stream is a deterministic
// function of this generator's state. Used to give each simulated host its
// own stream in cluster sweeps.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// State returns the generator's full internal state. Together with
// SetState it lets a warm-started simulation resume the exact stream a
// converged donor run left off at, so checkpoint restores stay
// deterministic across process invocations.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. An all-zero
// state would wedge xoshiro256** (it is the one fixed point), so it is
// replaced by a fresh Seed(0) expansion.
func (r *RNG) SetState(s [4]uint64) {
	if s == ([4]uint64{}) {
		r.Seed(0)
		return
	}
	r.s = s
}
