package sim

import (
	"fmt"
	"sync/atomic"
)

// Event is a scheduled callback. Events compare by time, then by sequence
// number of insertion, so simultaneous events fire in the order they were
// scheduled — this is what makes runs reproducible.
//
// Events are owned by the engine's free list: once an event fires or is
// cancelled it is recycled, so the steady-state schedule→fire loop
// performs no heap allocation. The gen counter detects stale EventIDs
// pointing at a recycled slot.
type event struct {
	at  Time
	seq uint64
	fn  func()
	idx int32  // queue index, -1 when not queued
	gen uint32 // bumped on recycle; EventID must match to act
}

// eventPooling controls whether fired/cancelled events are recycled
// through the per-engine free list (the default) or left to the garbage
// collector. It exists so determinism tests can prove results are
// bit-identical either way; production code never turns it off.
var eventPooling atomic.Bool

func init() { eventPooling.Store(true) }

// SetEventPooling toggles event recycling process-wide. Intended for
// tests and debugging only; returns the previous setting.
func SetEventPooling(enabled bool) bool { return eventPooling.Swap(enabled) }

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is valid and refers to no event.
type EventID struct {
	e   *Engine
	ev  *event
	gen uint32
}

// Cancel removes the event from the queue immediately and recycles it.
// Cancelling an already-fired, already-cancelled, or zero EventID is a
// no-op: the generation counter detects stale handles.
func (id EventID) Cancel() {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.idx < 0 {
		return
	}
	id.e.queue.remove(int(id.ev.idx))
	id.e.recycle(id.ev)
}

// Pending reports whether the event is still scheduled and not cancelled.
func (id EventID) Pending() bool {
	return id.ev != nil && id.ev.gen == id.gen && id.ev.idx >= 0
}

// eventQueue is a 4-ary indexed min-heap ordered by (at, seq). A concrete
// element type avoids container/heap's interface boxing and per-operation
// indirect calls; the wider fan-out halves the tree depth, trading a few
// extra comparisons per level for fewer cache-missing swaps — the right
// trade for the short-deadline churn a DES queue sees. Because (at, seq)
// is a total order (seq is unique), any correct heap pops events in
// exactly the same sequence, so swapping the implementation preserves
// bit-identical runs.
type eventQueue struct {
	s []*event
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.s) }

// peek returns the earliest event without removing it, or nil when empty.
// Cancelled events are removed eagerly by Cancel, so the head is always
// live — there is no reap loop anywhere.
func (q *eventQueue) peek() *event {
	if len(q.s) == 0 {
		return nil
	}
	return q.s[0]
}

func (q *eventQueue) push(ev *event) {
	ev.idx = int32(len(q.s))
	q.s = append(q.s, ev)
	q.up(len(q.s) - 1)
}

func (q *eventQueue) pop() *event {
	ev := q.s[0]
	n := len(q.s) - 1
	last := q.s[n]
	q.s[n] = nil
	q.s = q.s[:n]
	if n > 0 {
		q.s[0] = last
		last.idx = 0
		q.down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at index i, preserving the heap invariant.
func (q *eventQueue) remove(i int) {
	ev := q.s[i]
	n := len(q.s) - 1
	last := q.s[n]
	q.s[n] = nil
	q.s = q.s[:n]
	if i < n {
		q.s[i] = last
		last.idx = int32(i)
		q.down(i)
		q.up(int(last.idx))
	}
	ev.idx = -1
}

func (q *eventQueue) up(i int) {
	ev := q.s[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, q.s[p]) {
			break
		}
		q.s[i] = q.s[p]
		q.s[i].idx = int32(i)
		i = p
	}
	q.s[i] = ev
	ev.idx = int32(i)
}

func (q *eventQueue) down(i int) {
	n := len(q.s)
	ev := q.s[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q.s[j], q.s[m]) {
				m = j
			}
		}
		if !eventLess(q.s[m], ev) {
			break
		}
		q.s[i] = q.s[m]
		q.s[i].idx = int32(i)
		i = m
	}
	q.s[i] = ev
	ev.idx = int32(i)
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*event // recycled events, LIFO for cache warmth
	rng     *RNG
	stopped bool
	// processed counts events actually executed (not cancelled ones),
	// exposed for engine benchmarks and runaway detection.
	processed uint64
}

// NewEngine returns an engine at time zero with the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's random stream. Components must draw randomness
// only from here (or from Fork()s of it) to preserve determinism.
func (e *Engine) RNG() *RNG { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live scheduled events. Cancelled events
// are removed from the queue at Cancel time, so — unlike earlier versions
// of this engine — the count never includes cancelled-but-unreaped
// entries.
func (e *Engine) Pending() int { return e.queue.len() }

// alloc returns a fresh or recycled event.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a dead event to the free list. The generation bump
// invalidates every EventID still referring to it.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.idx = -1
	ev.gen++
	if eventPooling.Load() {
		e.free = append(e.free, ev)
	}
}

// Reset returns the engine to a pristine time-zero state seeded with
// seed, while keeping its allocated capacity: every still-queued event
// is recycled into the free list (exactly as if it had been cancelled,
// so outstanding EventIDs are invalidated by the generation bump and
// retained callbacks are dropped), the queue's backing array is kept,
// and the RNG is reseeded in place. A reset engine behaves bit-
// identically to a fresh NewEngine(seed) — recycled events are fully
// re-initialized on allocation — which is what lets worker-pool arenas
// reuse one engine across many runs without setup GC churn.
func (e *Engine) Reset(seed uint64) {
	for _, ev := range e.queue.s {
		e.recycle(ev)
	}
	e.queue.s = e.queue.s[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.stopped = false
	e.rng.Seed(seed)
}

// EngineState is a serializable fingerprint of the engine at a point in
// simulated time: the clock, event accounting, and the full RNG state.
// It is the sim-layer half of a steady-state checkpoint. The event
// queue itself holds Go closures and cannot be serialized, so a
// checkpoint restore rebuilds the event population from primed
// component state rather than from the queue; EngineState records where
// the donor run stood (for checkpoint provenance and cache salting) and
// carries the RNG stream a warm start resumes from.
type EngineState struct {
	Now       Time      `json:"now"`
	Processed uint64    `json:"processed"`
	Pending   int       `json:"pending"`
	RNG       [4]uint64 `json:"rng"`
}

// State captures the engine's current clock, event counts, and RNG
// state. See EngineState for what a capture does and does not include.
func (e *Engine) State() EngineState {
	return EngineState{Now: e.now, Processed: e.processed, Pending: e.queue.len(), RNG: e.rng.State()}
}

// PrimeRNG replaces the engine's RNG state with one captured from a
// donor run's State. Only the random stream is restored — the clock and
// queue are deliberately untouched, because a warm start replays a
// short guard window on a freshly built host rather than resuming the
// donor's event queue.
func (e *Engine) PrimeRNG(s [4]uint64) { e.rng.SetState(s) }

// At schedules fn to run at absolute time at. Scheduling into the past
// panics: it always indicates a component bug.
func (e *Engine) At(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", e.now, at))
	}
	if fn == nil {
		panic("sim: scheduling nil func")
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.queue.push(ev)
	return EventID{e: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next event. It returns false when the queue is empty.
// The event is recycled before its callback runs, so the callback may
// immediately reuse the slot for a new schedule; its own EventID has
// already been invalidated by the generation bump.
func (e *Engine) step() bool {
	if e.queue.len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	fn := ev.fn
	e.recycle(ev)
	fn()
	e.processed++
	return true
}

// Run executes events until the queue drains, Stop is called, or simulated
// time passes end (events at exactly end still run). It returns the time
// at which it stopped.
func (e *Engine) Run(end Time) Time {
	e.stopped = false
	for !e.stopped {
		next := e.queue.peek()
		if next == nil {
			break
		}
		if next.at > end {
			e.now = end
			break
		}
		e.step()
	}
	if e.now < end && e.queue.len() == 0 {
		// Queue drained before the horizon: advance the clock so rate
		// computations over the full window remain correct.
		e.now = end
	}
	return e.now
}

// Drain executes every remaining event regardless of time. Intended for
// tests; production runs always use Run with a horizon.
func (e *Engine) Drain() {
	for e.step() {
	}
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped. fn observes the tick time via
// Engine.Now.
func (e *Engine) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	// One bound callback for the ticker's whole lifetime: rescheduling a
	// tick reuses it, so a periodic timer costs zero allocations per
	// period instead of a fresh closure every tick.
	t.tickFn = t.tick
	t.id = e.After(period, t.tickFn)
	return t
}

// Ticker is a repeating event created by Engine.Every.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	tickFn  func() // t.tick bound once at creation
	id      EventID
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.id = t.engine.After(t.period, t.tickFn)
	}
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.id.Cancel()
}
