package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events compare by time, then by sequence
// number of insertion, so simultaneous events fire in the order they were
// scheduled — this is what makes runs reproducible.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancel marks the event dead; a dead event is skipped when it reaches the
// head of the queue. Cancelling an already-fired or zero EventID is a no-op.
func (id EventID) Cancel() {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Pending reports whether the event is still scheduled and not cancelled.
func (id EventID) Pending() bool {
	return id.ev != nil && !id.ev.dead && id.ev.idx >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *RNG
	stopped bool
	// processed counts events actually executed (not cancelled ones),
	// exposed for engine benchmarks and runaway detection.
	processed uint64
}

// NewEngine returns an engine at time zero with the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's random stream. Components must draw randomness
// only from here (or from Fork()s of it) to preserve determinism.
func (e *Engine) RNG() *RNG { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled-but-unreaped ones).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling into the past
// panics: it always indicates a component bug.
func (e *Engine) At(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", e.now, at))
	}
	if fn == nil {
		panic("sim: scheduling nil func")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next event. It returns false when the queue is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		e.processed++
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or simulated
// time passes end (events at exactly end still run). It returns the time
// at which it stopped.
func (e *Engine) Run(end Time) Time {
	e.stopped = false
	for !e.stopped {
		// Peek for the horizon without popping.
		var next *event
		for len(e.queue) > 0 {
			if e.queue[0].dead {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil {
			break
		}
		if next.at > end {
			e.now = end
			break
		}
		e.step()
	}
	if e.now < end && len(e.queue) == 0 {
		// Queue drained before the horizon: advance the clock so rate
		// computations over the full window remain correct.
		e.now = end
	}
	return e.now
}

// Drain executes every remaining event regardless of time. Intended for
// tests; production runs always use Run with a horizon.
func (e *Engine) Drain() {
	for e.step() {
	}
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped. fn observes the tick time via
// Engine.Now.
func (e *Engine) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

// Ticker is a repeating event created by Engine.Every.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	id      EventID
	stopped bool
}

func (t *Ticker) schedule() {
	t.id = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.id.Cancel()
}
