package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(100)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v after drained Run(100), want 100", e.Now())
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(5)
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of insertion order: %v", got)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(10*Microsecond, func() {
		at = e.Now()
		e.After(5*Microsecond, func() { at = e.Now() })
	})
	e.Run(Time(Millisecond))
	if at != Time(15*Microsecond) {
		t.Errorf("nested After fired at %v, want 15µs", at)
	}
}

func TestEngineSchedulingPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(1000)
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	id := e.At(10, func() { fired = true })
	if !id.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	id.Cancel()
	if id.Pending() {
		t.Fatal("event still pending after cancel")
	}
	e.Run(100)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineRunHorizonStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10, func() { fired = append(fired, 10) })
	e.At(200, func() { fired = append(fired, 200) })
	end := e.Run(100)
	if end != 100 {
		t.Errorf("Run returned %v, want 100", end)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Errorf("fired = %v, want [10]", fired)
	}
	// Continue past the horizon: the remaining event must still fire.
	e.Run(300)
	if len(fired) != 2 {
		t.Errorf("second Run did not fire the deferred event: %v", fired)
	}
}

func TestEngineEventAtExactlyHorizonRuns(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(100, func() { fired = true })
	e.Run(100)
	if !fired {
		t.Error("event at exactly the horizon did not fire")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Errorf("processed %d events after Stop, want 3", count)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := e.Every(10*Microsecond, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			// Stop from inside the callback.
		}
	})
	e.At(Time(35*Microsecond), func() { tk.Stop() })
	e.Run(Time(Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (at 10,20,30µs): %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := Time((i + 1) * 10_000)
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(Microsecond, func() {
		n++
		if n == 5 {
			tk.Stop()
		}
	})
	e.Run(Time(Millisecond))
	if n != 5 {
		t.Errorf("ticker fired %d times after in-callback Stop at 5", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		e := NewEngine(seed)
		var draws []uint64
		e.Every(Microsecond, func() {
			draws = append(draws, e.RNG().Uint64())
		})
		e.Run(Time(50 * Microsecond))
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("draw lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different streams at %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTimeAddClampsNegative(t *testing.T) {
	if Time(5).Add(-10*Nanosecond) != 0 {
		t.Error("Add with large negative duration should clamp to 0")
	}
}

func TestTransmitTime(t *testing.T) {
	r := Gbps(100)
	// 12500 bytes at 100Gbps = 1µs.
	if got := r.TransmitTime(12500); got != Microsecond {
		t.Errorf("TransmitTime = %v, want 1µs", got)
	}
	if got := BitsPerSecond(0).TransmitTime(1); got < Duration(1<<60) {
		t.Errorf("zero rate should give effectively infinite time, got %v", got)
	}
}

func TestRateConversions(t *testing.T) {
	r := GBpsRate(11.8)
	if g := r.GBps(); g < 11.79 || g > 11.81 {
		t.Errorf("GBps round trip = %v", g)
	}
	if g := Gbps(92).Gbps(); g != 92 {
		t.Errorf("Gbps round trip = %v", g)
	}
	if bps := Gbps(8).BytesPerSecond(); bps != 1e9 {
		t.Errorf("BytesPerSecond = %v, want 1e9", bps)
	}
}

// Property: events scheduled at arbitrary non-negative offsets always fire
// in non-decreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine(7)
		var times []Time
		for _, off := range offsets {
			e.At(Time(off), func() { times = append(times, e.Now()) })
		}
		e.Drain()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(123)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/10)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	mean := 10 * Microsecond
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Errorf("Exp mean = %vns, want ~%v", got, mean)
	}
}

func TestRNGNormal(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(100, 15)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < 99 || mean > 101 {
		t.Errorf("Normal mean = %v, want ~100", mean)
	}
	if variance < 200 || variance > 250 {
		t.Errorf("Normal variance = %v, want ~225", variance)
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(11)
	d := 100 * Microsecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.1)
		if j < Duration(float64(d)*0.9) || j > Duration(float64(d)*1.1) {
			t.Fatalf("jitter %v outside ±10%% of %v", j, d)
		}
	}
	if r.Jitter(0, 0.5) < 1 {
		t.Error("jitter should clamp to at least 1ns")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(1)
	b := a.Fork()
	c := a.Fork()
	if b.Uint64() == c.Uint64() {
		t.Error("forked generators produced identical first draws")
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run(Time(1) << 60)
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
