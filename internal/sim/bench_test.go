package sim_test

// Hot-path benchmarks for the event engine, with the pre-rewrite
// container/heap implementation (internal/sim/legacy) alongside as the
// measured baseline. `make bench` runs these; `make check` runs a 1x
// smoke pass plus TestEngineSteadyStateZeroAllocs, which gates the
// allocation-free property the rewrite exists to provide.

import (
	"math"
	"testing"

	"hic/internal/sim"
	"hic/internal/sim/legacy"
)

// BenchmarkEngineScheduleFire measures the minimal schedule→fire cycle:
// one event scheduled and executed per iteration, free list warm. The
// legacy engine pays one event allocation plus container/heap interface
// boxing per cycle; this one pays neither.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := sim.NewEngine(1)
	nop := func() {}
	e.After(1, nop)
	e.Drain()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, nop)
		e.Drain()
	}
}

// BenchmarkEngineLegacyScheduleFire is the same cycle on the
// pre-rewrite engine.
func BenchmarkEngineLegacyScheduleFire(b *testing.B) {
	e := legacy.NewEngine()
	nop := func() {}
	e.After(1, nop)
	e.Run(e.Now().Add(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, nop)
		e.Run(e.Now().Add(2))
	}
}

// churnDepth is the number of outstanding events the churn benchmarks
// keep in the queue — comparable to a busy testbed run's schedule depth.
const churnDepth = 256

// BenchmarkEngineChurn measures steady-state heap churn: churnDepth
// self-rescheduling events with pseudorandom deadlines, so every fire
// performs one pop and one push against a populated 4-ary heap.
func BenchmarkEngineChurn(b *testing.B) {
	e := sim.NewEngine(1)
	target := uint64(b.N) + churnDepth
	var tick func()
	tick = func() {
		if e.Processed() >= target {
			e.Stop()
			return
		}
		e.After(sim.Duration(1+e.RNG().Intn(997)), tick)
	}
	for i := 0; i < churnDepth; i++ {
		e.After(sim.Duration(1+e.RNG().Intn(997)), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(math.MaxInt64 - 1)
}

// BenchmarkEngineLegacyChurn is the same workload on the pre-rewrite
// binary heap.
func BenchmarkEngineLegacyChurn(b *testing.B) {
	e := legacy.NewEngine()
	rng := sim.NewRNG(1)
	target := uint64(b.N) + churnDepth
	var tick func()
	tick = func() {
		if e.Processed() >= target {
			e.Stop()
			return
		}
		e.After(sim.Duration(1+rng.Intn(997)), tick)
	}
	for i := 0; i < churnDepth; i++ {
		e.After(sim.Duration(1+rng.Intn(997)), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(math.MaxInt64 - 1)
}

// BenchmarkEngineTicker measures one periodic tick: the ticker's bound
// callback makes rescheduling closure-free.
func BenchmarkEngineTicker(b *testing.B) {
	e := sim.NewEngine(1)
	ticks := 0
	tk := e.Every(sim.Microsecond, func() { ticks++ })
	defer tk.Stop()
	e.Run(sim.Time(0).Add(sim.Microsecond)) // warm the free list
	b.ReportAllocs()
	b.ResetTimer()
	end := e.Now().Add(sim.Microsecond * sim.Duration(b.N))
	e.Run(end)
	if ticks < b.N {
		b.Fatalf("expected ≥%d ticks, got %d", b.N, ticks)
	}
}

// TestEngineSteadyStateZeroAllocs gates the tentpole property: once the
// free list is warm, the schedule→fire cycle and periodic ticks perform
// zero heap allocations. Run by `go test` and therefore by `make check`.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := sim.NewEngine(1)
	nop := func() {}
	e.After(1, nop)
	e.Drain()
	if allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, nop)
		e.Drain()
	}); allocs != 0 {
		t.Errorf("schedule→fire cycle allocates %.1f objects/op, want 0", allocs)
	}

	tkEngine := sim.NewEngine(2)
	ticks := 0
	tk := tkEngine.Every(sim.Microsecond, func() { ticks++ })
	defer tk.Stop()
	end := sim.Time(0).Add(sim.Microsecond)
	tkEngine.Run(end)
	if allocs := testing.AllocsPerRun(1000, func() {
		end = end.Add(sim.Microsecond)
		tkEngine.Run(end)
	}); allocs != 0 {
		t.Errorf("ticker tick allocates %.1f objects/op, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestLegacyEngineMatchesRewrite cross-checks the baseline package: both
// engines must execute the same schedule in the same order (the (at,
// seq) total order guarantees it), otherwise legacy benchmark numbers
// would not be comparable.
func TestLegacyEngineMatchesRewrite(t *testing.T) {
	runTrace := func(schedule func(d sim.Duration, fn func()), run func()) []int {
		var order []int
		rng := sim.NewRNG(99)
		for i := 0; i < 200; i++ {
			i := i
			schedule(sim.Duration(rng.Intn(50)), func() { order = append(order, i) })
		}
		run()
		return order
	}
	e := sim.NewEngine(1)
	got := runTrace(func(d sim.Duration, fn func()) { e.After(d, fn) },
		func() { e.Drain() })
	l := legacy.NewEngine()
	want := runTrace(func(d sim.Duration, fn func()) { l.After(d, fn) },
		func() { l.Run(math.MaxInt64 - 1) })
	if len(got) != len(want) {
		t.Fatalf("event counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("execution order diverges at %d: new=%d legacy=%d", i, got[i], want[i])
		}
	}
}
