package host

import (
	"encoding/json"
	"reflect"
	"testing"

	"hic/internal/sim"
)

// TestSnapshotCapturesConvergedState runs a testbed to steady state and
// checks the snapshot holds the restorable pieces: per-connection CC
// state, the memory demand estimate, and the engine RNG stream.
func TestSnapshotCapturesConvergedState(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run(2*sim.Millisecond, 5*sim.Millisecond)
	if res.Goodput == 0 {
		t.Fatal("no goodput; snapshot would capture an idle run")
	}
	s := tb.Snapshot()
	if len(s.Conns) != len(tb.Conns) {
		t.Fatalf("snapshot has %d conns, testbed %d", len(s.Conns), len(tb.Conns))
	}
	primed := 0
	for i, ws := range s.Conns {
		if ws.Cwnd > 0 {
			primed++
		}
		if ws.SRTT <= 0 {
			t.Errorf("conn %d: SRTT %v not positive after a loaded run", i, ws.SRTT)
		}
	}
	if primed == 0 {
		t.Error("no connection captured a positive cwnd")
	}
	if s.MemIOOffered <= 0 {
		t.Error("memory IO demand estimate not captured")
	}
	if s.Engine.RNG == ([4]uint64{}) {
		t.Error("engine RNG state all zero")
	}
	if s.Engine.Now <= 0 {
		t.Error("engine time not captured")
	}
}

// TestSnapshotRoundTripsThroughJSON pins serializability: the snapshot
// must survive the content-addressed store's JSON encoding unchanged.
func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	cfg := swiftConfig(2)
	cfg.Senders = 4
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(sim.Millisecond, 2*sim.Millisecond)
	s := tb.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("snapshot did not round-trip:\n got %+v\nwant %+v", back, s)
	}
}

// TestPrimeWarmStartApproximatesCold is the warm-start fidelity
// property at the host layer: a sibling scenario primed from a
// converged donor and run with a quarter-length guard window lands
// close to its own cold full-warmup result.
func TestPrimeWarmStartApproximatesCold(t *testing.T) {
	build := func(seed uint64) *Testbed {
		cfg := swiftConfig(4)
		cfg.Senders = 8
		cfg.Seed = seed
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	const warmup, measure = 4 * sim.Millisecond, 6 * sim.Millisecond

	donor := build(1)
	donor.Run(warmup, measure)
	snap := donor.Snapshot()

	cold := build(2).Run(warmup, measure)

	warmTb := build(2)
	warmTb.Prime(snap)
	warm := warmTb.Run(warmup/4, measure)

	if warm.Goodput == 0 {
		t.Fatal("warm-started run produced no goodput")
	}
	rel := (warm.AppThroughputGbps - cold.AppThroughputGbps) / cold.AppThroughputGbps
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.1 {
		t.Errorf("warm-started throughput %.2f Gbps deviates %.1f%% from cold %.2f Gbps",
			warm.AppThroughputGbps, rel*100, cold.AppThroughputGbps)
	}
}

// TestPrimeAfterStartIsNoOp pins the guard: live state must never be
// overwritten mid-run.
func TestPrimeAfterStartIsNoOp(t *testing.T) {
	cfg := swiftConfig(2)
	cfg.Senders = 4
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1 := tb.Run(sim.Millisecond, 2*sim.Millisecond)
	snap := tb.Snapshot()

	tb2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2 := tb2.Run(sim.Millisecond, 2*sim.Millisecond)
	tb2.Prime(snap) // started: must change nothing
	if !reflect.DeepEqual(res1, res2) {
		t.Fatal("determinism broken independent of Prime; test invalid")
	}
	if !reflect.DeepEqual(tb2.Snapshot().Conns, snap.Conns) {
		t.Error("Prime on a started testbed mutated connection state")
	}
}
