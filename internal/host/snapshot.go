package host

import (
	"hic/internal/nic"
	"hic/internal/pcie"
	"hic/internal/sim"
	"hic/internal/transport"
)

// Snapshot is a serializable capture of a converged testbed's slow
// state — the pieces a cold start spends the whole warmup ramp
// re-learning. A warm start builds a fresh testbed for the target
// scenario, applies the snapshot via Prime before Start, and then runs
// a short re-convergence guard window instead of the full ramp.
//
// What is restored: per-connection congestion state (window + smoothed
// RTT), the IOTLB working set, the memory controller's smoothed IO
// demand estimate, the NIC's round-robin service cursor, and the engine
// RNG stream. What is record-only: NIC buffer occupancy and PCIe credit
// occupancy — both are held by live packets and in-flight DMA closures
// that cannot be fabricated into a fresh event queue; they re-establish
// within a few RTTs of the guard window. The engine state documents
// where the donor run stood (provenance and cache salting).
//
// The result of a warm-started run is approximate, never bit-identical
// to a cold run: internal/fidelity salts warm results into their own
// cache namespace and audits a deterministic fraction against cold DES,
// exactly like fluid-routing audits.
type Snapshot struct {
	Engine             sim.EngineState       `json:"engine"`
	Conns              []transport.WarmState `json:"conns"`
	IOTLB              []uint64              `json:"iotlb,omitempty"`
	MemIOOffered       float64               `json:"mem_io_offered"`
	RemoteMemIOOffered float64               `json:"remote_mem_io_offered,omitempty"`
	NIC                nic.WarmState         `json:"nic"`
	PCIe               pcie.WarmState        `json:"pcie"`
}

// Snapshot captures the testbed's slow state. Call it after Run (or
// RunAdaptive) returns, when the run is at steady state by
// construction.
func (t *Testbed) Snapshot() Snapshot {
	s := Snapshot{
		Engine:       t.Engine.State(),
		Conns:        make([]transport.WarmState, len(t.Conns)),
		IOTLB:        t.IOMMU.ResidentKeys(),
		MemIOOffered: t.Memory.IOOffered(),
		NIC:          t.NIC.WarmState(),
		PCIe:         t.Link.WarmState(),
	}
	for i, c := range t.Conns {
		s.Conns[i] = c.WarmState()
	}
	if t.RemoteMemory != nil {
		s.RemoteMemIOOffered = t.RemoteMemory.IOOffered()
	}
	return s
}

// Prime applies a donor snapshot to a freshly built, not-yet-started
// testbed. Donor and target must share a calibration signature (same
// topology: thread, sender, and queue counts), which makes the
// connection lists congruent; a shorter donor list primes a prefix,
// which is safe because unprimed connections simply start cold. Priming
// a started testbed is a no-op: live state must not be overwritten
// mid-run.
func (t *Testbed) Prime(s Snapshot) {
	if t.started {
		return
	}
	n := len(t.Conns)
	if len(s.Conns) < n {
		n = len(s.Conns)
	}
	for i := 0; i < n; i++ {
		t.Conns[i].Prime(s.Conns[i])
	}
	t.IOMMU.PrimeKeys(s.IOTLB)
	t.Memory.PrimeIOOffered(s.MemIOOffered)
	if t.RemoteMemory != nil && s.RemoteMemIOOffered > 0 {
		t.RemoteMemory.PrimeIOOffered(s.RemoteMemIOOffered)
	}
	t.NIC.Prime(s.NIC)
	t.Engine.PrimeRNG(s.Engine.RNG)
	// A primed testbed resumes mid-steady-state, so duty-cycled
	// workloads must be gated from t=0 too: the builder's periodic gate
	// first fires after one full period, leaving the cold-start
	// transient — every connection transmitting continuously — ungated.
	// A cold run spends its warmup relaxing out of that transient; a
	// warm run has only the guard window, so close the first period
	// down to its burst share and the resumed timeline is periodic from
	// the first tick.
	if t.cfg.BurstDuty > 0 && t.cfg.BurstPeriod > 0 {
		on := sim.Duration(float64(t.cfg.BurstPeriod) * t.cfg.BurstDuty)
		t.Engine.After(on, func() {
			for _, c := range t.Conns {
				c.SetActive(false)
			}
		})
	}
}
