package host

import (
	"flag"
	"testing"

	"hic/internal/iommu"
	"hic/internal/sim"
	"hic/internal/transport"
	"hic/internal/transport/swift"
)

// swiftConfig returns a testbed config with Swift CC.
func swiftConfig(threads int) Config {
	cfg := DefaultConfig(threads)
	cfg.CC = func() (transport.CongestionControl, error) {
		return swift.New(swift.DefaultConfig(), cfg.InitialCwnd)
	}
	return cfg
}

func runPoint(t testing.TB, cfg Config, warmup, measure sim.Duration) Results {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb.Run(warmup, measure)
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Senders = 0 },
		func(c *Config) { c.Senders = 1 << 16 },
		func(c *Config) { c.ReceiverThreads = 0 },
		func(c *Config) { c.RxRegionBytes = 0 },
		func(c *Config) { c.AntagonistCores = -1 },
		func(c *Config) { c.CC = nil },
		func(c *Config) { c.InitialCwnd = 0 },
	}
	for i, mutate := range bad {
		cfg := swiftConfig(4)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSmokeEndToEnd(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	res := runPoint(t, cfg, 2*sim.Millisecond, 5*sim.Millisecond)
	if res.Goodput == 0 {
		t.Fatal("no goodput")
	}
	if res.AppThroughputGbps <= 0 || res.AppThroughputGbps > 92.2 {
		t.Errorf("throughput = %.1f Gbps outside (0, 92.2]", res.AppThroughputGbps)
	}
	if res.DMAFaults != 0 {
		t.Errorf("DMA faults: %d", res.DMAFaults)
	}
	if res.SwitchDrops != 0 {
		t.Errorf("switch drops: %d (fabric must not be the bottleneck)", res.SwitchDrops)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := swiftConfig(2)
	cfg.Senders = 4
	a := runPoint(t, cfg, sim.Millisecond, 2*sim.Millisecond)
	b := runPoint(t, cfg, sim.Millisecond, 2*sim.Millisecond)
	if a != b {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	// Different seeds may legitimately converge to the same CPU-bound
	// equilibrium, so only bit-reproducibility is asserted.
}

// TestCalibrationCurves prints the fig3/fig6-style sweeps; run with
//
//	go test ./internal/host/ -run Calibration -v -calib
//
// It is skipped by default (it is a tool, not an assertion).
func TestCalibrationCurves(t *testing.T) {
	if testing.Short() || !*calib {
		t.Skip("calibration printout; enable with -calib")
	}
	warmup, measure := 20*sim.Millisecond, 30*sim.Millisecond

	t.Log("=== fig3: throughput vs threads (IOMMU ON/OFF) ===")
	for _, threads := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
		on := swiftConfig(threads)
		off := swiftConfig(threads)
		off.IOMMU = iommu.Config{Enabled: false}
		ron := runPoint(t, on, warmup, measure)
		roff := runPoint(t, off, warmup, measure)
		t.Logf("threads=%2d ON:  %5.1f Gbps drop=%4.2f%% misses/pkt=%4.2f p50=%7v | OFF: %5.1f Gbps drop=%4.2f%%",
			threads, ron.AppThroughputGbps, ron.DropRatePct, ron.IOTLBMissesPerPacket,
			ron.HostDelayP50, roff.AppThroughputGbps, roff.DropRatePct)
	}

	t.Log("=== fig6: throughput vs antagonist cores (12 threads) ===")
	for _, cores := range []int{0, 2, 4, 6, 8, 10, 12, 15} {
		on := swiftConfig(12)
		on.AntagonistCores = cores
		off := swiftConfig(12)
		off.IOMMU = iommu.Config{Enabled: false}
		off.AntagonistCores = cores
		ron := runPoint(t, on, warmup, measure)
		roff := runPoint(t, off, warmup, measure)
		t.Logf("antag=%2d ON: %5.1f Gbps drop=%4.2f%% mem=%5.1f GB/s | OFF: %5.1f Gbps drop=%4.2f%% mem=%5.1f GB/s",
			cores, ron.AppThroughputGbps, ron.DropRatePct, ron.MemoryBandwidthGBps,
			roff.AppThroughputGbps, roff.DropRatePct, roff.MemoryBandwidthGBps)
	}
}

var calib = flag.Bool("calib", false, "print calibration sweeps")
