// Sim-time signal taps for the congestion observatory
// (internal/observatory): one read-only snapshot of the datapath state
// per call, covering every signal the paper's fleet monitoring watches —
// NIC buffer occupancy and drops, PCIe credit backpressure, IOTLB miss
// pressure, memory-bus load, and delivered goodput. Reading a snapshot
// consumes no engine RNG and schedules no events, so periodic sampling
// is invisible to the simulation (the golden-hash passivity tests prove
// it).
package host

import "hic/internal/sim"

// SignalSample is one instant's datapath reading. Counter fields
// (GoodputBytes, Drops) are cumulative since the last Registry reset;
// consumers diff successive samples and must tolerate the counters
// restarting at zero when a measurement window begins.
type SignalSample struct {
	// At is the sim-clock time of the reading.
	At sim.Time
	// GoodputBytes is the receiver's cumulative delivered payload.
	GoodputBytes uint64
	// BufferBytes is the NIC input-buffer occupancy.
	BufferBytes int
	// Drops is the NIC's cumulative tail-drop count.
	Drops uint64
	// CreditOccupancy is the fraction of the PCIe posted-write credit
	// pool currently held (1 = exhausted, writes are stalling).
	CreditOccupancy float64
	// CreditStallAge is how long the oldest PCIe credit waiter has been
	// blocked (zero when credits are flowing).
	CreditStallAge sim.Duration
	// IOTLBMissRate is the IOMMU's recent misses-per-translation EWMA.
	IOTLBMissRate float64
	// MemLoadFactor is the memory controller's current latency
	// multiplier (1 = uncontended).
	MemLoadFactor float64
	// MemQueueDelay is the memory controller's current IO-FIFO backlog.
	MemQueueDelay sim.Duration
}

// ReadSignals captures the current datapath state. It reads the same
// accessors EnableSpans' drop-attribution context does, plus the
// goodput and drop counters, and is safe to call from an engine timer.
func (t *Testbed) ReadSignals() SignalSample {
	return SignalSample{
		At:              t.Engine.Now(),
		GoodputBytes:    t.Receiver.GoodputBytes(),
		BufferBytes:     t.NIC.BufferUsed(),
		Drops:           t.NIC.Drops(),
		CreditOccupancy: t.Link.CreditOccupancy(),
		CreditStallAge:  t.Link.OldestWaiterAge(),
		IOTLBMissRate:   t.IOMMU.RecentMissRate(),
		MemLoadFactor:   t.Memory.LoadFactor(),
		MemQueueDelay:   t.Memory.QueueDelay(),
	}
}

// SignalStatics are the per-testbed constants that turn raw samples
// into normalized severities: the buffer capacity makes occupancy a
// fill fraction, and the access link rate converts peak occupancy into
// a drain time comparable with the congestion-control horizon.
type SignalStatics struct {
	// NICBufferBytes is the NIC input-buffer capacity.
	NICBufferBytes int
	// LineRate is the access link rate feeding the NIC.
	LineRate sim.BitsPerSecond
}

// SignalStatics reports the testbed's normalization constants.
func (t *Testbed) SignalStatics() SignalStatics {
	return SignalStatics{
		NICBufferBytes: t.cfg.NIC.BufferBytes,
		LineRate:       t.cfg.Fabric.AccessLinkRate,
	}
}
