package host

import (
	"bytes"
	"encoding/json"
	"testing"

	"hic/internal/sim"
	"hic/internal/telemetry"
)

// instrumentedRun builds a testbed, enables spans, runs it, and returns
// both halves.
func instrumentedRun(t testing.TB, cfg Config, rate float64, warmup, measure sim.Duration) (*telemetry.Run, Results) {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := tb.EnableSpans(rate)
	res := tb.Run(warmup, measure)
	return run, res
}

func TestSpansEndToEnd(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	run, res := instrumentedRun(t, cfg, 0.1, 2*sim.Millisecond, 5*sim.Millisecond)
	if res.Goodput == 0 {
		t.Fatal("no goodput")
	}
	spans := run.Tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans sampled at 10% on a saturating run")
	}
	finished := 0
	for _, sp := range spans {
		if sp.Finished() {
			finished++
		}
	}
	if finished == 0 {
		t.Fatal("no span reached delivery")
	}
}

// The stage-sum invariant must hold on spans produced by the real
// pipeline, not just hand-built ones: every finished span's stage
// durations sum exactly to its end − start, with no unattributed time.
func TestSpanStageSumOverRealRun(t *testing.T) {
	cfg := swiftConfig(6)
	cfg.Senders = 10
	run, _ := instrumentedRun(t, cfg, 0.2, 2*sim.Millisecond, 5*sim.Millisecond)
	checked := 0
	for _, sp := range run.Tracer.Spans() {
		if !sp.Finished() {
			continue
		}
		var sum sim.Duration
		for _, st := range sp.Stages {
			sum += st.Duration()
		}
		if sum != sp.End.Sub(sp.Start) {
			t.Fatalf("span %d: stages sum to %v, span covers %v", sp.ID, sum, sp.End.Sub(sp.Start))
		}
		// A delivered packet passed through every pipeline stage.
		seen := map[telemetry.Stage]bool{}
		for _, st := range sp.Stages {
			seen[st.Stage] = true
		}
		for _, stage := range telemetry.Stages() {
			if !seen[stage] {
				t.Fatalf("span %d missing stage %v", sp.ID, stage)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no finished spans to check")
	}
}

// Same seed + same rate ⇒ byte-identical telemetry artifacts. This is
// the property that makes traces diffable across code changes.
func TestTelemetryDeterminism(t *testing.T) {
	artifacts := func() ([]byte, []byte, []byte) {
		cfg := swiftConfig(4)
		cfg.Senders = 8
		cfg.AntagonistCores = 8
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := tb.EnableSpans(0.05)
		tb.Run(2*sim.Millisecond, 5*sim.Millisecond)

		var chrome, prom bytes.Buffer
		if err := telemetry.WriteChromeTrace(&chrome, run); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WritePrometheus(&prom, tb.Registry.Snapshot()); err != nil {
			t.Fatal(err)
		}
		summary, err := json.Marshal(run.Summary())
		if err != nil {
			t.Fatal(err)
		}
		return chrome.Bytes(), prom.Bytes(), summary
	}
	c1, p1, s1 := artifacts()
	c2, p2, s2 := artifacts()
	if !bytes.Equal(c1, c2) {
		t.Error("chrome traces differ across identical runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("prometheus dumps differ across identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("summaries differ across identical runs")
	}
}

// The fig6 scenario: memory-bus antagonists force NIC drops at low link
// utilization. The ledger must attribute the overwhelming share of those
// drops to the memory bus — that is the paper's §3.2 diagnosis, and the
// acceptance bar for the attribution heuristic.
func TestDropAttributionAntagonised(t *testing.T) {
	cfg := swiftConfig(12)
	cfg.AntagonistCores = 12
	// Zero warmup: the drops concentrate in the startup transient before
	// Swift backs off, and the ledger (live from EnableSpans) must agree
	// with the NIC's measure-window counter.
	run, res := instrumentedRun(t, cfg, 0.01, 0, 10*sim.Millisecond)
	if res.Drops == 0 {
		t.Fatal("antagonised run produced no drops; scenario lost its bite")
	}
	led := run.Drops
	if led.Total() != res.Drops {
		t.Errorf("ledger counted %d drops, NIC counted %d", led.Total(), res.Drops)
	}
	if share := led.Share(telemetry.CauseMemoryBus); share < 0.9 {
		t.Errorf("memory-bus share = %.1f%%, want ≥90%% (bus=%d walk=%d overload=%d)",
			share*100, led.Count(telemetry.CauseMemoryBus),
			led.Count(telemetry.CauseIOTLBWalk), led.Count(telemetry.CauseOverload))
	}
}

// Without the antagonist but with the IOMMU thrashing (high thread
// count), drops should NOT be blamed on the memory bus.
func TestDropAttributionIOTLBThrash(t *testing.T) {
	cfg := swiftConfig(16)
	run, res := instrumentedRun(t, cfg, 0.01, 5*sim.Millisecond, 10*sim.Millisecond)
	if res.Drops == 0 {
		t.Skip("no drops at this operating point")
	}
	led := run.Drops
	if share := led.Share(telemetry.CauseMemoryBus); share > 0.1 {
		t.Errorf("memory-bus share = %.1f%% on an uncontended bus, want ≤10%%", share*100)
	}
	if share := led.Share(telemetry.CauseIOTLBWalk); share < 0.5 {
		t.Errorf("iotlb-walk share = %.1f%%, want ≥50%% in the thrash regime (walk=%d overload=%d)",
			share*100, led.Count(telemetry.CauseIOTLBWalk), led.Count(telemetry.CauseOverload))
	}
}

// Observation must not perturb the simulation: the sampling rate only
// decides what gets recorded, never how the run evolves, because the
// tracer draws from its own forked RNG. A rate-0 and a rate-0.5 run
// must produce identical Results.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	_, base := instrumentedRun(t, cfg, 0, 2*sim.Millisecond, 5*sim.Millisecond)
	run, sampled := instrumentedRun(t, cfg, 0.5, 2*sim.Millisecond, 5*sim.Millisecond)
	if len(run.Tracer.Spans()) == 0 {
		t.Fatal("rate 0.5 sampled nothing")
	}
	if base != sampled {
		t.Errorf("sampling rate changed the simulation:\nrate 0:   %+v\nrate 0.5: %+v", base, sampled)
	}
}
