package host

import (
	"testing"

	"hic/internal/sim"
)

// A rule that can never fire must leave RunAdaptive bit-identical to
// Run: the engine reaches the same horizon through the same events
// whether it pauses at sub-window boundaries or not.
func TestRunAdaptiveNonTriggeringMatchesRun(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	warmup, measure := 2*sim.Millisecond, 6*sim.Millisecond

	full := runPoint(t, cfg, warmup, measure)

	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RelTol 0 disables the convergence test but (via the windowed loop
	// guard) falls back to plain Run.
	adaptive, stopped := tb.RunAdaptive(warmup, measure, StopRule{})
	if stopped {
		t.Fatal("zero rule stopped early")
	}
	if adaptive != full {
		t.Errorf("zero-rule RunAdaptive differs from Run:\n%+v\n%+v", adaptive, full)
	}

	// A windowed run whose tolerance is unreachably tight walks the same
	// event sequence in sub-windows and must also match exactly.
	tb2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windowed, stopped := tb2.RunAdaptive(warmup, measure,
		StopRule{Window: sim.Millisecond, MinWindows: 4, RelTol: 1e-12})
	if stopped {
		t.Fatal("1e-12 tolerance stopped early")
	}
	if windowed != full {
		t.Errorf("windowed RunAdaptive differs from Run:\n%+v\n%+v", windowed, full)
	}
}

func TestRunAdaptiveStopsEarlyAndScales(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	warmup, measure := 3*sim.Millisecond, 40*sim.Millisecond

	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rule := StopRule{Window: sim.Millisecond, MinWindows: 4, RelTol: 0.05}
	res, stopped := tb.RunAdaptive(warmup, measure, rule)
	if !stopped {
		t.Skip("steady 4-thread point did not converge inside the window; rule too strict for this build")
	}
	if res.Duration != measure {
		t.Errorf("scaled Duration = %v, want %v", res.Duration, measure)
	}

	full := runPoint(t, cfg, warmup, measure)
	relErr := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	// The whole point of the rule: the truncated estimate lands close to
	// the full window. Allow generous slack (5× the 1-s.e. tolerance).
	if e := relErr(res.AppThroughputGbps, full.AppThroughputGbps); e > 5*rule.RelTol {
		t.Errorf("early-stopped throughput off by %.1f%% (%.2f vs %.2f Gbps)",
			100*e, res.AppThroughputGbps, full.AppThroughputGbps)
	}
	if e := relErr(float64(res.Goodput), float64(full.Goodput)); e > 5*rule.RelTol {
		t.Errorf("scaled goodput off by %.1f%%", 100*e)
	}
}
